"""FIG4 — balanced mixer: baseband differential output (envelope along the difference axis).

Fig. 4 of the paper plots the envelope of the differential output along the
difference-frequency time scale over ~0.06 ms — "the actual baseband voltage
of the output", in which the transmitted bit stream is directly visible.
This bench extracts exactly that curve from the MPDE solution and checks
that the transmitted four-bit pattern can be sliced back out of it.
"""

from __future__ import annotations

import numpy as np

from paper_targets import BALANCED_BASEBAND_PERIOD, ComparisonRow, print_series, print_table
from repro.rf.receiver import recover_bits
from repro.signals import Waveform


def test_fig4_baseband_envelope(benchmark, balanced_mixer_bitstream_solution):
    mixer, result = balanced_mixer_bitstream_solution

    def extract():
        return result.baseband_envelope("outp", node_neg="outn", mode="mean")

    envelope = benchmark(extract)

    # Non-coherent magnitude for the bit decisions (see repro.rf.receiver).
    magnitude = Waveform(envelope.times, np.abs(envelope.values - envelope.mean()))
    recovery = recover_bits(magnitude, n_bits=4, mode="peak")

    rows = [
        ComparisonRow(
            "time span of the baseband plot",
            "~0.06 ms (Fig. 4 x-axis)",
            f"{envelope.duration * 1e3:.4f} ms",
        ),
        ComparisonRow(
            "baseband waveform swing",
            "~0.05 .. 0.4 V (Fig. 4 y-axis)",
            f"{envelope.values.min():+.3f} .. {envelope.values.max():+.3f} V "
            f"(pp {envelope.peak_to_peak():.3f} V)",
        ),
        ComparisonRow(
            "bit stream recoverable from the envelope",
            "yes ('shape of the bit-stream is evident')",
            f"recovered bits {recovery.bits} from pattern (1, 0, 1, 1)",
        ),
        ComparisonRow(
            "baseband period",
            f"{BALANCED_BASEBAND_PERIOD * 1e3:.4f} ms (1 / 15 kHz)",
            f"{result.grid.period_slow * 1e3:.4f} ms",
        ),
    ]
    print_table("FIG4 - balanced mixer: baseband differential output", rows)

    samples = np.linspace(0.0, envelope.duration, 13)
    print_series(
        "FIG4 series: baseband differential output vs time",
        ["time (ms)", "v_out_diff (V)", "|v - mean| (V)"],
        [
            [f"{t * 1e3:.4f}", f"{float(envelope(envelope.times[0] + t)):+.4f}",
             f"{float(magnitude(envelope.times[0] + t)):.4f}"]
            for t in samples
        ],
    )

    assert recovery.matches((1, 0, 1, 1))
    assert envelope.duration > 0.9 * BALANCED_BASEBAND_PERIOD
