"""TAB-SPEED — computational speed-up of the sheared MPDE over single-time shooting.

Section 3 of the paper ("Computational speedup") makes four quantitative
claims for the balanced mixer (450 MHz LO, 15 kHz baseband, disparity
30 000):

1. 1200 multi-time grid points replace >= 300 000 shooting time steps,
   i.e. the shooting equation system is more than 250x larger;
2. the resulting speed-up exceeds two orders of magnitude;
3. the speed-up grows roughly linearly with the disparity between the LO
   and the difference frequency;
4. the break-even disparity is implementation dependent but of order 200.

Running full-scale shooting (300 000 implicit time steps) is not feasible in
a Python benchmark, so this bench measures both methods on the unbalanced
switching mixer over a sweep of *scaled* disparities, verifies the linear
growth of the speed-up, and extrapolates the fitted line to the paper's
disparity — reproducing the shape of the claim rather than the absolute CPU
seconds of the 2002 testbed.
"""

from __future__ import annotations

import time

import numpy as np

from paper_targets import (
    ComparisonRow,
    PAPER_BREAK_EVEN_DISPARITY,
    PAPER_GRID_POINTS,
    PAPER_SHOOTING_TIME_STEPS,
    PAPER_SYSTEM_SIZE_RATIO,
    print_series,
    print_table,
)
from repro.analysis import shooting_periodic_steady_state
from repro.core import solve_mpde
from repro.rf import unbalanced_switching_mixer
from repro.signals.spectrum import fourier_coefficient
from repro.utils import MPDEOptions, ShootingOptions

LO_FREQUENCY = 2.0e6
DISPARITIES = (10, 20, 40, 80, 160)
MPDE_GRID = (32, 21)
SHOOTING_STEPS_PER_LO_CYCLE = 20


def _make_case(disparity: int):
    fd = LO_FREQUENCY / disparity
    mixer = unbalanced_switching_mixer(lo_frequency=LO_FREQUENCY, difference_frequency=fd)
    return mixer, mixer.compile(), fd


def _run_mpde(mixer, mna):
    start = time.perf_counter()
    result = solve_mpde(
        mna, mixer.scales, MPDEOptions(n_fast=MPDE_GRID[0], n_slow=MPDE_GRID[1])
    )
    elapsed = time.perf_counter() - start
    fd = mixer.scales.difference_frequency
    amplitude = 2 * abs(fourier_coefficient(result.baseband_envelope("out"), fd))
    return elapsed, amplitude, result


def _run_shooting(mixer, mna, disparity):
    steps = SHOOTING_STEPS_PER_LO_CYCLE * disparity
    start = time.perf_counter()
    result = shooting_periodic_steady_state(
        mna,
        mixer.scales.difference_period,
        options=ShootingOptions(steps_per_period=steps, integration_method="trapezoidal"),
    )
    elapsed = time.perf_counter() - start
    fd = mixer.scales.difference_frequency
    amplitude = 2 * abs(fourier_coefficient(result.waveform("out"), fd))
    return elapsed, amplitude, steps


def test_speedup_vs_shooting(benchmark):
    rows = []
    speedups = []
    for disparity in DISPARITIES:
        mixer, mna, fd = _make_case(disparity)
        t_mpde, a_mpde, mpde_result = _run_mpde(mixer, mna)
        t_shoot, a_shoot, steps = _run_shooting(mixer, mna, disparity)
        speedup = t_shoot / t_mpde
        speedups.append(speedup)
        agreement = abs(a_mpde - a_shoot) / max(a_shoot, 1e-15)
        rows.append(
            [
                f"{disparity}",
                f"{mpde_result.stats.n_grid_points}",
                f"{steps}",
                f"{t_mpde:.2f}",
                f"{t_shoot:.2f}",
                f"{speedup:.2f}",
                f"{100 * agreement:.1f}%",
            ]
        )

    print_series(
        "TAB-SPEED sweep: MPDE vs shooting over one difference period (switching mixer)",
        ["disparity f1/fd", "MPDE grid pts", "shooting steps", "MPDE (s)", "shooting (s)",
         "speed-up", "baseband mismatch"],
        rows,
    )

    # Linear fit of speed-up vs disparity (the paper: "roughly linear").
    disparities = np.asarray(DISPARITIES, dtype=float)
    speedup_arr = np.asarray(speedups)
    slope, intercept = np.polyfit(disparities, speedup_arr, 1)
    correlation = np.corrcoef(disparities, speedup_arr)[0, 1]
    break_even = (1.0 - intercept) / slope if slope > 0 else float("inf")
    extrapolated = slope * 30000 + intercept

    paper_rows = [
        ComparisonRow(
            "multi-time unknowns vs shooting time steps (450 MHz / 15 kHz)",
            f"{PAPER_GRID_POINTS} grid points vs >= {PAPER_SHOOTING_TIME_STEPS} steps",
            f"{PAPER_GRID_POINTS} vs {SHOOTING_STEPS_PER_LO_CYCLE * 30000} "
            f"(ratio {SHOOTING_STEPS_PER_LO_CYCLE * 30000 / PAPER_GRID_POINTS:.0f}x)",
        ),
        ComparisonRow(
            "equation-system size ratio",
            f"> {PAPER_SYSTEM_SIZE_RATIO}x",
            f"{SHOOTING_STEPS_PER_LO_CYCLE * 30000 / PAPER_GRID_POINTS:.0f}x",
        ),
        ComparisonRow(
            "speed-up grows ~linearly with disparity",
            "yes",
            f"linear fit r = {correlation:.3f}, slope {slope:.3f} per unit disparity",
        ),
        ComparisonRow(
            "break-even disparity",
            f"~{PAPER_BREAK_EVEN_DISPARITY} (implementation dependent)",
            f"~{break_even:.0f} (this Python implementation)",
        ),
        ComparisonRow(
            "speed-up at the paper's disparity (30 000)",
            "> 100x (two orders of magnitude)",
            f"~{extrapolated:.0f}x (extrapolated from the linear fit)",
        ),
    ]
    print_table("TAB-SPEED - paper claims vs measurements", paper_rows)

    # Benchmark the headline MPDE solve once more for the timing report.
    mixer, mna, _ = _make_case(DISPARITIES[-1])
    benchmark.pedantic(lambda: _run_mpde(mixer, mna), rounds=1, iterations=1)

    # Assertions on the claim *shape*.
    assert correlation > 0.95, "speed-up should grow ~linearly with disparity"
    assert speedup_arr[-1] > speedup_arr[0], "larger disparity must favour the MPDE method"
    assert extrapolated > 100, "extrapolated speed-up at disparity 30000 should exceed 100x"
    assert all(float(r[-1].rstrip("%")) < 10.0 for r in rows), "methods must agree on the baseband"
