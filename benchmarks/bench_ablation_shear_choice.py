"""ABL-SHEAR — ablation of the time-scale choice: sheared vs unsheared axes.

The paper's key insight is that the bivariate representation of a
closely-spaced-tone problem is not unique: the naive choice (one axis per
tone, Fig. 1) is valid but useless because the difference-frequency
behaviour stays hidden, while the scaled-and-sheared choice (Fig. 2) makes
it explicit at no extra representational cost.  This ablation quantifies the
difference on the ideal-mixing product:

* baseband information recoverable from the slow axis of each representation,
* the number of samples a *single-time* representation would need to carry
  the same information (the compactness argument of Section 2).
"""

from __future__ import annotations

import numpy as np

from paper_targets import ComparisonRow, print_series, print_table
from repro.rf import difference_tone_amplitude, zhat_sheared, zhat_unsheared
from repro.signals import TonePair
from repro.signals.spectrum import fourier_coefficient

GRID = (48, 48)
SAMPLES_PER_CYCLE = 16


def test_shear_choice_ablation(benchmark):
    pair = TonePair.paper_ideal_mixing()  # 1 GHz vs 1 GHz - 10 kHz
    fd = pair.difference_frequency

    sheared = benchmark(zhat_sheared, pair, *GRID)
    unsheared = zhat_unsheared(pair, *GRID)

    sheared_amplitude = 2 * abs(fourier_coefficient(sheared.envelope_mean(), fd))
    unsheared_swing = unsheared.envelope_mean().peak_to_peak()
    expected = difference_tone_amplitude(pair)

    # Compactness: samples needed by each representation.
    multi_time_samples = GRID[0] * GRID[1]
    single_time_samples = int(SAMPLES_PER_CYCLE * pair.f1 * pair.difference_period)

    rows = [
        ComparisonRow(
            "difference tone recovered from the SHEARED slow axis",
            f"{expected:.2f} (analytic)",
            f"{sheared_amplitude:.4f}",
        ),
        ComparisonRow(
            "difference tone visible on the UNSHEARED slow axis",
            "not visible (Fig. 1)",
            f"baseband swing {unsheared_swing:.2e}",
        ),
        ComparisonRow(
            "multi-time samples used (either representation)",
            "numerical compactness unaffected by the shear",
            f"{multi_time_samples}",
        ),
        ComparisonRow(
            "single-time samples needed over one difference period",
            ">= 10 points per LO cycle x f1/fd cycles",
            f"{single_time_samples} "
            f"({single_time_samples / multi_time_samples:.0f}x more than the grid)",
        ),
    ]
    print_table("ABL-SHEAR - sheared vs unsheared time-scale choice (ideal mixing)", rows)

    envelope = sheared.envelope_mean()
    times = np.linspace(0.0, sheared.period2, 9)
    print_series(
        "Sheared slow-axis envelope (the recovered 10 kHz difference tone)",
        ["t2 (ms)", "envelope"],
        [[f"{t * 1e3:.4f}", f"{float(envelope(t)):+.4f}"] for t in times],
    )

    np.testing.assert_allclose(sheared_amplitude, expected, rtol=1e-2)
    assert unsheared_swing < 1e-9
    assert single_time_samples / multi_time_samples > 250
