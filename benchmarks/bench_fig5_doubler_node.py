"""FIG5 — balanced mixer: voltage at the differential-pair sources (the doubler node).

Fig. 5 of the paper plots the bivariate voltage at the sources of the upper
differential pair — the node driven by the LO frequency doubler.  Its fast-
axis waveform is sharp and dominated by the 2 x LO component (the doubler's
output); this is exactly the kind of waveform the paper argues harmonic
balance represents poorly and time-domain methods handle naturally.
"""

from __future__ import annotations

import numpy as np

from paper_targets import ComparisonRow, print_series, print_table
from repro.signals.spectrum import compute_spectrum


def test_fig5_doubler_node_surface(benchmark, balanced_mixer_bitstream_solution):
    mixer, result = balanced_mixer_bitstream_solution

    def extract():
        return result.bivariate("tail")

    surface = benchmark(extract)
    fast_slice = surface.slice_fast(0.0)
    spectrum = compute_spectrum(fast_slice, detrend=True)
    f_lo = mixer.lo_frequency
    amp_lo = spectrum.amplitude_at(f_lo, tolerance=f_lo / 8)
    amp_2lo = spectrum.amplitude_at(2 * f_lo, tolerance=f_lo / 8)

    rows = [
        ComparisonRow(
            "node", "sources of the upper differential pair", "'tail' (same node)"
        ),
        ComparisonRow(
            "dominant fast-axis component",
            "2 x LO = 900 MHz (frequency doubler)",
            f"{spectrum.dominant_frequency() / 1e6:.0f} MHz",
        ),
        ComparisonRow(
            "2xLO / LO amplitude ratio",
            "> 1 (balanced doubler suppresses the fundamental)",
            f"{amp_2lo / max(amp_lo, 1e-12):.2f}",
        ),
        ComparisonRow(
            "voltage range at the node",
            "~0 .. 2.5 V (Fig. 5 z-axis)",
            f"{surface.values.min():.3f} .. {surface.values.max():.3f} V",
        ),
        ComparisonRow(
            "waveform character",
            "sharp (strongly nonlinear switching)",
            f"harmonic-rich: THD-like content above 2xLO present "
            f"({np.sum(spectrum.amplitudes[spectrum.frequencies > 2.5 * f_lo]):.3f} V total)",
        ),
    ]
    print_table("FIG5 - balanced mixer: voltage at the differential-pair sources", rows)

    print_series(
        "FIG5 series: one LO cycle of the doubler-node voltage (t2 = 0)",
        ["t1 (ns)", "v_tail (V)"],
        [[f"{t * 1e9:.3f}", f"{v:.4f}"] for t, v in zip(fast_slice.times, fast_slice.values)],
    )

    assert amp_2lo > amp_lo
    assert surface.values.max() - surface.values.min() > 0.2
