"""FIG1 / FIG2 — the ideal mixing example of Section 2.

Regenerates the two bivariate representations of ``z(t) = cos(2 pi f1 t) *
cos(2 pi f2 t)`` with ``f1 = 1 GHz`` and ``f2 = f1 - 10 kHz``:

* ``z_hat1`` (Fig. 1): both axes on the ~1 ns carrier scale — no slow
  variation is visible and the 10 kHz difference tone is hidden;
* ``z_hat2`` (Fig. 2): the sheared representation whose second axis spans
  the 0.1 ms difference period — the difference-frequency variation is
  explicit and its LO-cycle average recovers the analytic 1/2-amplitude
  difference tone.

Run with ``pytest benchmarks/bench_fig1_fig2_ideal_mixing.py --benchmark-only -s``
to see the regenerated series next to the paper's targets.
"""

from __future__ import annotations

import numpy as np

from paper_targets import (
    ComparisonRow,
    IDEAL_MIXING_DIFFERENCE_AMPLITUDE,
    IDEAL_MIXING_DIFFERENCE_PERIOD,
    print_series,
    print_table,
)
from repro.rf import zhat_sheared, zhat_unsheared
from repro.signals import TonePair
from repro.signals.spectrum import fourier_coefficient


def _pair() -> TonePair:
    return TonePair.paper_ideal_mixing()


def test_fig1_unsheared_surface(benchmark):
    """Fig. 1: the unsheared representation hides the difference tone."""
    pair = _pair()
    surface = benchmark(zhat_unsheared, pair, 64, 64)
    envelope = surface.envelope_mean()

    rows = [
        ComparisonRow("axis 1 span (fast time scale)", "1 ns", f"{surface.period1 * 1e9:.3f} ns"),
        ComparisonRow("axis 2 span (second tone)", "~1 ns", f"{surface.period2 * 1e9:.6f} ns"),
        ComparisonRow("peak |z_hat1|", "1.0", f"{np.max(np.abs(surface.values)):.3f}"),
        ComparisonRow(
            "baseband signal visible along axis 2",
            "none (motivates the shear)",
            f"peak-to-peak {envelope.peak_to_peak():.2e} V",
        ),
    ]
    print_table("FIG1 - z_hat1(t1, t2): unsheared bivariate representation", rows)
    assert envelope.peak_to_peak() < 1e-9


def test_fig2_sheared_surface(benchmark):
    """Fig. 2: the sheared representation exposes the 0.1 ms difference variation."""
    pair = _pair()
    surface = benchmark(zhat_sheared, pair, 64, 64)
    envelope = surface.envelope_mean()
    fd = pair.difference_frequency
    measured_amplitude = 2 * abs(fourier_coefficient(envelope, fd))

    rows = [
        ComparisonRow("axis 1 span (fast time scale)", "1 ns", f"{surface.period1 * 1e9:.3f} ns"),
        ComparisonRow(
            "axis 2 span (difference time scale)",
            f"{IDEAL_MIXING_DIFFERENCE_PERIOD * 1e3:.1f} ms",
            f"{surface.period2 * 1e3:.3f} ms",
        ),
        ComparisonRow(
            "difference-tone amplitude from the envelope",
            f"{IDEAL_MIXING_DIFFERENCE_AMPLITUDE:.2f} (cos*cos identity)",
            f"{measured_amplitude:.4f}",
        ),
    ]
    print_table("FIG2 - z_hat2(t1, t2): sheared (difference time scale) representation", rows)

    # Print the Fig. 2 slow-axis series itself (envelope vs difference time).
    sample_times = np.linspace(0.0, surface.period2, 9)
    print_series(
        "FIG2 series: LO-cycle average of z_hat2 vs difference time",
        ["t2 (ms)", "envelope"],
        [[f"{t * 1e3:.4f}", f"{float(envelope(t)):+.4f}"] for t in sample_times],
    )
    np.testing.assert_allclose(measured_amplitude, IDEAL_MIXING_DIFFERENCE_AMPLITUDE, rtol=5e-3)
