"""TAB-GAIN — down-conversion gain and distortion from pure-tone excitations.

The paper states that "using pure-tone driving excitations, we are also able
to obtain down-conversion gain and distortion figures" for the mixers.  No
numeric table is printed in the paper, so this bench regenerates the
measurement itself: it drives the balanced LO-doubling mixer with an
un-modulated carrier at ``2*f1 - fd``, extracts the baseband envelope from
the MPDE solution, and reports conversion gain (linear and dB) and baseband
THD over a small RF-amplitude sweep, checking small-signal linearity.
"""

from __future__ import annotations

import numpy as np

from conftest import BENCH_GRID_FAST, BENCH_GRID_SLOW
from paper_targets import ComparisonRow, print_series, print_table
from repro.core import solve_mpde
from repro.rf import balanced_lo_doubling_mixer, conversion_metrics, lo_feedthrough_ratio
from repro.utils import MPDEOptions

RF_AMPLITUDES = (0.05, 0.10, 0.15)
SWEEP_GRID = (24, 20)


def _measure(rf_amplitude: float, grid: tuple[int, int]):
    mixer = balanced_lo_doubling_mixer(rf_amplitude=rf_amplitude, use_bit_stream=False)
    result = solve_mpde(
        mixer.compile(), mixer.scales, MPDEOptions(n_fast=grid[0], n_slow=grid[1])
    )
    metrics = conversion_metrics(result, "outp", "outn", rf_amplitude)
    feedthrough = lo_feedthrough_ratio(result, "outp", "outn")
    return result, metrics, feedthrough


def test_conversion_gain_and_distortion(benchmark, balanced_mixer_puretone_solution):
    mixer, shared = balanced_mixer_puretone_solution

    # Benchmark one full measurement at the default drive level.
    def measure_once():
        return _measure(mixer.rf_amplitude, (BENCH_GRID_FAST, BENCH_GRID_SLOW))

    _, headline_metrics, headline_feedthrough = benchmark.pedantic(
        measure_once, rounds=1, iterations=1
    )

    # RF-amplitude sweep (smaller grid) for the gain-compression view.
    sweep_rows = []
    gains = []
    for amplitude in RF_AMPLITUDES:
        _, metrics, feedthrough = _measure(amplitude, SWEEP_GRID)
        gains.append(metrics.gain)
        sweep_rows.append(
            [
                f"{amplitude:.3f}",
                f"{metrics.baseband_amplitude * 1e3:.2f} mV",
                f"{metrics.gain:.3f}",
                f"{metrics.gain_db:+.2f} dB",
                f"{100 * metrics.distortion:.2f}%",
                f"{feedthrough:.3f}",
            ]
        )
    print_series(
        "TAB-GAIN sweep: balanced mixer, pure-tone RF drive",
        ["RF amplitude (V)", "baseband @ fd", "conv. gain", "gain (dB)", "baseband THD",
         "LO feedthrough ratio"],
        sweep_rows,
    )

    gain_spread = (max(gains) - min(gains)) / max(gains)
    rows = [
        ComparisonRow(
            "pure-tone drive yields gain figure",
            "yes (Section 1 / 3)",
            f"gain {headline_metrics.gain:.3f} ({headline_metrics.gain_db:+.2f} dB)",
        ),
        ComparisonRow(
            "pure-tone drive yields distortion figure",
            "yes",
            f"baseband THD {100 * headline_metrics.distortion:.2f}%",
        ),
        ComparisonRow(
            "small-signal gain is amplitude independent",
            "expected for a linear mixer core",
            f"gain spread over sweep {100 * gain_spread:.1f}%",
        ),
        ComparisonRow(
            "output is a clean baseband waveform",
            "carrier removed by the balanced topology + RC loads",
            f"LO feedthrough ratio {headline_feedthrough:.3f}",
        ),
    ]
    print_table("TAB-GAIN - down-conversion gain and distortion (pure tones)", rows)

    assert headline_metrics.gain > 0.1
    assert headline_metrics.distortion < 1.0
    assert gain_spread < 0.35
    # The shared bit-stream-free session solution must agree with the
    # benchmarked one (same circuit, same grid).
    shared_metrics = conversion_metrics(shared, "outp", "outn", mixer.rf_amplitude)
    assert np.isclose(shared_metrics.gain, headline_metrics.gain, rtol=1e-6)
