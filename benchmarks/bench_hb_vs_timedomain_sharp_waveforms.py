"""MOT-HB — Fourier (harmonic balance) vs time-domain representation of sharp waveforms.

The paper's motivation (Section 1): Fourier-series expansions are the
"Achilles' heel" of harmonic balance for switching RF circuits, whose
waveforms have sharp corners; time-domain representations handle them
naturally.  This bench quantifies that statement on the switching mixer's
own waveform:

* a reference periodic steady state of the LO-driven switching stage is
  computed with a fine time-domain collocation,
* the waveform is then re-expanded (a) in a truncated Fourier series with K
  harmonics — what HB would have to carry — and (b) on a uniform N-point
  time grid with the low-order interpolation the MPDE grid uses,
* the bench reports how many harmonics / samples each representation needs
  to reach 2 % and 0.5 % RMS accuracy.
"""

from __future__ import annotations

import numpy as np

from paper_targets import ComparisonRow, print_series, print_table
from repro.analysis import collocation_periodic_steady_state
from repro.rf import unbalanced_switching_mixer
from repro.utils import NewtonOptions

LO_FREQUENCY = 2.0e6
REFERENCE_SAMPLES = 512
ACCURACY_TARGETS = (0.02, 0.005)


def _reference_waveform():
    """Fine time-domain PSS of the switching node (the sharp waveform)."""
    mixer = unbalanced_switching_mixer(
        lo_frequency=LO_FREQUENCY, difference_frequency=LO_FREQUENCY / 40, rf_amplitude=0.0
    )
    mna = mixer.compile()
    result = collocation_periodic_steady_state(
        mna,
        1.0 / LO_FREQUENCY,
        REFERENCE_SAMPLES,
        method="bdf2",
        newton_options=NewtonOptions(max_iterations=100),
    )
    return result.waveform("out")


def _fourier_truncation_error(waveform, n_harmonics: int) -> float:
    values = waveform.values[:-1]  # drop the repeated endpoint
    coeffs = np.fft.rfft(values) / values.size
    truncated = coeffs.copy()
    truncated[n_harmonics + 1 :] = 0.0
    reconstructed = np.fft.irfft(truncated * values.size, n=values.size)
    return float(np.sqrt(np.mean((reconstructed - values) ** 2)) / np.sqrt(np.mean(values**2)))


def _time_sampling_error(waveform, n_samples: int) -> float:
    period = waveform.duration
    coarse_times = waveform.times[0] + np.arange(n_samples) * period / n_samples
    coarse_values = np.asarray(waveform(coarse_times))
    # Periodic linear interpolation back onto the reference grid.
    wrapped_times = np.concatenate([coarse_times, [waveform.times[0] + period]])
    wrapped_values = np.concatenate([coarse_values, [coarse_values[0]]])
    reconstructed = np.interp(waveform.times, wrapped_times, wrapped_values)
    return float(
        np.sqrt(np.mean((reconstructed - waveform.values) ** 2))
        / np.sqrt(np.mean(waveform.values**2))
    )


def _smallest_meeting(target: float, error_of, candidates) -> int:
    for candidate in candidates:
        if error_of(candidate) <= target:
            return int(candidate)
    return int(candidates[-1])


def test_hb_vs_timedomain_representation(benchmark):
    waveform = benchmark.pedantic(_reference_waveform, rounds=1, iterations=1)

    harmonic_counts = np.arange(1, 129)
    sample_counts = np.arange(8, 513, 4)

    series_rows = []
    for k in (4, 8, 16, 32, 64):
        series_rows.append(
            [f"K = {k}", f"{100 * _fourier_truncation_error(waveform, k):.2f}%"]
        )
    for n in (16, 32, 64, 128):
        series_rows.append(
            [f"N = {n} samples", f"{100 * _time_sampling_error(waveform, n):.2f}%"]
        )
    print_series(
        "MOT-HB: RMS error of truncated Fourier (K harmonics) vs uniform time sampling (N points)",
        ["representation", "relative RMS error"],
        series_rows,
    )

    rows = []
    for target in ACCURACY_TARGETS:
        k_needed = _smallest_meeting(
            target, lambda k: _fourier_truncation_error(waveform, k), harmonic_counts
        )
        n_needed = _smallest_meeting(
            target, lambda n: _time_sampling_error(waveform, n), sample_counts
        )
        # Unknowns carried per circuit variable: 2K+1 real coefficients vs N samples.
        rows.append(
            ComparisonRow(
                f"unknowns per circuit variable for {100 * target:.1f}% accuracy",
                "HB needs many terms for sharp waveforms",
                f"Fourier: {2 * k_needed + 1} (K={k_needed}) vs time samples: {n_needed}",
            )
        )
    rows.append(
        ComparisonRow(
            "qualitative conclusion",
            "time-domain preferred for strongly nonlinear (switching) circuits",
            "sharp switching edges keep the Fourier count comparable to or above "
            "the time-sample count",
        )
    )
    print_table("MOT-HB - harmonic balance vs time-domain representation of sharp waveforms", rows)

    # The waveform really is 'sharp': its spectrum decays slowly, so a
    # handful of harmonics is NOT enough for 2% accuracy.
    assert _fourier_truncation_error(waveform, 4) > 0.02
    # Both representations eventually converge.
    assert _fourier_truncation_error(waveform, 128) < 0.005
    assert _time_sampling_error(waveform, 512) < 1e-9
