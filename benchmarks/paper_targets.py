"""Reference values reported by the paper, used by the benchmark harness.

The reproduction does not aim to match absolute CPU seconds (the paper's
numbers are from a 2002-era 1.4 GHz Athlon running a compiled simulator);
the quantities below are the *structural* targets — grid sizes, frequency
plans, qualitative shapes and relative factors — that the benches compare
against and print next to the measured values.
"""

from __future__ import annotations

from dataclasses import dataclass

# --- Section 2: ideal mixing example (Figs. 1 and 2) -------------------------
IDEAL_MIXING_F1 = 1.0e9
IDEAL_MIXING_FD = 10.0e3
IDEAL_MIXING_DIFFERENCE_PERIOD = 1.0e-4  # "0.1 ms" span of Fig. 2
IDEAL_MIXING_DIFFERENCE_AMPLITUDE = 0.5  # cos*cos product: difference tone = 1/2

# --- Section 3: balanced LO-doubling mixer (Figs. 3-6) ------------------------
BALANCED_LO_FREQUENCY = 450.0e6
BALANCED_BASEBAND_FREQUENCY = 15.0e3
BALANCED_BASEBAND_PERIOD = 1.0 / 15.0e3  # ~0.0667 ms, the span of Figs. 3-4
FIG6_CENTER_TIME = 2.228e-6  # Fig. 6 shows ~5 LO periods around t ~ 2.22-2.23 us
FIG6_N_LO_PERIODS = 5

# --- Section 3: computational speed-up ----------------------------------------
PAPER_GRID_FAST = 40
PAPER_GRID_SLOW = 30
PAPER_GRID_POINTS = 1200
PAPER_NEWTON_ITERATIONS = 26          # "longest run (26 iterations)"
PAPER_SHOOTING_TIME_STEPS = 300_000   # ">= 300000 time-steps" for the baseline
PAPER_SYSTEM_SIZE_RATIO = 250         # "more than 250x larger" equation system
PAPER_SPEEDUP_ORDERS_OF_MAGNITUDE = 2  # "more than two orders of magnitude"
PAPER_BREAK_EVEN_DISPARITY = 200       # "frequency disparities of 200 and above"


@dataclass(frozen=True)
class ComparisonRow:
    """One row of a paper-vs-measured comparison table."""

    label: str
    paper: str
    measured: str

    def format(self, width: int = 44) -> str:
        return f"  {self.label:<{width}} paper: {self.paper:<18} measured: {self.measured}"


def print_table(title: str, rows: list[ComparisonRow]) -> None:
    """Print a paper-vs-measured table to stdout (captured by pytest -s)."""
    bar = "=" * 100
    print(f"\n{bar}\n{title}\n{bar}")
    for row in rows:
        print(row.format())
    print(bar)


def print_series(title: str, headers: list[str], rows: list[list[str]]) -> None:
    """Print a small numeric table (one figure curve or sweep)."""
    print(f"\n--- {title} ---")
    print("  " + " | ".join(f"{h:>16}" for h in headers))
    for row in rows:
        print("  " + " | ".join(f"{c:>16}" for c in row))
