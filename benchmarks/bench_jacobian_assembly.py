"""BENCH-ASSEMBLY — sparse stamped assembly vs the seed's dense hot path.

This bench tracks the performance of the evaluation/assembly pipeline that
every analysis funnels through, on the paper's balanced mixer at the paper's
40 x 30 MPDE grid (P = 1200 evaluation points):

1. **Residual-only vs full evaluation** — the ``need_jacobian=False`` device
   fast path used by line searches, continuation ramps and convergence
   checks, versus a full dense evaluation with ``(P, n, n)`` Jacobian stacks.
2. **MPDE Jacobian assembly, dense path vs sparse path** — the seed rebuilt
   dense Jacobian stacks and re-ran ``block_diag_from_array`` + a ``kron``
   product every Newton iteration (kept as
   ``MPDEProblem.jacobian_dense_reference``); the compiled path updates the
   numeric values of a precomputed symbolic structure.
3. **Matrix-free MPDE Newton** — the balanced-mixer MPDE solved with the
   direct sparse solver and with the matrix-free GMRES mode (averaged-
   Jacobian ILU preconditioner), checking both hit the same residual
   tolerance and recording the solver statistics.
4. **Preconditioner modes** — total GMRES inner-iteration counts per
   preconditioner on the spectral (``fourier``, two-tone HB equivalent)
   balanced-mixer solve, where the per-harmonic block-circulant mode must cut
   iterations by >= 3x versus the averaged-Jacobian ILU (the PR-2 acceptance
   floor) and the slow-axis partially-averaged ``block_circulant_fast`` mode
   must cut them by a further >= 1.5x versus ``block_circulant`` (the PR-4
   floor), plus all modes on a small ``bdf2`` switching-mixer case.
5. **Batched evaluation engine** — full and residual-only ``evaluate_sparse``
   at the paper grid on the batched (gather/compute/scatter) backend versus
   the per-device ``backend="loop"`` reference; the batched engine must be
   >= 2x faster on the full evaluation (the PR-3 acceptance floor).  The two
   backends are timed interleaved so CPU frequency drift cancels out of the
   ratio.
6. **Parallel execution layer** (PR 5) — sharded vs serial ``evaluate_sparse``
   wall time at a large synthetic grid (80 x 60, P = 4800 — where
   ``P * n_group`` kernel work dominates the pool dispatch overhead), eager
   vs lazy per-harmonic LU build wall time for the partially-averaged
   preconditioner, and the ``MPDEStats`` wall-time breakdown of every solver
   mode.  The sharded path must be >= 1.5x faster than serial with 4 workers
   — a floor that is *asserted only where it is physically meaningful*: on a
   single-CPU or fork-less runner the section records the resolution's
   fallback reason and the floor is skipped (the same graceful degradation
   the library itself performs).  ``--workers N`` (shared with the whole
   benchmark suite via ``benchmarks/conftest.py``) overrides the worker
   count.
7. **Worker-resident factor service** (PR 7) — the full matrix-free
   ``block_circulant_fast`` solve at the large 80 x 60 grid with
   ``factor_backend="resident"`` versus the serial in-process path.  The
   resident service parallelises the per-harmonic back-substitutions of
   every preconditioner apply (the dominant ``gmres_time_s`` term at large
   ``n_slow``), so ``gmres_time_s`` must drop by >= 1.3x — again asserted
   only where the host can actually shard, with the skip reason recorded
   otherwise.  The solves are gated on bit-for-bit equal states first: a
   fast wrong answer is not a speedup.
8. **Scenario enumeration** (PR 9) — wall time of one smoke solve per
   registered scenario, mirroring the ``tier1-scenarios`` pre-flight.
   Trend tracking only, no floor (the scenario set is expected to grow).
9. **Service throughput** (PR 10) — repeated identical smoke requests
   through the simulation service (``repro.service``), cold
   (``memoize_results=False``, every request really solves on the shared
   compiled-circuit cache) versus warm (memoised results).  The warm pass
   must be >= 2x the cold throughput — the value of warm infrastructure is
   the service's reason to exist.

Results are written to ``BENCH_perf_assembly.json`` at the repository root so
the perf trajectory is tracked from this PR onward.  ``--check`` exits
non-zero when any performance floor (assembly speedup >= 3x, block-circulant
iteration cut >= 3x, partially-averaged cut >= 1.5x, batched engine >= 2x,
service warm-cache throughput >= 2x cold, plus sharded evaluation >= 1.5x
and resident-apply ``gmres_time_s`` cut >= 1.3x where applicable) is
violated, for CI use.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import replace
from pathlib import Path

import numpy as np

from conftest import add_workers_argument
from repro.core import solve_mpde
from repro.core.mpde import MPDEProblem
from repro.parallel import WorkerPool, detect_capabilities, resolve_execution
from repro.rf import balanced_lo_doubling_mixer, unbalanced_switching_mixer
from repro.utils import MPDEOptions

PAPER_GRID = (40, 30)
#: Large synthetic grid for the sharded-evaluation wall-time floor: P = 4800
#: points is where kernel FLOPs clearly dominate the per-call pool dispatch
#: (see the cost model in docs/parallel.md).
LARGE_GRID = (80, 60)
#: Spectral (fourier x fourier) grid for the preconditioner-mode comparison.
#: Large enough that the averaged-ILU mode visibly degrades on stale caches;
#: small enough to keep the bench (and the tier-1 convergence harness, which
#: uses the same grid) fast.  The paper's 40 x 30 spectral case is covered by
#: the slow-marked test in ``tests/test_preconditioners.py``.
SPECTRAL_GRID = (36, 18)
OUTPUT_PATH = Path(__file__).resolve().parents[1] / "BENCH_perf_assembly.json"


def _time_call(fn, *, repeats: int = 20, warmup: int = 3) -> float:
    """Best-of-``repeats`` wall time of ``fn()`` in seconds.

    Best-of (not mean) deliberately: the dense paths allocate multi-MB
    ``(P, n, n)`` stacks whose page-fault behaviour is bimodal across runs,
    and the minimum is the stable comparison point.
    """
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _time_interleaved(fns, *, repeats: int = 60, warmup: int = 10) -> list[float]:
    """Best-of wall times of several callables, sampled round-robin.

    Interleaving means slow CPU-frequency drift hits every callable equally,
    so the *ratios* between the returned times are stable even on a noisy
    machine — which is what the performance floors assert on.
    """
    for fn in fns:
        for _ in range(warmup):
            fn()
    bests = [float("inf")] * len(fns)
    for _ in range(repeats):
        for i, fn in enumerate(fns):
            start = time.perf_counter()
            fn()
            bests[i] = min(bests[i], time.perf_counter() - start)
    return bests


def bench_evaluation_engine(problem: MPDEProblem) -> dict:
    """Batched gather/compute/scatter engine vs the per-device loop path."""
    mna = problem.mna
    rng = np.random.default_rng(7)
    states = rng.normal(scale=0.3, size=(problem.n_grid_points, mna.n_unknowns))

    t_loop, t_batched = _time_interleaved(
        [
            lambda: mna.evaluate_sparse(states, backend="loop"),
            lambda: mna.evaluate_sparse(states, backend="batched"),
        ]
    )
    t_loop_res, t_batched_res = _time_interleaved(
        [
            lambda: mna.evaluate_sparse(states, need_jacobian=False, backend="loop"),
            lambda: mna.evaluate_sparse(states, need_jacobian=False, backend="batched"),
        ]
    )

    # Correctness gate: the floor is only meaningful for identical results.
    loop_eval = mna.evaluate_sparse(states, backend="loop")
    batched_eval = mna.evaluate_sparse(states, backend="batched")
    for name in ("q", "f", "g_data", "c_data"):
        if not np.array_equal(getattr(loop_eval, name), getattr(batched_eval, name)):
            raise RuntimeError(f"batched/loop mismatch in {name}")

    return {
        "n_points": problem.n_grid_points,
        "n_devices": len(mna.devices),
        "loop_eval_sparse_ms": t_loop * 1e3,
        "batched_eval_sparse_ms": t_batched * 1e3,
        "batched_speedup": t_loop / t_batched,
        "loop_residual_only_ms": t_loop_res * 1e3,
        "batched_residual_only_ms": t_batched_res * 1e3,
        "batched_residual_only_speedup": t_loop_res / t_batched_res,
    }


def bench_evaluation(problem: MPDEProblem) -> dict:
    mna = problem.mna
    rng = np.random.default_rng(7)
    states = rng.normal(scale=0.3, size=(problem.n_grid_points, mna.n_unknowns))

    t_full = _time_call(lambda: mna.evaluate(states))
    t_residual = _time_call(lambda: mna.evaluate(states, need_jacobian=False))
    t_sparse = _time_call(lambda: mna.evaluate_sparse(states))
    return {
        "n_points": problem.n_grid_points,
        "n_unknowns": mna.n_unknowns,
        "full_dense_eval_ms": t_full * 1e3,
        "residual_only_eval_ms": t_residual * 1e3,
        "sparse_eval_ms": t_sparse * 1e3,
        "residual_only_speedup": t_full / t_residual,
    }


def bench_assembly(problem: MPDEProblem) -> dict:
    rng = np.random.default_rng(11)
    x = rng.normal(scale=0.3, size=problem.n_total_unknowns)

    # Correctness gate: the two paths must agree before timing means anything.
    dense_ref = problem.jacobian_dense_reference(x)
    sparse = problem.jacobian(x)
    scale = max(1.0, abs(dense_ref).max())
    max_diff = abs(sparse - dense_ref).max() if (sparse - dense_ref).nnz else 0.0
    if max_diff > 1e-12 * scale:
        raise RuntimeError(f"sparse/dense Jacobian mismatch: {max_diff}")

    t_dense = _time_call(lambda: problem.jacobian_dense_reference(x))
    t_sparse = _time_call(lambda: problem.jacobian(x))
    return {
        "grid": list(PAPER_GRID),
        "n_total_unknowns": problem.n_total_unknowns,
        "jacobian_nnz": int(sparse.nnz),
        "dense_path_ms": t_dense * 1e3,
        "sparse_path_ms": t_sparse * 1e3,
        "assembly_speedup": t_dense / t_sparse,
        "max_abs_mismatch": float(max_diff),
    }


def _timing_breakdown(stats) -> dict:
    """The MPDEStats wall-time buckets, validated against the total.

    Every solver mode must populate the breakdown (non-zero) and the
    buckets must sum to at most the measured wall time — the contract the
    instrumentation pass guarantees; a violation is a bug, not a slow run.
    """
    breakdown = {
        "eval_time_s": float(stats.eval_time_s),
        "factorization_time_s": float(stats.factorization_time_s),
        "preconditioner_build_time_s": float(stats.preconditioner_build_time_s),
        "gmres_time_s": float(stats.gmres_time_s),
    }
    accounted = sum(breakdown.values())
    if not 0.0 < accounted <= stats.wall_time_seconds:
        raise RuntimeError(
            f"MPDEStats timing breakdown inconsistent: buckets sum to "
            f"{accounted:.6f}s of {stats.wall_time_seconds:.6f}s total"
        )
    breakdown["accounted_fraction"] = accounted / stats.wall_time_seconds
    return breakdown


def bench_mpde_solves(mixer, mna) -> dict:
    abstol = MPDEOptions().newton.abstol

    def run(options: MPDEOptions) -> dict:
        start = time.perf_counter()
        result = solve_mpde(mna, mixer.scales, options)
        elapsed = time.perf_counter() - start
        stats = result.stats
        return {
            "converged": bool(stats.converged),
            "residual_norm": float(stats.residual_norm),
            "newton_iterations": int(stats.newton_iterations),
            "linear_solves": int(stats.linear_solves),
            "linear_iterations": int(stats.linear_iterations),
            "jacobian_factorizations": int(stats.jacobian_factorizations),
            "preconditioner_builds": int(stats.preconditioner_builds),
            "wall_time_s": elapsed,
            "timing": _timing_breakdown(stats),
        }

    direct = run(MPDEOptions(n_fast=PAPER_GRID[0], n_slow=PAPER_GRID[1]))
    direct_full_newton = run(
        MPDEOptions(n_fast=PAPER_GRID[0], n_slow=PAPER_GRID[1], chord_newton=False)
    )
    matrix_free = run(
        MPDEOptions(n_fast=PAPER_GRID[0], n_slow=PAPER_GRID[1], matrix_free=True)
    )
    checks = (
        ("direct", direct),
        ("direct_full_newton", direct_full_newton),
        ("matrix_free", matrix_free),
    )
    for mode, result in checks:
        if not (result["converged"] and result["residual_norm"] <= abstol):
            raise RuntimeError(f"{mode} MPDE solve did not reach the Newton tolerance")
    return {
        "newton_abstol": abstol,
        "direct": direct,
        "direct_full_newton": direct_full_newton,
        "matrix_free": matrix_free,
    }


def bench_preconditioners(mixer, mna) -> dict:
    """Inner-iteration counts per preconditioner mode (matrix-free GMRES)."""

    def run(run_mna, scales, options: MPDEOptions) -> dict:
        start = time.perf_counter()
        result = solve_mpde(run_mna, scales, options)
        elapsed = time.perf_counter() - start
        stats = result.stats
        if not stats.converged:
            raise RuntimeError(
                f"{options.preconditioner!r} preconditioner solve did not converge"
            )
        return {
            "linear_solves": int(stats.linear_solves),
            "linear_iterations": int(stats.linear_iterations),
            "preconditioner_builds": int(stats.preconditioner_builds),
            "preconditioner_harmonic_builds": int(stats.preconditioner_harmonic_builds),
            "preconditioner_degraded": bool(stats.preconditioner_degraded),
            "wall_time_s": elapsed,
        }

    spectral = {}
    for mode in ("ilu", "block_circulant", "block_circulant_fast"):
        spectral[mode] = run(
            mna,
            mixer.scales,
            MPDEOptions(
                n_fast=SPECTRAL_GRID[0],
                n_slow=SPECTRAL_GRID[1],
                fast_method="fourier",
                slow_method="fourier",
                matrix_free=True,
                preconditioner=mode,
            ),
        )
    spectral_ratio = (
        spectral["ilu"]["linear_iterations"]
        / spectral["block_circulant"]["linear_iterations"]
    )
    # The PR-4 headline: keeping the fast-axis (LO-phase) variation and
    # averaging only along the slow axis must cut iterations further still.
    fast_ratio = (
        spectral["block_circulant"]["linear_iterations"]
        / spectral["block_circulant_fast"]["linear_iterations"]
    )

    # All modes on a small finite-difference case (Jacobi and "none" are
    # not practical on the spectral operators — that is the point).
    switching = unbalanced_switching_mixer(
        lo_frequency=2e6, difference_frequency=50e3
    )
    switching_mna = switching.compile()
    small = {
        mode: run(
            switching_mna,
            switching.scales,
            MPDEOptions(n_fast=16, n_slow=8, matrix_free=True, preconditioner=mode),
        )
        for mode in ("ilu", "block_circulant", "block_circulant_fast", "jacobi", "none")
    }

    return {
        "spectral_grid": list(SPECTRAL_GRID),
        "spectral_balanced_mixer": spectral,
        "spectral_iteration_ratio_ilu_over_block_circulant": spectral_ratio,
        "spectral_iteration_ratio_block_circulant_over_fast": fast_ratio,
        "switching_mixer_16x8_bdf2": small,
    }


def bench_parallel(mixer, mna, workers: int | None) -> dict:
    """Sharded vs serial evaluation and eager vs lazy harmonic builds.

    The section always runs (recording the environment and the eager/lazy
    build comparison); the sharded-vs-serial wall-time comparison runs only
    where the execution layer actually shards, mirroring the library's own
    graceful degradation.  ``speedup_floor_applicable`` tells ``--check``
    whether the >= 1.5x floor is physically meaningful here (sharding can
    only beat serial with a second core).
    """
    caps = detect_capabilities()
    resolution = resolve_execution("sharded", workers)
    record: dict = {
        "cpu_count": caps.cpu_count,
        "fork_available": caps.fork_available,
        "requested_workers": workers,
        "resolved_backend": resolution.backend,
        "n_workers": resolution.n_workers,
        "fallback_reason": resolution.fallback_reason,
        "large_grid": list(LARGE_GRID),
        # The >= 1.5x floor is documented (and modelled) at 4 workers; with
        # only 2 the cost model itself predicts ~1.4x (docs/parallel.md), so
        # asserting there would fail deterministically without any
        # regression.  Require a host that can actually run >= 3 workers.
        "speedup_floor_applicable": bool(
            resolution.sharded
            and caps.serial_only_reason is None
            and resolution.n_workers >= 3
        ),
    }

    rng = np.random.default_rng(23)
    n_points = LARGE_GRID[0] * LARGE_GRID[1]
    states = rng.normal(scale=0.3, size=(n_points, mna.n_unknowns))
    if resolution.sharded:
        n_workers = resolution.n_workers

        def sharded_eval():
            return mna.evaluate_sparse(
                states, kernel_backend="sharded", n_workers=n_workers
            )

        # Correctness gate: the wall-time ratio is only meaningful for
        # bit-for-bit identical results.
        serial_result = mna.evaluate_sparse(states)
        sharded_result = sharded_eval()
        for name in ("q", "f", "g_data", "c_data"):
            if not np.array_equal(
                getattr(serial_result, name), getattr(sharded_result, name)
            ):
                raise RuntimeError(f"sharded/serial mismatch in {name}")
        t_serial, t_sharded = _time_interleaved(
            [lambda: mna.evaluate_sparse(states), sharded_eval],
            repeats=40,
            warmup=5,
        )
        record.update(
            {
                "serial_eval_sparse_ms": t_serial * 1e3,
                "sharded_eval_sparse_ms": t_sharded * 1e3,
                "sharded_speedup": t_serial / t_sharded,
            }
        )

    # Eager vs lazy per-harmonic LU build wall time: one build + one apply
    # covers all n_slow // 2 + 1 distinct factorisations on either path
    # (lazy pays them inside the first apply, eager at construction).
    problem = MPDEProblem(
        mna,
        mixer.scales,
        MPDEOptions(
            n_fast=SPECTRAL_GRID[0],
            n_slow=SPECTRAL_GRID[1],
            fast_method="fourier",
            slow_method="fourier",
        ),
    )
    x = rng.normal(scale=0.2, size=problem.n_total_unknowns)
    evaluation = mna.evaluate_sparse(problem.reshape_states(x))
    vector = rng.normal(size=problem.n_total_unknowns)
    factor_pool = WorkerPool(resolution.n_workers) if resolution.sharded else None

    def lazy_build_and_apply():
        built = problem.build_preconditioner(
            "block_circulant_fast",
            c_data=evaluation.c_data,
            g_data=evaluation.g_data,
        )
        built.solve(vector)

    def eager_build_and_apply():
        built = problem.build_preconditioner(
            "block_circulant_fast",
            c_data=evaluation.c_data,
            g_data=evaluation.g_data,
            eager=True,
            factor_pool=factor_pool,
        )
        built.solve(vector)

    t_lazy, t_eager = _time_interleaved(
        [lazy_build_and_apply, eager_build_and_apply], repeats=10, warmup=2
    )
    if factor_pool is not None:
        factor_pool.close()
    record.update(
        {
            "harmonic_build_grid": list(SPECTRAL_GRID),
            "lazy_build_apply_ms": t_lazy * 1e3,
            "eager_build_apply_ms": t_eager * 1e3,
            "eager_over_lazy": t_lazy / t_eager,
        }
    )
    return record


def bench_resident_apply(mixer, mna, workers: int | None) -> dict:
    """Worker-resident factor service vs the in-process apply path.

    Both solves run the matrix-free ``block_circulant_fast`` mode at the
    large 80 x 60 grid with identical parallel evaluation, so the *only*
    difference between them is ``factor_backend``: ``"threads"`` applies the
    ``n_slow // 2 + 1`` per-harmonic back-substitutions in-process, while
    ``"resident"`` dispatches them to the worker-resident factor service.
    The ``gmres_time_s`` bucket isolates exactly the work the service
    parallelises, and the >= 1.3x floor on it is asserted only where the
    host can shard (``speedup_floor_applicable``) — a single-CPU or
    fork-less runner records the resolution's fallback reason instead.
    """
    caps = detect_capabilities()
    resolution = resolve_execution("sharded", workers)
    record: dict = {
        "cpu_count": caps.cpu_count,
        "fork_available": caps.fork_available,
        "requested_workers": workers,
        "resolved_backend": resolution.backend,
        "n_workers": resolution.n_workers,
        "fallback_reason": resolution.fallback_reason,
        "grid": list(LARGE_GRID),
        # With even 2 real cores the service halves the per-apply
        # back-substitution critical path (the harmonics shard evenly), so
        # unlike the evaluation floor the 1.3x gmres_time_s cut is already
        # meaningful at n_workers == 2.
        "speedup_floor_applicable": bool(
            resolution.sharded
            and caps.serial_only_reason is None
            and resolution.n_workers >= 2
        ),
    }
    if not resolution.sharded:
        record["skip_reason"] = (
            resolution.fallback_reason or "execution layer resolved to serial"
        )
        return record

    base = MPDEOptions(
        n_fast=LARGE_GRID[0],
        n_slow=LARGE_GRID[1],
        matrix_free=True,
        preconditioner="block_circulant_fast",
        parallel=True,
        n_workers=resolution.n_workers,
    )
    in_process = solve_mpde(mna, mixer.scales, replace(base, factor_backend="threads"))
    resident = solve_mpde(mna, mixer.scales, replace(base, factor_backend="resident"))

    # Correctness gate: the resident service is bit-for-bit equal to the
    # in-process path by contract; a fast wrong answer is not a speedup.
    if not np.array_equal(in_process.states, resident.states):
        raise RuntimeError("resident/in-process solve states differ")
    if resident.stats.parallel_fallback_reason:
        # The service fell back mid-solve (worker death / hang): the states
        # are still correct, but the timing no longer measures the service.
        record["resident_fallback_reason"] = resident.stats.parallel_fallback_reason
        record["speedup_floor_applicable"] = False

    record.update(
        {
            "n_harmonic_factors": LARGE_GRID[1] // 2 + 1,
            "in_process_gmres_time_s": float(in_process.stats.gmres_time_s),
            "resident_gmres_time_s": float(resident.stats.gmres_time_s),
            "gmres_speedup": float(
                in_process.stats.gmres_time_s / resident.stats.gmres_time_s
            ),
            "resident_dispatch_time_s": float(
                resident.stats.gmres_apply_dispatch_time_s
            ),
            "resident_backsub_time_s": float(resident.stats.gmres_backsub_time_s),
            "in_process_backsub_time_s": float(in_process.stats.gmres_backsub_time_s),
            "in_process_wall_time_s": float(in_process.stats.wall_time_seconds),
            "resident_wall_time_s": float(resident.stats.wall_time_seconds),
            "linear_iterations": int(resident.stats.linear_iterations),
        }
    )
    return record


def bench_scenario_enumeration() -> dict:
    """Wall time of one smoke solve per registered scenario (first case only).

    Mirrors what the ``REPRO_TIER1_SCENARIO_SMOKE=1`` conftest pre-flight and
    the ``tier1-scenarios`` CI job pay per scenario.  Recorded for trend
    tracking only — no floor is asserted, since the set of scenarios is
    expected to grow.
    """
    from repro.scenarios import build_scenario_smoke, run_scenario, scenario_names

    record: dict = {}
    for name in scenario_names():
        scenario = build_scenario_smoke(name)
        start = time.perf_counter()
        run_scenario(scenario, first_case_only=True)
        elapsed = time.perf_counter() - start
        case = scenario.cases[0]
        record[name] = {
            "wall_time_s": elapsed,
            "n_cases": len(scenario.cases),
            "grid": list(case.grid),
            "analysis": case.analysis,
        }
    return record


def bench_service_throughput(n_requests: int = 8) -> dict:
    """Warm-infrastructure vs cold service throughput on repeat requests.

    Both passes push the same ``n_requests`` identical smoke requests
    through a :class:`~repro.service.SimulationService` (submit one, let it
    finish, then submit the rest — the pattern of a sweep client reissuing
    a known request).  The *cold* pass disables result memoisation, so
    every request re-solves; the *warm* pass keeps the service defaults,
    so repeats are served from the memoised result cache on top of the
    compiled-circuit cache.  The floor asserts the warm path is at least
    2x the cold throughput — the service's entire reason to keep warm
    state around.
    """
    from repro.service import ServiceOptions, SimulationService

    scenario = "frequency_doubler"

    def run_pass(memoize: bool) -> tuple[float, object]:
        service = SimulationService(
            ServiceOptions(
                n_workers=2, queue_capacity=n_requests, memoize_results=memoize
            )
        )
        try:
            start = time.perf_counter()
            service.submit(scenario).result(timeout=600.0)
            jobs = [service.submit(scenario) for _ in range(n_requests - 1)]
            for job in jobs:
                job.result(timeout=600.0)
            elapsed = time.perf_counter() - start
            snapshot = service.telemetry()
        finally:
            service.shutdown()
        return elapsed, snapshot

    cold_s, cold_snapshot = run_pass(memoize=False)
    warm_s, warm_snapshot = run_pass(memoize=True)
    return {
        "scenario": scenario,
        "n_requests": n_requests,
        "cold_wall_time_s": cold_s,
        "warm_wall_time_s": warm_s,
        "cold_jobs_per_s": n_requests / cold_s,
        "warm_jobs_per_s": n_requests / warm_s,
        "warm_speedup": cold_s / warm_s,
        "cold_compiled_cache_hit_rate": cold_snapshot.cache.hit_rate,
        "warm_result_cache_hits": warm_snapshot.result_cache_hits,
        "cold_latency_p50_s": cold_snapshot.latency_p50_s,
        "warm_latency_p50_s": warm_snapshot.latency_p50_s,
    }


def main(check: bool = False, workers: int | None = None) -> dict:
    mixer = balanced_lo_doubling_mixer()
    mna = mixer.compile()
    problem = MPDEProblem(
        mna, mixer.scales, MPDEOptions(n_fast=PAPER_GRID[0], n_slow=PAPER_GRID[1])
    )

    evaluation = bench_evaluation(problem)
    engine = bench_evaluation_engine(problem)
    assembly = bench_assembly(problem)
    solves = bench_mpde_solves(mixer, mna)
    preconditioners = bench_preconditioners(mixer, mna)
    parallel = bench_parallel(mixer, mna, workers)
    resident_apply = bench_resident_apply(mixer, mna, workers)
    mna.close()
    scenario_enumeration = bench_scenario_enumeration()
    service_throughput = bench_service_throughput()

    payload = {
        "bench": "jacobian_assembly",
        "circuit": mna.circuit.name,
        "evaluation": evaluation,
        "evaluation_engine": engine,
        "assembly": assembly,
        "mpde_solves": solves,
        "preconditioners": preconditioners,
        "parallel": parallel,
        "resident_apply": resident_apply,
        "scenario_enumeration": scenario_enumeration,
        "service_throughput": service_throughput,
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    print("== residual-only vs full evaluation (P = %d) ==" % evaluation["n_points"])
    print(
        "  full %.2f ms   residual-only %.2f ms   speedup %.1fx"
        % (
            evaluation["full_dense_eval_ms"],
            evaluation["residual_only_eval_ms"],
            evaluation["residual_only_speedup"],
        )
    )
    print("== batched engine vs per-device loop (evaluate_sparse, P = %d) ==" % engine["n_points"])
    print(
        "  full: loop %.2f ms   batched %.2f ms   speedup %.2fx"
        % (
            engine["loop_eval_sparse_ms"],
            engine["batched_eval_sparse_ms"],
            engine["batched_speedup"],
        )
    )
    print(
        "  residual-only: loop %.2f ms   batched %.2f ms   speedup %.2fx"
        % (
            engine["loop_residual_only_ms"],
            engine["batched_residual_only_ms"],
            engine["batched_residual_only_speedup"],
        )
    )
    print("== MPDE Jacobian assembly at %dx%d ==" % PAPER_GRID)
    print(
        "  dense path %.1f ms   sparse path %.1f ms   speedup %.1fx"
        % (
            assembly["dense_path_ms"],
            assembly["sparse_path_ms"],
            assembly["assembly_speedup"],
        )
    )
    for mode in ("direct", "direct_full_newton", "matrix_free"):
        s = solves[mode]
        print(
            "== %s solve ==  residual %.2e  newton %d  factorizations %d  linear iters %d  %.2f s"
            % (
                mode,
                s["residual_norm"],
                s["newton_iterations"],
                s["jacobian_factorizations"],
                s["linear_iterations"],
                s["wall_time_s"],
            )
        )
    print("== preconditioner modes (spectral %dx%d, matrix-free) ==" % SPECTRAL_GRID)
    for mode, s in preconditioners["spectral_balanced_mixer"].items():
        print(
            "  %-20s linear iters %5d  builds %2d  harmonic LUs %3d  %.2f s"
            % (
                mode,
                s["linear_iterations"],
                s["preconditioner_builds"],
                s["preconditioner_harmonic_builds"],
                s["wall_time_s"],
            )
        )
    print(
        "  iteration cut vs ILU: %.2fx (floor 3x)"
        % preconditioners["spectral_iteration_ratio_ilu_over_block_circulant"]
    )
    print(
        "  partially-averaged cut vs block_circulant: %.2fx (floor 1.5x)"
        % preconditioners["spectral_iteration_ratio_block_circulant_over_fast"]
    )
    print("== wall-time breakdown (paper-grid solves) ==")
    for mode in ("direct", "direct_full_newton", "matrix_free"):
        timing = solves[mode]["timing"]
        print(
            "  %-20s eval %.3fs  factor %.3fs  precond %.3fs  gmres %.3fs  (%.0f%% of wall)"
            % (
                mode,
                timing["eval_time_s"],
                timing["factorization_time_s"],
                timing["preconditioner_build_time_s"],
                timing["gmres_time_s"],
                100.0 * timing["accounted_fraction"],
            )
        )
    print(
        "== parallel layer (%d CPUs, backend %s, %d workers) =="
        % (parallel["cpu_count"], parallel["resolved_backend"], parallel["n_workers"])
    )
    if "sharded_speedup" in parallel:
        print(
            "  sharded evaluate_sparse at %dx%d: serial %.2f ms   sharded %.2f ms   speedup %.2fx"
            % (
                *LARGE_GRID,
                parallel["serial_eval_sparse_ms"],
                parallel["sharded_eval_sparse_ms"],
                parallel["sharded_speedup"],
            )
        )
    else:
        print("  sharded evaluation skipped: %s" % parallel["fallback_reason"])
    print(
        "  harmonic LU builds (build + first apply): lazy %.2f ms   eager %.2f ms"
        % (parallel["lazy_build_apply_ms"], parallel["eager_build_apply_ms"])
    )
    print("== worker-resident factor service (matrix-free %dx%d) ==" % LARGE_GRID)
    if "gmres_speedup" in resident_apply:
        print(
            "  gmres_time_s: in-process %.3f s   resident %.3f s   speedup %.2fx"
            % (
                resident_apply["in_process_gmres_time_s"],
                resident_apply["resident_gmres_time_s"],
                resident_apply["gmres_speedup"],
            )
        )
        print(
            "  resident apply split: dispatch %.3f s   back-substitution %.3f s"
            % (
                resident_apply["resident_dispatch_time_s"],
                resident_apply["resident_backsub_time_s"],
            )
        )
    else:
        print("  resident-apply comparison skipped: %s" % resident_apply["skip_reason"])
    print("== scenario enumeration (smoke config, first case) ==")
    for name, entry in scenario_enumeration.items():
        print(
            "  %-26s %-4s %3dx%-3d %d case(s)  %.2f s"
            % (
                name,
                entry["analysis"],
                entry["grid"][0],
                entry["grid"][1],
                entry["n_cases"],
                entry["wall_time_s"],
            )
        )
    print("== simulation service throughput (%d repeat requests) ==" % service_throughput["n_requests"])
    print(
        "  cold %.2f jobs/s   warm %.2f jobs/s   speedup %.1fx   (compiled-cache hit rate cold: %.0f%%)"
        % (
            service_throughput["cold_jobs_per_s"],
            service_throughput["warm_jobs_per_s"],
            service_throughput["warm_speedup"],
            100.0 * service_throughput["cold_compiled_cache_hit_rate"],
        )
    )
    print(f"wrote {OUTPUT_PATH}")

    floors = [
        (
            "sparse assembly speedup >= 3x",
            assembly["assembly_speedup"],
            assembly["assembly_speedup"] >= 3.0,
        ),
        (
            "block-circulant GMRES iteration cut >= 3x vs averaged ILU",
            preconditioners["spectral_iteration_ratio_ilu_over_block_circulant"],
            preconditioners["spectral_iteration_ratio_ilu_over_block_circulant"] >= 3.0,
        ),
        (
            "partially-averaged (block_circulant_fast) cut >= 1.5x vs block_circulant",
            preconditioners["spectral_iteration_ratio_block_circulant_over_fast"],
            preconditioners["spectral_iteration_ratio_block_circulant_over_fast"] >= 1.5,
        ),
        (
            "batched engine >= 2x vs per-device loop (full evaluate_sparse)",
            engine["batched_speedup"],
            engine["batched_speedup"] >= 2.0,
        ),
        (
            "service warm-cache throughput >= 2x cold",
            service_throughput["warm_speedup"],
            service_throughput["warm_speedup"] >= 2.0,
        ),
    ]
    if parallel["speedup_floor_applicable"]:
        floors.append(
            (
                "sharded evaluate_sparse >= 1.5x vs serial at %dx%d" % LARGE_GRID,
                parallel["sharded_speedup"],
                parallel["sharded_speedup"] >= 1.5,
            )
        )
    else:
        print(
            "  [SKIP] sharded-evaluation floor not applicable here (%s)"
            % (
                parallel["fallback_reason"]
                or "fewer than 3 workers available — the floor is modelled at 4"
            )
        )
    if resident_apply["speedup_floor_applicable"]:
        floors.append(
            (
                "resident factor service gmres_time_s cut >= 1.3x at %dx%d"
                % LARGE_GRID,
                resident_apply["gmres_speedup"],
                resident_apply["gmres_speedup"] >= 1.3,
            )
        )
    else:
        print(
            "  [SKIP] resident-apply floor not applicable here (%s)"
            % (
                resident_apply.get("resident_fallback_reason")
                or resident_apply.get("skip_reason")
                or resident_apply["fallback_reason"]
                or "host cannot shard"
            )
        )
    failed = [name for name, _value, ok in floors if not ok]
    for name, value, ok in floors:
        print(f"  [{'PASS' if ok else 'FAIL'}] {name} (measured {value:.2f}x)")
    if failed:
        if check:
            # CI mode: clean report + exit status instead of a traceback.
            print(
                f"--check: {len(failed)} performance floor(s) violated", file=sys.stderr
            )
            sys.exit(1)
        raise AssertionError(f"performance floor(s) violated: {'; '.join(failed)}")
    return payload


if __name__ == "__main__":
    parser = argparse.ArgumentParser(
        description="Benchmark sparse assembly and preconditioner modes on the balanced mixer"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero when a performance floor is violated (CI gate)",
    )
    add_workers_argument(parser)
    arguments = parser.parse_args()
    main(check=arguments.check, workers=arguments.workers)
