"""BENCH-ASSEMBLY — sparse stamped assembly vs the seed's dense hot path.

This bench tracks the performance of the evaluation/assembly pipeline that
every analysis funnels through, on the paper's balanced mixer at the paper's
40 x 30 MPDE grid (P = 1200 evaluation points):

1. **Residual-only vs full evaluation** — the ``need_jacobian=False`` device
   fast path used by line searches, continuation ramps and convergence
   checks, versus a full dense evaluation with ``(P, n, n)`` Jacobian stacks.
2. **MPDE Jacobian assembly, dense path vs sparse path** — the seed rebuilt
   dense Jacobian stacks and re-ran ``block_diag_from_array`` + a ``kron``
   product every Newton iteration (kept as
   ``MPDEProblem.jacobian_dense_reference``); the compiled path updates the
   numeric values of a precomputed symbolic structure.
3. **Matrix-free MPDE Newton** — the balanced-mixer MPDE solved with the
   direct sparse solver and with the matrix-free GMRES mode (averaged-
   Jacobian ILU preconditioner), checking both hit the same residual
   tolerance and recording the solver statistics.

Results are written to ``BENCH_perf_assembly.json`` at the repository root so
the perf trajectory is tracked from this PR onward.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.core import solve_mpde
from repro.core.mpde import MPDEProblem
from repro.rf import balanced_lo_doubling_mixer
from repro.utils import MPDEOptions

PAPER_GRID = (40, 30)
OUTPUT_PATH = Path(__file__).resolve().parents[1] / "BENCH_perf_assembly.json"


def _time_call(fn, *, repeats: int = 20, warmup: int = 3) -> float:
    """Best-of-``repeats`` wall time of ``fn()`` in seconds.

    Best-of (not mean) deliberately: the dense paths allocate multi-MB
    ``(P, n, n)`` stacks whose page-fault behaviour is bimodal across runs,
    and the minimum is the stable comparison point.
    """
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_evaluation(problem: MPDEProblem) -> dict:
    mna = problem.mna
    rng = np.random.default_rng(7)
    states = rng.normal(scale=0.3, size=(problem.n_grid_points, mna.n_unknowns))

    t_full = _time_call(lambda: mna.evaluate(states))
    t_residual = _time_call(lambda: mna.evaluate(states, need_jacobian=False))
    t_sparse = _time_call(lambda: mna.evaluate_sparse(states))
    return {
        "n_points": problem.n_grid_points,
        "n_unknowns": mna.n_unknowns,
        "full_dense_eval_ms": t_full * 1e3,
        "residual_only_eval_ms": t_residual * 1e3,
        "sparse_eval_ms": t_sparse * 1e3,
        "residual_only_speedup": t_full / t_residual,
    }


def bench_assembly(problem: MPDEProblem) -> dict:
    rng = np.random.default_rng(11)
    x = rng.normal(scale=0.3, size=problem.n_total_unknowns)

    # Correctness gate: the two paths must agree before timing means anything.
    dense_ref = problem.jacobian_dense_reference(x)
    sparse = problem.jacobian(x)
    scale = max(1.0, abs(dense_ref).max())
    max_diff = abs(sparse - dense_ref).max() if (sparse - dense_ref).nnz else 0.0
    assert max_diff <= 1e-12 * scale, f"sparse/dense Jacobian mismatch: {max_diff}"

    t_dense = _time_call(lambda: problem.jacobian_dense_reference(x))
    t_sparse = _time_call(lambda: problem.jacobian(x))
    return {
        "grid": list(PAPER_GRID),
        "n_total_unknowns": problem.n_total_unknowns,
        "jacobian_nnz": int(sparse.nnz),
        "dense_path_ms": t_dense * 1e3,
        "sparse_path_ms": t_sparse * 1e3,
        "assembly_speedup": t_dense / t_sparse,
        "max_abs_mismatch": float(max_diff),
    }


def bench_mpde_solves(mixer, mna) -> dict:
    abstol = MPDEOptions().newton.abstol

    def run(options: MPDEOptions) -> dict:
        start = time.perf_counter()
        result = solve_mpde(mna, mixer.scales, options)
        elapsed = time.perf_counter() - start
        stats = result.stats
        return {
            "converged": bool(stats.converged),
            "residual_norm": float(stats.residual_norm),
            "newton_iterations": int(stats.newton_iterations),
            "linear_solves": int(stats.linear_solves),
            "linear_iterations": int(stats.linear_iterations),
            "preconditioner_builds": int(stats.preconditioner_builds),
            "wall_time_s": elapsed,
        }

    direct = run(MPDEOptions(n_fast=PAPER_GRID[0], n_slow=PAPER_GRID[1]))
    matrix_free = run(
        MPDEOptions(n_fast=PAPER_GRID[0], n_slow=PAPER_GRID[1], matrix_free=True)
    )
    assert direct["converged"] and direct["residual_norm"] <= abstol
    assert matrix_free["converged"] and matrix_free["residual_norm"] <= abstol
    return {"newton_abstol": abstol, "direct": direct, "matrix_free": matrix_free}


def main() -> dict:
    mixer = balanced_lo_doubling_mixer()
    mna = mixer.compile()
    problem = MPDEProblem(
        mna, mixer.scales, MPDEOptions(n_fast=PAPER_GRID[0], n_slow=PAPER_GRID[1])
    )

    evaluation = bench_evaluation(problem)
    assembly = bench_assembly(problem)
    solves = bench_mpde_solves(mixer, mna)

    payload = {
        "bench": "jacobian_assembly",
        "circuit": mna.circuit.name,
        "evaluation": evaluation,
        "assembly": assembly,
        "mpde_solves": solves,
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    print("== residual-only vs full evaluation (P = %d) ==" % evaluation["n_points"])
    print(
        "  full %.2f ms   residual-only %.2f ms   speedup %.1fx"
        % (
            evaluation["full_dense_eval_ms"],
            evaluation["residual_only_eval_ms"],
            evaluation["residual_only_speedup"],
        )
    )
    print("== MPDE Jacobian assembly at %dx%d ==" % PAPER_GRID)
    print(
        "  dense path %.1f ms   sparse path %.1f ms   speedup %.1fx"
        % (
            assembly["dense_path_ms"],
            assembly["sparse_path_ms"],
            assembly["assembly_speedup"],
        )
    )
    for mode in ("direct", "matrix_free"):
        s = solves[mode]
        print(
            "== %s solve ==  residual %.2e  newton %d  linear iters %d  %.2f s"
            % (
                mode,
                s["residual_norm"],
                s["newton_iterations"],
                s["linear_iterations"],
                s["wall_time_s"],
            )
        )
    print(f"wrote {OUTPUT_PATH}")
    assert assembly["assembly_speedup"] >= 3.0, (
        "sparse assembly speedup regressed below the 3x acceptance floor: "
        f"{assembly['assembly_speedup']:.2f}x"
    )
    return payload


if __name__ == "__main__":
    main()
