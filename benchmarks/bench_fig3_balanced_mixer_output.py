"""FIG3 — balanced mixer: bivariate differential output voltage.

Solves the sheared multi-time MPDE for the balanced LO-doubling mixer driven
by a bit-stream-modulated carrier (450 MHz LO, 15 kHz baseband) and reports
the bivariate differential output surface that Fig. 3 of the paper plots:
LO-cycle detail along the fast axis, the bit-stream shape along the
difference-frequency axis.

The benchmark measures the cost of the full MPDE solve (the paper's
headline computation); the surface statistics are printed next to the
paper's qualitative targets.
"""

from __future__ import annotations

import numpy as np

from conftest import BENCH_GRID_FAST, BENCH_GRID_SLOW
from paper_targets import (
    BALANCED_BASEBAND_PERIOD,
    ComparisonRow,
    PAPER_GRID_POINTS,
    PAPER_NEWTON_ITERATIONS,
    print_series,
    print_table,
)
from repro.core import solve_mpde
from repro.rf import balanced_lo_doubling_mixer
from repro.utils import MPDEOptions


def test_fig3_bivariate_differential_output(benchmark, balanced_mixer_bitstream_solution):
    mixer, shared_result = balanced_mixer_bitstream_solution

    def solve_once():
        return solve_mpde(
            mixer.compile(),
            mixer.scales,
            MPDEOptions(n_fast=BENCH_GRID_FAST, n_slow=BENCH_GRID_SLOW),
        )

    result = benchmark.pedantic(solve_once, rounds=1, iterations=1)
    surface = result.bivariate_differential("outp", "outn")

    rows = [
        ComparisonRow(
            "multi-time grid",
            f"{PAPER_GRID_POINTS} points (40 x 30)",
            f"{result.stats.n_grid_points} points "
            f"({BENCH_GRID_FAST} x {BENCH_GRID_SLOW}, reduced for CI)",
        ),
        ComparisonRow(
            "Newton-Raphson iterations",
            f"{PAPER_NEWTON_ITERATIONS} (longest run)",
            f"{result.stats.newton_iterations}",
        ),
        ComparisonRow(
            "LO (fast) axis span",
            "~2.2 ns (one 450 MHz cycle)",
            f"{surface.period1 * 1e9:.2f} ns",
        ),
        ComparisonRow(
            "baseband (slow) axis span",
            f"{BALANCED_BASEBAND_PERIOD * 1e3:.3f} ms",
            f"{surface.period2 * 1e3:.3f} ms",
        ),
        ComparisonRow(
            "differential output range",
            "~0.05 .. 0.3 V (Fig. 3 z-axis)",
            f"{surface.values.min():+.3f} .. {surface.values.max():+.3f} V",
        ),
        ComparisonRow(
            "bit-stream visible along slow axis",
            "yes",
            f"baseband swing {surface.envelope_mean().peak_to_peak():.3f} V",
        ),
    ]
    print_table("FIG3 - balanced mixer: bivariate differential output voltage", rows)

    # Print a coarse version of the surface itself (8 x 6 subsample).
    sub_fast = np.linspace(0, surface.period1, 6, endpoint=False)
    sub_slow = np.linspace(0, surface.period2, 8, endpoint=False)
    headers = ["t2 (us) \\ t1 (ns)"] + [f"{t1 * 1e9:.2f}" for t1 in sub_fast]
    table = []
    for t2 in sub_slow:
        row = [f"{t2 * 1e6:.2f}"] + [f"{float(surface(t1, t2)):+.3f}" for t1 in sub_fast]
        table.append(row)
    print_series("FIG3 surface subsample (differential output, volts)", headers, table)

    assert result.stats.converged
    assert surface.envelope_mean().peak_to_peak() > 0.05
    # The shared (session) solution and the freshly benchmarked one agree.
    np.testing.assert_allclose(
        surface.values,
        shared_result.bivariate_differential("outp", "outn").values,
        atol=1e-6,
    )
