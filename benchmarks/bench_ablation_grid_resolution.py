"""ABL-GRID — ablation of the multi-time grid resolution.

The paper uses a 40 x 30 grid (1200 points) for the balanced mixer and notes
that "relatively few grid points in the multi-time plane are sufficient to
capture solution waveforms".  This ablation quantifies that design choice on
the scaled switching mixer: the baseband accuracy and the solve cost are
measured as the grid is refined, with the finest grid used as the reference.
"""

from __future__ import annotations

import time

import numpy as np

from paper_targets import ComparisonRow, print_series, print_table
from repro.core import solve_mpde
from repro.rf import unbalanced_switching_mixer
from repro.signals.spectrum import fourier_coefficient
from repro.utils import MPDEOptions

GRIDS = ((12, 9), (20, 15), (28, 21), (40, 30), (56, 42))
REFERENCE_GRID = (80, 60)
LO_FREQUENCY = 2.0e6
DIFFERENCE_FREQUENCY = 50.0e3


def _solve(grid):
    mixer = unbalanced_switching_mixer(
        lo_frequency=LO_FREQUENCY, difference_frequency=DIFFERENCE_FREQUENCY
    )
    mna = mixer.compile()
    start = time.perf_counter()
    result = solve_mpde(mna, mixer.scales, MPDEOptions(n_fast=grid[0], n_slow=grid[1]))
    elapsed = time.perf_counter() - start
    fd = mixer.scales.difference_frequency
    envelope = result.baseband_envelope("out")
    amplitude = 2 * abs(fourier_coefficient(envelope, fd))
    return amplitude, elapsed, result


def test_grid_resolution_ablation(benchmark):
    reference_amplitude, _, _ = _solve(REFERENCE_GRID)

    rows = []
    errors = {}
    for grid in GRIDS:
        amplitude, elapsed, result = _solve(grid)
        error = abs(amplitude - reference_amplitude) / reference_amplitude
        errors[grid] = error
        rows.append(
            [
                f"{grid[0]} x {grid[1]}",
                f"{grid[0] * grid[1]}",
                f"{result.stats.n_total_unknowns}",
                f"{result.stats.newton_iterations}",
                f"{elapsed:.2f}",
                f"{amplitude * 1e3:.3f} mV",
                f"{100 * error:.2f}%",
            ]
        )
    print_series(
        "ABL-GRID: accuracy/cost vs multi-time grid size (switching mixer, disparity 40)",
        ["grid", "points", "unknowns", "Newton iters", "time (s)", "baseband @ fd",
         "error vs 80x60"],
        rows,
    )

    paper_rows = [
        ComparisonRow(
            "grid used by the paper",
            "40 x 30 = 1200 points",
            f"40 x 30 error {100 * errors[(40, 30)]:.2f}% vs fine reference",
        ),
        ComparisonRow(
            "few grid points suffice",
            "yes ('relatively few grid points ... are sufficient')",
            f"coarsest grid ({GRIDS[0][0]} x {GRIDS[0][1]}) already within "
            f"{100 * errors[GRIDS[0]]:.1f}%",
        ),
    ]
    print_table("ABL-GRID - grid-resolution ablation", paper_rows)

    # Benchmark the paper-size grid solve.
    benchmark.pedantic(lambda: _solve((40, 30)), rounds=1, iterations=1)

    # Error decreases (weakly monotonically) with refinement and the
    # paper-size grid is within a few percent of the fine reference.
    assert errors[(40, 30)] < 0.05
    assert errors[(56, 42)] <= errors[(12, 9)] + 1e-12
