"""Shared fixtures and CLI flags for the benchmark harness.

The Figs. 3-6 benches and the conversion-gain bench all post-process the same
balanced-mixer MPDE solution; solving it once per session keeps the benchmark
suite fast while still exercising the full pipeline.

Worker-count flag
-----------------
Every benchmark shares one ``--workers N`` knob for the parallel execution
layer (:mod:`repro.parallel`):

* pytest-style benches (``pytest benchmarks/``) get it as a pytest option,
  consumed here by the session fixtures (the shared MPDE solves then run
  with ``MPDEOptions(parallel=True, n_workers=N)``);
* script-style benches (``python benchmarks/bench_jacobian_assembly.py``)
  import :func:`add_workers_argument` / :func:`resolve_workers` from this
  module so the flag spelling and semantics cannot drift.

``N >= 2`` forces real worker pools (even on one CPU — useful to measure the
dispatch overhead), ``1`` pins the serial path, and omitting the flag lets
the environment auto-resolve (serial on single-CPU runners, with the reason
recorded).
"""

from __future__ import annotations

import sys
from pathlib import Path

try:  # script-style benches import this module for the shared flag helpers
    import pytest
except ImportError:  # pragma: no cover - perf-floor CI installs no pytest
    pytest = None

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.core import solve_mpde
from repro.rf import balanced_lo_doubling_mixer
from repro.utils import MPDEOptions

# Reduced grid used by the shared solves: large enough to show every effect
# the paper plots, small enough to keep the benchmark suite around a minute.
BENCH_GRID_FAST = 32
BENCH_GRID_SLOW = 24


def add_workers_argument(parser) -> None:
    """Attach the shared ``--workers`` flag to an ``argparse`` parser."""
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker count for the parallel execution layer: >= 2 forces "
            "worker pools, 1 pins the serial path, omit to auto-resolve "
            "from the environment"
        ),
    )


def resolve_workers(workers: int | None) -> MPDEOptions:
    """Base :class:`MPDEOptions` honouring a ``--workers`` value."""
    if workers is None:
        return MPDEOptions()
    return MPDEOptions(parallel=workers != 1, n_workers=workers)


def pytest_addoption(parser) -> None:
    parser.addoption(
        "--workers",
        type=int,
        default=None,
        help="worker count for the parallel execution layer (see benchmarks/conftest.py)",
    )


if pytest is not None:

    @pytest.fixture(scope="session")
    def bench_workers(request) -> int | None:
        """The ``--workers`` value (None when the flag was omitted)."""
        return request.config.getoption("--workers")

    @pytest.fixture(scope="session")
    def bench_options(bench_workers) -> MPDEOptions:
        """Base options of the shared benchmark solves, honouring ``--workers``."""
        return resolve_workers(bench_workers).with_grid(
            BENCH_GRID_FAST, BENCH_GRID_SLOW
        )

    @pytest.fixture(scope="session")
    def balanced_mixer_bitstream_solution(bench_options):
        """MPDE solution of the paper's mixer with the bit-stream RF drive (Figs. 3-6)."""
        mixer = balanced_lo_doubling_mixer()
        result = solve_mpde(mixer.compile(), mixer.scales, bench_options)
        return mixer, result

    @pytest.fixture(scope="session")
    def balanced_mixer_puretone_solution(bench_options):
        """MPDE solution of the paper's mixer with a pure-tone RF drive (gain/distortion)."""
        mixer = balanced_lo_doubling_mixer(use_bit_stream=False)
        result = solve_mpde(mixer.compile(), mixer.scales, bench_options)
        return mixer, result
