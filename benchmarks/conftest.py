"""Shared fixtures for the benchmark harness.

The Figs. 3-6 benches and the conversion-gain bench all post-process the same
balanced-mixer MPDE solution; solving it once per session keeps the benchmark
suite fast while still exercising the full pipeline.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.core import solve_mpde
from repro.rf import balanced_lo_doubling_mixer
from repro.utils import MPDEOptions

# Reduced grid used by the shared solves: large enough to show every effect
# the paper plots, small enough to keep the benchmark suite around a minute.
BENCH_GRID_FAST = 32
BENCH_GRID_SLOW = 24


@pytest.fixture(scope="session")
def balanced_mixer_bitstream_solution():
    """MPDE solution of the paper's mixer with the bit-stream RF drive (Figs. 3-6)."""
    mixer = balanced_lo_doubling_mixer()
    result = solve_mpde(
        mixer.compile(),
        mixer.scales,
        MPDEOptions(n_fast=BENCH_GRID_FAST, n_slow=BENCH_GRID_SLOW),
    )
    return mixer, result


@pytest.fixture(scope="session")
def balanced_mixer_puretone_solution():
    """MPDE solution of the paper's mixer with a pure-tone RF drive (gain/distortion)."""
    mixer = balanced_lo_doubling_mixer(use_bit_stream=False)
    result = solve_mpde(
        mixer.compile(),
        mixer.scales,
        MPDEOptions(n_fast=BENCH_GRID_FAST, n_slow=BENCH_GRID_SLOW),
    )
    return mixer, result
