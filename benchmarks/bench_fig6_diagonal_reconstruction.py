"""FIG6 — balanced mixer: one-time waveform at the doubler node over 5 LO periods.

Fig. 6 of the paper shows a small section (5 LO cycles, around t ~ 2.23 us)
of the *actual* voltage waveform at the differential-pair sources,
reconstructed from the multi-time solution through the diagonal evaluation
``x(t) = x_hat(t, t)``.  This bench performs exactly that reconstruction and
checks its consistency with the bivariate surface it came from.
"""

from __future__ import annotations

import numpy as np

from paper_targets import (
    ComparisonRow,
    FIG6_CENTER_TIME,
    FIG6_N_LO_PERIODS,
    print_series,
    print_table,
)
from repro.core import reconstruct_fast_cycles


def test_fig6_one_time_waveform(benchmark, balanced_mixer_bitstream_solution):
    mixer, result = balanced_mixer_bitstream_solution
    surface = result.bivariate("tail")

    def reconstruct():
        return reconstruct_fast_cycles(
            surface,
            t_center=FIG6_CENTER_TIME,
            n_cycles=FIG6_N_LO_PERIODS,
            samples_per_cycle=64,
        )

    waveform = benchmark(reconstruct)

    lo_period = 1.0 / mixer.lo_frequency
    rows = [
        ComparisonRow(
            "reconstruction window",
            "5 LO periods around t ~ 2.22-2.23 us",
            f"{waveform.times[0] * 1e6:.4f} .. {waveform.times[-1] * 1e6:.4f} us "
            f"({waveform.duration / lo_period:.1f} LO periods)",
        ),
        ComparisonRow(
            "waveform range",
            "~0.2 .. 1.6 V (Fig. 6 y-axis)",
            f"{waveform.values.min():.3f} .. {waveform.values.max():.3f} V",
        ),
        ComparisonRow(
            "periodicity at 2xLO",
            "two similar humps per LO period (doubler)",
            f"dominant period {waveform.duration / max(1, _count_peaks(waveform.values)):.2e} s",
        ),
    ]
    print_table("FIG6 - one-time voltage at the doubler node over 5 LO periods", rows)

    stride = max(1, len(waveform) // 24)
    print_series(
        "FIG6 series: reconstructed one-time waveform x(t) = x_hat(t, t)",
        ["time (us)", "v_tail (V)"],
        [
            [f"{t * 1e6:.5f}", f"{v:.4f}"]
            for t, v in zip(waveform.times[::stride], waveform.values[::stride])
        ],
    )

    # Consistency: the diagonal reconstruction stays inside the envelope bounds.
    upper = surface.envelope_max()
    lower = surface.envelope_min()
    tol = 0.05 * (surface.values.max() - surface.values.min())
    assert np.all(waveform.values <= np.asarray(upper(waveform.times)) + tol)
    assert np.all(waveform.values >= np.asarray(lower(waveform.times)) - tol)
    # Roughly 2 humps per LO cycle (frequency doubling) are visible.
    assert _count_peaks(waveform.values) >= FIG6_N_LO_PERIODS


def _count_peaks(values: np.ndarray) -> int:
    """Count strict local maxima (simple peak counter for the doubler humps)."""
    interior = values[1:-1]
    return int(np.sum((interior > values[:-2]) & (interior > values[2:])))
