"""Setuptools shim.

The project is configured through ``pyproject.toml``; this file exists so
that legacy installation paths (``python setup.py develop`` on environments
without the ``wheel`` package, offline editable installs) keep working.
"""

from setuptools import setup

setup()
