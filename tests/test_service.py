"""Tests for the simulation service (cache, jobs, orchestrator, telemetry).

The service tests run against two deliberately cheap scenarios registered
here (and reused by the chaos soak / checkpoint-retry suites): a two-tone
RC case (linear by default, optionally nonlinear), and a *gated*
variant whose factory blocks on an event — the deterministic way to hold
worker threads busy while admission control and cancellation are probed.

Tests that pin exact counters or compare results bitwise opt out of the
ambient CI fault profiles with ``no_fault_injection``; the lifecycle tests
deliberately stay opted in, so the ``tier1-service`` lane soaks them under
``chaos-service:<seed>`` schedules.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.circuits.devices import (
    Capacitor,
    PolynomialConductance,
    Resistor,
    VoltageSource,
)
from repro.core import ShearedTimeScales
from repro.core.timescales import TimescaleBandwidths
from repro.resilience import (
    cache_build_fault,
    dispatch_fault,
    inject_faults,
    singular_jacobian,
)
from repro.scenarios import (
    BuiltScenario,
    CrossValidationPlan,
    ScenarioCase,
    build_scenario_smoke,
    case_baseband,
    register_scenario,
    run_scenario,
    scenario_names,
    solve_case,
    unregister_scenario,
)
from repro.service import (
    CompiledCircuitCache,
    JobRetryPolicy,
    ServiceOptions,
    SimulationService,
    SweepRequest,
    is_retryable,
)
from repro.signals import ModulatedCarrierStimulus, SinusoidStimulus, SumStimulus
from repro.utils import (
    ConfigurationError,
    DeadlineExceededError,
    MPDEOptions,
    RecoveryPolicy,
)
from repro.utils.exceptions import (
    ServiceError,
    ServiceOverloadedError,
    TransientServiceError,
)

RC_SCENARIO = "svc_rc_lowpass"
GATED_SCENARIO = "svc_rc_gated"

#: Event the gated scenario's factory blocks on (cleared per use).
GATE = threading.Event()

#: Near-zero backoffs: retry semantics, not wall-clock pacing, are under test.
FAST_RETRY = JobRetryPolicy(max_retries=4, backoff_base_s=0.001, backoff_cap_s=0.01)


def _build_rc_scenario(name, params):
    """A cheap two-tone RC filter scenario (8x8 grid).

    Linear by default (one Newton iteration); an ``nl`` override adds a
    cubic conductance at the output so solves take several iterations —
    which gives mid-solve faults an accepted iterate to checkpoint.
    """
    scales = ShearedTimeScales.from_frequencies(1e6, 1e6 - 10e3)
    ckt = Circuit(f"{name} rc")
    drive = SumStimulus(
        (
            SinusoidStimulus(1.0, 1e6),
            ModulatedCarrierStimulus(0.5, scales.carrier_frequency),
        )
    )
    ckt.add(VoltageSource("vin", "in", ckt.GROUND, drive))
    ckt.add(Resistor("r1", "in", "out", params["r"]))
    ckt.add(Capacitor("c1", "out", ckt.GROUND, params["c"]))
    if params["nl"]:
        ckt.add(
            PolynomialConductance(
                "gnl", "out", ckt.GROUND, (1e-4, 0.0, params["nl"])
            )
        )
    case = ScenarioCase(
        label="rc",
        circuit=ckt,
        analysis="mpde",
        output_pos="out",
        output_neg=None,
        bandwidths=TimescaleBandwidths(fast_harmonics=2, slow_harmonics=2),
        grid=(8, 8),
        compute_metrics=lambda case, result: {
            "dc": float(case_baseband(case, result).mean())
        },
        scales=scales,
    )
    return BuiltScenario(
        name=name,
        params=params,
        cases=(case,),
        cross_validation=CrossValidationPlan(frequency=10e3),
    )


def register_service_scenarios() -> None:
    """Register the cheap service-test scenarios (idempotent)."""
    if RC_SCENARIO not in scenario_names():
        register_scenario(RC_SCENARIO, params=dict(r=1e3, c=50e-9, nl=0.0))(
            _build_rc_scenario
        )
    if GATED_SCENARIO not in scenario_names():

        def _gated(name, params):
            assert GATE.wait(timeout=60.0), "test gate never released"
            return _build_rc_scenario(name, params)

        register_scenario(GATED_SCENARIO, params=dict(r=1e3, c=50e-9, nl=0.0))(_gated)


def unregister_service_scenarios() -> None:
    for name in (RC_SCENARIO, GATED_SCENARIO):
        if name in scenario_names():
            unregister_scenario(name)


@pytest.fixture(scope="module", autouse=True)
def _scenarios():
    register_service_scenarios()
    yield
    unregister_service_scenarios()


def _service(**overrides) -> SimulationService:
    defaults = dict(n_workers=2, queue_capacity=8, retry=FAST_RETRY)
    defaults.update(overrides)
    return SimulationService(ServiceOptions(**defaults))


def _drain_queue(svc: SimulationService, timeout_s: float = 10.0) -> None:
    deadline = time.monotonic() + timeout_s
    while svc.queue_depth() and time.monotonic() < deadline:
        time.sleep(0.005)
    assert svc.queue_depth() == 0


# ---------------------------------------------------------------------------
# Compiled-circuit cache
# ---------------------------------------------------------------------------


class _FakeSystem:
    def __init__(self, tag):
        self.tag = tag
        self.closed = 0

    def close(self):
        self.closed += 1


class TestCompiledCircuitCache:
    def test_hit_miss_counters_and_reuse(self):
        cache = CompiledCircuitCache(capacity=4)
        with cache.lease("a", lambda: _FakeSystem("a")) as first:
            pass
        with cache.lease("a", lambda: _FakeSystem("a2")) as second:
            assert second is first  # resident entry reused, not rebuilt
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.evictions) == (1, 1, 0)
        assert stats.hit_rate == pytest.approx(0.5)
        cache.close()

    def test_lru_eviction_closes_the_victim(self):
        cache = CompiledCircuitCache(capacity=1)
        a = _FakeSystem("a")
        b = _FakeSystem("b")
        with cache.lease("a", lambda: a):
            pass
        with cache.lease("b", lambda: b):
            pass
        assert cache.stats().evictions == 1
        assert a.closed == 1 and b.closed == 0
        cache.close()
        assert b.closed == 1

    def test_leased_entries_are_never_evicted(self):
        cache = CompiledCircuitCache(capacity=1)
        a = _FakeSystem("a")
        b = _FakeSystem("b")
        with cache.lease("a", lambda: a):
            # Over capacity while "a" is leased: the cache must overflow
            # rather than close a system under a running solve.
            with cache.lease("b", lambda: b):
                assert len(cache) == 2
                assert a.closed == 0
        assert len(cache) == 1
        assert a.closed == 0  # the pinned entry survived; the idle one went
        cache.close()

    def test_lease_is_exclusive_per_key(self):
        cache = CompiledCircuitCache(capacity=2)
        active = []
        overlap = []

        def hold():
            with cache.lease("a", lambda: _FakeSystem("a")):
                active.append(1)
                overlap.append(len(active))
                time.sleep(0.01)
                active.pop()

        threads = [threading.Thread(target=hold) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert max(overlap) == 1  # never two leases of one key at once
        cache.close()

    def test_close_is_idempotent_and_blocks_new_leases(self):
        cache = CompiledCircuitCache(capacity=2)
        a = _FakeSystem("a")
        with cache.lease("a", lambda: a):
            pass
        cache.close()
        cache.close()
        assert a.closed == 1
        with pytest.raises(ServiceError, match="closed"):
            with cache.lease("b", lambda: _FakeSystem("b")):
                pass

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ConfigurationError, match="capacity"):
            CompiledCircuitCache(capacity=0)


# ---------------------------------------------------------------------------
# Retry policy
# ---------------------------------------------------------------------------


class TestJobRetryPolicy:
    def test_backoff_shape_and_jitter_bounds(self):
        policy = JobRetryPolicy(
            max_retries=5, backoff_base_s=0.1, backoff_cap_s=0.5, jitter_fraction=0.2
        )
        for attempt, base in [(1, 0.1), (2, 0.2), (3, 0.4), (4, 0.5), (5, 0.5)]:
            value = policy.backoff_s(attempt, token=f"job-1:{attempt}")
            assert base <= value <= base * 1.2 + 1e-12

    def test_jitter_is_deterministic_per_token(self):
        policy = JobRetryPolicy(jitter_fraction=0.5)
        assert policy.backoff_s(1, token="x") == policy.backoff_s(1, token="x")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            JobRetryPolicy(max_retries=-1)
        with pytest.raises(ConfigurationError):
            JobRetryPolicy(jitter_fraction=1.5)

    def test_retryable_classification(self):
        assert is_retryable(TransientServiceError("cache build died"))
        assert not is_retryable(ConfigurationError("bad request"))
        assert not is_retryable(
            DeadlineExceededError("budget spent", deadline_s=1.0, elapsed_s=2.0)
        )
        assert not is_retryable(ServiceOverloadedError("full"))
        assert not is_retryable(TypeError("a bug, not a failure"))


# ---------------------------------------------------------------------------
# Service lifecycle
# ---------------------------------------------------------------------------


class TestServiceLifecycle:
    def test_submit_runs_and_matches_direct_run(self):
        with _service(memoize_results=False) as svc:
            jobs = [svc.submit(RC_SCENARIO), svc.submit(RC_SCENARIO, r=2e3)]
            runs = [job.result(timeout=120.0) for job in jobs]
        for job in jobs:
            assert job.status == "succeeded"
            assert job.done()
        direct = run_scenario(build_scenario_smoke(RC_SCENARIO))
        assert runs[0].case_metrics.keys() == direct.case_metrics.keys()

    @pytest.mark.no_fault_injection
    def test_service_results_are_bitwise_equal_to_serial(self):
        with _service(memoize_results=False) as svc:
            job = svc.submit(RC_SCENARIO, r=3e3)
            run = job.result(timeout=120.0)
        serial = run_scenario(
            build_scenario_smoke(RC_SCENARIO, r=3e3), first_case_only=True
        )
        np.testing.assert_array_equal(
            run.case_runs[0].result.states, serial.case_runs[0].result.states
        )
        assert run.case_metrics == serial.case_metrics

    def test_request_object_and_shorthand_conflict(self):
        with _service() as svc:
            request = SweepRequest(scenario=RC_SCENARIO, overrides={"r": 2e3})
            assert svc.submit(request).result(timeout=120.0) is not None
            with pytest.raises(ConfigurationError, match="overrides"):
                svc.submit(request, r=1e3)

    def test_unknown_scenario_fails_terminally_without_retries(self):
        with _service() as svc:
            job = svc.submit("svc_no_such_scenario")
            with pytest.raises(ConfigurationError, match="unknown scenario"):
                job.result(timeout=30.0)
        assert job.status == "failed"
        assert job.retries == 0

    def test_submit_after_shutdown_raises(self):
        svc = _service()
        svc.shutdown()
        with pytest.raises(ServiceError, match="shut down"):
            svc.submit(RC_SCENARIO)

    def test_shutdown_is_idempotent_and_reentrant(self):
        svc = _service()
        svc.submit(RC_SCENARIO).wait(timeout=120.0)
        svc.shutdown()
        svc.shutdown()
        svc.shutdown(drain=False)

    def test_memoized_results_serve_repeat_requests(self):
        with _service() as svc:
            first = svc.submit(RC_SCENARIO, r=4e3)
            run = first.result(timeout=120.0)
            second = svc.submit(RC_SCENARIO, r=4e3)
            assert second.result(timeout=30.0) is run
            assert second.from_result_cache and not first.from_result_cache
            snapshot = svc.telemetry()
        assert snapshot.result_cache_hits == 1
        assert snapshot.completed == 2


# ---------------------------------------------------------------------------
# Admission control, cancellation, deadlines
# ---------------------------------------------------------------------------


class TestAdmissionAndCancellation:
    def test_full_queue_sheds_with_structured_error(self):
        GATE.clear()
        svc = _service(n_workers=1, queue_capacity=1, memoize_results=False)
        try:
            blocker = svc.submit(GATED_SCENARIO)
            _drain_queue(svc)  # the worker picked the blocker up
            queued = svc.submit(RC_SCENARIO)
            with pytest.raises(ServiceOverloadedError) as info:
                svc.submit(RC_SCENARIO, r=2e3)
            assert info.value.queue_depth == 1
            assert info.value.capacity == 1
            assert svc.telemetry().shed == 1
        finally:
            GATE.set()
            svc.shutdown()
        assert blocker.status == "succeeded"
        assert queued.status == "succeeded"

    def test_cancel_queued_job_is_immediate(self):
        GATE.clear()
        svc = _service(n_workers=1, queue_capacity=4, memoize_results=False)
        try:
            svc.submit(GATED_SCENARIO)
            _drain_queue(svc)
            victim = svc.submit(RC_SCENARIO)
            assert svc.cancel(victim) is True
            with pytest.raises(ServiceError, match="cancelled"):
                victim.result(timeout=5.0)
            assert victim.status == "cancelled"
        finally:
            GATE.set()
            svc.shutdown()

    def test_cancel_finished_job_reports_false(self):
        with _service() as svc:
            job = svc.submit(RC_SCENARIO)
            job.result(timeout=120.0)
            assert svc.cancel(job) is False
            assert job.status == "succeeded"

    def test_shutdown_without_drain_cancels_queue(self):
        GATE.clear()
        svc = _service(n_workers=1, queue_capacity=4, memoize_results=False)
        blocker = svc.submit(GATED_SCENARIO)
        queued = svc.submit(RC_SCENARIO)
        GATE.set()
        svc.shutdown(drain=False)
        assert queued.status == "cancelled"
        # the in-flight job still finished cleanly
        assert blocker.status in ("succeeded", "cancelled")

    def test_expired_deadline_times_the_job_out(self):
        with _service() as svc:
            job = svc.submit(
                SweepRequest(scenario=RC_SCENARIO, deadline_s=1e-9)
            )
            with pytest.raises(DeadlineExceededError):
                job.result(timeout=30.0)
        assert job.status == "timed_out"
        assert svc.telemetry().timed_out == 1

    def test_default_deadline_applies_to_requests_without_one(self):
        with _service(default_deadline_s=1e-9) as svc:
            job = svc.submit(RC_SCENARIO)
            with pytest.raises(DeadlineExceededError):
                job.result(timeout=30.0)
        assert job.status == "timed_out"


# ---------------------------------------------------------------------------
# Retries and fault injection
# ---------------------------------------------------------------------------


@pytest.mark.no_fault_injection
class TestRetries:
    def test_dispatch_fault_is_retried_and_recovered(self):
        with inject_faults(dispatch_fault(count=1)) as plan:
            with _service(n_workers=1, memoize_results=False) as svc:
                job = svc.submit(RC_SCENARIO)
                run = job.result(timeout=120.0)
        assert run is not None
        assert plan.specs[0].observed_fired() == 1
        assert job.retries == 1
        assert [a.outcome for a in job.attempts] == ["retried", "succeeded"]
        assert job.attempts[0].kind == "service"

    def test_cache_build_fault_is_retried_and_recovered(self):
        with inject_faults(cache_build_fault(count=1)) as plan:
            with _service(n_workers=1, memoize_results=False) as svc:
                job = svc.submit(RC_SCENARIO)
                job.result(timeout=120.0)
        assert plan.specs[0].observed_fired() == 1
        assert job.status == "succeeded"
        assert job.retries == 1

    def test_exhausted_retry_budget_is_terminal(self):
        request = SweepRequest(
            scenario=RC_SCENARIO,
            retry=JobRetryPolicy(max_retries=1, backoff_base_s=0.001, backoff_cap_s=0.01),
        )
        with inject_faults(dispatch_fault(count=None)):  # unlimited firings
            with _service(n_workers=1, memoize_results=False) as svc:
                job = svc.submit(request)
                with pytest.raises(TransientServiceError):
                    job.result(timeout=30.0)
        assert job.status == "failed"
        assert [a.outcome for a in job.attempts] == ["retried", "failed"]

    def test_solver_failure_retries_resume_from_checkpoint(self):
        solve_options = MPDEOptions(
            recovery=RecoveryPolicy(enabled=False), use_continuation=False
        )
        request = SweepRequest(
            scenario=RC_SCENARIO,
            overrides={"nl": 3e-3},  # several Newton iterations => a checkpoint exists
            solve_options=solve_options,
            retry=FAST_RETRY,
        )
        with inject_faults(singular_jacobian(at_iteration=2, count=1)):
            with _service(n_workers=1, memoize_results=False) as svc:
                job = svc.submit(request)
                run = job.result(timeout=120.0)
        assert job.retries == 1
        assert job.attempts[0].kind == "singular"
        assert job.attempts[1].resumed_from_checkpoint  # continued, not restarted
        serial = run_scenario(
            build_scenario_smoke(RC_SCENARIO, nl=3e-3),
            first_case_only=True,
            solve=lambda case: solve_case(case, options=solve_options),
        )
        # Bitwise: the checkpoint-resumed retry equals an uninterrupted solve.
        np.testing.assert_array_equal(
            run.case_runs[0].result.states, serial.case_runs[0].result.states
        )

    def test_telemetry_counts_retries(self):
        with inject_faults(dispatch_fault(count=2)):
            with _service(n_workers=1, memoize_results=False) as svc:
                job = svc.submit(RC_SCENARIO)
                job.result(timeout=120.0)
                snapshot = svc.telemetry()
        assert job.status == "succeeded"
        assert snapshot.retries >= 1
        assert snapshot.succeeded == 1


# ---------------------------------------------------------------------------
# Telemetry
# ---------------------------------------------------------------------------


class TestTelemetry:
    def test_snapshot_trajectory_fields(self):
        with _service(memoize_results=False) as svc:
            jobs = [svc.submit(RC_SCENARIO, r=float(r)) for r in (1e3, 2e3, 3e3)]
            for job in jobs:
                job.result(timeout=120.0)
            snapshot = svc.telemetry()
        assert snapshot.submitted == 3
        assert snapshot.completed == 3
        assert snapshot.succeeded == 3
        assert snapshot.throughput_jobs_per_s > 0.0
        assert 0.0 < snapshot.latency_p50_s <= snapshot.latency_p95_s
        assert snapshot.cache.misses >= 3  # three distinct circuits compiled
        assert len(snapshot.jobs) == 3
        record = snapshot.jobs[0]
        assert record.scenario == RC_SCENARIO
        assert record.total_s >= record.queue_wait_s

    @pytest.mark.no_fault_injection
    def test_cache_hit_rate_visible_for_repeat_requests(self):
        with _service(n_workers=1, memoize_results=False) as svc:
            for _ in range(3):
                svc.submit(RC_SCENARIO).result(timeout=120.0)
            snapshot = svc.telemetry()
        assert snapshot.cache.hits == 2
        assert snapshot.cache.misses == 1
        assert snapshot.cache.hit_rate == pytest.approx(2.0 / 3.0)
