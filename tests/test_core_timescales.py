"""Unit tests for sheared / unsheared time scales (the paper's key construction)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ShearedTimeScales,
    TimescaleBandwidths,
    UnshearedTimeScales,
    recommend_grid,
    verify_diagonal_property,
)
from repro.signals import ModulatedCarrierStimulus, SinusoidStimulus, TonePair
from repro.utils import ShearError


class TestShearedTimeScalesConstruction:
    def test_paper_ideal_mixing(self):
        scales = ShearedTimeScales.from_frequencies(1e9, 1e9 - 10e3)
        assert scales.fast_frequency == pytest.approx(1e9)
        assert scales.difference_frequency == pytest.approx(10e3)
        assert scales.difference_period == pytest.approx(0.1e-3)  # the 0.1 ms of Fig. 2
        assert scales.carrier_frequency == pytest.approx(1e9 - 10e3)
        assert scales.lo_multiple == 1

    def test_paper_balanced_mixer(self):
        scales = ShearedTimeScales.paper_balanced_mixer()
        assert scales.fast_frequency == pytest.approx(450e6)
        assert scales.lo_multiple == 2
        assert scales.difference_frequency == pytest.approx(15e3)
        assert scales.carrier_frequency == pytest.approx(2 * 450e6 - 15e3)
        # ~0.067 ms baseband period, matching the span of Figs. 3-4.
        assert scales.difference_period == pytest.approx(1 / 15e3)

    def test_carrier_above_harmonic(self):
        scales = ShearedTimeScales.from_frequencies(1e9, 1e9 + 10e3)
        assert scales.carrier_above_harmonic
        assert scales.carrier_frequency == pytest.approx(1e9 + 10e3)
        assert scales.difference_frequency == pytest.approx(10e3)

    def test_from_tone_pair(self):
        pair = TonePair.paper_balanced_mixer()
        scales = ShearedTimeScales.from_tone_pair(pair)
        assert scales.difference_frequency == pytest.approx(pair.difference_frequency)

    def test_disparity(self):
        scales = ShearedTimeScales.from_frequencies(450e6, 900e6 - 15e3, lo_multiple=2)
        assert scales.disparity == pytest.approx(450e6 / 15e3)

    def test_exactly_aligned_tones_rejected(self):
        with pytest.raises(ShearError):
            ShearedTimeScales.from_frequencies(1e9, 2e9, lo_multiple=2)

    def test_not_closely_spaced_rejected(self):
        with pytest.raises(ShearError):
            ShearedTimeScales(fast_frequency=1e9, difference_frequency=2e9)

    def test_invalid_lo_multiple(self):
        with pytest.raises(ShearError):
            ShearedTimeScales(1e9, 1e3, lo_multiple=0)


class TestShearMap:
    def test_carrier_phase_diagonal_identity(self):
        """carrier_phase(t, t) == f2 * t — Eq. (11) of the paper."""
        scales = ShearedTimeScales.from_frequencies(1e9, 1e9 - 10e3)
        t = np.linspace(0.0, 5e-9, 101)
        np.testing.assert_allclose(
            scales.carrier_phase(t, t), scales.carrier_frequency * t, rtol=1e-12
        )

    def test_carrier_phase_diagonal_identity_lo_doubling(self):
        """carrier_phase(t, t) == f2 * t with fd = 2 f1 - f2 — Eq. (13)."""
        scales = ShearedTimeScales.from_frequencies(450e6, 900e6 - 15e3, lo_multiple=2)
        t = np.linspace(0.0, 1e-8, 101)
        np.testing.assert_allclose(
            scales.carrier_phase(t, t), scales.carrier_frequency * t, rtol=1e-12
        )

    def test_carrier_phase_diagonal_identity_carrier_above(self):
        scales = ShearedTimeScales.from_frequencies(1e6, 1e6 + 25e3)
        t = np.linspace(0.0, 1e-5, 57)
        np.testing.assert_allclose(
            scales.carrier_phase(t, t), scales.carrier_frequency * t, rtol=1e-12
        )

    def test_periodicity_in_both_axes(self):
        """The sheared phase changes by an integer number of cycles per axis period."""
        scales = ShearedTimeScales.from_frequencies(1e9, 1e9 - 10e3)
        t1, t2 = 0.3e-9, 0.2e-4
        dp_fast = scales.carrier_phase(t1 + scales.fast_period, t2) - scales.carrier_phase(t1, t2)
        dp_slow = scales.carrier_phase(t1, t2 + scales.difference_period) - scales.carrier_phase(t1, t2)
        assert dp_fast == pytest.approx(round(dp_fast), abs=1e-9)
        assert dp_slow == pytest.approx(round(dp_slow), abs=1e-9)

    def test_fast_and_slow_phases(self):
        scales = ShearedTimeScales.from_frequencies(1e6, 1e6 - 10e3)
        assert scales.fast_phase(1e-6) == pytest.approx(1.0)
        assert scales.slow_phase(1e-4) == pytest.approx(1.0)


class TestUnshearedTimeScales:
    def test_axes(self):
        scales = UnshearedTimeScales.from_frequencies(1e9, 1e9 - 10e3)
        assert scales.fast_period == pytest.approx(1e-9)
        # The second axis carries the carrier itself, NOT the difference tone:
        # this is exactly why Fig. 1 shows no slow variation.
        assert scales.difference_period == pytest.approx(1.0 / (1e9 - 10e3))

    def test_carrier_phase_lives_on_second_axis(self):
        scales = UnshearedTimeScales.from_frequencies(1e9, 1e9 - 10e3)
        t2 = np.linspace(0, 1e-9, 11)
        np.testing.assert_allclose(
            scales.carrier_phase(np.zeros_like(t2), t2), (1e9 - 10e3) * t2
        )

    def test_diagonal_identity_still_holds(self):
        scales = UnshearedTimeScales.from_frequencies(1e9, 1e9 - 10e3)
        t = np.linspace(0, 3e-9, 31)
        np.testing.assert_allclose(scales.carrier_phase(t, t), (1e9 - 10e3) * t)


class TestVerifyDiagonalProperty:
    def test_passes_for_consistent_stimulus(self):
        scales = ShearedTimeScales.from_frequencies(1e6, 1e6 - 10e3)
        stim = ModulatedCarrierStimulus(0.3, scales.carrier_frequency)
        times = np.linspace(0, 1e-4, 500)
        assert verify_diagonal_property(stim, scales, times) < 1e-12

    def test_raises_for_inconsistent_stimulus(self):
        scales = ShearedTimeScales.from_frequencies(1e6, 1e6 - 10e3)

        class Broken(SinusoidStimulus):
            def bivariate_value(self, t1, t2, s):
                return super().bivariate_value(t1, t2, s) + 0.5

        stim = Broken(1.0, scales.fast_frequency)
        with pytest.raises(ShearError):
            verify_diagonal_property(stim, scales, np.linspace(0, 1e-5, 100))


class TestTimescaleBandwidths:
    def test_rejects_non_positive_and_non_integer_harmonics(self):
        with pytest.raises(ShearError, match="fast_harmonics"):
            TimescaleBandwidths(fast_harmonics=0, slow_harmonics=4)
        with pytest.raises(ShearError, match="slow_harmonics"):
            TimescaleBandwidths(fast_harmonics=4, slow_harmonics=-1)
        with pytest.raises(ShearError, match="fast_harmonics"):
            TimescaleBandwidths(fast_harmonics=2.5, slow_harmonics=4)

    def test_for_symbol_stream_allocates_two_harmonics_per_symbol(self):
        bw = TimescaleBandwidths.for_symbol_stream(6)
        assert bw.slow_harmonics == 12
        assert bw.fast_harmonics == 8
        assert TimescaleBandwidths.for_symbol_stream(3, fast_harmonics=10) == (
            TimescaleBandwidths(fast_harmonics=10, slow_harmonics=6)
        )
        with pytest.raises(ShearError, match="n_symbols"):
            TimescaleBandwidths.for_symbol_stream(0)


class TestRecommendGrid:
    def test_paper_style_bandwidths(self):
        # A hard-switched mixer carrying an 8-symbol stream: 10 fast
        # harmonics -> 40 fast points, 16 slow harmonics -> 64 slow points.
        grid = recommend_grid(TimescaleBandwidths(10, 16))
        assert grid == (40, 64)

    def test_floors_apply_to_degenerate_declarations(self):
        assert recommend_grid(TimescaleBandwidths(1, 1)) == (8, 8)
        assert recommend_grid(TimescaleBandwidths(1, 1), min_fast=16, min_slow=12) == (
            16,
            12,
        )

    def test_grids_are_always_even(self):
        for fast in range(1, 12):
            for slow in range(1, 12):
                n_fast, n_slow = recommend_grid(
                    TimescaleBandwidths(fast, slow), oversampling=1.3
                )
                assert n_fast % 2 == 0 and n_slow % 2 == 0

    def test_oversampling_guarantee(self):
        # The documented contract: each axis resolves its declared harmonics
        # with at least the requested margin over the 2*h Nyquist minimum.
        for fast in (1, 3, 8, 16):
            for slow in (1, 2, 5, 24):
                for oversampling in (1.0, 1.5, 2.0, 3.0):
                    bw = TimescaleBandwidths(fast, slow)
                    n_fast, n_slow = recommend_grid(bw, oversampling=oversampling)
                    assert n_fast >= 2 * oversampling * fast
                    assert n_slow >= 2 * oversampling * slow

    def test_rejects_bad_knobs(self):
        bw = TimescaleBandwidths(2, 2)
        with pytest.raises(ShearError, match="oversampling"):
            recommend_grid(bw, oversampling=0.5)
        with pytest.raises(ShearError, match="floors"):
            recommend_grid(bw, min_fast=1)


class TestScenarioGridSelection:
    """Every registered scenario's grid comes from recommend_grid.

    This is the zero-config contract: a scenario declares *bandwidths*
    (physics) and the grid (numerics) follows mechanically, with the
    documented oversampling margin.
    """

    def test_every_case_uses_the_recommended_grid(self):
        from repro.scenarios import build_scenario_smoke, scenario_names

        for name in scenario_names():
            for case in build_scenario_smoke(name).cases:
                assert case.grid == recommend_grid(case.bandwidths), (
                    f"{name}[{case.label}] grid {case.grid} does not match "
                    f"recommend_grid({case.bandwidths})"
                )

    def test_every_case_resolves_its_declared_bandwidths(self):
        from repro.core.timescales import GRID_OVERSAMPLING
        from repro.scenarios import build_scenario_smoke, scenario_names

        for name in scenario_names():
            for case in build_scenario_smoke(name).cases:
                n_fast, n_slow = case.grid
                # Nyquist x the documented margin, or the conditioning floor.
                assert n_fast >= min(
                    2 * GRID_OVERSAMPLING * case.bandwidths.fast_harmonics, 8
                )
                assert n_fast >= 2 * case.bandwidths.fast_harmonics
                assert n_slow >= 2 * case.bandwidths.slow_harmonics
                # MPDE/HB cases must also resolve the stimulus the scales
                # impose: at least the paper's 2x margin on the fast axis.
                if case.analysis in ("mpde", "hb"):
                    assert n_fast >= 8 and n_slow >= 8
