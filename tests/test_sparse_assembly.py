"""Property tests for the compiled stamp-pattern / sparse assembly pipeline.

The contract under test: the sparse-assembled Jacobian data produced by
``MNASystem.evaluate_sparse`` must match the dense reference path
(``MNASystem.evaluate``) *bit for bit* — same values, same duplicate
summation order — on circuits mixing every device type, and the
``need_jacobian=False`` residual-only fast path must return exactly the same
``q``/``f`` vectors as a full evaluation.  On top of that sit the MPDE
symbolic-once assembler, the matrix-free Jacobian operator and the
chord-Newton transient path, each checked against its reference.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.circuits import Circuit
from repro.circuits.devices import (
    BJT,
    VCCS,
    VCVS,
    BJTParams,
    Capacitor,
    Conductance,
    CurrentSource,
    Diode,
    DiodeParams,
    Inductor,
    MOSFETParams,
    MultiplierCurrentSource,
    NMOS,
    PMOS,
    PolynomialConductance,
    Resistor,
    SmoothSwitch,
    VoltageSource,
)
from repro.core import ShearedTimeScales, solve_mpde
from repro.core.mpde import MPDEProblem
from repro.linalg import gmres_solve
from repro.signals import SinusoidStimulus
from repro.utils import MPDEOptions, TransientOptions


def _all_device_circuit() -> Circuit:
    """A (non-physical) circuit that instantiates every device type once."""
    ckt = Circuit("all devices")
    g = ckt.GROUND
    ckt.add(VoltageSource("vs", "a", g, SinusoidStimulus(1.0, 1e6)))
    ckt.add(CurrentSource("is", "b", g, SinusoidStimulus(1e-3, 2e6)))
    ckt.add(Resistor("r1", "a", "b", 1e3))
    ckt.add(Conductance("g1", "b", "c", 1e-4))
    ckt.add(Capacitor("c1", "c", g, 1e-9))
    ckt.add(Inductor("l1", "a", "c", 1e-6))
    ckt.add(Diode("d1", "b", "c", DiodeParams(junction_capacitance=1e-12, transit_time=1e-9)))
    ckt.add(
        Diode("d2", "c", g, DiodeParams(series_resistance=5.0, junction_capacitance=2e-12))
    )
    ckt.add(NMOS("mn", "a", "b", "c", params=MOSFETParams(cgs=1e-13, cgd=2e-13, cdb=1e-13)))
    ckt.add(PMOS("mp", "c", "a", "b", params=MOSFETParams(vto=-0.7, csb=1e-13)))
    ckt.add(BJT("qn", "a", "b", "c", BJTParams(cje=1e-13, cjc=1e-13)))
    ckt.add(BJT("qp", "b", "c", "a", BJTParams(), polarity=-1))
    ckt.add(VCCS("gmx", "a", g, "b", "c", 1e-3))
    ckt.add(VCVS("ex", "d", g, "a", "b", 2.5))
    ckt.add(MultiplierCurrentSource("mul", "d", g, "a", g, "b", g, gain=0.3))
    ckt.add(SmoothSwitch("sw", "a", "d", "b", g, g_on=1e-2, g_off=1e-8))
    ckt.add(PolynomialConductance("pc", "d", "c", (1e-3, 2e-4, 5e-5)))
    return ckt


def _random_circuit(rng: np.random.Generator) -> Circuit:
    """A random mix of devices over a small node pool."""
    ckt = Circuit("random")
    nodes = ["0", "n1", "n2", "n3", "n4"]

    def pick_two() -> tuple[str, str]:
        a, b = rng.choice(len(nodes), size=2, replace=False)
        return nodes[a], nodes[b]

    ckt.add(VoltageSource("vs", "n1", "0", SinusoidStimulus(1.0, 1e6)))
    for k in range(int(rng.integers(3, 8))):
        p, n = pick_two()
        kind = int(rng.integers(0, 6))
        if kind == 0:
            ckt.add(Resistor(f"r{k}", p, n, float(rng.uniform(10, 1e4))))
        elif kind == 1:
            ckt.add(Capacitor(f"c{k}", p, n, float(rng.uniform(1e-12, 1e-9))))
        elif kind == 2:
            ckt.add(Inductor(f"l{k}", p, n, float(rng.uniform(1e-9, 1e-6))))
        elif kind == 3:
            ckt.add(
                Diode(
                    f"d{k}",
                    p,
                    n,
                    DiodeParams(junction_capacitance=float(rng.uniform(0, 1e-12))or 1e-13),
                )
            )
        elif kind == 4:
            third = nodes[int(rng.integers(0, len(nodes)))]
            ckt.add(NMOS(f"m{k}", p, third, n, params=MOSFETParams(cgs=1e-13)))
        else:
            ckt.add(PolynomialConductance(f"p{k}", p, n, (1e-3, 1e-4)))
    return ckt


class TestSparseMatchesDense:
    def test_all_device_types_bit_for_bit(self, rng):
        mna = _all_device_circuit().compile()
        X = rng.normal(scale=0.8, size=(6, mna.n_unknowns))
        dense = mna.evaluate(X)
        sparse = mna.evaluate_sparse(X)
        np.testing.assert_array_equal(sparse.q, dense.q)
        np.testing.assert_array_equal(sparse.f, dense.f)
        for p in range(X.shape[0]):
            np.testing.assert_array_equal(
                sparse.conductance_csr(p).toarray(), dense.conductance[p]
            )
            np.testing.assert_array_equal(
                sparse.capacitance_csr(p).toarray(), dense.capacitance[p]
            )

    @pytest.mark.parametrize("seed", range(8))
    def test_random_circuits_bit_for_bit(self, seed):
        rng = np.random.default_rng(seed)
        mna = _random_circuit(rng).compile()
        X = rng.normal(scale=0.7, size=(4, mna.n_unknowns))
        dense = mna.evaluate(X)
        sparse = mna.evaluate_sparse(X)
        for p in range(X.shape[0]):
            np.testing.assert_array_equal(
                sparse.conductance_csr(p).toarray(), dense.conductance[p]
            )
            np.testing.assert_array_equal(
                sparse.capacitance_csr(p).toarray(), dense.capacitance[p]
            )

    def test_single_point_csr_accessors(self, rng):
        mna = _all_device_circuit().compile()
        x = rng.normal(size=mna.n_unknowns)
        np.testing.assert_array_equal(
            mna.conductance_csr(x).toarray(), mna.conductance_matrix(x)
        )
        np.testing.assert_array_equal(
            mna.capacitance_csr(x).toarray(), mna.capacitance_matrix(x)
        )


class TestResidualOnlyFastPath:
    def test_residuals_match_full_evaluation(self, rng):
        mna = _all_device_circuit().compile()
        X = rng.normal(scale=0.6, size=(5, mna.n_unknowns))
        full = mna.evaluate(X)
        fast = mna.evaluate(X, need_jacobian=False)
        np.testing.assert_array_equal(fast.q, full.q)
        np.testing.assert_array_equal(fast.f, full.f)
        assert fast.capacitance is None and fast.conductance is None

    @pytest.mark.parametrize("seed", range(4))
    def test_random_circuits_residual_only(self, seed):
        rng = np.random.default_rng(100 + seed)
        mna = _random_circuit(rng).compile()
        X = rng.normal(size=(3, mna.n_unknowns))
        full = mna.evaluate(X)
        fast = mna.evaluate(X, need_jacobian=False)
        np.testing.assert_array_equal(fast.q, full.q)
        np.testing.assert_array_equal(fast.f, full.f)

    def test_sparse_residual_only(self, rng):
        mna = _all_device_circuit().compile()
        X = rng.normal(size=(3, mna.n_unknowns))
        fast = mna.evaluate_sparse(X, need_jacobian=False)
        full = mna.evaluate(X)
        np.testing.assert_array_equal(fast.q, full.q)
        np.testing.assert_array_equal(fast.f, full.f)
        assert fast.c_data is None and fast.g_data is None


class TestDynamicMaskAndGmin:
    def test_dynamic_mask_matches_dense_pattern(self, rng):
        mna = _all_device_circuit().compile()
        x = rng.normal(size=mna.n_unknowns)
        dense_mask = np.any(mna.capacitance_matrix(x) != 0.0, axis=0)
        structural = mna.dynamic_unknowns_mask()
        # The structural mask may only be wider than the numeric one (a value
        # can vanish at a particular x), never narrower.
        assert np.all(dense_mask <= structural)

    def test_gmin_matrix_is_sparse_diagonal(self):
        mna = _all_device_circuit().compile()
        gmin = mna.gmin_matrix(1e-9)
        assert sp.issparse(gmin)
        dense = gmin.toarray()
        assert np.count_nonzero(dense - np.diag(np.diag(dense))) == 0
        assert np.count_nonzero(np.diag(dense)) == mna.n_nodes


def _mixer_problem(n_fast: int = 10, n_slow: int = 7) -> MPDEProblem:
    from repro.rf import unbalanced_switching_mixer

    mixer = unbalanced_switching_mixer(lo_frequency=1e6, difference_frequency=5e4)
    return MPDEProblem(
        mixer.compile(), mixer.scales, MPDEOptions(n_fast=n_fast, n_slow=n_slow)
    )


class TestMPDEJacobianAssembly:
    def test_sparse_assembly_matches_dense_reference(self, rng):
        problem = _mixer_problem()
        x = rng.normal(scale=0.3, size=problem.n_total_unknowns)
        new = problem.jacobian(x).toarray()
        ref = problem.jacobian_dense_reference(x).toarray()
        scale = np.max(np.abs(ref))
        np.testing.assert_allclose(new, ref, rtol=1e-12, atol=1e-12 * scale)

    def test_matrix_free_operator_matches_assembled(self, rng):
        problem = _mixer_problem()
        x = rng.normal(scale=0.3, size=problem.n_total_unknowns)
        residual, c_data, g_data = problem.residual_and_values(x)
        assembled = problem.assemble_jacobian(c_data, g_data)
        operator = problem.jacobian_operator(c_data, g_data)
        v = rng.normal(size=problem.n_total_unknowns)
        ref = assembled @ v
        np.testing.assert_allclose(operator @ v, ref, rtol=1e-12, atol=1e-12 * np.max(np.abs(ref)))
        # The residual from the fused call matches the standalone one.
        np.testing.assert_array_equal(residual, problem.residual(x))

    def test_averaged_jacobian_has_same_structure(self, rng):
        problem = _mixer_problem()
        x = rng.normal(scale=0.3, size=problem.n_total_unknowns)
        _, c_data, g_data = problem.residual_and_values(x)
        averaged = problem.averaged_jacobian(c_data, g_data)
        assert averaged.shape == (problem.n_total_unknowns,) * 2

    def test_matrix_free_solve_matches_direct(self):
        from repro.rf import unbalanced_switching_mixer

        mixer = unbalanced_switching_mixer(lo_frequency=1e6, difference_frequency=5e4)
        mna = mixer.compile()
        direct = solve_mpde(mna, mixer.scales, MPDEOptions(n_fast=12, n_slow=9))
        free = solve_mpde(
            mna, mixer.scales, MPDEOptions(n_fast=12, n_slow=9, matrix_free=True)
        )
        assert free.stats.converged
        assert free.stats.linear_iterations > 0
        assert free.stats.preconditioner_builds >= 1
        abstol = MPDEOptions().newton.abstol
        assert free.stats.residual_norm <= abstol
        np.testing.assert_allclose(free.states, direct.states, rtol=1e-6, atol=1e-8)


class TestChordNewtonTransient:
    def test_linear_circuit_chord_matches_full(self):
        from repro.analysis import run_transient

        ckt = Circuit("rc")
        ckt.add(VoltageSource("vin", "in", ckt.GROUND, SinusoidStimulus(1.0, 1e5)))
        ckt.add(Resistor("r1", "in", "out", 1e3))
        ckt.add(Capacitor("c1", "out", ckt.GROUND, 1e-9))
        mna = ckt.compile()
        t_stop, dt = 2e-5, 1e-7
        chord = run_transient(mna, t_stop, dt, options=TransientOptions(chord_newton=True))
        full = run_transient(mna, t_stop, dt, options=TransientOptions(chord_newton=False))
        np.testing.assert_allclose(chord.states, full.states, rtol=1e-9, atol=1e-12)
        # The whole linear run needs O(1) factorisations (one up front, at
        # most one more if the final step is shortened to land on t_stop),
        # versus one per Newton iteration on the legacy path.
        assert chord.stats.jacobian_refactorisations <= 3
        assert chord.stats.newton_iterations > 10 * chord.stats.jacobian_refactorisations

    def test_nonlinear_circuit_chord_matches_full(self):
        from repro.analysis import run_transient

        ckt = Circuit("rectifier")
        ckt.add(VoltageSource("vin", "in", ckt.GROUND, SinusoidStimulus(2.0, 1e5)))
        ckt.add(Resistor("r1", "in", "d", 100.0))
        ckt.add(Diode("d1", "d", "out"))
        ckt.add(Resistor("rl", "out", ckt.GROUND, 1e3))
        ckt.add(Capacitor("cl", "out", ckt.GROUND, 1e-8))
        mna = ckt.compile()
        t_stop, dt = 3e-5, 5e-8
        chord = run_transient(mna, t_stop, dt, options=TransientOptions(chord_newton=True))
        full = run_transient(mna, t_stop, dt, options=TransientOptions(chord_newton=False))
        # Both runs satisfy the same Newton tolerances; near diode turn-off
        # the residual tolerance translates to ~1e-7 V on the floating node,
        # so agreement is asserted at that level rather than bit-for-bit.
        np.testing.assert_allclose(chord.states, full.states, rtol=1e-4, atol=1e-6)
        assert chord.stats.jacobian_refactorisations < full.stats.newton_iterations


class TestGMRESReport:
    def test_reports_inner_iterations_and_restart_cycles(self):
        n = 120
        main = 2.0 * np.ones(n)
        off = -1.0 * np.ones(n - 1)
        a = sp.diags([off, main, off], offsets=[-1, 0, 1]).tocsr()
        b = np.ones(n)
        x, report = gmres_solve(a, b, preconditioner=None, tol=1e-10, restart=20)
        assert report.converged
        assert report.iterations > 0
        assert report.restart_cycles >= 1
        assert report.restart_cycles == -(-report.iterations // 20)
        # The reported norm comes from the solver's own recurrence; it must
        # still certify convergence to the requested tolerance.
        assert report.residual_norm <= 1e-9 * np.linalg.norm(b) * 10
        np.testing.assert_allclose(a @ x, b, rtol=1e-8, atol=1e-8)
