"""Unit tests for the damped Newton solver."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.linalg import newton_solve, solve_linear_system
from repro.utils import ConvergenceError, NewtonOptions, SingularMatrixError


class TestSolveLinearSystem:
    def test_dense(self):
        a = np.array([[2.0, 0.0], [0.0, 4.0]])
        x = solve_linear_system(a, np.array([2.0, 8.0]))
        np.testing.assert_allclose(x, [1.0, 2.0])

    def test_sparse(self):
        a = sp.diags([1.0, 2.0, 4.0]).tocsr()
        x = solve_linear_system(a, np.array([1.0, 2.0, 4.0]))
        np.testing.assert_allclose(x, [1.0, 1.0, 1.0])

    def test_linear_operator_uses_gmres(self):
        mat = np.diag([1.0, 2.0, 3.0])
        op = spla.LinearOperator((3, 3), matvec=lambda v: mat @ v)
        x = solve_linear_system(op, np.array([1.0, 4.0, 9.0]))
        np.testing.assert_allclose(x, [1.0, 2.0, 3.0], rtol=1e-6)

    def test_singular_dense_raises(self):
        with pytest.raises(SingularMatrixError):
            solve_linear_system(np.zeros((2, 2)), np.ones(2))

    def test_singular_sparse_raises(self):
        singular = sp.csr_matrix((2, 2))
        with pytest.raises(SingularMatrixError):
            solve_linear_system(singular, np.ones(2))


class TestNewtonScalarProblems:
    def test_linear_problem_converges_quickly(self):
        result = newton_solve(
            lambda x: 3.0 * x - 6.0, lambda x: np.array([[3.0]]), np.array([0.0])
        )
        assert result.converged
        # One productive step plus (at most) one confirming step.
        assert result.iterations <= 2
        np.testing.assert_allclose(result.x, [2.0])

    def test_sqrt_two(self):
        result = newton_solve(
            lambda x: x**2 - 2.0,
            lambda x: np.array([[2.0 * x[0]]]),
            np.array([1.0]),
        )
        assert result.converged
        np.testing.assert_allclose(result.x, [np.sqrt(2.0)], rtol=1e-10)

    def test_quadratic_convergence_rate(self):
        """Residual history should shrink super-linearly near the root."""
        result = newton_solve(
            lambda x: x**3 - 8.0,
            lambda x: np.array([[3.0 * x[0] ** 2]]),
            np.array([3.0]),
            NewtonOptions(abstol=1e-14),
        )
        history = result.residual_history
        # After the first couple of steps the residual should collapse fast.
        assert history[-1] < 1e-12
        assert len(history) < 10

    def test_exponential_needs_damping(self):
        """exp(x) - 1e6 = 0 from x0=0 overflows without step limiting/damping."""
        result = newton_solve(
            lambda x: np.exp(x) - 1e6,
            lambda x: np.array([[np.exp(x[0])]]),
            np.array([0.0]),
            NewtonOptions(max_iterations=200, max_step_norm=5.0),
        )
        assert result.converged
        np.testing.assert_allclose(result.x, [np.log(1e6)], rtol=1e-8)

    def test_already_converged_initial_guess(self):
        result = newton_solve(
            lambda x: x - 1.0, lambda x: np.eye(1), np.array([1.0])
        )
        assert result.converged
        assert result.iterations == 0


class TestNewtonVectorProblems:
    def test_2d_nonlinear_system(self):
        def residual(v):
            x, y = v
            return np.array([x**2 + y**2 - 4.0, x - y])

        def jacobian(v):
            x, y = v
            return np.array([[2 * x, 2 * y], [1.0, -1.0]])

        result = newton_solve(residual, jacobian, np.array([1.0, 0.5]))
        assert result.converged
        np.testing.assert_allclose(result.x, [np.sqrt(2.0), np.sqrt(2.0)], rtol=1e-9)

    def test_sparse_jacobian(self):
        def residual(v):
            return v**2 - np.arange(1.0, 6.0)

        def jacobian(v):
            return sp.diags(2.0 * v).tocsr()

        result = newton_solve(residual, jacobian, np.ones(5))
        assert result.converged
        np.testing.assert_allclose(result.x, np.sqrt(np.arange(1.0, 6.0)), rtol=1e-9)

    def test_callback_is_invoked(self):
        calls = []
        newton_solve(
            lambda x: x - 3.0,
            lambda x: np.eye(1),
            np.array([0.0]),
            callback=lambda it, x, r: calls.append((it, float(x[0]), r)),
        )
        assert len(calls) >= 1
        assert calls[0][0] == 1


class TestNewtonFailures:
    def test_exhausted_iterations_raise(self):
        with pytest.raises(ConvergenceError) as excinfo:
            newton_solve(
                lambda x: np.array([np.cos(x[0]) + 2.0]),  # no root exists
                lambda x: np.array([[-np.sin(x[0])]]),
                np.array([0.5]),
                NewtonOptions(max_iterations=10),
            )
        assert excinfo.value.iterations == 10

    def test_raise_on_failure_false_returns_best_iterate(self):
        result = newton_solve(
            lambda x: np.array([np.cos(x[0]) + 2.0]),
            lambda x: np.array([[-np.sin(x[0])]]),
            np.array([0.5]),
            NewtonOptions(max_iterations=5),
            raise_on_failure=False,
        )
        assert not result.converged
        assert result.iterations == 5
        assert np.isfinite(result.residual_norm)
