"""Unit tests for tone descriptions and closely-spaced tone pairs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.signals import Tone, TonePair, difference_frequency, is_closely_spaced
from repro.utils import ConfigurationError


class TestTone:
    def test_evaluation(self):
        tone = Tone(frequency=1e3, amplitude=2.0)
        assert tone(0.0) == pytest.approx(2.0)
        assert tone(0.25e-3) == pytest.approx(0.0, abs=1e-12)

    def test_period_and_omega(self):
        tone = Tone(frequency=50.0)
        assert tone.period == pytest.approx(0.02)
        assert tone.omega == pytest.approx(2 * np.pi * 50.0)

    def test_phase(self):
        tone = Tone(frequency=1e3, amplitude=1.0, phase=np.pi / 2)
        assert tone(0.0) == pytest.approx(0.0, abs=1e-12)

    def test_scaled(self):
        tone = Tone(1e3, 1.0).scaled(0.5)
        assert tone.amplitude == 0.5

    def test_invalid_frequency(self):
        with pytest.raises(ConfigurationError):
            Tone(frequency=0.0)

    def test_vectorised_evaluation(self):
        tone = Tone(frequency=1e3)
        t = np.linspace(0, 1e-3, 11)
        np.testing.assert_allclose(tone(t), np.cos(2 * np.pi * 1e3 * t))


class TestDifferenceFrequency:
    def test_simple_difference(self):
        assert difference_frequency(1e9, 1e9 - 10e3) == pytest.approx(10e3)

    def test_lo_multiple(self):
        assert difference_frequency(450e6, 900e6 - 15e3, lo_multiple=2) == pytest.approx(15e3)

    def test_absolute_value(self):
        assert difference_frequency(1e9, 1e9 + 10e3) == pytest.approx(10e3)

    def test_invalid_multiple(self):
        with pytest.raises(ConfigurationError):
            difference_frequency(1e9, 1e9, lo_multiple=0)

    def test_is_closely_spaced(self):
        assert is_closely_spaced(1e9, 1e9 - 10e3)
        assert not is_closely_spaced(1e9, 0.5e9)


class TestTonePair:
    def test_paper_ideal_mixing_values(self):
        pair = TonePair.paper_ideal_mixing()
        assert pair.f1 == pytest.approx(1e9)
        assert pair.difference_frequency == pytest.approx(10e3)
        assert pair.difference_period == pytest.approx(0.1e-3)
        assert pair.is_closely_spaced()

    def test_paper_balanced_mixer_values(self):
        pair = TonePair.paper_balanced_mixer()
        assert pair.f1 == pytest.approx(450e6)
        assert pair.lo_multiple == 2
        assert pair.difference_frequency == pytest.approx(15e3)
        # Baseband period ~66.7 us, consistent with the ~0.06 ms span of Fig. 4.
        assert pair.difference_period == pytest.approx(1 / 15e3)

    def test_disparity(self):
        pair = TonePair.from_frequencies(1e9, 1e9 - 10e3)
        assert pair.disparity == pytest.approx(1e5)

    def test_disparity_infinite_for_identical_tones(self):
        pair = TonePair.from_frequencies(1e9, 1e9)
        assert pair.disparity == np.inf

    def test_difference_period_raises_for_identical_tones(self):
        pair = TonePair.from_frequencies(1e9, 1e9)
        with pytest.raises(ConfigurationError):
            _ = pair.difference_period

    def test_invalid_lo_multiple(self):
        with pytest.raises(ConfigurationError):
            TonePair(Tone(1e9), Tone(2e9), lo_multiple=0)

    def test_from_frequencies_amplitudes(self):
        pair = TonePair.from_frequencies(1e6, 0.9e6, lo_amplitude=2.0, rf_amplitude=0.5)
        assert pair.lo.amplitude == 2.0
        assert pair.rf.amplitude == 0.5
