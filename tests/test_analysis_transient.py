"""Unit and integration tests for transient (time-stepping) analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import run_transient
from repro.circuits import Circuit
from repro.circuits.devices import Capacitor, Inductor, Resistor, VoltageSource
from repro.signals import DCStimulus, SinusoidStimulus
from repro.utils import AnalysisError, TransientOptions


class TestRCStepResponse:
    """R = 1 kOhm, C = 1 uF charging toward 1 V: v(t) = 1 - exp(-t/RC)."""

    tau = 1e-3

    def _run(self, rc_lowpass_step, method, dt, **kwargs):
        mna = rc_lowpass_step.compile()
        options = TransientOptions(method=method, **kwargs)
        result = run_transient(
            mna, t_stop=5 * self.tau, dt=dt, use_dc_initial=False, options=options
        )
        return result.waveform("out")

    @pytest.mark.parametrize("method, tol", [("backward-euler", 0.03), ("trapezoidal", 0.002), ("gear2", 0.005)])
    def test_matches_analytic_solution(self, rc_lowpass_step, method, tol):
        wave = self._run(rc_lowpass_step, method, dt=self.tau / 50)
        expected = 1.0 - np.exp(-wave.times / self.tau)
        assert np.max(np.abs(wave.values - expected)) < tol

    def test_trapezoidal_is_second_order(self, rc_lowpass_step):
        errors = []
        for dt in (self.tau / 20, self.tau / 40):
            wave = self._run(rc_lowpass_step, "trapezoidal", dt=dt)
            expected = 1.0 - np.exp(-wave.times / self.tau)
            errors.append(np.max(np.abs(wave.values - expected)))
        assert errors[1] / errors[0] == pytest.approx(0.25, rel=0.35)

    def test_final_value_reaches_steady_state(self, rc_lowpass_step):
        wave = self._run(rc_lowpass_step, "trapezoidal", dt=self.tau / 20)
        assert wave.values[-1] == pytest.approx(1.0, abs=0.01)

    def test_adaptive_stepping_takes_fewer_steps(self, rc_lowpass_step):
        mna = rc_lowpass_step.compile()
        fixed = run_transient(
            mna,
            t_stop=5 * self.tau,
            dt=self.tau / 200,
            use_dc_initial=False,
            options=TransientOptions(method="trapezoidal"),
        )
        adaptive = run_transient(
            mna,
            t_stop=5 * self.tau,
            dt=self.tau / 200,
            use_dc_initial=False,
            options=TransientOptions(method="trapezoidal", adaptive=True, ltetol=1e-3),
        )
        assert adaptive.stats.accepted_steps < fixed.stats.accepted_steps
        # Still accurate.
        expected = 1.0 - np.exp(-adaptive.times / self.tau)
        observed = np.asarray(adaptive.waveform("out").values)
        assert np.max(np.abs(observed - expected)) < 0.02


class TestDrivenRC:
    def test_sinusoidal_steady_state_amplitude(self, rc_lowpass):
        """After several periods the output amplitude matches the RC divider."""
        mna = rc_lowpass.compile()
        freq = 1e3
        rc = 1e3 * 100e-9
        result = run_transient(
            mna,
            t_stop=8 / freq,
            dt=1 / freq / 200,
            options=TransientOptions(method="trapezoidal"),
        )
        wave = result.waveform("out").window(6 / freq, 8 / freq)
        expected_amplitude = 1.0 / np.sqrt(1.0 + (2 * np.pi * freq * rc) ** 2)
        assert wave.amplitude() == pytest.approx(expected_amplitude, rel=0.02)


class TestRLC:
    def test_lc_resonance_ringing_frequency(self):
        """An underdamped series RLC rings at ~f0 = 1/(2 pi sqrt(LC))."""
        ckt = Circuit("rlc step")
        ckt.add(VoltageSource("vin", "in", ckt.GROUND, DCStimulus(1.0)))
        ckt.add(Resistor("r1", "in", "a", 10.0))
        ckt.add(Inductor("l1", "a", "b", 1e-3))
        ckt.add(Capacitor("c1", "b", ckt.GROUND, 1e-6))
        mna = ckt.compile()
        f0 = 1.0 / (2 * np.pi * np.sqrt(1e-3 * 1e-6))
        result = run_transient(
            mna,
            t_stop=6 / f0,
            dt=1 / f0 / 100,
            use_dc_initial=False,
            options=TransientOptions(method="trapezoidal"),
        )
        from repro.signals import compute_spectrum

        wave = result.waveform("b")
        spectrum = compute_spectrum(wave, detrend=True)
        assert spectrum.dominant_frequency() == pytest.approx(f0, rel=0.05)

    def test_inductor_current_is_tracked(self):
        ckt = Circuit("rl")
        ckt.add(VoltageSource("vin", "in", ckt.GROUND, DCStimulus(1.0)))
        ckt.add(Resistor("r1", "in", "a", 100.0))
        ckt.add(Inductor("l1", "a", ckt.GROUND, 10e-3))
        mna = ckt.compile()
        tau = 10e-3 / 100.0
        result = run_transient(
            mna,
            t_stop=5 * tau,
            dt=tau / 100,
            use_dc_initial=False,
            options=TransientOptions(method="trapezoidal"),
        )
        i_l = result.states[:, mna.branch_index("l1")]
        expected = (1.0 / 100.0) * (1.0 - np.exp(-result.times / tau))
        assert np.max(np.abs(i_l - expected)) < 5e-4


class TestTransientOptionsAndErrors:
    def test_invalid_time_span(self, rc_lowpass_step):
        mna = rc_lowpass_step.compile()
        with pytest.raises(AnalysisError):
            run_transient(mna, t_stop=0.0, dt=1e-6)
        with pytest.raises(AnalysisError):
            run_transient(mna, t_stop=1e-3, dt=-1e-6)

    def test_bad_initial_state_shape(self, rc_lowpass_step):
        mna = rc_lowpass_step.compile()
        with pytest.raises(AnalysisError):
            run_transient(mna, t_stop=1e-3, dt=1e-5, x0=np.zeros(99))

    def test_store_every_thins_output(self, rc_lowpass_step):
        mna = rc_lowpass_step.compile()
        dense = run_transient(mna, t_stop=1e-3, dt=1e-5)
        thin = run_transient(
            mna, t_stop=1e-3, dt=1e-5, options=TransientOptions(store_every=10)
        )
        assert len(thin.times) < len(dense.times)
        assert thin.times[-1] == pytest.approx(dense.times[-1])

    def test_dc_initial_condition_removes_startup_transient(self, voltage_divider):
        mna = voltage_divider.compile()
        result = run_transient(mna, t_stop=1e-3, dt=1e-4)
        mid = result.waveform("mid")
        np.testing.assert_allclose(mid.values, 5.0, rtol=1e-6)

    def test_stats_are_populated(self, rc_lowpass_step):
        mna = rc_lowpass_step.compile()
        result = run_transient(mna, t_stop=1e-3, dt=1e-5, use_dc_initial=False)
        assert result.stats.accepted_steps == pytest.approx(100, abs=2)
        assert result.stats.newton_iterations >= result.stats.accepted_steps

    def test_final_state_accessor(self, rc_lowpass_step):
        mna = rc_lowpass_step.compile()
        result = run_transient(mna, t_stop=1e-3, dt=1e-5)
        np.testing.assert_allclose(result.final_state(), result.states[-1])

    def test_differential_waveform(self, voltage_divider):
        mna = voltage_divider.compile()
        result = run_transient(mna, t_stop=1e-4, dt=1e-5)
        diff = result.differential_waveform("top", "mid")
        np.testing.assert_allclose(diff.values, 5.0, rtol=1e-6)
