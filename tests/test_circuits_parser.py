"""Tests for the SPICE-flavoured netlist parser."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import dc_operating_point, run_transient, shooting_periodic_steady_state
from repro.circuits import parse_netlist, parse_value
from repro.circuits.devices import (
    BJT,
    Capacitor,
    Diode,
    Inductor,
    MOSFET,
    Resistor,
    VoltageSource,
)
from repro.signals import DCStimulus, PulseStimulus, SinusoidStimulus, SumStimulus
from repro.utils import CircuitError, ShootingOptions


class TestParseValue:
    @pytest.mark.parametrize(
        "token, expected",
        [
            ("10", 10.0),
            ("4.7k", 4.7e3),
            ("100n", 100e-9),
            ("2.2u", 2.2e-6),
            ("3p", 3e-12),
            ("1meg", 1e6),
            ("1MEG", 1e6),
            ("5m", 5e-3),
            ("1.5e-3", 1.5e-3),
            ("-2.5", -2.5),
            ("10f", 10e-15),
            ("2g", 2e9),
        ],
    )
    def test_engineering_suffixes(self, token, expected):
        assert parse_value(token) == pytest.approx(expected)

    @pytest.mark.parametrize("token", ["", "abc", "1.2.3", "10x"])
    def test_invalid_values(self, token):
        with pytest.raises(CircuitError):
            parse_value(token)


class TestBasicElements:
    def test_rc_divider(self):
        circuit = parse_netlist(
            """
            .title simple divider
            vin top 0 DC 10
            r1 top mid 1k
            r2 mid 0 1k
            c1 mid 0 100n
            .end
            """
        )
        assert circuit.name == "simple divider"
        assert isinstance(circuit.device("r1"), Resistor)
        assert isinstance(circuit.device("c1"), Capacitor)
        assert circuit.device("r1").resistance == pytest.approx(1e3)
        mna = circuit.compile()
        solution = dc_operating_point(mna)
        assert solution.voltage(mna, "mid") == pytest.approx(5.0, rel=1e-9)

    def test_inductor_and_comments(self):
        circuit = parse_netlist(
            """
            * an RL circuit
            v1 in 0 1.0   ; one volt
            l1 in out 10m
            r1 out 0 100
            """
        )
        assert isinstance(circuit.device("l1"), Inductor)
        assert circuit.device("l1").inductance == pytest.approx(10e-3)

    def test_continuation_lines(self):
        circuit = parse_netlist(
            """
            v1 in 0
            + DC 2.5
            r1 in 0 1k
            """
        )
        assert circuit.device("v1").stimulus.value(0.0) == pytest.approx(2.5)

    def test_controlled_sources(self):
        circuit = parse_netlist(
            """
            vin ctrl 0 DC 1
            g1 0 out ctrl 0 2m
            e1 buf 0 ctrl 0 4
            rout out 0 1k
            rbuf buf 0 1k
            """
        )
        mna = circuit.compile()
        solution = dc_operating_point(mna)
        assert solution.voltage(mna, "out") == pytest.approx(2.0, rel=1e-6)
        assert solution.voltage(mna, "buf") == pytest.approx(4.0, rel=1e-6)


class TestSources:
    def test_sin_source(self):
        circuit = parse_netlist(
            """
            vin in 0 SIN(0.5 2 10k 90)
            r1 in 0 1k
            """
        )
        stimulus = circuit.device("vin").stimulus
        assert isinstance(stimulus, SumStimulus)
        # offset 0.5 + amplitude 2 at 10 kHz with 90 degrees phase -> cos(90deg) = 0 at t=0.
        assert stimulus.value(0.0) == pytest.approx(0.5, abs=1e-9)

    def test_sin_source_without_offset(self):
        circuit = parse_netlist(
            """
            vin in 0 SIN(0 1 1k)
            r1 in 0 1k
            """
        )
        assert isinstance(circuit.device("vin").stimulus, SinusoidStimulus)

    def test_pulse_source(self):
        circuit = parse_netlist(
            """
            vck clk 0 PULSE(0 3.3 1u 0.4u)
            r1 clk 0 1k
            """
        )
        stimulus = circuit.device("vck").stimulus
        assert isinstance(stimulus, PulseStimulus)
        assert stimulus.value(0.2e-6) == pytest.approx(3.3)
        assert stimulus.value(0.7e-6) == pytest.approx(0.0)

    def test_dc_current_source(self):
        circuit = parse_netlist(
            """
            i1 0 out DC 1m
            r1 out 0 1k
            """
        )
        mna = circuit.compile()
        solution = dc_operating_point(mna)
        assert solution.voltage(mna, "out") == pytest.approx(1.0, rel=1e-6)

    def test_malformed_source_raises(self):
        with pytest.raises(CircuitError):
            parse_netlist("v1 a 0 SIN(1)\nr1 a 0 1k")
        with pytest.raises(CircuitError):
            parse_netlist("v1 a 0 DC 1 2\nr1 a 0 1k")


class TestModels:
    def test_diode_model(self):
        circuit = parse_netlist(
            """
            .model dfast D (is=1e-12 cj0=2p)
            vin in 0 SIN(0 5 1k)
            d1 in out dfast
            rl out 0 1k
            cl out 0 10u
            """
        )
        diode = circuit.device("d1")
        assert isinstance(diode, Diode)
        assert diode.params.saturation_current == pytest.approx(1e-12)
        assert diode.params.junction_capacitance == pytest.approx(2e-12)
        # The parsed rectifier actually runs.
        result = shooting_periodic_steady_state(
            circuit.compile(), 1e-3, options=ShootingOptions(steps_per_period=200)
        )
        assert result.waveform("out").mean() > 3.0

    def test_mosfet_models(self):
        circuit = parse_netlist(
            """
            .model nch NMOS (vto=0.6 kp=170u w=20u l=0.35u lambda=0.03)
            .model pch PMOS (vto=-0.6 kp=60u w=40u l=0.35u)
            vdd vdd 0 DC 3
            vin g 0 DC 1.2
            m1 d g 0 0 nch
            m2 d g vdd vdd pch
            rload d 0 10k
            """
        )
        m1 = circuit.device("m1")
        m2 = circuit.device("m2")
        assert isinstance(m1, MOSFET) and m1.polarity == 1
        assert isinstance(m2, MOSFET) and m2.polarity == -1
        assert m1.params.vto == pytest.approx(0.6)
        assert m2.params.vto == pytest.approx(-0.6)
        solution = dc_operating_point(circuit.compile())
        assert np.all(np.isfinite(solution.x))

    def test_bjt_model(self):
        circuit = parse_netlist(
            """
            .model qfast NPN (is=1e-15 bf=120)
            vcc vcc 0 DC 5
            vb b 0 DC 0.7
            q1 c b 0 qfast
            rc vcc c 1k
            """
        )
        q1 = circuit.device("q1")
        assert isinstance(q1, BJT)
        assert q1.params.beta_forward == pytest.approx(120)

    def test_unknown_model_reference(self):
        with pytest.raises(CircuitError, match="unknown model"):
            parse_netlist("d1 a 0 nomodel\nr1 a 0 1k")

    def test_wrong_model_type(self):
        with pytest.raises(CircuitError, match="expected one of"):
            parse_netlist(
                """
                .model nch NMOS (vto=0.6)
                d1 a 0 nch
                r1 a 0 1k
                """
            )

    def test_unsupported_model_parameter(self):
        with pytest.raises(CircuitError, match="unsupported parameter"):
            parse_netlist(
                """
                .model dd D (is=1e-14 xti=3)
                d1 a 0 dd
                r1 a 0 1k
                """
            )


class TestErrors:
    def test_empty_netlist(self):
        with pytest.raises(CircuitError):
            parse_netlist("* only a comment\n")

    def test_unknown_element(self):
        with pytest.raises(CircuitError, match="unsupported element"):
            parse_netlist("x1 a b sub\nr1 a 0 1k")

    def test_unsupported_control_card(self):
        with pytest.raises(CircuitError, match="unsupported control card"):
            parse_netlist(".tran 1n 1u\nr1 a 0 1k")

    def test_short_element_line(self):
        with pytest.raises(CircuitError):
            parse_netlist("r1 a 1k")

    def test_end_card_stops_parsing(self):
        circuit = parse_netlist(
            """
            r1 a 0 1k
            .end
            r2 b 0 1k
            """
        )
        assert len(circuit) == 1


class TestParsedCircuitsInAnalyses:
    def test_transient_of_parsed_rc(self):
        circuit = parse_netlist(
            """
            .title parsed rc
            vin in 0 DC 1
            r1 in out 1k
            c1 out 0 1u
            """
        )
        mna = circuit.compile()
        result = run_transient(mna, t_stop=5e-3, dt=5e-5, use_dc_initial=False)
        wave = result.waveform("out")
        assert wave.values[-1] == pytest.approx(1.0, abs=0.02)

    def test_parsed_mixer_runs_through_mpde(self):
        """A netlist-described behavioural mixer runs through the MPDE solver."""
        from repro.core import ShearedTimeScales, solve_mpde
        from repro.utils import MPDEOptions

        f1, fd = 1e6, 10e3
        circuit = parse_netlist(
            f"""
            .title netlist mixer
            vlo lo 0 SIN(0 1 {f1})
            vrf rf 0 SIN(0 0.5 {f1 - fd})
            g1 0 out lo 0 1m
            rout out 0 1k
            """
        )
        # The VCCS only passes the LO; mix it against the RF with a multiplier
        # is not expressible in plain SPICE, so simply check the MPDE solves a
        # parsed two-tone-driven linear circuit (sources on both axes).
        scales = ShearedTimeScales.from_frequencies(f1, f1 - fd)
        result = solve_mpde(circuit.compile(), scales, MPDEOptions(n_fast=16, n_slow=12))
        assert result.stats.converged
