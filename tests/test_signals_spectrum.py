"""Unit tests for spectral analysis helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.signals import (
    Waveform,
    band_power,
    compute_spectrum,
    fourier_coefficient,
    total_harmonic_distortion,
)
from repro.utils import WaveformError


def _sine_waveform(freq=1e3, amplitude=1.0, offset=0.0, periods=4, n=4096):
    duration = periods / freq
    t = np.linspace(0.0, duration, n)
    return Waveform(t, offset + amplitude * np.cos(2 * np.pi * freq * t))


class TestComputeSpectrum:
    def test_single_tone_amplitude(self):
        spec = compute_spectrum(_sine_waveform(amplitude=2.0))
        assert spec.amplitude_at(1e3) == pytest.approx(2.0, rel=1e-2)

    def test_dc_component(self):
        spec = compute_spectrum(_sine_waveform(amplitude=1.0, offset=3.0))
        assert spec.amplitudes[0] == pytest.approx(3.0, rel=1e-2)

    def test_dominant_frequency(self):
        spec = compute_spectrum(_sine_waveform(freq=2.5e3, offset=10.0))
        assert spec.dominant_frequency() == pytest.approx(2.5e3, rel=2e-2)

    def test_detrend_removes_dc(self):
        spec = compute_spectrum(_sine_waveform(offset=5.0), detrend=True)
        assert spec.amplitudes[0] == pytest.approx(0.0, abs=1e-9)

    def test_two_tones_resolved(self):
        t = np.linspace(0, 10e-3, 8192)
        w = Waveform(t, np.cos(2 * np.pi * 1e3 * t) + 0.5 * np.cos(2 * np.pi * 3e3 * t))
        spec = compute_spectrum(w)
        assert spec.amplitude_at(1e3) == pytest.approx(1.0, rel=2e-2)
        assert spec.amplitude_at(3e3) == pytest.approx(0.5, rel=2e-2)

    def test_amplitude_at_rejects_far_frequency(self):
        spec = compute_spectrum(_sine_waveform())
        # 1111 Hz is not a bin of the 250 Hz grid; a 1 Hz tolerance must reject it.
        with pytest.raises(WaveformError):
            spec.amplitude_at(1111.0, tolerance=1.0)

    def test_requires_enough_samples(self):
        with pytest.raises(WaveformError):
            compute_spectrum(Waveform(np.array([0.0, 1.0]), np.array([0.0, 1.0])))

    def test_resolution(self):
        spec = compute_spectrum(_sine_waveform(periods=4))
        assert spec.resolution == pytest.approx(250.0, rel=1e-6)


class TestFourierCoefficient:
    def test_cosine_amplitude_and_phase(self):
        coeff = fourier_coefficient(_sine_waveform(amplitude=1.4), 1e3)
        assert 2 * abs(coeff) == pytest.approx(1.4, rel=1e-3)
        assert np.angle(coeff) == pytest.approx(0.0, abs=1e-2)

    def test_sine_phase(self):
        t = np.linspace(0, 4e-3, 4001)
        w = Waveform(t, np.sin(2 * np.pi * 1e3 * t))
        coeff = fourier_coefficient(w, 1e3)
        assert np.angle(coeff) == pytest.approx(-np.pi / 2, abs=1e-2)

    def test_orthogonality(self):
        coeff = fourier_coefficient(_sine_waveform(freq=1e3), 2e3)
        assert abs(coeff) < 1e-3

    def test_non_bin_frequency(self):
        """Direct projection works for frequencies that are not FFT bins."""
        w = _sine_waveform(freq=1234.0, periods=10, n=8192)
        assert 2 * abs(fourier_coefficient(w, 1234.0)) == pytest.approx(1.0, rel=1e-2)


class TestTHD:
    def test_pure_tone_has_negligible_thd(self):
        assert total_harmonic_distortion(_sine_waveform(), 1e3) < 1e-3

    def test_known_harmonic_content(self):
        t = np.linspace(0, 4e-3, 8001)
        w = Waveform(t, np.cos(2 * np.pi * 1e3 * t) + 0.1 * np.cos(2 * np.pi * 2e3 * t))
        assert total_harmonic_distortion(w, 1e3) == pytest.approx(0.1, rel=5e-2)

    def test_square_wave_thd(self):
        """An ideal square wave has THD ~ sqrt(pi^2/8 - 1) ~ 0.483."""
        t = np.linspace(0, 4e-3, 16001)
        w = Waveform(t, np.sign(np.sin(2 * np.pi * 1e3 * t)))
        assert total_harmonic_distortion(w, 1e3, n_harmonics=25) == pytest.approx(0.483, rel=5e-2)

    def test_missing_fundamental_raises(self):
        t = np.linspace(0, 1e-3, 1001)
        w = Waveform(t, np.zeros_like(t))
        with pytest.raises(WaveformError):
            total_harmonic_distortion(w, 1e3)


class TestBandPower:
    def test_tone_power(self):
        spec = compute_spectrum(_sine_waveform(amplitude=2.0))
        power = band_power(spec, 900.0, 1100.0)
        assert power == pytest.approx(2.0, rel=5e-2)  # A^2/2 = 2

    def test_dc_power(self):
        spec = compute_spectrum(_sine_waveform(amplitude=0.0, offset=3.0))
        assert band_power(spec, 0.0, 10.0) == pytest.approx(9.0, rel=1e-2)

    def test_empty_band(self):
        spec = compute_spectrum(_sine_waveform())
        assert band_power(spec, 40e3, 41e3) == pytest.approx(0.0, abs=1e-6)

    def test_invalid_band(self):
        spec = compute_spectrum(_sine_waveform())
        with pytest.raises(WaveformError):
            band_power(spec, 2e3, 1e3)
