"""Property tests for the parallel execution layer (PR 5).

The contracts under test:

* **Sharded == serial, bit for bit.**  Every engine operation is elementwise
  along the ``P`` grid-point axis, so splitting ``P`` across forked workers
  must reproduce the serial batched path exactly — same residuals, same
  Jacobian data, for every device class, for worker counts that do and do
  not divide ``P``.
* **Eager == lazy per-harmonic factorisation.**  The partially-averaged
  preconditioner's eager batch mode factors the same ``n_slow // 2 + 1``
  systems through the same routine, so its applies and its factorisation
  counts are identical to the lazy path, with or without a worker pool.
* **Graceful degradation.**  Environments that cannot shard, explicit
  ``n_workers=1``, and workers that raise all fall back to the serial path
  with a recorded reason — never an exception, never different numbers.
* **Wall-time instrumentation.**  Every solver mode populates the
  ``MPDEStats`` timing breakdown, and the buckets sum to at most the total
  wall time.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import solve_mpde
from repro.linalg.preconditioners import BlockCirculantFastPreconditioner
from repro.parallel import (
    ShardedKernelPool,
    WorkerPool,
    WorkerPoolError,
    detect_capabilities,
    resolve_execution,
    shard_ranges,
)
from repro.utils import ConfigurationError, EvaluationOptions, MPDEOptions, RestartPolicy
from test_evaluation_engine import _all_device_circuit

#: A point count that is not divisible by 2, 3 or 4 — every shard split in
#: these tests exercises the uneven-remainder path.
ODD_POINTS = 203

pytestmark = [
    pytest.mark.skipif(
        not detect_capabilities().fork_available,
        reason="process sharding requires the 'fork' start method",
    ),
    # These tests assert bit-for-bit sharded == serial equality and poison
    # engines themselves; an ambient fault plan would break both.
    pytest.mark.no_fault_injection,
]


def _random_states(mna, n_points: int, rng) -> np.ndarray:
    return rng.normal(scale=0.4, size=(n_points, mna.n_unknowns))


class TestShardRanges:
    def test_covers_contiguously(self):
        for n_items in (0, 1, 7, 203, 1200):
            for n_shards in (1, 2, 3, 4, 7, 250):
                ranges = shard_ranges(n_items, n_shards)
                assert len(ranges) == n_shards
                assert ranges[0][0] == 0 and ranges[-1][1] == n_items
                for (lo, hi), (lo2, _hi2) in zip(ranges, ranges[1:]):
                    assert lo <= hi == lo2
                sizes = [hi - lo for lo, hi in ranges]
                assert sum(sizes) == n_items
                assert max(sizes) - min(sizes) <= 1  # balanced

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            shard_ranges(-1, 2)
        with pytest.raises(ValueError):
            shard_ranges(10, 0)


class TestResolution:
    def test_serial_is_never_a_fallback(self):
        resolved = resolve_execution("serial")
        assert not resolved.sharded and resolved.fallback_reason == ""

    def test_explicit_single_worker_records_reason(self):
        resolved = resolve_execution("sharded", 1)
        assert not resolved.sharded
        assert "n_workers=1" in resolved.fallback_reason

    def test_explicit_worker_count_is_honoured(self):
        resolved = resolve_execution("sharded", 3)
        assert resolved.sharded and resolved.n_workers == 3

    def test_auto_on_single_cpu_falls_back(self):
        caps = detect_capabilities()
        resolved = resolve_execution("sharded", None)
        if caps.cpu_count <= 1:
            assert not resolved.sharded
            assert "usable CPU" in resolved.fallback_reason
        else:
            assert resolved.sharded and resolved.n_workers >= 2

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_execution("magic")
        with pytest.raises(ConfigurationError):
            resolve_execution("sharded", 0)

    def test_evaluation_options_validate_kernel_backend(self):
        with pytest.raises(ConfigurationError):
            EvaluationOptions(kernel_backend="magic")
        with pytest.raises(ConfigurationError):
            EvaluationOptions(n_workers=0)
        with pytest.raises(ConfigurationError):
            MPDEOptions(n_workers=-1)


class TestShardedBitForBit:
    """Sharded ``evaluate`` / ``evaluate_sparse`` equal serial exactly."""

    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_every_device_class(self, rng, n_workers):
        circuit = _all_device_circuit()
        serial = circuit.compile()
        sharded = circuit.compile(
            EvaluationOptions(kernel_backend="sharded", n_workers=n_workers)
        )
        X = _random_states(serial, ODD_POINTS, rng)
        try:
            a = serial.evaluate_sparse(X)
            b = sharded.evaluate_sparse(X)
            for name in ("q", "f", "g_data", "c_data"):
                np.testing.assert_array_equal(
                    getattr(b, name), getattr(a, name), err_msg=name
                )
            dense_a = serial.evaluate(X)
            dense_b = sharded.evaluate(X)
            for name in ("q", "f", "capacitance", "conductance"):
                np.testing.assert_array_equal(
                    getattr(dense_b, name), getattr(dense_a, name), err_msg=name
                )
            # n_workers >= 2 really sharded; 1 is the recorded serial path.
            if n_workers == 1:
                assert "n_workers=1" in sharded.parallel_fallback_reason
            else:
                assert sharded.parallel_fallback_reason == ""
        finally:
            sharded.close()

    def test_residual_only_and_repeated_calls(self, rng):
        circuit = _all_device_circuit()
        serial = circuit.compile()
        sharded = circuit.compile(
            EvaluationOptions(kernel_backend="sharded", n_workers=2)
        )
        try:
            for n_points in (ODD_POINTS, 57, ODD_POINTS):  # exercises reshapes
                X = _random_states(serial, n_points, rng)
                a = serial.evaluate_sparse(X, need_jacobian=False)
                b = sharded.evaluate_sparse(X, need_jacobian=False)
                np.testing.assert_array_equal(b.q, a.q)
                np.testing.assert_array_equal(b.f, a.f)
                assert b.c_data is None and b.g_data is None
        finally:
            sharded.close()

    def test_results_do_not_alias_shared_buffers(self, rng):
        """Returned arrays must survive later evaluations (no shm views)."""
        circuit = _all_device_circuit()
        sharded = circuit.compile(
            EvaluationOptions(kernel_backend="sharded", n_workers=2)
        )
        try:
            X1 = _random_states(sharded, ODD_POINTS, rng)
            first = sharded.evaluate_sparse(X1)
            q_copy = first.q.copy()
            X2 = _random_states(sharded, ODD_POINTS, rng)
            sharded.evaluate_sparse(X2)
            np.testing.assert_array_equal(first.q, q_copy)
        finally:
            sharded.close()

    def test_per_call_override_on_serial_system(self, rng):
        circuit = _all_device_circuit()
        mna = circuit.compile()
        try:
            X = _random_states(mna, ODD_POINTS, rng)
            a = mna.evaluate_sparse(X)
            b = mna.evaluate_sparse(X, kernel_backend="sharded", n_workers=2)
            np.testing.assert_array_equal(b.g_data, a.g_data)
            np.testing.assert_array_equal(b.c_data, a.c_data)
        finally:
            mna.close()

    def test_single_point_stays_serial(self, rng):
        """P = 1 cannot be split; it must run serially without a fallback."""
        circuit = _all_device_circuit()
        mna = circuit.compile(
            EvaluationOptions(kernel_backend="sharded", n_workers=2)
        )
        try:
            x = _random_states(mna, 1, rng)
            serial = circuit.compile().evaluate_sparse(x)
            result = mna.evaluate_sparse(x)
            np.testing.assert_array_equal(result.q, serial.q)
            assert mna.parallel_fallback_reason == ""
        finally:
            mna.close()


class TestWorkerFailure:
    def test_worker_raise_records_reason_and_falls_back(self, rng):
        circuit = _all_device_circuit()
        serial = circuit.compile()
        # max_restarts=0: the poisoned engine travels into every healed
        # generation, so a restart budget would only burn probe attempts
        # before landing on the same sticky fallback.
        sharded = circuit.compile(
            EvaluationOptions(
                kernel_backend="sharded",
                n_workers=2,
                restart=RestartPolicy(max_restarts=0),
            )
        )
        try:
            engine = sharded.engine  # build before the pool forks
            original = engine.evaluate
            parent_pid = os.getpid()

            def poisoned(*args, **kwargs):
                if os.getpid() != parent_pid:
                    raise RuntimeError("injected worker failure")
                return original(*args, **kwargs)

            engine.evaluate = poisoned
            X = _random_states(serial, ODD_POINTS, rng)
            reference = serial.evaluate_sparse(X)
            result = sharded.evaluate_sparse(X)  # must not raise
            for name in ("q", "f", "g_data", "c_data"):
                np.testing.assert_array_equal(
                    getattr(result, name), getattr(reference, name), err_msg=name
                )
            assert "injected worker failure" in sharded.parallel_fallback_reason
            # The failure is sticky: later calls run serially, still correct.
            again = sharded.evaluate_sparse(X)
            np.testing.assert_array_equal(again.q, reference.q)
            assert "injected worker failure" in sharded.parallel_fallback_reason
        finally:
            sharded.close()

    def test_pool_surfaces_worker_errors(self, rng):
        """The raw pool raises WorkerPoolError (the MNA layer catches it)."""
        circuit = _all_device_circuit()
        mna = circuit.compile()
        engine = mna.engine
        original = engine.evaluate
        parent_pid = os.getpid()

        def poisoned(*args, **kwargs):
            if os.getpid() != parent_pid:
                raise RuntimeError("kaboom")
            return original(*args, **kwargs)

        engine.evaluate = poisoned
        pool = ShardedKernelPool(
            engine,
            n_unknowns=mna.n_unknowns,
            nnz_dynamic=mna.dynamic_pattern.nnz,
            nnz_static=mna.static_pattern.nnz,
            n_workers=2,
        )
        try:
            with pytest.raises(WorkerPoolError, match="kaboom"):
                pool.evaluate(_random_states(mna, 20, rng))
        finally:
            pool.close()


class TestEmptyShards:
    """``P < n_workers`` / ``P == 0``: idle workers and the reply protocol.

    ``shard_ranges(n, workers)`` with ``n < workers`` yields empty
    ``(lo, lo)`` trailing shards; ``ShardedKernelPool.evaluate`` maps those
    to ``None`` messages, which ``_send`` must skip entirely — an idle
    worker receives no command, owes no acknowledgement, and must not be
    charged against the reply watchdog budget.  These tests pin that
    contract down, including that the command protocol stays in sync on the
    evaluation *after* an idle round.
    """

    def _pool(self, mna, n_workers, **kwargs):
        return ShardedKernelPool(
            mna.engine,
            n_unknowns=mna.n_unknowns,
            nnz_dynamic=mna.dynamic_pattern.nnz,
            nnz_static=mna.static_pattern.nnz,
            n_workers=n_workers,
            **kwargs,
        )

    def test_fewer_points_than_workers_bitwise(self, rng):
        mna = _all_device_circuit().compile()
        pool = self._pool(mna, 4)
        try:
            for n_points in (1, 2, 3):
                states = _random_states(mna, n_points, rng)
                expected = mna.engine.evaluate(states)
                got = pool.evaluate(states)
                for reference, result in zip(expected, got):
                    np.testing.assert_array_equal(result, reference)
            # The round after an idle round must still be in protocol sync.
            states = _random_states(mna, ODD_POINTS, rng)
            expected = mna.engine.evaluate(states)
            got = pool.evaluate(states)
            for reference, result in zip(expected, got):
                np.testing.assert_array_equal(result, reference)
        finally:
            pool.close()

    def test_zero_points_round_trips(self, rng):
        mna = _all_device_circuit().compile()
        pool = self._pool(mna, 2)
        try:
            empty = np.empty((0, mna.n_unknowns))
            q, f, c_data, g_data = pool.evaluate(empty)
            assert q.shape == f.shape == (0, mna.n_unknowns)
            assert c_data.shape == (0, mna.dynamic_pattern.nnz)
            assert g_data.shape == (0, mna.static_pattern.nnz)
            # A real evaluation afterwards still matches serial exactly.
            states = _random_states(mna, 7, rng)
            expected = mna.engine.evaluate(states)
            for reference, result in zip(expected, pool.evaluate(states)):
                np.testing.assert_array_equal(result, reference)
        finally:
            pool.close()

    def test_idle_worker_is_not_charged_to_the_watchdog(self, rng):
        """A worker that *would* hang never stalls a round it has no work in.

        Worker index 3 is armed to sleep far past the watchdog budget on
        its first evaluation; with only 2 points, shards (0,1) (1,2) (2,2)
        (2,2) leave workers 2 and 3 idle, so the evaluation must succeed
        well inside the budget — proving idle workers are neither sent a
        command, nor awaited, nor charged against ``reply_timeout_s``.
        """
        from repro.resilience import FaultSpec, inject_faults
        import time as time_module

        hang = FaultSpec(
            site="worker.eval",
            action=lambda ctx: time_module.sleep(60.0),
            predicate=lambda ctx: ctx.get("worker") == 3,
        )
        mna = _all_device_circuit().compile()
        with inject_faults(hang):  # armed pre-fork so the children inherit it
            pool = self._pool(mna, 4, reply_timeout_s=5.0)
        try:
            states = _random_states(mna, 2, rng)
            expected = mna.engine.evaluate(states)
            start = time_module.monotonic()
            got = pool.evaluate(states)
            assert time_module.monotonic() - start < 5.0
            for reference, result in zip(expected, got):
                np.testing.assert_array_equal(result, reference)
        finally:
            pool.close()


def _spectral_problem_data(scaled_switching_mixer):
    """A spectral MPDE problem plus per-point Jacobian data at a random iterate."""
    from repro.core.mpde import MPDEProblem

    mna = scaled_switching_mixer.compile()
    options = MPDEOptions(
        n_fast=12, n_slow=8, fast_method="fourier", slow_method="fourier"
    )
    problem = MPDEProblem(mna, scaled_switching_mixer.scales, options)
    rng = np.random.default_rng(11)
    x = rng.normal(scale=0.2, size=problem.n_total_unknowns)
    evaluation = mna.evaluate_sparse(problem.reshape_states(x))
    return problem, evaluation


class TestEagerHarmonicFactorisation:
    def _build(self, problem, evaluation, **kwargs):
        return problem.build_preconditioner(
            "block_circulant_fast",
            c_data=evaluation.c_data,
            g_data=evaluation.g_data,
            **kwargs,
        )

    def test_eager_counts_and_applies_match_lazy(self, scaled_switching_mixer, rng):
        problem, evaluation = _spectral_problem_data(scaled_switching_mixer)
        lazy = self._build(problem, evaluation)
        pool = WorkerPool(2)
        try:
            eager = self._build(problem, evaluation, eager=True, factor_pool=pool)
            distinct = problem.grid.n_slow // 2 + 1
            # Eager factors everything up front; lazy only on first apply.
            assert lazy.harmonic_factorizations == 0
            assert eager.harmonic_factorizations == distinct
            vector = rng.normal(size=problem.n_total_unknowns)
            np.testing.assert_array_equal(eager.solve(vector), lazy.solve(vector))
            # One apply touches every distinct harmonic: counts now agree.
            assert lazy.harmonic_factorizations == distinct
            assert eager.harmonic_factorizations == distinct
            # And stay there — factorisations are never repeated.
            vector2 = rng.normal(size=problem.n_total_unknowns)
            np.testing.assert_array_equal(eager.solve(vector2), lazy.solve(vector2))
            assert eager.harmonic_factorizations == distinct
        finally:
            pool.close()

    def test_eager_without_pool_is_identical(self, scaled_switching_mixer, rng):
        problem, evaluation = _spectral_problem_data(scaled_switching_mixer)
        lazy = self._build(problem, evaluation)
        eager = self._build(problem, evaluation, eager=True)
        vector = rng.normal(size=problem.n_total_unknowns)
        np.testing.assert_array_equal(eager.solve(vector), lazy.solve(vector))
        assert eager.harmonic_factorizations == lazy.harmonic_factorizations

    def test_parallel_solve_matches_serial_solve(self, scaled_switching_mixer):
        mna = scaled_switching_mixer.compile()
        base = MPDEOptions(
            n_fast=16,
            n_slow=8,
            matrix_free=True,
            preconditioner="block_circulant_fast",
        )
        serial = solve_mpde(mna, scaled_switching_mixer.scales, base)
        from dataclasses import replace

        parallel = solve_mpde(
            mna,
            scaled_switching_mixer.scales,
            replace(base, parallel=True, n_workers=2),
        )
        np.testing.assert_array_equal(parallel.states, serial.states)
        assert (
            parallel.stats.preconditioner_harmonic_builds
            == serial.stats.preconditioner_harmonic_builds
        )
        assert parallel.stats.parallel_fallback_reason == ""

    def test_direct_eager_preconditioner_class(self, scaled_switching_mixer, rng):
        """Eager construction through the class constructor itself."""
        problem, evaluation = _spectral_problem_data(scaled_switching_mixer)
        from repro.linalg.preconditioners import slow_averaged_data

        n_fast, n_slow = problem.grid.n_fast, problem.grid.n_slow
        args = (
            slow_averaged_data(evaluation.c_data, n_fast, n_slow),
            slow_averaged_data(evaluation.g_data, n_fast, n_slow),
            problem.mna.dynamic_pattern,
            problem.mna.static_pattern,
            problem.grid.axis_matrix("fast", problem.options.fast_method),
            problem.axis_eigenvalues()[1],
        )
        lazy = BlockCirculantFastPreconditioner(*args)
        eager = BlockCirculantFastPreconditioner(*args, eager=True)
        vector = rng.normal(size=problem.n_total_unknowns)
        np.testing.assert_array_equal(eager.solve(vector), lazy.solve(vector))


class TestMPDEStatsTimingBreakdown:
    """Every solver mode populates the wall-time breakdown sensibly."""

    @pytest.fixture(scope="class")
    def mixer(self, request):
        from repro.rf import unbalanced_switching_mixer

        mixer = unbalanced_switching_mixer(
            lo_frequency=2e6, difference_frequency=50e3
        )
        return mixer, mixer.compile()

    def _stats(self, mixer, **kwargs):
        mixer_obj, mna = mixer
        options = MPDEOptions(n_fast=16, n_slow=8, **kwargs)
        return solve_mpde(mna, mixer_obj.scales, options).stats

    def _assert_bounded(self, stats):
        total = (
            stats.eval_time_s
            + stats.factorization_time_s
            + stats.preconditioner_build_time_s
            + stats.gmres_time_s
        )
        assert 0.0 < total <= stats.wall_time_seconds

    def test_direct_chord_mode(self, mixer):
        stats = self._stats(mixer)
        assert stats.eval_time_s > 0.0
        assert stats.factorization_time_s > 0.0
        assert stats.preconditioner_build_time_s == 0.0
        assert stats.gmres_time_s == 0.0
        self._assert_bounded(stats)

    def test_direct_full_newton_mode(self, mixer):
        stats = self._stats(mixer, chord_newton=False)
        assert stats.eval_time_s > 0.0 and stats.factorization_time_s > 0.0
        self._assert_bounded(stats)

    def test_assembled_gmres_mode(self, mixer):
        stats = self._stats(mixer, linear_solver="gmres")
        assert stats.eval_time_s > 0.0
        assert stats.factorization_time_s == 0.0
        assert stats.preconditioner_build_time_s > 0.0
        assert stats.gmres_time_s > 0.0
        self._assert_bounded(stats)

    @pytest.mark.parametrize(
        "preconditioner", ["ilu", "block_circulant", "block_circulant_fast"]
    )
    def test_matrix_free_modes(self, mixer, preconditioner):
        stats = self._stats(mixer, matrix_free=True, preconditioner=preconditioner)
        assert stats.eval_time_s > 0.0
        assert stats.preconditioner_build_time_s > 0.0
        assert stats.gmres_time_s > 0.0
        assert stats.factorization_time_s == 0.0
        self._assert_bounded(stats)

    def test_parallel_mode_populates_breakdown(self, mixer):
        stats = self._stats(
            mixer,
            matrix_free=True,
            preconditioner="block_circulant_fast",
            parallel=True,
            n_workers=2,
        )
        assert stats.eval_time_s > 0.0 and stats.gmres_time_s > 0.0
        self._assert_bounded(stats)
        assert stats.parallel_fallback_reason == ""


class TestCollocationParallel:
    def test_pss_parallel_matches_serial(self, diode_rectifier):
        from repro.analysis.pss_fd import collocation_periodic_steady_state

        mna = diode_rectifier.compile()
        kwargs = dict(
            matrix_free=True, preconditioner="block_circulant_fast"
        )
        serial = collocation_periodic_steady_state(mna, 1e-3, 41, **kwargs)
        parallel = collocation_periodic_steady_state(
            mna, 1e-3, 41, parallel=True, n_workers=2, **kwargs
        )
        np.testing.assert_array_equal(parallel.states, serial.states)
        assert parallel.parallel_fallback_reason == ""

    def test_pss_auto_fallback_records_reason_on_single_cpu(self, diode_rectifier):
        from repro.analysis.pss_fd import collocation_periodic_steady_state

        caps = detect_capabilities()
        mna = diode_rectifier.compile()
        result = collocation_periodic_steady_state(
            mna,
            1e-3,
            41,
            matrix_free=True,
            preconditioner="block_circulant_fast",
            parallel=True,
        )
        if caps.serial_only_reason is not None:
            assert result.parallel_fallback_reason == caps.serial_only_reason
        else:
            assert result.parallel_fallback_reason == ""


class TestWorkerPool:
    def test_map_preserves_order_and_results(self):
        pool = WorkerPool(3)
        try:
            items = list(range(23))
            assert pool.map(lambda v: v * v, items) == [v * v for v in items]
        finally:
            pool.close()

    def test_map_propagates_exceptions(self):
        pool = WorkerPool(2)
        try:
            def boom(v):
                raise ValueError(f"bad {v}")

            with pytest.raises(ValueError, match="bad"):
                pool.map(boom, [1, 2, 3])
        finally:
            pool.close()

    def test_map_failure_names_the_item_index(self):
        """Regression: failures used to carry no record of *which* item."""
        pool = WorkerPool(2)
        try:
            def boom_on_5(k):
                if k == 5:
                    raise ValueError("harmonic factorisation failed")
                return k

            with pytest.raises(ValueError) as excinfo:
                pool.map(boom_on_5, list(range(8)))
            assert excinfo.value.failed_item_index == 5
            notes = getattr(excinfo.value, "__notes__", [])
            assert any("item index 5" in note for note in notes)
        finally:
            pool.close()

    def test_map_two_failures_deterministic_and_logged(self, caplog):
        """Two shards fail: lowest item index wins, the other is logged.

        Regression: ``map`` re-raised ``errors[0]`` in thread-completion
        order (nondeterministic) and silently discarded the rest.  A
        barrier forces both failing shards to race, so pre-fix the raised
        index depended on scheduling and the second error vanished.
        """
        import threading

        barrier = threading.Barrier(2)

        def boom(k):
            if k in (2, 5):
                barrier.wait(timeout=10.0)  # both failures in flight at once
                raise ValueError(f"boom {k}")
            return k

        pool = WorkerPool(4)  # shards of 8 items: (0,2) (2,4) (4,6) (6,8)
        try:
            with caplog.at_level("WARNING", logger="repro.parallel.pool"):
                with pytest.raises(ValueError, match="boom 2") as excinfo:
                    pool.map(boom, list(range(8)))
            assert excinfo.value.failed_item_index == 2
            suppressed = [
                record for record in caplog.records if "suppressing" in record.message
            ]
            assert len(suppressed) == 1
            assert "item index 5" in suppressed[0].getMessage()
            assert "boom 5" in suppressed[0].getMessage()
        finally:
            pool.close()

    def test_map_serial_path_names_the_item_index(self):
        pool = WorkerPool(1)
        try:
            def boom(k):
                if k == 3:
                    raise RuntimeError("nope")
                return k

            with pytest.raises(RuntimeError) as excinfo:
                pool.map(boom, list(range(6)))
            assert excinfo.value.failed_item_index == 3
        finally:
            pool.close()

    def test_close_is_idempotent(self):
        pool = WorkerPool(2)
        pool.close()
        pool.close()
