"""Checkpoint-backed job retries: resumed solves are bitwise-identical.

Satellite contract of the simulation service: a job that dies mid-solve
with a checkpoint attached is retried *from the checkpoint* — and the
resumed trajectory is bit-for-bit the trajectory of an uninterrupted run,
including the case where the retry lands on a worker-pool generation that
was crash-healed underneath the first attempt.

Every comparison here is ``assert_array_equal`` (bitwise), so the module
opts out of the ambient CI fault profiles; faults are injected explicitly
per test.
"""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest

from repro.parallel import detect_capabilities
from repro.resilience import inject_faults, singular_jacobian, worker_crash
from repro.scenarios import build_scenario_smoke, run_scenario, solve_case
from repro.service import JobRetryPolicy, ServiceOptions, SimulationService, SweepRequest
from repro.utils import EvaluationOptions, MPDEOptions, RecoveryPolicy, RestartPolicy

from test_service import (
    RC_SCENARIO,
    register_service_scenarios,
    unregister_service_scenarios,
)

pytestmark = pytest.mark.no_fault_injection

_fork_only = pytest.mark.skipif(
    not detect_capabilities().fork_available,
    reason="needs the fork start method for shard worker pools",
)

#: Recovery disabled + no continuation: injected solver faults must escalate
#: to the *job* retry layer instead of being absorbed by the in-solve ladder.
_SOLVE_OPTIONS = MPDEOptions(recovery=RecoveryPolicy(enabled=False), use_continuation=False)

_RETRY = JobRetryPolicy(max_retries=3, backoff_base_s=0.001, backoff_cap_s=0.01)

#: Several Newton iterations, so a fault at iteration 2 finds a checkpoint.
_NL = 3e-3


@pytest.fixture(scope="module", autouse=True)
def _scenarios():
    register_service_scenarios()
    yield
    unregister_service_scenarios()


def _submit_and_wait(request):
    with SimulationService(
        ServiceOptions(n_workers=1, memoize_results=False, retry=_RETRY)
    ) as svc:
        job = svc.submit(request)
        run = job.result(timeout=300.0)
        snapshot = svc.telemetry()
    return job, run, snapshot


def _serial_reference(compile_options=None):
    """The uninterrupted run: same scenario, options and compiled backend."""
    systems = []

    def solve(case):
        mna = case.circuit.compile(options=compile_options)
        systems.append(mna)
        return solve_case(case, mna=mna, options=_SOLVE_OPTIONS)

    try:
        return run_scenario(
            build_scenario_smoke(RC_SCENARIO, nl=_NL), first_case_only=True, solve=solve
        )
    finally:
        for mna in systems:
            mna.close()


class TestCheckpointRetry:
    def test_mid_solve_death_resumes_bitwise(self):
        request = SweepRequest(
            scenario=RC_SCENARIO,
            overrides={"nl": _NL},
            solve_options=_SOLVE_OPTIONS,
            retry=_RETRY,
        )
        with inject_faults(singular_jacobian(at_iteration=2, count=1)) as plan:
            job, run, _ = _submit_and_wait(request)
        assert plan.specs[0].observed_fired() == 1
        assert job.status == "succeeded"
        assert [a.outcome for a in job.attempts] == ["retried", "succeeded"]
        assert job.attempts[0].kind == "singular"
        assert job.attempts[1].resumed_from_checkpoint

        reference = _serial_reference()
        np.testing.assert_array_equal(
            run.case_runs[0].result.states, reference.case_runs[0].result.states
        )
        assert run.case_metrics == reference.case_metrics

    def test_death_at_the_first_iteration_still_matches(self):
        # A fault before any Newton progress: whether the retry resumes a
        # checkpoint of the initial iterate or reruns from scratch, the
        # final trajectory must still be bitwise that of an undisturbed run.
        request = SweepRequest(
            scenario=RC_SCENARIO,
            overrides={"nl": _NL},
            solve_options=_SOLVE_OPTIONS,
            retry=_RETRY,
        )
        with inject_faults(singular_jacobian(at_iteration=0, count=1)):
            job, run, _ = _submit_and_wait(request)
        assert job.status == "succeeded"
        assert job.retries == 1
        reference = _serial_reference()
        np.testing.assert_array_equal(
            run.case_runs[0].result.states, reference.case_runs[0].result.states
        )

    @_fork_only
    def test_retry_on_healed_pool_generation_is_bitwise(self):
        # First attempt: a shard worker is killed (the supervisor heals the
        # pool), then the Jacobian goes singular at iteration 2.  The retry
        # resumes from the checkpoint on the *healed* pool generation and
        # must land exactly where an undisturbed run lands.
        compile_options = EvaluationOptions(
            kernel_backend="sharded",
            n_workers=2,
            worker_timeout_s=30.0,
            restart=RestartPolicy(max_restarts=10, backoff_base_s=0.001, backoff_cap_s=0.01),
        )
        request = SweepRequest(
            scenario=RC_SCENARIO,
            overrides={"nl": _NL},
            solve_options=_SOLVE_OPTIONS,
            compile_options=compile_options,
            retry=_RETRY,
        )
        children_before = multiprocessing.active_children()
        with inject_faults(
            worker_crash(count=1, role="shard"),
            singular_jacobian(at_iteration=2, count=1),
        ) as plan:
            job, run, snapshot = _submit_and_wait(request)
        assert all(spec.observed_fired() >= 1 for spec in plan.specs)
        assert job.status == "succeeded"
        assert job.retries == 1
        assert job.attempts[1].resumed_from_checkpoint
        assert snapshot.heals >= 1  # the pool recovery is visible in telemetry

        reference = _serial_reference(compile_options)
        np.testing.assert_array_equal(
            run.case_runs[0].result.states, reference.case_runs[0].result.states
        )
        # No stray shard workers: the service shutdown closed the cached
        # system and its pools.
        leaked = [
            p for p in multiprocessing.active_children() if p not in children_before
        ]
        for proc in leaked:
            proc.join(timeout=10.0)
        assert not [p for p in leaked if p.is_alive()]
