"""Tests for the ideal-mixing example of Section 2 (Figures 1 and 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rf import (
    difference_tone_amplitude,
    ideal_product_waveform,
    scaled_bivariate_product,
    zhat_sheared,
    zhat_unsheared,
)
from repro.signals import TonePair
from repro.signals.spectrum import fourier_coefficient
from repro.utils import ConfigurationError


@pytest.fixture
def paper_pair():
    return TonePair.paper_ideal_mixing()  # 1 GHz and 1 GHz - 10 kHz


class TestScaledProduct:
    def test_unit_periodicity(self):
        u = np.linspace(0, 1, 13)
        np.testing.assert_allclose(
            scaled_bivariate_product(u, 0.3), scaled_bivariate_product(u + 1.0, 0.3), atol=1e-12
        )
        np.testing.assert_allclose(
            scaled_bivariate_product(0.2, u), scaled_bivariate_product(0.2, u - 2.0), atol=1e-12
        )

    def test_values(self):
        assert scaled_bivariate_product(0.0, 0.0) == pytest.approx(1.0)
        assert scaled_bivariate_product(0.5, 0.0) == pytest.approx(-1.0)


class TestZhatSurfaces:
    def test_unsheared_axes_are_both_nanosecond_scale(self, paper_pair):
        surf = zhat_unsheared(paper_pair)
        assert surf.period1 == pytest.approx(1e-9)
        assert surf.period2 == pytest.approx(1.0 / (1e9 - 10e3))
        # Both axes look essentially identical (Fig. 1): no slow variation.
        assert surf.period2 / surf.period1 == pytest.approx(1.0, rel=1e-4)

    def test_sheared_slow_axis_is_difference_period(self, paper_pair):
        surf = zhat_sheared(paper_pair)
        assert surf.period1 == pytest.approx(1e-9)
        assert surf.period2 == pytest.approx(0.1e-3)  # 0.1 ms, the span of Fig. 2

    def test_sheared_surface_exposes_difference_tone(self, paper_pair):
        """The LO-cycle average of z_hat2 along t2 is the 10 kHz difference tone."""
        surf = zhat_sheared(paper_pair, n_fast=64, n_slow=64)
        envelope = surf.envelope_mean()
        fd = paper_pair.difference_frequency
        amplitude = 2 * abs(fourier_coefficient(envelope, fd))
        assert amplitude == pytest.approx(difference_tone_amplitude(paper_pair), rel=1e-3)

    def test_unsheared_surface_hides_difference_tone(self, paper_pair):
        """Averaging z_hat1 over its first axis leaves no baseband signal at all."""
        surf = zhat_unsheared(paper_pair, n_fast=64, n_slow=64)
        envelope = surf.envelope_mean()
        assert envelope.peak_to_peak() < 1e-9

    def test_both_representations_satisfy_the_diagonal_property(self, paper_pair):
        times = np.linspace(0.0, 3e-9, 200)
        exact = ideal_product_waveform(paper_pair, times)
        for surf in (zhat_unsheared(paper_pair, 256, 256), zhat_sheared(paper_pair, 256, 256)):
            diag = surf.diagonal(times)
            np.testing.assert_allclose(diag.values, exact.values, atol=2e-3)

    def test_amplitudes_scale_with_tone_amplitudes(self):
        pair = TonePair.from_frequencies(1e9, 1e9 - 10e3, lo_amplitude=2.0, rf_amplitude=3.0)
        surf = zhat_sheared(pair, 32, 32)
        assert np.max(np.abs(surf.values)) == pytest.approx(6.0, rel=1e-6)
        assert difference_tone_amplitude(pair) == pytest.approx(3.0)

    def test_lo_doubling_shear(self):
        """For the balanced-mixer tones the sheared product exposes the 15 kHz tone."""
        pair = TonePair.paper_balanced_mixer()
        surf = zhat_sheared(pair, n_fast=64, n_slow=64)
        envelope = surf.envelope_mean()
        amplitude = 2 * abs(fourier_coefficient(envelope, 15e3))
        assert amplitude == pytest.approx(0.5, rel=1e-3)

    def test_grid_size_validation(self, paper_pair):
        with pytest.raises(ConfigurationError):
            zhat_sheared(paper_pair, n_fast=1)
        with pytest.raises(ConfigurationError):
            zhat_unsheared(paper_pair, n_slow=1)


class TestIdealProductWaveform:
    def test_against_trigonometric_identity(self, paper_pair):
        """cos(a)cos(b) = [cos(a-b) + cos(a+b)] / 2."""
        times = np.linspace(0.0, 2e-9, 500)
        product = ideal_product_waveform(paper_pair, times)
        f1, f2 = paper_pair.f1, paper_pair.f2
        identity = 0.5 * (
            np.cos(2 * np.pi * (f1 - f2) * times) + np.cos(2 * np.pi * (f1 + f2) * times)
        )
        np.testing.assert_allclose(product.values, identity, atol=1e-12)
