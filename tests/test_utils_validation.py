"""Unit tests for validation helpers and the exception hierarchy."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.utils import (
    AnalysisError,
    CircuitError,
    ConfigurationError,
    ConvergenceError,
    DeviceError,
    MPDEError,
    NodeError,
    ReproError,
    ShearError,
    SingularMatrixError,
    WaveformError,
)
from repro.utils.validation import (
    as_float_array,
    check_finite,
    check_in,
    check_nonnegative,
    check_positive,
    check_same_length,
    check_vector,
)


class TestCheckers:
    def test_check_positive_accepts_positive(self):
        assert check_positive("x", 2.5) == 2.5

    @pytest.mark.parametrize("value", [0.0, -1.0, math.nan, math.inf])
    def test_check_positive_rejects(self, value):
        with pytest.raises(ConfigurationError):
            check_positive("x", value)

    def test_check_nonnegative_accepts_zero(self):
        assert check_nonnegative("x", 0.0) == 0.0

    @pytest.mark.parametrize("value", [-1e-12, math.nan])
    def test_check_nonnegative_rejects(self, value):
        with pytest.raises(ConfigurationError):
            check_nonnegative("x", value)

    def test_check_finite(self):
        assert check_finite("x", -3.0) == -3.0
        with pytest.raises(ConfigurationError):
            check_finite("x", math.inf)

    def test_check_in(self):
        assert check_in("mode", "a", ("a", "b")) == "a"
        with pytest.raises(ConfigurationError):
            check_in("mode", "c", ("a", "b"))


class TestArrayHelpers:
    def test_as_float_array_converts_lists(self):
        arr = as_float_array("x", [1, 2, 3])
        assert arr.dtype == float
        assert arr.shape == (3,)

    def test_as_float_array_scalar_becomes_1d(self):
        assert as_float_array("x", 5.0).shape == (1,)

    def test_as_float_array_rejects_2d(self):
        with pytest.raises(WaveformError):
            as_float_array("x", np.zeros((2, 2)))

    def test_as_float_array_rejects_nan(self):
        with pytest.raises(WaveformError):
            as_float_array("x", [1.0, math.nan])

    def test_as_float_array_rejects_strings(self):
        with pytest.raises(WaveformError):
            as_float_array("x", ["a", "b"])

    def test_check_vector_accepts_right_size(self):
        assert check_vector("x", np.zeros(4), 4).shape == (4,)

    def test_check_vector_rejects_wrong_size(self):
        with pytest.raises(WaveformError):
            check_vector("x", np.zeros(3), 4)

    def test_check_same_length(self):
        check_same_length("a", [1, 2], "b", [3, 4])
        with pytest.raises(WaveformError):
            check_same_length("a", [1], "b", [3, 4])


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ConfigurationError,
            CircuitError,
            NodeError,
            DeviceError,
            AnalysisError,
            ConvergenceError,
            SingularMatrixError,
            MPDEError,
            ShearError,
            WaveformError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_node_and_device_errors_are_circuit_errors(self):
        assert issubclass(NodeError, CircuitError)
        assert issubclass(DeviceError, CircuitError)

    def test_convergence_and_singular_are_analysis_errors(self):
        assert issubclass(ConvergenceError, AnalysisError)
        assert issubclass(SingularMatrixError, AnalysisError)

    def test_shear_error_is_mpde_error(self):
        assert issubclass(ShearError, MPDEError)

    def test_convergence_error_carries_diagnostics(self):
        err = ConvergenceError("failed", iterations=7, residual_norm=1e-3)
        assert err.iterations == 7
        assert err.residual_norm == 1e-3
