"""Unit tests for the option bundles."""

from __future__ import annotations

import pytest

from repro.utils import (
    ConfigurationError,
    ContinuationOptions,
    HarmonicBalanceOptions,
    MPDEOptions,
    NewtonOptions,
    ShootingOptions,
    TransientOptions,
    options_from_mapping,
)


class TestNewtonOptions:
    def test_defaults_are_valid(self):
        opts = NewtonOptions()
        assert opts.max_iterations > 0
        assert opts.abstol > 0
        assert opts.damping <= 1.0

    def test_with_returns_modified_copy(self):
        opts = NewtonOptions()
        modified = opts.with_(max_iterations=5)
        assert modified.max_iterations == 5
        assert opts.max_iterations != 5 or opts.max_iterations == 60

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_iterations": 0},
            {"abstol": -1.0},
            {"abstol": 0.0},
            {"reltol": 0.0},
            {"damping": 0.0},
            {"damping": 1.5},
            {"min_damping": 2.0},
        ],
    )
    def test_invalid_values_raise(self, kwargs):
        with pytest.raises(ConfigurationError):
            NewtonOptions(**kwargs)

    def test_min_damping_must_not_exceed_damping(self):
        with pytest.raises(ConfigurationError):
            NewtonOptions(damping=0.5, min_damping=0.6)

    def test_frozen(self):
        opts = NewtonOptions()
        with pytest.raises(Exception):
            opts.abstol = 1.0  # type: ignore[misc]


class TestContinuationOptions:
    def test_defaults_are_valid(self):
        opts = ContinuationOptions()
        assert 0.0 <= opts.lambda_start < 1.0
        assert opts.growth > 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"lambda_start": 1.0},
            {"lambda_start": -0.1},
            {"initial_step": 0.0},
            {"min_step": 1.0, "max_step": 0.1},
            {"growth": 1.0},
            {"shrink": 1.0},
            {"shrink": 0.0},
            {"max_steps": 0},
        ],
    )
    def test_invalid_values_raise(self, kwargs):
        with pytest.raises(ConfigurationError):
            ContinuationOptions(**kwargs)


class TestTransientOptions:
    def test_defaults(self):
        opts = TransientOptions()
        assert opts.method == "trapezoidal"
        assert not opts.adaptive

    @pytest.mark.parametrize("method", ["backward-euler", "trapezoidal", "gear2"])
    def test_valid_methods(self, method):
        assert TransientOptions(method=method).method == method

    def test_invalid_method_raises(self):
        with pytest.raises(ConfigurationError):
            TransientOptions(method="rk4")

    def test_min_step_must_not_exceed_max_step(self):
        with pytest.raises(ConfigurationError):
            TransientOptions(min_step=1.0, max_step=0.5)


class TestShootingOptions:
    def test_defaults(self):
        opts = ShootingOptions()
        assert opts.steps_per_period > 0
        assert opts.integration_method in ("backward-euler", "trapezoidal", "gear2")

    def test_invalid_integration_method(self):
        with pytest.raises(ConfigurationError):
            ShootingOptions(integration_method="leapfrog")

    def test_invalid_steps(self):
        with pytest.raises(ConfigurationError):
            ShootingOptions(steps_per_period=0)


class TestHarmonicBalanceOptions:
    def test_defaults(self):
        opts = HarmonicBalanceOptions()
        assert opts.harmonics >= 1
        assert opts.oversampling >= 2

    def test_oversampling_minimum(self):
        with pytest.raises(ConfigurationError):
            HarmonicBalanceOptions(oversampling=1)

    def test_invalid_truncation(self):
        with pytest.raises(ConfigurationError):
            HarmonicBalanceOptions(truncation="star")


class TestMPDEOptions:
    def test_paper_grid_is_default(self):
        opts = MPDEOptions()
        assert (opts.n_fast, opts.n_slow) == (40, 30)

    def test_with_grid(self):
        opts = MPDEOptions().with_grid(16, 12)
        assert (opts.n_fast, opts.n_slow) == (16, 12)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_fast": 2},
            {"n_slow": 1},
            {"fast_method": "rk4"},
            {"slow_method": "nope"},
            {"linear_solver": "cholesky"},
            {"initial_guess": "random"},
            {"gmres_tol": 0.0},
        ],
    )
    def test_invalid_values_raise(self, kwargs):
        with pytest.raises(ConfigurationError):
            MPDEOptions(**kwargs)

    @pytest.mark.parametrize("method", ["backward-euler", "bdf2", "central", "fourier"])
    def test_valid_differentiation_methods(self, method):
        opts = MPDEOptions(fast_method=method, slow_method=method)
        assert opts.fast_method == method


class TestOptionsFromMapping:
    def test_builds_from_mapping(self):
        opts = options_from_mapping(NewtonOptions, {"max_iterations": 10, "abstol": 1e-6})
        assert opts.max_iterations == 10
        assert opts.abstol == 1e-6

    def test_unknown_key_raises(self):
        with pytest.raises(ConfigurationError, match="unknown option"):
            options_from_mapping(NewtonOptions, {"max_iters": 10})
