"""Chaos soak of the simulation service (the PR's acceptance harness).

Nine concurrent sweep requests — direct, matrix-free GMRES and (where
``fork`` exists) sharded-pool solves — run under one seeded fault schedule
that kills shard workers, stalls GMRES, poisons residuals with NaN, makes
Jacobians singular mid-solve, and injects service-infrastructure faults
into cache builds and job dispatch.  The service must lose nothing:

* every accepted job succeeds (retries, checkpoint resumes and pool heals
  absorb all of it),
* every result is bitwise-identical to a serial, fault-free rerun,
* the one deliberately-overloaded submission is shed synchronously with a
  structured error — and succeeds when resubmitted,
* retries / sheds / heals are all visible in service telemetry,
* shutdown leaves zero zombie worker processes and zero leaked shared
  memory.

Bitwise comparisons need the schedule to be exactly the one armed here, so
the module opts out of the ambient CI fault profiles.
"""

from __future__ import annotations

import time
from dataclasses import replace

import numpy as np
import pytest

from repro.parallel import detect_capabilities
from repro.resilience import (
    cache_build_fault,
    dispatch_fault,
    gmres_stall,
    inject_faults,
    nan_evaluation,
    singular_jacobian,
    worker_crash,
)
from repro.scenarios import build_scenario, build_scenario_smoke, run_scenario, solve_case
from repro.service import JobRetryPolicy, ServiceOptions, SimulationService, SweepRequest
from repro.utils import EvaluationOptions, MPDEOptions, RecoveryPolicy, RestartPolicy
from repro.utils.exceptions import ServiceOverloadedError

from test_chaos_soak import _repro_children, _shm_entries, _wait_for_no_children
from test_service import (
    GATE,
    GATED_SCENARIO,
    RC_SCENARIO,
    register_service_scenarios,
    unregister_service_scenarios,
)

pytestmark = pytest.mark.no_fault_injection

_FORK = detect_capabilities().fork_available

#: Recovery ladder off: every injected solver fault must escalate to the
#: job retry layer (whose resumes are bitwise) instead of being absorbed
#: by an in-solve ladder rung (whose re-runs are only tolerance-equal).
_SOLVE = MPDEOptions(recovery=RecoveryPolicy(enabled=False), use_continuation=False)

_RETRY = JobRetryPolicy(max_retries=6, backoff_base_s=0.001, backoff_cap_s=0.01)

_SHARDED = EvaluationOptions(
    kernel_backend="sharded",
    n_workers=2,
    worker_timeout_s=30.0,
    restart=RestartPolicy(max_restarts=50, backoff_base_s=0.001, backoff_cap_s=0.01),
)

_NL = 3e-3


@pytest.fixture(scope="module", autouse=True)
def _scenarios():
    register_service_scenarios()
    yield
    unregister_service_scenarios()


def _requests():
    """Nine distinct requests: 4 gated (to occupy workers), 5 mixed."""
    gated = [
        SweepRequest(
            scenario=GATED_SCENARIO,
            overrides={"r": 1e3 + 100.0 * i, "nl": _NL},
            solve_options=_SOLVE,
            retry=_RETRY,
            label=f"gated-{i}",
        )
        for i in range(4)
    ]
    mixed = [
        SweepRequest(
            scenario=RC_SCENARIO,
            overrides={"r": 2e3, "nl": _NL},
            solve_options=_SOLVE,
            retry=_RETRY,
            label="direct",
        ),
        SweepRequest(
            scenario=RC_SCENARIO,
            overrides={"r": 2.1e3, "nl": _NL},
            solve_options=replace(_SOLVE, linear_solver="gmres", matrix_free=True),
            retry=_RETRY,
            label="matrix-free",
        ),
        SweepRequest(
            scenario=RC_SCENARIO,
            overrides={"r": 2.2e3, "nl": _NL},
            solve_options=_SOLVE,
            compile_options=_SHARDED if _FORK else None,
            retry=_RETRY,
            label="sharded-0",
        ),
        SweepRequest(
            scenario=RC_SCENARIO,
            overrides={"r": 2.3e3, "nl": _NL},
            solve_options=_SOLVE,
            compile_options=_SHARDED if _FORK else None,
            retry=_RETRY,
            label="sharded-1",
        ),
        SweepRequest(
            scenario=RC_SCENARIO,
            overrides={"r": 2.4e3, "nl": _NL},
            solve_options=_SOLVE,
            retry=_RETRY,
            label="overflow",
        ),
    ]
    return gated, mixed


def _schedule():
    specs = [
        singular_jacobian(at_iteration=2, count=2),
        nan_evaluation(count=1, min_points=4),
        gmres_stall(at_call=1, count=1, site="solver.gmres"),
        cache_build_fault(count=2),
        dispatch_fault(count=2),
    ]
    if _FORK:
        specs.append(worker_crash(count=2, role="shard"))
    return specs


def _serial_rerun(request):
    """The same request solved serially, no service, no faults armed."""
    builder = build_scenario_smoke if request.smoke else build_scenario
    scenario = builder(request.scenario, **dict(request.overrides))
    systems = []

    def solve(case):
        mna = case.circuit.compile(options=request.compile_options)
        systems.append(mna)
        return solve_case(case, mna=mna, options=request.solve_options)

    try:
        return run_scenario(scenario, first_case_only=True, solve=solve)
    finally:
        for mna in systems:
            mna.close()


def test_service_chaos_soak_loses_nothing():
    shm_before = _shm_entries()
    children_before = _repro_children()
    gated, mixed = _requests()
    options = ServiceOptions(
        n_workers=4,
        queue_capacity=4,
        cache_capacity=4,
        memoize_results=False,  # every request must really solve
        retry=_RETRY,
    )
    GATE.clear()
    jobs = []
    svc = SimulationService(options)
    try:
        with inject_faults(*_schedule()) as plan:
            # Phase 1: the gated jobs occupy all four workers...
            for request in gated:
                jobs.append(svc.submit(request))
            deadline = time.monotonic() + 30.0
            while svc.queue_depth() and time.monotonic() < deadline:
                time.sleep(0.005)
            assert svc.queue_depth() == 0, "workers never picked up the gated jobs"

            # ...phase 2: four more fill the queue to capacity...
            for request in mixed[:4]:
                jobs.append(svc.submit(request))

            # ...and the ninth is shed, synchronously and structurally.
            with pytest.raises(ServiceOverloadedError) as shed:
                svc.submit(mixed[4])
            assert shed.value.queue_depth == 4
            assert shed.value.capacity == 4

            # Release the gate; the shed request now resubmits successfully.
            GATE.set()
            resubmit_deadline = time.monotonic() + 60.0
            while True:
                try:
                    jobs.append(svc.submit(mixed[4]))
                    break
                except ServiceOverloadedError:
                    assert time.monotonic() < resubmit_deadline
                    time.sleep(0.01)

            runs = [job.result(timeout=300.0) for job in jobs]
            snapshot = svc.telemetry()
            svc.shutdown()

            # Every schedule entry really fired (the soak exercised what it
            # claims to) — except worker crashes, which need shard pools.
            for spec in plan.specs:
                if spec.site == "worker.eval" and not _FORK:
                    continue
                assert spec.observed_fired() >= 1, f"{spec.site} never fired"
    finally:
        GATE.set()
        svc.shutdown()

    # Zero lost jobs: everything accepted reached success.
    assert len(jobs) == 9
    assert [job.status for job in jobs] == ["succeeded"] * 9
    assert snapshot.submitted == 9
    assert snapshot.completed == 9
    assert snapshot.succeeded == 9

    # The turbulence is visible in telemetry, not silently absorbed.
    # (Every rejected submission counts, including resubmit-loop spins.)
    assert snapshot.shed >= 1
    assert snapshot.retries >= 1
    if _FORK:
        assert snapshot.heals >= 1
    assert snapshot.cache.misses >= 9  # nine distinct circuits compiled
    assert snapshot.cache.evictions >= 1  # capacity 4 < nine working keys
    assert snapshot.latency_p95_s >= snapshot.latency_p50_s > 0.0

    # Bitwise: every concurrent, fault-battered result equals its serial,
    # fault-free rerun.
    for job, run in zip(jobs, runs):
        reference = _serial_rerun(job.request)
        np.testing.assert_array_equal(
            run.case_runs[0].result.states,
            reference.case_runs[0].result.states,
            err_msg=f"job {job.id} ({job.request.label}) diverged from serial rerun",
        )
        assert run.case_metrics == reference.case_metrics

    # No zombie processes, no leaked shared memory.
    assert _wait_for_no_children(children_before) == []
    assert _shm_entries() - shm_before == set()
