"""Unit tests for linear passive device stamps."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.circuits.devices import Capacitor, Conductance, Inductor, Resistor, VoltageSource
from repro.signals import DCStimulus
from repro.utils import ConfigurationError, DeviceError


def _single_device_system(device):
    """Compile a tiny circuit: the device between node 'a' and ground, plus a driver."""
    ckt = Circuit("probe")
    ckt.add(VoltageSource("vdrive", "a", ckt.GROUND, DCStimulus(1.0)))
    ckt.add(device)
    return ckt.compile()


class TestResistor:
    def test_current_and_jacobian(self):
        mna = _single_device_system(Resistor("r1", "a", "0", 100.0))
        x = np.array([2.0, 0.0])  # v(a) = 2, branch current irrelevant here
        f = mna.f(x)
        assert f[0] == pytest.approx(2.0 / 100.0)
        g = mna.conductance_matrix(x)
        assert g[0, 0] == pytest.approx(1.0 / 100.0)

    def test_between_two_nodes(self):
        ckt = Circuit("two-node")
        ckt.add(VoltageSource("v1", "a", ckt.GROUND, DCStimulus(1.0)))
        ckt.add(VoltageSource("v2", "b", ckt.GROUND, DCStimulus(0.0)))
        ckt.add(Resistor("r1", "a", "b", 50.0))
        mna = ckt.compile()
        ia, ib = mna.node_index("a"), mna.node_index("b")
        x = np.zeros(mna.n_unknowns)
        x[ia], x[ib] = 3.0, 1.0
        f = mna.f(x)
        assert f[ia] == pytest.approx((3.0 - 1.0) / 50.0)
        assert f[ib] == pytest.approx(-(3.0 - 1.0) / 50.0)

    def test_conductance_property(self):
        assert Resistor("r", "a", "b", 4.0).conductance == pytest.approx(0.25)

    def test_invalid_resistance(self):
        with pytest.raises(ConfigurationError):
            Resistor("r", "a", "b", 0.0)
        with pytest.raises(ConfigurationError):
            Resistor("r", "a", "b", -10.0)

    def test_no_dynamics(self):
        r = Resistor("r", "a", "b", 1.0)
        assert not r.has_dynamics()
        assert not r.is_nonlinear()


class TestConductance:
    def test_current(self):
        mna = _single_device_system(Conductance("g1", "a", "0", 0.01))
        x = np.array([2.0, 0.0])
        assert mna.f(x)[0] == pytest.approx(0.02)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            Conductance("g", "a", "b", -1.0)


class TestCapacitor:
    def test_charge_and_capacitance(self):
        mna = _single_device_system(Capacitor("c1", "a", "0", 1e-6))
        x = np.array([3.0, 0.0])
        q = mna.q(x)
        assert q[0] == pytest.approx(3e-6)
        c = mna.capacitance_matrix(x)
        assert c[0, 0] == pytest.approx(1e-6)

    def test_no_static_contribution(self):
        mna = _single_device_system(Capacitor("c1", "a", "0", 1e-6))
        x = np.array([3.0, 0.0])
        assert mna.f(x)[0] == pytest.approx(0.0)

    def test_has_dynamics(self):
        assert Capacitor("c", "a", "b", 1e-9).has_dynamics()

    def test_invalid_capacitance(self):
        with pytest.raises(ConfigurationError):
            Capacitor("c", "a", "b", 0.0)


class TestInductor:
    def test_adds_branch_unknown(self):
        ind = Inductor("l1", "a", "0", 1e-3)
        assert ind.n_branch_unknowns() == 1
        assert ind.branch_labels() == ("i(l1)",)

    def test_stamps(self):
        mna = _single_device_system(Inductor("l1", "a", "0", 1e-3))
        k = mna.branch_index("l1")
        ia = mna.node_index("a")
        x = np.zeros(mna.n_unknowns)
        x[ia] = 2.0
        x[k] = 0.5
        f = mna.f(x)
        # Branch current leaves node a.
        assert f[ia] == pytest.approx(0.5)
        # Branch equation static part: v_neg - v_pos = -2.0
        assert f[k] == pytest.approx(-2.0)
        # Flux q = L * i on the branch row.
        q = mna.q(x)
        assert q[k] == pytest.approx(1e-3 * 0.5)
        c = mna.capacitance_matrix(x)
        assert c[k, k] == pytest.approx(1e-3)

    def test_invalid_inductance(self):
        with pytest.raises(ConfigurationError):
            Inductor("l", "a", "b", -1e-3)


class TestDeviceBinding:
    def test_unbound_device_raises_on_use(self):
        r = Resistor("r1", "a", "b", 1.0)
        with pytest.raises(DeviceError):
            r.branch_voltage(np.zeros((1, 2)))

    def test_empty_name_rejected(self):
        with pytest.raises(DeviceError):
            Resistor("", "a", "b", 1.0)

    def test_bind_validates_lengths(self):
        r = Resistor("r1", "a", "b", 1.0)
        with pytest.raises(DeviceError):
            r.bind([0], [])
        with pytest.raises(DeviceError):
            r.bind([0, 1], [5])
