"""End-to-end integration tests on the paper's balanced LO-doubling mixer (Section 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import solve_mpde
from repro.rf import balanced_lo_doubling_mixer, conversion_metrics, lo_feedthrough_ratio
from repro.signals.spectrum import compute_spectrum, fourier_coefficient
from repro.utils import MPDEOptions


@pytest.fixture(scope="module")
def bitstream_result():
    """Bit-stream-driven balanced mixer at the paper's frequencies (reduced grid)."""
    mix = balanced_lo_doubling_mixer()
    result = solve_mpde(mix.compile(), mix.scales, MPDEOptions(n_fast=32, n_slow=24))
    return mix, result


@pytest.fixture(scope="module")
def puretone_result():
    """Pure-tone RF drive (for gain / distortion), reduced grid."""
    mix = balanced_lo_doubling_mixer(use_bit_stream=False)
    result = solve_mpde(mix.compile(), mix.scales, MPDEOptions(n_fast=32, n_slow=24))
    return mix, result


class TestBitStreamDownconversion:
    def test_solver_converges_without_continuation_from_dc_guess(self, bitstream_result):
        _, result = bitstream_result
        assert result.stats.converged
        # The paper reports 26 Newton iterations for its hardest run; our
        # reduced-grid solve should be in the same ballpark or better.
        assert result.stats.newton_iterations <= 40

    def test_baseband_output_shows_bit_modulation(self, bitstream_result):
        """The difference-frequency axis carries the bit-stream shape (Figs. 3-4)."""
        mix, result = bitstream_result
        envelope = result.baseband_envelope("outp", node_neg="outn")
        # The modulated drive produces a baseband swing of at least tens of mV.
        assert envelope.peak_to_peak() > 0.05
        # The magnitude of the baseband signal differs strongly between the
        # high-amplitude and low-amplitude bit intervals.
        td = mix.difference_period
        magnitude = np.abs(envelope.values - envelope.mean())
        strong = magnitude[(envelope.times % td) < td / 4].max()
        weak = magnitude[((envelope.times % td) >= td / 4) & ((envelope.times % td) < td / 2)].max()
        assert strong > 2.0 * weak

    def test_output_sits_within_supply_rails(self, bitstream_result):
        _, result = bitstream_result
        outp = result.bivariate("outp")
        outn = result.bivariate("outn")
        for surface in (outp, outn):
            assert surface.values.min() > 0.0
            assert surface.values.max() < 3.0

    def test_doubler_node_carries_double_lo_frequency(self, bitstream_result):
        """The tail (doubler) node waveform is dominated by the 2*LO component (Fig. 5)."""
        mix, result = bitstream_result
        tail = result.bivariate("tail")
        fast_slice = tail.slice_fast(0.0)
        spectrum = compute_spectrum(fast_slice, detrend=True)
        f_lo = mix.lo_frequency
        amp_lo = spectrum.amplitude_at(f_lo, tolerance=f_lo / 8)
        amp_2lo = spectrum.amplitude_at(2 * f_lo, tolerance=f_lo / 8)
        assert amp_2lo > amp_lo

    def test_doubler_node_waveform_is_sharp(self, bitstream_result):
        """The doubler produces non-sinusoidal, harmonic-rich waveforms."""
        _, result = bitstream_result
        tail = result.bivariate("tail")
        fast_slice = tail.slice_fast(0.0)
        spectrum = compute_spectrum(fast_slice, detrend=True)
        fundamental = spectrum.dominant_frequency()
        # Power above the dominant harmonic indicates sharp corners.
        higher = spectrum.amplitudes[spectrum.frequencies > 1.5 * fundamental]
        assert np.max(higher) > 0.05 * np.max(spectrum.amplitudes)

    def test_differential_output_is_balanced(self, bitstream_result):
        """Common-mode level is steady while the differential carries the signal."""
        _, result = bitstream_result
        outp = result.baseband_envelope("outp")
        outn = result.baseband_envelope("outn")
        common = 0.5 * (outp + outn)
        differential = outp - outn
        assert differential.peak_to_peak() > 0.3 * common.peak_to_peak()


class TestPureToneMetrics:
    def test_conversion_gain_and_distortion(self, puretone_result):
        """Down-conversion gain and distortion figures from pure-tone drive (Section 3)."""
        mix, result = puretone_result
        metrics = conversion_metrics(result, "outp", "outn", mix.rf_amplitude)
        # A balanced active mixer with resistive loads: gain of order unity.
        assert 0.1 < metrics.gain < 50.0
        assert np.isfinite(metrics.gain_db)
        # The baseband tone should dominate its own harmonics.
        assert metrics.distortion < 1.0

    def test_baseband_tone_is_at_difference_frequency(self, puretone_result):
        mix, result = puretone_result
        envelope = result.baseband_envelope("outp", node_neg="outn")
        spectrum = compute_spectrum(envelope, detrend=True)
        assert spectrum.dominant_frequency() == pytest.approx(
            mix.difference_frequency, rel=0.01
        )

    def test_gain_scales_linearly_with_rf_amplitude(self):
        """In the small-signal regime the conversion gain is amplitude-independent."""
        gains = []
        for amplitude in (0.05, 0.1):
            mix = balanced_lo_doubling_mixer(rf_amplitude=amplitude, use_bit_stream=False)
            result = solve_mpde(mix.compile(), mix.scales, MPDEOptions(n_fast=24, n_slow=20))
            metrics = conversion_metrics(result, "outp", "outn", amplitude)
            gains.append(metrics.gain)
        assert gains[0] == pytest.approx(gains[1], rel=0.2)

    def test_lo_feedthrough_is_finite(self, puretone_result):
        _, result = puretone_result
        ratio = lo_feedthrough_ratio(result, "outp", "outn")
        assert np.isfinite(ratio)
        assert ratio >= 0.0
