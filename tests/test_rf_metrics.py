"""Tests for the RF metric helpers (on synthetic waveforms with known answers)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rf.metrics import (
    adjacent_channel_power_ratio,
    baseband_distortion,
    conversion_gain,
    eye_opening,
)
from repro.signals import Waveform
from repro.utils import AnalysisError, ConfigurationError


def _baseband(fd=15e3, amplitude=0.2, offset=1.0, harmonics=(), n=4000):
    td = 1 / fd
    t = np.linspace(0, td, n)
    v = offset + amplitude * np.cos(2 * np.pi * fd * t)
    for k, a in harmonics:
        v = v + a * np.cos(2 * np.pi * k * fd * t)
    return Waveform(t, v)


class TestConversionGain:
    def test_known_gain(self):
        env = _baseband(amplitude=0.25)
        assert conversion_gain(env, 15e3, rf_amplitude=0.1) == pytest.approx(2.5, rel=1e-3)

    def test_validation(self):
        env = _baseband()
        with pytest.raises(ConfigurationError):
            conversion_gain(env, -1.0, 0.1)
        with pytest.raises(ConfigurationError):
            conversion_gain(env, 15e3, 0.0)


class TestBasebandDistortion:
    def test_pure_tone_has_low_distortion(self):
        assert baseband_distortion(_baseband(), 15e3) < 1e-3

    def test_known_second_harmonic(self):
        env = _baseband(amplitude=0.2, harmonics=[(2, 0.02)])
        assert baseband_distortion(env, 15e3) == pytest.approx(0.1, rel=2e-2)


class TestEyeOpening:
    def _bit_envelope(self, levels, bit_period=1e-3, samples_per_bit=200, noise=0.0, rng=None):
        values = []
        for level in levels:
            values.extend([level] * samples_per_bit)
        values = np.asarray(values, dtype=float)
        if noise and rng is not None:
            values = values + rng.normal(scale=noise, size=values.size)
        t = np.linspace(0, bit_period * len(levels), values.size)
        return Waveform(t, values)

    def test_clean_bits_have_open_eye(self):
        env = self._bit_envelope([1.0, 0.0, 1.0, 1.0, 0.0])
        assert eye_opening(env, 1e-3) == pytest.approx(1.0, abs=1e-6)

    def test_noisy_bits_reduce_opening(self, rng):
        clean = self._bit_envelope([1.0, 0.0, 1.0, 0.0] * 4)
        noisy = self._bit_envelope([1.0, 0.0, 1.0, 0.0] * 4, noise=0.2, rng=rng)
        assert eye_opening(noisy, 1e-3) < eye_opening(clean, 1e-3)

    def test_constant_envelope_has_no_eye(self):
        env = self._bit_envelope([1.0, 1.0, 1.0, 1.0])
        assert eye_opening(env, 1e-3) == 0.0

    def test_needs_at_least_two_bits(self):
        env = self._bit_envelope([1.0])
        with pytest.raises(AnalysisError):
            eye_opening(env, 1e-3)


class TestACPR:
    def test_single_channel_signal_has_low_adjacent_power(self):
        env = _baseband(fd=10e3, amplitude=0.3, offset=0.0)
        ratio = adjacent_channel_power_ratio(
            env, channel_frequency=10e3, channel_bandwidth=4e3, adjacent_offset=30e3
        )
        assert ratio < 1e-4

    def test_interferer_raises_adjacent_power(self):
        env = _baseband(fd=10e3, amplitude=0.3, offset=0.0, harmonics=[(4, 0.3)])
        ratio = adjacent_channel_power_ratio(
            env, channel_frequency=10e3, channel_bandwidth=4e3, adjacent_offset=30e3
        )
        assert ratio == pytest.approx(1.0, rel=0.2)

    def test_empty_wanted_channel_raises(self):
        env = _baseband(fd=10e3, amplitude=0.0, offset=0.0)
        with pytest.raises(AnalysisError):
            adjacent_channel_power_ratio(
                env, channel_frequency=10e3, channel_bandwidth=4e3, adjacent_offset=30e3
            )
