"""Idempotent teardown, end-to-end (a simulation-service satellite).

Every layer that owns operating-system resources — shared-memory blocks,
forked worker pools, compiled systems, the solver's factor service, the
service's compiled-circuit cache and thread pool — must treat a second
``close()`` / ``shutdown()`` as a no-op.  Teardown paths run from error
handlers and ``finally`` blocks, where double invocation is routine; a
teardown that only works once turns every error path into a new error.
"""

from __future__ import annotations

import pytest

from repro.core.mpde import MPDEProblem
from repro.core.solver import MPDESolver
from repro.parallel import detect_capabilities
from repro.parallel.factor_service import ResidentFactorPool
from repro.parallel.sharding import SharedArray
from repro.service import CompiledCircuitCache, ServiceOptions, SimulationService
from repro.utils import EvaluationOptions, MPDEOptions

from test_chaos_soak import _repro_children, _shm_entries, _wait_for_no_children
from test_resilience import _linear_rc
from test_service import (
    RC_SCENARIO,
    register_service_scenarios,
    unregister_service_scenarios,
)

pytestmark = pytest.mark.no_fault_injection

_fork_only = pytest.mark.skipif(
    not detect_capabilities().fork_available,
    reason="worker pools require the 'fork' start method",
)


@pytest.fixture(scope="module", autouse=True)
def _scenarios():
    register_service_scenarios()
    yield
    unregister_service_scenarios()


class TestSubstrateTeardown:
    def test_shared_array_double_close(self):
        shm_before = _shm_entries()
        block = SharedArray((4, 4))
        block.close()
        block.close()
        assert _shm_entries() - shm_before == set()

    def test_serial_mna_double_close(self):
        mna, _scales = _linear_rc()
        mna.close()
        mna.close()

    @_fork_only
    def test_sharded_mna_double_close_reaps_workers(self):
        children_before = _repro_children()
        shm_before = _shm_entries()
        serial, _scales = _linear_rc()
        mna = serial.circuit.compile(
            EvaluationOptions(kernel_backend="sharded", n_workers=2)
        )
        # Force the lazy pool into existence before tearing it down.
        import numpy as np

        mna.evaluate(np.zeros((8, mna.n_unknowns)))
        mna.close()
        mna.close()
        assert _wait_for_no_children(children_before) == []
        assert _shm_entries() - shm_before == set()

    def test_mpde_solver_double_close(self):
        mna, scales = _linear_rc()
        options = MPDEOptions(n_fast=8, n_slow=8)
        solver = MPDESolver(MPDEProblem(mna, scales, options), options)
        solver.close()
        solver.close()
        mna.close()

    @_fork_only
    def test_resident_factor_pool_double_close(self):
        pool = ResidentFactorPool(1)
        pool.close()
        pool.close()  # and again, after it is already torn down


class TestServiceTeardown:
    def test_cache_double_close_with_real_systems(self):
        serial, _scales = _linear_rc()
        cache = CompiledCircuitCache(capacity=2)
        with cache.lease("rc", lambda: serial.circuit.compile()):
            pass
        cache.close()
        cache.close()

    def test_service_double_shutdown_after_work(self):
        svc = SimulationService(ServiceOptions(n_workers=2))
        svc.submit(RC_SCENARIO).result(timeout=120.0)
        svc.shutdown()
        svc.shutdown()
        svc.shutdown(drain=False)

    def test_context_exit_after_explicit_shutdown(self):
        with SimulationService(ServiceOptions(n_workers=1)) as svc:
            svc.submit(RC_SCENARIO).wait(timeout=120.0)
            svc.shutdown()
        # __exit__ called shutdown again — reaching here is the assertion.

    @_fork_only
    def test_service_double_shutdown_releases_sharded_resources(self):
        from repro.service import SweepRequest

        children_before = _repro_children()
        shm_before = _shm_entries()
        svc = SimulationService(ServiceOptions(n_workers=1, memoize_results=False))
        svc.submit(
            SweepRequest(
                scenario=RC_SCENARIO,
                compile_options=EvaluationOptions(
                    kernel_backend="sharded", n_workers=2
                ),
            )
        ).result(timeout=300.0)
        svc.shutdown()
        svc.shutdown()
        assert _wait_for_no_children(children_before) == []
        assert _shm_entries() - shm_before == set()
