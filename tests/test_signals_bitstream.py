"""Unit tests for PRBS generation, pulse shaping and baseband envelopes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.signals import (
    BitStreamEnvelope,
    ConstantEnvelope,
    SinusoidalEnvelope,
    alternating_bits,
    prbs_bits,
    rectangular_pulse,
    smoothed_pulse,
)
from repro.utils import ConfigurationError


class TestPRBS:
    def test_prbs7_has_maximal_period(self):
        bits = prbs_bits(7, 254)
        first, second = bits[:127], bits[127:254]
        np.testing.assert_array_equal(first, second)
        # Within one period the sequence must not repeat earlier.
        assert not np.array_equal(bits[:63], bits[63:126])

    def test_prbs7_is_nearly_balanced(self):
        bits = prbs_bits(7, 127)
        ones = int(bits.sum())
        # A maximal-length 7-bit LFSR produces 64 ones and 63 zeros.
        assert ones in (63, 64)

    def test_prbs9_period(self):
        bits = prbs_bits(9, 2 * 511)
        np.testing.assert_array_equal(bits[:511], bits[511:])

    def test_values_are_binary(self):
        bits = prbs_bits(7, 50)
        assert set(np.unique(bits)).issubset({0, 1})

    def test_zero_seed_is_fixed_up(self):
        bits = prbs_bits(7, 127, seed=0)
        assert bits.sum() > 0  # not stuck in the all-zero state

    def test_unsupported_order_raises(self):
        with pytest.raises(ConfigurationError):
            prbs_bits(8, 10)

    def test_invalid_length_raises(self):
        with pytest.raises(ConfigurationError):
            prbs_bits(7, 0)

    def test_alternating_bits(self):
        np.testing.assert_array_equal(alternating_bits(5), [1, 0, 1, 0, 1])
        np.testing.assert_array_equal(alternating_bits(4, start=0), [0, 1, 0, 1])


class TestPulses:
    def test_rectangular_pulse_support(self):
        assert rectangular_pulse(0.5) == 1.0
        assert rectangular_pulse(-0.1) == 0.0
        assert rectangular_pulse(1.0) == 0.0

    def test_smoothed_pulse_reduces_to_rectangular(self):
        u = np.linspace(-0.5, 1.5, 101)
        np.testing.assert_allclose(smoothed_pulse(u, rise_fraction=0.0), rectangular_pulse(u))

    def test_smoothed_pulse_edges(self):
        assert smoothed_pulse(0.0, rise_fraction=0.1) == pytest.approx(0.0)
        assert smoothed_pulse(0.05, rise_fraction=0.1) == pytest.approx(0.5)
        assert smoothed_pulse(0.5, rise_fraction=0.1) == pytest.approx(1.0)

    def test_smoothed_pulse_invalid_rise(self):
        with pytest.raises(ConfigurationError):
            smoothed_pulse(0.5, rise_fraction=0.5)


class TestConstantAndSinusoidalEnvelopes:
    def test_constant(self):
        env = ConstantEnvelope(level=0.7)
        assert env(0.0) == pytest.approx(0.7)
        np.testing.assert_allclose(env(np.linspace(0, 1, 5)), 0.7)

    def test_sinusoidal(self):
        env = SinusoidalEnvelope(period=1e-3, amplitude=0.5, offset=1.0)
        assert env(0.0) == pytest.approx(1.5)
        assert env(0.5e-3) == pytest.approx(0.5)
        # Periodicity
        assert env(1.7e-3) == pytest.approx(env(0.7e-3))


class TestBitStreamEnvelope:
    def test_levels(self):
        env = BitStreamEnvelope([1, 0], bit_period=1e-3, low=-1.0, high=1.0, rise_fraction=0.0)
        assert env(0.5e-3) == pytest.approx(1.0)
        assert env(1.5e-3) == pytest.approx(-1.0)

    def test_period(self):
        env = BitStreamEnvelope([1, 0, 1, 1], bit_period=2e-6)
        assert env.period == pytest.approx(8e-6)
        assert env.n_bits == 4

    def test_periodicity(self):
        env = BitStreamEnvelope([1, 0, 1], bit_period=1e-3, rise_fraction=0.1)
        t = np.linspace(0, 3e-3, 301, endpoint=False)
        np.testing.assert_allclose(env(t), env(t + env.period), atol=1e-12)

    def test_bit_at(self):
        env = BitStreamEnvelope([1, 0, 1, 1], bit_period=1.0, rise_fraction=0.0)
        assert env.bit_at(0.5) == 1
        assert env.bit_at(1.5) == 0
        assert env.bit_at(4.5) == 1  # wraps around

    def test_raised_cosine_transition_is_monotone(self):
        env = BitStreamEnvelope([0, 1], bit_period=1.0, rise_fraction=0.2)
        t = np.linspace(1.0, 1.2, 50)
        values = np.asarray(env(t))
        assert np.all(np.diff(values) >= -1e-12)
        assert values[0] == pytest.approx(0.0, abs=1e-9)
        assert values[-1] == pytest.approx(1.0, abs=1e-9)

    def test_prbs_constructor(self):
        env = BitStreamEnvelope.prbs(7, 8, bit_period=1e-6)
        assert env.n_bits == 8
        assert env.period == pytest.approx(8e-6)

    def test_invalid_bits_raise(self):
        with pytest.raises(ConfigurationError):
            BitStreamEnvelope([], bit_period=1e-6)
        with pytest.raises(ConfigurationError):
            BitStreamEnvelope([0, 2], bit_period=1e-6)

    def test_invalid_rise_fraction(self):
        with pytest.raises(ConfigurationError):
            BitStreamEnvelope([0, 1], bit_period=1e-6, rise_fraction=0.6)

    def test_scalar_and_array_evaluation_agree(self):
        env = BitStreamEnvelope([1, 0, 1, 1], bit_period=1e-3, rise_fraction=0.05)
        times = np.linspace(0, 4e-3, 17)
        array_values = np.asarray(env(times))
        scalar_values = np.array([env(float(t)) for t in times])
        np.testing.assert_allclose(array_values, scalar_values)
