"""Unit tests for the periodic multi-time grid and its differentiation operators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MultiTimeGrid
from repro.utils import MPDEError


@pytest.fixture
def grid():
    return MultiTimeGrid(period_fast=1e-9, period_slow=1e-4, n_fast=8, n_slow=6)


class TestGeometry:
    def test_point_count_and_axes(self, grid):
        assert grid.n_points == 48
        assert grid.fast_axis.shape == (8,)
        assert grid.slow_axis.shape == (6,)
        assert grid.fast_axis[-1] < grid.period_fast
        assert grid.slow_axis[1] == pytest.approx(grid.period_slow / 6)

    def test_paper_grid_size(self):
        """The paper's 40 x 30 grid has 1200 points."""
        grid = MultiTimeGrid(1 / 450e6, 1 / 15e3, 40, 30)
        assert grid.n_points == 1200

    def test_mesh_ordering_matches_point_index(self, grid):
        t1, t2 = grid.mesh
        for i in (0, 3, 7):
            for j in (0, 2, 5):
                p = grid.point_index(i, j)
                assert t1[p] == pytest.approx(grid.fast_axis[i])
                assert t2[p] == pytest.approx(grid.slow_axis[j])

    def test_point_index_bounds(self, grid):
        with pytest.raises(MPDEError):
            grid.point_index(8, 0)
        with pytest.raises(MPDEError):
            grid.point_index(0, -1)

    def test_reshape_roundtrip(self, grid):
        flat = np.arange(grid.n_points * 3.0).reshape(grid.n_points, 3)
        gridded = grid.reshape_to_grid(flat)
        assert gridded.shape == (8, 6, 3)
        np.testing.assert_allclose(grid.flatten_from_grid(gridded), flat)

    def test_reshape_validates_sizes(self, grid):
        with pytest.raises(MPDEError):
            grid.reshape_to_grid(np.zeros(5))
        with pytest.raises(MPDEError):
            grid.flatten_from_grid(np.zeros((3, 3)))

    def test_minimum_size(self):
        from repro.utils import ConfigurationError, ReproError

        with pytest.raises(MPDEError):
            MultiTimeGrid(1.0, 1.0, 2, 8)
        with pytest.raises((MPDEError, ConfigurationError, ReproError)):
            MultiTimeGrid(1.0, -1.0, 8, 8)


class TestDifferentiationOperators:
    def _sample(self, grid, func):
        t1, t2 = grid.mesh
        return func(t1, t2)

    @pytest.mark.parametrize("method", ["backward-euler", "bdf2", "central", "fourier"])
    def test_fast_derivative_ignores_slow_variation(self, method):
        grid = MultiTimeGrid(1.0, 1.0, 16, 12)
        values = self._sample(grid, lambda t1, t2: np.sin(2 * np.pi * t2))
        d = grid.fast_derivative(method) @ values
        np.testing.assert_allclose(d, 0.0, atol=1e-9)

    @pytest.mark.parametrize("method", ["backward-euler", "bdf2", "central", "fourier"])
    def test_slow_derivative_ignores_fast_variation(self, method):
        grid = MultiTimeGrid(1.0, 1.0, 16, 12)
        values = self._sample(grid, lambda t1, t2: np.cos(2 * np.pi * t1))
        d = grid.slow_derivative(method) @ values
        np.testing.assert_allclose(d, 0.0, atol=1e-9)

    def test_fast_derivative_fourier_exactness(self):
        grid = MultiTimeGrid(2.0, 3.0, 16, 8)
        omega = 2 * np.pi / grid.period_fast
        values = self._sample(grid, lambda t1, t2: np.sin(omega * t1))
        expected = self._sample(grid, lambda t1, t2: omega * np.cos(omega * t1))
        d = grid.fast_derivative("fourier") @ values
        np.testing.assert_allclose(d, expected, atol=1e-9)

    def test_slow_derivative_fourier_exactness(self):
        grid = MultiTimeGrid(2.0, 3.0, 8, 16)
        omega = 2 * np.pi / grid.period_slow
        values = self._sample(grid, lambda t1, t2: np.cos(omega * t2))
        expected = self._sample(grid, lambda t1, t2: -omega * np.sin(omega * t2))
        d = grid.slow_derivative("fourier") @ values
        np.testing.assert_allclose(d, expected, atol=1e-9)

    def test_combined_operator_is_sum(self):
        grid = MultiTimeGrid(1.0, 2.0, 8, 8)
        combined = grid.combined_derivative("bdf2", "central").toarray()
        expected = (grid.fast_derivative("bdf2") + grid.slow_derivative("central")).toarray()
        np.testing.assert_allclose(combined, expected)

    def test_combined_derivative_on_mpde_warped_product(self):
        """The MPDE operator applied to the warped product reproduces dz/dt on the diagonal.

        With z_hat(t1, t2) = cos(w1 t1) * cos(w1 t1 - wd t2), the MPDE
        identity says (d/dt1 + d/dt2) z_hat evaluated on the diagonal equals
        the ordinary derivative of z(t) = z_hat(t, t).  We verify the
        operator numerically at the grid origin where the diagonal intersects
        the grid exactly.
        """
        grid = MultiTimeGrid(1.0, 10.0, 64, 64)
        w1 = 2 * np.pi / grid.period_fast
        wd = 2 * np.pi / grid.period_slow
        t1, t2 = grid.mesh
        values = np.cos(w1 * t1) * np.cos(w1 * t1 - wd * t2)
        d = grid.combined_derivative("fourier", "fourier") @ values
        # Analytic derivative of z(t) = cos(w1 t) cos((w1 - wd) t) at t = 0 is 0.
        origin = grid.point_index(0, 0)
        assert d[origin] == pytest.approx(0.0, abs=1e-6)

    def test_unknown_method_rejected(self, grid):
        with pytest.raises(MPDEError):
            grid.fast_derivative("simpson")

    def test_operator_shapes(self, grid):
        assert grid.fast_derivative().shape == (48, 48)
        assert grid.slow_derivative().shape == (48, 48)
