"""Tests for the mixer circuit builders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import dc_operating_point
from repro.circuits.devices import MOSFETParams
from repro.rf import (
    balanced_lo_doubling_mixer,
    default_bit_envelope,
    ideal_multiplier_mixer,
    unbalanced_switching_mixer,
)
from repro.signals import BitStreamEnvelope, ConstantEnvelope
from repro.utils import ConfigurationError


class TestDefaultBitEnvelope:
    def test_spans_exactly_one_difference_period(self):
        td = 1 / 15e3
        env = default_bit_envelope(td)
        assert env.period == pytest.approx(td)
        assert env.n_bits == 4

    def test_custom_pattern(self):
        env = default_bit_envelope(1e-3, bits=(1, 0), low=0.0, high=2.0)
        assert env.n_bits == 2
        assert env(0.25e-3) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            default_bit_envelope(-1.0)
        with pytest.raises(ConfigurationError):
            default_bit_envelope(1e-3, bits=())


class TestIdealMultiplierMixer:
    def test_paper_defaults(self):
        mix = ideal_multiplier_mixer()
        assert mix.lo_frequency == pytest.approx(1e9)
        assert mix.rf_frequency == pytest.approx(1e9 - 10e3)
        assert mix.difference_frequency == pytest.approx(10e3)
        assert mix.scales.lo_multiple == 1

    def test_compiles_and_has_dc_solution(self):
        mix = ideal_multiplier_mixer(lo_frequency=1e6, difference_frequency=1e3)
        mna = mix.compile()
        solution = dc_operating_point(mna)
        assert np.all(np.isfinite(solution.x))

    def test_optional_load_capacitance(self):
        mix = ideal_multiplier_mixer(load_capacitance=1e-12)
        names = [d.name for d in mix.circuit]
        assert "cload" in names

    def test_invalid_spacing(self):
        with pytest.raises(ConfigurationError):
            ideal_multiplier_mixer(lo_frequency=1e6, difference_frequency=2e6)


class TestUnbalancedSwitchingMixer:
    def test_default_tones_are_closely_spaced(self):
        mix = unbalanced_switching_mixer()
        assert mix.lo_frequency == pytest.approx(450e6)
        assert mix.difference_frequency == pytest.approx(15e3)
        assert mix.scales.disparity == pytest.approx(450e6 / 15e3)

    def test_contains_a_switching_transistor(self):
        mix = unbalanced_switching_mixer()
        assert mix.circuit.is_nonlinear()
        assert mix.circuit.device("mswitch") is not None

    def test_dc_operating_point(self, scaled_switching_mixer):
        mna = scaled_switching_mixer.compile()
        solution = dc_operating_point(mna)
        # The output node is biased somewhere between ground and the RF bias.
        v_out = solution.voltage(mna, "out")
        assert 0.0 <= v_out <= 1.0

    def test_custom_envelope_is_used(self):
        env = BitStreamEnvelope([1, 0], bit_period=1 / 15e3 / 2)
        mix = unbalanced_switching_mixer(envelope=env)
        stim = mix.circuit.device("vrf").stimulus
        carriers = [p for p in stim.parts if hasattr(p, "envelope")]
        assert carriers and carriers[0].envelope is env

    def test_invalid_spacing(self):
        with pytest.raises(ConfigurationError):
            unbalanced_switching_mixer(lo_frequency=1e6, difference_frequency=1e6)


class TestBalancedLODoublingMixer:
    def test_paper_frequency_plan(self):
        """450 MHz LO doubled internally, RF near 900 MHz, 15 kHz baseband (Eq. 12)."""
        mix = balanced_lo_doubling_mixer()
        assert mix.lo_frequency == pytest.approx(450e6)
        assert mix.rf_frequency == pytest.approx(2 * 450e6 - 15e3)
        assert mix.difference_frequency == pytest.approx(15e3)
        assert mix.scales.lo_multiple == 2
        assert mix.scales.carrier_frequency == pytest.approx(mix.rf_frequency)

    def test_topology(self):
        mix = balanced_lo_doubling_mixer()
        names = {d.name for d in mix.circuit}
        # Upper mixing pair, lower doubler pair, loads and drives all present.
        assert {"m1", "m2", "m3", "m4", "rl1", "rl2", "vlop", "vlon", "vrfp", "vrfn"} <= names
        assert mix.output_pos == "outp" and mix.output_neg == "outn"
        assert "tail" in mix.monitor_nodes

    def test_doubler_pair_shares_tail_node(self):
        mix = balanced_lo_doubling_mixer()
        m3 = mix.circuit.device("m3")
        m4 = mix.circuit.device("m4")
        m1 = mix.circuit.device("m1")
        assert m3.node_names[0] == "tail" and m4.node_names[0] == "tail"
        assert m1.node_names[2] == "tail"

    def test_dc_operating_point_is_reasonable(self):
        mix = balanced_lo_doubling_mixer()
        mna = mix.compile()
        solution = dc_operating_point(mna)
        vdd = solution.voltage(mna, "vdd")
        outp = solution.voltage(mna, "outp")
        outn = solution.voltage(mna, "outn")
        assert vdd == pytest.approx(3.0)
        assert 0.0 < outp <= 3.0
        assert 0.0 < outn <= 3.0

    def test_bit_stream_drive_by_default(self):
        mix = balanced_lo_doubling_mixer()
        stim = mix.circuit.device("vrfp").stimulus
        carriers = [p for p in stim.parts if hasattr(p, "envelope")]
        assert isinstance(carriers[0].envelope, BitStreamEnvelope)

    def test_pure_tone_drive_option(self):
        mix = balanced_lo_doubling_mixer(use_bit_stream=False)
        stim = mix.circuit.device("vrfp").stimulus
        carriers = [p for p in stim.parts if hasattr(p, "envelope")]
        assert isinstance(carriers[0].envelope, ConstantEnvelope)

    def test_custom_mosfet_parameters(self):
        params = MOSFETParams(vto=0.5, kp=100e-6, w=10e-6, l=0.5e-6)
        mix = balanced_lo_doubling_mixer(upper_params=params)
        assert mix.circuit.device("m1").params is params

    def test_scaled_frequencies(self):
        mix = balanced_lo_doubling_mixer(lo_frequency=5e6, difference_frequency=50e3)
        assert mix.rf_frequency == pytest.approx(10e6 - 50e3)
        assert mix.difference_period == pytest.approx(1 / 50e3)

    def test_invalid_spacing(self):
        with pytest.raises(ConfigurationError):
            balanced_lo_doubling_mixer(lo_frequency=1e6, difference_frequency=3e6)

    def test_compile_shorthand(self):
        mix = balanced_lo_doubling_mixer()
        mna = mix.compile()
        assert mna.n_unknowns == 13
