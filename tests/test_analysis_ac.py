"""Unit tests for small-signal AC analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import ac_sweep, dc_operating_point, unit_excitation_pattern
from repro.circuits import Circuit
from repro.circuits.devices import Capacitor, CurrentSource, Resistor, VoltageSource
from repro.signals import DCStimulus, SinusoidStimulus
from repro.utils import AnalysisError


class TestRCAnalysis:
    def test_transfer_magnitude_and_corner(self, rc_lowpass):
        mna = rc_lowpass.compile()
        op = dc_operating_point(mna)
        freqs = np.logspace(1, 6, 200)
        result = ac_sweep(mna, op.x, freqs, "vin")
        corner = 1.0 / (2 * np.pi * 1e3 * 100e-9)
        assert result.corner_frequency("out") == pytest.approx(corner, rel=0.05)
        # Low-frequency transfer ~ 1 (0 dB); high-frequency rolls off 20 dB/dec.
        mags = result.magnitude_db("out")
        assert mags[0] == pytest.approx(0.0, abs=0.1)
        decade = mags[np.searchsorted(freqs, 1e5)] - mags[np.searchsorted(freqs, 1e4)]
        assert decade == pytest.approx(-20.0, abs=1.5)

    def test_phase_at_corner_is_minus_45_degrees(self, rc_lowpass):
        mna = rc_lowpass.compile()
        op = dc_operating_point(mna)
        corner = 1.0 / (2 * np.pi * 1e3 * 100e-9)
        result = ac_sweep(mna, op.x, np.array([corner]), "vin")
        assert result.phase_deg("out")[0] == pytest.approx(-45.0, abs=1.0)

    def test_divider_is_frequency_flat(self, voltage_divider):
        mna = voltage_divider.compile()
        op = dc_operating_point(mna)
        result = ac_sweep(mna, op.x, np.logspace(1, 8, 20), "vin")
        np.testing.assert_allclose(np.abs(result.transfer("mid")), 0.5, rtol=1e-9)

    def test_ground_transfer_is_zero(self, rc_lowpass):
        mna = rc_lowpass.compile()
        op = dc_operating_point(mna)
        result = ac_sweep(mna, op.x, np.array([1e3]), "vin")
        np.testing.assert_allclose(result.transfer("0"), 0.0)

    def test_never_dropping_response_raises_in_corner_search(self, voltage_divider):
        mna = voltage_divider.compile()
        op = dc_operating_point(mna)
        result = ac_sweep(mna, op.x, np.logspace(1, 6, 30), "vin")
        with pytest.raises(AnalysisError):
            result.corner_frequency("mid")


class TestExcitationPatterns:
    def test_voltage_source_pattern(self, rc_lowpass):
        mna = rc_lowpass.compile()
        pattern = unit_excitation_pattern(mna, "vin")
        assert pattern[mna.branch_index("vin")] == -1.0
        assert np.count_nonzero(pattern) == 1

    def test_current_source_pattern(self):
        ckt = Circuit("t")
        ckt.add(CurrentSource("iin", "a", "b", DCStimulus(1.0)))
        ckt.add(Resistor("r1", "a", "b", 1e3))
        ckt.add(Resistor("r2", "b", ckt.GROUND, 1e3))
        mna = ckt.compile()
        pattern = unit_excitation_pattern(mna, "iin")
        assert pattern[mna.node_index("a")] == 1.0
        assert pattern[mna.node_index("b")] == -1.0

    def test_non_source_device_raises(self, rc_lowpass):
        mna = rc_lowpass.compile()
        with pytest.raises(AnalysisError):
            unit_excitation_pattern(mna, "r1")

    def test_negative_frequencies_rejected(self, rc_lowpass):
        mna = rc_lowpass.compile()
        op = dc_operating_point(mna)
        with pytest.raises(AnalysisError):
            ac_sweep(mna, op.x, np.array([-1.0]), "vin")

    def test_current_source_driven_rc(self):
        """AC of a current source into R || C: |Z| at the corner is R/sqrt(2)."""
        ckt = Circuit("norton rc")
        ckt.add(CurrentSource("iin", ckt.GROUND, "out", DCStimulus(0.0)))
        ckt.add(Resistor("r1", "out", ckt.GROUND, 1e3))
        ckt.add(Capacitor("c1", "out", ckt.GROUND, 1e-6))
        mna = ckt.compile()
        op = dc_operating_point(mna)
        corner = 1.0 / (2 * np.pi * 1e3 * 1e-6)
        result = ac_sweep(mna, op.x, np.array([corner / 100, corner]), "iin")
        z = np.abs(result.transfer("out"))
        assert z[0] == pytest.approx(1e3, rel=1e-3)
        assert z[1] == pytest.approx(1e3 / np.sqrt(2), rel=1e-3)
