"""Unit tests for the MPDE discretisation (problem assembly, residual, Jacobian)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.circuits.devices import Capacitor, Resistor, VoltageSource
from repro.core import MPDEProblem, ShearedTimeScales
from repro.signals import ModulatedCarrierStimulus, SinusoidStimulus, SumStimulus
from repro.utils import MPDEError, MPDEOptions


F_FAST = 1e6
F_DIFF = 10e3
R = 1e3
C = 50e-9  # RC corner ~3.2 kHz: attenuates both carriers strongly, passes fd partially


def _two_tone_rc():
    """R-C low-pass driven by the sum of an LO tone and a closely spaced carrier."""
    scales = ShearedTimeScales.from_frequencies(F_FAST, F_FAST - F_DIFF)
    ckt = Circuit("two-tone rc")
    drive = SumStimulus(
        (
            SinusoidStimulus(1.0, F_FAST),
            ModulatedCarrierStimulus(0.5, scales.carrier_frequency),
        )
    )
    ckt.add(VoltageSource("vin", "in", ckt.GROUND, drive))
    ckt.add(Resistor("r1", "in", "out", R))
    ckt.add(Capacitor("c1", "out", ckt.GROUND, C))
    return ckt.compile(), scales


def _analytic_surface(mna, scales, grid):
    """Closed-form bivariate solution of the linear two-tone RC circuit."""
    t1, t2 = grid.mesh

    def transfer(freq):
        h = 1.0 / (1.0 + 2j * np.pi * freq * R * C)
        return abs(h), np.angle(h)

    mag1, ph1 = transfer(F_FAST)
    mag2, ph2 = transfer(scales.carrier_frequency)
    out = mag1 * 1.0 * np.cos(2 * np.pi * scales.fast_phase(t1) + ph1) + mag2 * 0.5 * np.cos(
        2 * np.pi * scales.carrier_phase(t1, t2) + ph2
    )
    return out


class TestProblemAssembly:
    def test_sizes(self):
        mna, scales = _two_tone_rc()
        problem = MPDEProblem(mna, scales, MPDEOptions(n_fast=12, n_slow=8))
        assert problem.n_circuit_unknowns == mna.n_unknowns
        assert problem.n_grid_points == 96
        assert problem.n_total_unknowns == 96 * mna.n_unknowns
        assert problem.source_grid.shape == (96, mna.n_unknowns)

    def test_grid_periods_follow_scales(self):
        mna, scales = _two_tone_rc()
        problem = MPDEProblem(mna, scales, MPDEOptions(n_fast=12, n_slow=8))
        assert problem.grid.period_fast == pytest.approx(scales.fast_period)
        assert problem.grid.period_slow == pytest.approx(scales.difference_period)

    def test_reshape_states_validates_size(self):
        mna, scales = _two_tone_rc()
        problem = MPDEProblem(mna, scales, MPDEOptions(n_fast=8, n_slow=8))
        with pytest.raises(MPDEError):
            problem.reshape_states(np.zeros(7))

    def test_initial_guess_helpers(self):
        mna, scales = _two_tone_rc()
        problem = MPDEProblem(mna, scales, MPDEOptions(n_fast=8, n_slow=8))
        assert problem.initial_guess_zero().shape == (problem.n_total_unknowns,)
        tiled = problem.initial_guess_from_state(np.arange(float(mna.n_unknowns)))
        states = problem.reshape_states(tiled)
        np.testing.assert_allclose(states[17], np.arange(float(mna.n_unknowns)))
        with pytest.raises(MPDEError):
            problem.initial_guess_from_state(np.zeros(mna.n_unknowns + 1))


class TestResidualAndJacobian:
    def test_manufactured_solution_has_small_residual(self):
        """The analytic bivariate solution satisfies the discretised MPDE (Fourier mode)."""
        mna, scales = _two_tone_rc()
        problem = MPDEProblem(
            mna,
            scales,
            MPDEOptions(n_fast=16, n_slow=16, fast_method="fourier", slow_method="fourier"),
        )
        out_surface = _analytic_surface(mna, scales, problem.grid)
        # Build the full state: v(in) = drive, v(out) = analytic, i(vin) from KCL.
        t1, t2 = problem.grid.mesh
        b = problem.source_grid
        v_in = -b[:, mna.branch_index("vin")]
        states = np.zeros((problem.n_grid_points, mna.n_unknowns))
        states[:, mna.node_index("in")] = v_in
        states[:, mna.node_index("out")] = out_surface
        states[:, mna.branch_index("vin")] = -(v_in - out_surface) / R
        residual = problem.residual(states.ravel())
        # Residual scale: the resistor currents are ~1 mA.
        assert np.max(np.abs(residual)) < 5e-6

    def test_jacobian_matches_finite_difference(self, rng):
        mna, scales = _two_tone_rc()
        problem = MPDEProblem(mna, scales, MPDEOptions(n_fast=4, n_slow=4))
        x = rng.normal(scale=0.1, size=problem.n_total_unknowns)
        jac = problem.jacobian(x).toarray()
        fd = np.zeros_like(jac)
        base = problem.residual(x)
        h = 1e-7
        for j in range(x.size):
            xp = x.copy()
            xp[j] += h
            fd[:, j] = (problem.residual(xp) - base) / h
        np.testing.assert_allclose(jac, fd, rtol=1e-4, atol=1e-6 * np.max(np.abs(jac)))

    def test_residual_and_jacobian_consistent_with_separate_calls(self, rng):
        mna, scales = _two_tone_rc()
        problem = MPDEProblem(mna, scales, MPDEOptions(n_fast=5, n_slow=4))
        x = rng.normal(scale=0.1, size=problem.n_total_unknowns)
        r_combined, j_combined = problem.residual_and_jacobian(x)
        np.testing.assert_allclose(r_combined, problem.residual(x))
        np.testing.assert_allclose(j_combined.toarray(), problem.jacobian(x).toarray())


class TestEmbeddedSource:
    def test_embedding_endpoints(self):
        mna, scales = _two_tone_rc()
        problem = MPDEProblem(mna, scales, MPDEOptions(n_fast=8, n_slow=8))
        relaxed = problem.embedded_source_grid(0.0)
        full = problem.embedded_source_grid(1.0)
        np.testing.assert_allclose(full, problem.source_grid)
        # At lambda = 0 every grid point sees the same (mean) excitation.
        np.testing.assert_allclose(relaxed, np.tile(relaxed[0], (problem.n_grid_points, 1)))

    def test_embedding_is_linear_in_lambda(self):
        mna, scales = _two_tone_rc()
        problem = MPDEProblem(mna, scales, MPDEOptions(n_fast=8, n_slow=8))
        mid = problem.embedded_source_grid(0.5)
        expected = 0.5 * (problem.embedded_source_grid(0.0) + problem.source_grid)
        np.testing.assert_allclose(mid, expected)

    def test_invalid_lambda(self):
        mna, scales = _two_tone_rc()
        problem = MPDEProblem(mna, scales, MPDEOptions(n_fast=8, n_slow=8))
        with pytest.raises(MPDEError):
            problem.embedded_source_grid(1.5)

    def test_residual_for_embedding_matches_manual(self, rng):
        mna, scales = _two_tone_rc()
        problem = MPDEProblem(mna, scales, MPDEOptions(n_fast=5, n_slow=5))
        x = rng.normal(scale=0.05, size=problem.n_total_unknowns)
        lam = 0.3
        manual = problem.residual(x, source_grid=problem.embedded_source_grid(lam))
        np.testing.assert_allclose(problem.residual_for_embedding(lam)(x), manual)
