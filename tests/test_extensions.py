"""Extension tests beyond the paper's own experiments.

The paper closes by noting that the difference-time-scale method "can be
applied generally to other systems featuring closely-spaced tones, such as
power conversion circuits and electro-optical communication systems".  These
tests exercise two such extensions built on the library:

* a bipolar Gilbert-cell mixer (a different mixer topology and device
  family), and
* an AM envelope detector (the power-conversion-style rectifier case):
  a diode detector driven by the beat of two closely spaced tones, where
  the difference-frequency axis directly carries the detected envelope.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import dc_operating_point, run_transient
from repro.circuits import Circuit
from repro.circuits.devices import Capacitor, Diode, DiodeParams, Resistor, VoltageSource
from repro.core import ShearedTimeScales, solve_mpde
from repro.rf import conversion_metrics, gilbert_cell_mixer
from repro.rf.receiver import recover_bits
from repro.signals import ModulatedCarrierStimulus, SinusoidStimulus, SumStimulus, Waveform
from repro.signals.spectrum import fourier_coefficient
from repro.utils import AnalysisError, MPDEOptions, TransientOptions


@pytest.fixture(scope="module")
def gilbert_solution():
    mixer = gilbert_cell_mixer(lo_frequency=5e6, difference_frequency=50e3)
    result = solve_mpde(mixer.compile(), mixer.scales, MPDEOptions(n_fast=24, n_slow=20))
    return mixer, result


class TestGilbertCellMixer:
    def test_construction_and_dc(self):
        mixer = gilbert_cell_mixer()
        assert mixer.scales.lo_multiple == 1
        assert mixer.rf_frequency == pytest.approx(450e6 - 15e3)
        mna = mixer.compile()
        assert mna.n_unknowns == 15
        solution = dc_operating_point(mna)
        # The switching quad sits between the loads and the transconductance pair.
        assert 0.0 < solution.voltage(mna, "etail") < solution.voltage(mna, "c1")
        assert solution.voltage(mna, "outp") < 5.0

    def test_mpde_converges_with_bjts(self, gilbert_solution):
        _, result = gilbert_solution
        assert result.stats.converged
        assert result.stats.newton_iterations < 30

    def test_downconversion_gain(self, gilbert_solution):
        mixer, result = gilbert_solution
        metrics = conversion_metrics(result, "outp", "outn", mixer.rf_amplitude)
        # gm * RL for 1 mA / side into 1 kOhm is ~38; switching loss reduces it.
        assert 5.0 < metrics.gain < 80.0
        assert metrics.distortion < 0.2

    def test_tail_current_is_conserved(self, gilbert_solution):
        """The ideal tail source fixes the sum of the transconductor currents."""
        mixer, result = gilbert_solution
        mna = mixer.compile()
        # Collector load currents: (vcc - outp)/RL + (vcc - outn)/RL ~ tail current.
        outp = result.baseband_envelope("outp").mean()
        outn = result.baseband_envelope("outn").mean()
        total = (5.0 - outp) / 1e3 + (5.0 - outn) / 1e3
        base_current_share = 2.0 / 120.0  # beta_forward = 120: bases steal ~2/beta
        assert total == pytest.approx(2e-3, rel=0.1 + base_current_share)

    def test_invalid_spacing(self):
        from repro.utils import ConfigurationError

        with pytest.raises(ConfigurationError):
            gilbert_cell_mixer(lo_frequency=1e6, difference_frequency=2e6)


class TestEnvelopeDetectorExtension:
    """AM envelope detection of a two-tone beat — the 'power conversion' style case."""

    f_carrier = 2e6
    f_offset = 20e3  # beat / difference frequency

    def _detector(self):
        """Diode envelope detector driven by the sum of two closely spaced tones."""
        scales = ShearedTimeScales.from_frequencies(self.f_carrier, self.f_carrier - self.f_offset)
        ckt = Circuit("envelope detector")
        drive = SumStimulus(
            (
                SinusoidStimulus(1.0, self.f_carrier),
                ModulatedCarrierStimulus(1.0, scales.carrier_frequency),
            )
        )
        ckt.add(VoltageSource("vin", "in", ckt.GROUND, drive))
        ckt.add(Diode("d1", "in", "out", DiodeParams(saturation_current=1e-12)))
        ckt.add(Resistor("rl", "out", ckt.GROUND, 20e3))
        # RC chosen between the carrier and beat periods: ripple-free detection.
        ckt.add(Capacitor("cl", "out", ckt.GROUND, 2e-9))
        return ckt.compile(), scales

    def test_detected_envelope_follows_the_beat(self):
        """The detector output tracks |2 cos(pi fd t)| - i.e. a strong fd component."""
        mna, scales = self._detector()
        result = solve_mpde(mna, scales, MPDEOptions(n_fast=32, n_slow=30))
        envelope = result.baseband_envelope("out")
        # The two-tone beat has an envelope swinging between 0 and 2 V; the
        # detected output keeps a substantial component at the difference
        # frequency (reduced by the diode drop and the load).
        amplitude = 2 * abs(fourier_coefficient(envelope, self.f_offset))
        assert amplitude > 0.25
        assert envelope.values.max() > 0.8

    def test_against_brute_force_transient(self):
        mna, scales = self._detector()
        result = solve_mpde(mna, scales, MPDEOptions(n_fast=32, n_slow=30))
        envelope = result.baseband_envelope("out")
        td = scales.difference_period
        transient = run_transient(
            mna,
            t_stop=3 * td,
            dt=1 / self.f_carrier / 40,
            options=TransientOptions(method="trapezoidal"),
        )
        steady = transient.waveform("out").window(2 * td, 3 * td)
        a_mpde = 2 * abs(fourier_coefficient(envelope, self.f_offset))
        a_tran = 2 * abs(fourier_coefficient(steady, self.f_offset))
        assert a_mpde == pytest.approx(a_tran, rel=0.08)
        assert envelope.mean() == pytest.approx(steady.mean(), rel=0.05)


class TestRecoverBitsPeakMode:
    def _beating_bits(self, bits, bit_period=1e-3, samples_per_bit=200):
        """Bit amplitudes riding on a |cos| beat with one zero crossing per bit."""
        n = len(bits) * samples_per_bit
        t = np.linspace(0.0, bit_period * len(bits), n)
        amplitude = np.repeat(np.asarray(bits, dtype=float), samples_per_bit)
        beat = np.abs(np.cos(np.pi * t / bit_period))
        return Waveform(t, amplitude * beat)

    def test_peak_mode_survives_beat_nulls(self):
        envelope = self._beating_bits([1, 0, 1, 1])
        centre = recover_bits(envelope, 4, mode="center")
        peak = recover_bits(envelope, 4, mode="peak")
        # The beat null sits exactly at the bit centres, so centre sampling fails...
        assert centre.bits != (1, 0, 1, 1)
        # ...while peak detection recovers the pattern.
        assert peak.bits == (1, 0, 1, 1)

    def test_unknown_mode_raises(self):
        envelope = self._beating_bits([1, 0])
        with pytest.raises(AnalysisError):
            recover_bits(envelope, 2, mode="average")
