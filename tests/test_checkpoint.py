"""Crash-consistent checkpoint/resume (the PR-8 tentpole, part 2).

The contract under test (see ``src/repro/resilience/checkpoint.py``):

* **Consistency** — checkpoints snapshot accepted iteration boundaries
  only; persistence is write-temporary + atomic rename; a corrupt or
  truncated file raises :class:`~repro.utils.exceptions.CheckpointError`,
  never garbage.
* **Identity** — a checkpoint carries a fingerprint of the solve it
  belongs to; resuming into a different circuit/grid/discretisation is a
  :class:`CheckpointError`, never a silently wrong answer.
* **Bitwise resume** — a deadline-interrupted direct-mode solve, resumed
  via ``resume_from=`` (in memory or from a persisted ``.npz``), lands on
  exactly the iterate trajectory of the uninterrupted solve: the final
  states match **bit for bit** for MPDE, collocation PSS and two-tone HB.
* **Failures carry progress** — deadline expiries *and* exhausted-ladder
  terminal failures expose the latest checkpoint on ``exc.checkpoint``.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

import repro.analysis.pss_fd as pss_fd_mod
import repro.core.solver as solver_mod
from repro.analysis.pss_fd import collocation_periodic_steady_state
from repro.core import solve_mpde
from repro.core.multitone_hb import two_tone_harmonic_balance
from repro.resilience import SolveCheckpoint, inject_faults, singular_jacobian, solve_fingerprint
from repro.rf import gilbert_cell_mixer, unbalanced_switching_mixer
from repro.utils import (
    CheckpointError,
    DeadlineExceededError,
    MPDEOptions,
    RecoveryPolicy,
    SingularMatrixError,
)

from test_resilience import _linear_rc

pytestmark = pytest.mark.no_fault_injection

_OPTIONS = MPDEOptions(n_fast=8, n_slow=8)


def _gilbert():
    """Nonlinear two-tone problem whose chord-mode solve converges inside a
    single main Newton run (~13 iterations on the 8x8 grid) — enough
    trajectory for a counting deadline to split, without tripping the
    budget-exhaustion chord fallback (whose retry stage is budget-relative
    and therefore not a bitwise-resumable trajectory)."""
    mix = gilbert_cell_mixer(lo_frequency=2e6, difference_frequency=50e3)
    return mix.circuit.compile(), mix.scales


def _switching():
    """Strongly LO-switched two-tone problem; converges in ~7 iterations
    under full Newton (``chord_newton=False``)."""
    mix = unbalanced_switching_mixer(lo_frequency=2e6, difference_frequency=50e3)
    return mix.circuit.compile(), mix.scales


class _CountingDeadline:
    """Deadline double that expires after a fixed number of ``check`` calls.

    Wall-clock deadlines cannot split a solve at a *deterministic* Newton
    iteration; counting checks can.  A budget of ``None`` (the solver's
    idle ``Deadline(None)``) never expires, mirroring the real class.
    """

    #: Check budget for the next constructed instance (class-level so the
    #: solver's internal construction picks it up).
    budget = 3

    def __init__(self, seconds, *, clock=None):
        self.seconds = seconds
        self._checks = 0

    def elapsed(self) -> float:
        return 0.0

    def remaining(self) -> float:
        return float("inf")

    def expired(self) -> bool:
        return False

    def check(self, stage: str, *, partial_stats=None) -> None:
        if self.seconds is None:
            return
        self._checks += 1
        if self._checks > type(self).budget:
            raise DeadlineExceededError(
                f"injected deadline expiry (at {stage} boundary)",
                deadline_s=float(self.seconds),
                elapsed_s=0.0,
                stage=stage,
                partial_stats=partial_stats,
            )


@pytest.fixture
def counting_deadline(monkeypatch):
    """Patch the MPDE solver's Deadline; yields the class to tune ``budget``."""
    monkeypatch.setattr(solver_mod, "Deadline", _CountingDeadline)
    _CountingDeadline.budget = 3
    yield _CountingDeadline
    monkeypatch.undo()


def _interrupt(mna, scales, options, budget=3):
    """Run a solve to its injected deadline; return the carried checkpoint."""
    _CountingDeadline.budget = budget
    with pytest.raises(DeadlineExceededError) as info:
        solve_mpde(mna, scales, replace(options, deadline_s=60.0))
    checkpoint = info.value.checkpoint
    assert checkpoint is not None
    assert checkpoint.stage == "newton"
    assert info.value.partial_stats is not None
    return checkpoint


class TestFingerprint:
    def test_is_order_insensitive(self):
        assert solve_fingerprint("mpde", a=1, b=2.5) == solve_fingerprint(
            "mpde", b=2.5, a=1
        )

    def test_distinguishes_kind_and_parts(self):
        base = solve_fingerprint("mpde", n_fast=8)
        assert solve_fingerprint("pss", n_fast=8) != base
        assert solve_fingerprint("mpde", n_fast=16) != base


class TestPersistence:
    def _checkpoint(self, **overrides):
        fields = dict(
            fingerprint="f" * 64,
            stage="newton",
            iterate=np.linspace(0.0, 1.0, 7),
            newton_iterations=4,
            residual_norm=1.25e-7,
            chord_state={
                "factored_at": np.arange(7.0),
                "baseline": 3,
                "last": 5,
                "just_built": False,
                "stale": True,
            },
            recovery_trace=[{"rung": "baseline", "outcome": "failed"}],
            stats={"newton_iterations": 4},
        )
        fields.update(overrides)
        return SolveCheckpoint(**fields)

    def test_roundtrip_preserves_every_field(self, tmp_path):
        path = tmp_path / "solve.npz"
        original = self._checkpoint()
        original.save(path)
        loaded = SolveCheckpoint.load(path)
        assert loaded.fingerprint == original.fingerprint
        assert loaded.stage == original.stage
        np.testing.assert_array_equal(loaded.iterate, original.iterate)
        assert loaded.newton_iterations == original.newton_iterations
        assert loaded.residual_norm == original.residual_norm
        np.testing.assert_array_equal(
            loaded.chord_state["factored_at"], original.chord_state["factored_at"]
        )
        for key in ("baseline", "last", "just_built", "stale"):
            assert loaded.chord_state[key] == original.chord_state[key]
        assert loaded.recovery_trace == original.recovery_trace
        assert loaded.stats == original.stats

    def test_roundtrip_without_chord_state(self, tmp_path):
        path = tmp_path / "solve.npz"
        self._checkpoint(chord_state=None).save(path)
        assert SolveCheckpoint.load(path).chord_state is None

    def test_save_leaves_no_temporary_behind(self, tmp_path):
        path = tmp_path / "solve.npz"
        self._checkpoint().save(path)
        self._checkpoint().save(path)  # overwrite is atomic, not append
        assert sorted(p.name for p in tmp_path.iterdir()) == ["solve.npz"]

    def test_corrupt_file_raises_checkpoint_error(self, tmp_path):
        path = tmp_path / "solve.npz"
        path.write_bytes(b"this is not an npz archive")
        with pytest.raises(CheckpointError, match="corrupt"):
            SolveCheckpoint.load(path)

    def test_missing_file_raises_checkpoint_error(self, tmp_path):
        with pytest.raises(CheckpointError):
            SolveCheckpoint.load(tmp_path / "never-written.npz")

    def test_truncated_file_raises_checkpoint_error(self, tmp_path):
        path = tmp_path / "solve.npz"
        self._checkpoint().save(path)
        path.write_bytes(path.read_bytes()[:40])
        with pytest.raises(CheckpointError):
            SolveCheckpoint.load(path)

    def test_fingerprint_mismatch_raises(self):
        checkpoint = self._checkpoint()
        checkpoint.validate("f" * 64)  # matching fingerprint passes
        with pytest.raises(CheckpointError, match="fingerprint mismatch"):
            checkpoint.validate("0" * 64)


class TestMPDEResume:
    def test_deadline_split_solve_is_bitwise(self, counting_deadline):
        mna, scales = _gilbert()
        reference = solve_mpde(mna, scales, _OPTIONS)
        checkpoint = _interrupt(mna, scales, _OPTIONS)
        assert checkpoint.newton_iterations < reference.stats.newton_iterations
        resumed = solve_mpde(mna, scales, _OPTIONS, resume_from=checkpoint)
        np.testing.assert_array_equal(resumed.states, reference.states)
        assert resumed.stats.newton_iterations < reference.stats.newton_iterations

    def test_resume_from_persisted_path_is_bitwise(self, counting_deadline, tmp_path):
        mna, scales = _gilbert()
        path = tmp_path / "mpde.npz"
        options = replace(_OPTIONS, checkpoint_path=str(path))
        reference = solve_mpde(mna, scales, _OPTIONS)
        _interrupt(mna, scales, options)
        assert path.exists()
        resumed = solve_mpde(mna, scales, _OPTIONS, resume_from=str(path))
        np.testing.assert_array_equal(resumed.states, reference.states)

    def test_checkpoint_path_kwarg_persists_during_success(self, tmp_path):
        mna, scales = _linear_rc()
        path = tmp_path / "mpde.npz"
        result = solve_mpde(mna, scales, _OPTIONS, checkpoint_path=path)
        assert result.stats.converged
        final = SolveCheckpoint.load(path)
        # The last persisted snapshot is the converged trajectory's tail:
        # resuming from it reproduces the answer immediately.
        resumed = solve_mpde(mna, scales, _OPTIONS, resume_from=final)
        np.testing.assert_array_equal(resumed.states, result.states)

    def test_mismatched_options_refuse_to_resume(self, counting_deadline):
        mna, scales = _gilbert()
        checkpoint = _interrupt(mna, scales, _OPTIONS)
        with pytest.raises(CheckpointError, match="fingerprint mismatch"):
            solve_mpde(
                mna, scales, _OPTIONS.with_grid(12, 8), resume_from=checkpoint
            )

    def test_full_newton_mode_resumes_bitwise(self, counting_deadline):
        """No chord cache in play: the iterate alone carries the state."""
        mna, scales = _switching()
        options = replace(_OPTIONS, chord_newton=False)
        reference = solve_mpde(mna, scales, options)
        checkpoint = _interrupt(mna, scales, options)
        assert checkpoint.chord_state is None
        resumed = solve_mpde(mna, scales, options, resume_from=checkpoint)
        np.testing.assert_array_equal(resumed.states, reference.states)

    def test_exhausted_ladder_failure_carries_checkpoint(self):
        mna, scales = _gilbert()
        options = replace(
            _OPTIONS,
            recovery=RecoveryPolicy(enabled=False),
            use_continuation=False,
        )
        reference = solve_mpde(mna, scales, options)
        with inject_faults(singular_jacobian(at_iteration=3, count=None)):
            with pytest.raises(SingularMatrixError) as info:
                solve_mpde(mna, scales, options)
        checkpoint = info.value.checkpoint
        assert checkpoint is not None
        assert checkpoint.newton_iterations > 0
        resumed = solve_mpde(mna, scales, options, resume_from=checkpoint)
        np.testing.assert_array_equal(resumed.states, reference.states)


class TestCollocationPSSResume:
    def _solve(self, mna, **kwargs):
        return collocation_periodic_steady_state(mna, 1e-3, 41, **kwargs)

    def test_deadline_split_pss_is_bitwise(self, diode_rectifier, monkeypatch):
        mna = diode_rectifier.compile()
        reference = self._solve(mna)
        monkeypatch.setattr(pss_fd_mod, "Deadline", _CountingDeadline)
        _CountingDeadline.budget = 2
        with pytest.raises(DeadlineExceededError) as info:
            self._solve(mna, deadline_s=60.0)
        monkeypatch.undo()
        checkpoint = info.value.checkpoint
        assert checkpoint is not None
        assert checkpoint.stage == "collocation"
        resumed = self._solve(mna, resume_from=checkpoint)
        np.testing.assert_array_equal(resumed.states, reference.states)

    def test_pss_checkpoint_persists_and_resumes_from_path(
        self, diode_rectifier, monkeypatch, tmp_path
    ):
        mna = diode_rectifier.compile()
        path = tmp_path / "pss.npz"
        reference = self._solve(mna)
        monkeypatch.setattr(pss_fd_mod, "Deadline", _CountingDeadline)
        _CountingDeadline.budget = 2
        with pytest.raises(DeadlineExceededError):
            self._solve(mna, deadline_s=60.0, checkpoint_path=path)
        monkeypatch.undo()
        assert path.exists()
        resumed = self._solve(mna, resume_from=str(path))
        np.testing.assert_array_equal(resumed.states, reference.states)

    def test_pss_rejects_foreign_checkpoint(self, diode_rectifier):
        mna = diode_rectifier.compile()
        foreign = SolveCheckpoint(
            fingerprint="0" * 64,
            stage="collocation",
            iterate=np.zeros(41 * mna.n_unknowns),
        )
        with pytest.raises(CheckpointError, match="fingerprint mismatch"):
            self._solve(mna, resume_from=foreign)


class TestTwoToneHBResume:
    def _solve(self, mixer, **kwargs):
        return two_tone_harmonic_balance(
            mixer.circuit.compile(),
            mixer.scales,
            n_harmonics_fast=2,
            n_harmonics_slow=2,
            **kwargs,
        )

    def test_deadline_split_hb_is_bitwise(self, scaled_switching_mixer, counting_deadline):
        counting_deadline.budget = 10**9  # reference runs uninterrupted
        reference = self._solve(scaled_switching_mixer)
        counting_deadline.budget = 2
        with pytest.raises(DeadlineExceededError) as info:
            self._solve(scaled_switching_mixer, deadline_s=60.0)
        checkpoint = info.value.checkpoint
        assert checkpoint is not None
        counting_deadline.budget = 10**9
        resumed = self._solve(scaled_switching_mixer, resume_from=checkpoint)
        np.testing.assert_array_equal(resumed.mpde.states, reference.mpde.states)
