"""Property-based tests (hypothesis) for the core invariants of the library.

The single most important invariant of the paper's construction is the
diagonal property ``b(t) == b_hat(t, t)`` — it is what guarantees that the
multi-time solution solves the original circuit equations.  These tests
exercise it (and a handful of other structural invariants) over randomly
drawn parameters rather than hand-picked examples.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Circuit
from repro.circuits.devices import Diode, DiodeParams, MOSFETParams, NMOS, VoltageSource
from repro.core import ShearedTimeScales
from repro.linalg import (
    periodic_backward_difference,
    periodic_bdf2_difference,
    periodic_central_difference,
)
from repro.signals import (
    BitStreamEnvelope,
    BivariateWaveform,
    DCStimulus,
    ModulatedCarrierStimulus,
    SinusoidStimulus,
    SumStimulus,
    Waveform,
    prbs_bits,
)

# Shared strategies -----------------------------------------------------------

frequencies = st.floats(min_value=1e5, max_value=1e10, allow_nan=False, allow_infinity=False)
ratios = st.floats(min_value=1e-4, max_value=0.04)
amplitudes = st.floats(min_value=0.01, max_value=10.0)
phases = st.floats(min_value=-np.pi, max_value=np.pi)
lo_multiples = st.integers(min_value=1, max_value=3)


def _scales(f1: float, ratio: float, k: int, above: bool) -> ShearedTimeScales:
    fd = ratio * f1
    f2 = k * f1 + fd if above else k * f1 - fd
    return ShearedTimeScales.from_frequencies(f1, f2, lo_multiple=k)


class TestDiagonalProperty:
    @settings(max_examples=60, deadline=None)
    @given(
        f1=frequencies,
        ratio=ratios,
        k=lo_multiples,
        above=st.booleans(),
        amplitude=amplitudes,
        phase=phases,
    )
    def test_modulated_carrier(self, f1, ratio, k, above, amplitude, phase):
        scales = _scales(f1, ratio, k, above)
        stim = ModulatedCarrierStimulus(amplitude, scales.carrier_frequency, phase=phase)
        t = np.linspace(0.0, 3.0 / f1, 64)
        np.testing.assert_allclose(
            stim.bivariate_value(t, t, scales), stim.value(t), rtol=1e-9, atol=1e-9 * amplitude
        )

    @settings(max_examples=60, deadline=None)
    @given(
        f1=frequencies,
        ratio=ratios,
        k=lo_multiples,
        amplitude=amplitudes,
        phase=phases,
        harmonic=st.integers(min_value=1, max_value=4),
    )
    def test_lo_harmonics(self, f1, ratio, k, amplitude, phase, harmonic):
        scales = _scales(f1, ratio, k, False)
        stim = SinusoidStimulus(amplitude, harmonic * f1, phase=phase)
        t = np.linspace(0.0, 2.5 / f1, 48)
        np.testing.assert_allclose(
            stim.bivariate_value(t, t, scales), stim.value(t), rtol=1e-9, atol=1e-9 * amplitude
        )

    @settings(max_examples=40, deadline=None)
    @given(
        f1=frequencies,
        ratio=ratios,
        amplitude=amplitudes,
        bias=st.floats(min_value=-5.0, max_value=5.0),
        n_bits=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=1, max_value=2**20),
    )
    def test_bit_stream_modulated_sum(self, f1, ratio, amplitude, bias, n_bits, seed):
        scales = _scales(f1, ratio, 1, False)
        envelope = BitStreamEnvelope(
            prbs_bits(7, n_bits, seed=seed),
            bit_period=scales.difference_period / n_bits,
            rise_fraction=0.05,
        )
        stim = SumStimulus(
            (
                DCStimulus(bias),
                ModulatedCarrierStimulus(amplitude, scales.carrier_frequency, envelope=envelope),
            )
        )
        t = np.linspace(0.0, scales.difference_period, 80)
        np.testing.assert_allclose(
            stim.bivariate_value(t, t, scales),
            stim.value(t),
            rtol=1e-9,
            atol=1e-9 * (abs(bias) + amplitude),
        )

    @settings(max_examples=60, deadline=None)
    @given(f1=frequencies, ratio=ratios, k=lo_multiples, above=st.booleans())
    def test_carrier_phase_identity(self, f1, ratio, k, above):
        """carrier_phase(t, t) * 2*pi is the physical carrier phase (Eq. 11/13)."""
        scales = _scales(f1, ratio, k, above)
        t = np.linspace(0.0, 5.0 / f1, 50)
        np.testing.assert_allclose(
            scales.carrier_phase(t, t),
            scales.carrier_frequency * t,
            rtol=1e-12,
            atol=1e-12,
        )


class TestPeriodicOperators:
    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=4, max_value=96),
        period=st.floats(min_value=1e-9, max_value=1e3),
        builder_index=st.integers(min_value=0, max_value=2),
    )
    def test_derivative_of_constant_vanishes(self, n, period, builder_index):
        builder = [
            periodic_backward_difference,
            periodic_bdf2_difference,
            periodic_central_difference,
        ][builder_index]
        matrix = builder(n, period)
        result = np.asarray(matrix @ np.full(n, 3.7)).ravel()
        np.testing.assert_allclose(result, 0.0, atol=1e-6 / period)

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=8, max_value=64),
        period=st.floats(min_value=1e-6, max_value=1e3),
    )
    def test_periodic_derivative_has_zero_mean(self, n, period):
        """The mean of the derivative of any periodic sample vector is zero (telescoping)."""
        rng = np.random.default_rng(7)
        samples = rng.normal(size=n)
        for builder in (periodic_backward_difference, periodic_bdf2_difference):
            derivative = np.asarray(builder(n, period) @ samples).ravel()
            assert abs(np.mean(derivative)) < 1e-6 * np.max(np.abs(derivative) + 1e-30)


class TestBivariateWaveformProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        n1=st.integers(min_value=4, max_value=24),
        n2=st.integers(min_value=4, max_value=24),
        shift1=st.integers(min_value=-3, max_value=3),
        shift2=st.integers(min_value=-3, max_value=3),
        u=st.floats(min_value=0.0, max_value=0.999),
        v=st.floats(min_value=0.0, max_value=0.999),
    )
    def test_interpolation_is_periodic(self, n1, n2, shift1, shift2, u, v):
        rng = np.random.default_rng(n1 * 100 + n2)
        surface = BivariateWaveform(rng.normal(size=(n1, n2)), 1e-9, 1e-4)
        t1 = u * surface.period1
        t2 = v * surface.period2
        base = surface(t1, t2)
        shifted = surface(t1 + shift1 * surface.period1, t2 + shift2 * surface.period2)
        assert shifted == pytest.approx(base, rel=1e-9, abs=1e-12)

    @settings(max_examples=30, deadline=None)
    @given(
        n1=st.integers(min_value=4, max_value=16),
        n2=st.integers(min_value=4, max_value=16),
        offset=st.floats(min_value=-10, max_value=10),
    )
    def test_envelope_mean_shifts_with_offset(self, n1, n2, offset):
        rng = np.random.default_rng(n1 * 31 + n2)
        values = rng.normal(size=(n1, n2))
        base = BivariateWaveform(values, 1.0, 2.0).envelope_mean()
        shifted = BivariateWaveform(values + offset, 1.0, 2.0).envelope_mean()
        np.testing.assert_allclose(shifted.values, base.values + offset, atol=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(
        n1=st.integers(min_value=4, max_value=16),
        n2=st.integers(min_value=4, max_value=16),
    )
    def test_envelope_ordering(self, n1, n2):
        rng = np.random.default_rng(n1 * 7 + n2)
        surface = BivariateWaveform(rng.normal(size=(n1, n2)), 1.0, 2.0)
        lower = surface.envelope_min().values
        mean = surface.envelope_mean().values
        upper = surface.envelope_max().values
        assert np.all(lower <= mean + 1e-12)
        assert np.all(mean <= upper + 1e-12)


class TestDeviceJacobians:
    @settings(max_examples=40, deadline=None)
    @given(
        vd=st.floats(min_value=-3.0, max_value=0.78),
        isat=st.floats(min_value=1e-16, max_value=1e-10),
        cj0=st.floats(min_value=0.0, max_value=1e-11),
    )
    def test_diode_conductance_matches_finite_difference(self, vd, isat, cj0):
        ckt = Circuit("probe")
        ckt.add(VoltageSource("v1", "a", ckt.GROUND, DCStimulus(vd)))
        ckt.add(Diode("d1", "a", ckt.GROUND, DiodeParams(saturation_current=isat, junction_capacitance=cj0)))
        mna = ckt.compile()
        x = np.array([vd, 0.0])
        idx = mna.node_index("a")
        h = 1e-7
        xp, xm = x.copy(), x.copy()
        xp[idx] += h
        xm[idx] -= h
        fd = (mna.f(xp)[idx] - mna.f(xm)[idx]) / (2 * h)
        analytic = mna.conductance_matrix(x)[idx, idx]
        assert analytic == pytest.approx(fd, rel=1e-4, abs=1e-12)

    @settings(max_examples=40, deadline=None)
    @given(
        vg=st.floats(min_value=0.0, max_value=3.0),
        vd=st.floats(min_value=-1.0, max_value=3.0),
        vs=st.floats(min_value=0.0, max_value=1.0),
        vto=st.floats(min_value=0.3, max_value=1.0),
    )
    def test_mosfet_current_is_continuous_and_jacobian_consistent(self, vg, vd, vs, vto):
        params = MOSFETParams(vto=vto, kp=150e-6, w=20e-6, l=1e-6, lambda_=0.03)
        ckt = Circuit("probe")
        ckt.add(VoltageSource("vgate", "g", ckt.GROUND, DCStimulus(vg)))
        ckt.add(VoltageSource("vdrain", "d", ckt.GROUND, DCStimulus(vd)))
        ckt.add(VoltageSource("vsource", "s", ckt.GROUND, DCStimulus(vs)))
        ckt.add(NMOS("m1", "d", "g", "s", params=params))
        mna = ckt.compile()
        x = np.zeros(mna.n_unknowns)
        x[mna.node_index("g")] = vg
        x[mna.node_index("d")] = vd
        x[mna.node_index("s")] = vs
        d_idx = mna.node_index("d")
        # Finite-difference check of d(Id)/d(vd); skip points too close to a
        # region boundary where the one-sided derivative genuinely jumps.
        h = 1e-6
        vgst = vg - vs - vto
        if abs((vd - vs) - vgst) < 1e-4 or abs(vd - vs) < 1e-4 or abs(vgst) < 1e-4:
            return
        xp, xm = x.copy(), x.copy()
        xp[d_idx] += h
        xm[d_idx] -= h
        fd = (mna.f(xp)[d_idx] - mna.f(xm)[d_idx]) / (2 * h)
        analytic = mna.conductance_matrix(x)[d_idx, d_idx]
        assert analytic == pytest.approx(fd, rel=1e-3, abs=1e-9)


class TestPRBSProperties:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=1, max_value=2**20))
    def test_prbs7_balance_and_period(self, seed):
        bits = prbs_bits(7, 254, seed=seed)
        assert bits[:127].sum() == 64  # maximal-length property
        np.testing.assert_array_equal(bits[:127], bits[127:254])

    @settings(max_examples=20, deadline=None)
    @given(
        n_bits=st.integers(min_value=1, max_value=16),
        bit_period=st.floats(min_value=1e-9, max_value=1e-3),
        seed=st.integers(min_value=1, max_value=2**16),
    )
    def test_bit_envelope_periodicity(self, n_bits, bit_period, seed):
        env = BitStreamEnvelope(prbs_bits(9, n_bits, seed=seed), bit_period, rise_fraction=0.1)
        t = np.linspace(0.0, env.period, 37, endpoint=False)
        np.testing.assert_allclose(env(t), env(t + 2 * env.period), atol=1e-9)


class TestWaveformProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        scale=st.floats(min_value=0.01, max_value=100.0),
        offset=st.floats(min_value=-10.0, max_value=10.0),
    )
    def test_mean_and_rms_transformations(self, scale, offset):
        t = np.linspace(0.0, 1.0, 257)
        base = Waveform(t, np.sin(2 * np.pi * 5 * t))
        shifted = base * scale + offset
        assert shifted.mean() == pytest.approx(offset + scale * base.mean(), abs=1e-9)
        assert shifted.peak_to_peak() == pytest.approx(scale * base.peak_to_peak(), rel=1e-9)
