"""Tests for the solver resilience subsystem.

Every recovery-ladder rung, both watchdogs (per-solve deadlines and the
worker-pool reply timeout) and the structured failure diagnostics are
exercised here through the deterministic fault-injection registry
(:mod:`repro.resilience.faultinject`) — no reliance on rare real failures.

The ladder tests use a *count-walk*: each injected ``SingularMatrixError``
aborts exactly one solve attempt, so ``count=N`` deterministically selects
which rung recovers (count=1 fails only the baseline, count=2 also fails
the first rung, and so on).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.analysis import dc_operating_point
from repro.circuits import Circuit
from repro.circuits.devices import Capacitor, Resistor, VoltageSource
from repro.core import ShearedTimeScales, solve_mpde
from repro.linalg.krylov import gmres_solve
from repro.parallel import ShardedKernelPool, WorkerPoolError, detect_capabilities
from repro.resilience import (
    Deadline,
    FaultInjected,
    FaultSpec,
    active_fault_plan,
    build_profile_specs,
    classify_failure,
    fault_site,
    gmres_stall,
    inject_faults,
    nan_evaluation,
    singular_jacobian,
    worker_crash,
    worker_hang,
)
from repro.rf import balanced_lo_doubling_mixer
from repro.signals import ModulatedCarrierStimulus, SinusoidStimulus, SumStimulus
from repro.utils import (
    ConfigurationError,
    ConvergenceError,
    DeadlineExceededError,
    EvaluationOptions,
    GMRESStagnationError,
    MPDEOptions,
    NewtonOptions,
    RecoveryPolicy,
    RestartPolicy,
    SingularMatrixError,
)

pytestmark = pytest.mark.no_fault_injection


def _linear_rc():
    """A linear two-tone RC filter: converges in 2-3 Newton iterations.

    Because the circuit is linear, *any* retry converges, so the fault
    count alone decides which ladder rung ends up recovering the solve.
    """
    scales = ShearedTimeScales.from_frequencies(1e6, 1e6 - 10e3)
    ckt = Circuit("two-tone rc")
    drive = SumStimulus(
        (
            SinusoidStimulus(1.0, 1e6),
            ModulatedCarrierStimulus(0.5, scales.carrier_frequency),
        )
    )
    ckt.add(VoltageSource("vin", "in", ckt.GROUND, drive))
    ckt.add(Resistor("r1", "in", "out", 1e3))
    ckt.add(Capacitor("c1", "out", ckt.GROUND, 50e-9))
    return ckt.compile(), scales


def _solve_rc(count=None, spec=None, **option_overrides):
    mna, scales = _linear_rc()
    options = MPDEOptions(n_fast=8, n_slow=8, **option_overrides)
    if spec is None and count is not None:
        spec = singular_jacobian(count=count)
    if spec is not None:
        with inject_faults(spec):
            return solve_mpde(mna, scales, options)
    return solve_mpde(mna, scales, options)


def _trace(result):
    return [(a.rung, a.outcome) for a in result.stats.recovery_trace]


# ---------------------------------------------------------------------------
# Deadline
# ---------------------------------------------------------------------------


class TestDeadline:
    def test_infinite_deadline_is_a_noop(self):
        deadline = Deadline(None)
        assert deadline.remaining() == float("inf")
        assert not deadline.expired()
        deadline.check("newton")  # must not raise

    def test_expiry_with_injected_clock(self):
        now = [100.0]
        deadline = Deadline(5.0, clock=lambda: now[0])
        assert deadline.remaining() == pytest.approx(5.0)
        assert not deadline.expired()
        now[0] += 4.0
        deadline.check("newton")
        now[0] += 2.0
        assert deadline.expired()
        assert deadline.remaining() == pytest.approx(-1.0)
        with pytest.raises(DeadlineExceededError) as info:
            deadline.check("gmres", partial_stats={"newton_iterations": 3})
        exc = info.value
        assert exc.stage == "gmres"
        assert exc.deadline_s == pytest.approx(5.0)
        assert exc.elapsed_s == pytest.approx(6.0)
        assert exc.partial_stats == {"newton_iterations": 3}
        assert "gmres" in str(exc)


# ---------------------------------------------------------------------------
# Failure taxonomy
# ---------------------------------------------------------------------------


class TestClassifyFailure:
    def test_known_exception_kinds(self):
        assert classify_failure(ConvergenceError("x")) == "divergence"
        assert classify_failure(SingularMatrixError("x")) == "singular"
        assert classify_failure(GMRESStagnationError("x")) == "gmres_stagnation"
        assert classify_failure(DeadlineExceededError("x")) == "deadline"
        assert classify_failure(WorkerPoolError("x")) == "worker_pool"
        assert classify_failure(OverflowError("x")) == "non_finite"
        assert classify_failure(FaultInjected("x")) == "unknown"
        assert classify_failure(RuntimeError("x")) == "unknown"

    def test_stagnation_stays_catchable_as_singular(self):
        """Existing ``except SingularMatrixError`` handlers must keep working."""
        assert issubclass(GMRESStagnationError, SingularMatrixError)
        # ...but classification is by the most specific type first.
        assert classify_failure(GMRESStagnationError("x")) == "gmres_stagnation"


# ---------------------------------------------------------------------------
# Fault-injection registry
# ---------------------------------------------------------------------------


class TestFaultInjection:
    def test_no_plan_is_a_noop(self):
        assert active_fault_plan() is None
        fault_site("solver.linear_solve", iteration=0)  # must not raise

    def test_count_caps_firings(self):
        fired = []
        spec = FaultSpec(site="s", action=lambda ctx: fired.append(ctx), count=2)
        with inject_faults(spec):
            for i in range(5):
                fault_site("s", i=i)
        assert [ctx["i"] for ctx in fired] == [0, 1]
        assert spec.calls == 5 and spec.fired == 2

    def test_at_call_delays_the_first_firing(self):
        fired = []
        spec = FaultSpec(
            site="s", action=lambda ctx: fired.append(ctx["i"]), at_call=3, count=None
        )
        with inject_faults(spec):
            for i in range(5):
                fault_site("s", i=i)
        assert fired == [2, 3, 4]

    def test_predicate_rejections_do_not_advance_calls(self):
        spec = FaultSpec(
            site="s",
            action=lambda ctx: None,
            at_call=2,
            predicate=lambda ctx: ctx["i"] % 2 == 0,
        )
        with inject_faults(spec):
            for i in range(4):  # matching visits: i=0, i=2
                fault_site("s", i=i)
        assert spec.calls == 2 and spec.fired == 1

    def test_plans_replace_and_restore(self):
        outer = FaultSpec(site="s", action=lambda ctx: None, count=None)
        inner = FaultSpec(site="s", action=lambda ctx: None, count=None)
        with inject_faults(outer) as outer_plan:
            fault_site("s")
            with inject_faults(inner) as inner_plan:
                assert active_fault_plan() is inner_plan
                fault_site("s")
            assert active_fault_plan() is outer_plan
            fault_site("s")
        assert active_fault_plan() is None
        assert outer.fired == 2 and inner.fired == 1

    def test_build_profile_specs_known_profiles(self):
        specs = build_profile_specs("worker_crash, gmres_stall,singular_jacobian")
        assert [s.site for s in specs] == [
            "worker.eval",
            "solver.gmres",
            "solver.linear_solve",
        ]
        # Fresh objects with zeroed counters on every call.
        again = build_profile_specs("worker_crash")
        assert again[0] is not specs[0]
        assert again[0].calls == 0 and again[0].fired == 0

    def test_build_profile_specs_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="unknown fault profile"):
            build_profile_specs("worker_crash,typo_profile")
        assert build_profile_specs("") == ()

    def test_build_profile_specs_worker_hang(self):
        (spec,) = build_profile_specs("worker_hang")
        assert spec.site == "worker.eval"
        assert spec.count == 1

    def test_threaded_visits_keep_counters_exact(self):
        """Regression: ``calls``/``fired`` raced under concurrent visits.

        Eager harmonic factorisation drives the ``preconditioner.build``
        site from concurrent ``WorkerPool`` threads; before the per-spec
        lock, the unsynchronised ``+=`` bookkeeping could lose visits or
        fire a ``count``-capped fault more than ``count`` times.
        """
        import sys
        import threading

        n_threads, visits_each, cap = 16, 400, 7
        fired: list[int] = []
        spec = FaultSpec(
            site="s",
            action=lambda ctx: fired.append(ctx["t"]),
            at_call=3,
            count=cap,
        )
        barrier = threading.Barrier(n_threads)

        def visit_many(t: int) -> None:
            barrier.wait()
            for _ in range(visits_each):
                fault_site("s", t=t)

        old_interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-6)  # maximise preemption between bytecodes
        try:
            with inject_faults(spec):
                threads = [
                    threading.Thread(target=visit_many, args=(t,))
                    for t in range(n_threads)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
        finally:
            sys.setswitchinterval(old_interval)
        assert spec.calls == n_threads * visits_each
        assert spec.fired == cap
        assert len(fired) == cap


# ---------------------------------------------------------------------------
# GMRES stagnation detector
# ---------------------------------------------------------------------------

_IDENTITY_40 = spla.LinearOperator((40, 40), matvec=lambda v: v, dtype=float)


class TestGMRESStagnation:
    """Stuck (no progress over a restart cycle) vs merely slow solves."""

    def _permutation_system(self):
        # GMRES on a cyclic permutation matrix with rhs = e1 makes *zero*
        # residual progress until the full Krylov space is built: the
        # canonical stuck solve.
        n = 40
        matrix = sp.eye(n, format="csr")[list(range(1, n)) + [0], :]
        rhs = np.zeros(n)
        rhs[0] = 1.0
        return matrix, rhs

    def test_stuck_solve_is_flagged_stagnated(self):
        matrix, rhs = self._permutation_system()
        _, report = gmres_solve(
            matrix, rhs, preconditioner=_IDENTITY_40, restart=10, maxiter=3,
            raise_on_failure=False,
        )
        assert not report.converged
        assert report.stagnated

    def test_stuck_solve_raises_stagnation_error(self):
        matrix, rhs = self._permutation_system()
        with pytest.raises(GMRESStagnationError, match="stagnated"):
            gmres_solve(matrix, rhs, preconditioner=_IDENTITY_40, restart=10, maxiter=3)

    def test_slow_but_progressing_solve_is_not_stagnated(self):
        # A spread-spectrum diagonal under an impossible tolerance: the
        # solve fails by budget but the residual keeps shrinking.
        matrix = sp.diags(np.logspace(0, 6, 40)).tocsr()
        rhs = np.ones(40)
        _, report = gmres_solve(
            matrix, rhs, preconditioner=_IDENTITY_40, restart=10, maxiter=3,
            tol=1e-30, raise_on_failure=False,
        )
        assert not report.converged
        assert not report.stagnated

    def test_short_solve_never_counts_as_stagnated(self):
        # A flat residual over no more than one restart cycle is "slow",
        # not "stuck": the detector needs a full cycle of history *beyond*
        # the comparison point before it may flag stagnation.
        n = 100
        matrix = sp.eye(n, format="csr")[list(range(1, n)) + [0], :]
        rhs = np.zeros(n)
        rhs[0] = 1.0
        identity = spla.LinearOperator((n, n), matvec=lambda v: v, dtype=float)
        _, report = gmres_solve(
            matrix, rhs, preconditioner=identity, restart=80, maxiter=1,
            raise_on_failure=False,
        )
        assert not report.converged
        assert report.iterations == 80  # exactly one cycle of flat residual
        assert not report.stagnated

    def test_deadline_aborts_gmres_at_iteration_boundary(self):
        matrix = sp.diags(np.logspace(0, 6, 40)).tocsr()
        with pytest.raises(DeadlineExceededError) as info:
            gmres_solve(
                matrix,
                np.ones(40),
                preconditioner=_IDENTITY_40,
                deadline=Deadline(1e-12),
            )
        assert info.value.stage == "gmres"


# ---------------------------------------------------------------------------
# Recovery escalation ladder (MPDE solver)
# ---------------------------------------------------------------------------


class TestRecoveryLadder:
    def test_clean_solve_records_no_trace(self):
        result = _solve_rc()
        assert result.stats.converged
        assert result.stats.recovery_trace == []
        assert result.stats.recovered_by == ""

    def test_count1_recovers_via_newton_refresh(self):
        reference = _solve_rc()
        result = _solve_rc(count=1)
        assert result.stats.converged
        assert result.stats.recovered_by == "newton_refresh"
        assert _trace(result) == [("baseline", "failed"), ("newton_refresh", "recovered")]
        assert result.stats.recovery_trace[-1].trigger == "singular"
        np.testing.assert_allclose(
            result.bivariate("out").values, reference.bivariate("out").values, atol=1e-9
        )

    def test_count2_escalates_to_damping(self):
        result = _solve_rc(count=2)
        assert result.stats.recovered_by == "damping"
        assert _trace(result) == [
            ("baseline", "failed"),
            ("newton_refresh", "failed"),
            ("damping", "recovered"),
        ]
        assert "damping" in result.stats.recovery_trace[-1].detail

    def test_count3_escalates_to_continuation(self):
        result = _solve_rc(count=3)
        assert result.stats.recovered_by == "continuation"
        assert result.stats.used_continuation
        assert result.stats.continuation_steps >= 1
        # The direct solver has no preconditioner to downgrade: that rung
        # must be recorded as skipped, not silently dropped.
        assert ("preconditioner_downgrade", "skipped") in _trace(result)

    def test_count4_escalates_to_guess_retry(self):
        result = _solve_rc(count=4)
        assert result.stats.recovered_by == "guess_retry"
        assert _trace(result)[-1] == ("guess_retry", "recovered")
        assert "zero" in result.stats.recovery_trace[-1].detail

    def test_exhausted_ladder_raises_with_diagnostics(self):
        with pytest.raises(SingularMatrixError, match="injected") as info:
            _solve_rc(count=5)
        diagnostics = getattr(info.value, "diagnostics", None)
        assert diagnostics is not None
        assert diagnostics.failure_kind == "singular"
        assert diagnostics.dominant_unknowns  # localised to named unknowns

    def test_max_attempts_caps_the_ladder(self):
        # count=2 needs two executed rungs to recover; a budget of one
        # attempt must therefore fail even though the ladder could succeed.
        with pytest.raises(SingularMatrixError) as info:
            _solve_rc(count=2, recovery=RecoveryPolicy(max_attempts=1))
        assert "injected" in str(info.value)

    def test_disabled_recovery_restores_legacy_behaviour(self):
        with pytest.raises(SingularMatrixError, match="injected"):
            _solve_rc(count=1, recovery=RecoveryPolicy(enabled=False))

    def test_restricted_ladder_goes_straight_to_continuation(self):
        result = _solve_rc(count=1, recovery=RecoveryPolicy(ladder=("continuation",)))
        assert result.stats.recovered_by == "continuation"
        assert _trace(result) == [("baseline", "failed"), ("continuation", "recovered")]

    def test_inapplicable_rung_is_recorded_as_skipped(self):
        with pytest.raises(SingularMatrixError):
            _solve_rc(
                count=1,
                use_continuation=False,
                recovery=RecoveryPolicy(ladder=("continuation",)),
            )

    def test_divergence_skips_refresh_and_uses_damping_budget(self):
        # A divergence failure (not singular) must skip newton_refresh: a
        # cache refresh cannot help a solve that ran out of budget.
        diverge = FaultSpec(
            site="solver.linear_solve",
            action=lambda ctx: (_ for _ in ()).throw(
                ConvergenceError("injected divergence")
            ),
            count=1,
        )
        result = _solve_rc(
            spec=diverge,
            recovery=RecoveryPolicy(ladder=("newton_refresh", "damping")),
        )
        assert result.stats.recovered_by == "damping"
        assert _trace(result) == [
            ("baseline", "failed"),
            ("newton_refresh", "skipped"),
            ("damping", "recovered"),
        ]
        assert result.stats.recovery_trace[-1].trigger == "divergence"


class TestRecoveryLadderGMRES:
    def test_injected_stall_recovers_via_refresh(self):
        result = _solve_rc(
            spec=gmres_stall(site="solver.gmres", count=1),
            linear_solver="gmres",
        )
        assert result.stats.converged
        assert result.stats.recovered_by == "newton_refresh"
        trace = result.stats.recovery_trace
        assert trace[0].rung == "baseline"
        assert trace[-1].trigger == "gmres_stagnation"

    def test_broken_preconditioner_downgrades_one_step(self):
        broken = FaultSpec(
            site="preconditioner.build",
            action=lambda ctx: (_ for _ in ()).throw(
                SingularMatrixError("injected preconditioner build failure")
            ),
            predicate=lambda ctx: ctx.get("kind") == "block_circulant_fast",
            count=None,  # this mode is broken for the whole solve
        )
        result = _solve_rc(
            spec=broken,
            matrix_free=True,
            preconditioner="block_circulant_fast",
            recovery=RecoveryPolicy(ladder=("preconditioner_downgrade",)),
        )
        assert result.stats.recovered_by == "preconditioner_downgrade"
        assert result.stats.preconditioner_kind == "block_circulant"
        detail = result.stats.recovery_trace[-1].detail
        assert "block_circulant_fast -> block_circulant" in detail


class TestBalancedMixerAcceptance:
    """The ISSUE acceptance scenario: the paper's balanced mixer recovers
    from a Jacobian going singular at the third Newton iterate."""

    def test_singular_jacobian_at_iterate_2_recovers(self):
        mix = balanced_lo_doubling_mixer()
        options = MPDEOptions(n_fast=32, n_slow=24)
        with inject_faults(singular_jacobian(at_iteration=2, count=1)):
            result = solve_mpde(mix.compile(), mix.scales, options)
        stats = result.stats
        assert stats.converged
        assert stats.recovered_by != ""
        recovered = [a for a in stats.recovery_trace if a.outcome == "recovered"]
        assert len(recovered) == 1
        assert recovered[0].rung == stats.recovered_by
        assert stats.recovery_trace[0].rung == "baseline"
        assert stats.recovery_trace[0].outcome == "failed"
        # The recovered solution is physical: outputs inside the rails.
        outp = result.bivariate("outp")
        assert 0.0 < outp.values.min() and outp.values.max() < 3.0


# ---------------------------------------------------------------------------
# Per-solve deadlines (integration)
# ---------------------------------------------------------------------------


class TestSolveDeadlines:
    def test_mpde_deadline_carries_partial_stats(self):
        mna, scales = _linear_rc()
        with pytest.raises(DeadlineExceededError) as info:
            solve_mpde(mna, scales, MPDEOptions(n_fast=8, n_slow=8, deadline_s=1e-9))
        exc = info.value
        assert exc.partial_stats is not None
        assert exc.partial_stats.n_grid_points == 64
        assert not exc.partial_stats.converged
        assert exc.stage  # names the loop that observed the expiry

    def test_deadline_option_is_validated(self):
        with pytest.raises(ConfigurationError):
            MPDEOptions(deadline_s=0.0)
        with pytest.raises(ConfigurationError):
            MPDEOptions(deadline_s=-1.0)

    def test_dc_deadline_checked_between_strategies(self, nmos_amplifier):
        mna = nmos_amplifier.compile()
        # Force plain Newton to fail so the analysis reaches the first
        # between-strategy deadline checkpoint.
        with inject_faults(singular_jacobian(site="newton.linear_solve", count=1)):
            with pytest.raises(DeadlineExceededError) as info:
                dc_operating_point(mna, deadline_s=1e-9)
        assert "gmin" in info.value.stage


# ---------------------------------------------------------------------------
# DC analysis resilience (satellite)
# ---------------------------------------------------------------------------


class TestDCRecovery:
    def test_gmin_stepping_recovers_from_singular_jacobian(self, nmos_amplifier):
        mna = nmos_amplifier.compile()
        reference = dc_operating_point(mna)
        with inject_faults(singular_jacobian(site="newton.linear_solve", count=1)):
            solution = dc_operating_point(mna)
        assert solution.strategy in ("gmin-stepping", "source-stepping")
        np.testing.assert_allclose(solution.x, reference.x, atol=1e-4)

    def test_terminal_dc_failure_carries_diagnostics(self, nmos_amplifier):
        mna = nmos_amplifier.compile()
        with inject_faults(
            singular_jacobian(site="newton.linear_solve", count=None)
        ):
            with pytest.raises(ConvergenceError, match="all diverged") as info:
                dc_operating_point(mna)
        diagnostics = getattr(info.value, "diagnostics", None)
        assert diagnostics is not None
        assert diagnostics.failure_kind == "divergence"
        assert diagnostics.dominant_unknowns
        assert "kind=divergence" in diagnostics.summary()


# ---------------------------------------------------------------------------
# Structured diagnostics
# ---------------------------------------------------------------------------


class TestFailureDiagnostics:
    def test_nan_poisoning_is_localised_to_named_unknowns(self):
        # Empty ladder: the poisoned baseline failure is terminal, and the
        # post-mortem re-evaluation sees the same NaN.
        with pytest.raises(SingularMatrixError) as info:
            _solve_rc(
                spec=nan_evaluation(count=None),
                initial_guess="zero",  # keep the DC guess solve out of the blast radius
                recovery=RecoveryPolicy(ladder=()),
                use_continuation=False,
            )
        diagnostics = getattr(info.value, "diagnostics", None)
        assert diagnostics is not None
        assert diagnostics.non_finite_unknowns
        names = [name for name, _hits in diagnostics.non_finite_unknowns]
        mna, _scales = _linear_rc()
        assert set(names) <= set(mna.unknown_names)
        assert diagnostics.suspect_devices  # mapped back to device instances
        assert "non-finite at" in diagnostics.summary()
        assert diagnostics.grid_shape == (64, 3)

    def test_residual_row_owners_names_stamping_devices(self):
        mna, _scales = _linear_rc()
        owners = mna.residual_row_owners()
        assert len(owners) == mna.n_unknowns
        out_row = mna.unknown_names.index("v(out)")
        assert {"r1", "c1"} <= set(owners[out_row])


# ---------------------------------------------------------------------------
# Worker-pool watchdogs (satellite)
# ---------------------------------------------------------------------------

_fork_only = pytest.mark.skipif(
    not detect_capabilities().fork_available,
    reason="process sharding requires the 'fork' start method",
)


@_fork_only
class TestWorkerWatchdogs:
    def _pool(self, mna, **kwargs):
        return ShardedKernelPool(
            mna.engine,
            n_unknowns=mna.n_unknowns,
            nnz_dynamic=mna.dynamic_pattern.nnz,
            nnz_static=mna.static_pattern.nnz,
            n_workers=2,
            **kwargs,
        )

    def test_hung_worker_times_out_and_pool_tears_down(self, rng):
        mna, _scales = _linear_rc()
        X = rng.normal(size=(20, mna.n_unknowns))
        start = time.monotonic()
        # The plan must be armed before the pool forks: children inherit
        # the module-global registry at fork time.
        with inject_faults(worker_hang(hang_s=60.0, count=None)):
            pool = self._pool(mna, reply_timeout_s=0.5)
            processes = [process for process, _conn in pool._workers]
            with pytest.raises(WorkerPoolError, match="timed out"):
                pool.evaluate(X)
        assert time.monotonic() - start < 30.0  # watchdog, not the 60 s hang
        # Tear-down escalation must reap every child and release the
        # shared-memory buffers: no zombies, no shm leaks.
        assert not pool.alive
        assert pool._workers == []
        assert pool._buffers == {}
        for process in processes:
            try:
                assert not process.is_alive()
            except ValueError:
                pass  # process object already closed: reaped, by definition

    def test_crashed_worker_surfaces_as_pool_error(self, rng):
        mna, _scales = _linear_rc()
        with inject_faults(worker_crash(count=1)):
            pool = self._pool(mna)
            try:
                with pytest.raises(WorkerPoolError):
                    pool.evaluate(rng.normal(size=(20, mna.n_unknowns)))
            finally:
                pool.close()
        assert pool._workers == [] and pool._buffers == {}

    def test_worker_crash_falls_back_to_correct_serial_result(self, rng):
        serial = _linear_rc()[0]
        # max_restarts=0 pins the sticky serial degradation this test is
        # about; with restart budget the crash would *heal* and clear the
        # fallback reason (covered by test_selfhealing.py).
        sharded = serial.circuit.compile(
            EvaluationOptions(
                kernel_backend="sharded",
                n_workers=2,
                restart=RestartPolicy(max_restarts=0),
            )
        )
        try:
            X = rng.normal(size=(20, serial.n_unknowns))
            reference = serial.evaluate_sparse(X)
            with inject_faults(worker_crash(count=1)):
                result = sharded.evaluate_sparse(X)  # must not raise
            np.testing.assert_array_equal(result.f, reference.f)
            np.testing.assert_array_equal(result.q, reference.q)
            assert sharded.parallel_fallback_reason != ""
            # The degradation is sticky and stays correct.
            again = sharded.evaluate_sparse(X)
            np.testing.assert_array_equal(again.f, reference.f)
        finally:
            sharded.close()

    def test_hung_worker_resolves_to_serial_result_within_timeout(self, rng):
        serial = _linear_rc()[0]
        sharded = serial.circuit.compile(
            EvaluationOptions(
                kernel_backend="sharded",
                n_workers=2,
                worker_timeout_s=0.5,
                # Sticky watchdog fallback, without the supervised restarts
                # re-hitting the infinite hang (count=None) first.
                restart=RestartPolicy(max_restarts=0),
            )
        )
        try:
            X = rng.normal(size=(20, serial.n_unknowns))
            reference = serial.evaluate_sparse(X)
            start = time.monotonic()
            with inject_faults(worker_hang(hang_s=60.0, count=None)):
                result = sharded.evaluate_sparse(X)  # watchdog + serial retry
            assert time.monotonic() - start < 30.0
            np.testing.assert_array_equal(result.f, reference.f)
            np.testing.assert_array_equal(result.q, reference.q)
            assert "timed out" in sharded.parallel_fallback_reason
        finally:
            sharded.close()


# ---------------------------------------------------------------------------
# Policy plumbing
# ---------------------------------------------------------------------------


class TestRecoveryPolicyOptions:
    def test_ladder_entries_are_validated(self):
        with pytest.raises(ConfigurationError):
            RecoveryPolicy(ladder=("not_a_rung",))
        with pytest.raises(ConfigurationError):
            RecoveryPolicy(ladder=("damping", "damping"))

    def test_numeric_knobs_are_validated(self):
        with pytest.raises(ConfigurationError):
            RecoveryPolicy(damping_factor=1.0)
        with pytest.raises(ConfigurationError):
            RecoveryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RecoveryPolicy(guess_modes=("warp",))

    def test_with_returns_modified_copy(self):
        policy = RecoveryPolicy()
        tightened = policy.with_(max_attempts=2, ladder=("damping",))
        assert tightened.max_attempts == 2
        assert tightened.ladder == ("damping",)
        assert policy.max_attempts == 8  # original untouched

    def test_mpde_options_reject_non_policy(self):
        with pytest.raises(ConfigurationError):
            MPDEOptions(recovery="always")
