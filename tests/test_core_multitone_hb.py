"""Tests for the two-tone harmonic-balance wrapper around the multi-time core."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ShearedTimeScales, two_tone_harmonic_balance
from repro.rf import difference_tone_amplitude, ideal_multiplier_mixer
from repro.signals import TonePair
from repro.utils import AnalysisError


@pytest.fixture(scope="module")
def ideal_mixer_hb():
    mix = ideal_multiplier_mixer(lo_frequency=1e6, difference_frequency=10e3)
    result = two_tone_harmonic_balance(
        mix.compile(), mix.scales, n_harmonics_fast=3, n_harmonics_slow=3
    )
    return mix, result


class TestIdealMixerMixingProducts:
    def test_difference_tone(self, ideal_mixer_hb):
        """The (0, 1) product is the difference tone with the closed-form amplitude."""
        mix, result = ideal_mixer_hb
        pair = TonePair.from_frequencies(mix.lo_frequency, mix.rf_frequency)
        expected = 1e3 * 1e-3 * difference_tone_amplitude(pair)
        measured = result.mixing_product_amplitude("out", 0, 1)
        assert measured == pytest.approx(expected, rel=1e-3)

    def test_sum_tone(self, ideal_mixer_hb):
        """The (2, -1) product is the sum frequency 2*f1 - fd = f1 + f2, also amplitude 1/2."""
        mix, result = ideal_mixer_hb
        measured = result.mixing_product_amplitude("out", 2, -1)
        assert measured == pytest.approx(0.5, rel=1e-3)

    def test_absent_products_are_tiny(self, ideal_mixer_hb):
        """An ideal multiplier produces only the sum and difference tones."""
        _, result = ideal_mixer_hb
        assert result.mixing_product_amplitude("out", 1, 0) < 1e-9
        assert result.mixing_product_amplitude("out", 0, 2) < 1e-9
        assert result.mixing_product_amplitude("out", 0, 0) < 1e-9

    def test_input_tones_appear_at_the_inputs(self, ideal_mixer_hb):
        mix, result = ideal_mixer_hb
        assert result.mixing_product_amplitude("lo", 1, 0) == pytest.approx(1.0, rel=1e-6)
        assert result.mixing_product_amplitude("rf", 1, -1) == pytest.approx(1.0, rel=1e-6)

    def test_truncation_bounds_enforced(self, ideal_mixer_hb):
        _, result = ideal_mixer_hb
        with pytest.raises(AnalysisError):
            result.mixing_product("out", 9, 0)

    def test_scales_passthrough(self, ideal_mixer_hb):
        mix, result = ideal_mixer_hb
        assert result.scales.difference_frequency == pytest.approx(10e3)


class TestArgumentValidation:
    def test_invalid_truncation(self):
        mix = ideal_multiplier_mixer(lo_frequency=1e6, difference_frequency=10e3)
        with pytest.raises(AnalysisError):
            two_tone_harmonic_balance(mix.compile(), mix.scales, n_harmonics_fast=0)
        with pytest.raises(AnalysisError):
            two_tone_harmonic_balance(mix.compile(), mix.scales, oversampling=1)

    def test_grid_follows_truncation(self):
        mix = ideal_multiplier_mixer(lo_frequency=1e6, difference_frequency=10e3)
        result = two_tone_harmonic_balance(
            mix.compile(), mix.scales, n_harmonics_fast=2, n_harmonics_slow=4, oversampling=2
        )
        assert result.mpde.grid.n_fast == 2 * (2 * 2 + 1)
        assert result.mpde.grid.n_slow == 2 * (2 * 4 + 1)
