"""Unit tests for independent and controlled sources."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.circuits.devices import VCCS, VCVS, CurrentSource, Resistor, VoltageSource
from repro.core import ShearedTimeScales
from repro.signals import DCStimulus, SinusoidStimulus
from repro.utils import DeviceError


class TestVoltageSource:
    def test_accepts_plain_number(self):
        src = VoltageSource("v1", "a", "0", 5.0)
        assert src.stimulus.value(0.0) == 5.0
        assert not src.is_time_varying()

    def test_rejects_garbage_stimulus(self):
        with pytest.raises(DeviceError):
            VoltageSource("v1", "a", "0", "5 volts")  # type: ignore[arg-type]

    def test_branch_equation_enforces_voltage(self):
        ckt = Circuit("t")
        ckt.add(VoltageSource("v1", "a", ckt.GROUND, DCStimulus(2.0)))
        ckt.add(Resistor("r1", "a", ckt.GROUND, 1.0))
        mna = ckt.compile()
        k = mna.branch_index("v1")
        ia = mna.node_index("a")
        x = np.zeros(mna.n_unknowns)
        x[ia] = 2.0
        residual = mna.f(x) + mna.source(0.0)
        # Branch row: v(a) - V = 0 satisfied.
        assert residual[k] == pytest.approx(0.0)
        # Node row: resistor current 2 A must be balanced by the branch current.
        assert residual[ia] == pytest.approx(2.0)  # branch current still zero in x

    def test_source_vector_sign_convention(self):
        ckt = Circuit("t")
        ckt.add(VoltageSource("v1", "a", ckt.GROUND, DCStimulus(3.0)))
        ckt.add(Resistor("r1", "a", ckt.GROUND, 1.0))
        mna = ckt.compile()
        b = mna.source(0.0)
        assert b[mna.branch_index("v1")] == pytest.approx(-3.0)

    def test_time_varying_source_vector(self):
        ckt = Circuit("t")
        ckt.add(VoltageSource("v1", "a", ckt.GROUND, SinusoidStimulus(1.0, 1e3)))
        ckt.add(Resistor("r1", "a", ckt.GROUND, 1.0))
        mna = ckt.compile()
        k = mna.branch_index("v1")
        times = np.array([0.0, 0.25e-3, 0.5e-3])
        b = mna.source(times)
        np.testing.assert_allclose(b[:, k], [-1.0, 0.0, 1.0], atol=1e-9)

    def test_bivariate_source_vector(self):
        scales = ShearedTimeScales.from_frequencies(1e6, 1e6 - 10e3)
        ckt = Circuit("t")
        ckt.add(VoltageSource("vlo", "a", ckt.GROUND, SinusoidStimulus(1.0, 1e6)))
        ckt.add(Resistor("r1", "a", ckt.GROUND, 1.0))
        mna = ckt.compile()
        k = mna.branch_index("vlo")
        b = mna.source_bivariate(0.0, 123.0e-6, scales)
        # The LO lives on the fast axis only: value at t1=0 is the peak.
        assert b[k] == pytest.approx(-1.0)


class TestCurrentSource:
    def test_dc_injection(self):
        ckt = Circuit("t")
        ckt.add(CurrentSource("i1", "a", ckt.GROUND, DCStimulus(2e-3)))
        ckt.add(Resistor("r1", "a", ckt.GROUND, 1e3))
        mna = ckt.compile()
        b = mna.source(0.0)
        assert b[mna.node_index("a")] == pytest.approx(2e-3)

    def test_no_branch_unknown(self):
        src = CurrentSource("i1", "a", "b", 1.0)
        assert src.n_branch_unknowns() == 0

    def test_dc_solution_with_current_source(self):
        from repro.analysis import dc_operating_point

        ckt = Circuit("t")
        ckt.add(CurrentSource("i1", ckt.GROUND, "a", DCStimulus(1e-3)))
        ckt.add(Resistor("r1", "a", ckt.GROUND, 1e3))
        mna = ckt.compile()
        solution = dc_operating_point(mna)
        # 1 mA pushed into node a through 1 kOhm -> +1 V.
        assert solution.voltage(mna, "a") == pytest.approx(1.0, rel=1e-6)


class TestControlledSources:
    def test_vccs_gain(self):
        from repro.analysis import dc_operating_point

        ckt = Circuit("t")
        ckt.add(VoltageSource("vc", "ctrl", ckt.GROUND, DCStimulus(0.5)))
        ckt.add(VCCS("g1", ckt.GROUND, "out", "ctrl", ckt.GROUND, transconductance=2e-3))
        ckt.add(Resistor("rl", "out", ckt.GROUND, 1e3))
        mna = ckt.compile()
        solution = dc_operating_point(mna)
        # i = gm * v_ctrl = 1 mA flows from ground through the source into 'out'.
        assert solution.voltage(mna, "out") == pytest.approx(1.0, rel=1e-6)

    def test_vcvs_gain(self):
        from repro.analysis import dc_operating_point

        ckt = Circuit("t")
        ckt.add(VoltageSource("vc", "ctrl", ckt.GROUND, DCStimulus(0.25)))
        ckt.add(VCVS("e1", "out", ckt.GROUND, "ctrl", ckt.GROUND, gain=8.0))
        ckt.add(Resistor("rl", "out", ckt.GROUND, 1e3))
        mna = ckt.compile()
        solution = dc_operating_point(mna)
        assert solution.voltage(mna, "out") == pytest.approx(2.0, rel=1e-6)

    def test_vcvs_has_branch_unknown(self):
        assert VCVS("e1", "a", "b", "c", "d", 1.0).n_branch_unknowns() == 1
        assert VCCS("g1", "a", "b", "c", "d", 1.0).n_branch_unknowns() == 0
