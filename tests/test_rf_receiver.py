"""Tests for the direct-conversion receiver wrapper and bit slicer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rf import DirectConversionReceiver, recover_bits
from repro.rf.receiver import BitRecovery
from repro.signals import Waveform
from repro.utils import AnalysisError


def _envelope_from_bits(bits, bit_period=1e-3, high=1.0, low=0.0, samples_per_bit=100):
    values = np.concatenate([[high if b else low] * samples_per_bit for b in bits]).astype(float)
    times = np.linspace(0, bit_period * len(bits), values.size)
    return Waveform(times, values)


class TestRecoverBits:
    def test_clean_pattern(self):
        env = _envelope_from_bits([1, 0, 1, 1])
        recovery = recover_bits(env, 4)
        assert recovery.bits == (1, 0, 1, 1)

    def test_inverted_levels(self):
        env = _envelope_from_bits([0, 1, 0, 0], high=0.1, low=0.4)
        recovery = recover_bits(env, 4)
        assert recovery.bits == (1, 0, 1, 1)  # slicing is relative to midrange

    def test_explicit_threshold(self):
        env = _envelope_from_bits([1, 0, 1, 1], high=1.0, low=0.0)
        recovery = recover_bits(env, 4, threshold=0.9)
        assert recovery.bits == (1, 0, 1, 1)
        assert recovery.threshold == pytest.approx(0.9)

    def test_samples_are_reported(self):
        env = _envelope_from_bits([1, 0])
        recovery = recover_bits(env, 2)
        assert len(recovery.samples) == 2
        assert recovery.samples[0] > recovery.samples[1]

    def test_validation(self):
        env = _envelope_from_bits([1, 0])
        with pytest.raises(AnalysisError):
            recover_bits(env, 0)


class TestBitRecoveryMatching:
    def test_exact_match(self):
        recovery = BitRecovery(bits=(1, 0, 1, 1), samples=(1, 0, 1, 1), threshold=0.5)
        assert recovery.matches((1, 0, 1, 1))

    def test_cyclic_match(self):
        recovery = BitRecovery(bits=(1, 1, 1, 0), samples=(1, 1, 1, 0), threshold=0.5)
        assert recovery.matches((1, 0, 1, 1))
        assert recovery.matches((0, 1, 1, 1))

    def test_mismatch(self):
        recovery = BitRecovery(bits=(1, 1, 0, 0), samples=(1, 1, 0, 0), threshold=0.5)
        assert not recovery.matches((1, 0, 1, 1))
        assert not recovery.matches((1, 1, 0))


class TestDirectConversionReceiver:
    def test_paper_receiver_construction(self):
        receiver = DirectConversionReceiver.paper_receiver()
        assert receiver.mixer.lo_frequency == pytest.approx(450e6)
        assert receiver.options.n_fast == 40
        assert receiver.transmitted_bits() == (1, 0, 1, 1)

    def test_transmitted_bits_requires_bit_stream(self):
        from repro.rf import balanced_lo_doubling_mixer
        from repro.utils import MPDEOptions

        mixer = balanced_lo_doubling_mixer(use_bit_stream=False)
        receiver = DirectConversionReceiver(mixer=mixer, options=MPDEOptions(n_fast=8, n_slow=8))
        with pytest.raises(AnalysisError):
            receiver.transmitted_bits()

    @pytest.mark.slow
    def test_end_to_end_bit_recovery(self):
        """Full pipeline on a reduced grid: the transmitted pattern is recovered."""
        receiver = DirectConversionReceiver.paper_receiver(
            bits=(1, 0, 1, 1), n_fast=24, n_slow=20
        )
        result, recovery = receiver.run()
        assert result.stats.converged
        assert recovery.matches((1, 0, 1, 1))
