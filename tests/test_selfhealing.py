"""Supervised self-healing of the forked worker pools (the PR-8 tentpole).

The contract under test (see ``src/repro/resilience/supervisor.py``):

* **Policy mechanics** — exponential backoff ``min(base * 2**(k-1), cap)``,
  a parity health-probe gating re-admission, restart/probe failures burning
  attempts, a per-pool-*lifetime* (never reset) attempt budget, and an
  already-disabled supervisor short-circuiting without recording events.
* **Crash-heal is invisible in the numbers** — a worker crash mid-solve
  heals through restart + probe and the solve still matches the serial
  reference *bit for bit*, with the heal recorded on
  ``MPDEStats.supervisor_trace`` and reported as
  ``"degraded (healing): ..."``.
* **Budget exhaustion is sticky** — only a spent
  :class:`~repro.utils.options.RestartPolicy` budget disables a parallel
  path permanently, reported as ``"disabled (budget exhausted): ..."``.
* **Reason lifecycle** (documented on
  ``MNASystem.parallel_fallback_reason``) — the MNA property carries
  *last-request* semantics (cleared by a later success), while
  ``MPDEStats.parallel_fallback_reason`` is *per-solve first-reason-wins*
  and resets on every solve.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core import solve_mpde
from repro.parallel import ResidentFactorPool, detect_capabilities
from repro.resilience import (
    FaultSpec,
    PoolSupervisor,
    RestartPolicy,
    inject_faults,
    worker_crash,
)
from repro.utils import ConfigurationError, EvaluationOptions, MPDEOptions

from test_resilience import _linear_rc

pytestmark = pytest.mark.no_fault_injection

_fork_only = pytest.mark.skipif(
    not detect_capabilities().fork_available,
    reason="worker pools require the 'fork' start method",
)

#: Fast-healing policy for the integration tests: real backoffs would only
#: slow the suite down without changing what is asserted.
_FAST_POLICY = RestartPolicy(max_restarts=2, backoff_base_s=0.001, backoff_cap_s=0.01)


def _make(policy, **kwargs):
    """A supervisor on a fake clock, with every backoff sleep recorded."""
    sleeps: list[float] = []
    now = [0.0]

    def clock() -> float:
        now[0] += 1.0
        return now[0]

    supervisor = PoolSupervisor(
        kwargs.pop("pool_name", "kernel_shard"),
        policy,
        clock=clock,
        sleep=sleeps.append,
    )
    return supervisor, sleeps


class TestRestartPolicy:
    def test_backoff_doubles_and_caps(self):
        policy = RestartPolicy(backoff_base_s=0.05, backoff_cap_s=0.4)
        assert [policy.backoff_s(k) for k in range(1, 6)] == [
            0.05,
            0.1,
            0.2,
            0.4,
            0.4,
        ]
        with pytest.raises(ValueError):
            policy.backoff_s(0)

    def test_knobs_are_validated(self):
        with pytest.raises(ConfigurationError):
            RestartPolicy(max_restarts=-1)
        with pytest.raises(ConfigurationError):
            RestartPolicy(backoff_base_s=-0.1)
        with pytest.raises(ConfigurationError):
            RestartPolicy(backoff_base_s=1.0, backoff_cap_s=0.5)
        with pytest.raises(ConfigurationError):
            EvaluationOptions(restart="never")
        with pytest.raises(ConfigurationError):
            MPDEOptions(restart="never")

    def test_with_returns_modified_copy(self):
        policy = RestartPolicy()
        relaxed = policy.with_(max_restarts=7)
        assert relaxed.max_restarts == 7
        assert policy.max_restarts == 2  # original untouched


class TestPoolSupervisorUnit:
    def test_heals_on_first_attempt(self):
        supervisor, sleeps = _make(RestartPolicy(backoff_base_s=0.01))
        restarted = []
        outcome = supervisor.handle_failure(
            "worker died", restart=lambda: restarted.append(True), probe=lambda: True
        )
        assert outcome is None
        assert restarted == [True]
        assert supervisor.heals == 1 and supervisor.attempts == 1
        assert not supervisor.exhausted
        assert [e.action for e in supervisor.trace] == [
            "failure",
            "backoff",
            "restarted",
            "probe_passed",
            "healed",
        ]
        healed = supervisor.trace[-1]
        assert healed.reason == "degraded (healing): worker died"
        assert sleeps == [0.01]

    def test_backoff_schedule_and_exhaustion(self):
        supervisor, sleeps = _make(
            RestartPolicy(max_restarts=5, backoff_base_s=0.01, backoff_cap_s=0.04)
        )
        reason = supervisor.handle_failure(
            "boom", restart=lambda: None, probe=lambda: False
        )
        assert sleeps == [0.01, 0.02, 0.04, 0.04, 0.04]
        assert supervisor.attempts == 5 and supervisor.heals == 0
        assert supervisor.exhausted
        assert reason.startswith("disabled (budget exhausted):")
        assert "after 5 restart(s)" in reason
        assert "parity probe mismatched" in reason
        assert supervisor.trace[-1].action == "disabled"
        assert supervisor.disabled_reason == reason

    def test_restart_exception_burns_the_attempt(self):
        supervisor, _sleeps = _make(RestartPolicy(max_restarts=2))
        calls = [0]

        def flaky_restart() -> None:
            calls[0] += 1
            if calls[0] == 1:
                raise OSError("fork refused")

        outcome = supervisor.handle_failure(
            "worker died", restart=flaky_restart, probe=lambda: True
        )
        assert outcome is None
        assert supervisor.attempts == 2 and supervisor.heals == 1
        failed = [e for e in supervisor.trace if e.action == "probe_failed"]
        assert len(failed) == 1
        assert "restart failed: OSError: fork refused" in failed[0].detail

    def test_raising_probe_burns_the_attempt(self):
        supervisor, _sleeps = _make(RestartPolicy(max_restarts=2))
        verdicts = iter([RuntimeError("probe blew up"), True])

        def probe():
            verdict = next(verdicts)
            if isinstance(verdict, Exception):
                raise verdict
            return verdict

        outcome = supervisor.handle_failure("boom", restart=lambda: None, probe=probe)
        assert outcome is None
        assert supervisor.attempts == 2 and supervisor.heals == 1
        failed = [e for e in supervisor.trace if e.action == "probe_failed"]
        assert "parity probe raised: RuntimeError: probe blew up" in failed[0].detail

    def test_probe_skipped_when_policy_disables_it(self):
        supervisor, _sleeps = _make(RestartPolicy(health_probe=False))
        outcome = supervisor.handle_failure(
            "boom", restart=lambda: None, probe=lambda: False  # would fail
        )
        assert outcome is None and supervisor.heals == 1
        assert not any("probe" in e.action for e in supervisor.trace)

    def test_zero_budget_restores_first_failure_disables(self):
        supervisor, sleeps = _make(RestartPolicy(max_restarts=0))
        reason = supervisor.handle_failure("boom", restart=lambda: None)
        assert reason.startswith("disabled (budget exhausted):")
        assert "after 0 restart(s)" in reason
        assert sleeps == []
        assert [e.action for e in supervisor.trace] == ["failure", "disabled"]

    def test_already_disabled_short_circuits_without_events(self):
        supervisor, _sleeps = _make(RestartPolicy(max_restarts=0))
        first = supervisor.handle_failure("boom", restart=lambda: None)
        recorded = len(supervisor.trace)
        again = supervisor.handle_failure("boom again", restart=lambda: None)
        assert again == first
        assert len(supervisor.trace) == recorded  # nothing new recorded

    def test_budget_is_per_lifetime_not_per_failure(self):
        """Two heals spend the whole budget; the third failure disables
        immediately — a flapping worker cannot grind a solve forever."""
        supervisor, sleeps = _make(RestartPolicy(max_restarts=2))
        assert supervisor.handle_failure("f1", restart=lambda: None) is None
        assert supervisor.handle_failure("f2", restart=lambda: None) is None
        assert supervisor.heals == 2 and supervisor.attempts == 2
        reason = supervisor.handle_failure("f3", restart=lambda: None)
        assert reason is not None and reason.startswith("disabled")
        assert len(sleeps) == 2  # no backoff was slept for the third failure


@_fork_only
class TestShardedHealing:
    """Kernel-shard pool: crash-heal and budget exhaustion, bit for bit."""

    def _sharded(self, serial, policy=_FAST_POLICY):
        return serial.circuit.compile(
            EvaluationOptions(kernel_backend="sharded", n_workers=2, restart=policy)
        )

    def test_crash_heals_and_evaluation_stays_bitwise(self, rng):
        serial = _linear_rc()[0]
        sharded = self._sharded(serial)
        try:
            X = rng.normal(size=(20, serial.n_unknowns))
            reference = serial.evaluate_sparse(X)
            with inject_faults(worker_crash(count=1)):
                result = sharded.evaluate_sparse(X)
            np.testing.assert_array_equal(result.f, reference.f)
            np.testing.assert_array_equal(result.q, reference.q)
            assert sharded.supervisor.heals == 1
            assert [e.action for e in sharded.supervisor.trace] == [
                "failure",
                "backoff",
                "restarted",
                "probe_passed",
                "healed",
            ]
            # The healed retry succeeded, so the last-request property is
            # clean and nothing is sticky: later evaluations stay sharded.
            assert sharded.parallel_fallback_reason == ""
            assert sharded.sharding_disabled_reason == ""
            again = sharded.evaluate_sparse(X)
            np.testing.assert_array_equal(again.f, reference.f)
            assert sharded.supervisor.heals == 1  # no further episodes
        finally:
            sharded.close()

    def test_solve_heals_and_records_supervisor_trace(self):
        mna, scales = _linear_rc()
        options = MPDEOptions(n_fast=8, n_slow=8)
        reference = solve_mpde(mna, scales, options)
        sharded = self._sharded(mna)
        try:
            with inject_faults(worker_crash(count=1)):
                result = solve_mpde(
                    sharded, scales, replace(options, parallel=True, n_workers=2)
                )
            np.testing.assert_array_equal(result.states, reference.states)
            trace = result.stats.supervisor_trace
            assert [e.action for e in trace].count("healed") == 1
            assert all(e.pool == "kernel_shard" for e in trace)
            assert result.stats.parallel_fallback_reason.startswith(
                "degraded (healing):"
            )
        finally:
            sharded.close()

    def test_exhausted_budget_disables_stickily(self, rng):
        serial = _linear_rc()[0]
        sharded = self._sharded(serial, RestartPolicy(max_restarts=0))
        try:
            X = rng.normal(size=(20, serial.n_unknowns))
            reference = serial.evaluate_sparse(X)
            with inject_faults(worker_crash(count=1)):
                result = sharded.evaluate_sparse(X)  # serial fallback
            np.testing.assert_array_equal(result.f, reference.f)
            assert sharded.sharding_disabled_reason.startswith(
                "disabled (budget exhausted):"
            )
            assert "after 0 restart(s)" in sharded.sharding_disabled_reason
            # Sticky: the next evaluation never re-enters the pool path, and
            # the per-request property keeps reporting the disable reason.
            again = sharded.evaluate_sparse(X)
            np.testing.assert_array_equal(again.f, reference.f)
            assert sharded.parallel_fallback_reason.startswith(
                "disabled (budget exhausted):"
            )
        finally:
            sharded.close()

    def test_exhausted_budget_reason_reaches_solve_stats(self):
        mna, scales = _linear_rc()
        options = MPDEOptions(n_fast=8, n_slow=8)
        reference = solve_mpde(mna, scales, options)
        sharded = self._sharded(mna, RestartPolicy(max_restarts=0))
        try:
            parallel = replace(options, parallel=True, n_workers=2)
            with inject_faults(worker_crash(count=1)):
                result = solve_mpde(sharded, scales, parallel)
            np.testing.assert_array_equal(result.states, reference.states)
            assert result.stats.parallel_fallback_reason.startswith(
                "disabled (budget exhausted):"
            )
            assert [e.action for e in result.stats.supervisor_trace] == [
                "failure",
                "disabled",
            ]
            # A later fault-free solve records *no* new supervisor events,
            # yet still reports the sticky disable on its fresh stats.
            again = solve_mpde(sharded, scales, parallel)
            np.testing.assert_array_equal(again.states, reference.states)
            assert again.stats.supervisor_trace == []
            assert again.stats.parallel_fallback_reason.startswith(
                "disabled (budget exhausted):"
            )
        finally:
            sharded.close()


@_fork_only
class TestFactorServiceHealing:
    """Resident factor service: heals counted apart from structure reforks."""

    _OPTIONS = MPDEOptions(
        n_fast=16,
        n_slow=8,
        matrix_free=True,
        preconditioner="block_circulant_fast",
    )

    def test_factor_crash_heals_and_solve_stays_bitwise(self, scaled_switching_mixer):
        mna = scaled_switching_mixer.compile()
        # ``n_workers`` pinned: opts out of the tier-1 reroute, inert serially.
        reference = solve_mpde(
            mna, scaled_switching_mixer.scales, replace(self._OPTIONS, n_workers=1)
        )
        with inject_faults(worker_crash(role="factor", count=1)):
            result = solve_mpde(
                mna,
                scaled_switching_mixer.scales,
                replace(
                    self._OPTIONS,
                    parallel=True,
                    n_workers=2,
                    factor_backend="resident",
                    worker_timeout_s=10.0,
                    restart=_FAST_POLICY,
                ),
            )
        np.testing.assert_array_equal(result.states, reference.states)
        healed = [e for e in result.stats.supervisor_trace if e.action == "healed"]
        assert len(healed) == 1
        assert healed[0].pool == "factor_service"
        assert result.stats.parallel_fallback_reason.startswith("degraded (healing):")

    def test_heals_counted_apart_from_structure_restarts(
        self, scaled_switching_mixer, rng
    ):
        """Satellite (a): ``.restarts`` counts structure reforks only; a
        supervised fault-recovery refork lands on ``.heals`` instead."""
        from test_parallel import _spectral_problem_data

        problem, evaluation = _spectral_problem_data(scaled_switching_mixer)
        reference = problem.build_preconditioner(
            "block_circulant_fast",
            c_data=evaluation.c_data,
            g_data=evaluation.g_data,
        )
        service = ResidentFactorPool(2, restart_policy=_FAST_POLICY)
        try:
            # Armed before the first configure forks the workers; the first
            # worker visit crashes, the supervised heal refactors in a fresh
            # generation and configure returns as if nothing happened.
            with inject_faults(worker_crash(role="factor", count=1)):
                resident = problem.build_preconditioner(
                    "block_circulant_fast",
                    c_data=evaluation.c_data,
                    g_data=evaluation.g_data,
                    factor_service=service,
                )
            assert service.restarts == 1  # the initial structural fork only
            assert service.heals == 1  # the crash recovery
            assert service.active and service.fallback_reason == ""
            vector = rng.normal(size=problem.n_total_unknowns)
            np.testing.assert_array_equal(
                resident.solve(vector), reference.solve(vector)
            )
        finally:
            service.close()

    def test_exhausted_budget_disables_service_and_falls_back(
        self, scaled_switching_mixer, rng
    ):
        from test_parallel import _spectral_problem_data

        problem, evaluation = _spectral_problem_data(scaled_switching_mixer)
        reference = problem.build_preconditioner(
            "block_circulant_fast",
            c_data=evaluation.c_data,
            g_data=evaluation.g_data,
        )
        service = ResidentFactorPool(2, restart_policy=RestartPolicy(max_restarts=0))
        try:
            with inject_faults(worker_crash(role="factor", count=1)):
                resident = problem.build_preconditioner(
                    "block_circulant_fast",
                    c_data=evaluation.c_data,
                    g_data=evaluation.g_data,
                    factor_service=service,
                )
            assert not service.active
            assert service.heals == 0
            assert service.fallback_reason.startswith("disabled (budget exhausted):")
            # The consumer finished its build on the in-process path and the
            # applies still match bit for bit.
            vector = rng.normal(size=problem.n_total_unknowns)
            np.testing.assert_array_equal(
                resident.solve(vector), reference.solve(vector)
            )
        finally:
            service.close()


@_fork_only
class TestReasonLifecycle:
    """Satellite (b): the documented two-tier reason semantics, pinned."""

    def test_mna_property_is_last_request_wins(self, rng):
        serial = _linear_rc()[0]
        sharded = serial.circuit.compile(
            EvaluationOptions(kernel_backend="sharded", n_workers=2)
        )
        try:
            X = rng.normal(size=(20, serial.n_unknowns))
            sharded.evaluate_sparse(X)
            assert sharded.parallel_fallback_reason == ""
            # A per-call serial override records its reason...
            sharded.evaluate_sparse(X, n_workers=1)
            assert "n_workers=1" in sharded.parallel_fallback_reason
            # ...and the next sharded success clears it again.
            sharded.evaluate_sparse(X)
            assert sharded.parallel_fallback_reason == ""
        finally:
            sharded.close()

    def test_stats_reason_is_per_solve_and_resets(self):
        mna, scales = _linear_rc()
        sharded = mna.circuit.compile(
            EvaluationOptions(kernel_backend="sharded", n_workers=2, restart=_FAST_POLICY)
        )
        try:
            options = MPDEOptions(n_fast=8, n_slow=8, parallel=True, n_workers=2)
            with inject_faults(worker_crash(count=1)):
                degraded = solve_mpde(sharded, scales, options)
            assert degraded.stats.parallel_fallback_reason.startswith(
                "degraded (healing):"
            )
            episodes = len(sharded.supervisor.trace)
            # The next solve starts with a clean per-solve reason even though
            # the supervisor's lifetime trace still holds the old episode.
            clean = solve_mpde(sharded, scales, options)
            assert clean.stats.parallel_fallback_reason == ""
            assert clean.stats.supervisor_trace == []
            assert len(sharded.supervisor.trace) == episodes
            np.testing.assert_array_equal(clean.states, degraded.states)
        finally:
            sharded.close()

    def test_first_reason_wins_across_both_pools(self, scaled_switching_mixer):
        """Crash both pools in one solve: the chronologically first healed
        episode's reason is the one the stats report."""
        mna = scaled_switching_mixer.compile(
            EvaluationOptions(kernel_backend="sharded", n_workers=2, restart=_FAST_POLICY)
        )
        try:
            options = MPDEOptions(
                n_fast=16,
                n_slow=8,
                matrix_free=True,
                preconditioner="block_circulant_fast",
                parallel=True,
                n_workers=2,
                factor_backend="resident",
                worker_timeout_s=10.0,
                restart=_FAST_POLICY,
            )
            with inject_faults(
                worker_crash(role="shard", count=1),
                worker_crash(role="factor", count=1),
            ):
                result = solve_mpde(mna, scaled_switching_mixer.scales, options)
            trace = result.stats.supervisor_trace
            assert {e.pool for e in trace} == {"kernel_shard", "factor_service"}
            assert sorted(e.at_s for e in trace) == [e.at_s for e in trace]
            first_reason = next(e.reason for e in trace if e.reason)
            assert result.stats.parallel_fallback_reason == first_reason
        finally:
            mna.close()
