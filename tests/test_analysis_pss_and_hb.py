"""Tests for collocation PSS and single-tone harmonic balance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    collocation_periodic_steady_state,
    harmonic_balance,
    shooting_periodic_steady_state,
)
from repro.circuits import Circuit
from repro.circuits.devices import (
    Capacitor,
    Diode,
    DiodeParams,
    PolynomialConductance,
    Resistor,
    VoltageSource,
)
from repro.signals import SinusoidStimulus, fourier_coefficient
from repro.utils import AnalysisError, HarmonicBalanceOptions, ShootingOptions


class TestCollocationLinear:
    freq = 1e3
    rc = 1e3 * 100e-9

    @pytest.mark.parametrize("method", ["backward-euler", "bdf2", "central", "fourier"])
    def test_rc_amplitude(self, rc_lowpass, method):
        mna = rc_lowpass.compile()
        n = 64 if method != "backward-euler" else 256
        result = collocation_periodic_steady_state(mna, 1.0 / self.freq, n, method=method)
        expected = 1.0 / np.sqrt(1.0 + (2 * np.pi * self.freq * self.rc) ** 2)
        amplitude = 2 * abs(fourier_coefficient(result.waveform("out"), self.freq))
        tolerance = 0.05 if method == "backward-euler" else 0.01
        assert amplitude == pytest.approx(expected, rel=tolerance)

    def test_fourier_is_spectrally_accurate_with_few_points(self, rc_lowpass):
        mna = rc_lowpass.compile()
        result = collocation_periodic_steady_state(mna, 1.0 / self.freq, 8, method="fourier")
        expected = 1.0 / np.sqrt(1.0 + (2 * np.pi * self.freq * self.rc) ** 2)
        amplitude = 2 * abs(fourier_coefficient(result.waveform("out"), self.freq))
        assert amplitude == pytest.approx(expected, rel=1e-6)

    def test_result_metadata(self, rc_lowpass):
        mna = rc_lowpass.compile()
        result = collocation_periodic_steady_state(mna, 1.0 / self.freq, 32)
        assert result.n_unknowns_total == 32 * mna.n_unknowns
        assert result.times.shape == (32,)
        assert result.states.shape == (32, mna.n_unknowns)

    def test_initial_guess_shapes(self, rc_lowpass):
        mna = rc_lowpass.compile()
        x_flat = np.zeros(mna.n_unknowns)
        result = collocation_periodic_steady_state(mna, 1.0 / self.freq, 16, x0=x_flat)
        assert result.states.shape == (16, mna.n_unknowns)
        with pytest.raises(AnalysisError):
            collocation_periodic_steady_state(mna, 1.0 / self.freq, 16, x0=np.zeros(7))

    def test_invalid_arguments(self, rc_lowpass):
        mna = rc_lowpass.compile()
        with pytest.raises(AnalysisError):
            collocation_periodic_steady_state(mna, -1.0, 16)
        with pytest.raises(AnalysisError):
            collocation_periodic_steady_state(mna, 1e-3, 2)
        with pytest.raises(AnalysisError):
            collocation_periodic_steady_state(mna, 1e-3, 16, method="magic")


class TestCollocationAgainstShooting:
    def test_rectifier_mean_output_agrees(self, diode_rectifier):
        mna = diode_rectifier.compile()
        period = 1e-3
        shooting = shooting_periodic_steady_state(
            mna, period, options=ShootingOptions(steps_per_period=200)
        )
        collocation = collocation_periodic_steady_state(mna, period, 200, method="bdf2")
        assert collocation.waveform("out").mean() == pytest.approx(
            shooting.waveform("out").mean(), rel=0.02
        )


class TestHarmonicBalance:
    def test_linear_rc_transfer(self, rc_lowpass):
        mna = rc_lowpass.compile()
        result = harmonic_balance(mna, 1e3, options=HarmonicBalanceOptions(harmonics=5))
        rc = 1e3 * 100e-9
        expected = 1.0 / np.sqrt(1.0 + (2 * np.pi * 1e3 * rc) ** 2)
        assert result.harmonic_amplitude("out", 1) == pytest.approx(expected, rel=1e-6)
        # A linear circuit generates no harmonics.
        assert result.harmonic_amplitude("out", 3) < 1e-9

    def test_polynomial_nonlinearity_harmonics(self):
        """A cubic conductance driven by a cosine has known harmonic ratios.

        i(v) = g1 v + g3 v^3 with v = A cos(wt) produces a third harmonic
        current of amplitude g3 A^3 / 4.  Driving a 1 Ohm load through a
        large resistor keeps the node voltage essentially equal to the
        source, so the current harmonics can be read from the resistor node.
        """
        ckt = Circuit("cubic")
        ckt.add(VoltageSource("vin", "a", ckt.GROUND, SinusoidStimulus(1.0, 1e3)))
        ckt.add(PolynomialConductance("gnl", "a", "b", [1e-3, 0.0, 1e-3]))
        ckt.add(Resistor("rload", "b", ckt.GROUND, 1.0))
        mna = ckt.compile()
        result = harmonic_balance(mna, 1e3, options=HarmonicBalanceOptions(harmonics=7))
        # v(b) ~ i * 1 Ohm; third harmonic of the current = g3 * A^3 / 4.
        third = result.harmonic_amplitude("b", 3)
        assert third == pytest.approx(1e-3 / 4.0, rel=0.02)

    def test_rectifier_thd_is_large(self, diode_rectifier):
        mna = diode_rectifier.compile()
        result = harmonic_balance(
            mna, 1e3, options=HarmonicBalanceOptions(harmonics=15, oversampling=4)
        )
        # The diode clips half of the waveform: the input node of the diode is
        # still sinusoidal but the output should show visible distortion in
        # its *ripple*; simply assert the analysis converged and the THD
        # machinery produces a finite number.
        assert np.isfinite(result.total_harmonic_distortion("out"))

    def test_requires_positive_fundamental(self, rc_lowpass):
        mna = rc_lowpass.compile()
        with pytest.raises(AnalysisError):
            harmonic_balance(mna, 0.0)

    def test_harmonics_accessor_bounds(self, rc_lowpass):
        mna = rc_lowpass.compile()
        result = harmonic_balance(mna, 1e3, options=HarmonicBalanceOptions(harmonics=3))
        coeffs = result.harmonics("out")
        assert coeffs.shape == (4,)
        with pytest.raises(AnalysisError):
            result.harmonic_amplitude("out", 9)

    def test_missing_fundamental_raises_in_thd(self, voltage_divider):
        mna = voltage_divider.compile()
        result = harmonic_balance(mna, 1e3, options=HarmonicBalanceOptions(harmonics=3))
        with pytest.raises(AnalysisError):
            result.total_harmonic_distortion("mid")
