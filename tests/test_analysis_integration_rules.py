"""Unit tests for the implicit integration rules (coefficients and orders)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    BackwardEuler,
    Gear2,
    StepContext,
    Trapezoidal,
    make_integration_rule,
)
from repro.utils import AnalysisError


class TestFactory:
    @pytest.mark.parametrize(
        "name, cls",
        [("backward-euler", BackwardEuler), ("trapezoidal", Trapezoidal), ("gear2", Gear2)],
    )
    def test_make_rule(self, name, cls):
        assert isinstance(make_integration_rule(name), cls)

    def test_unknown_rule(self):
        with pytest.raises(AnalysisError):
            make_integration_rule("runge-kutta")

    def test_orders(self):
        assert BackwardEuler().order == 1
        assert Trapezoidal().order == 2
        assert Gear2().order == 2


class TestCoefficients:
    def test_backward_euler(self):
        context = StepContext(q_prev=np.array([2.0]), qdot_prev=np.array([0.0]))
        alpha, r = BackwardEuler().derivative_coefficients(0.1, context)
        assert alpha == pytest.approx(10.0)
        np.testing.assert_allclose(r, [-20.0])

    def test_trapezoidal(self):
        context = StepContext(q_prev=np.array([2.0]), qdot_prev=np.array([3.0]))
        alpha, r = Trapezoidal().derivative_coefficients(0.1, context)
        assert alpha == pytest.approx(20.0)
        np.testing.assert_allclose(r, [-2.0 * 2.0 / 0.1 - 3.0])

    def test_gear2_uniform_step(self):
        context = StepContext(
            q_prev=np.array([2.0]),
            qdot_prev=np.array([0.0]),
            q_prev2=np.array([1.0]),
            h_prev=0.1,
        )
        alpha, r = Gear2().derivative_coefficients(0.1, context)
        # Uniform-step BDF2: (1.5 q_new - 2 q_prev + 0.5 q_prev2)/h
        assert alpha == pytest.approx(15.0)
        np.testing.assert_allclose(r, [(-2.0 * 2.0 + 0.5 * 1.0) / 0.1])

    def test_gear2_falls_back_to_be_without_history(self):
        context = StepContext(q_prev=np.array([2.0]), qdot_prev=np.array([0.0]))
        alpha, r = Gear2().derivative_coefficients(0.1, context)
        alpha_be, r_be = BackwardEuler().derivative_coefficients(0.1, context)
        assert alpha == pytest.approx(alpha_be)
        np.testing.assert_allclose(r, r_be)

    def test_invalid_step_size(self):
        context = StepContext(q_prev=np.zeros(1), qdot_prev=np.zeros(1))
        for rule in (BackwardEuler(), Trapezoidal(), Gear2()):
            with pytest.raises(AnalysisError):
                rule.derivative_coefficients(0.0, context)


class TestScalarODEAccuracy:
    """Integrate dq/dt + x = 0 with q = x (i.e. x' = -x) and check the order."""

    @staticmethod
    def _integrate(rule_name, n_steps):
        rule = make_integration_rule(rule_name)
        h = 1.0 / n_steps
        x = 1.0
        q_prev = np.array([x])
        qdot_prev = np.array([-x])
        context = StepContext(q_prev=q_prev, qdot_prev=qdot_prev)
        for _ in range(n_steps):
            alpha, r = rule.derivative_coefficients(h, context)
            # Solve alpha*x_new + r + x_new = 0.
            x_new = -r[0] / (alpha + 1.0)
            context = StepContext(
                q_prev=np.array([x_new]),
                qdot_prev=np.array([-x_new]),
                q_prev2=context.q_prev,
                h_prev=h,
            )
            x = x_new
        return x

    def test_backward_euler_first_order(self):
        exact = np.exp(-1.0)
        err_coarse = abs(self._integrate("backward-euler", 50) - exact)
        err_fine = abs(self._integrate("backward-euler", 100) - exact)
        assert err_fine / err_coarse == pytest.approx(0.5, rel=0.2)

    def test_trapezoidal_second_order(self):
        exact = np.exp(-1.0)
        err_coarse = abs(self._integrate("trapezoidal", 50) - exact)
        err_fine = abs(self._integrate("trapezoidal", 100) - exact)
        assert err_fine / err_coarse == pytest.approx(0.25, rel=0.25)

    def test_gear2_second_order(self):
        exact = np.exp(-1.0)
        err_coarse = abs(self._integrate("gear2", 50) - exact)
        err_fine = abs(self._integrate("gear2", 100) - exact)
        assert err_fine / err_coarse == pytest.approx(0.25, rel=0.3)

    def test_all_rules_are_stable_for_stiff_decay(self):
        """x' = -1000 x with a large step must not blow up (A/L stability)."""
        for name in ("backward-euler", "trapezoidal", "gear2"):
            rule = make_integration_rule(name)
            h = 0.1
            x = 1.0
            context = StepContext(q_prev=np.array([x]), qdot_prev=np.array([-1000.0 * x]))
            for _ in range(20):
                alpha, r = rule.derivative_coefficients(h, context)
                x_new = -r[0] / (alpha + 1000.0)
                context = StepContext(
                    q_prev=np.array([x_new]),
                    qdot_prev=np.array([-1000.0 * x_new]),
                    q_prev2=context.q_prev,
                    h_prev=h,
                )
                x = x_new
            assert abs(x) < 1.0
