"""Worker-resident factor service: equivalence, failure and lifecycle tests.

The service's contract (see ``src/repro/parallel/factor_service.py``) is
three-fold and every clause is load-bearing for the tier-1 reroute mode
(``REPRO_TIER1_FACTOR_BACKEND=resident``):

* **bit-for-bit equality** — resident applies must equal the in-process
  per-harmonic back-substitutions exactly, for real and complex vectors,
  across preconditioner rebuilds, and through whole MPDE / collocation
  solves;
* **identical observable effort** — ``harmonic_factorizations`` must agree
  between the lazy, eager-threaded and resident paths, and the new
  ``gmres_apply_dispatch_time_s`` / ``gmres_backsub_time_s`` stats must
  subdivide (never exceed) ``gmres_time_s``;
* **sticky, clean degradation** — a crashed or hung worker disables the
  service, records why, finishes the solve in-process with the *same*
  answer, and leaves no zombie processes or shared-memory blocks behind.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import replace

import numpy as np
import pytest

from repro.core import solve_mpde
from repro.parallel import (
    ResidentFactorPool,
    WorkerPoolError,
    detect_capabilities,
)
from repro.resilience import FaultSpec, build_profile_specs, inject_faults
from repro.utils import MPDEOptions, RestartPolicy

from test_parallel import _spectral_problem_data

pytestmark = [
    pytest.mark.skipif(
        not detect_capabilities().fork_available,
        reason="the resident factor service requires the 'fork' start method",
    ),
    # Every test below asserts bit-for-bit resident == in-process equality
    # and several arm their own fault plans; an ambient plan would break both.
    pytest.mark.no_fault_injection,
]

#: The paper-style spectral grid options every solve-level test shares.
_SOLVE_OPTIONS = MPDEOptions(
    n_fast=16,
    n_slow=8,
    matrix_free=True,
    preconditioner="block_circulant_fast",
)

#: A guaranteed-serial baseline: pinning ``n_workers`` opts out of the
#: ``REPRO_TIER1_FACTOR_BACKEND`` conftest reroute (which only rewrites
#: solves left entirely on default execution knobs), so these options stay
#: in-process even when the whole suite runs over the resident backend.
#: ``n_workers`` is inert while ``parallel=False``.
_SERIAL_OPTIONS = replace(_SOLVE_OPTIONS, n_workers=1)


def _factor_children() -> list:
    return [p for p in multiprocessing.active_children() if "factor" in p.name]


def _shm_blocks() -> set:
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # non-Linux: cannot snapshot, degrade gracefully
        return set()


def _build(problem, evaluation, **kwargs):
    return problem.build_preconditioner(
        "block_circulant_fast",
        c_data=evaluation.c_data,
        g_data=evaluation.g_data,
        **kwargs,
    )


class TestResidentPoolUnit:
    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError, match="n_workers"):
            ResidentFactorPool(0)

    def test_solve_before_configure_raises(self):
        service = ResidentFactorPool(2)
        with pytest.raises(WorkerPoolError, match="not configured"):
            service.solve(np.zeros((1, 1, 4), dtype=complex))
        assert service.active  # not configured is not a failure

    def test_idle_harmonic_shards_fork_no_workers(self, scaled_switching_mixer):
        """More workers than distinct harmonics must not fork idle processes
        (an idle worker would still be charged a pipe round-trip per apply)."""
        problem, evaluation = _spectral_problem_data(scaled_switching_mixer)
        distinct = problem.grid.n_slow // 2 + 1
        service = ResidentFactorPool(distinct + 5)
        try:
            _build(problem, evaluation, factor_service=service)
            assert len(service._workers) == distinct
        finally:
            service.close()

    def test_close_then_reconfigure_reforks(self, scaled_switching_mixer, rng):
        """``close()`` on a *healthy* service is a pause, not a failure."""
        problem, evaluation = _spectral_problem_data(scaled_switching_mixer)
        service = ResidentFactorPool(2)
        try:
            reference = _build(problem, evaluation)
            resident = _build(problem, evaluation, factor_service=service)
            vector = rng.normal(size=problem.n_total_unknowns)
            np.testing.assert_array_equal(
                resident.solve(vector), reference.solve(vector)
            )
            service.close()
            assert not service.resident
            assert service.active and service.fallback_reason == ""
            resident = _build(problem, evaluation, factor_service=service)
            assert service.resident
            np.testing.assert_array_equal(
                resident.solve(vector), reference.solve(vector)
            )
        finally:
            service.close()


class TestResidentParity:
    def test_applies_bitwise_equal_in_process(self, scaled_switching_mixer, rng):
        problem, evaluation = _spectral_problem_data(scaled_switching_mixer)
        reference = _build(problem, evaluation)
        service = ResidentFactorPool(2)
        try:
            resident = _build(problem, evaluation, factor_service=service)
            size = problem.n_total_unknowns
            v_real = rng.normal(size=size)
            v_complex = rng.normal(size=size) + 1j * rng.normal(size=size)
            np.testing.assert_array_equal(
                resident.solve(v_real), reference.solve(v_real)
            )
            np.testing.assert_array_equal(
                resident.solve(v_complex), reference.solve(v_complex)
            )
            # The apply-time split is populated on both sides; only the
            # resident path pays dispatch.
            assert resident.apply_backsub_time_s > 0.0
            assert resident.apply_dispatch_time_s > 0.0
            assert reference.apply_backsub_time_s > 0.0
            assert reference.apply_dispatch_time_s == 0.0
        finally:
            service.close()

    def test_counts_lazy_eager_resident_agree(self, scaled_switching_mixer, rng):
        """The three factorisation paths report identical observable effort."""
        problem, evaluation = _spectral_problem_data(scaled_switching_mixer)
        distinct = problem.grid.n_slow // 2 + 1
        lazy = _build(problem, evaluation)
        eager = _build(problem, evaluation, eager=True)
        service = ResidentFactorPool(2)
        try:
            resident = _build(problem, evaluation, factor_service=service)
            # Resident factors at configure time, like eager; lazy on first
            # apply.  After one apply everything agrees.
            assert lazy.harmonic_factorizations == 0
            assert eager.harmonic_factorizations == distinct
            assert resident.harmonic_factorizations == distinct
            vector = rng.normal(size=problem.n_total_unknowns)
            lazy.solve(vector)
            resident.solve(vector)
            assert (
                lazy.harmonic_factorizations
                == eager.harmonic_factorizations
                == resident.harmonic_factorizations
                == distinct
            )
            # Applies are counted per distinct harmonic on both paths.
            assert resident.harmonic_applies == lazy.harmonic_applies == distinct
        finally:
            service.close()

    def test_rebuild_reuses_workers_and_stays_bitwise(
        self, scaled_switching_mixer, rng
    ):
        """A same-structure rebuild (the common per-Newton-iterate case) must
        reuse the resident processes — refork would repay the startup cost
        the service exists to amortise — and stay bit-for-bit equal.

        The rebuild uses *scaled* Jacobian data: scaling preserves which
        entries are exactly zero, hence the assembled sparsity structure
        (scipy's sparse add prunes exact zeros, so arbitrary re-evaluations
        can change it — see the refork test below)."""
        problem, evaluation = _spectral_problem_data(scaled_switching_mixer)
        service = ResidentFactorPool(2)
        try:
            _build(problem, evaluation, factor_service=service)
            workers = list(service._workers)
            scaled = dict(
                c_data=evaluation.c_data * 1.01, g_data=evaluation.g_data * 0.99
            )
            reference = problem.build_preconditioner(
                "block_circulant_fast", **scaled
            )
            resident = problem.build_preconditioner(
                "block_circulant_fast", factor_service=service, **scaled
            )
            assert list(service._workers) == workers
            assert service.restarts == 1
            vector = rng.normal(size=problem.n_total_unknowns)
            np.testing.assert_array_equal(
                resident.solve(vector), reference.solve(vector)
            )
        finally:
            service.close()

    def test_structure_change_reforks_and_stays_bitwise(
        self, scaled_switching_mixer, rng
    ):
        """A rebuild whose assembled sparsity differs (devices crossing
        operating regions prune/grow exact-zero entries) must restart the
        workers — stale inherited structure arrays would corrupt the factors
        — and still match the in-process path bit for bit."""
        problem, evaluation = _spectral_problem_data(scaled_switching_mixer)
        service = ResidentFactorPool(2)
        try:
            first = _build(problem, evaluation, factor_service=service)
            x2 = np.random.default_rng(7).normal(
                scale=0.3, size=problem.n_total_unknowns
            )
            evaluation2 = problem.mna.evaluate_sparse(problem.reshape_states(x2))
            reference = _build(problem, evaluation2)
            if reference._base.nnz == first._base.nnz:
                pytest.skip("iterates assembled identical structures on this host")
            resident = _build(problem, evaluation2, factor_service=service)
            assert service.restarts == 2
            vector = rng.normal(size=problem.n_total_unknowns)
            np.testing.assert_array_equal(
                resident.solve(vector), reference.solve(vector)
            )
        finally:
            service.close()


class TestResidentSolve:
    def test_solve_matches_serial_bitwise(self, scaled_switching_mixer):
        mna = scaled_switching_mixer.compile()
        serial = solve_mpde(mna, scaled_switching_mixer.scales, _SERIAL_OPTIONS)
        resident = solve_mpde(
            mna,
            scaled_switching_mixer.scales,
            replace(
                _SOLVE_OPTIONS, parallel=True, n_workers=2, factor_backend="resident"
            ),
        )
        np.testing.assert_array_equal(resident.states, serial.states)
        assert resident.stats.parallel_fallback_reason == ""
        assert (
            resident.stats.preconditioner_harmonic_builds
            == serial.stats.preconditioner_harmonic_builds
        )
        # The one-call driver must not strand worker processes.
        assert _factor_children() == []

    def test_stats_buckets_subdivide_gmres_time(self, scaled_switching_mixer):
        mna = scaled_switching_mixer.compile()
        serial = solve_mpde(mna, scaled_switching_mixer.scales, _SERIAL_OPTIONS)
        resident = solve_mpde(
            mna,
            scaled_switching_mixer.scales,
            replace(
                _SOLVE_OPTIONS, parallel=True, n_workers=2, factor_backend="resident"
            ),
        )
        stats = resident.stats
        assert stats.gmres_apply_dispatch_time_s > 0.0
        assert stats.gmres_backsub_time_s > 0.0
        assert (
            stats.gmres_apply_dispatch_time_s + stats.gmres_backsub_time_s
            <= stats.gmres_time_s
        )
        # The serial path back-substitutes in-process: no dispatch bucket.
        assert serial.stats.gmres_apply_dispatch_time_s == 0.0
        assert serial.stats.gmres_backsub_time_s > 0.0
        assert serial.stats.gmres_backsub_time_s <= serial.stats.gmres_time_s

    def test_pss_resident_matches_serial(self, diode_rectifier):
        from repro.analysis.pss_fd import collocation_periodic_steady_state

        mna = diode_rectifier.compile()
        kwargs = dict(matrix_free=True, preconditioner="block_circulant_fast")
        serial = collocation_periodic_steady_state(mna, 1e-3, 41, **kwargs)
        resident = collocation_periodic_steady_state(
            mna,
            1e-3,
            41,
            parallel=True,
            n_workers=2,
            factor_backend="resident",
            **kwargs,
        )
        np.testing.assert_array_equal(resident.states, serial.states)
        assert resident.parallel_fallback_reason == ""
        assert _factor_children() == []

    def test_two_tone_override_plumbs_through(self, scaled_switching_mixer):
        from repro.core.multitone_hb import two_tone_harmonic_balance

        serial = two_tone_harmonic_balance(
            scaled_switching_mixer.compile(),
            scaled_switching_mixer.scales,
            n_harmonics_fast=2,
            n_harmonics_slow=2,
            matrix_free=True,
            preconditioner="block_circulant_fast",
        )
        resident = two_tone_harmonic_balance(
            scaled_switching_mixer.compile(),
            scaled_switching_mixer.scales,
            n_harmonics_fast=2,
            n_harmonics_slow=2,
            matrix_free=True,
            preconditioner="block_circulant_fast",
            parallel=True,
            n_workers=2,
            factor_backend="resident",
        )
        np.testing.assert_array_equal(
            resident.mpde.states, serial.mpde.states
        )
        assert resident.mpde.stats.parallel_fallback_reason == ""


class TestResidentFaults:
    """Crash/hang degradation: same answer, reason recorded, nothing leaked."""

    def _resident_options(self, **kwargs):
        return replace(
            _SOLVE_OPTIONS,
            parallel=True,
            n_workers=2,
            factor_backend="resident",
            **kwargs,
        )

    def test_worker_crash_falls_back_to_serial_results(
        self, scaled_switching_mixer
    ):
        mna = scaled_switching_mixer.compile()
        serial = solve_mpde(mna, scaled_switching_mixer.scales, _SERIAL_OPTIONS)
        # Prime the MNA shard pool (owned by ``mna``, lives with it) so the
        # shared-memory snapshot below only sees factor-service blocks.
        solve_mpde(
            mna, scaled_switching_mixer.scales, self._resident_options()
        )
        shm_before = _shm_blocks()
        crash = FaultSpec(
            site="worker.eval",
            action=lambda ctx: os._exit(17),
            count=1,
            predicate=lambda ctx: ctx.get("role") == "factor",
        )
        # max_restarts=0 pins the sticky serial degradation this test is
        # about; the supervised heal path is covered by test_selfhealing.py.
        with inject_faults(crash):
            result = solve_mpde(
                mna,
                scaled_switching_mixer.scales,
                self._resident_options(
                    worker_timeout_s=5.0, restart=RestartPolicy(max_restarts=0)
                ),
            )
        np.testing.assert_array_equal(result.states, serial.states)
        assert "died" in result.stats.parallel_fallback_reason
        assert _factor_children() == []
        assert _shm_blocks() - shm_before == set()

    def test_worker_hang_watchdog_falls_back(self, scaled_switching_mixer):
        mna = scaled_switching_mixer.compile()
        serial = solve_mpde(mna, scaled_switching_mixer.scales, _SERIAL_OPTIONS)
        hang = FaultSpec(
            site="worker.eval",
            action=lambda ctx: time.sleep(60.0),
            count=1,
            predicate=lambda ctx: ctx.get("role") == "factor",
        )
        start = time.monotonic()
        # max_restarts=0: assert the sticky watchdog fallback (healing after
        # a hang is covered by the chaos-soak harness).
        with inject_faults(hang):
            result = solve_mpde(
                mna,
                scaled_switching_mixer.scales,
                self._resident_options(
                    worker_timeout_s=1.0, restart=RestartPolicy(max_restarts=0)
                ),
            )
        # The watchdog, not the 60 s sleep, must bound the stall.
        assert time.monotonic() - start < 30.0
        np.testing.assert_array_equal(result.states, serial.states)
        assert "timed out" in result.stats.parallel_fallback_reason
        assert _factor_children() == []

    def test_crash_profile_leaves_no_zombies(self, scaled_switching_mixer):
        """The named ``worker_crash`` profile (the CI fault job's hammer) may
        kill *any* worker — factor or MNA shard — and the solve must still
        return the serial answer with every child reaped."""
        mna = scaled_switching_mixer.compile()
        serial = solve_mpde(mna, scaled_switching_mixer.scales, _SERIAL_OPTIONS)
        with inject_faults(*build_profile_specs("worker_crash")):
            result = solve_mpde(
                mna,
                scaled_switching_mixer.scales,
                self._resident_options(worker_timeout_s=5.0),
            )
        np.testing.assert_array_equal(result.states, serial.states)
        assert result.stats.parallel_fallback_reason != ""
        assert _factor_children() == []
