"""Property tests for the batched device-class evaluation engine.

The contract under test: the batched gather/compute/scatter backend
(:mod:`repro.circuits.engine`, the default) must be *bit-for-bit* equal to
the per-device ``backend="loop"`` reference path — same residuals, same
Jacobian data, same duplicate summation order — for every device class, for
single-point and grid-sized evaluations, for mixed netlists, and regardless
of device insertion order.  On top of that sit the residual-only
no-Jacobian-allocation guarantee, the ``which=`` single-block fast path, the
batched excitation scatter, the fallback path for devices without a batch
spec, and the MPDE direct-mode chord Newton satellite.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.circuits.devices import (
    BJT,
    VCCS,
    VCVS,
    BJTParams,
    Capacitor,
    Conductance,
    CurrentSource,
    Diode,
    DiodeParams,
    Inductor,
    MOSFETParams,
    MultiplierCurrentSource,
    NMOS,
    PMOS,
    PolynomialConductance,
    Resistor,
    SmoothSwitch,
    VoltageSource,
)
from repro.circuits.devices.base import Device
from repro.core import solve_mpde
from repro.signals import SinusoidStimulus
from repro.utils import ConfigurationError, EvaluationOptions, MPDEOptions

#: The paper's 40 x 30 multi-time grid size — the "grid-sized" point count.
PAPER_POINTS = 1200


def _device_pool(prefix: str = "") -> list:
    """One freshly constructed instance of every device class."""
    g = "0"
    p = prefix
    return [
        VoltageSource(f"{p}vs", "a", g, SinusoidStimulus(1.0, 1e6)),
        CurrentSource(f"{p}is", "b", g, SinusoidStimulus(1e-3, 2e6)),
        Resistor(f"{p}r1", "a", "b", 1e3),
        Conductance(f"{p}g1", "b", "c", 1e-4),
        Capacitor(f"{p}c1", "c", g, 1e-9),
        Inductor(f"{p}l1", "a", "c", 1e-6),
        Diode(f"{p}d1", "b", "c", DiodeParams(junction_capacitance=1e-12, transit_time=1e-9)),
        Diode(f"{p}d2", "c", g, DiodeParams(series_resistance=5.0, junction_capacitance=2e-12)),
        Diode(f"{p}d3", "a", "d"),  # no dynamics at all
        NMOS(f"{p}mn", "a", "b", "c", params=MOSFETParams(cgs=1e-13, cgd=2e-13, cdb=1e-13)),
        PMOS(f"{p}mp", "c", "a", "b", params=MOSFETParams(vto=-0.7, csb=1e-13)),
        NMOS(f"{p}mn2", "d", "c", g),  # capacitance-free MOSFET
        BJT(f"{p}qn", "a", "b", "c", BJTParams(cje=1e-13, cjc=1e-13)),
        BJT(f"{p}qp", "b", "c", "a", BJTParams(), polarity=-1),
        VCCS(f"{p}gmx", "a", g, "b", "c", 1e-3),
        VCVS(f"{p}ex", "d", g, "a", "b", 2.5),
        MultiplierCurrentSource(f"{p}mul", "d", g, "a", g, "b", g, gain=0.3),
        SmoothSwitch(f"{p}sw", "a", "d", "b", g, g_on=1e-2, g_off=1e-8),
        PolynomialConductance(f"{p}pc", "d", "c", (1e-3, 2e-4, 5e-5)),
    ]


def _all_device_circuit(order=None) -> Circuit:
    """A circuit with every device class (optionally in a custom order)."""
    ckt = Circuit("all devices")
    devices = _device_pool()
    if order is not None:
        devices = [devices[i] for i in order]
    ckt.add_all(devices)
    return ckt


def _assert_bit_for_bit(mna, X: np.ndarray) -> None:
    """Batched and loop backends agree exactly on every produced array."""
    loop = mna.evaluate_sparse(X, backend="loop")
    batched = mna.evaluate_sparse(X, backend="batched")
    for name in ("q", "f", "g_data", "c_data"):
        np.testing.assert_array_equal(
            getattr(batched, name), getattr(loop, name), err_msg=name
        )
    loop_dense = mna.evaluate(X, backend="loop")
    batched_dense = mna.evaluate(X, backend="batched")
    for name in ("q", "f", "capacitance", "conductance"):
        np.testing.assert_array_equal(
            getattr(batched_dense, name), getattr(loop_dense, name), err_msg=name
        )


class TestBatchedMatchesLoop:
    def test_every_device_class_single_point(self, rng):
        mna = _all_device_circuit().compile()
        X = rng.normal(scale=0.8, size=(1, mna.n_unknowns))
        _assert_bit_for_bit(mna, X)

    def test_every_device_class_grid_sized(self, rng):
        mna = _all_device_circuit().compile()
        X = rng.normal(scale=0.5, size=(PAPER_POINTS, mna.n_unknowns))
        _assert_bit_for_bit(mna, X)

    @pytest.mark.parametrize("scale", [0.1, 1.0, 5.0, 50.0])
    def test_operating_regions(self, rng, scale):
        """Cutoff/triode/saturation, forward/reverse, limited exponentials."""
        mna = _all_device_circuit().compile()
        X = rng.normal(scale=scale, size=(64, mna.n_unknowns))
        _assert_bit_for_bit(mna, X)

    def test_non_finite_states_propagate_identically(self, rng):
        mna = _all_device_circuit().compile()
        X = rng.normal(size=(8, mna.n_unknowns))
        X[2, 3] = np.nan
        X[5, 0] = np.inf
        loop = mna.evaluate_sparse(X, backend="loop")
        batched = mna.evaluate_sparse(X, backend="batched")
        for name in ("q", "f", "g_data", "c_data"):
            np.testing.assert_array_equal(
                getattr(batched, name), getattr(loop, name), err_msg=name
            )

    @pytest.mark.parametrize("seed", range(6))
    def test_pattern_order_invariance(self, seed):
        """Shuffling device insertion order never breaks batched == loop.

        Grouping reorders evaluation by device class; the scatter layouts
        must still reproduce the insertion-order accumulation of whatever
        ordering the netlist came with.
        """
        rng = np.random.default_rng(1000 + seed)
        order = rng.permutation(len(_device_pool()))
        mna = _all_device_circuit(order).compile()
        X = rng.normal(scale=0.7, size=(17, mna.n_unknowns))
        _assert_bit_for_bit(mna, X)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_mixed_netlists(self, seed):
        rng = np.random.default_rng(seed)
        ckt = Circuit("random")
        nodes = ["0", "n1", "n2", "n3", "n4"]

        def pick_two():
            a, b = rng.choice(len(nodes), size=2, replace=False)
            return nodes[a], nodes[b]

        ckt.add(VoltageSource("vs", "n1", "0", SinusoidStimulus(1.0, 1e6)))
        for k in range(int(rng.integers(4, 12))):
            p, n = pick_two()
            kind = int(rng.integers(0, 7))
            if kind == 0:
                ckt.add(Resistor(f"r{k}", p, n, float(rng.uniform(10, 1e4))))
            elif kind == 1:
                ckt.add(Capacitor(f"c{k}", p, n, float(rng.uniform(1e-12, 1e-9))))
            elif kind == 2:
                ckt.add(Inductor(f"l{k}", p, n, float(rng.uniform(1e-9, 1e-6))))
            elif kind == 3:
                ckt.add(
                    Diode(
                        f"d{k}", p, n,
                        DiodeParams(junction_capacitance=float(rng.uniform(0, 1e-12)) or 1e-13),
                    )
                )
            elif kind == 4:
                third = nodes[int(rng.integers(0, len(nodes)))]
                ckt.add(NMOS(f"m{k}", p, third, n, params=MOSFETParams(cgs=1e-13)))
            elif kind == 5:
                third = nodes[int(rng.integers(0, len(nodes)))]
                ckt.add(BJT(f"q{k}", p, third, n, BJTParams(cje=1e-14)))
            else:
                ckt.add(PolynomialConductance(f"p{k}", p, n, (1e-3, 1e-4)))
        mna = ckt.compile()
        X = rng.normal(scale=0.7, size=(23, mna.n_unknowns))
        _assert_bit_for_bit(mna, X)

    def test_repeated_evaluations_are_stable(self, rng):
        """Reused scratch buffers must never leak state between evaluations."""
        mna = _all_device_circuit().compile()
        X1 = rng.normal(size=(9, mna.n_unknowns))
        X2 = rng.normal(size=(9, mna.n_unknowns))
        first = mna.evaluate_sparse(X1)
        ref_q, ref_g = first.q.copy(), first.g_data.copy()
        mna.evaluate_sparse(X2)  # clobber scratch with different values
        again = mna.evaluate_sparse(X1)
        np.testing.assert_array_equal(again.q, ref_q)
        np.testing.assert_array_equal(again.g_data, ref_g)

    def test_results_do_not_alias_scratch(self, rng):
        """P=1 results survive later evaluations (integration-rule history)."""
        mna = _all_device_circuit().compile()
        x1 = rng.normal(size=(1, mna.n_unknowns))
        q1 = mna.evaluate_sparse(x1).q.copy()
        held = mna.evaluate_sparse(x1)
        mna.evaluate_sparse(rng.normal(size=(1, mna.n_unknowns)))
        np.testing.assert_array_equal(held.q, q1)


class TestSourcesThroughEngine:
    def test_source_matches_loop(self, rng):
        mna = _all_device_circuit().compile()
        t = np.linspace(0.0, 3e-6, 41)
        loop = _all_device_circuit().compile(
            EvaluationOptions(evaluation_backend="loop")
        )
        np.testing.assert_array_equal(mna.source(t), loop.source(t))
        np.testing.assert_array_equal(mna.source(1.5e-6), loop.source(1.5e-6))

    def test_source_bivariate_matches_loop(self):
        from repro.rf import balanced_lo_doubling_mixer

        mixer = balanced_lo_doubling_mixer()
        batched = mixer.compile()
        loop = mixer.circuit.compile(EvaluationOptions(evaluation_backend="loop"))
        t1 = np.linspace(0.0, 2e-9, 12)[:, None]
        t2 = np.linspace(0.0, 6e-5, 7)[None, :]
        np.testing.assert_array_equal(
            batched.source_bivariate(t1, t2, mixer.scales),
            loop.source_bivariate(t1, t2, mixer.scales),
        )


class TestResidualOnlyAllocation:
    def test_no_jacobian_buffers_allocated(self, rng, monkeypatch):
        """``need_jacobian=False`` must never touch a Jacobian buffer path."""
        mna = _all_device_circuit().compile()
        engine = mna.engine
        X = rng.normal(size=(33, mna.n_unknowns))
        full = mna.evaluate(X)  # reference, before the buffer paths are blocked

        def forbidden(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("residual-only evaluation allocated a Jacobian buffer")

        monkeypatch.setattr(engine, "_mat_buffer", forbidden)
        monkeypatch.setattr(engine, "_constant_mat_data", forbidden)
        sparse = mna.evaluate_sparse(X, need_jacobian=False)
        assert sparse.c_data is None and sparse.g_data is None
        dense = mna.evaluate(X, need_jacobian=False)
        assert dense.capacitance is None and dense.conductance is None
        # The residuals are still the full answer.
        np.testing.assert_array_equal(sparse.q, full.q)
        np.testing.assert_array_equal(sparse.f, full.f)

    def test_kernels_not_asked_for_jacobians(self, rng):
        """Residual-only evaluation passes need_jacobian=False to kernels."""
        seen = []
        original = Resistor.batch_spec

        class SpyResistor(Resistor):
            def batch_spec(self):
                spec = original(self)
                kernel = spec.static_kernel

                def spy(V, params, need_jacobian):
                    seen.append(need_jacobian)
                    return kernel(V, params, need_jacobian)

                return type(spec)(
                    **{**{f: getattr(spec, f) for f in spec.__dataclass_fields__},
                       "key": ("SpyResistor",), "static_kernel": spy}
                )

        ckt = Circuit("spy")
        ckt.add(VoltageSource("v", "a", "0", 1.0))
        ckt.add(SpyResistor("r", "a", "0", 1e3))
        # Pin the serial kernel path: this test observes in-process kernel
        # calls through a closure, which the sharded backend legitimately
        # moves into forked workers (where `seen` is a private copy).
        mna = ckt.compile(EvaluationOptions())
        mna.engine  # engine compilation probes kernels once; not under test
        seen.clear()
        mna.evaluate_sparse(rng.normal(size=(4, mna.n_unknowns)), need_jacobian=False)
        assert seen == [False]


class TestWhichFastPath:
    def test_single_block_matches_full(self, rng):
        mna = _all_device_circuit().compile()
        X = rng.normal(size=(6, mna.n_unknowns))
        full = mna.evaluate(X)
        only_c = mna.evaluate(X, which="capacitance")
        only_g = mna.evaluate(X, which="conductance")
        np.testing.assert_array_equal(only_c.capacitance, full.capacitance)
        np.testing.assert_array_equal(only_g.conductance, full.conductance)
        assert only_c.conductance is None
        assert only_g.capacitance is None

    @pytest.mark.parametrize("backend", ["batched", "loop"])
    def test_matrix_accessors_use_fast_path(self, rng, backend):
        mna = _all_device_circuit().compile(
            EvaluationOptions(evaluation_backend=backend)
        )
        x = rng.normal(size=mna.n_unknowns)
        full = mna.evaluate(x.reshape(1, -1))
        np.testing.assert_array_equal(mna.capacitance_matrix(x), full.capacitance[0])
        np.testing.assert_array_equal(mna.conductance_matrix(x), full.conductance[0])

    def test_unknown_which_rejected(self, rng):
        mna = _all_device_circuit().compile()
        with pytest.raises(Exception, match="which"):
            mna.evaluate(np.zeros(mna.n_unknowns), which="nonsense")


class _SpecLessTwoTerminal(Device):
    """A custom nonlinear device with no batch spec (engine fallback path)."""

    def __init__(self, name, node_pos, node_neg, gain):
        super().__init__(name, (node_pos, node_neg))
        self.gain = gain

    def is_nonlinear(self):
        return True

    def has_dynamics(self):
        return True

    def stamp_static(self, X, F, G):
        p, n = self._node_idx
        v = self._voltage(X, p) - self._voltage(X, n)
        current = self.gain * np.tanh(v)
        dg = self.gain * (1.0 - np.tanh(v) ** 2)
        self._add_vec(F, p, current)
        self._add_vec(F, n, -current)
        self._add_mat(G, p, p, dg)
        self._add_mat(G, p, n, -dg)
        self._add_mat(G, n, p, -dg)
        self._add_mat(G, n, n, dg)

    def stamp_dynamic(self, X, Q, C):
        p, n = self._node_idx
        v = self._voltage(X, p) - self._voltage(X, n)
        charge = 1e-12 * v**3
        cap = 3e-12 * v**2
        self._add_vec(Q, p, charge)
        self._add_vec(Q, n, -charge)
        self._add_mat(C, p, p, cap)
        self._add_mat(C, p, n, -cap)
        self._add_mat(C, n, p, -cap)
        self._add_mat(C, n, n, cap)


class TestFallbackDevices:
    def test_spec_less_device_works_in_batched_backend(self, rng):
        ckt = Circuit("fallback mix")
        ckt.add(VoltageSource("v", "a", "0", SinusoidStimulus(1.0, 1e6)))
        ckt.add(Resistor("r", "a", "b", 1e3))
        ckt.add(_SpecLessTwoTerminal("x1", "b", "0", 2e-3))
        ckt.add(Capacitor("c", "b", "0", 1e-9))
        ckt.add(_SpecLessTwoTerminal("x2", "a", "b", 1e-3))
        mna = ckt.compile()
        X = rng.normal(size=(29, mna.n_unknowns))
        _assert_bit_for_bit(mna, X)


class TestBackendSelection:
    def test_default_backend_is_batched(self):
        ckt = Circuit("rc")
        ckt.add(VoltageSource("v", "a", "0", 1.0))
        ckt.add(Resistor("r", "a", "0", 1e3))
        assert ckt.compile().evaluation_backend == "batched"

    def test_compile_accepts_loop_backend(self):
        ckt = Circuit("rc")
        ckt.add(VoltageSource("v", "a", "0", 1.0))
        ckt.add(Resistor("r", "a", "0", 1e3))
        mna = ckt.compile(EvaluationOptions(evaluation_backend="loop"))
        assert mna.evaluation_backend == "loop"

    def test_invalid_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            EvaluationOptions(evaluation_backend="warp-drive")

    def test_per_call_override_rejected_for_unknown(self, rng):
        ckt = Circuit("rc")
        ckt.add(VoltageSource("v", "a", "0", 1.0))
        ckt.add(Resistor("r", "a", "0", 1e3))
        mna = ckt.compile()
        with pytest.raises(Exception, match="backend"):
            mna.evaluate_sparse(np.zeros((1, mna.n_unknowns)), backend="nope")


class TestChordNewtonMPDE:
    @pytest.fixture(scope="class")
    def mixer(self):
        from repro.rf import unbalanced_switching_mixer

        mix = unbalanced_switching_mixer(lo_frequency=1e6, difference_frequency=5e4)
        return mix, mix.compile()

    def test_chord_reuses_factorizations(self, mixer):
        mix, mna = mixer
        chord = solve_mpde(
            mna, mix.scales, MPDEOptions(n_fast=16, n_slow=12, chord_newton=True)
        )
        assert chord.stats.converged
        assert chord.stats.jacobian_factorizations >= 1
        assert chord.stats.jacobian_factorizations < chord.stats.linear_solves

    def test_chord_matches_plain_newton_solution(self, mixer):
        mix, mna = mixer
        opts = dict(n_fast=16, n_slow=12)
        chord = solve_mpde(mna, mix.scales, MPDEOptions(**opts, chord_newton=True))
        plain = solve_mpde(mna, mix.scales, MPDEOptions(**opts, chord_newton=False))
        # Plain direct mode factors once per linear solve.
        assert plain.stats.jacobian_factorizations == plain.stats.linear_solves
        np.testing.assert_allclose(chord.states, plain.states, rtol=1e-6, atol=1e-8)

    def test_gmres_modes_report_zero_factorizations(self, mixer):
        mix, mna = mixer
        result = solve_mpde(
            mna, mix.scales, MPDEOptions(n_fast=12, n_slow=9, matrix_free=True)
        )
        assert result.stats.converged
        assert result.stats.jacobian_factorizations == 0
