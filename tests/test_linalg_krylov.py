"""Unit tests for the GMRES / ILU helpers."""

from __future__ import annotations

import logging

import numpy as np
import pytest
import scipy.sparse as sp

from repro.linalg import ILUPreconditioner, gmres_solve, make_ilu_preconditioner
from repro.utils import SingularMatrixError


def _laplacian(n: int) -> sp.csr_matrix:
    main = 2.0 * np.ones(n)
    off = -1.0 * np.ones(n - 1)
    return sp.diags([off, main, off], offsets=[-1, 0, 1]).tocsr()


class TestGMRES:
    def test_solves_spd_system(self):
        a = _laplacian(50)
        rng = np.random.default_rng(1)
        x_true = rng.normal(size=50)
        b = a @ x_true
        x, report = gmres_solve(a, b, tol=1e-12)
        np.testing.assert_allclose(x, x_true, rtol=1e-6, atol=1e-8)
        assert report.converged
        assert report.iterations > 0

    def test_preconditioner_reduces_iterations(self):
        a = _laplacian(200)
        b = np.ones(200)
        _, plain = gmres_solve(a, b, preconditioner=None, tol=1e-10)
        ilu = make_ilu_preconditioner(a)
        _, preconditioned = gmres_solve(a, b, preconditioner=ilu, tol=1e-10)
        assert preconditioned.iterations <= plain.iterations

    def test_non_convergence_raises(self):
        # A badly conditioned system with a tiny iteration budget.
        a = _laplacian(300)
        b = np.ones(300)
        with pytest.raises(SingularMatrixError):
            gmres_solve(a, b, preconditioner=None, tol=1e-14, restart=2, maxiter=1)

    def test_non_convergence_can_be_tolerated(self):
        a = _laplacian(300)
        b = np.ones(300)
        x, report = gmres_solve(
            a, b, preconditioner=None, tol=1e-14, restart=2, maxiter=1, raise_on_failure=False
        )
        assert not report.converged
        assert x.shape == (300,)
        # The non-convergence must be fully reported: a true residual norm
        # (computed explicitly on failure) and the per-iteration trace.
        assert np.isfinite(report.residual_norm)
        residual = np.linalg.norm(b - a @ x)
        np.testing.assert_allclose(report.residual_norm, residual, rtol=1e-12)
        assert len(report.residual_history) == report.iterations > 0
        assert report.restart_cycles >= 1

    def test_zero_rhs_converges_immediately(self):
        a = _laplacian(25)
        x, report = gmres_solve(a, np.zeros(25), tol=1e-12)
        assert report.converged
        assert report.iterations == 0
        assert report.restart_cycles == 0
        assert report.residual_history == []
        assert report.residual_norm == 0.0
        np.testing.assert_array_equal(x, np.zeros(25))

    def test_records_per_solve_iteration_history(self):
        a = _laplacian(60)
        b = np.ones(60)
        _, report = gmres_solve(a, b, preconditioner=None, tol=1e-10)
        assert len(report.residual_history) == report.iterations
        # The preconditioned residual norms must reach the requested tolerance.
        assert report.residual_history[-1] <= 1e-10
        assert min(report.residual_history) == report.residual_history[-1]

    def test_degraded_preconditioner_is_surfaced_in_report(self):
        singular = sp.csr_matrix(np.diag([1.0, 0.0, 2.0]))
        precond = make_ilu_preconditioner(singular)
        a = _laplacian(3)
        _, report = gmres_solve(a, np.ones(3), preconditioner=precond, tol=1e-10)
        assert report.converged
        assert report.preconditioner_degraded

    def test_healthy_preconditioner_is_not_flagged(self):
        a = _laplacian(30)
        _, report = gmres_solve(a, np.ones(30), tol=1e-10)
        assert not report.preconditioner_degraded


class TestILUPreconditioner:
    def test_acts_as_approximate_inverse(self):
        a = _laplacian(40)
        ilu = make_ilu_preconditioner(a, drop_tol=0.0)
        rng = np.random.default_rng(2)
        v = rng.normal(size=40)
        # With drop_tol=0 the ILU is an exact LU, so M(A v) ~= v.
        np.testing.assert_allclose(ilu.matvec(a @ v), v, rtol=1e-8, atol=1e-10)
        assert not ilu.degraded
        assert ilu.fallback is None

    def test_falls_back_to_jacobi_for_singular_matrix(self, caplog):
        singular = sp.csr_matrix(np.diag([1.0, 0.0, 2.0]))
        with caplog.at_level(logging.WARNING, logger="repro.linalg.preconditioners"):
            precond = make_ilu_preconditioner(singular)
        out = precond.matvec(np.ones(3))
        assert np.all(np.isfinite(out))
        # The fallback is no longer silent: warning + degraded/fallback flags.
        assert isinstance(precond, ILUPreconditioner)
        assert precond.degraded
        assert precond.fallback == "jacobi"
        assert any(
            "ILU factorisation failed" in record.message for record in caplog.records
        )
