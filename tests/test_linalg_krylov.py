"""Unit tests for the GMRES / ILU helpers."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.linalg import gmres_solve, make_ilu_preconditioner
from repro.utils import SingularMatrixError


def _laplacian(n: int) -> sp.csr_matrix:
    main = 2.0 * np.ones(n)
    off = -1.0 * np.ones(n - 1)
    return sp.diags([off, main, off], offsets=[-1, 0, 1]).tocsr()


class TestGMRES:
    def test_solves_spd_system(self):
        a = _laplacian(50)
        rng = np.random.default_rng(1)
        x_true = rng.normal(size=50)
        b = a @ x_true
        x, report = gmres_solve(a, b, tol=1e-12)
        np.testing.assert_allclose(x, x_true, rtol=1e-6, atol=1e-8)
        assert report.converged
        assert report.iterations > 0

    def test_preconditioner_reduces_iterations(self):
        a = _laplacian(200)
        b = np.ones(200)
        _, plain = gmres_solve(a, b, preconditioner=None, tol=1e-10)
        ilu = make_ilu_preconditioner(a)
        _, preconditioned = gmres_solve(a, b, preconditioner=ilu, tol=1e-10)
        assert preconditioned.iterations <= plain.iterations

    def test_non_convergence_raises(self):
        # A badly conditioned system with a tiny iteration budget.
        a = _laplacian(300)
        b = np.ones(300)
        with pytest.raises(SingularMatrixError):
            gmres_solve(a, b, preconditioner=None, tol=1e-14, restart=2, maxiter=1)

    def test_non_convergence_can_be_tolerated(self):
        a = _laplacian(300)
        b = np.ones(300)
        x, report = gmres_solve(
            a, b, preconditioner=None, tol=1e-14, restart=2, maxiter=1, raise_on_failure=False
        )
        assert not report.converged
        assert x.shape == (300,)


class TestILUPreconditioner:
    def test_acts_as_approximate_inverse(self):
        a = _laplacian(40)
        ilu = make_ilu_preconditioner(a, drop_tol=0.0)
        rng = np.random.default_rng(2)
        v = rng.normal(size=40)
        # With drop_tol=0 the ILU is an exact LU, so M(A v) ~= v.
        np.testing.assert_allclose(ilu.matvec(a @ v), v, rtol=1e-8, atol=1e-10)

    def test_falls_back_to_jacobi_for_singular_matrix(self):
        singular = sp.csr_matrix(np.diag([1.0, 0.0, 2.0]))
        precond = make_ilu_preconditioner(singular)
        out = precond.matvec(np.ones(3))
        assert np.all(np.isfinite(out))
