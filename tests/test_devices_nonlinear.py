"""Unit tests for nonlinear devices: diode, MOSFET, BJT, behavioural elements.

Beyond checking the analytic characteristics in each operating region, every
device's stamped Jacobians are verified against finite differences of the
stamped ``f`` / ``q`` vectors — the property Newton's convergence depends on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.circuits.devices import (
    BJT,
    BJTParams,
    Diode,
    DiodeParams,
    MOSFET,
    MOSFETParams,
    MultiplierCurrentSource,
    NMOS,
    NPN,
    PMOS,
    PolynomialConductance,
    Resistor,
    SmoothSwitch,
    VoltageSource,
)
from repro.signals import DCStimulus
from repro.utils import DeviceError


def finite_difference_check(mna, x, *, rtol=1e-5, atol=1e-8):
    """Compare stamped Jacobians against central finite differences."""
    x = np.asarray(x, dtype=float)
    n = x.size
    g_analytic = mna.conductance_matrix(x)
    c_analytic = mna.capacitance_matrix(x)
    g_fd = np.zeros((n, n))
    c_fd = np.zeros((n, n))
    for j in range(n):
        h = 1e-7 * max(1.0, abs(x[j]))
        xp, xm = x.copy(), x.copy()
        xp[j] += h
        xm[j] -= h
        g_fd[:, j] = (mna.f(xp) - mna.f(xm)) / (2 * h)
        c_fd[:, j] = (mna.q(xp) - mna.q(xm)) / (2 * h)
    scale_g = max(np.max(np.abs(g_analytic)), 1e-12)
    scale_c = max(np.max(np.abs(c_analytic)), 1e-12)
    np.testing.assert_allclose(g_analytic, g_fd, rtol=rtol, atol=atol * scale_g + 1e-15)
    np.testing.assert_allclose(c_analytic, c_fd, rtol=rtol, atol=atol * scale_c + 1e-15)


def _probe_circuit(device, node_values: dict[str, float]):
    """Compile a circuit with one probe voltage source per listed node."""
    ckt = Circuit("probe")
    for node, value in node_values.items():
        ckt.add(VoltageSource(f"v_{node}", node, ckt.GROUND, DCStimulus(value)))
    ckt.add(device)
    mna = ckt.compile()
    x = np.zeros(mna.n_unknowns)
    for node, value in node_values.items():
        x[mna.node_index(node)] = value
    return mna, x


class TestDiode:
    def test_forward_current(self):
        params = DiodeParams(saturation_current=1e-14, emission_coefficient=1.0)
        diode = Diode("d1", "a", "0", params)
        mna, x = _probe_circuit(diode, {"a": 0.6})
        current = mna.f(x)[mna.node_index("a")]
        vt = params.thermal_voltage
        expected = 1e-14 * (np.exp(0.6 / vt) - 1.0)
        assert current == pytest.approx(expected, rel=1e-9)

    def test_reverse_current_saturates(self):
        diode = Diode("d1", "a", "0", DiodeParams(saturation_current=1e-14))
        mna, x = _probe_circuit(diode, {"a": -5.0})
        current = mna.f(x)[mna.node_index("a")]
        assert current == pytest.approx(-1e-14, rel=1e-6)

    def test_exponent_limiting_keeps_values_finite(self):
        diode = Diode("d1", "a", "0")
        mna, x = _probe_circuit(diode, {"a": 50.0})
        assert np.all(np.isfinite(mna.f(x)))
        assert np.all(np.isfinite(mna.conductance_matrix(x)))

    @pytest.mark.parametrize("vd", [-2.0, -0.3, 0.0, 0.45, 0.65, 0.75])
    def test_jacobian_matches_finite_difference(self, vd):
        diode = Diode(
            "d1",
            "a",
            "0",
            DiodeParams(junction_capacitance=1e-12, transit_time=1e-9),
        )
        mna, x = _probe_circuit(diode, {"a": vd})
        finite_difference_check(mna, x)

    def test_charge_is_continuous_across_depletion_crossover(self):
        params = DiodeParams(junction_capacitance=1e-12, junction_potential=0.8)
        diode = Diode("d1", "a", "0", params)
        mna, _ = _probe_circuit(diode, {"a": 0.0})
        idx = mna.node_index("a")
        v_cross = 0.5 * params.junction_potential
        below = np.zeros(mna.n_unknowns)
        above = np.zeros(mna.n_unknowns)
        below[idx] = v_cross - 1e-9
        above[idx] = v_cross + 1e-9
        assert mna.q(below)[idx] == pytest.approx(mna.q(above)[idx], rel=1e-6)

    def test_series_resistance_reduces_current(self):
        plain = Diode("d1", "a", "0", DiodeParams())
        with_rs = Diode("d2", "a", "0", DiodeParams(series_resistance=10.0))
        mna_a, xa = _probe_circuit(plain, {"a": 0.8})
        mna_b, xb = _probe_circuit(with_rs, {"a": 0.8})
        ia = mna_a.f(xa)[mna_a.node_index("a")]
        ib = mna_b.f(xb)[mna_b.node_index("a")]
        assert ib < ia

    def test_has_dynamics_only_with_storage(self):
        assert not Diode("d", "a", "0", DiodeParams()).has_dynamics()
        assert Diode("d", "a", "0", DiodeParams(junction_capacitance=1e-12)).has_dynamics()


class TestMOSFET:
    params = MOSFETParams(vto=0.7, kp=100e-6, w=10e-6, l=1e-6, lambda_=0.02)

    def _drain_current(self, vg, vd, vs=0.0, polarity=1):
        device = MOSFET("m1", "d", "g", "s", params=self.params, polarity=polarity)
        mna, x = _probe_circuit(device, {"d": vd, "g": vg, "s": vs})
        return mna.f(x)[mna.node_index("d")]

    def test_cutoff(self):
        assert self._drain_current(vg=0.3, vd=1.0) == pytest.approx(0.0)

    def test_saturation_current(self):
        vgst = 1.5 - 0.7
        beta = self.params.beta
        expected = 0.5 * beta * vgst**2 * (1 + 0.02 * 2.0)
        assert self._drain_current(vg=1.5, vd=2.0) == pytest.approx(expected, rel=1e-9)

    def test_triode_current(self):
        vgst = 1.5 - 0.7
        vds = 0.2
        beta = self.params.beta
        expected = beta * (vgst * vds - 0.5 * vds**2) * (1 + 0.02 * vds)
        assert self._drain_current(vg=1.5, vd=0.2) == pytest.approx(expected, rel=1e-9)

    def test_current_is_zero_at_vds_zero(self):
        assert self._drain_current(vg=1.5, vd=0.0) == pytest.approx(0.0, abs=1e-15)

    def test_reverse_operation_is_antisymmetric(self):
        """Exchanging the drain and source potentials flips the sign of the current."""
        forward = self._drain_current(vg=1.5, vd=0.3, vs=0.0)
        reverse = self._drain_current(vg=1.5, vd=0.0, vs=0.3)
        assert reverse == pytest.approx(-forward, rel=1e-9)

    def test_pmos_mirror(self):
        nmos_current = self._drain_current(vg=1.5, vd=2.0)
        pmos_params = MOSFETParams(vto=-0.7, kp=100e-6, w=10e-6, l=1e-6, lambda_=0.02)
        device = MOSFET("m1", "d", "g", "s", params=pmos_params, polarity=-1)
        mna, x = _probe_circuit(device, {"d": -2.0, "g": -1.5, "s": 0.0})
        pmos_current = mna.f(x)[mna.node_index("d")]
        assert pmos_current == pytest.approx(-nmos_current, rel=1e-9)

    @pytest.mark.parametrize(
        "vg,vd,vs",
        [
            (0.0, 1.0, 0.0),   # cutoff
            (1.5, 0.1, 0.0),   # triode
            (1.5, 2.0, 0.0),   # saturation
            (1.5, -0.4, 0.0),  # reverse mode
            (1.2, 0.8, 0.3),   # source lifted
        ],
    )
    def test_jacobian_matches_finite_difference(self, vg, vd, vs):
        params = MOSFETParams(
            vto=0.7, kp=100e-6, w=10e-6, l=1e-6, lambda_=0.02, cgs=1e-15, cgd=1e-15, cdb=1e-15
        )
        device = MOSFET("m1", "d", "g", "s", params=params)
        mna, x = _probe_circuit(device, {"d": vd, "g": vg, "s": vs})
        finite_difference_check(mna, x)

    def test_nmos_pmos_helpers(self):
        assert NMOS("m", "d", "g", "s").polarity == 1
        assert PMOS("m", "d", "g", "s").polarity == -1

    def test_invalid_polarity(self):
        with pytest.raises(DeviceError):
            MOSFET("m", "d", "g", "s", polarity=2)

    def test_default_bulk_is_source(self):
        device = NMOS("m", "d", "g", "s")
        assert device.node_names == ("d", "g", "s", "s")

    def test_gate_draws_no_dc_current(self):
        device = NMOS("m1", "d", "g", "s", params=self.params)
        mna, x = _probe_circuit(device, {"d": 2.0, "g": 1.5, "s": 0.0})
        assert mna.f(x)[mna.node_index("g")] == pytest.approx(0.0)

    def test_kcl_drain_source_balance(self):
        device = NMOS("m1", "d", "g", "s", params=self.params)
        mna, x = _probe_circuit(device, {"d": 2.0, "g": 1.5, "s": 0.0})
        f = mna.f(x)
        assert f[mna.node_index("d")] == pytest.approx(-f[mna.node_index("s")])


class TestBJT:
    params = BJTParams(saturation_current=1e-16, beta_forward=100.0, beta_reverse=2.0)

    def test_forward_active_collector_current(self):
        device = NPN("q1", "c", "b", "e", params=self.params)
        mna, x = _probe_circuit(device, {"c": 2.0, "b": 0.7, "e": 0.0})
        ic = mna.f(x)[mna.node_index("c")]
        vt = self.params.thermal_voltage
        expected = 1e-16 * (np.exp(0.7 / vt) - 1.0) + 1e-16 / 2.0  # ict - ibc (vbc < 0)
        assert ic == pytest.approx(expected, rel=1e-3)

    def test_current_gain(self):
        device = NPN("q1", "c", "b", "e", params=self.params)
        mna, x = _probe_circuit(device, {"c": 2.0, "b": 0.7, "e": 0.0})
        f = mna.f(x)
        ic = f[mna.node_index("c")]
        ib = f[mna.node_index("b")]
        assert ic / ib == pytest.approx(100.0, rel=1e-2)

    def test_kcl_balance(self):
        device = NPN("q1", "c", "b", "e", params=self.params)
        mna, x = _probe_circuit(device, {"c": 2.0, "b": 0.7, "e": 0.0})
        f = mna.f(x)
        total = (
            f[mna.node_index("c")] + f[mna.node_index("b")] + f[mna.node_index("e")]
        )
        assert total == pytest.approx(0.0, abs=1e-12)

    def test_pnp_mirror(self):
        npn = NPN("q1", "c", "b", "e", params=self.params)
        mna_n, x_n = _probe_circuit(npn, {"c": 2.0, "b": 0.7, "e": 0.0})
        ic_n = mna_n.f(x_n)[mna_n.node_index("c")]
        pnp = BJT("q2", "c", "b", "e", params=self.params, polarity=-1)
        mna_p, x_p = _probe_circuit(pnp, {"c": -2.0, "b": -0.7, "e": 0.0})
        ic_p = mna_p.f(x_p)[mna_p.node_index("c")]
        assert ic_p == pytest.approx(-ic_n, rel=1e-9)

    @pytest.mark.parametrize(
        "vc,vb,ve",
        [
            (2.0, 0.7, 0.0),   # forward active
            (0.05, 0.75, 0.0), # saturation
            (0.0, 0.0, 0.0),   # off
            (0.0, 0.7, 2.0),   # reverse active
        ],
    )
    def test_jacobian_matches_finite_difference(self, vc, vb, ve):
        device = NPN("q1", "c", "b", "e", params=BJTParams(cje=1e-13, cjc=1e-13))
        mna, x = _probe_circuit(device, {"c": vc, "b": vb, "e": ve})
        finite_difference_check(mna, x)

    def test_invalid_polarity(self):
        with pytest.raises(DeviceError):
            BJT("q", "c", "b", "e", polarity=0)


class TestBehaviouralDevices:
    def test_multiplier_output_current(self):
        device = MultiplierCurrentSource("mix", "0", "out", "a", "0", "b", "0", gain=2.0)
        ckt = Circuit("t")
        ckt.add(VoltageSource("va", "a", ckt.GROUND, DCStimulus(3.0)))
        ckt.add(VoltageSource("vb", "b", ckt.GROUND, DCStimulus(0.5)))
        ckt.add(Resistor("rl", "out", ckt.GROUND, 1.0))
        ckt.add(device)
        mna = ckt.compile()
        x = np.zeros(mna.n_unknowns)
        x[mna.node_index("a")] = 3.0
        x[mna.node_index("b")] = 0.5
        f = mna.f(x)
        # i = gain * va * vb = 3 A flows from ground into 'out' -> KCL row gets -3.
        assert f[mna.node_index("out")] == pytest.approx(-3.0)

    def test_multiplier_jacobian(self):
        device = MultiplierCurrentSource("mix", "o", "0", "a", "0", "b", "0", gain=1.5)
        mna, x = _probe_circuit(device, {"o": 0.1, "a": 0.8, "b": -0.4})
        finite_difference_check(mna, x)

    def test_smooth_switch_limits(self):
        switch = SmoothSwitch(
            "s1", "a", "0", "ctrl", "0", g_on=1e-2, g_off=1e-9, threshold=0.5, transition_width=0.01
        )
        mna, x_on = _probe_circuit(switch, {"a": 1.0, "ctrl": 1.0})
        i_on = mna.f(x_on)[mna.node_index("a")]
        assert i_on == pytest.approx(1e-2, rel=1e-3)
        mna, x_off = _probe_circuit(switch, {"a": 1.0, "ctrl": 0.0})
        i_off = mna.f(x_off)[mna.node_index("a")]
        assert i_off == pytest.approx(1e-9, rel=1e-3)

    def test_smooth_switch_jacobian(self):
        switch = SmoothSwitch("s1", "a", "0", "ctrl", "0", transition_width=0.05)
        mna, x = _probe_circuit(switch, {"a": 0.7, "ctrl": 0.02})
        finite_difference_check(mna, x, rtol=1e-4)

    def test_smooth_switch_validation(self):
        with pytest.raises(DeviceError):
            SmoothSwitch("s", "a", "0", "c", "0", g_on=1e-9, g_off=1e-2)

    def test_polynomial_conductance_current(self):
        device = PolynomialConductance("p1", "a", "0", [1e-3, 2e-3, 0.5e-3])
        mna, x = _probe_circuit(device, {"a": 2.0})
        expected = 1e-3 * 2 + 2e-3 * 4 + 0.5e-3 * 8
        assert mna.f(x)[mna.node_index("a")] == pytest.approx(expected)

    def test_polynomial_conductance_jacobian(self):
        device = PolynomialConductance("p1", "a", "0", [1e-3, -2e-3, 0.5e-3])
        mna, x = _probe_circuit(device, {"a": -1.3})
        finite_difference_check(mna, x)

    def test_polynomial_linear_is_not_nonlinear(self):
        assert not PolynomialConductance("p", "a", "b", [1e-3]).is_nonlinear()
        assert PolynomialConductance("p", "a", "b", [1e-3, 1e-3]).is_nonlinear()

    def test_polynomial_requires_coefficients(self):
        with pytest.raises(DeviceError):
            PolynomialConductance("p", "a", "b", [])
