"""Unit and integration tests for periodic steady state via shooting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import run_transient, shooting_periodic_steady_state
from repro.circuits import Circuit
from repro.circuits.devices import Capacitor, Diode, DiodeParams, Resistor, VoltageSource
from repro.signals import SinusoidStimulus, compute_spectrum, fourier_coefficient
from repro.utils import AnalysisError, ConvergenceError, ShootingOptions, TransientOptions


class TestLinearRCShooting:
    freq = 1e3
    rc = 1e3 * 100e-9

    def _solve(self, rc_lowpass, **kwargs):
        mna = rc_lowpass.compile()
        options = ShootingOptions(steps_per_period=400, **kwargs)
        return mna, shooting_periodic_steady_state(mna, 1.0 / self.freq, options=options)

    def test_amplitude_matches_transfer_function(self, rc_lowpass):
        mna, result = self._solve(rc_lowpass)
        wave = result.waveform("out")
        expected = 1.0 / np.sqrt(1.0 + (2 * np.pi * self.freq * self.rc) ** 2)
        assert 2 * abs(fourier_coefficient(wave, self.freq)) == pytest.approx(expected, rel=0.01)

    def test_phase_matches_transfer_function(self, rc_lowpass):
        mna, result = self._solve(rc_lowpass)
        wave = result.waveform("out")
        expected_phase = -np.arctan(2 * np.pi * self.freq * self.rc)
        assert np.angle(fourier_coefficient(wave, self.freq)) == pytest.approx(
            expected_phase, abs=0.03
        )

    def test_periodicity_of_returned_states(self, rc_lowpass):
        mna, result = self._solve(rc_lowpass)
        np.testing.assert_allclose(result.states[0], result.states[-1], atol=1e-6)

    def test_converges_in_one_shooting_iteration_for_linear_circuit(self, rc_lowpass):
        """For a linear circuit the state-transition map is affine: one Newton step suffices."""
        mna, result = self._solve(rc_lowpass)
        assert result.stats.shooting_iterations <= 2

    def test_stats_track_time_steps(self, rc_lowpass):
        mna, result = self._solve(rc_lowpass)
        assert result.stats.total_time_steps >= 400
        assert result.stats.newton_iterations > 0


class TestRectifierShooting:
    """Half-wave rectifier: strongly nonlinear, classic shooting test case."""

    freq = 1e3

    def test_matches_long_transient(self, diode_rectifier):
        mna = diode_rectifier.compile()
        result = shooting_periodic_steady_state(
            mna,
            1.0 / self.freq,
            options=ShootingOptions(steps_per_period=300, integration_method="trapezoidal"),
        )
        # Brute force: integrate long enough for the start-up transient to die.
        transient = run_transient(
            mna,
            t_stop=30 / self.freq,
            dt=1 / self.freq / 300,
            options=TransientOptions(method="trapezoidal"),
        )
        brute = transient.waveform("out").window(29 / self.freq, 30 / self.freq)
        shooting_mean = result.waveform("out").mean()
        brute_mean = brute.mean()
        assert shooting_mean == pytest.approx(brute_mean, rel=0.02)

    def test_output_ripple_is_small(self, diode_rectifier):
        mna = diode_rectifier.compile()
        result = shooting_periodic_steady_state(
            mna, 1.0 / self.freq, options=ShootingOptions(steps_per_period=300)
        )
        wave = result.waveform("out")
        # RC = 10 ms >> period, so the ripple is a small fraction of the mean.
        assert wave.peak_to_peak() < 0.25 * wave.mean()

    def test_backward_euler_integration_also_converges(self, diode_rectifier):
        mna = diode_rectifier.compile()
        result = shooting_periodic_steady_state(
            mna,
            1.0 / self.freq,
            options=ShootingOptions(steps_per_period=300, integration_method="backward-euler"),
        )
        assert result.stats.final_residual_norm < 1e-6


class TestShootingErrors:
    def test_invalid_period(self, rc_lowpass):
        mna = rc_lowpass.compile()
        with pytest.raises(AnalysisError):
            shooting_periodic_steady_state(mna, 0.0)

    def test_iteration_budget_exhaustion_raises(self, diode_rectifier):
        mna = diode_rectifier.compile()
        with pytest.raises(ConvergenceError):
            shooting_periodic_steady_state(
                mna,
                1e-3,
                options=ShootingOptions(
                    steps_per_period=50, max_shooting_iterations=1, abstol=1e-15, reltol=1e-15
                ),
            )

    def test_unsupported_monodromy_rule_raises(self, rc_lowpass):
        mna = rc_lowpass.compile()
        with pytest.raises(AnalysisError):
            shooting_periodic_steady_state(
                mna, 1e-3, options=ShootingOptions(integration_method="gear2")
            )


class TestShootingAsDifferencePeriodBaseline:
    """Shooting across one *difference-frequency* period — the paper's expensive baseline."""

    def test_two_tone_rc_difference_period(self):
        """A two-tone drive into an RC detector: PSS over Td recovers both tones."""
        f1, fd = 100e3, 5e3
        ckt = Circuit("two-tone rc")
        ckt.add(
            VoltageSource(
                "vin",
                "in",
                ckt.GROUND,
                SinusoidStimulus(0.5, f1) + SinusoidStimulus(0.5, f1 - fd),
            )
        )
        ckt.add(Resistor("r1", "in", "out", 1e3))
        ckt.add(Capacitor("c1", "out", ckt.GROUND, 1e-9))
        mna = ckt.compile()
        steps = int(20 * f1 / fd)  # >= 20 points per fast cycle over one slow period
        result = shooting_periodic_steady_state(
            mna, 1.0 / fd, options=ShootingOptions(steps_per_period=steps)
        )
        spectrum = compute_spectrum(result.waveform("out"), detrend=False)
        # Both carriers present; the linear RC generates no difference tone.
        assert spectrum.amplitude_at(f1, tolerance=fd) > 0.3
        assert spectrum.amplitude_at(f1 - fd, tolerance=fd / 2) > 0.3
        # Cost bookkeeping: this is what makes the baseline expensive.
        assert result.stats.total_time_steps >= steps
