"""Scenario registry + library verification: golden-pinned cross-validation.

Three layers, mirroring the contract of :mod:`repro.scenarios`:

1. **Registry semantics** — registration, lookup with near-miss hints,
   override validation, unregistration, and parameter round-trip identity
   through :func:`repro.scenarios.scenario_fingerprint`.
2. **Enumeration** — every registered scenario builds at its smoke
   configuration, solves with the analysis it declared on the grid
   :func:`repro.core.recommend_grid` picked, converges, and produces finite
   metrics.
3. **Verification** — every scenario's first case is cross-validated against
   brute-force single-time transient integration (amplitude of the planned
   spectral line plus DC, magnitudes only), and every metric is pinned to
   ``tests/goldens/scenarios.json``.  Regenerate the goldens deliberately
   with ``PYTHONPATH=src python -m repro.scenarios.goldens --out
   tests/goldens/scenarios.json`` after an intentional physics change.

The expensive part — solving all scenarios — happens once per module in the
``all_runs`` fixture; cross-validation, goldens and metric checks reuse the
cached results.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import numpy as np
import pytest

from repro.scenarios import (
    ANALYSES,
    BuiltScenario,
    CrossValidationPlan,
    ScenarioCase,
    build_scenario,
    build_scenario_smoke,
    cross_validate,
    get_scenario,
    iter_scenarios,
    register_scenario,
    run_scenario,
    scenario_fingerprint,
    scenario_names,
    solve_case,
    unregister_scenario,
)
from repro.utils.exceptions import ConfigurationError, DeadlineExceededError

GOLDENS_PATH = Path(__file__).parent / "goldens" / "scenarios.json"

ALL_NAMES = scenario_names()


# -- solved-scenario cache ---------------------------------------------------


@pytest.fixture(scope="module")
def all_runs():
    """Build and fully solve every registered scenario once (smoke config)."""
    runs = {}
    for name in ALL_NAMES:
        scenario = build_scenario_smoke(name)
        runs[name] = (scenario, run_scenario(scenario))
    return runs


@pytest.fixture(scope="module")
def goldens():
    document = json.loads(GOLDENS_PATH.read_text())
    assert set(document) == set(ALL_NAMES), (
        "goldens out of sync with the registry — regenerate with "
        "`PYTHONPATH=src python -m repro.scenarios.goldens --out "
        "tests/goldens/scenarios.json`"
    )
    return document


# -- registry semantics ------------------------------------------------------


def test_library_registers_at_least_eight_scenarios():
    assert len(ALL_NAMES) >= 8
    assert ALL_NAMES == tuple(sorted(ALL_NAMES))


def test_library_covers_all_three_analyses():
    used = {
        case.analysis
        for name in ALL_NAMES
        for case in build_scenario_smoke(name).cases
    }
    assert used == set(ANALYSES)


def test_duplicate_registration_raises_and_names_prior_factory():
    @register_scenario("scenario_test_dup", params=dict(x=1.0))
    def first(name, params):  # pragma: no cover - never built
        raise AssertionError

    try:
        with pytest.raises(ConfigurationError, match="already registered") as excinfo:

            @register_scenario("scenario_test_dup", params=dict(x=1.0))
            def second(name, params):  # pragma: no cover - never registered
                raise AssertionError

        # The error must point at the factory holding the name.
        assert "first" in str(excinfo.value)
    finally:
        unregister_scenario("scenario_test_dup")


def test_unknown_scenario_lists_near_misses():
    with pytest.raises(ConfigurationError, match="qam16_mixer"):
        get_scenario("qam16_mixr")


def test_unknown_scenario_without_near_miss_lists_registry():
    with pytest.raises(ConfigurationError, match="registered:"):
        get_scenario("zzzz_nothing_like_any_name")


def test_unknown_override_raises_and_lists_valid_parameters():
    with pytest.raises(ConfigurationError, match="difference_frequency"):
        build_scenario("qam16_mixer", lo_freq=1e6)


def test_unregister_unknown_raises():
    with pytest.raises(ConfigurationError, match="unregister"):
        unregister_scenario("never_registered_scenario")


def test_smoke_overrides_must_be_known_parameters():
    with pytest.raises(ConfigurationError, match="unknown parameters"):

        @register_scenario(
            "scenario_test_bad_smoke", params=dict(x=1.0), smoke=dict(y=2.0)
        )
        def factory(name, params):  # pragma: no cover - never registered
            raise AssertionError


def test_factory_must_echo_name_and_params():
    @register_scenario("scenario_test_echo", params=dict(x=1.0))
    def factory(name, params):
        template = build_scenario_smoke(ALL_NAMES[0])
        return BuiltScenario(
            name="something_else",
            params=params,
            cases=template.cases,
            cross_validation=template.cross_validation,
        )

    try:
        with pytest.raises(ConfigurationError, match="echo"):
            build_scenario("scenario_test_echo")
    finally:
        unregister_scenario("scenario_test_echo")


def test_case_validation_rejects_unknown_analysis():
    template = build_scenario_smoke("qam16_mixer").cases[0]
    with pytest.raises(ConfigurationError, match="unknown analysis"):
        ScenarioCase(
            label="bad",
            circuit=template.circuit,
            analysis="shooting",
            output_pos=template.output_pos,
            output_neg=template.output_neg,
            bandwidths=template.bandwidths,
            grid=template.grid,
            compute_metrics=template.compute_metrics,
            scales=template.scales,
        )


def test_case_validation_requires_scales_and_period():
    template = build_scenario_smoke("qam16_mixer").cases[0]
    with pytest.raises(ConfigurationError, match="sheared time scales"):
        ScenarioCase(
            label="bad",
            circuit=template.circuit,
            analysis="mpde",
            output_pos=template.output_pos,
            output_neg=template.output_neg,
            bandwidths=template.bandwidths,
            grid=template.grid,
            compute_metrics=template.compute_metrics,
        )
    with pytest.raises(ConfigurationError, match="period"):
        ScenarioCase(
            label="bad",
            circuit=template.circuit,
            analysis="pss",
            output_pos=template.output_pos,
            output_neg=template.output_neg,
            bandwidths=template.bandwidths,
            grid=template.grid,
            compute_metrics=template.compute_metrics,
        )


def test_built_scenario_rejects_duplicate_and_reserved_labels():
    template = build_scenario_smoke("qam16_mixer")
    case = template.cases[0]
    with pytest.raises(ConfigurationError, match="duplicate"):
        BuiltScenario(
            name="x",
            params={},
            cases=(case, case),
            cross_validation=template.cross_validation,
        )
    with pytest.raises(ConfigurationError, match="zero cases"):
        BuiltScenario(
            name="x", params={}, cases=(), cross_validation=template.cross_validation
        )


def test_every_spec_has_description_and_smoke_config():
    for spec in iter_scenarios():
        assert spec.description, f"{spec.name} has no description"
        assert spec.smoke_overrides, (
            f"{spec.name} has no smoke overrides — the tier-1 suite would "
            "solve it at paper-scale disparity"
        )
        assert set(spec.smoke_overrides) <= set(spec.params)


# -- fingerprint round-trips -------------------------------------------------


@pytest.mark.parametrize("name", ALL_NAMES)
def test_fingerprint_round_trip_is_deterministic(name):
    """Building the same scenario twice yields the identical fingerprint."""
    first = scenario_fingerprint(build_scenario_smoke(name))
    second = scenario_fingerprint(build_scenario_smoke(name))
    assert first == second


def test_fingerprint_changes_with_parameters():
    base = scenario_fingerprint(build_scenario_smoke("qam16_mixer"))
    changed = scenario_fingerprint(
        build_scenario_smoke("qam16_mixer", rf_amplitude=0.5)
    )
    assert base != changed


def test_fingerprints_distinct_across_scenarios():
    prints = [scenario_fingerprint(build_scenario_smoke(name)) for name in ALL_NAMES]
    assert len(set(prints)) == len(prints)


# -- enumeration: every scenario solves --------------------------------------


@pytest.mark.parametrize("name", ALL_NAMES)
def test_scenario_solves_with_finite_metrics(name, all_runs):
    scenario, run = all_runs[name]
    assert len(run.case_runs) == len(scenario.cases)
    for case_run in run.case_runs:
        stats = getattr(case_run.result, "stats", None)
        if stats is not None:
            assert getattr(stats, "converged", True), (
                f"{name}[{case_run.case.label}] did not converge"
            )
        assert case_run.metrics, f"{name}[{case_run.case.label}] produced no metrics"
        for key, value in case_run.metrics.items():
            assert math.isfinite(value), f"{name}: metric {key} = {value!r}"


def test_aggregate_metrics_present_for_sweeps(all_runs):
    _, conversion = all_runs["swept_lo_conversion_gain"]
    assert conversion.aggregate_metrics["gain_flatness"] >= 1.0
    _, ip3 = all_runs["ip3_sweep"]
    # The front end's only nonlinearity is cubic: the IM3 line must grow with
    # a slope close to 3 (slightly compressed at the top of the sweep).
    assert 2.7 <= ip3.aggregate_metrics["im3_slope"] <= 3.1
    assert ip3.aggregate_metrics["iip3_tone_amplitude"] > 0.0


def test_decision_metrics_recover_the_transmitted_bits(all_runs):
    for name in ("prbs_balanced_mixer", "multi_lo_receiver"):
        _, run = all_runs[name]
        metrics = run.case_runs[0].metrics
        assert metrics["bit_match"] == 1.0, f"{name} failed to recover its bits"
        assert metrics["eye_opening"] > 0.2


def test_modulation_evm_is_small(all_runs):
    # The multiplier mixer is distortion-free: demodulated constellations
    # must match essentially exactly.  The switching mixers compress, so
    # their EVM is bounded but nonzero.
    for name, bound in (
        ("qpsk_mixer", 1e-6),
        ("qam16_mixer", 1e-6),
        ("ofdm_mixer", 1e-6),
        ("bpsk_mixer", 0.25),
        ("psk8_mixer", 0.25),
    ):
        _, run = all_runs[name]
        assert run.case_runs[0].metrics["evm"] <= bound, name


# -- cross-validation against brute-force transient --------------------------


@pytest.mark.parametrize("name", ALL_NAMES)
def test_cross_validation_against_transient(name, all_runs):
    scenario, run = all_runs[name]
    report = cross_validate(scenario, run.case_runs[0].result)
    assert report.passed, report.summary()


def test_cross_validation_solves_when_no_result_is_passed():
    scenario = build_scenario_smoke("swept_lo_conversion_gain")
    report = cross_validate(scenario)
    assert report.passed, report.summary()


def test_cross_validation_plan_is_declared_by_every_scenario():
    for name in ALL_NAMES:
        scenario = build_scenario_smoke(name)
        assert isinstance(scenario.cross_validation, CrossValidationPlan)
        assert scenario.cross_validation.frequency > 0.0


# -- golden metrics ----------------------------------------------------------


@pytest.mark.parametrize("name", ALL_NAMES)
def test_golden_metrics_pinned(name, all_runs, goldens):
    scenario, run = all_runs[name]
    spec = get_scenario(name)
    pinned = goldens[name]

    assert pinned["grids"] == {
        case.label: list(case.grid) for case in scenario.cases
    }, f"{name}: recommended grid drifted from the pinned goldens"
    assert pinned["analyses"] == {case.label: case.analysis for case in scenario.cases}
    assert pinned["fingerprint"] == scenario_fingerprint(scenario), (
        f"{name}: scenario identity (circuit/params/grid) drifted — "
        "regenerate the goldens if the change is intentional"
    )

    observed = run.all_metrics()
    assert set(observed) == set(pinned["metrics"]), f"{name}: metric keys drifted"
    for label, metrics in pinned["metrics"].items():
        for key, expected in metrics.items():
            actual = observed[label][key]
            assert actual == pytest.approx(
                expected, rel=spec.golden_rtol, abs=spec.golden_atol
            ), f"{name}[{label}].{key}: {actual} != pinned {expected}"


# -- service plumbing: deadlines, checkpoints, solve hook --------------------


def test_run_scenario_uses_the_injected_solve_hook():
    scenario = build_scenario_smoke("frequency_doubler")
    calls = []

    def counting_solve(case):
        calls.append(case.label)
        return solve_case(case)

    run = run_scenario(scenario, first_case_only=True, solve=counting_solve)
    assert calls == [scenario.cases[0].label]
    assert run.case_runs[0].metrics  # the hook's results still feed metrics


def test_run_scenario_deadline_reaches_the_solver():
    scenario = build_scenario_smoke("frequency_doubler")
    with pytest.raises(DeadlineExceededError):
        run_scenario(scenario, first_case_only=True, deadline_s=1e-9)


def test_solve_case_deadline_reaches_the_solver():
    case = build_scenario_smoke("frequency_doubler").cases[0]
    with pytest.raises(DeadlineExceededError):
        solve_case(case, deadline_s=1e-9)


@pytest.mark.no_fault_injection
def test_solve_case_accepts_a_precompiled_system():
    case = build_scenario_smoke("frequency_doubler").cases[0]
    default = solve_case(case)
    precompiled = solve_case(case, mna=case.circuit.compile())
    np.testing.assert_array_equal(default.states, precompiled.states)


def test_solve_case_checkpoint_resume_round_trip(tmp_path):
    # Persist checkpoints from a full solve, then resume a fresh solve from
    # the final persisted snapshot: it validates and reproduces the states.
    scenario = build_scenario_smoke("prbs_balanced_mixer")
    case = scenario.cases[0]
    path = tmp_path / "case.ckpt"
    first = solve_case(case, checkpoint_path=path)
    assert path.exists()
    resumed = solve_case(case, resume_from=path)
    np.testing.assert_allclose(resumed.states, first.states, rtol=1e-9, atol=1e-12)
