"""Cross-method integration tests.

These are the scientific heart of the reproduction: the sheared multi-time
MPDE solution must agree with brute-force time stepping and with shooting on
problems small enough to solve both ways.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import run_transient, shooting_periodic_steady_state
from repro.core import solve_mpde
from repro.rf import ideal_multiplier_mixer, unbalanced_switching_mixer
from repro.signals.spectrum import fourier_coefficient
from repro.utils import MPDEOptions, ShootingOptions, TransientOptions


@pytest.fixture(scope="module")
def switching_case():
    """A switching mixer with disparity 40 — small enough for brute force."""
    f1, fd = 2e6, 50e3
    mix = unbalanced_switching_mixer(lo_frequency=f1, difference_frequency=fd)
    mna = mix.compile()
    mpde = solve_mpde(mna, mix.scales, MPDEOptions(n_fast=40, n_slow=30))
    return mix, mna, mpde


class TestMPDEAgainstTransient:
    def test_baseband_component_matches(self, switching_case):
        mix, mna, mpde = switching_case
        fd = mix.scales.difference_frequency
        td = mix.scales.difference_period
        envelope = mpde.baseband_envelope("out")
        amp_mpde = 2 * abs(fourier_coefficient(envelope, fd))

        transient = run_transient(
            mna,
            t_stop=2 * td,
            dt=1 / mix.lo_frequency / 60,
            options=TransientOptions(method="trapezoidal"),
        )
        steady = transient.waveform("out").window(td, 2 * td)
        amp_transient = 2 * abs(fourier_coefficient(steady, fd))
        assert amp_mpde == pytest.approx(amp_transient, rel=0.05)

    def test_dc_level_matches(self, switching_case):
        mix, mna, mpde = switching_case
        td = mix.scales.difference_period
        envelope = mpde.baseband_envelope("out")
        transient = run_transient(
            mna,
            t_stop=2 * td,
            dt=1 / mix.lo_frequency / 40,
            options=TransientOptions(method="trapezoidal"),
        )
        steady = transient.waveform("out").window(td, 2 * td)
        assert envelope.mean() == pytest.approx(steady.mean(), rel=0.01)

    def test_diagonal_waveform_matches_pointwise(self, switching_case):
        """x(t) = x_hat(t, t) tracks the brute-force waveform within interpolation error."""
        mix, mna, mpde = switching_case
        td = mix.scales.difference_period
        transient = run_transient(
            mna,
            t_stop=1.2 * td,
            dt=1 / mix.lo_frequency / 60,
            options=TransientOptions(method="trapezoidal"),
        )
        window = transient.waveform("out").window(td, 1.1 * td)
        diagonal = mpde.bivariate("out").diagonal(window.times)
        error = np.max(np.abs(diagonal.values - window.values))
        assert error < 0.05 * window.peak_to_peak()


class TestMPDEAgainstShooting:
    def test_ideal_mixer_difference_period_pss(self):
        """Shooting over one difference period agrees with the MPDE envelope."""
        mix = ideal_multiplier_mixer(
            lo_frequency=1e6, difference_frequency=25e3, load_capacitance=2e-9
        )
        mna = mix.compile()
        fd = mix.scales.difference_frequency
        td = mix.scales.difference_period

        mpde = solve_mpde(mna, mix.scales, MPDEOptions(n_fast=32, n_slow=24))
        amp_mpde = 2 * abs(fourier_coefficient(mpde.baseband_envelope("out"), fd))

        steps = int(40 * mix.lo_frequency / fd)
        shooting = shooting_periodic_steady_state(
            mna, td, options=ShootingOptions(steps_per_period=steps)
        )
        amp_shooting = 2 * abs(fourier_coefficient(shooting.waveform("out"), fd))
        assert amp_mpde == pytest.approx(amp_shooting, rel=0.05)

    def test_mpde_system_is_much_smaller_than_shooting_grid(self):
        """The core claim of the paper: ~10^3 grid unknowns replace >=10^5 time samples."""
        mix = unbalanced_switching_mixer(lo_frequency=450e6, difference_frequency=15e3)
        mna = mix.compile()
        mpde_unknowns = 40 * 30 * mna.n_unknowns
        # Shooting needs >= 20 points per LO cycle over one difference period.
        shooting_steps = 20 * int(mix.scales.disparity)
        shooting_unknowns = shooting_steps * mna.n_unknowns
        assert mix.scales.disparity == pytest.approx(30000)
        assert shooting_unknowns / mpde_unknowns > 250  # ">= 250x larger system"


class TestEnvelopeConsistency:
    def test_envelope_bounds_contain_diagonal(self, switching_case):
        """The min/max envelopes bound the reconstructed one-time waveform."""
        mix, _, mpde = switching_case
        td = mix.scales.difference_period
        surface = mpde.bivariate("out")
        upper = surface.envelope_max()
        lower = surface.envelope_min()
        times = np.linspace(0, td, 1500)
        diagonal = surface.diagonal(times)
        tol = 0.02 * diagonal.peak_to_peak()
        assert np.all(diagonal.values <= np.asarray(upper(times)) + tol)
        assert np.all(diagonal.values >= np.asarray(lower(times)) - tol)
