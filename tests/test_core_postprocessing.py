"""Tests for envelope extraction and diagonal reconstruction helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    carrier_ripple,
    diagonal_samples_per_period,
    envelope_swing,
    extract_envelope,
    fast_slice_at_phase,
    reconstruct_diagonal,
    reconstruct_fast_cycles,
)
from repro.signals import BivariateWaveform
from repro.utils import MPDEError


@pytest.fixture
def am_surface():
    """An amplitude-modulated carrier surface: (1 + 0.5 cos(2 pi t2/T2)) * cos(2 pi t1/T1)."""
    n1, n2 = 64, 48
    period1, period2 = 1e-9, 1e-4
    t1 = np.arange(n1) * period1 / n1
    t2 = np.arange(n2) * period2 / n2
    env = 1.0 + 0.5 * np.cos(2 * np.pi * t2 / period2)
    values = env[None, :] * np.cos(2 * np.pi * t1 / period1)[:, None]
    return BivariateWaveform(values, period1, period2, name="am")


@pytest.fixture
def offset_surface():
    """A surface with a baseband (slow-axis) signal plus carrier ripple."""
    n1, n2 = 32, 40
    period1, period2 = 1e-9, 1e-4
    t1 = np.arange(n1) * period1 / n1
    t2 = np.arange(n2) * period2 / n2
    baseband = 0.2 + 0.1 * np.sin(2 * np.pi * t2 / period2)
    ripple = 0.02 * np.cos(2 * np.pi * t1 / period1)
    values = baseband[None, :] + ripple[:, None]
    return BivariateWaveform(values, period1, period2, name="mixed")


class TestExtractEnvelope:
    def test_mean_removes_carrier(self, offset_surface):
        env = extract_envelope(offset_surface, "mean")
        t2 = env.times
        expected = 0.2 + 0.1 * np.sin(2 * np.pi * t2 / offset_surface.period2)
        np.testing.assert_allclose(env.values, expected, atol=1e-9)

    def test_max_envelope_of_am_carrier(self, am_surface):
        env = extract_envelope(am_surface, "max")
        expected = 1.0 + 0.5 * np.cos(2 * np.pi * env.times / am_surface.period2)
        np.testing.assert_allclose(env.values, expected, rtol=1e-2)

    def test_min_envelope_is_negative_of_max_for_symmetric_carrier(self, am_surface):
        upper = extract_envelope(am_surface, "max")
        lower = extract_envelope(am_surface, "min")
        np.testing.assert_allclose(lower.values, -upper.values, atol=1e-9)

    def test_rms_envelope(self, am_surface):
        env = extract_envelope(am_surface, "rms")
        expected = (1.0 + 0.5 * np.cos(2 * np.pi * env.times / am_surface.period2)) / np.sqrt(2)
        np.testing.assert_allclose(env.values, expected, rtol=1e-2)

    def test_unknown_mode(self, am_surface):
        with pytest.raises(MPDEError):
            extract_envelope(am_surface, "p99")

    def test_envelope_swing(self, am_surface):
        # AM index 0.5: the upper envelope swings from 0.5 to 1.5.
        assert envelope_swing(am_surface, "max") == pytest.approx(1.0, rel=5e-2)


class TestSlicesAndRipple:
    def test_fast_slice_at_phase(self, am_surface):
        slice_peak = fast_slice_at_phase(am_surface, 0.0)
        expected = 1.0 + 0.5 * np.cos(2 * np.pi * slice_peak.times / am_surface.period2)
        np.testing.assert_allclose(slice_peak.values, expected, atol=1e-9)

    def test_fast_slice_phase_validation(self, am_surface):
        with pytest.raises(MPDEError):
            fast_slice_at_phase(am_surface, 1.2)

    def test_carrier_ripple(self, offset_surface):
        ripple = carrier_ripple(offset_surface)
        np.testing.assert_allclose(ripple.values, 0.04, rtol=1e-2)


class TestDiagonalReconstruction:
    def test_reconstruct_diagonal_matches_closed_form(self, am_surface):
        t = np.linspace(0, am_surface.period2, 3001)
        diag = reconstruct_diagonal(am_surface, 0.0, am_surface.period2, 3001)
        expected = (1.0 + 0.5 * np.cos(2 * np.pi * t / am_surface.period2)) * np.cos(
            2 * np.pi * t / am_surface.period1
        )
        assert np.max(np.abs(diag.values - expected)) < 0.03

    def test_reconstruct_fast_cycles_span(self, am_surface):
        wave = reconstruct_fast_cycles(am_surface, t_center=2.22e-6, n_cycles=5)
        assert wave.duration == pytest.approx(5 * am_surface.period1)
        assert len(wave) == 5 * 64 + 1

    def test_reconstruct_validation(self, am_surface):
        with pytest.raises(MPDEError):
            reconstruct_diagonal(am_surface, 1.0, 0.5)
        with pytest.raises(MPDEError):
            reconstruct_diagonal(am_surface, 0.0, 1.0, n_samples=1)
        with pytest.raises(MPDEError):
            reconstruct_fast_cycles(am_surface, 0.0, n_cycles=0)
        with pytest.raises(MPDEError):
            reconstruct_fast_cycles(am_surface, 0.0, samples_per_cycle=2)

    def test_diagonal_samples_per_period(self, am_surface):
        n = diagonal_samples_per_period(am_surface, oversampling=4)
        assert n >= 4 * am_surface.period2 / am_surface.period1
        with pytest.raises(MPDEError):
            diagonal_samples_per_period(am_surface, oversampling=0)
