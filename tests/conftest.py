"""Shared fixtures: small reference circuits used across the test suite.

Parallel tier-1 mode
--------------------
Setting ``REPRO_TIER1_WORKERS=N`` (N >= 2) reroutes every ``Circuit.compile``
call that does not pass explicit options through the *sharded* kernel backend
with ``N`` worker processes — the whole tier-1 suite then runs on the
parallel execution layer and must pass identically (sharding is bit-for-bit
equal to serial by contract).  The CI workflow runs one such job; tests that
pin their own ``EvaluationOptions`` are deliberately left untouched.

Resident-factor tier-1 mode
---------------------------
Setting ``REPRO_TIER1_FACTOR_BACKEND=resident`` reroutes every
:class:`~repro.core.solver.MPDESolver` built with default execution options
through the worker-resident factor service
(``MPDEOptions(parallel=True, factor_backend="resident")``; worker count from
``REPRO_TIER1_WORKERS`` when >= 2, else 2) — the whole tier-1 suite then runs
its partially-averaged preconditioner applies in forked workers and must pass
identically (the service is bit-for-bit equal to the in-process path by
contract).  Only the factor path reroutes: device evaluation keeps whatever
the test configured, and tests that pin their own ``parallel`` /
``n_workers`` / ``factor_backend`` options are deliberately left untouched.
The CI workflow runs one such job (``tier1-resident``).

Fault-injected tier-1 mode
--------------------------
Setting ``REPRO_FAULT_PROFILE`` to a comma-separated list of named fault
profiles (see :func:`repro.resilience.build_profile_specs`) arms a *fresh*
fault plan around every test — each profile is recoverable by design, so the
suite must pass identically with it armed, proving the recovery machinery
end-to-end.  The CI workflow runs one such job (``tier1-faults``).  Tests
that manage their own fault plans or assert on exact solver effort opt out
with ``@pytest.mark.no_fault_injection``.

Scenario-smoke tier-1 mode
--------------------------
Setting ``REPRO_TIER1_SCENARIO_SMOKE=1`` solves the first case of *every*
registered scenario (at its downsized smoke configuration) once at session
start, asserting convergence and finite metrics before any test runs — a
fast end-to-end pre-flight of the registry, the circuit builders, grid
selection and all three analyses.  The CI workflow runs one such job
(``tier1-scenarios``).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.circuits.devices import (
    Capacitor,
    Diode,
    DiodeParams,
    Inductor,
    MOSFETParams,
    NMOS,
    Resistor,
    VoltageSource,
)
from repro.rf import ideal_multiplier_mixer, unbalanced_switching_mixer
from repro.signals import DCStimulus, SinusoidStimulus, SumStimulus


@pytest.fixture(scope="session", autouse=True)
def _tier1_parallel_workers():
    """Honour ``REPRO_TIER1_WORKERS`` (see the module docstring)."""
    workers = int(os.environ.get("REPRO_TIER1_WORKERS", "0") or 0)
    if workers < 2:
        yield
        return
    from repro.utils import EvaluationOptions

    original = Circuit.compile

    def compile_with_workers(self, options=None):
        if options is None:
            options = EvaluationOptions(kernel_backend="sharded", n_workers=workers)
        return original(self, options)

    Circuit.compile = compile_with_workers
    try:
        yield
    finally:
        Circuit.compile = original


@pytest.fixture(scope="session", autouse=True)
def _tier1_factor_backend():
    """Honour ``REPRO_TIER1_FACTOR_BACKEND`` (see the module docstring)."""
    backend = os.environ.get("REPRO_TIER1_FACTOR_BACKEND", "").strip()
    if backend != "resident":
        yield
        return
    import dataclasses

    from repro.core.solver import MPDESolver

    workers = int(os.environ.get("REPRO_TIER1_WORKERS", "0") or 0)
    workers = workers if workers >= 2 else 2
    original = MPDESolver.__init__

    def init_with_resident(self, problem, options=None):
        effective = options or problem.options
        if (
            not effective.parallel
            and effective.n_workers is None
            and effective.factor_backend == "threads"
        ):
            # Default execution knobs: reroute the factor path only.  The
            # problem (and its MNA evaluation options) stay untouched, so
            # device evaluation keeps running however the test set it up.
            options = dataclasses.replace(
                effective, parallel=True, n_workers=workers, factor_backend="resident"
            )
        original(self, problem, options)

    MPDESolver.__init__ = init_with_resident
    try:
        yield
    finally:
        MPDESolver.__init__ = original


@pytest.fixture(scope="session", autouse=True)
def _tier1_scenario_smoke():
    """Honour ``REPRO_TIER1_SCENARIO_SMOKE`` (see the module docstring)."""
    if os.environ.get("REPRO_TIER1_SCENARIO_SMOKE", "").strip() not in ("1", "true"):
        yield
        return
    import math

    from repro.scenarios import build_scenario_smoke, run_scenario, scenario_names

    failures = []
    for name in scenario_names():
        try:
            run = run_scenario(build_scenario_smoke(name), first_case_only=True)
        except Exception as error:  # noqa: BLE001 — collect, report all at once
            failures.append(f"{name}: {type(error).__name__}: {error}")
            continue
        stats = getattr(run.case_runs[0].result, "stats", None)
        if stats is not None and not getattr(stats, "converged", True):
            failures.append(f"{name}: solve did not converge")
        for key, value in run.case_runs[0].metrics.items():
            if not math.isfinite(value):
                failures.append(f"{name}: metric {key!r} is not finite ({value!r})")
    if failures:
        pytest.fail(
            "scenario smoke pre-flight failed:\n  " + "\n  ".join(failures),
            pytrace=False,
        )
    yield


@pytest.fixture(autouse=True)
def _fault_profile(request):
    """Honour ``REPRO_FAULT_PROFILE`` (see the module docstring)."""
    profile = os.environ.get("REPRO_FAULT_PROFILE", "").strip()
    if not profile or request.node.get_closest_marker("no_fault_injection"):
        yield
        return
    from repro.resilience import build_profile_specs, inject_faults

    with inject_faults(*build_profile_specs(profile)):
        yield


@pytest.fixture
def voltage_divider():
    """A 10 V source driving two equal resistors: v(mid) = 5 V."""
    ckt = Circuit("divider")
    ckt.add(VoltageSource("vin", "top", ckt.GROUND, DCStimulus(10.0)))
    ckt.add(Resistor("r1", "top", "mid", 1e3))
    ckt.add(Resistor("r2", "mid", ckt.GROUND, 1e3))
    return ckt


@pytest.fixture
def rc_lowpass():
    """1 kHz sine through R = 1 kOhm into C = 100 nF (corner ~1.59 kHz)."""
    ckt = Circuit("rc lowpass")
    ckt.add(VoltageSource("vin", "in", ckt.GROUND, SinusoidStimulus(1.0, 1e3)))
    ckt.add(Resistor("r1", "in", "out", 1e3))
    ckt.add(Capacitor("c1", "out", ckt.GROUND, 100e-9))
    return ckt


@pytest.fixture
def rc_lowpass_step():
    """A DC source charging an RC (for step-response transient tests)."""
    ckt = Circuit("rc step")
    ckt.add(VoltageSource("vin", "in", ckt.GROUND, DCStimulus(1.0)))
    ckt.add(Resistor("r1", "in", "out", 1e3))
    ckt.add(Capacitor("c1", "out", ckt.GROUND, 1e-6))
    return ckt


@pytest.fixture
def series_rlc():
    """Series RLC driven by a sine at its resonance (~5.03 kHz)."""
    ckt = Circuit("series rlc")
    ckt.add(VoltageSource("vin", "in", ckt.GROUND, SinusoidStimulus(1.0, 5.033e3)))
    ckt.add(Resistor("r1", "in", "a", 50.0))
    ckt.add(Inductor("l1", "a", "b", 1e-3))
    ckt.add(Capacitor("c1", "b", ckt.GROUND, 1e-6))
    return ckt


@pytest.fixture
def diode_rectifier():
    """Half-wave rectifier: sine source, diode, RC load."""
    ckt = Circuit("half-wave rectifier")
    ckt.add(VoltageSource("vin", "in", ckt.GROUND, SinusoidStimulus(5.0, 1e3)))
    ckt.add(Diode("d1", "in", "out", DiodeParams(saturation_current=1e-12)))
    ckt.add(Resistor("rload", "out", ckt.GROUND, 1e3))
    ckt.add(Capacitor("cload", "out", ckt.GROUND, 10e-6))
    return ckt


@pytest.fixture
def nmos_amplifier():
    """Common-source NMOS stage with resistive load (DC + small sine drive)."""
    ckt = Circuit("common source")
    params = MOSFETParams(vto=0.6, kp=200e-6, w=20e-6, l=1e-6, lambda_=0.02)
    ckt.add(VoltageSource("vdd", "vdd", ckt.GROUND, DCStimulus(3.0)))
    ckt.add(
        VoltageSource(
            "vg",
            "gate",
            ckt.GROUND,
            SumStimulus((DCStimulus(1.0), SinusoidStimulus(0.05, 10e3))),
        )
    )
    ckt.add(Resistor("rd", "vdd", "drain", 5e3))
    ckt.add(NMOS("m1", "drain", "gate", ckt.GROUND, params=params))
    return ckt


@pytest.fixture
def scaled_ideal_mixer():
    """Ideal multiplier mixer with laptop-friendly frequencies (1 MHz / 10 kHz)."""
    return ideal_multiplier_mixer(lo_frequency=1e6, difference_frequency=10e3)


@pytest.fixture
def scaled_switching_mixer():
    """Unbalanced switching mixer scaled to 2 MHz LO / 50 kHz baseband."""
    return unbalanced_switching_mixer(lo_frequency=2e6, difference_frequency=50e3)


@pytest.fixture
def rng():
    """Deterministic random generator for tests that need random data."""
    return np.random.default_rng(20020610)
