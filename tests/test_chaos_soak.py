"""Randomized chaos-soak harness (the PR-8 tentpole, part 3).

Each soak cycle arms a seeded random fault schedule
(:func:`repro.resilience.chaos_specs`), forks a fresh supervised worker
pool *inside* the armed plan (forked children inherit the plan, so
worker-side faults really fire), runs a full MPDE solve through it, and
requires the answer to match the fault-free serial reference — the chaos
schedules are recoverable by design, so "mostly works" is a failure.

The harness then asserts the operational part of the contract: after 25+
cycles (plus dedicated hung-worker cycles under a short watchdog timeout)
there are **zero zombie workers and zero leaked shared-memory segments**.

A failing cycle prints its seed; ``chaos_specs(seed)`` is deterministic,
so every failure is replayable in isolation.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import replace

import numpy as np
import pytest

from repro.core import solve_mpde
from repro.parallel import detect_capabilities
from repro.resilience import chaos_specs, inject_faults, worker_hang
from repro.utils import EvaluationOptions, MPDEOptions, RestartPolicy

from test_resilience import _linear_rc

pytestmark = pytest.mark.no_fault_injection

_fork_only = pytest.mark.skipif(
    not detect_capabilities().fork_available,
    reason="worker pools require the 'fork' start method",
)

#: Base seed for the soak schedules (cycle ``i`` uses ``_SEED + i``).
_SEED = 20020610
#: Soak length required by the acceptance criteria.
_CYCLES = 25

#: Ample heal budget with near-zero backoffs: the soak wants many healed
#: crashes per pool lifetime, not wall-clock-realistic recovery pacing.
_SOAK_POLICY = RestartPolicy(max_restarts=50, backoff_base_s=0.001, backoff_cap_s=0.01)

_OPTIONS = MPDEOptions(n_fast=8, n_slow=8)


def _repro_children() -> list[str]:
    """Names of live worker processes spawned by the library."""
    return sorted(
        p.name
        for p in multiprocessing.active_children()
        if p.name.startswith("repro-")
    )


def _wait_for_no_children(baseline: list[str], timeout_s: float = 10.0) -> list[str]:
    """Poll until every soak-spawned worker is reaped (or timeout).

    Returns the workers that outlived the soak beyond the ``baseline`` set
    (pools owned by session fixtures, e.g. the tier-1 execution-rewriting
    lanes, legitimately stay up).  ``active_children()`` joins finished
    children as a side effect, so the poll also guarantees no zombies
    survive.
    """
    deadline = time.monotonic() + timeout_s
    leftovers = [name for name in _repro_children() if name not in baseline]
    while leftovers and time.monotonic() < deadline:
        time.sleep(0.05)
        leftovers = [name for name in _repro_children() if name not in baseline]
    return leftovers


def _shm_entries() -> set[str]:
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # pragma: no cover - non-tmpfs platforms
        return set()


@_fork_only
class TestChaosSoak:
    def test_chaos_cycles_recover_and_leak_nothing(self):
        shm_before = _shm_entries()
        children_before = _repro_children()

        # Under the tier-1 execution-rewriting lanes this compile itself
        # gets a (supervised, bit-for-bit-equal) shard pool, so the
        # reference system is closed before the leak sweep below.
        serial, scales = _linear_rc()
        reference = solve_mpde(serial, scales, replace(_OPTIONS, n_workers=1))
        assert reference.stats.converged

        heals = 0
        for cycle in range(_CYCLES):
            seed = _SEED + cycle
            specs = chaos_specs(seed)
            with inject_faults(*specs):
                # Fork the pool inside the armed plan: children inherit it,
                # so worker-side faults fire in this generation.
                sharded = serial.circuit.compile(
                    EvaluationOptions(
                        kernel_backend="sharded",
                        n_workers=2,
                        worker_timeout_s=30.0,
                        restart=_SOAK_POLICY,
                    )
                )
                try:
                    result = solve_mpde(
                        sharded, scales, replace(_OPTIONS, parallel=True, n_workers=2)
                    )
                    assert result.stats.converged, f"chaos seed {seed} did not converge"
                    # Crash-heal cycles replay the exact trajectory (bitwise;
                    # asserted by test_selfhealing.py); ladder-recovered
                    # cycles re-run Newton under an adjusted rung, so the
                    # soak asserts agreement to solver tolerance instead.
                    np.testing.assert_allclose(
                        result.states,
                        reference.states,
                        rtol=1e-6,
                        atol=1e-8,
                        err_msg=f"chaos seed {seed} diverged from the reference",
                    )
                    heals += sharded.supervisor.heals
                finally:
                    sharded.close()

        # The seeded schedules draw worker crashes with positive probability;
        # over 25 cycles at least one must have actually healed through the
        # supervisor (a zero here means the faults never reached the pool).
        assert heals > 0

        serial.close()
        leftovers = _wait_for_no_children(children_before)
        assert leftovers == [], f"zombie workers after soak: {leftovers}"
        leaked = _shm_entries() - shm_before
        assert leaked == set(), f"leaked /dev/shm segments: {sorted(leaked)}"

    def test_hung_worker_cycles_heal_under_short_watchdog(self):
        shm_before = _shm_entries()
        children_before = _repro_children()
        serial, scales = _linear_rc()
        reference = solve_mpde(serial, scales, replace(_OPTIONS, n_workers=1))

        for cycle in range(2):
            with inject_faults(worker_hang(hang_s=2.0, count=1, role="shard")):
                sharded = serial.circuit.compile(
                    EvaluationOptions(
                        kernel_backend="sharded",
                        n_workers=2,
                        worker_timeout_s=0.5,
                        restart=_SOAK_POLICY,
                    )
                )
                try:
                    result = solve_mpde(
                        sharded, scales, replace(_OPTIONS, parallel=True, n_workers=2)
                    )
                    assert result.stats.converged
                    np.testing.assert_allclose(
                        result.states, reference.states, rtol=1e-6, atol=1e-8
                    )
                    # The watchdog classified the hang as a pool failure and
                    # the supervisor healed it (hang_s > worker_timeout_s).
                    assert sharded.supervisor.heals >= 1
                finally:
                    sharded.close()

        serial.close()
        leftovers = _wait_for_no_children(children_before)
        assert leftovers == [], f"zombie workers after hang cycles: {leftovers}"
        leaked = _shm_entries() - shm_before
        assert leaked == set(), f"leaked /dev/shm segments: {sorted(leaked)}"
