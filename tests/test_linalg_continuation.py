"""Unit tests for the continuation (homotopy) driver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.linalg import continuation_solve
from repro.utils import ContinuationOptions, ConvergenceError, NewtonOptions


def _embedded_exponential(v, lam):
    """F(x; lam) = x + lam * (exp(4 x) - 10).

    At lam = 0 the solution is x = 0; at lam = 1 it is the root of
    x + exp(4x) = 10 (~0.57), hard for plain Newton from 0 with a full step.
    """
    x = v[0]
    return np.array([x + lam * (np.exp(4.0 * x) - 10.0)])


def _embedded_exponential_jac(v, lam):
    x = v[0]
    return np.array([[1.0 + lam * 4.0 * np.exp(4.0 * x)]])


class TestContinuationSolve:
    def test_reaches_target_problem(self):
        result = continuation_solve(
            _embedded_exponential,
            _embedded_exponential_jac,
            np.array([0.0]),
        )
        # Verify the returned point solves the lam=1 problem.
        res = _embedded_exponential(result.x, 1.0)
        assert abs(res[0]) < 1e-7
        assert result.lambdas[-1] == pytest.approx(1.0)
        assert result.steps >= 1

    def test_lambda_path_is_monotone(self):
        result = continuation_solve(
            _embedded_exponential, _embedded_exponential_jac, np.array([0.0])
        )
        lams = np.asarray(result.lambdas)
        assert np.all(np.diff(lams) > 0)

    def test_linear_problem_takes_few_steps(self):
        result = continuation_solve(
            lambda v, lam: np.array([v[0] - lam * 3.0]),
            lambda v, lam: np.eye(1),
            np.array([0.0]),
        )
        np.testing.assert_allclose(result.x, [3.0], rtol=1e-9)

    def test_counts_newton_iterations(self):
        result = continuation_solve(
            _embedded_exponential, _embedded_exponential_jac, np.array([0.0])
        )
        assert result.newton_iterations > 0

    def test_unreachable_problem_raises(self):
        """x^2 + lam = 0 has no real solution for lam > 0: continuation must fail."""
        with pytest.raises(ConvergenceError):
            continuation_solve(
                lambda v, lam: np.array([v[0] ** 2 + lam]),
                lambda v, lam: np.array([[2.0 * v[0] + 1e-6]]),
                np.array([0.0]),
                NewtonOptions(max_iterations=15),
                ContinuationOptions(max_steps=30),
            )

    def test_initial_problem_failure_raises(self):
        """If even the lambda_start problem cannot be solved, raise immediately."""
        with pytest.raises(ConvergenceError, match="initial problem"):
            continuation_solve(
                lambda v, lam: np.array([v[0] ** 2 + 1.0]),  # no root at lam=0 either
                lambda v, lam: np.array([[2.0 * v[0] + 1e-6]]),
                np.array([0.0]),
                NewtonOptions(max_iterations=10),
            )

    def test_respects_max_steps(self):
        with pytest.raises(ConvergenceError):
            continuation_solve(
                _embedded_exponential,
                _embedded_exponential_jac,
                np.array([0.0]),
                continuation_options=ContinuationOptions(
                    initial_step=1e-4, max_step=1e-4, max_steps=5
                ),
            )
