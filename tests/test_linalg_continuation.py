"""Unit tests for the continuation (homotopy) driver."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import pytest

from repro.linalg import continuation_solve, continuation_sweep
from repro.resilience import Deadline
from repro.utils import (
    ContinuationOptions,
    ConvergenceError,
    DeadlineExceededError,
    NewtonOptions,
)


def _embedded_exponential(v, lam):
    """F(x; lam) = x + lam * (exp(4 x) - 10).

    At lam = 0 the solution is x = 0; at lam = 1 it is the root of
    x + exp(4x) = 10 (~0.57), hard for plain Newton from 0 with a full step.
    """
    x = v[0]
    return np.array([x + lam * (np.exp(4.0 * x) - 10.0)])


def _embedded_exponential_jac(v, lam):
    x = v[0]
    return np.array([[1.0 + lam * 4.0 * np.exp(4.0 * x)]])


class TestContinuationSolve:
    def test_reaches_target_problem(self):
        result = continuation_solve(
            _embedded_exponential,
            _embedded_exponential_jac,
            np.array([0.0]),
        )
        # Verify the returned point solves the lam=1 problem.
        res = _embedded_exponential(result.x, 1.0)
        assert abs(res[0]) < 1e-7
        assert result.lambdas[-1] == pytest.approx(1.0)
        assert result.steps >= 1

    def test_lambda_path_is_monotone(self):
        result = continuation_solve(
            _embedded_exponential, _embedded_exponential_jac, np.array([0.0])
        )
        lams = np.asarray(result.lambdas)
        assert np.all(np.diff(lams) > 0)

    def test_linear_problem_takes_few_steps(self):
        result = continuation_solve(
            lambda v, lam: np.array([v[0] - lam * 3.0]),
            lambda v, lam: np.eye(1),
            np.array([0.0]),
        )
        np.testing.assert_allclose(result.x, [3.0], rtol=1e-9)

    def test_counts_newton_iterations(self):
        result = continuation_solve(
            _embedded_exponential, _embedded_exponential_jac, np.array([0.0])
        )
        assert result.newton_iterations > 0

    def test_unreachable_problem_raises(self):
        """x^2 + lam = 0 has no real solution for lam > 0: continuation must fail."""
        with pytest.raises(ConvergenceError):
            continuation_solve(
                lambda v, lam: np.array([v[0] ** 2 + lam]),
                lambda v, lam: np.array([[2.0 * v[0] + 1e-6]]),
                np.array([0.0]),
                NewtonOptions(max_iterations=15),
                ContinuationOptions(max_steps=30),
            )

    def test_initial_problem_failure_raises(self):
        """If even the lambda_start problem cannot be solved, raise immediately."""
        with pytest.raises(ConvergenceError, match="initial problem"):
            continuation_solve(
                lambda v, lam: np.array([v[0] ** 2 + 1.0]),  # no root at lam=0 either
                lambda v, lam: np.array([[2.0 * v[0] + 1e-6]]),
                np.array([0.0]),
                NewtonOptions(max_iterations=10),
            )

    def test_respects_max_steps(self):
        with pytest.raises(ConvergenceError):
            continuation_solve(
                _embedded_exponential,
                _embedded_exponential_jac,
                np.array([0.0]),
                continuation_options=ContinuationOptions(
                    initial_step=1e-4, max_step=1e-4, max_steps=5
                ),
            )

    def test_step_halving_floor_raises_underflow(self):
        """Every step beyond lambda_start fails: the step size must shrink
        to the ``min_step`` floor and raise, not loop forever."""
        with pytest.raises(ConvergenceError, match="underflow"):
            continuation_solve(
                # Root only at lam = 0 (x = 0); no real root for any lam > 0.
                lambda v, lam: np.array([v[0] ** 2 + lam]),
                lambda v, lam: np.array([[2.0 * v[0] + 1e-6]]),
                np.array([0.0]),
                NewtonOptions(max_iterations=15),
                ContinuationOptions(min_step=1e-3),
            )


@dataclass
class _Step:
    """Minimal SweepStep implementation for driving the sweep directly."""

    x: np.ndarray
    converged: bool
    iterations: int = 1
    residual_norm: float = 0.0


class TestContinuationSweep:
    """Edge cases of the shared sweep driver itself."""

    def test_non_monotone_embedding_recovers_mid_sweep(self):
        """Difficulty spiking in the *middle* of the sweep (not at the end)
        must shrink the step through the hard region and regrow after it."""
        calls: list[float] = []

        def solve_at(lam, x_guess):
            calls.append(lam)
            previous = x_guess[0]
            # The hard band [0.4, 0.6] only admits tiny steps: any step
            # landing in or crossing it fails unless it is small.  (x tracks
            # lambda, so the warm start is the previous accepted lambda.)
            touches_hard_band = previous < 0.6 and lam > 0.4
            if touches_hard_band and lam - previous > 0.05:
                return _Step(x=x_guess, converged=False)
            return _Step(x=np.array([lam]), converged=True)

        result = continuation_sweep(
            solve_at,
            np.array([0.0]),
            ContinuationOptions(initial_step=0.25, min_step=1e-6),
        )
        assert result.lambdas[-1] == pytest.approx(1.0)
        lams = np.asarray(result.lambdas)
        assert np.all(np.diff(lams) > 0)  # lambda itself stays monotone
        assert result.rejected_steps >= 1  # the hard band forced shrinks
        steps = np.diff(lams)
        hard = steps[(lams[1:] > 0.4) & (lams[1:] <= 0.6)]
        easy_after = steps[lams[1:] > 0.7]
        assert hard.size and easy_after.size
        # Steps through the hard band are small; the sweep regrows afterwards.
        assert hard.max() <= 0.05 + 1e-12
        assert easy_after.max() > hard.max()

    def test_failure_at_lambda_start_is_immediate(self):
        attempts = []

        def solve_at(lam, x_guess):
            attempts.append(lam)
            return _Step(x=x_guess, converged=False, residual_norm=1.0)

        with pytest.raises(ConvergenceError, match="initial problem"):
            continuation_sweep(solve_at, np.array([0.0]))
        assert attempts == [0.0]  # no embedding steps were attempted

    def test_deadline_checked_between_steps(self):
        now = [0.0]

        def solve_at(lam, x_guess):
            now[0] += 1.0  # each embedded solve costs one fake second
            return _Step(x=np.array([lam]), converged=True)

        deadline = Deadline(1.5, clock=lambda: now[0])
        with pytest.raises(DeadlineExceededError) as info:
            continuation_sweep(
                solve_at,
                np.array([0.0]),
                ContinuationOptions(initial_step=0.05, max_step=0.05),
                deadline=deadline,
            )
        assert info.value.stage == "continuation"
