"""Unit tests for DC operating-point analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import dc_operating_point
from repro.circuits import Circuit
from repro.circuits.devices import (
    Diode,
    DiodeParams,
    MOSFETParams,
    NMOS,
    Resistor,
    VoltageSource,
)
from repro.signals import DCStimulus, SinusoidStimulus
from repro.utils import ConvergenceError, NewtonOptions


class TestLinearCircuits:
    def test_voltage_divider(self, voltage_divider):
        mna = voltage_divider.compile()
        solution = dc_operating_point(mna)
        assert solution.voltage(mna, "mid") == pytest.approx(5.0, rel=1e-9)
        assert solution.voltage(mna, "top") == pytest.approx(10.0, rel=1e-9)
        assert solution.strategy == "newton"

    def test_source_branch_current(self, voltage_divider):
        mna = voltage_divider.compile()
        solution = dc_operating_point(mna)
        # 10 V across 2 kOhm -> 5 mA; SPICE convention: current through the
        # source from + to - is negative when delivering power.
        assert solution.x[mna.branch_index("vin")] == pytest.approx(-5e-3, rel=1e-6)

    def test_sinusoidal_source_frozen_at_time(self, rc_lowpass):
        mna = rc_lowpass.compile()
        at_zero = dc_operating_point(mna, time=0.0)
        at_quarter = dc_operating_point(mna, time=0.25e-3)
        assert at_zero.voltage(mna, "in") == pytest.approx(1.0, rel=1e-9)
        assert at_quarter.voltage(mna, "in") == pytest.approx(0.0, abs=1e-9)

    def test_ladder_network(self):
        ckt = Circuit("ladder")
        ckt.add(VoltageSource("v1", "n0", ckt.GROUND, DCStimulus(1.0)))
        for k in range(5):
            ckt.add(Resistor(f"rs{k}", f"n{k}", f"n{k+1}", 1e3))
            ckt.add(Resistor(f"rp{k}", f"n{k+1}", ckt.GROUND, 1e3))
        mna = ckt.compile()
        solution = dc_operating_point(mna)
        voltages = [solution.voltage(mna, f"n{k}") for k in range(6)]
        assert voltages[0] == pytest.approx(1.0)
        assert all(voltages[k] > voltages[k + 1] for k in range(5))


class TestNonlinearCircuits:
    def test_diode_resistor(self):
        ckt = Circuit("diode bias")
        ckt.add(VoltageSource("v1", "a", ckt.GROUND, DCStimulus(5.0)))
        ckt.add(Resistor("r1", "a", "d", 1e3))
        ckt.add(Diode("d1", "d", ckt.GROUND, DiodeParams(saturation_current=1e-14)))
        mna = ckt.compile()
        solution = dc_operating_point(mna)
        vd = solution.voltage(mna, "d")
        # Forward drop of a silicon-like diode at a few mA.
        assert 0.6 < vd < 0.85
        # KCL: resistor current equals diode current.
        i_r = (5.0 - vd) / 1e3
        vt = DiodeParams().thermal_voltage
        i_d = 1e-14 * (np.exp(vd / vt) - 1.0)
        assert i_r == pytest.approx(i_d, rel=1e-5)

    def test_diode_stack_requires_continuation_friendly_solver(self):
        """A 3-diode stack from a zero guess exercises damping / continuation."""
        ckt = Circuit("diode stack")
        ckt.add(VoltageSource("v1", "n0", ckt.GROUND, DCStimulus(3.0)))
        ckt.add(Resistor("r1", "n0", "n1", 100.0))
        ckt.add(Diode("d1", "n1", "n2"))
        ckt.add(Diode("d2", "n2", "n3"))
        ckt.add(Diode("d3", "n3", ckt.GROUND))
        mna = ckt.compile()
        solution = dc_operating_point(mna)
        assert 1.8 < solution.voltage(mna, "n1") < 2.6
        assert solution.residual_norm < 1e-6

    def test_nmos_common_source_bias(self, nmos_amplifier):
        mna = nmos_amplifier.compile()
        solution = dc_operating_point(mna)
        vdrain = solution.voltage(mna, "drain")
        # With vgs = 1.0, vth = 0.6: id = 0.5*200u*20*(0.4^2) ~ 0.32 mA -> drop ~1.6 V.
        assert 0.5 < vdrain < 2.5

    def test_respects_initial_guess(self):
        ckt = Circuit("diode bias")
        ckt.add(VoltageSource("v1", "a", ckt.GROUND, DCStimulus(5.0)))
        ckt.add(Resistor("r1", "a", "d", 1e3))
        ckt.add(Diode("d1", "d", ckt.GROUND))
        mna = ckt.compile()
        reference = dc_operating_point(mna)
        warm = dc_operating_point(mna, x0=reference.x)
        assert warm.newton_iterations <= reference.newton_iterations
        np.testing.assert_allclose(warm.x, reference.x, rtol=1e-6, atol=1e-9)

    def test_failure_raises_convergence_error(self):
        """An impossibly tight iteration budget on a hard circuit must raise."""
        ckt = Circuit("hard")
        ckt.add(VoltageSource("v1", "n0", ckt.GROUND, DCStimulus(100.0)))
        ckt.add(Resistor("r1", "n0", "n1", 1.0))
        ckt.add(Diode("d1", "n1", ckt.GROUND))
        mna = ckt.compile()
        with pytest.raises(ConvergenceError):
            dc_operating_point(
                mna,
                newton_options=NewtonOptions(max_iterations=1, min_damping=1.0, damping=1.0),
            )


class TestSolutionObject:
    def test_reports_iterations_and_residual(self, voltage_divider):
        solution = dc_operating_point(voltage_divider.compile())
        assert solution.newton_iterations >= 1
        assert solution.residual_norm < 1e-8
