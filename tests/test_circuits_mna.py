"""Unit tests for the compiled MNA system (vectorised evaluation, sources, accessors)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.circuits.devices import Capacitor, Diode, Resistor, VoltageSource
from repro.core import ShearedTimeScales
from repro.signals import DCStimulus, ModulatedCarrierStimulus, SinusoidStimulus
from repro.utils import CircuitError


@pytest.fixture
def rc_mna():
    ckt = Circuit("rc")
    ckt.add(VoltageSource("vin", "in", ckt.GROUND, SinusoidStimulus(1.0, 1e3)))
    ckt.add(Resistor("r1", "in", "out", 1e3))
    ckt.add(Capacitor("c1", "out", ckt.GROUND, 1e-6))
    return ckt.compile()


class TestEvaluation:
    def test_single_point_shapes(self, rc_mna):
        x = np.zeros(rc_mna.n_unknowns)
        assert rc_mna.q(x).shape == (rc_mna.n_unknowns,)
        assert rc_mna.f(x).shape == (rc_mna.n_unknowns,)
        assert rc_mna.conductance_matrix(x).shape == (rc_mna.n_unknowns,) * 2

    def test_vectorised_matches_loop(self, rc_mna, rng):
        X = rng.normal(size=(7, rc_mna.n_unknowns))
        batch = rc_mna.evaluate(X)
        for k in range(7):
            single = rc_mna.evaluate(X[k])
            np.testing.assert_allclose(batch.q[k], single.q[0])
            np.testing.assert_allclose(batch.f[k], single.f[0])
            np.testing.assert_allclose(batch.conductance[k], single.conductance[0])
            np.testing.assert_allclose(batch.capacitance[k], single.capacitance[0])

    def test_wrong_size_raises(self, rc_mna):
        with pytest.raises(CircuitError):
            rc_mna.f(np.zeros(rc_mna.n_unknowns + 1))
        with pytest.raises(CircuitError):
            rc_mna.evaluate(np.zeros((3, rc_mna.n_unknowns + 2)))
        with pytest.raises(CircuitError):
            rc_mna.evaluate(np.zeros((2, 2, 2)))

    def test_jacobians_match_finite_difference_for_nonlinear_circuit(self, rng):
        ckt = Circuit("diode circuit")
        ckt.add(VoltageSource("vin", "a", ckt.GROUND, DCStimulus(1.0)))
        ckt.add(Resistor("r1", "a", "b", 100.0))
        ckt.add(Diode("d1", "b", ckt.GROUND))
        ckt.add(Capacitor("c1", "b", ckt.GROUND, 1e-9))
        mna = ckt.compile()
        x = np.array([1.0, 0.55, -1e-3])
        g = mna.conductance_matrix(x)
        g_fd = np.zeros_like(g)
        for j in range(x.size):
            h = 1e-7
            xp, xm = x.copy(), x.copy()
            xp[j] += h
            xm[j] -= h
            g_fd[:, j] = (mna.f(xp) - mna.f(xm)) / (2 * h)
        np.testing.assert_allclose(g, g_fd, rtol=1e-5, atol=1e-10)


class TestSources:
    def test_scalar_and_vector_times(self, rc_mna):
        b_scalar = rc_mna.source(0.0)
        assert b_scalar.shape == (rc_mna.n_unknowns,)
        b_vec = rc_mna.source(np.array([0.0, 1e-4]))
        assert b_vec.shape == (2, rc_mna.n_unknowns)
        np.testing.assert_allclose(b_vec[0], b_scalar)

    def test_bivariate_source_diagonal_property(self):
        scales = ShearedTimeScales.from_frequencies(1e6, 1e6 - 10e3)
        ckt = Circuit("mix drive")
        ckt.add(VoltageSource("vlo", "lo", ckt.GROUND, SinusoidStimulus(1.0, 1e6)))
        ckt.add(
            VoltageSource(
                "vrf", "rf", ckt.GROUND, ModulatedCarrierStimulus(0.3, scales.carrier_frequency)
            )
        )
        ckt.add(Resistor("r1", "lo", "rf", 1e3))
        mna = ckt.compile()
        times = np.linspace(0.0, 5e-6, 400)
        direct = mna.source(times)
        diagonal = mna.source_bivariate(times, times, scales)
        np.testing.assert_allclose(diagonal, direct, rtol=1e-9, atol=1e-12)

    def test_bivariate_source_scalar(self):
        scales = ShearedTimeScales.from_frequencies(1e6, 1e6 - 10e3)
        ckt = Circuit("t")
        ckt.add(VoltageSource("vlo", "lo", ckt.GROUND, SinusoidStimulus(1.0, 1e6)))
        ckt.add(Resistor("r1", "lo", ckt.GROUND, 1e3))
        mna = ckt.compile()
        b = mna.source_bivariate(0.0, 0.0, scales)
        assert b.shape == (mna.n_unknowns,)


class TestAccessors:
    def test_voltage_single_vector(self, rc_mna):
        x = np.zeros(rc_mna.n_unknowns)
        x[rc_mna.node_index("out")] = 2.5
        assert rc_mna.voltage(x, "out") == pytest.approx(2.5)
        assert rc_mna.voltage(x, "0") == 0.0

    def test_voltage_stacked(self, rc_mna):
        X = np.zeros((4, rc_mna.n_unknowns))
        X[:, rc_mna.node_index("out")] = np.arange(4.0)
        np.testing.assert_allclose(rc_mna.voltage(X, "out"), np.arange(4.0))
        np.testing.assert_allclose(rc_mna.voltage(X, "gnd"), np.zeros(4))

    def test_voltage_gridded(self, rc_mna):
        X = np.zeros((3, 5, rc_mna.n_unknowns))
        X[..., rc_mna.node_index("in")] = 7.0
        out = rc_mna.voltage(X, "in")
        assert out.shape == (3, 5)
        np.testing.assert_allclose(out, 7.0)

    def test_differential_voltage(self, rc_mna):
        x = np.zeros(rc_mna.n_unknowns)
        x[rc_mna.node_index("in")] = 3.0
        x[rc_mna.node_index("out")] = 1.0
        assert rc_mna.differential_voltage(x, "in", "out") == pytest.approx(2.0)

    def test_gmin_matrix_touches_only_node_rows(self, rc_mna):
        gmin = rc_mna.gmin_matrix(1e-9)
        assert gmin.shape == (rc_mna.n_unknowns,) * 2
        assert gmin[rc_mna.node_index("in"), rc_mna.node_index("in")] == 1e-9
        assert gmin[rc_mna.branch_index("vin"), rc_mna.branch_index("vin")] == 0.0

    def test_zero_state(self, rc_mna):
        assert rc_mna.zero_state().shape == (rc_mna.n_unknowns,)
        assert np.all(rc_mna.zero_state() == 0.0)

    def test_dc_residual_and_jacobian(self, rc_mna):
        x = np.zeros(rc_mna.n_unknowns)
        residual = rc_mna.dc_residual(x)
        assert residual.shape == (rc_mna.n_unknowns,)
        assert rc_mna.dc_jacobian(x).shape == (rc_mna.n_unknowns,) * 2
