"""Executable documentation: every fenced python snippet must actually run.

Documentation snippets rot the moment an API drifts, so this module extracts
every fenced ``python`` code block from ``README.md`` and ``docs/*.md`` and
executes it.  Blocks within one file share a namespace and run top to bottom,
so a document can build up an example progressively; snippets that are not
meant to run must use a different fence language (``text``, ``console``,
...).

A second test checks every relative markdown link in the same files, so
documents cannot point at renamed or deleted files.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

#: The documentation set under snippet / link test.  New top-level documents
#: must be added here (the glob covers everything inside docs/).
DOC_FILES = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")],
    key=lambda path: path.name,
)

_FENCE = re.compile(
    r"^```python[ \t]*\n(?P<body>.*?)^```[ \t]*$",
    re.MULTILINE | re.DOTALL,
)
# [text](target) links, excluding images; target trimmed of #fragments.
_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")


def python_blocks(path: Path) -> list[tuple[int, str]]:
    """All fenced ``python`` blocks of a file as ``(line_number, source)``."""
    text = path.read_text()
    blocks = []
    for match in _FENCE.finditer(text):
        line = text.count("\n", 0, match.start()) + 1
        blocks.append((line, match.group("body")))
    return blocks


def test_docs_files_exist():
    """The documentation suite this module guards must be present."""
    names = {path.name for path in DOC_FILES}
    assert "README.md" in names
    assert {"index.md", "architecture.md", "preconditioners.md"} <= names


def test_there_are_snippets_to_test():
    """Guard against a silently empty test (e.g. a fence-syntax change)."""
    assert any(python_blocks(path) for path in DOC_FILES), (
        "no fenced python blocks found in README.md / docs/*.md — "
        "either the docs lost their examples or the fence regex broke"
    )


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_python_snippets_execute(path: Path):
    """Execute the file's fenced python blocks in one shared namespace."""
    blocks = python_blocks(path)
    if not blocks:
        pytest.skip(f"{path.name} has no fenced python blocks")
    namespace: dict = {"__name__": f"docs_snippet_{path.stem}"}
    for line, source in blocks:
        code = compile(source, f"{path.name}:{line}", "exec")
        try:
            exec(code, namespace)  # noqa: S102 - executing our own docs is the point
        except Exception as exc:  # pragma: no cover - failure reporting
            pytest.fail(
                f"documentation snippet {path.name}:{line} raised "
                f"{type(exc).__name__}: {exc}"
            )


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_relative_links_resolve(path: Path):
    """Every relative markdown link must point at an existing file."""
    text = path.read_text()
    broken = []
    for match in _LINK.finditer(text):
        target = match.group(1).split("#", 1)[0]
        if not target or "://" in target or target.startswith("mailto:"):
            continue  # external link (the CI link checker stays offline)
        resolved = (path.parent / target).resolve()
        if not resolved.exists():
            line = text.count("\n", 0, match.start()) + 1
            broken.append(f"{path.name}:{line} -> {target}")
    assert not broken, "broken relative link(s): " + ", ".join(broken)
