"""Tests for the MPDE solver and its result object (the paper's core method)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.circuits.devices import Capacitor, Resistor, VoltageSource
from repro.core import MPDEProblem, MPDESolver, ShearedTimeScales, solve_mpde
from repro.rf import difference_tone_amplitude, ideal_multiplier_mixer, unbalanced_switching_mixer
from repro.signals import ModulatedCarrierStimulus, SinusoidStimulus, SumStimulus, TonePair
from repro.signals.spectrum import fourier_coefficient
from repro.utils import ConvergenceError, MPDEError, MPDEOptions, NewtonOptions


class TestLinearTwoToneRC:
    """The linear two-tone RC filter has a closed-form quasi-periodic solution."""

    f_fast = 1e6
    f_diff = 10e3
    r = 1e3
    c = 50e-9

    def _solve(self, n_fast=16, n_slow=16, fast_method="fourier", slow_method="fourier"):
        scales = ShearedTimeScales.from_frequencies(self.f_fast, self.f_fast - self.f_diff)
        ckt = Circuit("two-tone rc")
        drive = SumStimulus(
            (
                SinusoidStimulus(1.0, self.f_fast),
                ModulatedCarrierStimulus(0.5, scales.carrier_frequency),
            )
        )
        ckt.add(VoltageSource("vin", "in", ckt.GROUND, drive))
        ckt.add(Resistor("r1", "in", "out", self.r))
        ckt.add(Capacitor("c1", "out", ckt.GROUND, self.c))
        mna = ckt.compile()
        options = MPDEOptions(
            n_fast=n_fast, n_slow=n_slow, fast_method=fast_method, slow_method=slow_method
        )
        return mna, scales, solve_mpde(mna, scales, options)

    def test_surface_matches_analytic_solution(self):
        mna, scales, result = self._solve()
        surface = result.bivariate("out")
        t1, t2 = result.grid.mesh

        def transfer(freq):
            h = 1.0 / (1.0 + 2j * np.pi * freq * self.r * self.c)
            return abs(h), np.angle(h)

        mag1, ph1 = transfer(self.f_fast)
        mag2, ph2 = transfer(scales.carrier_frequency)
        expected = mag1 * np.cos(2 * np.pi * scales.fast_phase(t1) + ph1) + 0.5 * mag2 * np.cos(
            2 * np.pi * scales.carrier_phase(t1, t2) + ph2
        )
        np.testing.assert_allclose(
            surface.values, result.grid.reshape_to_grid(expected), atol=2e-6
        )

    def test_linear_circuit_converges_in_few_iterations(self):
        _, _, result = self._solve()
        assert result.stats.converged
        assert result.stats.newton_iterations <= 3
        assert not result.stats.used_continuation

    def test_diagonal_matches_direct_time_domain(self):
        """x(t) = x_hat(t, t) reproduces the steady-state superposition."""
        mna, scales, result = self._solve(n_fast=32, n_slow=32)
        times = np.linspace(0.0, 2e-6, 300)
        diag = result.diagonal_waveform("out", t_start=0.0, t_stop=2e-6, n_samples=300)

        def transfer(freq):
            h = 1.0 / (1.0 + 2j * np.pi * freq * self.r * self.c)
            return abs(h), np.angle(h)

        mag1, ph1 = transfer(self.f_fast)
        mag2, ph2 = transfer(scales.carrier_frequency)
        expected = mag1 * np.cos(2 * np.pi * self.f_fast * times + ph1) + 0.5 * mag2 * np.cos(
            2 * np.pi * scales.carrier_frequency * times + ph2
        )
        # Bilinear interpolation of the coarse grid limits the accuracy here.
        assert np.max(np.abs(diag.values - expected)) < 0.05

    def test_bdf2_and_fourier_agree_on_smooth_problem(self):
        _, scales, spectral = self._solve()
        _, _, fd = self._solve(n_fast=48, n_slow=48, fast_method="bdf2", slow_method="bdf2")
        env_spectral = spectral.baseband_envelope("out")
        env_fd = fd.baseband_envelope("out")
        a_spectral = 2 * abs(fourier_coefficient(env_spectral, self.f_diff))
        a_fd = 2 * abs(fourier_coefficient(env_fd, self.f_diff))
        # A linear circuit produces no difference tone; both must agree on ~0.
        assert a_spectral == pytest.approx(a_fd, abs=1e-3)

    def test_stats_record_problem_size(self):
        _, _, result = self._solve(n_fast=16, n_slow=12)
        assert result.stats.n_grid_points == 16 * 12
        assert result.stats.n_total_unknowns == 16 * 12 * 3
        assert result.stats.wall_time_seconds > 0.0


class TestIdealMultiplierMixer:
    """End-to-end check against the closed-form ideal mixing result of Section 2."""

    def test_difference_tone_amplitude_matches_closed_form(self, scaled_ideal_mixer):
        mix = scaled_ideal_mixer
        result = solve_mpde(mix.compile(), mix.scales, MPDEOptions(n_fast=24, n_slow=24))
        envelope = result.baseband_envelope(mix.output_pos)
        fd = mix.scales.difference_frequency
        measured = 2 * abs(fourier_coefficient(envelope, fd))
        pair = TonePair.from_frequencies(mix.lo_frequency, mix.rf_frequency)
        # Output voltage = R * gain * v_lo * v_rf; difference tone = R*gain*A1*A2/2.
        expected = 1e3 * 1e-3 * difference_tone_amplitude(pair)
        assert measured == pytest.approx(expected, rel=0.02)

    def test_full_paper_frequencies_are_feasible(self):
        """The actual 1 GHz / 10 kHz spacing of Section 2 runs in a small grid."""
        mix = ideal_multiplier_mixer()  # 1 GHz LO, 10 kHz difference
        result = solve_mpde(mix.compile(), mix.scales, MPDEOptions(n_fast=16, n_slow=16))
        envelope = result.baseband_envelope("out")
        measured = 2 * abs(fourier_coefficient(envelope, 10e3))
        assert measured == pytest.approx(0.5, rel=0.02)
        assert result.scales.disparity == pytest.approx(1e5)


class TestSolverControls:
    def test_accepts_single_state_initial_guess(self, scaled_ideal_mixer):
        mix = scaled_ideal_mixer
        mna = mix.compile()
        x0 = np.zeros(mna.n_unknowns)
        result = solve_mpde(mna, mix.scales, MPDEOptions(n_fast=12, n_slow=12), x0=x0)
        assert result.stats.converged

    def test_rejects_bad_initial_guess_size(self, scaled_ideal_mixer):
        mix = scaled_ideal_mixer
        mna = mix.compile()
        with pytest.raises(MPDEError):
            solve_mpde(mna, mix.scales, MPDEOptions(n_fast=12, n_slow=12), x0=np.zeros(17))

    @pytest.mark.parametrize("guess", ["zero", "dc", "transient"])
    def test_initial_guess_modes(self, scaled_ideal_mixer, guess):
        mix = scaled_ideal_mixer
        options = MPDEOptions(n_fast=12, n_slow=12, initial_guess=guess)
        result = solve_mpde(mix.compile(), mix.scales, options)
        assert result.stats.converged

    def test_gmres_linear_solver(self, scaled_ideal_mixer):
        mix = scaled_ideal_mixer
        options = MPDEOptions(n_fast=12, n_slow=12, linear_solver="gmres")
        result = solve_mpde(mix.compile(), mix.scales, options)
        assert result.stats.converged

    def test_failure_without_continuation_raises(self, scaled_switching_mixer):
        mix = scaled_switching_mixer
        options = MPDEOptions(
            n_fast=16,
            n_slow=12,
            use_continuation=False,
            initial_guess="zero",
            newton=NewtonOptions(max_iterations=1),
        )
        with pytest.raises(ConvergenceError):
            solve_mpde(mix.compile(), mix.scales, options)

    def test_continuation_fallback_recovers(self, scaled_switching_mixer):
        """With a tiny Newton budget the solver falls back to source stepping and still converges."""
        mix = scaled_switching_mixer
        options = MPDEOptions(
            n_fast=16,
            n_slow=12,
            use_continuation=True,
            initial_guess="dc",
            newton=NewtonOptions(max_iterations=6),
        )
        result = solve_mpde(mix.compile(), mix.scales, options)
        assert result.stats.converged
        assert result.stats.used_continuation
        assert result.stats.continuation_steps >= 1


class TestResultAccessors:
    @pytest.fixture(scope="class")
    def switching_result(self):
        mix = unbalanced_switching_mixer(lo_frequency=2e6, difference_frequency=50e3)
        return mix, solve_mpde(mix.compile(), mix.scales, MPDEOptions(n_fast=24, n_slow=16))

    def test_state_grid_shape(self, switching_result):
        mix, result = switching_result
        n = mix.compile().n_unknowns
        assert result.state_grid().shape == (24, 16, n)

    def test_bivariate_surface_periods(self, switching_result):
        mix, result = switching_result
        surface = result.bivariate("out")
        assert surface.period1 == pytest.approx(mix.scales.fast_period)
        assert surface.period2 == pytest.approx(mix.scales.difference_period)

    def test_differential_surface_is_difference_of_nodes(self, switching_result):
        _, result = switching_result
        diff = result.bivariate_differential("in", "out")
        np.testing.assert_allclose(
            diff.values, result.bivariate("in").values - result.bivariate("out").values
        )

    def test_envelope_modes(self, switching_result):
        _, result = switching_result
        mean = result.baseband_envelope("out", mode="mean")
        upper = result.baseband_envelope("out", mode="max")
        lower = result.baseband_envelope("out", mode="min")
        assert np.all(upper.values >= mean.values - 1e-12)
        assert np.all(lower.values <= mean.values + 1e-12)
        with pytest.raises(MPDEError):
            result.baseband_envelope("out", mode="median")

    def test_diagonal_waveform_defaults_to_one_slow_period(self, switching_result):
        mix, result = switching_result
        diag = result.diagonal_waveform("out", n_samples=501)
        assert diag.duration == pytest.approx(mix.scales.difference_period)

    def test_diagonal_waveform_validates_span(self, switching_result):
        _, result = switching_result
        with pytest.raises(MPDEError):
            result.diagonal_waveform("out", t_start=1.0, t_stop=0.5)
