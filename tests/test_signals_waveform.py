"""Unit tests for Waveform and BivariateWaveform containers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.signals import BivariateWaveform, Waveform
from repro.utils import WaveformError


class TestWaveformConstruction:
    def test_basic(self):
        w = Waveform(np.array([0.0, 1.0, 2.0]), np.array([0.0, 1.0, 4.0]), name="x")
        assert len(w) == 3
        assert w.duration == pytest.approx(2.0)
        assert w.name == "x"

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(WaveformError):
            Waveform(np.array([0.0, 1.0]), np.array([0.0]))

    def test_rejects_non_monotone_times(self):
        with pytest.raises(WaveformError):
            Waveform(np.array([0.0, 2.0, 1.0]), np.zeros(3))

    def test_rejects_nan(self):
        with pytest.raises(WaveformError):
            Waveform(np.array([0.0, 1.0]), np.array([0.0, np.nan]))


class TestWaveformEvaluation:
    def test_interpolation(self):
        w = Waveform(np.array([0.0, 1.0]), np.array([0.0, 2.0]))
        assert w(0.5) == pytest.approx(1.0)

    def test_resample(self):
        w = Waveform(np.linspace(0, 1, 11), np.linspace(0, 1, 11) ** 1)
        r = w.resample(np.linspace(0, 1, 5))
        np.testing.assert_allclose(r.values, np.linspace(0, 1, 5))

    def test_window(self):
        w = Waveform(np.linspace(0, 10, 101), np.linspace(0, 10, 101))
        sub = w.window(2.0, 4.0)
        assert sub.times[0] >= 2.0
        assert sub.times[-1] <= 4.0

    def test_window_errors(self):
        w = Waveform(np.linspace(0, 1, 11), np.zeros(11))
        with pytest.raises(WaveformError):
            w.window(0.5, 0.4)
        with pytest.raises(WaveformError):
            w.window(5.0, 6.0)

    def test_from_function(self):
        w = Waveform.from_function(np.sin, 0.0, np.pi, 101)
        assert w(np.pi / 2) == pytest.approx(1.0, rel=1e-3)


class TestWaveformSummaries:
    def test_rms_of_sine(self):
        t = np.linspace(0, 1.0, 2001)
        w = Waveform(t, np.sin(2 * np.pi * 5 * t))
        assert w.rms() == pytest.approx(1 / np.sqrt(2), rel=1e-3)

    def test_mean_of_offset_sine(self):
        t = np.linspace(0, 1.0, 2001)
        w = Waveform(t, 3.0 + np.sin(2 * np.pi * 5 * t))
        assert w.mean() == pytest.approx(3.0, rel=1e-3)

    def test_peak_to_peak_and_amplitude(self):
        w = Waveform(np.array([0.0, 1.0, 2.0]), np.array([-1.0, 0.0, 3.0]))
        assert w.peak_to_peak() == pytest.approx(4.0)
        assert w.amplitude() == pytest.approx(2.0)


class TestWaveformArithmetic:
    def test_add_scalar(self):
        w = Waveform(np.array([0.0, 1.0]), np.array([1.0, 2.0]))
        np.testing.assert_allclose((w + 1.0).values, [2.0, 3.0])

    def test_add_waveforms_resamples(self):
        a = Waveform(np.linspace(0, 1, 11), np.linspace(0, 1, 11))
        b = Waveform(np.linspace(0, 1, 6), np.ones(6))
        np.testing.assert_allclose((a + b).values, a.values + 1.0)

    def test_subtract_and_negate(self):
        a = Waveform(np.array([0.0, 1.0]), np.array([3.0, 5.0]))
        np.testing.assert_allclose((a - 1.0).values, [2.0, 4.0])
        np.testing.assert_allclose((-a).values, [-3.0, -5.0])

    def test_multiply(self):
        a = Waveform(np.array([0.0, 1.0]), np.array([3.0, 5.0]))
        np.testing.assert_allclose((a * 2.0).values, [6.0, 10.0])


def _product_surface(n1=32, n2=24, period1=1e-9, period2=1e-4):
    """z(t1, t2) = cos(2 pi t1/T1) * cos(2 pi t2/T2) sampled on the grid."""
    t1 = np.arange(n1) * (period1 / n1)
    t2 = np.arange(n2) * (period2 / n2)
    vals = np.cos(2 * np.pi * t1 / period1)[:, None] * np.cos(2 * np.pi * t2 / period2)[None, :]
    return BivariateWaveform(vals, period1, period2, name="z")


class TestBivariateWaveform:
    def test_shapes_and_axes(self):
        surf = _product_surface()
        assert surf.shape == (32, 24)
        assert surf.axis1[0] == 0.0
        assert surf.axis1[-1] < surf.period1
        assert len(surf.axis2) == 24

    def test_rejects_bad_values(self):
        with pytest.raises(WaveformError):
            BivariateWaveform(np.zeros(5), 1.0, 1.0)
        with pytest.raises(WaveformError):
            BivariateWaveform(np.zeros((1, 5)), 1.0, 1.0)
        with pytest.raises(WaveformError):
            BivariateWaveform(np.full((4, 4), np.nan), 1.0, 1.0)
        with pytest.raises(WaveformError):
            BivariateWaveform(np.zeros((4, 4)), -1.0, 1.0)

    def test_interpolation_at_grid_points_is_exact(self):
        surf = _product_surface()
        i, j = 5, 7
        assert surf(surf.axis1[i], surf.axis2[j]) == pytest.approx(surf.values[i, j])

    def test_interpolation_is_periodic(self):
        surf = _product_surface()
        t1, t2 = 0.3 * surf.period1, 0.6 * surf.period2
        assert surf(t1 + 3 * surf.period1, t2) == pytest.approx(surf(t1, t2), rel=1e-12)
        assert surf(t1, t2 - 5 * surf.period2) == pytest.approx(surf(t1, t2), rel=1e-12)

    def test_interpolation_accuracy(self):
        surf = _product_surface(n1=64, n2=64)
        t1 = 0.37 * surf.period1
        t2 = 0.81 * surf.period2
        exact = np.cos(2 * np.pi * t1 / surf.period1) * np.cos(2 * np.pi * t2 / surf.period2)
        assert surf(t1, t2) == pytest.approx(exact, abs=5e-3)

    def test_diagonal_property_for_separable_product(self):
        surf = _product_surface(n1=128, n2=128)
        times = np.linspace(0, surf.period2, 50)
        diag = surf.diagonal(times)
        exact = np.cos(2 * np.pi * times / surf.period1) * np.cos(2 * np.pi * times / surf.period2)
        np.testing.assert_allclose(diag.values, exact, atol=2e-2)

    def test_envelope_mean_of_product_is_zero(self):
        surf = _product_surface()
        env = surf.envelope_mean()
        np.testing.assert_allclose(env.values, 0.0, atol=1e-12)

    def test_envelope_max_tracks_slow_cosine(self):
        surf = _product_surface(n1=64, n2=64)
        env = surf.envelope_max()
        expected = np.abs(np.cos(2 * np.pi * env.times / surf.period2))
        np.testing.assert_allclose(env.values, expected, atol=5e-3)

    def test_envelopes_cover_full_period(self):
        surf = _product_surface()
        env = surf.envelope_mean()
        assert env.times[-1] == pytest.approx(surf.period2)
        assert env.values[-1] == pytest.approx(env.values[0])

    def test_slices(self):
        surf = _product_surface()
        fast = surf.slice_fast(0.0)
        slow = surf.slice_slow(0.0)
        assert fast.duration == pytest.approx(surf.period1)
        assert slow.duration == pytest.approx(surf.period2)
        np.testing.assert_allclose(
            fast.values, np.cos(2 * np.pi * fast.times / surf.period1), atol=1e-9
        )
