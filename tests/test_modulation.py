"""Unit tests for the modulation-scheme library (:mod:`repro.scenarios.modulation`).

Constellation geometry, bit-to-symbol mapping, envelope construction, and the
demodulation/EVM pipeline on *synthetic* basebands (the full circuit-level
pipeline is exercised by ``tests/test_scenarios.py``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.scenarios import (
    ModulationScheme,
    demodulate_symbols,
    error_vector_magnitude,
    get_scheme,
    iq_symbol_envelopes,
    ofdm_demodulate,
    ofdm_envelopes,
    psk_scheme,
    qam_scheme,
    scheme_names,
)
from repro.signals.bitstream import FourierEnvelope, SymbolStreamEnvelope
from repro.signals.waveform import Waveform
from repro.utils.exceptions import AnalysisError, ConfigurationError


def synthetic_baseband(
    symbols, difference_frequency, *, dc=0.0, gain=1.0, n_samples=4096
):
    """``Re[g * s_k * e^{j w t}] + dc`` with piecewise-constant symbol slots.

    One slot per symbol over one difference period — exactly the model
    :func:`demodulate_symbols` inverts, so recovery should be numerically
    exact.
    """
    symbols = np.asarray(symbols, dtype=complex)
    period = 1.0 / difference_frequency
    times = np.linspace(0.0, period, n_samples)
    slot = np.minimum(
        (times / (period / symbols.size)).astype(int), symbols.size - 1
    )
    phasor = gain * symbols[slot] * np.exp(2j * np.pi * difference_frequency * times)
    return Waveform(times, phasor.real + dc)


# -- constellations ----------------------------------------------------------


def test_builtin_scheme_registry():
    assert scheme_names() == ("bpsk", "psk8", "qam16", "qam64", "qpsk")
    with pytest.raises(ConfigurationError, match="unknown modulation scheme"):
        get_scheme("msk")


@pytest.mark.parametrize("name", ["bpsk", "qpsk", "psk8", "qam16", "qam64"])
def test_constellation_size_and_normalisation(name):
    scheme = get_scheme(name)
    assert scheme.order == 2**scheme.bits_per_symbol
    assert len(scheme.constellation) == scheme.order
    magnitudes = np.abs(np.asarray(scheme.constellation))
    # Peak-normalised: the largest symbol sits on the unit circle.
    assert magnitudes.max() == pytest.approx(1.0)
    # All points distinct.
    points = np.asarray(scheme.constellation)
    assert len({(round(p.real, 12), round(p.imag, 12)) for p in points}) == scheme.order


def test_bpsk_is_real_antipodal():
    scheme = get_scheme("bpsk")
    assert scheme.constellation == (pytest.approx(1 + 0j), pytest.approx(-1 + 0j))


@pytest.mark.parametrize("order", [4, 8, 16])
def test_psk_points_sit_on_unit_circle_off_axes(order):
    scheme = psk_scheme(order)
    points = np.asarray(scheme.constellation)
    assert np.abs(points) == pytest.approx(np.ones(order))
    # Half-step offset: no point on the I or Q axis, so both rails carry signal.
    assert np.abs(points.real).min() > 1e-9
    assert np.abs(points.imag).min() > 1e-9


def test_qpsk_is_the_classic_diagonal_constellation():
    expected = {(s * np.sqrt(0.5), t * np.sqrt(0.5)) for s in (1, -1) for t in (1, -1)}
    actual = {
        (round(p.real, 12), round(p.imag, 12)) for p in get_scheme("qpsk").constellation
    }
    assert actual == {(round(a, 12), round(b, 12)) for a, b in expected}


def test_qam16_grid_levels():
    points = np.asarray(get_scheme("qam16").constellation)
    # Levels +-1/sqrt(18), +-3/sqrt(18) on each rail; corners at |c| = 1.
    levels = sorted({round(v, 12) for v in points.real})
    expected = [lv / np.hypot(3.0, 3.0) for lv in (-3.0, -1.0, 1.0, 3.0)]
    assert levels == pytest.approx(expected)
    assert np.abs(points).max() == pytest.approx(1.0)


def test_psk_and_qam_reject_bad_orders():
    with pytest.raises(ConfigurationError, match="power of two"):
        psk_scheme(6)
    with pytest.raises(ConfigurationError, match="even power of two"):
        qam_scheme(8)
    with pytest.raises(ConfigurationError, match="constellation size"):
        ModulationScheme("broken", 2, (1 + 0j, -1 + 0j))


def test_symbols_from_bits_msb_first_mapping():
    scheme = get_scheme("qpsk")
    symbols = scheme.symbols_from_bits([0, 0, 0, 1, 1, 0, 1, 1])
    table = np.asarray(scheme.constellation)
    np.testing.assert_allclose(symbols, table[[0, 1, 2, 3]])


def test_symbols_from_bits_validation():
    scheme = get_scheme("qpsk")
    with pytest.raises(ConfigurationError, match="multiple"):
        scheme.symbols_from_bits([0, 1, 0])
    with pytest.raises(ConfigurationError, match="only 0s and 1s"):
        scheme.symbols_from_bits([0, 2])
    with pytest.raises(ConfigurationError, match="multiple"):
        scheme.symbols_from_bits([])


# -- envelopes ---------------------------------------------------------------


def test_iq_symbol_envelopes_carry_the_constellation_coordinates():
    scheme = get_scheme("qam16")
    bits = [0, 0, 0, 0, 1, 1, 1, 1, 0, 1, 1, 0]
    env_i, env_q, symbols = iq_symbol_envelopes(scheme, bits, period=1e-4)
    assert isinstance(env_i, SymbolStreamEnvelope)
    assert symbols.size == 3
    assert env_i.levels == pytest.approx(tuple(symbols.real))
    assert env_q.levels == pytest.approx(tuple(symbols.imag))
    assert env_i.period == pytest.approx(1e-4)
    # Mid-slot (past the raised-cosine rise) the envelope equals the level.
    slot = 1e-4 / 3
    for k in range(3):
        assert env_i((k + 0.6) * slot) == pytest.approx(symbols[k].real)


def test_ofdm_envelopes_populate_one_harmonic_per_subcarrier():
    scheme = get_scheme("qpsk")
    bits = [0, 0, 0, 1, 1, 0, 1, 1]
    env_i, env_q, symbols = ofdm_envelopes(scheme, bits, n_subcarriers=4, period=1e-4)
    assert isinstance(env_i, FourierEnvelope)
    coefficients = dict(env_i.harmonics)
    assert sorted(coefficients) == [1, 2, 3, 4]
    for k in range(4):
        assert coefficients[k + 1] == pytest.approx(symbols[k] / 4)
    with pytest.raises(ConfigurationError, match="subcarriers"):
        ofdm_envelopes(scheme, bits, n_subcarriers=3, period=1e-4)


# -- demodulation on synthetic basebands -------------------------------------


@pytest.mark.parametrize("name", ["bpsk", "qpsk", "psk8", "qam16"])
def test_demodulate_symbols_exactly_inverts_the_beat_model(name):
    scheme = get_scheme(name)
    rng = np.random.default_rng(20020610)
    bits = rng.integers(0, 2, size=4 * scheme.bits_per_symbol)
    symbols = scheme.symbols_from_bits(bits)
    fd = 25e3
    baseband = synthetic_baseband(symbols, fd, dc=0.17, gain=0.05)
    recovered = demodulate_symbols(baseband, fd, symbols.size)
    evm = error_vector_magnitude(recovered, symbols, allow_cyclic_shift=False)
    assert evm < 1e-6


def test_demodulate_symbols_handles_complex_gain_and_shift():
    # A non-uniform symbol sequence: rolling it is NOT a global rotation
    # (unlike the full QPSK progression), so the shift must really be searched.
    scheme = get_scheme("qpsk")
    symbols = scheme.symbols_from_bits([0, 0, 0, 0, 0, 1, 1, 1])
    rotated = np.roll(symbols, 2) * (0.4 * np.exp(1j * 0.8))
    fd = 10e3
    recovered = demodulate_symbols(synthetic_baseband(rotated, fd), fd, symbols.size)
    # The cyclic-shift-aware EVM fit removes both the rotation and the shift.
    assert error_vector_magnitude(recovered, symbols) < 1e-6
    # Without it the misalignment is visible.
    assert error_vector_magnitude(recovered, symbols, allow_cyclic_shift=False) > 0.5


def test_demodulate_symbols_validation():
    wave = synthetic_baseband(np.array([1.0 + 0j]), 1e3, n_samples=64)
    with pytest.raises(AnalysisError, match="guard_fraction"):
        demodulate_symbols(wave, 1e3, 1, guard_fraction=0.5)
    with pytest.raises(AnalysisError, match="n_symbols"):
        demodulate_symbols(wave, 1e3, 0)
    with pytest.raises(AnalysisError, match="guarded samples"):
        demodulate_symbols(wave, 1e3, 30)


def test_ofdm_demodulate_recovers_subcarrier_symbols():
    scheme = get_scheme("qam16")
    bits = np.array([0, 1, 1, 0, 0, 0, 1, 1, 1, 1, 0, 1])
    env_i, env_q, symbols = ofdm_envelopes(scheme, bits, n_subcarriers=3, period=1.0)
    fd = 1.0
    times = np.linspace(0.0, 1.0, 8192)
    envelope = env_i(times) + 1j * env_q(times)
    baseband = Waveform(
        times, (envelope * np.exp(2j * np.pi * fd * times)).real
    )
    recovered = ofdm_demodulate(baseband, fd, 3)
    # Common gain 1/n_subcarriers from the envelope normalisation.
    assert error_vector_magnitude(recovered, symbols, allow_cyclic_shift=False) < 1e-6


# -- EVM ---------------------------------------------------------------------


def test_evm_zero_for_scaled_rotated_copy():
    symbols = get_scheme("psk8").symbols_from_bits([0, 0, 0, 1, 1, 1, 0, 1, 0])
    scaled = symbols * (3.0 * np.exp(1j * 1.1))
    assert error_vector_magnitude(scaled, symbols, allow_cyclic_shift=False) < 1e-12


def test_evm_measures_relative_error():
    reference = np.array([1 + 0j, -1 + 0j, 1j, -1j])
    noisy = reference + 0.1
    evm = error_vector_magnitude(noisy, reference, allow_cyclic_shift=False)
    assert 0.0 < evm < 0.2


def test_evm_validation():
    with pytest.raises(AnalysisError, match="equal nonzero length"):
        error_vector_magnitude(np.ones(3, dtype=complex), np.ones(2, dtype=complex))
    with pytest.raises(AnalysisError, match="no energy"):
        error_vector_magnitude(np.ones(2, dtype=complex), np.zeros(2, dtype=complex))
