"""Unit tests for the Circuit netlist container and compilation."""

from __future__ import annotations

import pytest

from repro.circuits import Circuit
from repro.circuits.devices import Capacitor, CurrentSource, Inductor, Resistor, VoltageSource
from repro.signals import DCStimulus
from repro.utils import CircuitError, NodeError


class TestCircuitConstruction:
    def test_nodes_registered_in_order(self):
        ckt = Circuit("t")
        ckt.add(Resistor("r1", "a", "b", 1.0))
        ckt.add(Resistor("r2", "b", "c", 1.0))
        assert ckt.nodes == ("a", "b", "c")
        assert ckt.n_nodes == 3

    @pytest.mark.parametrize("ground", ["0", "gnd", "GND", "ground"])
    def test_ground_aliases_are_not_nodes(self, ground):
        ckt = Circuit("t")
        ckt.add(Resistor("r1", "a", ground, 1.0))
        assert ckt.nodes == ("a",)
        assert ckt.is_ground(ground)

    def test_duplicate_device_names_rejected(self):
        ckt = Circuit("t")
        ckt.add(Resistor("r1", "a", "0", 1.0))
        with pytest.raises(CircuitError, match="duplicate"):
            ckt.add(Resistor("r1", "b", "0", 1.0))

    def test_add_requires_device(self):
        ckt = Circuit("t")
        with pytest.raises(CircuitError):
            ckt.add("not a device")  # type: ignore[arg-type]

    def test_add_all(self):
        ckt = Circuit("t")
        ckt.add_all([Resistor("r1", "a", "0", 1.0), Resistor("r2", "a", "b", 1.0)])
        assert len(ckt) == 2

    def test_device_lookup(self):
        ckt = Circuit("t")
        r = ckt.add(Resistor("r1", "a", "0", 1.0))
        assert ckt.device("r1") is r
        with pytest.raises(CircuitError):
            ckt.device("r9")

    def test_has_node(self):
        ckt = Circuit("t")
        ckt.add(Resistor("r1", "a", "0", 1.0))
        assert ckt.has_node("a")
        assert ckt.has_node("0")
        assert not ckt.has_node("z")

    def test_source_enumeration(self):
        ckt = Circuit("t")
        ckt.add(VoltageSource("v1", "a", "0", DCStimulus(1.0)))
        ckt.add(CurrentSource("i1", "a", "0", DCStimulus(1.0)))
        ckt.add(Resistor("r1", "a", "0", 1.0))
        assert len(ckt.voltage_sources()) == 1
        assert len(ckt.current_sources()) == 1
        assert len(ckt.independent_sources()) == 2

    def test_is_nonlinear(self):
        from repro.circuits.devices import Diode

        linear = Circuit("lin")
        linear.add(Resistor("r1", "a", "0", 1.0))
        assert not linear.is_nonlinear()
        nonlinear = Circuit("nl")
        nonlinear.add(Diode("d1", "a", "0"))
        assert nonlinear.is_nonlinear()

    def test_iteration(self):
        ckt = Circuit("t")
        ckt.add(Resistor("r1", "a", "0", 1.0))
        ckt.add(Resistor("r2", "a", "0", 1.0))
        assert [d.name for d in ckt] == ["r1", "r2"]

    def test_empty_name_rejected(self):
        with pytest.raises(CircuitError):
            Circuit("")


class TestCompilation:
    def test_unknown_ordering(self):
        ckt = Circuit("t")
        ckt.add(VoltageSource("v1", "in", ckt.GROUND, DCStimulus(1.0)))
        ckt.add(Resistor("r1", "in", "out", 1.0))
        ckt.add(Inductor("l1", "out", ckt.GROUND, 1e-3))
        mna = ckt.compile()
        # Node voltages first (in declaration order), then branch currents.
        assert mna.unknown_names == ("v(in)", "v(out)", "i(v1)", "i(l1)")
        assert mna.n_unknowns == 4
        assert mna.n_nodes == 2

    def test_branch_indices_follow_device_order(self):
        ckt = Circuit("t")
        ckt.add(VoltageSource("v1", "a", ckt.GROUND, DCStimulus(1.0)))
        ckt.add(VoltageSource("v2", "b", ckt.GROUND, DCStimulus(1.0)))
        ckt.add(Resistor("r1", "a", "b", 1.0))
        mna = ckt.compile()
        assert mna.branch_index("v1") == 2
        assert mna.branch_index("v2") == 3

    def test_compile_rejects_empty_circuit(self):
        with pytest.raises(CircuitError):
            Circuit("empty").compile()

    def test_compile_rejects_all_ground_circuit(self):
        ckt = Circuit("t")
        ckt.add(Resistor("r1", "0", "gnd", 1.0))
        with pytest.raises(CircuitError):
            ckt.compile()

    def test_ground_maps_to_negative_index(self):
        ckt = Circuit("t")
        ckt.add(Resistor("r1", "a", ckt.GROUND, 1.0))
        mna = ckt.compile()
        assert mna.node_index("a") == 0
        assert mna.node_index("0") == -1
        assert mna.node_index("gnd") == -1

    def test_unknown_node_lookup_raises(self):
        ckt = Circuit("t")
        ckt.add(Resistor("r1", "a", ckt.GROUND, 1.0))
        mna = ckt.compile()
        with pytest.raises(NodeError):
            mna.node_index("missing")

    def test_branch_index_for_device_without_branch_raises(self):
        ckt = Circuit("t")
        ckt.add(Resistor("r1", "a", ckt.GROUND, 1.0))
        mna = ckt.compile()
        with pytest.raises(CircuitError):
            mna.branch_index("r1")

    def test_recompilation_is_consistent(self):
        ckt = Circuit("t")
        ckt.add(VoltageSource("v1", "a", ckt.GROUND, DCStimulus(1.0)))
        ckt.add(Capacitor("c1", "a", ckt.GROUND, 1e-9))
        first = ckt.compile()
        second = ckt.compile()
        assert first.unknown_names == second.unknown_names
