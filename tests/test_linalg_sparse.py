"""Unit tests for sparse assembly helpers and periodic differentiation matrices."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.linalg import (
    COOBuilder,
    block_diag_from_array,
    block_diagonal,
    identity_kron,
    kron_identity,
    periodic_backward_difference,
    periodic_bdf2_difference,
    periodic_central_difference,
    periodic_fourier_differentiation,
)


class TestCOOBuilder:
    def test_accumulates_duplicates(self):
        builder = COOBuilder(2)
        builder.add(0, 0, 1.0)
        builder.add(0, 0, 2.5)
        mat = builder.tocsr()
        assert mat[0, 0] == pytest.approx(3.5)

    def test_negative_indices_are_dropped(self):
        builder = COOBuilder(2)
        builder.add(-1, 0, 5.0)
        builder.add(0, -1, 5.0)
        builder.add(1, 1, 2.0)
        mat = builder.tocsr()
        assert mat.nnz == 1
        assert mat[1, 1] == pytest.approx(2.0)

    def test_zero_values_are_skipped(self):
        builder = COOBuilder(3)
        builder.add(0, 0, 0.0)
        assert len(builder) == 0

    def test_add_block(self):
        builder = COOBuilder(3)
        builder.add_block([0, 2], [1, 2], np.array([[1.0, 2.0], [3.0, 4.0]]))
        mat = builder.tocsr().toarray()
        assert mat[0, 1] == 1.0
        assert mat[0, 2] == 2.0
        assert mat[2, 1] == 3.0
        assert mat[2, 2] == 4.0

    def test_add_block_skips_ground_rows(self):
        builder = COOBuilder(3)
        builder.add_block([-1, 1], [0, -1], np.ones((2, 2)))
        mat = builder.tocsr().toarray()
        assert mat.sum() == pytest.approx(1.0)
        assert mat[1, 0] == pytest.approx(1.0)

    def test_rectangular_shape(self):
        builder = COOBuilder(2, 5)
        builder.add(1, 4, 1.0)
        assert builder.tocsr().shape == (2, 5)


class TestBlockDiagonal:
    def test_block_diagonal_matches_scipy(self):
        blocks = [np.eye(2), 2 * np.eye(3)]
        mat = block_diagonal(blocks)
        expected = sp.block_diag(blocks).toarray()
        np.testing.assert_allclose(mat.toarray(), expected)

    def test_block_diag_from_array(self):
        rng = np.random.default_rng(0)
        blocks = rng.normal(size=(4, 3, 3))
        mat = block_diag_from_array(blocks)
        expected = sp.block_diag(list(blocks)).toarray()
        np.testing.assert_allclose(mat.toarray(), expected)

    def test_block_diag_from_array_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            block_diag_from_array(np.zeros((4, 2, 3)))


class TestKronHelpers:
    def test_kron_identity(self):
        mat = np.array([[0.0, 1.0], [2.0, 0.0]])
        result = kron_identity(mat, 3).toarray()
        expected = np.kron(mat, np.eye(3))
        np.testing.assert_allclose(result, expected)

    def test_identity_kron(self):
        mat = np.array([[0.0, 1.0], [2.0, 0.0]])
        result = identity_kron(3, mat).toarray()
        expected = np.kron(np.eye(3), mat)
        np.testing.assert_allclose(result, expected)


class TestPeriodicDifferentiation:
    period = 2.0

    def _samples(self, n):
        return np.arange(n) * (self.period / n)

    @pytest.mark.parametrize(
        "builder",
        [
            periodic_backward_difference,
            periodic_bdf2_difference,
            periodic_central_difference,
            periodic_fourier_differentiation,
        ],
    )
    def test_annihilates_constants(self, builder):
        mat = builder(16, self.period)
        result = np.asarray(mat @ np.ones(16)).ravel()
        np.testing.assert_allclose(result, 0.0, atol=1e-10)

    @pytest.mark.parametrize(
        "builder, rtol",
        [
            (periodic_backward_difference, 0.25),
            (periodic_bdf2_difference, 0.08),
            (periodic_central_difference, 0.08),
            (periodic_fourier_differentiation, 1e-9),
        ],
    )
    def test_differentiates_sine(self, builder, rtol):
        n = 32
        t = self._samples(n)
        omega = 2.0 * np.pi / self.period
        y = np.sin(omega * t)
        expected = omega * np.cos(omega * t)
        result = np.asarray(builder(n, self.period) @ y).ravel()
        assert np.max(np.abs(result - expected)) <= rtol * omega

    def test_backward_difference_first_order_convergence(self):
        errors = []
        omega = 2.0 * np.pi / self.period
        for n in (32, 64, 128):
            t = self._samples(n)
            y = np.sin(omega * t)
            d = np.asarray(periodic_backward_difference(n, self.period) @ y).ravel()
            errors.append(np.max(np.abs(d - omega * np.cos(omega * t))))
        assert errors[1] / errors[0] == pytest.approx(0.5, rel=0.2)
        assert errors[2] / errors[1] == pytest.approx(0.5, rel=0.2)

    def test_bdf2_second_order_convergence(self):
        errors = []
        omega = 2.0 * np.pi / self.period
        for n in (32, 64, 128):
            t = self._samples(n)
            y = np.sin(omega * t)
            d = np.asarray(periodic_bdf2_difference(n, self.period) @ y).ravel()
            errors.append(np.max(np.abs(d - omega * np.cos(omega * t))))
        assert errors[1] / errors[0] == pytest.approx(0.25, rel=0.35)
        assert errors[2] / errors[1] == pytest.approx(0.25, rel=0.35)

    def test_fourier_is_exact_for_resolvable_harmonics(self):
        n = 16
        t = self._samples(n)
        omega = 2.0 * np.pi / self.period
        y = np.cos(3 * omega * t)
        expected = -3 * omega * np.sin(3 * omega * t)
        d = periodic_fourier_differentiation(n, self.period) @ y
        np.testing.assert_allclose(d, expected, atol=1e-9)

    def test_row_sums_vanish(self):
        """Each differentiation row is a derivative stencil: weights sum to zero."""
        for builder in (
            periodic_backward_difference,
            periodic_bdf2_difference,
            periodic_central_difference,
        ):
            mat = builder(10, self.period).toarray()
            np.testing.assert_allclose(mat.sum(axis=1), 0.0, atol=1e-12)

    def test_too_few_points_raise(self):
        with pytest.raises(ValueError):
            periodic_backward_difference(1, 1.0)
        with pytest.raises(ValueError):
            periodic_bdf2_difference(2, 1.0)
        with pytest.raises(ValueError):
            periodic_central_difference(2, 1.0)
