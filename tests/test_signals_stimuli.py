"""Unit tests for stimulus (excitation) functions, including the diagonal property."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ShearedTimeScales
from repro.signals import (
    BitStreamEnvelope,
    DCStimulus,
    ModulatedCarrierStimulus,
    PiecewiseLinearStimulus,
    PulseStimulus,
    SinusoidStimulus,
    SumStimulus,
)
from repro.utils import ConfigurationError, ShearError


@pytest.fixture
def scales():
    """1 MHz fast axis, 10 kHz difference frequency, plain (k=1) mixing."""
    return ShearedTimeScales.from_frequencies(1e6, 1e6 - 10e3)


@pytest.fixture
def doubling_scales():
    """450 MHz LO doubled against a carrier 15 kHz below 900 MHz."""
    return ShearedTimeScales.from_frequencies(450e6, 900e6 - 15e3, lo_multiple=2)


def _check_diagonal(stimulus, scales, t_max, n=400):
    times = np.linspace(0.0, t_max, n)
    direct = np.asarray(stimulus.value(times))
    diagonal = np.asarray(stimulus.bivariate_value(times, times, scales))
    np.testing.assert_allclose(diagonal, direct, rtol=1e-9, atol=1e-12)


class TestDCStimulus:
    def test_value(self):
        assert DCStimulus(2.5).value(123.0) == 2.5

    def test_is_not_time_varying(self):
        assert not DCStimulus(1.0).is_time_varying()

    def test_bivariate_shape(self, scales):
        out = DCStimulus(1.5).bivariate_value(np.zeros(7), np.zeros(7), scales)
        np.testing.assert_allclose(out, 1.5)

    def test_diagonal_property(self, scales):
        _check_diagonal(DCStimulus(-3.0), scales, 1e-4)


class TestSinusoidStimulus:
    def test_value(self):
        stim = SinusoidStimulus(amplitude=2.0, frequency=1e3, offset=1.0)
        assert stim.value(0.0) == pytest.approx(3.0)

    def test_fast_axis_diagonal(self, scales):
        _check_diagonal(SinusoidStimulus(1.0, scales.fast_frequency), scales, 5e-6)

    def test_fast_harmonic_diagonal(self, scales):
        _check_diagonal(SinusoidStimulus(1.0, 2 * scales.fast_frequency), scales, 5e-6)

    def test_sheared_carrier_diagonal(self, scales):
        _check_diagonal(SinusoidStimulus(0.5, scales.carrier_frequency), scales, 5e-6)

    def test_slow_axis_diagonal(self, scales):
        _check_diagonal(SinusoidStimulus(1.0, scales.difference_frequency), scales, 2e-4)

    def test_sheared_carrier_for_doubling_scales(self, doubling_scales):
        _check_diagonal(
            SinusoidStimulus(0.1, doubling_scales.carrier_frequency), doubling_scales, 2e-8
        )

    def test_bivariate_is_constant_along_wrong_axis(self, scales):
        """A fast-axis sinusoid must not vary along the slow axis."""
        stim = SinusoidStimulus(1.0, scales.fast_frequency)
        t2 = np.linspace(0, scales.difference_period, 13)
        values = np.asarray(stim.bivariate_value(np.zeros_like(t2), t2, scales))
        np.testing.assert_allclose(values, values[0])

    def test_sheared_carrier_varies_along_slow_axis(self, scales):
        stim = SinusoidStimulus(1.0, scales.carrier_frequency)
        t2 = np.linspace(0, scales.difference_period, 50, endpoint=False)
        values = np.asarray(stim.bivariate_value(np.zeros_like(t2), t2, scales))
        assert values.max() - values.min() > 1.5  # full swing visible on slow axis

    def test_unplaceable_frequency_raises(self, scales):
        stim = SinusoidStimulus(1.0, 1.2345e5)
        with pytest.raises(ShearError):
            stim.bivariate_value(0.0, 0.0, scales)

    def test_forced_axis_mismatch_raises(self, scales):
        stim = SinusoidStimulus(1.0, scales.carrier_frequency, axis="fast")
        with pytest.raises(ShearError):
            stim.bivariate_value(0.0, 0.0, scales)
        stim2 = SinusoidStimulus(1.0, scales.fast_frequency, axis="sheared")
        with pytest.raises(ShearError):
            stim2.bivariate_value(0.0, 0.0, scales)

    def test_invalid_axis_name(self):
        with pytest.raises(ConfigurationError):
            SinusoidStimulus(1.0, 1e3, axis="diagonal")


class TestModulatedCarrierStimulus:
    def test_pure_tone_value(self, scales):
        stim = ModulatedCarrierStimulus(amplitude=0.2, carrier_frequency=scales.carrier_frequency)
        assert stim.value(0.0) == pytest.approx(0.2)

    def test_diagonal_property_constant_envelope(self, scales):
        stim = ModulatedCarrierStimulus(0.3, scales.carrier_frequency)
        _check_diagonal(stim, scales, 3e-6)

    def test_diagonal_property_bit_stream(self, scales):
        envelope = BitStreamEnvelope(
            [1, 0, 1, 1], bit_period=scales.difference_period / 4, rise_fraction=0.1
        )
        stim = ModulatedCarrierStimulus(0.3, scales.carrier_frequency, envelope=envelope)
        _check_diagonal(stim, scales, scales.difference_period)

    def test_envelope_appears_on_slow_axis(self, scales):
        envelope = BitStreamEnvelope(
            [1, 0], bit_period=scales.difference_period / 2, low=0.0, high=1.0, rise_fraction=0.0
        )
        stim = ModulatedCarrierStimulus(1.0, scales.carrier_frequency, envelope=envelope)
        # Peak carrier amplitude over one fast period should follow the bits.
        t1 = np.linspace(0.0, scales.fast_period, 64, endpoint=False)
        t2_one = np.full_like(t1, 0.3 * scales.difference_period)
        t2_zero = np.full_like(t1, 0.8 * scales.difference_period)
        peak_one = np.max(np.abs(stim.bivariate_value(t1, t2_one, scales)))
        peak_zero = np.max(np.abs(stim.bivariate_value(t1, t2_zero, scales)))
        assert peak_one > 0.9
        assert peak_zero < 1e-9

    def test_carrier_mismatch_raises(self, scales):
        stim = ModulatedCarrierStimulus(0.3, scales.carrier_frequency * 1.01)
        with pytest.raises(ShearError):
            stim.bivariate_value(0.0, 0.0, scales)

    def test_requires_envelope_instance(self):
        with pytest.raises(ConfigurationError):
            ModulatedCarrierStimulus(1.0, 1e6, envelope=lambda t: t)  # type: ignore[arg-type]


class TestPulseStimulus:
    def test_levels(self):
        stim = PulseStimulus(low=0.0, high=1.0, period=1e-6, width=0.4e-6, rise=0.0, fall=0.0)
        assert stim.value(0.2e-6) == pytest.approx(1.0)
        assert stim.value(0.7e-6) == pytest.approx(0.0)

    def test_periodicity(self):
        stim = PulseStimulus(low=-1.0, high=1.0, period=1e-6, width=0.5e-6, rise=0.1e-6, fall=0.1e-6)
        t = np.linspace(0, 1e-6, 37, endpoint=False)
        np.testing.assert_allclose(stim.value(t), stim.value(t + 3e-6), atol=1e-12)

    def test_fast_axis_diagonal(self, scales):
        stim = PulseStimulus(
            low=0.0, high=1.0, period=scales.fast_period, width=0.4 * scales.fast_period,
            rise=0.05 * scales.fast_period, fall=0.05 * scales.fast_period,
        )
        _check_diagonal(stim, scales, 3 * scales.fast_period)

    def test_wrong_period_raises(self, scales):
        stim = PulseStimulus(low=0.0, high=1.0, period=1e-3, width=0.4e-3)
        with pytest.raises(ShearError):
            stim.bivariate_value(0.0, 0.0, scales)

    def test_invalid_geometry(self):
        with pytest.raises(ConfigurationError):
            PulseStimulus(low=0.0, high=1.0, period=1e-6, width=2e-6)
        with pytest.raises(ConfigurationError):
            PulseStimulus(low=0.0, high=1.0, period=1e-6, width=0.5e-6, rise=0.4e-6, fall=0.4e-6)


class TestPWLAndSum:
    def test_pwl_interpolation(self):
        stim = PiecewiseLinearStimulus([0.0, 1.0, 2.0], [0.0, 2.0, 0.0])
        assert stim.value(0.5) == pytest.approx(1.0)
        assert stim.value(5.0) == pytest.approx(0.0)  # held constant beyond the last point

    def test_pwl_has_no_bivariate_form(self, scales):
        stim = PiecewiseLinearStimulus([0.0, 1.0], [0.0, 1.0])
        with pytest.raises(ShearError):
            stim.bivariate_value(0.0, 0.0, scales)

    def test_pwl_validation(self):
        with pytest.raises(ConfigurationError):
            PiecewiseLinearStimulus([0.0], [1.0])
        with pytest.raises(ConfigurationError):
            PiecewiseLinearStimulus([0.0, 0.0], [1.0, 2.0])
        with pytest.raises(ConfigurationError):
            PiecewiseLinearStimulus([0.0, 1.0], [1.0])

    def test_sum_value_and_diagonal(self, scales):
        stim = SumStimulus(
            (
                DCStimulus(0.7),
                SinusoidStimulus(0.4, scales.fast_frequency),
                ModulatedCarrierStimulus(0.1, scales.carrier_frequency),
            )
        )
        assert stim.value(0.0) == pytest.approx(0.7 + 0.4 + 0.1)
        _check_diagonal(stim, scales, 5e-6)

    def test_sum_operator(self):
        combined = DCStimulus(1.0) + SinusoidStimulus(1.0, 1e3)
        assert isinstance(combined, SumStimulus)
        assert combined.value(0.0) == pytest.approx(2.0)
        assert combined.is_time_varying()

    def test_sum_of_dc_is_not_time_varying(self):
        assert not SumStimulus((DCStimulus(1.0), DCStimulus(2.0))).is_time_varying()

    def test_empty_sum_rejected(self):
        with pytest.raises(ConfigurationError):
            SumStimulus(())
