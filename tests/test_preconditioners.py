"""Solver-convergence test harness for the preconditioner subsystem.

The matrix-free MPDE/HB Newton mode lives or dies by its preconditioner, so
this module tests the :mod:`repro.linalg.preconditioners` subsystem the way a
flow-level verification stage would: algebraic property tests (the FFT
per-harmonic solve must equal a dense solve of the explicitly assembled
block-circulant matrix), regression tests for the adaptive refresh policy,
and end-to-end convergence assertions on the paper's balanced mixer — the
headline being that the block-circulant mode cuts total GMRES inner
iterations by >= 3x versus the averaged-Jacobian ILU on the spectral
(``fourier``) operators while reaching the same solution as the direct path.

The full paper-grid (40 x 30 spectral) check is marked ``slow`` and excluded
from the default (tier-1) run; run it with ``pytest -m slow``.
"""

from __future__ import annotations

import logging

import numpy as np
import pytest
import scipy.sparse as sp

from repro.analysis.pss_fd import collocation_periodic_steady_state
from repro.core.mpde import MPDEProblem
from repro.core.multitone_hb import two_tone_harmonic_balance
from repro.core.solver import solve_mpde
from repro.linalg import gmres_solve, make_ilu_preconditioner
from repro.linalg.preconditioners import (
    AdaptiveRefreshPolicy,
    BlockCirculantFastPreconditioner,
    BlockCirculantPreconditioner,
    ILUPreconditioner,
    IdentityPreconditioner,
    JacobiPreconditioner,
    Preconditioner,
    circulant_eigenvalues,
    slow_averaged_data,
)
from repro.linalg.sparse import (
    StampPattern,
    periodic_bdf2_difference,
    periodic_fourier_differentiation,
)
from repro.rf import balanced_lo_doubling_mixer, unbalanced_switching_mixer
from repro.utils import MPDEError, MPDEOptions

# The spectral (two-tone HB equivalent) configuration of the paper's balanced
# mixer.  SMALL is cheap enough to afford a direct-solve reference; MEDIUM is
# where the averaged-ILU mode visibly burns iterations (the >= 3x headline
# assertion); the paper's 40 x 30 grid is exercised by the slow-marked test.
SMALL_GRID = (20, 10)
MEDIUM_GRID = (36, 18)
PAPER_GRID = (40, 30)


def _spectral_options(grid: tuple[int, int], **overrides) -> MPDEOptions:
    return MPDEOptions(
        n_fast=grid[0],
        n_slow=grid[1],
        fast_method="fourier",
        slow_method="fourier",
        **overrides,
    )


def _relative_state_error(states: np.ndarray, reference: np.ndarray) -> float:
    scale = float(np.max(np.abs(reference)))
    return float(np.max(np.abs(states - reference))) / max(scale, 1e-300)


@pytest.fixture(scope="module")
def balanced_mixer():
    mixer = balanced_lo_doubling_mixer()
    return mixer, mixer.compile()


@pytest.fixture(scope="module")
def spectral_small(balanced_mixer):
    """Direct and matrix-free block-circulant solves at the SMALL grid.

    The direct solve is the accuracy *reference*, so it refactors every
    Newton iterate (``chord_newton=False``): the chord mode satisfies the
    same residual tolerance but stops as soon as it crosses it, while the
    plain quadratic final step overshoots well below — the sharper iterate
    is what the 1e-8 state-gap assertions below are calibrated against.
    """
    mixer, mna = balanced_mixer
    direct = solve_mpde(
        mna, mixer.scales, _spectral_options(SMALL_GRID, chord_newton=False)
    )
    block = solve_mpde(
        mna,
        mixer.scales,
        _spectral_options(
            SMALL_GRID, matrix_free=True, preconditioner="block_circulant"
        ),
    )
    return {"direct": direct, "block_circulant": block}


@pytest.fixture(scope="module")
def spectral_medium(balanced_mixer):
    """Matrix-free solves at the MEDIUM grid, one per preconditioner mode."""
    mixer, mna = balanced_mixer
    results = {}
    for mode in ("ilu", "block_circulant", "block_circulant_fast"):
        results[mode] = solve_mpde(
            mna,
            mixer.scales,
            _spectral_options(MEDIUM_GRID, matrix_free=True, preconditioner=mode),
        )
    return results


# -- satellite: algebraic property tests ---------------------------------------------


class TestBlockCirculantProperty:
    """The FFT per-harmonic apply must equal a dense solve of the explicit matrix."""

    @pytest.mark.parametrize(
        "n_fast, n_slow",
        [(8, 5), (9, 5), (8, 4), (9, 4)],
        ids=["even-odd", "odd-odd", "even-even", "odd-even"],
    )
    @pytest.mark.parametrize("fast_rule", ["fourier", "bdf2"])
    def test_apply_matches_dense_solve(self, rng, n_fast, n_slow, fast_rule):
        n = 3
        maker = (
            periodic_fourier_differentiation
            if fast_rule == "fourier"
            else periodic_bdf2_difference
        )
        d_fast = np.asarray(sp.csr_matrix(maker(n_fast, 2.0e-6)).todense())
        d_slow = np.asarray(sp.csr_matrix(maker(n_slow, 3.0e-5)).todense())
        c_bar = rng.normal(size=(n, n)) * 1e-6
        g_bar = rng.normal(size=(n, n)) + 4.0 * np.eye(n)

        precond = BlockCirculantPreconditioner(
            c_bar,
            g_bar,
            circulant_eigenvalues(d_fast),
            circulant_eigenvalues(d_slow),
        )
        assert not precond.degraded
        assert precond.n_harmonics == n_fast * n_slow

        derivative = np.kron(d_fast, np.eye(n_slow)) + np.kron(np.eye(n_fast), d_slow)
        explicit = np.kron(derivative, c_bar) + np.kron(np.eye(n_fast * n_slow), g_bar)
        vector = rng.normal(size=n_fast * n_slow * n)
        np.testing.assert_allclose(
            precond.solve(vector),
            np.linalg.solve(explicit, vector),
            rtol=1e-9,
            atol=1e-12 * np.abs(vector).max(),
        )

    @pytest.mark.parametrize("n_fast", [8, 9], ids=["even", "odd"])
    def test_apply_matches_per_harmonic_complex_blocks(self, rng, n_fast):
        """Harmonic-by-harmonic: each complex ``(n, n)`` block solves its own bin."""
        n, n_slow = 2, 5
        d_fast = np.asarray(
            sp.csr_matrix(periodic_fourier_differentiation(n_fast, 1.0)).todense()
        )
        d_slow = np.asarray(sp.csr_matrix(periodic_bdf2_difference(n_slow, 7.0)).todense())
        lam_fast = circulant_eigenvalues(d_fast)
        lam_slow = circulant_eigenvalues(d_slow)
        c_bar = rng.normal(size=(n, n))
        g_bar = rng.normal(size=(n, n)) + 3.0 * np.eye(n)
        precond = BlockCirculantPreconditioner(c_bar, g_bar, lam_fast, lam_slow)

        vector = rng.normal(size=n_fast * n_slow * n)
        spectrum = np.fft.fft2(vector.reshape(n_fast, n_slow, n), axes=(0, 1))
        solved = np.empty_like(spectrum)
        for m in range(n_fast):
            for k in range(n_slow):
                block = (lam_fast[m] + lam_slow[k]) * c_bar + g_bar
                solved[m, k] = np.linalg.solve(block, spectrum[m, k])
        expected = np.fft.ifft2(solved, axes=(0, 1)).real.ravel()
        np.testing.assert_allclose(precond.solve(vector), expected, rtol=1e-10)

    def test_one_dimensional_collocation_case(self, rng):
        """Default slow axis (a single zero eigenvalue) covers 1-D collocation."""
        n, n_samples = 3, 9
        d = np.asarray(sp.csr_matrix(periodic_bdf2_difference(n_samples, 1e-3)).todense())
        c_bar = rng.normal(size=(n, n)) * 1e-7
        g_bar = rng.normal(size=(n, n)) + 2.0 * np.eye(n)
        precond = BlockCirculantPreconditioner(c_bar, g_bar, circulant_eigenvalues(d))
        explicit = np.kron(d, c_bar) + np.kron(np.eye(n_samples), g_bar)
        vector = rng.normal(size=n_samples * n)
        np.testing.assert_allclose(
            precond.solve(vector), np.linalg.solve(explicit, vector), rtol=1e-9
        )

    def test_non_circulant_operator_is_rejected(self, rng):
        matrix = rng.normal(size=(6, 6))
        with pytest.raises(ValueError, match="not circulant"):
            circulant_eigenvalues(matrix)

    def test_circulant_eigenvalues_match_numpy_eigvals(self):
        d = periodic_bdf2_difference(7, 2.5)
        computed = np.sort_complex(circulant_eigenvalues(d))
        reference = np.sort_complex(np.linalg.eigvals(d.toarray()))
        np.testing.assert_allclose(computed, reference, rtol=1e-9, atol=1e-9)

    def test_singular_harmonic_block_degrades_to_pseudoinverse(self, caplog):
        # C = I, G = 0: the DC (lambda = 0) harmonic block is exactly singular.
        d = periodic_fourier_differentiation(6, 1.0)
        with caplog.at_level(logging.WARNING, logger="repro.linalg.preconditioners"):
            precond = BlockCirculantPreconditioner(
                np.eye(2), np.zeros((2, 2)), circulant_eigenvalues(d)
            )
        assert precond.degraded
        assert any("singular" in record.message for record in caplog.records)
        assert np.all(np.isfinite(precond.solve(np.ones(12))))


def _random_pattern(rng, n: int, density: float = 0.7) -> StampPattern:
    """A random stamp pattern that always includes the full diagonal."""
    mask = rng.uniform(size=(n, n)) < density
    np.fill_diagonal(mask, True)
    rows, cols = np.nonzero(mask)
    return StampPattern(rows, cols, n)


def _partially_averaged_dense(
    c_bar, g_bar, dynamic_pattern, static_pattern, d_fast, d_slow
) -> np.ndarray:
    """Explicit dense assembly of the slow-axis partially-averaged operator."""
    n = dynamic_pattern.n
    n_fast, n_slow = d_fast.shape[0], d_slow.shape[0]
    size = n_fast * n_slow * n
    c_blocks = np.zeros((size, size))
    g_blocks = np.zeros((size, size))
    for i in range(n_fast):
        c_i = dynamic_pattern.csr_from_data(c_bar[i]).toarray()
        g_i = static_pattern.csr_from_data(g_bar[i]).toarray()
        for j in range(n_slow):
            p = i * n_slow + j
            c_blocks[p * n : (p + 1) * n, p * n : (p + 1) * n] = c_i
            g_blocks[p * n : (p + 1) * n, p * n : (p + 1) * n] = g_i
    derivative = np.kron(d_fast, np.eye(n_slow)) + np.kron(np.eye(n_fast), d_slow)
    return np.kron(derivative, np.eye(n)) @ c_blocks + g_blocks


class TestBlockCirculantFastProperty:
    """The slow-FFT per-harmonic apply must equal a dense solve of the
    explicitly assembled partially-averaged operator."""

    @pytest.mark.parametrize(
        "n_fast, n_slow",
        [(8, 6), (8, 5), (7, 6), (7, 5)],
        ids=["even-even", "even-odd", "odd-even", "odd-odd"],
    )
    @pytest.mark.parametrize("fast_rule", ["fourier", "bdf2"])
    def test_apply_matches_dense_solve(self, rng, n_fast, n_slow, fast_rule):
        n = 3
        maker = (
            periodic_fourier_differentiation
            if fast_rule == "fourier"
            else periodic_bdf2_difference
        )
        d_fast = np.asarray(sp.csr_matrix(maker(n_fast, 2.0e-6)).todense())
        d_slow = np.asarray(
            sp.csr_matrix(periodic_bdf2_difference(n_slow, 3.0e-5)).todense()
        )
        dynamic_pattern = _random_pattern(rng, n)
        static_pattern = _random_pattern(rng, n)
        c_data = rng.normal(size=(n_fast * n_slow, dynamic_pattern.nnz)) * 1e-6
        g_data = rng.normal(size=(n_fast * n_slow, static_pattern.nnz))
        # Diagonally dominant static blocks keep every harmonic system regular.
        diag_slots = np.nonzero(static_pattern.rows == static_pattern.cols)[0]
        g_data[:, diag_slots] += 5.0

        c_bar = slow_averaged_data(c_data, n_fast, n_slow)
        g_bar = slow_averaged_data(g_data, n_fast, n_slow)
        precond = BlockCirculantFastPreconditioner(
            c_bar,
            g_bar,
            dynamic_pattern,
            static_pattern,
            d_fast,
            circulant_eigenvalues(d_slow),
        )
        assert not precond.degraded
        assert precond.n_harmonics == n_slow
        assert precond.shape == (n_fast * n_slow * n,) * 2

        explicit = _partially_averaged_dense(
            c_bar, g_bar, dynamic_pattern, static_pattern, d_fast, d_slow
        )
        vector = rng.normal(size=n_fast * n_slow * n)
        np.testing.assert_allclose(
            precond.solve(vector),
            np.linalg.solve(explicit, vector),
            rtol=1e-9,
            atol=1e-12 * np.abs(vector).max(),
        )

    def test_lazy_conjugate_symmetric_factorization_count(self, rng):
        """Only ``n_slow // 2 + 1`` LUs are ever built for real vectors, lazily."""
        n, n_fast, n_slow = 2, 6, 8
        d_fast = np.asarray(
            sp.csr_matrix(periodic_bdf2_difference(n_fast, 1.0)).todense()
        )
        d_slow = np.asarray(
            sp.csr_matrix(periodic_bdf2_difference(n_slow, 7.0)).todense()
        )
        pattern = _random_pattern(rng, n, density=1.0)
        c_data = rng.normal(size=(n_fast * n_slow, pattern.nnz)) * 1e-3
        g_data = rng.normal(size=(n_fast * n_slow, pattern.nnz))
        g_data[:, np.nonzero(pattern.rows == pattern.cols)[0]] += 4.0
        precond = BlockCirculantFastPreconditioner(
            slow_averaged_data(c_data, n_fast, n_slow),
            slow_averaged_data(g_data, n_fast, n_slow),
            pattern,
            pattern,
            d_fast,
            circulant_eigenvalues(d_slow),
        )
        # Construction factors nothing.
        assert precond.harmonic_factorizations == 0
        vector = rng.normal(size=n_fast * n_slow * n)
        precond.solve(vector)
        assert precond.harmonic_factorizations == n_slow // 2 + 1
        # Further applies reuse the cached factorisations.
        precond.solve(rng.normal(size=vector.size))
        assert precond.harmonic_factorizations == n_slow // 2 + 1

    def test_one_dimensional_case_is_the_exact_jacobian(self, rng):
        """With ``n_slow = 1`` the averaging is a no-op and the single
        per-harmonic system equals the unaveraged collocation Jacobian."""
        n, n_samples = 3, 9
        d = np.asarray(sp.csr_matrix(periodic_bdf2_difference(n_samples, 1e-3)).todense())
        pattern = _random_pattern(rng, n)
        c_data = rng.normal(size=(n_samples, pattern.nnz)) * 1e-7
        g_data = rng.normal(size=(n_samples, pattern.nnz))
        g_data[:, np.nonzero(pattern.rows == pattern.cols)[0]] += 3.0
        precond = BlockCirculantFastPreconditioner(
            c_data, g_data, pattern, pattern, d
        )
        explicit = _partially_averaged_dense(
            c_data, g_data, pattern, pattern, d, np.zeros((1, 1))
        )
        vector = rng.normal(size=n_samples * n)
        np.testing.assert_allclose(
            precond.solve(vector), np.linalg.solve(explicit, vector), rtol=1e-9
        )
        assert precond.harmonic_factorizations == 1

    def test_singular_harmonic_degrades_to_pseudoinverse(self, rng, caplog):
        # All-zero blocks and a zero fast operator make every harmonic system
        # exactly singular (B_k = 0), forcing the pseudo-inverse fallback.
        n, n_fast, n_slow = 2, 4, 6
        pattern = _random_pattern(rng, n, density=1.0)
        c_data = np.zeros((n_fast, pattern.nnz))
        g_data = np.zeros((n_fast, pattern.nnz))
        d_fast = np.zeros((n_fast, n_fast))
        lam_slow = np.zeros(n_slow, dtype=complex)
        with caplog.at_level(logging.WARNING, logger="repro.linalg.preconditioners"):
            precond = BlockCirculantFastPreconditioner(
                c_data, g_data, pattern, pattern, d_fast, lam_slow
            )
            result = precond.solve(np.ones(n_fast * n_slow * n))
        assert precond.degraded
        assert any("singular" in record.message for record in caplog.records)
        assert np.all(np.isfinite(result))

    def test_complex_vectors_solve_by_linearity(self, rng):
        """A complex apply must equal the dense solve, not silently drop the
        imaginary part (the real path's conjugate-symmetry shortcut does not
        hold for complex input)."""
        n, n_fast, n_slow = 2, 6, 5
        d_fast = np.asarray(
            sp.csr_matrix(periodic_bdf2_difference(n_fast, 1.0)).todense()
        )
        d_slow = np.asarray(
            sp.csr_matrix(periodic_bdf2_difference(n_slow, 3.0)).todense()
        )
        pattern = _random_pattern(rng, n, density=1.0)
        c_bar = rng.normal(size=(n_fast, pattern.nnz)) * 1e-3
        g_bar = rng.normal(size=(n_fast, pattern.nnz))
        g_bar[:, np.nonzero(pattern.rows == pattern.cols)[0]] += 4.0
        precond = BlockCirculantFastPreconditioner(
            c_bar, g_bar, pattern, pattern, d_fast, circulant_eigenvalues(d_slow)
        )
        explicit = _partially_averaged_dense(
            c_bar, g_bar, pattern, pattern, d_fast, d_slow
        )
        vector = rng.normal(size=n_fast * n_slow * n) + 1j * rng.normal(
            size=n_fast * n_slow * n
        )
        np.testing.assert_allclose(
            precond.solve(vector), np.linalg.solve(explicit, vector), rtol=1e-9
        )

    def test_complex_apply_is_a_single_pass(self, rng):
        """Regression: a complex apply recursed into two full real applies.

        The fixed path shares one FFT call and one sweep over the harmonic
        solvers (two-column RHS) — so per complex apply the per-harmonic
        dispatch count is ``n_slow // 2 + 1``, not twice that — and its
        result stays bitwise equal to the former two-pass
        ``solve(real) + 1j * solve(imag)`` recursion.
        """
        n, n_fast, n_slow = 3, 6, 8
        d_fast = np.asarray(
            sp.csr_matrix(periodic_bdf2_difference(n_fast, 1.0)).todense()
        )
        d_slow = np.asarray(
            sp.csr_matrix(periodic_bdf2_difference(n_slow, 3.0)).todense()
        )
        pattern = _random_pattern(rng, n, density=1.0)
        c_bar = rng.normal(size=(n_fast, pattern.nnz)) * 1e-3
        g_bar = rng.normal(size=(n_fast, pattern.nnz))
        g_bar[:, np.nonzero(pattern.rows == pattern.cols)[0]] += 4.0
        build = lambda: BlockCirculantFastPreconditioner(  # noqa: E731
            c_bar, g_bar, pattern, pattern, d_fast, circulant_eigenvalues(d_slow)
        )
        precond = build()
        vector = rng.normal(size=n_fast * n_slow * n) + 1j * rng.normal(
            size=n_fast * n_slow * n
        )
        distinct = n_slow // 2 + 1

        single_pass = precond.solve(vector)
        # One complex apply dispatches each distinct harmonic solver once.
        assert precond.harmonic_applies == distinct
        assert precond.harmonic_factorizations == distinct

        # Bitwise equality to the two-pass recursion the fix replaced.
        reference = build()
        two_pass = reference.solve(vector.real) + 1j * reference.solve(vector.imag)
        assert reference.harmonic_applies == 2 * distinct
        np.testing.assert_array_equal(single_pass, two_pass)

        # A real apply still dispatches one sweep.
        precond.solve(vector.real)
        assert precond.harmonic_applies == 2 * distinct

    def test_shape_validation(self, rng):
        pattern = _random_pattern(rng, 2, density=1.0)
        data = rng.normal(size=(4, pattern.nnz))
        with pytest.raises(ValueError, match="fast operator"):
            BlockCirculantFastPreconditioner(
                data, data, pattern, pattern, np.eye(3)
            )
        with pytest.raises(ValueError, match="n_fast"):
            BlockCirculantFastPreconditioner(
                data, data[:3], pattern, pattern, np.eye(4)
            )
        with pytest.raises(ValueError, match="shape"):
            slow_averaged_data(data, 3, 2)

    def test_factory_rejects_mismatched_slow_eigenvalues(self, rng):
        """An omitted or wrong-length slow-eigenvalue array must fail at
        build time, not with a reshape error on first application."""
        from repro.linalg.preconditioners import build_averaged_preconditioner

        n, n_fast, n_slow = 2, 4, 6
        pattern = _random_pattern(rng, n, density=1.0)
        c_data = rng.normal(size=(n_fast * n_slow, pattern.nnz))
        g_data = rng.normal(size=(n_fast * n_slow, pattern.nnz))
        kwargs = dict(
            size=n_fast * n_slow * n,
            dynamic_pattern=pattern,
            static_pattern=pattern,
            c_data=c_data,
            g_data=g_data,
            fast_operator=np.asarray(
                sp.csr_matrix(periodic_bdf2_difference(n_fast, 1.0)).todense()
            ),
            grid_shape=(n_fast, n_slow),
        )
        with pytest.raises(ValueError, match="slow-axis"):
            build_averaged_preconditioner("block_circulant_fast", **kwargs)
        with pytest.raises(ValueError, match="slow-axis"):
            build_averaged_preconditioner(
                "block_circulant_fast",
                eigenvalues_slow=np.zeros(n_slow - 1, dtype=complex),
                **kwargs,
            )


# -- satellite: adaptive refresh policy ----------------------------------------------


class TestAdaptiveRefreshPolicy:
    def test_trend_thresholds(self):
        policy = AdaptiveRefreshPolicy(growth_factor=2.0, slack=4)
        assert not policy.should_rebuild()  # nothing recorded yet
        policy.record(10)
        assert policy.baseline == 10
        assert not policy.should_rebuild()
        policy.record(24)  # 24 <= 10 * 2 + 4
        assert not policy.should_rebuild()
        policy.record(25)  # 25 > 24
        assert policy.should_rebuild()
        policy.note_build()
        assert policy.baseline is None
        assert not policy.should_rebuild()

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AdaptiveRefreshPolicy(growth_factor=1.0)
        with pytest.raises(ValueError):
            AdaptiveRefreshPolicy(slack=-1)

    def test_drifting_jacobian_triggers_rebuild_before_failure(self, rng):
        """A cached preconditioner on a drifting operator must be flagged stale
        by the iteration trend *before* GMRES ever fails outright."""
        n = 120
        main = 2.0 + rng.uniform(0.5, 1.5, size=n)
        off = -1.0 * np.ones(n - 1)
        base = sp.diags([off, main, off], offsets=[-1, 0, 1]).tocsc()
        drift = sp.diags(
            [np.ones(n - 4), np.ones(n - 4)], offsets=[-4, 4], format="csc"
        )
        rhs = rng.normal(size=n)

        policy = AdaptiveRefreshPolicy(growth_factor=1.5, slack=2)
        preconditioner = make_ilu_preconditioner(base, drop_tol=0.0)  # exact at t=0
        policy.note_build()

        triggered_at = None
        for step, t in enumerate(np.linspace(0.0, 0.9, 16)):
            matrix = (base + t * drift).tocsc()
            _, report = gmres_solve(
                matrix,
                rhs,
                preconditioner=preconditioner,
                tol=1e-10,
                raise_on_failure=False,
            )
            assert report.converged, (
                "GMRES failed outright before the refresh policy reacted "
                f"(drift step {step}) — the policy is supposed to fire first"
            )
            policy.record(report.iterations)
            if policy.should_rebuild():
                triggered_at = step
                break
        assert triggered_at is not None, (
            "the drifting Jacobian never triggered the adaptive refresh policy"
        )
        assert triggered_at > 0  # the fresh build itself must not be flagged

    @pytest.mark.no_fault_injection  # asserts one history entry per solve
    def test_mpde_stats_reflect_policy_rebuilds(self, balanced_mixer):
        """End to end: the stale-ILU rebuilds show up in the solver stats."""
        mixer, mna = balanced_mixer
        result = solve_mpde(
            mna,
            mixer.scales,
            _spectral_options(SMALL_GRID, matrix_free=True, preconditioner="ilu"),
        )
        stats = result.stats
        assert stats.preconditioner_kind == "ilu"
        # The Newton iterate moves far from the DC guess, so the policy must
        # have rebuilt the cached ILU at least once beyond the initial build —
        # and without a single GMRES failure (every solve converged, so the
        # history has exactly one entry per linear solve).
        assert stats.preconditioner_builds >= 2
        assert len(stats.linear_iteration_history) == stats.linear_solves
        assert sum(stats.linear_iteration_history) == stats.linear_iterations


# -- tentpole: the solver-convergence harness ---------------------------------------


class TestSpectralConvergence:
    def test_block_circulant_matches_direct_solution(self, spectral_small):
        direct = spectral_small["direct"]
        block = spectral_small["block_circulant"]
        assert direct.stats.converged and block.stats.converged
        assert _relative_state_error(block.states, direct.states) < 1e-8

    def test_block_circulant_cuts_gmres_iterations_3x(self, spectral_medium):
        ilu = spectral_medium["ilu"].stats
        block = spectral_medium["block_circulant"].stats
        assert ilu.converged and block.converged
        assert block.linear_iterations > 0
        ratio = ilu.linear_iterations / block.linear_iterations
        assert ratio >= 3.0, (
            "block-circulant preconditioning should cut total GMRES inner "
            f"iterations by >= 3x vs the averaged ILU, got {ratio:.2f}x "
            f"({ilu.linear_iterations} vs {block.linear_iterations})"
        )
        # Both matrix-free modes must land on the same solution.
        assert (
            _relative_state_error(
                spectral_medium["block_circulant"].states,
                spectral_medium["ilu"].states,
            )
            < 1e-8
        )

    def test_block_circulant_is_rebuilt_fresh_each_newton_iterate(self, spectral_medium):
        stats = spectral_medium["block_circulant"].stats
        assert stats.preconditioner_kind == "block_circulant"
        # cheap_rebuild preconditioners are never cached: one build per solve.
        assert stats.preconditioner_builds == stats.linear_solves

    def test_block_circulant_fast_cuts_iterations_1_5x_further(self, spectral_medium):
        """The PR-4 acceptance floor: slow-axis partial averaging must cut
        total GMRES inner iterations by >= 1.5x versus the fully-averaged
        block-circulant mode on the LO-switched balanced mixer."""
        block = spectral_medium["block_circulant"].stats
        fast = spectral_medium["block_circulant_fast"].stats
        assert block.converged and fast.converged
        assert fast.linear_iterations > 0
        ratio = block.linear_iterations / fast.linear_iterations
        assert ratio >= 1.5, (
            "partially-averaged (block_circulant_fast) preconditioning should "
            "cut total GMRES inner iterations by >= 1.5x vs the fully-averaged "
            f"block-circulant mode, got {ratio:.2f}x "
            f"({block.linear_iterations} vs {fast.linear_iterations})"
        )
        assert (
            _relative_state_error(
                spectral_medium["block_circulant_fast"].states,
                spectral_medium["block_circulant"].states,
            )
            < 1e-8
        )

    def test_block_circulant_fast_stats_and_rebuild_discipline(self, spectral_medium):
        """Fresh rebuild each iterate; lazy factorisation counts surfaced."""
        stats = spectral_medium["block_circulant_fast"].stats
        assert stats.preconditioner_kind == "block_circulant_fast"
        # A stale partially-averaged factorisation costs far more iterations
        # than its rebuild saves (see the class docstring), so the mode is
        # rebuilt fresh at every Newton iterate like "block_circulant".
        assert stats.preconditioner_builds == stats.linear_solves
        # Each build lazily factors exactly n_slow // 2 + 1 harmonic systems
        # (conjugate symmetry supplies the mirrored half).
        per_build = MEDIUM_GRID[1] // 2 + 1
        assert stats.preconditioner_harmonic_builds == stats.preconditioner_builds * per_build
        # The other modes report zero harmonic factorisations.
        assert spectral_medium["block_circulant"].stats.preconditioner_harmonic_builds == 0
        assert spectral_medium["ilu"].stats.preconditioner_harmonic_builds == 0

    def test_all_modes_reach_the_direct_solution(self):
        mixer = unbalanced_switching_mixer(lo_frequency=2e6, difference_frequency=50e3)
        mna = mixer.compile()
        base = dict(n_fast=16, n_slow=8, fast_method="bdf2", slow_method="bdf2")
        direct = solve_mpde(mna, mixer.scales, MPDEOptions(**base))
        for mode in ("ilu", "block_circulant", "block_circulant_fast", "jacobi", "none"):
            result = solve_mpde(
                mna,
                mixer.scales,
                MPDEOptions(**base, matrix_free=True, preconditioner=mode),
            )
            assert result.stats.converged, mode
            assert _relative_state_error(result.states, direct.states) < 1e-8, mode

    @pytest.mark.slow
    def test_paper_grid_acceptance(self, balanced_mixer):
        """The acceptance criterion at the paper's 40 x 30 grid, end to end."""
        mixer, mna = balanced_mixer
        # Accuracy reference: per-iterate factorisation (see spectral_small).
        direct = solve_mpde(
            mna, mixer.scales, _spectral_options(PAPER_GRID, chord_newton=False)
        )
        ilu = solve_mpde(
            mna,
            mixer.scales,
            _spectral_options(PAPER_GRID, matrix_free=True, preconditioner="ilu"),
        )
        block = solve_mpde(
            mna,
            mixer.scales,
            _spectral_options(
                PAPER_GRID, matrix_free=True, preconditioner="block_circulant"
            ),
        )
        fast = solve_mpde(
            mna,
            mixer.scales,
            _spectral_options(
                PAPER_GRID, matrix_free=True, preconditioner="block_circulant_fast"
            ),
        )
        assert _relative_state_error(block.states, direct.states) < 1e-8
        assert _relative_state_error(ilu.states, direct.states) < 1e-8
        assert _relative_state_error(fast.states, direct.states) < 1e-8
        ratio = ilu.stats.linear_iterations / block.stats.linear_iterations
        assert ratio >= 3.0, f"paper-grid iteration ratio regressed: {ratio:.2f}x"
        fast_ratio = block.stats.linear_iterations / fast.stats.linear_iterations
        assert fast_ratio >= 1.5, (
            f"paper-grid partially-averaged iteration cut regressed: {fast_ratio:.2f}x"
        )


# -- wiring: HB and 1-D collocation front ends --------------------------------------


class TestAnalysisWiring:
    def test_two_tone_hb_with_block_circulant(self, scaled_ideal_mixer):
        mna = scaled_ideal_mixer.compile()
        reference = two_tone_harmonic_balance(
            mna, scaled_ideal_mixer.scales, n_harmonics_fast=2, n_harmonics_slow=2
        )
        matrix_free = two_tone_harmonic_balance(
            mna,
            scaled_ideal_mixer.scales,
            n_harmonics_fast=2,
            n_harmonics_slow=2,
            matrix_free=True,
            preconditioner="block_circulant",
        )
        assert matrix_free.stats.preconditioner_kind == "block_circulant"
        assert matrix_free.stats.linear_iterations > 0
        ref = reference.mixing_product("out", 0, 1)
        got = matrix_free.mixing_product("out", 0, 1)
        np.testing.assert_allclose(got, ref, rtol=1e-6, atol=1e-12)

    def test_two_tone_hb_with_block_circulant_fast(self, scaled_ideal_mixer):
        mna = scaled_ideal_mixer.compile()
        reference = two_tone_harmonic_balance(
            mna, scaled_ideal_mixer.scales, n_harmonics_fast=2, n_harmonics_slow=2
        )
        matrix_free = two_tone_harmonic_balance(
            mna,
            scaled_ideal_mixer.scales,
            n_harmonics_fast=2,
            n_harmonics_slow=2,
            matrix_free=True,
            preconditioner="block_circulant_fast",
        )
        assert matrix_free.stats.preconditioner_kind == "block_circulant_fast"
        assert matrix_free.stats.linear_iterations > 0
        assert matrix_free.stats.preconditioner_harmonic_builds > 0
        np.testing.assert_allclose(
            matrix_free.mixing_product("out", 0, 1),
            reference.mixing_product("out", 0, 1),
            rtol=1e-6,
            atol=1e-12,
        )

    def test_collocation_pss_matrix_free_matches_direct(self, diode_rectifier):
        mna = diode_rectifier.compile()
        period = 1e-3
        direct = collocation_periodic_steady_state(mna, period, 32, method="bdf2")
        for mode in ("block_circulant", "block_circulant_fast", "ilu", "jacobi"):
            krylov = collocation_periodic_steady_state(
                mna,
                period,
                32,
                method="bdf2",
                matrix_free=True,
                preconditioner=mode,
            )
            assert krylov.linear_iterations > 0, mode
            np.testing.assert_allclose(
                krylov.states, direct.states, rtol=1e-6, atol=1e-9
            )
        assert direct.linear_iterations == 0

    def test_collocation_pss_rejects_unknown_preconditioner(self, diode_rectifier):
        mna = diode_rectifier.compile()
        with pytest.raises(Exception, match="preconditioner"):
            collocation_periodic_steady_state(
                mna, 1e-3, 16, matrix_free=True, preconditioner="cholesky"
            )


# -- protocol / factory edges --------------------------------------------------------


class TestPreconditionerProtocol:
    def test_implementations_satisfy_protocol(self):
        matrix = sp.identity(4, format="csc") * 2.0
        instances = [
            ILUPreconditioner(matrix),
            JacobiPreconditioner(matrix),
            IdentityPreconditioner(4),
            BlockCirculantPreconditioner(
                np.zeros((2, 2)), np.eye(2), np.zeros(2, dtype=complex)
            ),
        ]
        for instance in instances:
            assert isinstance(instance, Preconditioner)
            assert instance.shape == (4, 4)
            operator = instance.as_operator()
            vector = np.arange(4.0)
            np.testing.assert_allclose(operator.matvec(vector), instance.solve(vector))

    def test_ilu_is_the_only_expensive_rebuild(self):
        matrix = sp.identity(3, format="csc")
        assert ILUPreconditioner(matrix).cheap_rebuild is False
        assert JacobiPreconditioner(matrix).cheap_rebuild is True
        assert IdentityPreconditioner(3).cheap_rebuild is True
        assert (
            BlockCirculantPreconditioner(
                np.zeros((1, 1)), np.eye(1), np.zeros(3, dtype=complex)
            ).cheap_rebuild
            is True
        )
        # The partially-averaged mode is rebuilt fresh too: one Newton step
        # invalidates a factorisation tailored to the fast-axis operating
        # points, so caching it is measured-negative (see the class docstring).
        assert BlockCirculantFastPreconditioner.cheap_rebuild is True

    def test_jacobi_guards_zero_diagonal(self):
        precond = JacobiPreconditioner(np.array([2.0, 0.0, 4.0]))
        np.testing.assert_allclose(
            precond.solve(np.array([2.0, 3.0, 4.0])), [1.0, 3.0, 1.0]
        )

    def test_factory_builds_every_kind(self, balanced_mixer, rng):
        mixer, mna = balanced_mixer
        problem = MPDEProblem(mna, mixer.scales, _spectral_options(SMALL_GRID))
        x = problem.initial_guess_zero()
        _, c_data, g_data = problem.residual_and_values(x)
        for kind, expected in [
            ("ilu", ILUPreconditioner),
            ("block_circulant", BlockCirculantPreconditioner),
            ("block_circulant_fast", BlockCirculantFastPreconditioner),
            ("jacobi", JacobiPreconditioner),
            ("none", IdentityPreconditioner),
        ]:
            built = problem.build_preconditioner(kind, c_data=c_data, g_data=g_data)
            assert isinstance(built, expected)
            assert built.shape == (problem.n_total_unknowns,) * 2

    def test_factory_rejects_unknown_kind_and_missing_data(self, balanced_mixer):
        mixer, mna = balanced_mixer
        problem = MPDEProblem(mna, mixer.scales, _spectral_options(SMALL_GRID))
        with pytest.raises(MPDEError, match="unknown preconditioner"):
            problem.build_preconditioner(
                "cholesky", matrix=sp.identity(problem.n_total_unknowns, format="csc")
            )
        with pytest.raises(MPDEError, match="block-circulant"):
            problem.build_preconditioner("block_circulant")
        with pytest.raises(MPDEError, match="block-circulant-fast"):
            problem.build_preconditioner("block_circulant_fast")
