"""Bit-stream down-conversion with the paper's balanced LO-doubling mixer.

Reproduces the Section 3 experiment end to end:

* the RF input is a carrier near 900 MHz whose amplitude follows a four-bit
  pattern repeating every 1/15 kHz ~ 67 us,
* the LO is a 450 MHz sinusoid that the lower transistor pair doubles
  internally,
* the sheared multi-time MPDE is solved on a 2-D grid (use ``--paper-grid``
  for the paper's 40 x 30), and
* the baseband envelope along the difference-frequency axis is printed and
  sliced back into bits — the "baseband bit-stream" of Figs. 3 and 4.

Run with::

    python examples/bitstream_downconversion.py [--paper-grid]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.rf import DirectConversionReceiver
from repro.utils import configure_logging


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--paper-grid",
        action="store_true",
        help="use the paper's 40 x 30 multi-time grid (slower) instead of 28 x 22",
    )
    parser.add_argument(
        "--bits",
        type=str,
        default="1011",
        help="bit pattern carried by the RF drive (default: 1011)",
    )
    args = parser.parse_args()
    configure_logging()

    bits = tuple(int(b) for b in args.bits)
    n_fast, n_slow = (40, 30) if args.paper_grid else (28, 22)

    receiver = DirectConversionReceiver.paper_receiver(
        bits=bits, n_fast=n_fast, n_slow=n_slow
    )
    mixer = receiver.mixer
    print("balanced LO-doubling down-conversion mixer (Roychowdhury, DAC 2002, Section 3)")
    print(f"  LO: {mixer.lo_frequency / 1e6:.0f} MHz, RF carrier: {mixer.rf_frequency / 1e6:.3f} MHz")
    print(f"  difference (baseband) frequency: {mixer.difference_frequency / 1e3:.0f} kHz")
    print(f"  transmitted bits: {bits}")
    print(f"  multi-time grid: {n_fast} x {n_slow} = {n_fast * n_slow} points")

    result, recovery = receiver.run()
    stats = result.stats
    print(
        f"\nMPDE solve: {stats.n_total_unknowns} unknowns, {stats.newton_iterations} Newton "
        f"iterations, continuation used: {stats.used_continuation}, "
        f"{stats.wall_time_seconds:.1f} s wall clock"
    )

    envelope = result.baseband_envelope(mixer.output_pos, node_neg=mixer.output_neg)
    print("\nbaseband differential output (Fig. 4), one difference period:")
    for t in np.linspace(0.0, envelope.duration, 17):
        bar = "#" * int(30 * abs(float(envelope(t)) - envelope.mean()) / (0.5 * envelope.peak_to_peak() + 1e-12))
        print(f"  t = {t * 1e6:7.2f} us  v = {float(envelope(t)):+7.3f} V  {bar}")

    print(f"\nrecovered bits: {recovery.bits}  (decision threshold {recovery.threshold:.3f} V)")
    print("matches transmitted pattern:", recovery.matches(bits))

    tail = result.bivariate("tail")
    fast = tail.slice_fast(0.0)
    print("\ndoubler-node voltage over one LO cycle (Fig. 5 cross-section):")
    for t, v in zip(fast.times[::4], fast.values[::4]):
        print(f"  t1 = {t * 1e9:5.2f} ns   v(tail) = {v:6.3f} V")


if __name__ == "__main__":
    main()
