"""Speed-up study: sheared multi-time MPDE vs single-time shooting.

Reproduces the shape of the paper's "Computational speedup" discussion on a
laptop-sized problem: the unbalanced switching mixer is solved both ways for
a sweep of frequency disparities (LO frequency / difference frequency), the
wall-clock times are compared, and the fitted linear trend is extrapolated
to the paper's full-scale disparity of 30 000.

Shooting must step through every LO cycle of one difference-frequency
period, so its cost grows linearly with the disparity; the multi-time grid
is independent of the disparity, which is the whole point of the method.

Run with::

    python examples/speedup_study.py [--max-disparity 160]
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.analysis import shooting_periodic_steady_state
from repro.core import solve_mpde
from repro.rf import unbalanced_switching_mixer
from repro.signals.spectrum import fourier_coefficient
from repro.utils import MPDEOptions, ShootingOptions, configure_logging

LO_FREQUENCY = 2.0e6
GRID = MPDEOptions(n_fast=32, n_slow=21)
STEPS_PER_LO_CYCLE = 20


def run_case(disparity: int) -> tuple[float, float, float]:
    """Return (mpde seconds, shooting seconds, relative baseband mismatch)."""
    fd = LO_FREQUENCY / disparity
    mixer = unbalanced_switching_mixer(lo_frequency=LO_FREQUENCY, difference_frequency=fd)
    mna = mixer.compile()

    start = time.perf_counter()
    mpde = solve_mpde(mna, mixer.scales, GRID)
    t_mpde = time.perf_counter() - start
    a_mpde = 2 * abs(fourier_coefficient(mpde.baseband_envelope("out"), fd))

    start = time.perf_counter()
    shooting = shooting_periodic_steady_state(
        mna,
        mixer.scales.difference_period,
        options=ShootingOptions(steps_per_period=STEPS_PER_LO_CYCLE * disparity),
    )
    t_shoot = time.perf_counter() - start
    a_shoot = 2 * abs(fourier_coefficient(shooting.waveform("out"), fd))

    mismatch = abs(a_mpde - a_shoot) / max(a_shoot, 1e-15)
    return t_mpde, t_shoot, mismatch


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--max-disparity", type=int, default=160)
    args = parser.parse_args()
    configure_logging()

    disparities = [d for d in (10, 20, 40, 80, 160, 320) if d <= args.max_disparity]
    print(f"{'disparity':>10} {'MPDE (s)':>10} {'shooting (s)':>13} {'speed-up':>10} {'mismatch':>10}")
    speedups = []
    for disparity in disparities:
        t_mpde, t_shoot, mismatch = run_case(disparity)
        speedup = t_shoot / t_mpde
        speedups.append(speedup)
        print(
            f"{disparity:>10d} {t_mpde:>10.2f} {t_shoot:>13.2f} {speedup:>10.1f} "
            f"{100 * mismatch:>9.1f}%"
        )

    slope, intercept = np.polyfit(np.asarray(disparities, float), np.asarray(speedups), 1)
    print(f"\nlinear fit: speed-up ~ {slope:.3f} * disparity {intercept:+.2f}")
    print(f"extrapolated speed-up at the paper's disparity (30 000): ~{slope * 30000 + intercept:.0f}x")
    print(
        "The paper reports > 100x (two orders of magnitude) at disparity 30 000 and a "
        "break-even disparity around 200 for its C implementation; the absolute numbers are "
        "implementation dependent, the linear growth is the method's property."
    )


if __name__ == "__main__":
    main()
