"""Conversion-gain and distortion characterisation of the balanced mixer.

The paper notes that pure-tone excitations give down-conversion gain and
distortion figures directly from the multi-time solution.  This example
sweeps the RF drive amplitude, solves the MPDE once per point, and prints a
small data sheet for the mixer: conversion gain (linear and dB), baseband
THD, and LO feedthrough — plus a comparison between the switching
(unbalanced) and balanced topologies at one drive level.

Run with::

    python examples/conversion_gain_sweep.py
"""

from __future__ import annotations

from repro.core import solve_mpde
from repro.rf import (
    balanced_lo_doubling_mixer,
    conversion_metrics,
    lo_feedthrough_ratio,
    unbalanced_switching_mixer,
)
from repro.signals.spectrum import fourier_coefficient
from repro.utils import MPDEOptions, configure_logging

GRID = MPDEOptions(n_fast=24, n_slow=20)
RF_AMPLITUDES = (0.02, 0.05, 0.10, 0.15, 0.20)


def characterise_balanced(rf_amplitude: float):
    mixer = balanced_lo_doubling_mixer(rf_amplitude=rf_amplitude, use_bit_stream=False)
    result = solve_mpde(mixer.compile(), mixer.scales, GRID)
    metrics = conversion_metrics(result, "outp", "outn", rf_amplitude)
    feedthrough = lo_feedthrough_ratio(result, "outp", "outn")
    return metrics, feedthrough


def characterise_unbalanced(rf_amplitude: float):
    mixer = unbalanced_switching_mixer(rf_amplitude=rf_amplitude)
    result = solve_mpde(mixer.compile(), mixer.scales, GRID)
    envelope = result.baseband_envelope("out")
    fd = mixer.scales.difference_frequency
    amplitude = 2 * abs(fourier_coefficient(envelope, fd))
    return amplitude / rf_amplitude


def main() -> None:
    configure_logging()
    print("balanced LO-doubling mixer: conversion gain vs RF amplitude")
    print(f"{'RF amp (V)':>12} {'gain':>8} {'gain (dB)':>10} {'THD':>8} {'LO feedthrough':>15}")
    for amplitude in RF_AMPLITUDES:
        metrics, feedthrough = characterise_balanced(amplitude)
        print(
            f"{amplitude:>12.3f} {metrics.gain:>8.3f} {metrics.gain_db:>10.2f} "
            f"{100 * metrics.distortion:>7.2f}% {feedthrough:>15.3f}"
        )

    print("\ntopology comparison at 50 mV RF drive:")
    balanced_metrics, _ = characterise_balanced(0.05)
    unbalanced_gain = characterise_unbalanced(0.05)
    print(f"  balanced LO-doubling mixer : gain {balanced_metrics.gain:6.3f}")
    print(f"  unbalanced switching mixer : gain {unbalanced_gain:6.3f}")
    print(
        "\nThe balanced topology converts with active gain while the single-switch mixer "
        "is passive (gain < 1); both numbers come straight from the difference-frequency "
        "axis of the multi-time solution."
    )


if __name__ == "__main__":
    main()
