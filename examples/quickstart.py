"""Quickstart: down-convert two closely spaced tones with the sheared multi-time method.

This is the smallest end-to-end use of the library:

1. build a mixer circuit (here the behavioural multiplying mixer of the
   paper's Section 2, driven by a 1 GHz LO and a carrier 10 kHz below it),
2. choose the difference-frequency time scales (the paper's key idea),
3. solve the multi-time MPDE on a small 2-D grid, and
4. read the baseband (difference-frequency) waveform directly off the slow
   axis — no long transient, no Fourier post-processing.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import solve_mpde
from repro.rf import conversion_gain, ideal_multiplier_mixer
from repro.signals.spectrum import fourier_coefficient
from repro.utils import MPDEOptions, configure_logging


def main() -> None:
    configure_logging()

    # 1. The circuit: an ideal multiplying mixer with a 1 GHz LO and an RF
    #    carrier 10 kHz below it (the paper's ideal-mixing example), loaded
    #    by 1 kOhm.  The mixer builder also returns the recommended sheared
    #    time scales.
    mixer = ideal_multiplier_mixer(lo_frequency=1.0e9, difference_frequency=10.0e3)
    mna = mixer.compile()

    print(f"circuit: {mna.circuit.name}  ({mna.n_unknowns} unknowns)")
    print(
        "time scales: fast axis {:.3f} ns, difference axis {:.3f} ms (disparity {:.0f})".format(
            mixer.scales.fast_period * 1e9,
            mixer.scales.difference_period * 1e3,
            mixer.scales.disparity,
        )
    )

    # 2./3. Solve the MPDE on a 24 x 24 multi-time grid.
    options = MPDEOptions(n_fast=24, n_slow=24)
    result = solve_mpde(mna, mixer.scales, options)
    print(
        f"MPDE solved: {result.stats.n_total_unknowns} unknowns, "
        f"{result.stats.newton_iterations} Newton iterations, "
        f"{result.stats.wall_time_seconds:.2f} s"
    )

    # 4. Baseband results, read directly from the difference-frequency axis.
    envelope = result.baseband_envelope(mixer.output_pos)
    fd = mixer.scales.difference_frequency
    baseband_amplitude = 2 * abs(fourier_coefficient(envelope, fd))
    gain = conversion_gain(envelope, fd, mixer.rf_amplitude)

    print(f"baseband output at {fd / 1e3:.1f} kHz: {baseband_amplitude * 1e3:.1f} mV peak")
    print(f"down-conversion gain: {gain:.3f}  (analytic value for this mixer: 0.5)")

    print("\nbaseband waveform over one difference period:")
    for fraction in range(0, 11):
        t = fraction / 10 * mixer.scales.difference_period
        print(f"  t2 = {t * 1e6:7.2f} us   v_out = {float(envelope(t)):+8.5f} V")


if __name__ == "__main__":
    main()
