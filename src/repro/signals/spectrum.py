"""Spectral analysis of sampled waveforms.

The RF metrics layer (conversion gain, distortion, ACI) needs a small amount
of frequency-domain post-processing even though the *solvers* are purely
time-domain: Fourier coefficients of periodic steady-state waveforms, total
harmonic distortion, and power in frequency bands.  Everything here operates
on uniformly resampled data via the FFT.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..utils.exceptions import WaveformError
from .waveform import Waveform

__all__ = [
    "Spectrum",
    "compute_spectrum",
    "fourier_coefficient",
    "total_harmonic_distortion",
    "band_power",
]


@dataclass(frozen=True)
class Spectrum:
    """One-sided amplitude spectrum of a real waveform.

    Attributes
    ----------
    frequencies:
        Frequency bins in Hz (starting at DC).
    amplitudes:
        Peak amplitude of each bin (i.e. ``|X_k|`` scaled so a unit-amplitude
        cosine shows up as 1.0 in its bin).
    phases:
        Phase of each bin in radians.
    """

    frequencies: np.ndarray
    amplitudes: np.ndarray
    phases: np.ndarray

    def __post_init__(self) -> None:
        if self.frequencies.shape != self.amplitudes.shape or self.frequencies.shape != self.phases.shape:
            raise WaveformError("spectrum arrays must have identical shapes")

    @property
    def resolution(self) -> float:
        """Frequency-bin spacing in Hz."""
        if self.frequencies.size < 2:
            return 0.0
        return float(self.frequencies[1] - self.frequencies[0])

    def amplitude_at(self, frequency: float, *, tolerance: float | None = None) -> float:
        """Amplitude of the bin nearest ``frequency``.

        Raises :class:`WaveformError` if the nearest bin is farther away than
        ``tolerance`` (default: one bin spacing).
        """
        idx = int(np.argmin(np.abs(self.frequencies - frequency)))
        tol = self.resolution if tolerance is None else tolerance
        if tol and abs(self.frequencies[idx] - frequency) > tol * (1 + 1e-9):
            raise WaveformError(
                f"no spectral bin within {tol:g} Hz of {frequency:g} Hz "
                f"(nearest: {self.frequencies[idx]:g} Hz)"
            )
        return float(self.amplitudes[idx])

    def dominant_frequency(self, *, skip_dc: bool = True) -> float:
        """Frequency of the largest non-DC bin."""
        amps = self.amplitudes.copy()
        if skip_dc and amps.size:
            amps[0] = 0.0
        return float(self.frequencies[int(np.argmax(amps))])


def compute_spectrum(waveform: Waveform, *, n_samples: int | None = None, detrend: bool = False) -> Spectrum:
    """FFT-based one-sided spectrum of ``waveform``.

    The waveform is linearly resampled onto a uniform grid of ``n_samples``
    points spanning its whole duration (excluding the repeated end point so
    a periodic waveform is not double-counted).
    """
    if len(waveform) < 4:
        raise WaveformError("spectrum needs at least 4 samples")
    n = n_samples or len(waveform)
    duration = waveform.duration
    if duration <= 0:
        raise WaveformError("waveform duration must be positive for spectral analysis")
    times = waveform.times[0] + np.arange(n) * (duration / n)
    values = np.asarray(waveform(times), dtype=float)
    if detrend:
        values = values - values.mean()
    transform = np.fft.rfft(values)
    frequencies = np.fft.rfftfreq(n, d=duration / n)
    amplitudes = np.abs(transform) / n
    # one-sided scaling: every bin except DC (and Nyquist for even n) doubles
    amplitudes[1:] *= 2.0
    if n % 2 == 0:
        amplitudes[-1] /= 2.0
    phases = np.angle(transform)
    return Spectrum(frequencies=frequencies, amplitudes=amplitudes, phases=phases)


def fourier_coefficient(waveform: Waveform, frequency: float) -> complex:
    """Complex Fourier coefficient of ``waveform`` at exactly ``frequency``.

    Computed by direct projection (trapezoidal quadrature of
    ``x(t) * exp(-j*2*pi*f*t)``), so it does not require the frequency to be
    a bin of an FFT grid.  Normalised so a cosine of amplitude ``A`` at the
    target frequency returns ``A / 2 * exp(j*phase)`` — take ``2 * abs(...)``
    for the peak amplitude.
    """
    if len(waveform) < 4:
        raise WaveformError("fourier_coefficient needs at least 4 samples")
    t = waveform.times
    x = waveform.values
    duration = waveform.duration
    if duration <= 0:
        raise WaveformError("waveform duration must be positive")
    kernel = np.exp(-2j * np.pi * frequency * t)
    return complex(np.trapezoid(x * kernel, t) / duration)


def total_harmonic_distortion(waveform: Waveform, fundamental: float, *, n_harmonics: int = 5) -> float:
    """THD (ratio of harmonic RMS to fundamental RMS) of a periodic waveform.

    Uses direct Fourier projection at the fundamental and at its first
    ``n_harmonics`` overtones, so the waveform need only cover an integer
    number of fundamental periods approximately.
    """
    if fundamental <= 0:
        raise WaveformError("fundamental frequency must be positive")
    fund = 2.0 * abs(fourier_coefficient(waveform, fundamental))
    if fund == 0.0:
        raise WaveformError("waveform has no component at the fundamental frequency")
    harmonic_power = 0.0
    for k in range(2, n_harmonics + 2):
        amp = 2.0 * abs(fourier_coefficient(waveform, k * fundamental))
        harmonic_power += amp**2
    return float(np.sqrt(harmonic_power) / fund)


def band_power(spectrum: Spectrum, f_low: float, f_high: float) -> float:
    """Total power (sum of ``A^2 / 2``) of the bins with ``f_low <= f <= f_high``."""
    if f_high < f_low:
        raise WaveformError("band_power requires f_high >= f_low")
    mask = (spectrum.frequencies >= f_low) & (spectrum.frequencies <= f_high)
    amps = spectrum.amplitudes[mask]
    if amps.size == 0:
        return 0.0
    powers = amps**2 / 2.0
    # DC carries its full power (no one-sided doubling to undo).
    if mask[0] and spectrum.frequencies[0] == 0.0:
        powers[0] = spectrum.amplitudes[0] ** 2
    return float(np.sum(powers))
