"""Stimulus (excitation) functions for independent sources.

A :class:`Stimulus` answers two questions:

* ``value(t)`` — the ordinary single-time excitation ``b(t)`` used by DC,
  transient, shooting and harmonic-balance analyses, and
* ``bivariate_value(t1, t2, scales)`` — the multi-time excitation
  ``b_hat(t1, t2)`` used by the MPDE core, where ``scales`` is a
  :class:`repro.core.timescales.ShearedTimeScales` (duck-typed here to avoid
  a circular import) describing the fast axis, the difference-frequency axis
  and the shear between them.

The fundamental consistency requirement, Eq. (2)/(3) of the paper, is the
**diagonal property**::

    bivariate_value(t, t, scales) == value(t)          for all t

Every stimulus in this module preserves it by construction, and the property
based tests verify it numerically.  How a stimulus spreads over the two
artificial time axes depends on its frequency content:

* DC and slow (baseband-rate) stimuli vary only along the slow axis,
* stimuli at the LO frequency (or an exact harmonic of it) vary only along
  the fast axis,
* stimuli at the *closely spaced* carrier frequency ``k*f1 - fd`` use the
  sheared phase ``k*f1*t1 - fd*t2`` — this is Eq. (11)/(13) of the paper and
  is what exposes the difference-frequency variation explicitly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from ..utils.exceptions import ConfigurationError, ShearError
from ..utils.validation import as_float_array, check_finite, check_positive
from .bitstream import ConstantEnvelope, Envelope

__all__ = [
    "TimeScalesLike",
    "Stimulus",
    "DCStimulus",
    "SinusoidStimulus",
    "ModulatedCarrierStimulus",
    "PulseStimulus",
    "PiecewiseLinearStimulus",
    "SumStimulus",
]

_REL_FREQ_TOL = 1e-9


@runtime_checkable
class TimeScalesLike(Protocol):
    """The part of ``ShearedTimeScales`` the stimuli need (duck-typed)."""

    fast_frequency: float
    difference_frequency: float
    lo_multiple: int

    @property
    def carrier_frequency(self) -> float: ...

    def fast_phase(self, t1): ...

    def carrier_phase(self, t1, t2): ...

    def slow_phase(self, t2): ...


def _is_multiple_of(frequency: float, base: float) -> int | None:
    """Return ``m`` if ``frequency ~= m * base`` for a positive integer ``m``."""
    if base <= 0:
        return None
    ratio = frequency / base
    m = round(ratio)
    if m >= 1 and abs(ratio - m) <= _REL_FREQ_TOL * max(1.0, abs(ratio)):
        return int(m)
    return None


class Stimulus:
    """Abstract excitation waveform attached to an independent source."""

    def value(self, t: float | np.ndarray) -> float | np.ndarray:
        """Single-time excitation ``b(t)``."""
        raise NotImplementedError

    def bivariate_value(
        self, t1: float | np.ndarray, t2: float | np.ndarray, scales: TimeScalesLike
    ) -> float | np.ndarray:
        """Multi-time excitation ``b_hat(t1, t2)`` under the given time scales."""
        raise NotImplementedError

    def is_time_varying(self) -> bool:
        """Whether the stimulus depends on time at all (False for pure DC)."""
        return True

    def __call__(self, t: float | np.ndarray) -> float | np.ndarray:
        return self.value(t)

    def __add__(self, other: "Stimulus") -> "SumStimulus":
        if not isinstance(other, Stimulus):
            return NotImplemented
        return SumStimulus((self, other))


@dataclass(frozen=True)
class DCStimulus(Stimulus):
    """A constant excitation (supply voltages, bias currents)."""

    level: float

    def __post_init__(self) -> None:
        check_finite("level", self.level)

    def value(self, t: float | np.ndarray) -> float | np.ndarray:
        if np.isscalar(t) or np.ndim(t) == 0:
            return float(self.level)
        return np.full_like(np.asarray(t, dtype=float), self.level)

    def bivariate_value(self, t1, t2, scales: TimeScalesLike):
        del scales
        if (np.isscalar(t1) or np.ndim(t1) == 0) and (np.isscalar(t2) or np.ndim(t2) == 0):
            return float(self.level)
        shape = np.broadcast(np.asarray(t1), np.asarray(t2)).shape
        return np.full(shape, self.level, dtype=float)

    def is_time_varying(self) -> bool:
        return False


@dataclass(frozen=True)
class SinusoidStimulus(Stimulus):
    """A sinusoid ``offset + amplitude * cos(2*pi*frequency*t + phase)``.

    Parameters
    ----------
    amplitude, frequency, phase, offset:
        Usual sinusoid parameters (``phase`` in radians).
    axis:
        How the sinusoid is laid out on the multi-time plane:

        * ``"auto"`` (default): inferred from the frequency — an exact
          multiple of the fast (LO) frequency lives on the fast axis, the
          closely spaced carrier frequency ``k*f1 - fd`` is sheared, a
          multiple of the difference frequency lives on the slow axis.
        * ``"fast"``, ``"sheared"``, ``"slow"``: force the layout.
    """

    amplitude: float
    frequency: float
    phase: float = 0.0
    offset: float = 0.0
    axis: str = "auto"

    def __post_init__(self) -> None:
        check_finite("amplitude", self.amplitude)
        check_positive("frequency", self.frequency)
        check_finite("phase", self.phase)
        check_finite("offset", self.offset)
        if self.axis not in ("auto", "fast", "sheared", "slow"):
            raise ConfigurationError(
                f"axis must be 'auto', 'fast', 'sheared' or 'slow', got {self.axis!r}"
            )

    @property
    def omega(self) -> float:
        """Angular frequency in rad/s."""
        return 2.0 * math.pi * self.frequency

    def value(self, t):
        t = np.asarray(t, dtype=float)
        out = self.offset + self.amplitude * np.cos(self.omega * t + self.phase)
        if out.ndim == 0:
            return float(out)
        return out

    def _resolve_axis(self, scales: TimeScalesLike) -> tuple[str, int]:
        """Decide the multi-time layout; returns (axis, harmonic multiple)."""
        if self.axis == "fast":
            m = _is_multiple_of(self.frequency, scales.fast_frequency)
            if m is None:
                raise ShearError(
                    f"stimulus frequency {self.frequency:g} Hz is not a harmonic of the "
                    f"fast frequency {scales.fast_frequency:g} Hz"
                )
            return "fast", m
        if self.axis == "slow":
            m = _is_multiple_of(self.frequency, scales.difference_frequency)
            if m is None:
                raise ShearError(
                    f"stimulus frequency {self.frequency:g} Hz is not a harmonic of the "
                    f"difference frequency {scales.difference_frequency:g} Hz"
                )
            return "slow", m
        if self.axis == "sheared":
            if not math.isclose(
                self.frequency, scales.carrier_frequency, rel_tol=_REL_FREQ_TOL
            ):
                raise ShearError(
                    f"stimulus frequency {self.frequency:g} Hz does not match the sheared "
                    f"carrier frequency {scales.carrier_frequency:g} Hz"
                )
            return "sheared", 1
        # auto
        m_fast = _is_multiple_of(self.frequency, scales.fast_frequency)
        if m_fast is not None:
            return "fast", m_fast
        if math.isclose(self.frequency, scales.carrier_frequency, rel_tol=_REL_FREQ_TOL):
            return "sheared", 1
        m_slow = _is_multiple_of(self.frequency, scales.difference_frequency)
        if m_slow is not None:
            return "slow", m_slow
        raise ShearError(
            f"cannot place a {self.frequency:g} Hz sinusoid on the multi-time plane: it is "
            f"neither a harmonic of the fast frequency ({scales.fast_frequency:g} Hz), nor the "
            f"sheared carrier ({scales.carrier_frequency:g} Hz), nor a harmonic of the "
            f"difference frequency ({scales.difference_frequency:g} Hz); "
            "set axis= explicitly or adjust the time scales"
        )

    def bivariate_value(self, t1, t2, scales: TimeScalesLike):
        axis, m = self._resolve_axis(scales)
        if axis == "fast":
            phase_cycles = m * scales.fast_phase(t1)
        elif axis == "slow":
            phase_cycles = m * scales.slow_phase(t2)
        else:  # sheared
            phase_cycles = scales.carrier_phase(t1, t2)
        out = self.offset + self.amplitude * np.cos(
            2.0 * math.pi * np.asarray(phase_cycles, dtype=float) + self.phase
        )
        if np.ndim(out) == 0:
            return float(out)
        return out


@dataclass(frozen=True)
class ModulatedCarrierStimulus(Stimulus):
    """A carrier multiplied by a baseband envelope: ``A * m(t) * cos(2*pi*f_c*t + phase)``.

    This is the "high-frequency tone modulated by a bit stream" used as the
    RF drive of the paper's mixers (Eq. (14)).  In the multi-time plane the
    envelope ``m`` is evaluated along the slow (difference-frequency) axis
    while the carrier phase is sheared: ``A * m(t2) * cos(2*pi*(k*f1*t1 - fd*t2))``,
    which restores ``b(t) = b_hat(t, t)`` because ``k*f1 - fd`` equals the
    carrier frequency.
    """

    amplitude: float
    carrier_frequency: float
    envelope: Envelope = field(default_factory=ConstantEnvelope)
    phase: float = 0.0
    offset: float = 0.0

    def __post_init__(self) -> None:
        check_finite("amplitude", self.amplitude)
        check_positive("carrier_frequency", self.carrier_frequency)
        check_finite("phase", self.phase)
        check_finite("offset", self.offset)
        if not isinstance(self.envelope, Envelope):
            raise ConfigurationError("envelope must be an Envelope instance")

    def value(self, t):
        t = np.asarray(t, dtype=float)
        carrier = np.cos(2.0 * math.pi * self.carrier_frequency * t + self.phase)
        out = self.offset + self.amplitude * np.asarray(self.envelope.value(t)) * carrier
        if out.ndim == 0:
            return float(out)
        return out

    def bivariate_value(self, t1, t2, scales: TimeScalesLike):
        if not math.isclose(
            self.carrier_frequency, scales.carrier_frequency, rel_tol=_REL_FREQ_TOL
        ):
            raise ShearError(
                f"modulated carrier at {self.carrier_frequency:g} Hz does not match the "
                f"sheared carrier frequency {scales.carrier_frequency:g} Hz implied by the "
                f"time scales (fast {scales.fast_frequency:g} Hz x {scales.lo_multiple} - "
                f"difference {scales.difference_frequency:g} Hz)"
            )
        t1 = np.asarray(t1, dtype=float)
        t2 = np.asarray(t2, dtype=float)
        carrier = np.cos(2.0 * math.pi * np.asarray(scales.carrier_phase(t1, t2)) + self.phase)
        out = self.offset + self.amplitude * np.asarray(self.envelope.value(t2)) * carrier
        if np.ndim(out) == 0:
            return float(out)
        return out


@dataclass(frozen=True)
class PulseStimulus(Stimulus):
    """A SPICE-style periodic trapezoidal pulse.

    Used mostly by transient tests and the switching-waveform benchmarks.
    ``axis`` decides where the pulse lives on the multi-time plane ("fast" or
    "slow"); its period must then match the corresponding axis period.
    """

    low: float
    high: float
    period: float
    width: float
    delay: float = 0.0
    rise: float = 0.0
    fall: float = 0.0
    axis: str = "fast"

    def __post_init__(self) -> None:
        check_finite("low", self.low)
        check_finite("high", self.high)
        check_positive("period", self.period)
        check_positive("width", self.width)
        if self.width >= self.period:
            raise ConfigurationError("pulse width must be smaller than the period")
        if self.rise < 0 or self.fall < 0:
            raise ConfigurationError("rise/fall times must be non-negative")
        if self.rise + self.width + self.fall > self.period:
            raise ConfigurationError("rise + width + fall must fit within one period")
        if self.axis not in ("fast", "slow"):
            raise ConfigurationError("axis must be 'fast' or 'slow'")

    def _shape(self, local: np.ndarray) -> np.ndarray:
        rise = max(self.rise, 1e-300)
        fall = max(self.fall, 1e-300)
        up = np.clip(local / rise, 0.0, 1.0)
        down = np.clip((local - self.rise - self.width) / fall, 0.0, 1.0)
        frac = np.where(local < self.rise + self.width, up, 1.0 - down)
        frac = np.where(local >= self.rise + self.width + self.fall, 0.0, frac)
        return self.low + (self.high - self.low) * frac

    def value(self, t):
        t = np.asarray(t, dtype=float)
        local = np.mod(t - self.delay, self.period)
        out = self._shape(local)
        if out.ndim == 0:
            return float(out)
        return out

    def bivariate_value(self, t1, t2, scales: TimeScalesLike):
        if self.axis == "fast":
            axis_period = 1.0 / scales.fast_frequency
            coordinate = np.asarray(t1, dtype=float)
        else:
            axis_period = 1.0 / scales.difference_frequency
            coordinate = np.asarray(t2, dtype=float)
        if not math.isclose(self.period, axis_period, rel_tol=1e-6):
            raise ShearError(
                f"pulse period {self.period:g} s does not match the {self.axis} axis period "
                f"{axis_period:g} s"
            )
        local = np.mod(coordinate - self.delay, self.period)
        out = self._shape(local)
        if np.ndim(out) == 0:
            return float(out)
        return out


@dataclass(frozen=True)
class PiecewiseLinearStimulus(Stimulus):
    """A piecewise-linear excitation defined by (time, value) breakpoints.

    Values are held constant outside the breakpoint range.  PWL stimuli have
    no natural periodic multi-time representation, so ``bivariate_value``
    raises :class:`ShearError`; they are intended for transient analysis
    only.
    """

    times: tuple[float, ...]
    values: tuple[float, ...]

    def __init__(self, times: Sequence[float], values: Sequence[float]) -> None:
        t = as_float_array("times", times)
        v = as_float_array("values", values)
        if t.size != v.size:
            raise ConfigurationError("times and values must have the same length")
        if t.size < 2:
            raise ConfigurationError("PWL stimulus needs at least 2 breakpoints")
        if not np.all(np.diff(t) > 0):
            raise ConfigurationError("PWL breakpoint times must be strictly increasing")
        object.__setattr__(self, "times", tuple(float(x) for x in t))
        object.__setattr__(self, "values", tuple(float(x) for x in v))

    def value(self, t):
        out = np.interp(np.asarray(t, dtype=float), self.times, self.values)
        if out.ndim == 0:
            return float(out)
        return out

    def bivariate_value(self, t1, t2, scales: TimeScalesLike):
        raise ShearError(
            "piecewise-linear stimuli are aperiodic and have no multi-time representation; "
            "use a PulseStimulus or a BitStreamEnvelope-modulated carrier instead"
        )


@dataclass(frozen=True)
class SumStimulus(Stimulus):
    """Superposition of several stimuli (e.g. DC bias plus an RF drive)."""

    parts: tuple[Stimulus, ...]

    def __post_init__(self) -> None:
        if len(self.parts) < 1:
            raise ConfigurationError("SumStimulus needs at least one part")
        if not all(isinstance(p, Stimulus) for p in self.parts):
            raise ConfigurationError("all parts of a SumStimulus must be Stimulus instances")

    def value(self, t):
        total = sum(np.asarray(p.value(t), dtype=float) for p in self.parts)
        if np.ndim(total) == 0:
            return float(total)
        return total

    def bivariate_value(self, t1, t2, scales: TimeScalesLike):
        total = sum(
            np.asarray(p.bivariate_value(t1, t2, scales), dtype=float) for p in self.parts
        )
        if np.ndim(total) == 0:
            return float(total)
        return total

    def is_time_varying(self) -> bool:
        return any(p.is_time_varying() for p in self.parts)
