"""Bit streams and baseband envelopes.

The RF drive of the paper's mixers is a "high-frequency tone modulated by a
bit stream" — a carrier near 900 MHz whose amplitude follows a pulse pattern
that varies on the *difference-frequency* time scale.  This module provides

* :func:`prbs_bits` — pseudo-random binary sequences from a linear-feedback
  shift register (PRBS7/PRBS9/...),
* pulse-shaping helpers (:func:`rectangular_pulse`, :func:`smoothed_pulse`),
* :class:`BitStreamEnvelope` — a periodic baseband envelope ``m(t)`` built
  from a bit pattern, evaluable at arbitrary times, which is exactly the
  object the multi-time reformulation samples along the difference-frequency
  axis, and
* :class:`SinusoidalEnvelope` / :class:`ConstantEnvelope` for the pure-tone
  drives used when measuring conversion gain and distortion.

Envelopes are normalised so that they are periodic with ``period`` seconds —
for MPDE use the period should equal (or divide) the difference-frequency
period ``Td``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..utils.exceptions import ConfigurationError
from ..utils.validation import check_nonnegative, check_positive

__all__ = [
    "prbs_bits",
    "alternating_bits",
    "rectangular_pulse",
    "smoothed_pulse",
    "Envelope",
    "ConstantEnvelope",
    "SinusoidalEnvelope",
    "BitStreamEnvelope",
    "SymbolStreamEnvelope",
    "FourierEnvelope",
]

_PRBS_TAPS = {
    # order: (tap_a, tap_b) producing maximal-length sequences x^a + x^b + 1
    7: (7, 6),
    9: (9, 5),
    11: (11, 9),
    15: (15, 14),
}


def prbs_bits(order: int, n_bits: int, *, seed: int = 0b1010101) -> np.ndarray:
    """Generate ``n_bits`` of a maximal-length PRBS of the given ``order``.

    Implemented as a Fibonacci LFSR with the classic tap pairs; a PRBS-7
    generator repeats every 127 bits.  The value returned is an integer array
    of 0/1.
    """
    if order not in _PRBS_TAPS:
        raise ConfigurationError(
            f"unsupported PRBS order {order}; supported: {sorted(_PRBS_TAPS)}"
        )
    if n_bits < 1:
        raise ConfigurationError("n_bits must be >= 1")
    tap_a, tap_b = _PRBS_TAPS[order]
    mask = (1 << order) - 1
    state = seed & mask
    if state == 0:
        state = 1  # the all-zero state is the lock-up state of an LFSR
    bits = np.empty(n_bits, dtype=int)
    # Left-shifting Fibonacci LFSR: the feedback bit (XOR of the two taps,
    # counted from 1 at the LSB) is both the output and the new LSB.
    for i in range(n_bits):
        new_bit = ((state >> (tap_a - 1)) ^ (state >> (tap_b - 1))) & 1
        bits[i] = new_bit
        state = ((state << 1) | new_bit) & mask
    return bits


def alternating_bits(n_bits: int, *, start: int = 1) -> np.ndarray:
    """A simple 1 0 1 0 ... pattern, handy for eye-diagram style tests."""
    if n_bits < 1:
        raise ConfigurationError("n_bits must be >= 1")
    bits = np.empty(n_bits, dtype=int)
    bits[0::2] = start
    bits[1::2] = 1 - start
    return bits


def rectangular_pulse(u: np.ndarray | float) -> np.ndarray | float:
    """Unit rectangular pulse on the normalised interval [0, 1): 1 inside, 0 outside."""
    u = np.asarray(u, dtype=float)
    result = np.where((u >= 0.0) & (u < 1.0), 1.0, 0.0)
    if result.ndim == 0:
        return float(result)
    return result


def smoothed_pulse(u: np.ndarray | float, *, rise_fraction: float = 0.1) -> np.ndarray | float:
    """Rectangular pulse with raised-cosine edges.

    ``rise_fraction`` is the fraction of the unit interval spent in each
    transition.  The smoothing keeps coarse multi-time grids from aliasing
    the bit edges while retaining the sharp, strongly nonlinear character the
    paper emphasises; ``rise_fraction = 0`` reduces to
    :func:`rectangular_pulse`.
    """
    if not 0.0 <= rise_fraction < 0.5:
        raise ConfigurationError("rise_fraction must be in [0, 0.5)")
    u = np.asarray(u, dtype=float)
    if rise_fraction == 0.0:
        return rectangular_pulse(u)
    r = rise_fraction
    rising = 0.5 * (1.0 - np.cos(np.pi * np.clip(u / r, 0.0, 1.0)))
    falling = 0.5 * (1.0 + np.cos(np.pi * np.clip((u - (1.0 - r)) / r, 0.0, 1.0)))
    inside = (u >= 0.0) & (u < 1.0)
    shaped = np.where(u < r, rising, np.where(u >= 1.0 - r, falling, 1.0))
    result = np.where(inside, shaped, 0.0)
    if result.ndim == 0:
        return float(result)
    return result


class Envelope:
    """Base class for periodic baseband envelopes ``m(t)``.

    Subclasses implement :meth:`value`; the instance is callable.  ``period``
    is the repetition period in seconds (the MPDE difference-frequency axis
    wraps with this period).
    """

    period: float

    def value(self, t: np.ndarray) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError

    def __call__(self, t: float | np.ndarray) -> float | np.ndarray:
        out = self.value(np.asarray(t, dtype=float))
        if np.isscalar(t) or np.ndim(t) == 0:
            return float(out)
        return out


@dataclass(frozen=True)
class ConstantEnvelope(Envelope):
    """An envelope that is identically ``level`` (un-modulated carrier)."""

    level: float = 1.0
    period: float = 1.0

    def __post_init__(self) -> None:
        check_positive("period", self.period)

    def value(self, t: np.ndarray) -> np.ndarray:
        return np.full_like(np.asarray(t, dtype=float), self.level)


@dataclass(frozen=True)
class SinusoidalEnvelope(Envelope):
    """A raised sinusoidal envelope ``offset + amplitude * cos(2*pi*t/period + phase)``.

    With ``offset = 0`` this turns the modulated carrier into a pure two-tone
    drive, which is what the conversion-gain / distortion measurements use.
    """

    period: float
    amplitude: float = 1.0
    offset: float = 0.0
    phase: float = 0.0

    def __post_init__(self) -> None:
        check_positive("period", self.period)

    def value(self, t: np.ndarray) -> np.ndarray:
        t = np.asarray(t, dtype=float)
        return self.offset + self.amplitude * np.cos(2.0 * np.pi * t / self.period + self.phase)


@dataclass(frozen=True)
class BitStreamEnvelope(Envelope):
    """Periodic envelope following a bit pattern.

    Parameters
    ----------
    bits:
        Sequence of 0/1 (or boolean) values; the pattern repeats forever.
    bit_period:
        Duration of one bit in seconds.
    low, high:
        Envelope levels for 0 and 1 bits (e.g. ``low=-1, high=1`` for a BPSK
        style drive, ``low=0, high=1`` for on-off keying).
    rise_fraction:
        Fraction of each bit spent in a raised-cosine transition; 0 gives
        ideal rectangular bits.
    """

    bits: tuple[int, ...]
    bit_period: float
    low: float = 0.0
    high: float = 1.0
    rise_fraction: float = 0.05

    def __init__(
        self,
        bits: Sequence[int],
        bit_period: float,
        *,
        low: float = 0.0,
        high: float = 1.0,
        rise_fraction: float = 0.05,
    ) -> None:
        bits_tuple = tuple(int(b) for b in bits)
        if len(bits_tuple) < 1:
            raise ConfigurationError("BitStreamEnvelope needs at least one bit")
        if any(b not in (0, 1) for b in bits_tuple):
            raise ConfigurationError("bits must contain only 0s and 1s")
        check_positive("bit_period", bit_period)
        check_nonnegative("rise_fraction", rise_fraction)
        if rise_fraction >= 0.5:
            raise ConfigurationError("rise_fraction must be < 0.5")
        object.__setattr__(self, "bits", bits_tuple)
        object.__setattr__(self, "bit_period", float(bit_period))
        object.__setattr__(self, "low", float(low))
        object.__setattr__(self, "high", float(high))
        object.__setattr__(self, "rise_fraction", float(rise_fraction))

    @property
    def period(self) -> float:  # type: ignore[override]
        """Repetition period of the whole pattern."""
        return self.bit_period * len(self.bits)

    @property
    def n_bits(self) -> int:
        """Number of bits in the repeating pattern."""
        return len(self.bits)

    def bit_at(self, t: float) -> int:
        """The bit value governing the envelope at time ``t``."""
        index = int(np.floor((t % self.period) / self.bit_period)) % self.n_bits
        return self.bits[index]

    def value(self, t: np.ndarray) -> np.ndarray:
        t = np.asarray(t, dtype=float)
        local = np.mod(t, self.period)
        index = np.floor(local / self.bit_period).astype(int) % self.n_bits
        frac = local / self.bit_period - np.floor(local / self.bit_period)
        bits_arr = np.asarray(self.bits, dtype=float)
        current = bits_arr[index]
        previous = bits_arr[(index - 1) % self.n_bits]
        if self.rise_fraction == 0.0:
            levels = current
        else:
            # Raised-cosine transition from the previous bit at the start of
            # each bit slot; the transition is centred on the slot boundary.
            r = self.rise_fraction
            blend = np.where(
                frac < r,
                0.5 * (1.0 - np.cos(np.pi * frac / r)),
                1.0,
            )
            levels = previous + (current - previous) * blend
        return self.low + (self.high - self.low) * levels

    @staticmethod
    def prbs(
        order: int,
        n_bits: int,
        bit_period: float,
        *,
        low: float = 0.0,
        high: float = 1.0,
        rise_fraction: float = 0.05,
        seed: int = 0b1010101,
    ) -> "BitStreamEnvelope":
        """Convenience constructor: a PRBS pattern of ``n_bits`` bits."""
        return BitStreamEnvelope(
            prbs_bits(order, n_bits, seed=seed),
            bit_period,
            low=low,
            high=high,
            rise_fraction=rise_fraction,
        )


@dataclass(frozen=True)
class SymbolStreamEnvelope(Envelope):
    """Periodic envelope stepping through arbitrary real levels.

    The generalisation of :class:`BitStreamEnvelope` needed by the modulation
    schemes in :mod:`repro.scenarios.modulation`: each slot holds one real
    *level* (an I or Q coordinate of a constellation point, not a 0/1 bit),
    with the same raised-cosine transition from the previous level at the
    start of each slot.  The pattern repeats with period
    ``symbol_period * len(levels)``.
    """

    levels: tuple[float, ...]
    symbol_period: float
    rise_fraction: float = 0.15

    def __init__(
        self,
        levels: Sequence[float],
        symbol_period: float,
        *,
        rise_fraction: float = 0.15,
    ) -> None:
        levels_tuple = tuple(float(v) for v in levels)
        if len(levels_tuple) < 1:
            raise ConfigurationError("SymbolStreamEnvelope needs at least one level")
        if not all(np.isfinite(levels_tuple)):
            raise ConfigurationError("levels must be finite")
        check_positive("symbol_period", symbol_period)
        check_nonnegative("rise_fraction", rise_fraction)
        if rise_fraction >= 0.5:
            raise ConfigurationError("rise_fraction must be < 0.5")
        object.__setattr__(self, "levels", levels_tuple)
        object.__setattr__(self, "symbol_period", float(symbol_period))
        object.__setattr__(self, "rise_fraction", float(rise_fraction))

    @property
    def period(self) -> float:  # type: ignore[override]
        """Repetition period of the whole level pattern."""
        return self.symbol_period * len(self.levels)

    @property
    def n_symbols(self) -> int:
        """Number of slots in the repeating pattern."""
        return len(self.levels)

    def value(self, t: np.ndarray) -> np.ndarray:
        t = np.asarray(t, dtype=float)
        local = np.mod(t, self.period)
        index = np.floor(local / self.symbol_period).astype(int) % self.n_symbols
        frac = local / self.symbol_period - np.floor(local / self.symbol_period)
        levels_arr = np.asarray(self.levels, dtype=float)
        current = levels_arr[index]
        previous = levels_arr[(index - 1) % self.n_symbols]
        if self.rise_fraction == 0.0:
            return current
        r = self.rise_fraction
        blend = np.where(frac < r, 0.5 * (1.0 - np.cos(np.pi * frac / r)), 1.0)
        return previous + (current - previous) * blend


@dataclass(frozen=True)
class FourierEnvelope(Envelope):
    """Periodic envelope given directly by a few Fourier harmonics.

    ``value(t) = offset + Re/Im [ sum_k c_k * exp(2j*pi*k*t/period) ]``

    with ``harmonics`` a sequence of ``(k, c_k)`` pairs (``k >= 1``).  This is
    the natural container for OFDM-style multi-subcarrier envelopes (each
    subcarrier is one harmonic of the symbol period) and for multi-tone
    intermodulation stimuli (two pure envelope tones at harmonics ``ka`` and
    ``kb``).  ``part`` selects the real part (the I rail) or the imaginary
    part (the Q rail) of the complex sum, so an I/Q pair built from the same
    coefficients transmits the complex envelope ``sum_k c_k e^{j k w t}``.
    """

    period: float
    harmonics: tuple[tuple[int, complex], ...]
    offset: float = 0.0
    part: str = "real"

    def __init__(
        self,
        period: float,
        harmonics,
        *,
        offset: float = 0.0,
        part: str = "real",
    ) -> None:
        check_positive("period", period)
        if part not in ("real", "imag"):
            raise ConfigurationError(f"part must be 'real' or 'imag', got {part!r}")
        if isinstance(harmonics, dict):
            pairs = sorted(harmonics.items())
        else:
            pairs = sorted((int(k), c) for k, c in harmonics)
        normalised = tuple((int(k), complex(c)) for k, c in pairs)
        if len(normalised) < 1:
            raise ConfigurationError("FourierEnvelope needs at least one harmonic")
        if any(k < 1 for k, _ in normalised):
            raise ConfigurationError("harmonic indices must be >= 1")
        if len({k for k, _ in normalised}) != len(normalised):
            raise ConfigurationError("harmonic indices must be unique")
        object.__setattr__(self, "period", float(period))
        object.__setattr__(self, "harmonics", normalised)
        object.__setattr__(self, "offset", float(offset))
        object.__setattr__(self, "part", part)

    @property
    def max_harmonic(self) -> int:
        """The highest harmonic index carried by the envelope."""
        return max(k for k, _ in self.harmonics)

    def value(self, t: np.ndarray) -> np.ndarray:
        t = np.asarray(t, dtype=float)
        total = np.zeros(np.shape(t), dtype=complex)
        for k, coefficient in self.harmonics:
            total = total + coefficient * np.exp(2j * np.pi * k * t / self.period)
        component = total.real if self.part == "real" else total.imag
        return self.offset + component
