"""Waveform containers.

A :class:`Waveform` is an immutable pair of sampled time points and values,
with the small amount of calculus the analyses and metrics need: linear
interpolation, resampling, arithmetic, RMS/peak summaries and windowed views.
A :class:`BivariateWaveform` holds samples on a two-dimensional multi-time
grid (the object Figures 1, 2, 3 and 5 of the paper plot) together with the
axis periods, and knows how to interpolate periodically — which is what the
diagonal reconstruction ``x(t) = x_hat(t, t)`` of Figure 6 requires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..utils.exceptions import WaveformError
from ..utils.validation import as_float_array

__all__ = ["Waveform", "BivariateWaveform"]


@dataclass(frozen=True)
class Waveform:
    """A sampled scalar waveform ``value(time)``.

    Attributes
    ----------
    times:
        Strictly increasing sample instants in seconds.
    values:
        Sample values, same length as ``times``.
    name:
        Optional label used in reports and plots.
    """

    times: np.ndarray
    values: np.ndarray
    name: str = ""

    def __post_init__(self) -> None:
        times = as_float_array("times", self.times)
        values = as_float_array("values", self.values)
        if times.shape != values.shape:
            raise WaveformError(
                f"times {times.shape} and values {values.shape} must have the same shape"
            )
        if times.size >= 2 and not np.all(np.diff(times) > 0):
            raise WaveformError("times must be strictly increasing")
        object.__setattr__(self, "times", times)
        object.__setattr__(self, "values", values)

    # -- basic protocol ------------------------------------------------
    def __len__(self) -> int:
        return self.times.size

    @property
    def duration(self) -> float:
        """Span of the time axis in seconds."""
        if len(self) < 2:
            return 0.0
        return float(self.times[-1] - self.times[0])

    @property
    def sample_interval(self) -> float:
        """Mean spacing of the time samples."""
        if len(self) < 2:
            return 0.0
        return self.duration / (len(self) - 1)

    # -- evaluation ----------------------------------------------------
    def __call__(self, t: float | np.ndarray) -> float | np.ndarray:
        """Linearly interpolate the waveform at time(s) ``t`` (clamped at the ends)."""
        return np.interp(t, self.times, self.values)

    def resample(self, times: Sequence[float] | np.ndarray) -> "Waveform":
        """Return a new waveform linearly interpolated onto ``times``."""
        times = as_float_array("times", times)
        return Waveform(times, np.interp(times, self.times, self.values), name=self.name)

    def window(self, t_start: float, t_stop: float) -> "Waveform":
        """Return the sub-waveform with ``t_start <= t <= t_stop``."""
        if t_stop <= t_start:
            raise WaveformError("window requires t_stop > t_start")
        mask = (self.times >= t_start) & (self.times <= t_stop)
        if not np.any(mask):
            raise WaveformError(
                f"window [{t_start}, {t_stop}] contains no samples of waveform {self.name!r}"
            )
        return Waveform(self.times[mask], self.values[mask], name=self.name)

    # -- summaries -----------------------------------------------------
    def rms(self) -> float:
        """Root-mean-square value, trapezoidally weighted over time."""
        if len(self) < 2:
            return float(abs(self.values[0])) if len(self) else 0.0
        energy = np.trapezoid(self.values**2, self.times)
        return float(np.sqrt(energy / self.duration))

    def mean(self) -> float:
        """Time-averaged (DC) value."""
        if len(self) < 2:
            return float(self.values[0]) if len(self) else 0.0
        return float(np.trapezoid(self.values, self.times) / self.duration)

    def peak_to_peak(self) -> float:
        """Difference between the maximum and minimum sample."""
        if len(self) == 0:
            return 0.0
        return float(np.max(self.values) - np.min(self.values))

    def amplitude(self) -> float:
        """Half of the peak-to-peak excursion."""
        return 0.5 * self.peak_to_peak()

    # -- arithmetic ----------------------------------------------------
    def _binary(self, other: "Waveform | float", op: Callable) -> "Waveform":
        if isinstance(other, Waveform):
            if len(other) != len(self) or not np.allclose(other.times, self.times):
                other = other.resample(self.times)
            return Waveform(self.times, op(self.values, other.values), name=self.name)
        return Waveform(self.times, op(self.values, float(other)), name=self.name)

    def __add__(self, other: "Waveform | float") -> "Waveform":
        return self._binary(other, np.add)

    def __sub__(self, other: "Waveform | float") -> "Waveform":
        return self._binary(other, np.subtract)

    def __mul__(self, other: "Waveform | float") -> "Waveform":
        return self._binary(other, np.multiply)

    __radd__ = __add__
    __rmul__ = __mul__

    def __neg__(self) -> "Waveform":
        return Waveform(self.times, -self.values, name=self.name)

    @staticmethod
    def from_function(
        func: Callable[[np.ndarray], np.ndarray],
        t_start: float,
        t_stop: float,
        n_samples: int,
        name: str = "",
    ) -> "Waveform":
        """Sample ``func`` on ``n_samples`` uniformly spaced points."""
        if n_samples < 2:
            raise WaveformError("from_function needs at least 2 samples")
        times = np.linspace(t_start, t_stop, n_samples)
        return Waveform(times, np.asarray(func(times), dtype=float), name=name)


@dataclass(frozen=True)
class BivariateWaveform:
    """A scalar function sampled on a periodic two-dimensional multi-time grid.

    ``values[i, j]`` is the sample at ``(t1_i, t2_j)``.  Both axes are
    *periodic*: ``t1`` with ``period1`` and ``t2`` with ``period2``.  The grid
    points are the left endpoints of a uniform partition, i.e.
    ``t1_i = i * period1 / n1``, so the wrap-around point is *not* duplicated.
    """

    values: np.ndarray
    period1: float
    period2: float
    name: str = ""

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=float)
        if values.ndim != 2:
            raise WaveformError(f"values must be 2-D, got shape {values.shape}")
        if values.shape[0] < 2 or values.shape[1] < 2:
            raise WaveformError("bivariate waveforms need at least 2 samples per axis")
        if not np.all(np.isfinite(values)):
            raise WaveformError("bivariate waveform contains non-finite samples")
        if self.period1 <= 0 or self.period2 <= 0:
            raise WaveformError("bivariate waveform periods must be positive")
        object.__setattr__(self, "values", values)

    @property
    def shape(self) -> tuple[int, int]:
        """Grid shape ``(n1, n2)``."""
        return self.values.shape

    @property
    def axis1(self) -> np.ndarray:
        """Sample positions along the first (fast) axis."""
        n1 = self.values.shape[0]
        return np.arange(n1) * (self.period1 / n1)

    @property
    def axis2(self) -> np.ndarray:
        """Sample positions along the second (slow / difference) axis."""
        n2 = self.values.shape[1]
        return np.arange(n2) * (self.period2 / n2)

    def __call__(self, t1: float | np.ndarray, t2: float | np.ndarray) -> float | np.ndarray:
        """Periodic bilinear interpolation at ``(t1, t2)``."""
        n1, n2 = self.values.shape
        u = np.asarray(t1, dtype=float) / self.period1 * n1
        v = np.asarray(t2, dtype=float) / self.period2 * n2
        i0 = np.floor(u).astype(int)
        j0 = np.floor(v).astype(int)
        fu = u - i0
        fv = v - j0
        i0 = np.mod(i0, n1)
        j0 = np.mod(j0, n2)
        i1 = np.mod(i0 + 1, n1)
        j1 = np.mod(j0 + 1, n2)
        vals = (
            self.values[i0, j0] * (1 - fu) * (1 - fv)
            + self.values[i1, j0] * fu * (1 - fv)
            + self.values[i0, j1] * (1 - fu) * fv
            + self.values[i1, j1] * fu * fv
        )
        if np.isscalar(t1) and np.isscalar(t2):
            return float(vals)
        return vals

    @staticmethod
    def _close_period(times: np.ndarray, values: np.ndarray, period: float) -> tuple[np.ndarray, np.ndarray]:
        """Append the periodic wrap-around sample so the waveform spans a full period.

        The grid stores only the left endpoints of the partition; spectral
        post-processing (Fourier projection, THD) needs waveforms covering a
        complete period, otherwise the truncated window leaks the (large) DC
        component into the small difference-frequency bins.
        """
        return (
            np.concatenate([times, [times[0] + period]]),
            np.concatenate([values, [values[0]]]),
        )

    def diagonal(self, times: Sequence[float] | np.ndarray, name: str | None = None) -> Waveform:
        """Evaluate the one-time waveform ``x(t) = x_hat(t, t)`` at ``times``.

        This is the reconstruction that recovers the solution of the original
        circuit equations from the multi-time solution (Figure 6 in the
        paper).
        """
        times = as_float_array("times", times)
        return Waveform(times, np.asarray(self(times, times), dtype=float), name=name or self.name)

    def slice_fast(self, t2: float) -> Waveform:
        """Waveform along the fast axis (one full period) at a fixed slow time ``t2``."""
        axis = self.axis1
        values = np.asarray(self(axis, np.full_like(axis, t2)))
        times, values = self._close_period(axis, values, self.period1)
        return Waveform(times, values, name=self.name)

    def slice_slow(self, t1: float) -> Waveform:
        """Waveform along the slow (difference) axis (one full period) at a fixed fast time ``t1``."""
        axis = self.axis2
        values = np.asarray(self(np.full_like(axis, t1), axis))
        times, values = self._close_period(axis, values, self.period2)
        return Waveform(times, values, name=self.name)

    def envelope_mean(self) -> Waveform:
        """Average over the fast axis as a function of the slow axis.

        For a down-converted output this is the baseband waveform with the
        carrier ripple removed (the quantity plotted in Figure 4).  The
        returned waveform covers one full slow period including the periodic
        wrap-around sample.
        """
        times, values = self._close_period(self.axis2, self.values.mean(axis=0), self.period2)
        return Waveform(times, values, name=self.name)

    def envelope_max(self) -> Waveform:
        """Upper envelope over the fast axis as a function of the slow axis."""
        times, values = self._close_period(self.axis2, self.values.max(axis=0), self.period2)
        return Waveform(times, values, name=self.name)

    def envelope_min(self) -> Waveform:
        """Lower envelope over the fast axis as a function of the slow axis."""
        times, values = self._close_period(self.axis2, self.values.min(axis=0), self.period2)
        return Waveform(times, values, name=self.name)
