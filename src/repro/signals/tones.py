"""Tone descriptions for multi-tone excitation.

A :class:`Tone` is a single sinusoidal component (frequency, amplitude,
phase).  :class:`TonePair` captures the closely-spaced two-tone situation the
paper targets — an LO tone ``f1`` and an information-carrying tone ``f2``
whose relevant mixing product sits at a *difference frequency*
``fd = k * f1 - f2`` for some small integer ``k`` (``k = 1`` for a plain
mixer, ``k = 2`` for the LO-doubling balanced mixer of Section 3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..utils.exceptions import ConfigurationError
from ..utils.validation import check_finite, check_positive

__all__ = ["Tone", "TonePair", "difference_frequency", "is_closely_spaced"]


@dataclass(frozen=True)
class Tone:
    """A single sinusoidal tone ``amplitude * cos(2*pi*frequency*t + phase)``."""

    frequency: float
    amplitude: float = 1.0
    phase: float = 0.0

    def __post_init__(self) -> None:
        check_positive("frequency", self.frequency)
        check_finite("amplitude", self.amplitude)
        check_finite("phase", self.phase)

    @property
    def period(self) -> float:
        """Period in seconds."""
        return 1.0 / self.frequency

    @property
    def omega(self) -> float:
        """Angular frequency in rad/s."""
        return 2.0 * math.pi * self.frequency

    def __call__(self, t: float | np.ndarray) -> float | np.ndarray:
        """Evaluate the tone at time(s) ``t``."""
        return self.amplitude * np.cos(self.omega * np.asarray(t, dtype=float) + self.phase)

    def scaled(self, factor: float) -> "Tone":
        """Return a copy with the amplitude multiplied by ``factor``."""
        return Tone(self.frequency, self.amplitude * factor, self.phase)


def difference_frequency(f1: float, f2: float, lo_multiple: int = 1) -> float:
    """Difference frequency ``|lo_multiple * f1 - f2|``.

    ``lo_multiple`` models internal frequency multiplication of the LO before
    mixing; the paper's balanced mixer doubles a 450 MHz LO before mixing
    with an RF tone near 900 MHz, so ``lo_multiple = 2`` and the difference
    frequency is ``|2 * 450 MHz - f2|`` = 15 kHz.
    """
    check_positive("f1", f1)
    check_positive("f2", f2)
    if lo_multiple < 1:
        raise ConfigurationError(f"lo_multiple must be >= 1, got {lo_multiple}")
    return abs(lo_multiple * f1 - f2)


def is_closely_spaced(f1: float, f2: float, lo_multiple: int = 1, *, threshold: float = 0.05) -> bool:
    """True when the difference tone is small compared with the carriers.

    The paper characterises tones as closely spaced when
    ``|k*f1 - f2| << f1, f2``; the default threshold calls tones closely
    spaced when the difference is below 5 % of the smaller carrier.
    """
    fd = difference_frequency(f1, f2, lo_multiple)
    return fd < threshold * min(lo_multiple * f1, f2)


@dataclass(frozen=True)
class TonePair:
    """A closely spaced pair: LO tone plus an information-carrying tone.

    Attributes
    ----------
    lo:
        The local-oscillator tone at frequency ``f1``.
    rf:
        The information-carrying tone at frequency ``f2`` (close to
        ``lo_multiple * f1``).
    lo_multiple:
        Internal multiplication of the LO inside the circuit before mixing
        (2 for the LO-doubling balanced mixer).
    """

    lo: Tone
    rf: Tone
    lo_multiple: int = 1

    def __post_init__(self) -> None:
        if self.lo_multiple < 1:
            raise ConfigurationError(f"lo_multiple must be >= 1, got {self.lo_multiple}")

    @property
    def f1(self) -> float:
        """LO frequency."""
        return self.lo.frequency

    @property
    def f2(self) -> float:
        """RF (information-carrying) frequency."""
        return self.rf.frequency

    @property
    def difference_frequency(self) -> float:
        """Baseband frequency ``|lo_multiple * f1 - f2|``."""
        return difference_frequency(self.f1, self.f2, self.lo_multiple)

    @property
    def difference_period(self) -> float:
        """Period of the difference tone ``Td = 1 / fd``."""
        fd = self.difference_frequency
        if fd == 0.0:
            raise ConfigurationError("tones are exactly aligned; difference period is infinite")
        return 1.0 / fd

    @property
    def disparity(self) -> float:
        """Ratio of the carrier frequency to the difference frequency.

        The paper's speed-up over single-time shooting grows roughly linearly
        with this number, with break-even around 200.
        """
        fd = self.difference_frequency
        if fd == 0.0:
            return math.inf
        return self.f1 / fd

    def is_closely_spaced(self, threshold: float = 0.05) -> bool:
        """Whether the pair qualifies as closely spaced (see module docs)."""
        return is_closely_spaced(self.f1, self.f2, self.lo_multiple, threshold=threshold)

    @staticmethod
    def from_frequencies(
        f1: float,
        f2: float,
        *,
        lo_amplitude: float = 1.0,
        rf_amplitude: float = 1.0,
        lo_multiple: int = 1,
    ) -> "TonePair":
        """Build a tone pair from two frequencies and optional amplitudes."""
        return TonePair(
            lo=Tone(f1, lo_amplitude),
            rf=Tone(f2, rf_amplitude),
            lo_multiple=lo_multiple,
        )

    @staticmethod
    def paper_ideal_mixing() -> "TonePair":
        """The ideal-mixing example of Section 2: 1 GHz and 1 GHz - 10 kHz."""
        return TonePair.from_frequencies(1.0e9, 1.0e9 - 10.0e3)

    @staticmethod
    def paper_balanced_mixer() -> "TonePair":
        """The balanced-mixer tones of Section 3: 450 MHz LO doubled against ~900 MHz RF.

        The RF carrier is offset so the baseband (difference) frequency is
        15 kHz, exactly as reported in the paper.
        """
        f1 = 450.0e6
        fd = 15.0e3
        return TonePair.from_frequencies(f1, 2 * f1 - fd, lo_multiple=2)
