"""Signal descriptions: tones, bit streams, stimuli, waveforms and spectra."""

from .bitstream import (
    BitStreamEnvelope,
    ConstantEnvelope,
    Envelope,
    FourierEnvelope,
    SinusoidalEnvelope,
    SymbolStreamEnvelope,
    alternating_bits,
    prbs_bits,
    rectangular_pulse,
    smoothed_pulse,
)
from .spectrum import (
    Spectrum,
    band_power,
    compute_spectrum,
    fourier_coefficient,
    total_harmonic_distortion,
)
from .stimuli import (
    DCStimulus,
    ModulatedCarrierStimulus,
    PiecewiseLinearStimulus,
    PulseStimulus,
    SinusoidStimulus,
    Stimulus,
    SumStimulus,
    TimeScalesLike,
)
from .tones import Tone, TonePair, difference_frequency, is_closely_spaced
from .waveform import BivariateWaveform, Waveform

__all__ = [
    "Tone",
    "TonePair",
    "difference_frequency",
    "is_closely_spaced",
    "Waveform",
    "BivariateWaveform",
    "Envelope",
    "ConstantEnvelope",
    "SinusoidalEnvelope",
    "BitStreamEnvelope",
    "SymbolStreamEnvelope",
    "FourierEnvelope",
    "prbs_bits",
    "alternating_bits",
    "rectangular_pulse",
    "smoothed_pulse",
    "Stimulus",
    "DCStimulus",
    "SinusoidStimulus",
    "ModulatedCarrierStimulus",
    "PulseStimulus",
    "PiecewiseLinearStimulus",
    "SumStimulus",
    "TimeScalesLike",
    "Spectrum",
    "compute_spectrum",
    "fourier_coefficient",
    "total_harmonic_distortion",
    "band_power",
]
