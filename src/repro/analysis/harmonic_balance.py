"""Single-tone harmonic balance.

Harmonic balance (HB) represents every waveform in the circuit by a truncated
Fourier series and enforces the circuit equations on the harmonic
coefficients.  The implementation here uses the *time-sample* (spectral
collocation) form: the unknowns are the waveform samples at
``N = oversampling * (2K + 1)`` uniformly spaced points, the time derivative
is applied with the exact Fourier differentiation matrix, and the harmonic
coefficients are recovered by FFT.  This is algebraically equivalent to
classical frequency-domain HB with ``K`` harmonics (the two formulations are
related by the invertible DFT), while sharing its Newton infrastructure with
the rest of the library.

The paper's motivation section argues that HB struggles with the sharp,
switching waveforms of integrated RF mixers because many Fourier terms are
needed; the benchmark ``bench_hb_vs_timedomain_sharp_waveforms.py`` measures
exactly that effect using this module, and the MPDE core deliberately uses
low-order finite differences instead.

Multi-tone (two-tone) harmonic balance is available through the MPDE core by
selecting the ``"fourier"`` differentiation option on both artificial time
axes — see :func:`repro.core.mpde.solve_mpde`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..circuits.mna import MNASystem
from ..signals.waveform import Waveform
from ..utils.exceptions import AnalysisError
from ..utils.options import HarmonicBalanceOptions
from .pss_fd import CollocationPSSResult, collocation_periodic_steady_state

__all__ = ["HarmonicBalanceResult", "harmonic_balance"]


@dataclass
class HarmonicBalanceResult:
    """Result of a single-tone harmonic-balance analysis.

    Attributes
    ----------
    collocation:
        The underlying collocation solution (time samples over one period).
    fundamental:
        The fundamental frequency in Hz.
    n_harmonics:
        Number of harmonics retained (``K``).
    """

    collocation: CollocationPSSResult
    fundamental: float
    n_harmonics: int

    @property
    def period(self) -> float:
        """Fundamental period."""
        return self.collocation.period

    @property
    def newton_iterations(self) -> int:
        """Newton iterations spent on the HB system."""
        return self.collocation.newton_iterations

    def waveform(self, node: str) -> Waveform:
        """Time-domain waveform of a node voltage over one period."""
        return self.collocation.waveform(node)

    def harmonics(self, node: str) -> np.ndarray:
        """Complex harmonic coefficients ``X_0 .. X_K`` of a node voltage.

        ``X_0`` is the DC value; for ``k >= 1`` the time-domain component is
        ``2 * |X_k| * cos(2*pi*k*f0*t + arg X_k)``.
        """
        return self.collocation.fourier_harmonics(node, self.n_harmonics)

    def harmonic_amplitude(self, node: str, k: int) -> float:
        """Peak amplitude of harmonic ``k`` of a node voltage."""
        coeffs = self.harmonics(node)
        if k < 0 or k >= coeffs.size:
            raise AnalysisError(f"harmonic index {k} out of range 0..{coeffs.size - 1}")
        if k == 0:
            return float(abs(coeffs[0]))
        return float(2.0 * abs(coeffs[k]))

    def total_harmonic_distortion(self, node: str) -> float:
        """THD of a node voltage (harmonics 2..K relative to the fundamental)."""
        coeffs = self.harmonics(node)
        fundamental = 2.0 * abs(coeffs[1]) if coeffs.size > 1 else 0.0
        # Guard against waveforms with essentially no AC content (e.g. a DC
        # node): a THD relative to numerical noise would be meaningless.
        floor = 1e-9 * max(float(np.max(np.abs(coeffs))), 1e-30)
        if fundamental <= floor:
            raise AnalysisError(f"node {node!r} has no fundamental component")
        harmonic_rms = np.sqrt(np.sum((2.0 * np.abs(coeffs[2:])) ** 2))
        return float(harmonic_rms / fundamental)


def harmonic_balance(
    mna: MNASystem,
    fundamental: float,
    *,
    options: HarmonicBalanceOptions | None = None,
    x0: np.ndarray | None = None,
) -> HarmonicBalanceResult:
    """Run single-tone harmonic balance at the given fundamental frequency.

    Parameters
    ----------
    mna:
        Compiled circuit equations; the excitation must be periodic with
        ``1 / fundamental``.
    fundamental:
        Fundamental frequency in Hz.
    options:
        :class:`~repro.utils.options.HarmonicBalanceOptions` — ``harmonics``
        sets the truncation ``K`` and ``oversampling`` the number of
        collocation samples per retained harmonic.
    x0:
        Optional initial guess (see
        :func:`~repro.analysis.pss_fd.collocation_periodic_steady_state`).
    """
    if fundamental <= 0:
        raise AnalysisError("fundamental frequency must be positive")
    opts = options or HarmonicBalanceOptions()
    n_samples = opts.oversampling * (2 * opts.harmonics + 1)
    period = 1.0 / fundamental
    collocation = collocation_periodic_steady_state(
        mna,
        period,
        n_samples,
        method="fourier",
        x0=x0,
        newton_options=opts.newton,
    )
    return HarmonicBalanceResult(
        collocation=collocation, fundamental=fundamental, n_harmonics=opts.harmonics
    )
