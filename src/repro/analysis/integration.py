"""Implicit integration rules for the charge-oriented DAE.

All time-stepping in the library (transient analysis and the inner loop of
shooting) discretises

    d/dt q(x(t)) + f(x(t)) + b(t) = 0

with a linear multistep rule that expresses the derivative of ``q`` at the
*new* time point as

    dq/dt |_{n+1}  ~=  alpha * q(x_{n+1}) + r_n

where ``alpha`` depends only on the step size(s) and ``r_n`` collects known
history (previous charges and, for the trapezoidal rule, the previous
derivative obtained *exactly* from the DAE itself as
``dq/dt|_n = -(f(x_n) + b(t_n))``).  The implicit step then solves

    alpha * q(x_{n+1}) + r_n + f(x_{n+1}) + b(t_{n+1}) = 0

with Newton, whose Jacobian is ``alpha * C(x) + G(x)``.

Three classic rules are provided:

* **Backward Euler** — first order, L-stable, strongly damping.  The most
  robust choice for the switching waveforms the paper targets.
* **Trapezoidal** — second order, A-stable, no numerical damping (but prone
  to ringing on discontinuities).
* **Gear-2 / BDF2** — second order, L-stable; needs two history points, so
  the first step falls back to backward Euler.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..utils.exceptions import AnalysisError

__all__ = [
    "StepContext",
    "IntegrationRule",
    "BackwardEuler",
    "Trapezoidal",
    "Gear2",
    "make_integration_rule",
]


@dataclass
class StepContext:
    """History carried from one accepted time step to the next.

    Attributes
    ----------
    q_prev:
        ``q(x_n)`` at the previous accepted point.
    qdot_prev:
        ``dq/dt`` at the previous accepted point (from the DAE identity).
    q_prev2:
        ``q(x_{n-1})`` two accepted points back (for BDF2); may be ``None``.
    h_prev:
        Size of the previous accepted step (for variable-step BDF2); may be
        ``None`` on the first step.
    """

    q_prev: np.ndarray
    qdot_prev: np.ndarray
    q_prev2: np.ndarray | None = None
    h_prev: float | None = None


class IntegrationRule:
    """Base class for implicit linear-multistep rules (see module docstring)."""

    name = "abstract"
    order = 0

    def derivative_coefficients(self, h: float, context: StepContext) -> tuple[float, np.ndarray]:
        """Return ``(alpha, r)`` such that ``dq/dt|_{n+1} ~= alpha * q_{n+1} + r``."""
        raise NotImplementedError

    def needs_two_history_points(self) -> bool:
        """Whether the rule requires ``q_prev2`` (BDF2 does)."""
        return False


class BackwardEuler(IntegrationRule):
    """First-order backward (implicit) Euler: ``dq/dt ~ (q_{n+1} - q_n) / h``."""

    name = "backward-euler"
    order = 1

    def derivative_coefficients(self, h: float, context: StepContext) -> tuple[float, np.ndarray]:
        if h <= 0:
            raise AnalysisError(f"step size must be positive, got {h}")
        return 1.0 / h, -context.q_prev / h


class Trapezoidal(IntegrationRule):
    """Second-order trapezoidal rule.

    ``(q_{n+1} - q_n) / h = (dq/dt|_{n+1} + dq/dt|_n) / 2`` rearranged to
    ``dq/dt|_{n+1} = 2 (q_{n+1} - q_n) / h - dq/dt|_n``.
    """

    name = "trapezoidal"
    order = 2

    def derivative_coefficients(self, h: float, context: StepContext) -> tuple[float, np.ndarray]:
        if h <= 0:
            raise AnalysisError(f"step size must be positive, got {h}")
        alpha = 2.0 / h
        r = -2.0 * context.q_prev / h - context.qdot_prev
        return alpha, r


class Gear2(IntegrationRule):
    """Second-order backward differentiation formula (BDF2).

    Variable-step form: with current step ``h`` and previous step ``h_prev``,
    ``rho = h / h_prev`` and

        dq/dt|_{n+1} ~= [ (1 + 2 rho)/(1 + rho) q_{n+1}
                          - (1 + rho) q_n
                          + rho^2/(1 + rho) q_{n-1} ] / h

    which reduces to the familiar ``(3/2 q_{n+1} - 2 q_n + 1/2 q_{n-1}) / h``
    for uniform steps.  Falls back to backward Euler when only one history
    point is available.
    """

    name = "gear2"
    order = 2

    def needs_two_history_points(self) -> bool:
        return True

    def derivative_coefficients(self, h: float, context: StepContext) -> tuple[float, np.ndarray]:
        if h <= 0:
            raise AnalysisError(f"step size must be positive, got {h}")
        if context.q_prev2 is None or context.h_prev is None:
            return BackwardEuler().derivative_coefficients(h, context)
        rho = h / context.h_prev
        a_new = (1.0 + 2.0 * rho) / (1.0 + rho)
        a_prev = -(1.0 + rho)
        a_prev2 = rho * rho / (1.0 + rho)
        alpha = a_new / h
        r = (a_prev * context.q_prev + a_prev2 * context.q_prev2) / h
        return alpha, r


_RULES = {
    BackwardEuler.name: BackwardEuler,
    Trapezoidal.name: Trapezoidal,
    Gear2.name: Gear2,
}


def make_integration_rule(name: str) -> IntegrationRule:
    """Instantiate an integration rule by name."""
    try:
        return _RULES[name]()
    except KeyError as exc:
        raise AnalysisError(
            f"unknown integration method {name!r}; available: {sorted(_RULES)}"
        ) from exc
