"""DC operating-point analysis.

Solves ``f(x) + b(t=0) = 0`` (charges do not contribute at DC) with damped
Newton.  When plain Newton fails — the normal situation for multi-transistor
circuits started from a zero guess — two classic continuation strategies are
tried automatically, in order:

1. **gmin stepping**: a conductance from every node to ground is swept from a
   large value down to (effectively) zero, and
2. **source stepping**: all independent sources are ramped up from zero,

both implemented on top of :func:`repro.linalg.continuation.continuation_solve`.
This mirrors the paper's reliance on continuation for hard nonlinear solves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..circuits.mna import MNASystem
from ..linalg.continuation import continuation_solve
from ..linalg.newton import NewtonResult, newton_solve
from ..resilience.deadline import Deadline
from ..resilience.diagnostics import attach_diagnostics, build_failure_diagnostics
from ..utils.exceptions import ConvergenceError, SingularMatrixError
from ..utils.logging import get_logger
from ..utils.options import ContinuationOptions, NewtonOptions

__all__ = ["DCSolution", "dc_operating_point"]

_LOG = get_logger("analysis.dc")

# gmin stepping sweeps the node-to-ground conductance from GMIN_START down to
# GMIN_FINAL; the final value is small enough not to perturb realistic
# circuits but keeps the Jacobian nonsingular for floating nodes.
_GMIN_START = 1e-2
_GMIN_FINAL = 1e-12


@dataclass(frozen=True)
class DCSolution:
    """Result of a DC operating-point analysis.

    Attributes
    ----------
    x:
        The operating point (node voltages and branch currents).
    strategy:
        Which strategy succeeded: ``"newton"``, ``"gmin-stepping"`` or
        ``"source-stepping"``.
    newton_iterations:
        Total Newton iterations spent (including continuation sub-solves).
    residual_norm:
        Infinity norm of ``f(x) + b(0)`` at the solution.
    """

    x: np.ndarray
    strategy: str
    newton_iterations: int
    residual_norm: float

    def voltage(self, mna: MNASystem, node: str) -> float:
        """Convenience accessor for a node voltage at the operating point."""
        return float(mna.voltage(self.x, node))


def _with_gmin_diagonal(jacobian: np.ndarray, gmin_diag: np.ndarray) -> np.ndarray:
    """Add the (sparse) gmin diagonal onto a dense conductance Jacobian."""
    idx = np.arange(jacobian.shape[0])
    jacobian[idx, idx] += gmin_diag
    return jacobian


def _plain_newton(
    mna: MNASystem, x0: np.ndarray, b0: np.ndarray, options: NewtonOptions
) -> NewtonResult:
    # ``gmin_matrix`` is a sparse diagonal; only its diagonal vector is needed
    # here, so neither the residual nor the Jacobian ever densifies it.
    gmin_diag = mna.gmin_matrix(_GMIN_FINAL).diagonal()

    def residual(x: np.ndarray) -> np.ndarray:
        return mna.f(x) + b0 + gmin_diag * x

    def jacobian(x: np.ndarray) -> np.ndarray:
        return _with_gmin_diagonal(mna.conductance_matrix(x), gmin_diag)

    try:
        return newton_solve(residual, jacobian, x0, options, raise_on_failure=False)
    except SingularMatrixError as exc:
        # A singular Jacobian at some iterate is exactly what gmin stepping
        # exists to regularise; report a non-converged result so the caller
        # falls through to the stepping strategies instead of aborting.
        _LOG.info("plain DC Newton hit a singular Jacobian (%s)", exc)
        return NewtonResult(
            x=np.asarray(x0, dtype=float).copy(),
            converged=False,
            iterations=0,
            residual_norm=float("inf"),
            update_norm=float("inf"),
        )


def _gmin_stepping(
    mna: MNASystem,
    x0: np.ndarray,
    b0: np.ndarray,
    newton_options: NewtonOptions,
    continuation_options: ContinuationOptions,
    deadline: Deadline | None = None,
):
    """Sweep gmin from _GMIN_START down to _GMIN_FINAL (log-spaced embedding)."""
    log_start = np.log10(_GMIN_START)
    log_final = np.log10(_GMIN_FINAL)
    unit_diag = mna.gmin_matrix(1.0).diagonal()

    def gmin_of(lam: float) -> float:
        return 10.0 ** (log_start + lam * (log_final - log_start))

    def residual(x: np.ndarray, lam: float) -> np.ndarray:
        return mna.f(x) + b0 + (gmin_of(lam) * unit_diag) * x

    def jacobian(x: np.ndarray, lam: float) -> np.ndarray:
        return _with_gmin_diagonal(mna.conductance_matrix(x), gmin_of(lam) * unit_diag)

    return continuation_solve(
        residual, jacobian, x0, newton_options, continuation_options, deadline=deadline
    )


def _source_stepping(
    mna: MNASystem,
    x0: np.ndarray,
    b0: np.ndarray,
    newton_options: NewtonOptions,
    continuation_options: ContinuationOptions,
    deadline: Deadline | None = None,
):
    """Ramp the full excitation vector from zero up to its nominal value."""
    gmin_diag = mna.gmin_matrix(_GMIN_FINAL).diagonal()

    def residual(x: np.ndarray, lam: float) -> np.ndarray:
        return mna.f(x) + lam * b0 + gmin_diag * x

    def jacobian(x: np.ndarray, lam: float) -> np.ndarray:
        del lam
        return _with_gmin_diagonal(mna.conductance_matrix(x), gmin_diag)

    return continuation_solve(
        residual, jacobian, x0, newton_options, continuation_options, deadline=deadline
    )


def dc_operating_point(
    mna: MNASystem,
    *,
    x0: np.ndarray | None = None,
    time: float = 0.0,
    newton_options: NewtonOptions | None = None,
    continuation_options: ContinuationOptions | None = None,
    deadline_s: float | None = None,
) -> DCSolution:
    """Compute the DC operating point of a compiled circuit.

    Parameters
    ----------
    mna:
        The compiled circuit equations.
    x0:
        Optional initial guess (defaults to all zeros).
    time:
        Time at which the excitation ``b(t)`` is frozen (0 by default, which
        evaluates sinusoidal sources at their ``t = 0`` value).
    newton_options, continuation_options:
        Iteration controls.
    deadline_s:
        Optional cooperative wall-clock budget for the whole analysis
        (all strategies together); checked between strategies and at every
        continuation step.

    Raises
    ------
    ConvergenceError
        If plain Newton, gmin stepping and source stepping all fail.  The
        raised exception carries a
        :class:`~repro.resilience.diagnostics.FailureDiagnostics` payload on
        its ``diagnostics`` attribute when localisation is possible.
    DeadlineExceededError
        If ``deadline_s`` expires before a strategy succeeds.
    """
    nopts = newton_options or NewtonOptions()
    copts = continuation_options or ContinuationOptions()
    deadline = Deadline(deadline_s)
    x_start = mna.zero_state() if x0 is None else np.asarray(x0, dtype=float).copy()
    b0 = mna.source(time)

    result = _plain_newton(mna, x_start, b0, nopts)
    if result.converged:
        return DCSolution(
            x=result.x,
            strategy="newton",
            newton_iterations=result.iterations,
            residual_norm=result.residual_norm,
        )
    _LOG.info("plain Newton failed for DC operating point; trying gmin stepping")
    deadline.check("dc gmin stepping")

    # Continuation embeddings can fail by divergence *or* by hitting a
    # singular embedded Jacobian; both mean "try the next strategy".
    try:
        cont = _gmin_stepping(mna, x_start, b0, nopts, copts, deadline)
        residual_norm = float(np.max(np.abs(mna.f(cont.x) + b0)))
        return DCSolution(
            x=cont.x,
            strategy="gmin-stepping",
            newton_iterations=cont.newton_iterations + result.iterations,
            residual_norm=residual_norm,
        )
    except (ConvergenceError, SingularMatrixError):
        _LOG.info("gmin stepping failed for DC operating point; trying source stepping")
    deadline.check("dc source stepping")

    try:
        cont = _source_stepping(mna, x_start, b0, nopts, copts, deadline)
        residual_norm = float(np.max(np.abs(mna.f(cont.x) + b0)))
        return DCSolution(
            x=cont.x,
            strategy="source-stepping",
            newton_iterations=cont.newton_iterations + result.iterations,
            residual_norm=residual_norm,
        )
    except (ConvergenceError, SingularMatrixError) as exc:
        terminal = ConvergenceError(
            f"DC operating point of {mna.circuit.name!r} failed: plain Newton, gmin stepping "
            "and source stepping all diverged",
            residual_norm=result.residual_norm,
        )
        try:
            residual = mna.f(result.x) + b0
        except Exception:  # diagnostics must never mask the real failure
            residual = None
        diagnostics = build_failure_diagnostics(mna, result.x, residual, "divergence")
        raise attach_diagnostics(terminal, diagnostics) from exc
