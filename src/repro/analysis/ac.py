"""Small-signal AC analysis.

Linearises the circuit at a DC operating point and sweeps frequency:

    (G(x_op) + j*omega*C(x_op)) * X(j*omega) = -dB

where ``dB`` is the excitation pattern of the chosen independent source with
unit amplitude.  AC analysis is not used by the MPDE core itself, but the RF
metrics layer and several tests use it to sanity-check filters and to obtain
reference transfer functions for linear circuits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..circuits.devices.sources import CurrentSource, VoltageSource
from ..circuits.mna import MNASystem
from ..utils.exceptions import AnalysisError, SingularMatrixError
from ..utils.validation import as_float_array

__all__ = ["ACResult", "ac_sweep", "unit_excitation_pattern"]


@dataclass
class ACResult:
    """Result of an AC sweep.

    Attributes
    ----------
    frequencies:
        Sweep frequencies in Hz.
    solutions:
        Complex solution vectors, shape ``(F, n)``.
    """

    frequencies: np.ndarray
    solutions: np.ndarray
    mna: MNASystem

    def transfer(self, node: str) -> np.ndarray:
        """Complex node-voltage transfer function across the sweep."""
        idx = self.mna.node_index(node)
        if idx < 0:
            return np.zeros(self.frequencies.shape, dtype=complex)
        return self.solutions[:, idx]

    def magnitude_db(self, node: str) -> np.ndarray:
        """Transfer magnitude in dB (20*log10|H|)."""
        transfer = np.abs(self.transfer(node))
        with np.errstate(divide="ignore"):
            return 20.0 * np.log10(transfer)

    def phase_deg(self, node: str) -> np.ndarray:
        """Transfer phase in degrees."""
        return np.degrees(np.angle(self.transfer(node)))

    def corner_frequency(self, node: str, *, drop_db: float = 3.0) -> float:
        """First frequency at which the response drops ``drop_db`` below its low-frequency value."""
        mags = self.magnitude_db(node)
        reference = mags[0]
        below = np.nonzero(mags <= reference - drop_db)[0]
        if below.size == 0:
            raise AnalysisError(
                f"response at node {node!r} never drops {drop_db} dB within the sweep"
            )
        k = below[0]
        if k == 0:
            return float(self.frequencies[0])
        # Log-linear interpolation between the bracketing points.
        f_lo, f_hi = self.frequencies[k - 1], self.frequencies[k]
        m_lo, m_hi = mags[k - 1], mags[k]
        target = reference - drop_db
        fraction = (m_lo - target) / (m_lo - m_hi)
        return float(f_lo * (f_hi / f_lo) ** fraction)


def unit_excitation_pattern(mna: MNASystem, source_name: str) -> np.ndarray:
    """Derivative of the excitation vector w.r.t. the amplitude of one source.

    For a voltage source the pattern has ``-1`` at its branch row (matching
    the ``-V(t)`` convention of its stamp); for a current source ``+1`` /
    ``-1`` at its terminal nodes.
    """
    device = mna.circuit.device(source_name)
    pattern = np.zeros(mna.n_unknowns)
    if isinstance(device, VoltageSource):
        pattern[mna.branch_index(source_name)] = -1.0
        return pattern
    if isinstance(device, CurrentSource):
        p_idx = mna.node_index(device.node_pos) if not mna.circuit.is_ground(device.node_pos) else -1
        n_idx = mna.node_index(device.node_neg) if not mna.circuit.is_ground(device.node_neg) else -1
        if p_idx >= 0:
            pattern[p_idx] = 1.0
        if n_idx >= 0:
            pattern[n_idx] = -1.0
        return pattern
    raise AnalysisError(
        f"device {source_name!r} is not an independent source; cannot build an AC excitation"
    )


def ac_sweep(
    mna: MNASystem,
    x_op: np.ndarray,
    frequencies: np.ndarray,
    source_name: str,
) -> ACResult:
    """Sweep the linearised circuit over ``frequencies`` for a unit AC drive.

    Parameters
    ----------
    mna:
        Compiled circuit equations.
    x_op:
        Operating point about which to linearise (from
        :func:`repro.analysis.dc.dc_operating_point`).
    frequencies:
        Frequencies in Hz (must be positive or zero).
    source_name:
        Name of the independent source carrying the unit AC excitation.
    """
    freqs = as_float_array("frequencies", frequencies)
    if np.any(freqs < 0):
        raise AnalysisError("AC sweep frequencies must be non-negative")
    evaluation = mna.evaluate(np.asarray(x_op, dtype=float).reshape(1, -1))
    conductance = evaluation.conductance[0]
    capacitance = evaluation.capacitance[0]
    pattern = unit_excitation_pattern(mna, source_name)

    solutions = np.zeros((freqs.size, mna.n_unknowns), dtype=complex)
    for k, freq in enumerate(freqs):
        omega = 2.0 * np.pi * freq
        matrix = conductance + 1j * omega * capacitance
        try:
            solutions[k] = np.linalg.solve(matrix, -pattern)
        except np.linalg.LinAlgError as exc:
            raise SingularMatrixError(
                f"AC system is singular at {freq:g} Hz (floating node or ideal-source loop?)"
            ) from exc
    return ACResult(frequencies=freqs, solutions=solutions, mna=mna)
