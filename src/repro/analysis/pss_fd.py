"""Periodic steady state by global (finite-difference / spectral) collocation.

Instead of integrating around the period like shooting does, collocation
treats *all* time samples over one period as simultaneous unknowns and
enforces the DAE at every sample with a periodic differentiation operator:

    [D q(X)]_k + f(x_k) + b(t_k) = 0        for k = 0 .. N-1

where ``D`` is an ``N x N`` periodic differentiation matrix (backward Euler,
central differences, or the spectral Fourier matrix).  With the Fourier
matrix this is mathematically equivalent to single-tone harmonic balance in a
time-sample basis; with the finite-difference matrices it is the 1-D
specialisation of the multi-time MPDE discretisation used by the core of
this library — which is why the MPDE tests cross-validate against it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..circuits.mna import MNASystem
from ..linalg.krylov import CachedPreconditionedGMRES
from ..linalg.newton import FactoredJacobian, newton_solve
from ..linalg.preconditioners import (
    PRECONDITIONER_KINDS,
    build_averaged_preconditioner,
    circulant_eigenvalues,
)
from ..linalg.sparse import (
    BlockDiagStructure,
    CollocationJacobianAssembler,
    kron_identity,
    periodic_backward_difference,
    periodic_bdf2_difference,
    periodic_central_difference,
    periodic_fourier_differentiation,
)
from ..parallel.backends import resolve_execution
from ..parallel.factor_service import ResidentFactorPool
from ..parallel.pool import WorkerPool
from ..resilience.checkpoint import SolveCheckpoint, solve_fingerprint
from ..resilience.deadline import Deadline
from ..resilience.diagnostics import attach_diagnostics, build_failure_diagnostics
from ..signals.waveform import Waveform
from ..utils.exceptions import (
    AnalysisError,
    ConvergenceError,
    DeadlineExceededError,
)
from ..utils.logging import get_logger
from ..utils.options import FACTOR_BACKENDS, NewtonOptions
from .dc import dc_operating_point

__all__ = ["CollocationPSSResult", "collocation_periodic_steady_state"]

_LOG = get_logger("analysis.pss_fd")


@dataclass
class CollocationPSSResult:
    """Periodic steady state from the collocation solver.

    Attributes
    ----------
    times:
        The ``N`` collocation points in ``[0, period)``.
    states:
        Solution at those points, shape ``(N, n)``.
    period:
        Period of the steady state.
    newton_iterations:
        Newton iterations spent on the global system.
    n_unknowns_total:
        Size of the global nonlinear system (``N * n``).
    """

    times: np.ndarray
    states: np.ndarray
    period: float
    mna: MNASystem
    newton_iterations: int = 0
    n_unknowns_total: int = 0
    #: Total inner GMRES iterations across the Newton solve (0 for the
    #: direct linear solver, i.e. ``matrix_free=False``).
    linear_iterations: int = 0
    #: True when any preconditioner build degraded to a weaker fallback
    #: (e.g. an ILU factorisation failing over to Jacobi scaling).
    preconditioner_degraded: bool = False
    #: Why a requested ``parallel=True`` run fell back to the serial paths
    #: ("" when parallel was not requested or ran as requested).
    parallel_fallback_reason: str = ""

    def _closed(self, values: np.ndarray, name: str) -> Waveform:
        """Build a waveform spanning one full period (periodic endpoint repeated)."""
        times = np.concatenate([self.times, [self.times[0] + self.period]])
        values = np.concatenate([values, [values[0]]])
        return Waveform(times, values, name=name)

    def waveform(self, node: str) -> Waveform:
        """Node-voltage waveform over one full period."""
        return self._closed(np.asarray(self.mna.voltage(self.states, node)), name=f"v({node})")

    def differential_waveform(self, node_pos: str, node_neg: str) -> Waveform:
        """Differential voltage waveform over one full period."""
        values = np.asarray(self.mna.differential_voltage(self.states, node_pos, node_neg))
        return self._closed(values, name=f"v({node_pos},{node_neg})")

    def fourier_harmonics(self, node: str, n_harmonics: int) -> np.ndarray:
        """Complex Fourier coefficients ``X_0 .. X_K`` of a node voltage.

        Computed from the uniformly spaced collocation samples by FFT; this
        is the natural "harmonic balance view" of the collocation solution.
        """
        values = np.asarray(self.mna.voltage(self.states, node), dtype=float)
        coeffs = np.fft.rfft(values) / values.size
        if n_harmonics + 1 > coeffs.size:
            raise AnalysisError(
                f"requested {n_harmonics} harmonics but only {coeffs.size - 1} are resolvable "
                f"with {values.size} collocation points"
            )
        return coeffs[: n_harmonics + 1]


_DIFFERENTIATION = {
    "backward-euler": periodic_backward_difference,
    "bdf2": periodic_bdf2_difference,
    "central": periodic_central_difference,
    "fourier": periodic_fourier_differentiation,
}


def collocation_periodic_steady_state(
    mna: MNASystem,
    period: float,
    n_samples: int,
    *,
    method: str = "backward-euler",
    t0: float = 0.0,
    x0: np.ndarray | None = None,
    newton_options: NewtonOptions | None = None,
    matrix_free: bool = False,
    preconditioner: str = "block_circulant",
    gmres_tol: float = 1e-10,
    parallel: bool = False,
    n_workers: int | None = None,
    factor_backend: str = "threads",
    worker_timeout_s: float | None = 120.0,
    deadline_s: float | None = None,
    resume_from: SolveCheckpoint | str | os.PathLike | None = None,
    checkpoint_path: str | os.PathLike | None = None,
) -> CollocationPSSResult:
    """Solve for the periodic steady state on ``n_samples`` collocation points.

    Parameters
    ----------
    mna:
        Compiled circuit equations (excitation periodic with ``period``).
    period:
        Steady-state period in seconds.
    n_samples:
        Number of uniformly spaced collocation points over one period.
    method:
        Differentiation rule: ``"backward-euler"``, ``"central"`` or
        ``"fourier"`` (the latter gives spectral accuracy and is the
        harmonic-balance-equivalent mode).
    t0:
        Phase reference of the excitation.
    x0:
        Optional initial guess of shape ``(n_samples, n)`` or ``(n,)`` (the
        latter is broadcast to every sample).  Defaults to the DC operating
        point at every sample.
    newton_options:
        Iteration controls for the global Newton solve.
    matrix_free:
        Solve the Newton linear systems with preconditioned GMRES on the
        matrix-free operator ``v -> D (C_blk v) + G_blk v`` instead of a
        direct factorisation of the assembled Jacobian.  This is the 1-D
        specialisation of the MPDE matrix-free mode.
    preconditioner:
        Preconditioner mode for the matrix-free solves: ``"block_circulant"``
        (the default — every 1-D periodic differentiation matrix is
        circulant, so the averaged Jacobian splits into one complex ``(n, n)``
        block per harmonic), ``"block_circulant_fast"`` (the partially-
        averaged mode; with a single time axis the averaging is a no-op, so
        the one per-harmonic system is the exact Jacobian — GMRES converges
        in a few iterations at the cost of one sparse LU per build),
        ``"ilu"``, ``"jacobi"`` or ``"none"``.
    gmres_tol:
        Relative tolerance of the inner GMRES solves (matrix-free only).
    parallel, n_workers:
        Route the solve through the parallel execution layer
        (:mod:`repro.parallel`): device evaluations over the ``N``
        collocation points run on the sharded kernel backend, and the
        ``"block_circulant_fast"`` preconditioner batch-factors eagerly on
        a worker pool.  Degrades to the serial paths with the reason
        recorded on ``result.parallel_fallback_reason``.
    factor_backend, worker_timeout_s:
        With ``parallel=True`` and the ``"block_circulant_fast"``
        preconditioner, ``factor_backend="resident"`` routes the
        per-harmonic factorisations *and* the preconditioner applies
        through a worker-resident factor service
        (:class:`~repro.parallel.factor_service.ResidentFactorPool`) —
        bit-for-bit equal to the in-process path — with
        ``worker_timeout_s`` as the per-broadcast reply watchdog; the
        default ``"threads"`` keeps the PR-5 in-process eager batch
        factorisation.
    deadline_s:
        Optional cooperative wall-clock budget for the whole analysis,
        enforced at Newton iteration boundaries (including the
        source-stepping stages); raises
        :class:`~repro.utils.exceptions.DeadlineExceededError` on expiry.
        The raised error carries the latest iteration-boundary
        :class:`~repro.resilience.checkpoint.SolveCheckpoint` on its
        ``checkpoint`` attribute.
    resume_from:
        A checkpoint (or path of one persisted via ``checkpoint_path``)
        recorded by an interrupted run of *this same analysis*; the
        fingerprint is validated and the stored iterate becomes the initial
        guess (unless an explicit ``x0`` overrides it).  In the direct
        (``matrix_free=False``) mode a deadline-split solve resumed this way
        converges bit-for-bit to the uninterrupted answer.
    checkpoint_path:
        Persist iteration-boundary checkpoints to this path (atomic
        rename), in addition to the in-memory copy on the raised error.
    """
    if period <= 0:
        raise AnalysisError("period must be positive")
    if n_samples < 3:
        raise AnalysisError("collocation needs at least 3 samples per period")
    if method not in _DIFFERENTIATION:
        raise AnalysisError(
            f"unknown differentiation method {method!r}; available: {sorted(_DIFFERENTIATION)}"
        )
    if preconditioner not in PRECONDITIONER_KINDS:
        raise AnalysisError(
            f"unknown preconditioner {preconditioner!r}; available: "
            f"{list(PRECONDITIONER_KINDS)}"
        )
    if factor_backend not in FACTOR_BACKENDS:
        raise AnalysisError(
            f"unknown factor_backend {factor_backend!r}; available: "
            f"{list(FACTOR_BACKENDS)}"
        )
    nopts = newton_options or NewtonOptions(max_iterations=100)
    deadline = Deadline(deadline_s)

    fingerprint = solve_fingerprint(
        "pss",
        circuit=mna.circuit.name,
        unknowns=list(mna.unknown_names),
        period=period,
        n_samples=n_samples,
        method=method,
        t0=t0,
        matrix_free=matrix_free,
        preconditioner=preconditioner,
    )
    latest_checkpoint: list[SolveCheckpoint | None] = [None]

    def _checked_deadline(stage: str) -> None:
        try:
            deadline.check(stage)
        except DeadlineExceededError as exc:
            if exc.checkpoint is None:
                exc.checkpoint = latest_checkpoint[0]
            raise

    def _deadline_callback(iteration: int, x: np.ndarray, residual_norm: float) -> None:
        # The main Newton run records an iteration-boundary checkpoint at
        # every accepted iterate (the source-stepping stages do not — their
        # embedded iterates are not resume points of the real problem).
        latest_checkpoint[0] = SolveCheckpoint(
            fingerprint=fingerprint,
            stage="collocation",
            iterate=np.array(x, copy=True),
            newton_iterations=int(iteration),
            residual_norm=float(residual_norm),
        )
        if checkpoint_path is not None:
            latest_checkpoint[0].save(checkpoint_path)
        _checked_deadline("collocation newton")

    def _stage_callback(iteration: int, x: np.ndarray, residual_norm: float) -> None:
        del iteration, x, residual_norm
        _checked_deadline("collocation newton")

    # Parallel execution layer: one resolution + one factor pool for the
    # whole solve (the pools are reused across every Newton iteration).
    resolution = resolve_execution("sharded", n_workers) if parallel else None
    eval_kwargs: dict = (
        {"kernel_backend": "sharded", "n_workers": n_workers} if parallel else {}
    )
    sharded = resolution is not None and resolution.sharded
    use_resident = sharded and factor_backend == "resident"
    factor_service = (
        ResidentFactorPool(resolution.n_workers, reply_timeout_s=worker_timeout_s)
        if use_resident
        else None
    )
    factor_pool = WorkerPool(resolution.n_workers) if sharded and not use_resident else None

    # The resident service forks worker processes; guarantee they are
    # stopped (and the shared blocks unlinked) on every exit path.
    try:
        n = mna.n_unknowns
        times = t0 + np.arange(n_samples) * (period / n_samples)
        diff = _DIFFERENTIATION[method](n_samples, period)
        diff_sparse = sp.csr_matrix(diff)
        # Symbolic-once assembly of the collocation Jacobian (same structure as
        # the MPDE core: (D kron I_n) blockdiag(C) + blockdiag(G)).
        assembler = CollocationJacobianAssembler(
            diff_sparse, mna.dynamic_pattern, mna.static_pattern, n
        )

        b_samples = mna.source(times)  # (N, n)

        if resume_from is not None:
            if isinstance(resume_from, (str, os.PathLike)):
                resume_from = SolveCheckpoint.load(resume_from)
            resume_from.validate(fingerprint)
            if x0 is None:
                x0 = np.array(resume_from.iterate, copy=True).reshape(n_samples, n)

        if x0 is None:
            x_dc = dc_operating_point(mna).x
            x_init = np.tile(x_dc, (n_samples, 1))
        else:
            x0 = np.asarray(x0, dtype=float)
            if x0.shape == (n,):
                x_init = np.tile(x0, (n_samples, 1))
            elif x0.shape == (n_samples, n):
                x_init = x0.copy()
            else:
                raise AnalysisError(
                    f"x0 must have shape ({n},) or ({n_samples}, {n}), got {x0.shape}"
                )

        b_mean = b_samples.mean(axis=0, keepdims=True)

        def embedded_source(lam: float) -> np.ndarray:
            """Source grid with the time-varying part scaled by ``lam`` (source stepping)."""
            return b_mean + lam * (b_samples - b_mean)

        def residual_for(b_grid: np.ndarray):
            def _residual(x_flat: np.ndarray) -> np.ndarray:
                states = x_flat.reshape(n_samples, n)
                evaluation = mna.evaluate(states, need_jacobian=False, **eval_kwargs)
                dq = diff_sparse @ evaluation.q
                return (dq + evaluation.f + b_grid).ravel()

            return _residual

        linear_iterations = [0]
        degraded = [False]
        if matrix_free:
            c_structure = BlockDiagStructure(mna.dynamic_pattern, n_samples)
            g_structure = BlockDiagStructure(mna.static_pattern, n_samples)
            d_kron = kron_identity(diff_sparse, n)
            eigenvalues = circulant_eigenvalues(diff_sparse)

            def _build_preconditioner(evaluation):
                return build_averaged_preconditioner(
                    preconditioner,
                    size=n_samples * n,
                    dynamic_pattern=mna.dynamic_pattern,
                    static_pattern=mna.static_pattern,
                    c_data=evaluation.c_data,
                    g_data=evaluation.g_data,
                    eigenvalues_fast=eigenvalues,
                    assemble=assembler.assemble,
                    # 1-D collocation is the degenerate (n_slow = 1) case of the
                    # partially-averaged mode: slow-averaging is a no-op and the
                    # single per-harmonic system is the unaveraged Jacobian.
                    fast_operator=diff_sparse,
                    grid_shape=(n_samples, 1),
                    eager=factor_pool is not None,
                    factor_pool=factor_pool,
                    factor_service=factor_service,
                )

            # The same caching / adaptive-refresh / retry-once discipline the
            # MPDE solver uses, via the shared manager.
            krylov = CachedPreconditionedGMRES(_build_preconditioner)

            def jacobian(x_flat: np.ndarray):
                states = x_flat.reshape(n_samples, n)
                evaluation = mna.evaluate_sparse(states, **eval_kwargs)
                c_blk = c_structure.matrix(evaluation.c_data)
                g_blk = g_structure.matrix(evaluation.g_data)
                operator = spla.LinearOperator(
                    (n_samples * n, n_samples * n),
                    matvec=lambda v: d_kron @ (c_blk @ v) + g_blk @ v,
                    dtype=float,
                )

                def solve(rhs: np.ndarray) -> np.ndarray:
                    # raise_on_failure=False: a best-effort step on a hard solve
                    # lets the damped Newton loop (and ultimately the
                    # source-stepping fallback below) recover, matching the
                    # robustness of the direct path.
                    dx, reports = krylov.solve(
                        operator,
                        rhs,
                        context=evaluation,
                        tol=gmres_tol,
                        raise_on_failure=False,
                    )
                    for report in reports:
                        linear_iterations[0] += report.iterations
                        degraded[0] |= report.preconditioner_degraded
                    return dx

                return FactoredJacobian(solve)

        else:

            def jacobian(x_flat: np.ndarray):
                states = x_flat.reshape(n_samples, n)
                evaluation = mna.evaluate_sparse(states, **eval_kwargs)
                return assembler.assemble(evaluation.c_data, evaluation.g_data)

        total_iterations = 0
        result = newton_solve(
            residual_for(b_samples),
            jacobian,
            x_init.ravel(),
            nopts,
            raise_on_failure=False,
            callback=_deadline_callback,
        )
        total_iterations += result.iterations
        if not result.converged:
            # Source-stepping continuation: ramp the time-varying excitation from
            # its average (an easy, DC-like problem) up to the full drive.  This
            # is the same fallback the MPDE core and SPICE DC solvers use for
            # hard nonlinear problems.
            _LOG.info(
                "collocation Newton failed (residual %.3e); falling back to source stepping",
                result.residual_norm,
            )
            x_current = x_init.ravel()
            lam = 0.0
            try:
                for lam in np.linspace(0.0, 1.0, 11):
                    _checked_deadline("collocation source stepping")
                    step = newton_solve(
                        residual_for(embedded_source(lam)),
                        jacobian,
                        x_current,
                        nopts,
                        callback=_stage_callback,
                    )
                    total_iterations += step.iterations
                    x_current = step.x
            except ConvergenceError as exc:
                # Terminal failure: localise it before re-raising.
                try:
                    residual = residual_for(embedded_source(lam))(x_current)
                except Exception:
                    residual = None
                raise attach_diagnostics(
                    exc, build_failure_diagnostics(mna, x_current, residual, "divergence")
                )
            result = step

        states = result.x.reshape(n_samples, n)
        fallback_reason = ""
        if parallel:
            service_reason = factor_service.fallback_reason if factor_service else ""
            fallback_reason = (
                mna.parallel_fallback_reason or service_reason or resolution.fallback_reason
            )
        return CollocationPSSResult(
            times=times,
            states=states,
            period=period,
            mna=mna,
            newton_iterations=total_iterations,
            n_unknowns_total=n_samples * n,
            linear_iterations=linear_iterations[0],
            preconditioner_degraded=degraded[0],
            parallel_fallback_reason=fallback_reason,
        )
    finally:
        if factor_service is not None:
            factor_service.close()
