"""Classical circuit analyses: DC, transient, shooting, collocation PSS, HB, AC."""

from .ac import ACResult, ac_sweep, unit_excitation_pattern
from .dc import DCSolution, dc_operating_point
from .harmonic_balance import HarmonicBalanceResult, harmonic_balance
from .integration import (
    BackwardEuler,
    Gear2,
    IntegrationRule,
    StepContext,
    Trapezoidal,
    make_integration_rule,
)
from .pss_fd import CollocationPSSResult, collocation_periodic_steady_state
from .shooting import ShootingResult, ShootingStats, shooting_periodic_steady_state
from .transient import TransientResult, TransientStepStats, run_transient

__all__ = [
    "DCSolution",
    "dc_operating_point",
    "TransientResult",
    "TransientStepStats",
    "run_transient",
    "ShootingResult",
    "ShootingStats",
    "shooting_periodic_steady_state",
    "CollocationPSSResult",
    "collocation_periodic_steady_state",
    "HarmonicBalanceResult",
    "harmonic_balance",
    "ACResult",
    "ac_sweep",
    "unit_excitation_pattern",
    "IntegrationRule",
    "BackwardEuler",
    "Trapezoidal",
    "Gear2",
    "StepContext",
    "make_integration_rule",
]
