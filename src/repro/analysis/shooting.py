"""Periodic steady state by single shooting.

Shooting finds an initial state ``x0`` such that integrating the circuit over
one period ``T`` returns to the same state:

    H(x0) = Phi_T(x0) - x0 = 0

where ``Phi_T`` is the state-transition (one-period integration) map.  The
Newton iteration on ``H`` needs the *monodromy matrix* ``d Phi_T / d x0``,
which is accumulated step by step from the sensitivities of each implicit
integration step — the classical approach of Aprille & Trick (1972) that the
paper cites as the standard single-tone time-domain method.

Shooting across one period of the *difference* frequency, with steps fine
enough to resolve the carrier, is the "closest comparable traditional
time-domain approach" of the paper's Section 3 — the ≥300 000-step baseline
that the sheared multi-time method beats by two orders of magnitude.  The
:class:`ShootingStats` returned here feed exactly that comparison in
``benchmarks/bench_speedup_vs_shooting.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..circuits.mna import MNASystem
from ..linalg.newton import solve_linear_system
from ..signals.waveform import Waveform
from ..utils.exceptions import AnalysisError, ConvergenceError
from ..utils.logging import get_logger
from ..utils.options import NewtonOptions, ShootingOptions
from .dc import dc_operating_point
from .integration import StepContext, make_integration_rule
from .transient import ChordJacobianCache, solve_implicit_step

__all__ = ["ShootingStats", "ShootingResult", "shooting_periodic_steady_state"]

_LOG = get_logger("analysis.shooting")


@dataclass
class ShootingStats:
    """Cost accounting for a shooting run."""

    shooting_iterations: int = 0
    total_time_steps: int = 0
    newton_iterations: int = 0
    final_residual_norm: float = float("nan")


@dataclass
class ShootingResult:
    """Periodic steady state found by shooting.

    Attributes
    ----------
    times:
        Time points covering one period, shape ``(T+1,)`` (both endpoints).
    states:
        Solution along one period, shape ``(T+1, n)``.
    period:
        The period used.
    stats:
        Cost accounting (used by the speed-up benchmarks).
    """

    times: np.ndarray
    states: np.ndarray
    period: float
    mna: MNASystem
    stats: ShootingStats = field(default_factory=ShootingStats)

    def waveform(self, node: str) -> Waveform:
        """Node-voltage waveform over one period."""
        return Waveform(self.times, np.asarray(self.mna.voltage(self.states, node)), name=f"v({node})")

    def differential_waveform(self, node_pos: str, node_neg: str) -> Waveform:
        """Differential voltage waveform over one period."""
        values = np.asarray(self.mna.differential_voltage(self.states, node_pos, node_neg))
        return Waveform(self.times, values, name=f"v({node_pos},{node_neg})")

    def initial_state(self) -> np.ndarray:
        """The periodic initial state ``x0``."""
        return self.states[0].copy()


def _transition_map(
    mna: MNASystem,
    x0: np.ndarray,
    t0: float,
    period: float,
    n_steps: int,
    rule,
    newton_options: NewtonOptions,
    *,
    want_monodromy: bool,
    stats: ShootingStats,
    cache: ChordJacobianCache | None = None,
) -> tuple[np.ndarray, np.ndarray | None, np.ndarray, np.ndarray]:
    """Integrate one period and (optionally) accumulate the monodromy matrix.

    Returns ``(x_final, monodromy, times, states)``.  The optional chord
    cache is shared across all inner implicit steps (and, via the caller,
    across shooting sweeps): the step Jacobian is refactored only when the
    integration coefficient changes or convergence degrades, instead of once
    per Newton iteration of every time step.
    """
    n = mna.n_unknowns
    h = period / n_steps
    x = np.asarray(x0, dtype=float).copy()
    t = t0

    monodromy = np.eye(n) if want_monodromy else None
    times = [t]
    states = [x.copy()]

    q_prev = mna.q(x)
    qdot_prev = -(mna.f(x) + mna.source(t))
    context = StepContext(q_prev=q_prev, qdot_prev=qdot_prev)

    # The very first step always uses backward Euler.  For the trapezoidal
    # rule, the one-step map of a DAE depends on the *algebraic* part of the
    # previous state (through the stored dq/dt), which makes the full-vector
    # shooting Jacobian (monodromy - I) singular; a BE first step removes
    # that dependence, exactly as SPICE-family periodic-steady-state engines
    # do, while leaving the overall accuracy second order.
    first_rule = make_integration_rule("backward-euler")

    for _step in range(n_steps):
        step_rule = first_rule if _step == 0 else rule
        t_new = t + h
        b_new = mna.source(t_new)
        x_new, iterations = solve_implicit_step(
            mna, x, t_new, h, context, step_rule, newton_options, cache=cache, b_new=b_new
        )
        stats.newton_iterations += iterations
        stats.total_time_steps += 1

        if want_monodromy:
            alpha, _r = step_rule.derivative_coefficients(h, context)
            # Sensitivity propagation.  For the implicit step
            #   alpha * q(x_{k+1}) + r(x_k) + f(x_{k+1}) + b_{k+1} = 0
            # the chain rule gives
            #   (alpha*C_{k+1} + G_{k+1}) dx_{k+1}/dx_k = -dr/dx_k.
            eval_new = mna.evaluate(x_new.reshape(1, -1))
            jac_new = alpha * eval_new.capacitance[0] + eval_new.conductance[0]
            eval_old = mna.evaluate(x.reshape(1, -1))
            if step_rule.name == "trapezoidal":
                # r = -2 q(x_k)/h - qdot_k with qdot_k = -(f(x_k) + b_k)
                dr_dxk = -(2.0 / h) * eval_old.capacitance[0] + eval_old.conductance[0]
            elif step_rule.name == "backward-euler":
                dr_dxk = -(1.0 / h) * eval_old.capacitance[0]
            else:
                raise AnalysisError(
                    f"monodromy propagation is not implemented for integration rule "
                    f"{step_rule.name!r}; use 'backward-euler' or 'trapezoidal'"
                )
            step_sensitivity = np.linalg.solve(jac_new, -dr_dxk)
            monodromy = step_sensitivity @ monodromy

        q_new = mna.q(x_new)
        qdot_new = -(mna.f(x_new) + b_new)
        context = StepContext(q_prev=q_new, qdot_prev=qdot_new, q_prev2=context.q_prev, h_prev=h)
        x = x_new
        t = t_new
        times.append(t)
        states.append(x.copy())

    return x, monodromy, np.asarray(times), np.asarray(states)


def shooting_periodic_steady_state(
    mna: MNASystem,
    period: float,
    *,
    t0: float = 0.0,
    x0: np.ndarray | None = None,
    options: ShootingOptions | None = None,
) -> ShootingResult:
    """Find the periodic steady state of a circuit driven with period ``period``.

    Parameters
    ----------
    mna:
        Compiled circuit equations (the excitation must be periodic with the
        given period).
    period:
        Steady-state period in seconds — for the closely-spaced-tone
        problems of the paper this is the *difference-frequency* period,
        which is what makes the method expensive.
    t0:
        Phase reference for the excitation.
    x0:
        Initial guess for the periodic initial state; defaults to the DC
        operating point.
    options:
        :class:`~repro.utils.options.ShootingOptions`.

    Raises
    ------
    ConvergenceError
        If the shooting Newton iteration does not converge.
    """
    opts = options or ShootingOptions()
    if period <= 0:
        raise AnalysisError("period must be positive")
    rule = make_integration_rule(opts.integration_method)
    stats = ShootingStats()
    cache = ChordJacobianCache(mna) if opts.chord_newton else None

    x_guess = dc_operating_point(mna).x if x0 is None else np.asarray(x0, dtype=float).copy()

    for iteration in range(1, opts.max_shooting_iterations + 1):
        x_final, monodromy, times, states = _transition_map(
            mna,
            x_guess,
            t0,
            period,
            opts.steps_per_period,
            rule,
            opts.newton,
            want_monodromy=True,
            stats=stats,
            cache=cache,
        )
        stats.shooting_iterations = iteration
        residual = x_final - x_guess
        res_norm = float(np.max(np.abs(residual)))
        stats.final_residual_norm = res_norm
        x_scale = float(np.max(np.abs(x_guess))) if x_guess.size else 0.0
        _LOG.debug("shooting iter=%d residual=%.3e", iteration, res_norm)
        if res_norm <= opts.abstol + opts.reltol * max(1.0, x_scale):
            return ShootingResult(
                times=times, states=states, period=period, mna=mna, stats=stats
            )
        # Newton update on H(x0) = Phi(x0) - x0.
        jacobian = monodromy - np.eye(mna.n_unknowns)
        dx = solve_linear_system(jacobian, -residual)
        x_guess = x_guess + dx

    raise ConvergenceError(
        f"shooting did not converge in {opts.max_shooting_iterations} iterations "
        f"(residual {stats.final_residual_norm:.3e})",
        iterations=opts.max_shooting_iterations,
        residual_norm=stats.final_residual_norm,
    )
