"""SPICE-style transient (time-stepping) analysis.

This is the "traditional time-stepping simulation" the paper compares
against: it integrates the circuit DAE step by step and therefore has to
resolve *every* carrier cycle, even when the interesting behaviour lives at a
difference frequency thousands of times slower.  It is also the workhorse
behind the shooting method's state-transition map.

Fixed-step and adaptive (local-truncation-error controlled) stepping are
provided, with backward Euler, trapezoidal or Gear-2 integration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..circuits.mna import MNASystem
from ..linalg.newton import newton_solve
from ..signals.waveform import Waveform
from ..utils.exceptions import AnalysisError, ConvergenceError
from ..utils.logging import get_logger
from ..utils.options import NewtonOptions, TransientOptions
from .dc import dc_operating_point
from .integration import StepContext, make_integration_rule

__all__ = ["TransientResult", "TransientStepStats", "run_transient", "solve_implicit_step"]

_LOG = get_logger("analysis.transient")


@dataclass
class TransientStepStats:
    """Cost accounting for a transient run (used by the speed-up benchmarks)."""

    accepted_steps: int = 0
    rejected_steps: int = 0
    newton_iterations: int = 0
    linear_solves: int = 0


@dataclass
class TransientResult:
    """Result of a transient analysis.

    Attributes
    ----------
    times:
        Accepted time points, shape ``(T,)``.
    states:
        Solution vectors at those times, shape ``(T, n)``.
    stats:
        Cost accounting (steps, Newton iterations).
    """

    times: np.ndarray
    states: np.ndarray
    mna: MNASystem
    stats: TransientStepStats = field(default_factory=TransientStepStats)

    def waveform(self, node: str) -> Waveform:
        """Node-voltage waveform at ``node``."""
        return Waveform(self.times, np.asarray(self.mna.voltage(self.states, node)), name=f"v({node})")

    def differential_waveform(self, node_pos: str, node_neg: str) -> Waveform:
        """Differential voltage waveform ``v(node_pos) - v(node_neg)``."""
        values = np.asarray(self.mna.differential_voltage(self.states, node_pos, node_neg))
        return Waveform(self.times, values, name=f"v({node_pos},{node_neg})")

    def final_state(self) -> np.ndarray:
        """Solution vector at the last accepted time point."""
        return self.states[-1].copy()


def solve_implicit_step(
    mna: MNASystem,
    x_guess: np.ndarray,
    t_new: float,
    h: float,
    context: StepContext,
    rule,
    newton_options: NewtonOptions,
) -> tuple[np.ndarray, int]:
    """Solve one implicit time step; returns the new state and Newton iterations."""
    alpha, r = rule.derivative_coefficients(h, context)
    b_new = mna.source(t_new)

    def residual(x: np.ndarray) -> np.ndarray:
        return alpha * mna.q(x) + r + mna.f(x) + b_new

    def jacobian(x: np.ndarray) -> np.ndarray:
        evaluation = mna.evaluate(x.reshape(1, -1))
        return alpha * evaluation.capacitance[0] + evaluation.conductance[0]

    result = newton_solve(residual, jacobian, x_guess, newton_options)
    return result.x, result.iterations


def _initial_state(mna: MNASystem, x0: np.ndarray | None, use_dc: bool, t_start: float) -> np.ndarray:
    if x0 is not None:
        x0 = np.asarray(x0, dtype=float)
        if x0.shape != (mna.n_unknowns,):
            raise AnalysisError(
                f"initial state has shape {x0.shape}, expected ({mna.n_unknowns},)"
            )
        return x0.copy()
    if use_dc:
        return dc_operating_point(mna, time=t_start).x
    return mna.zero_state()


def run_transient(
    mna: MNASystem,
    t_stop: float,
    dt: float,
    *,
    t_start: float = 0.0,
    x0: np.ndarray | None = None,
    use_dc_initial: bool = True,
    options: TransientOptions | None = None,
) -> TransientResult:
    """Integrate the circuit DAE from ``t_start`` to ``t_stop``.

    Parameters
    ----------
    mna:
        Compiled circuit equations.
    t_stop:
        Final time in seconds.
    dt:
        Nominal (fixed mode) or initial (adaptive mode) step size.
    t_start:
        Starting time.
    x0:
        Initial state; when omitted the DC operating point at ``t_start`` is
        used (or zeros if ``use_dc_initial=False``).
    use_dc_initial:
        Whether to compute a DC operating point for the initial condition.
    options:
        :class:`~repro.utils.options.TransientOptions`.

    Notes
    -----
    Adaptive stepping estimates the local truncation error by comparing the
    implicit (corrector) solution with a linear extrapolation of the two
    previous accepted states and scales the step to keep the estimate below
    ``ltetol`` (with the usual safety factor and growth limits).  This is
    deliberately simple — the goal of the
    transient engine in this reproduction is to be a *correct and
    representative* baseline for the MPDE speed-up comparison, not a
    state-of-the-art variable-order integrator.
    """
    opts = options or TransientOptions()
    if t_stop <= t_start:
        raise AnalysisError("t_stop must be greater than t_start")
    if dt <= 0:
        raise AnalysisError("dt must be positive")

    rule = make_integration_rule(opts.method)
    stats = TransientStepStats()

    x = _initial_state(mna, x0, use_dc_initial, t_start)
    t = t_start
    h = min(dt, t_stop - t_start)

    times = [t]
    states = [x.copy()]

    q_prev = mna.q(x)
    qdot_prev = -(mna.f(x) + mna.source(t))
    context = StepContext(q_prev=q_prev, qdot_prev=qdot_prev)

    # History for the local-truncation-error predictor (adaptive mode):
    # linear extrapolation from the previous two accepted points.
    x_prev_accepted: np.ndarray | None = None
    h_prev_accepted: float | None = None

    store_counter = 0
    while t < t_stop - 1e-15 * max(1.0, abs(t_stop)):
        h = min(h, t_stop - t)
        if h < opts.min_step:
            raise AnalysisError(
                f"transient step size underflow at t={t:.3e}s (h={h:.3e}s < min_step)"
            )
        t_new = t + h
        rejections = 0
        while True:
            try:
                x_new, iters = solve_implicit_step(
                    mna, x, t_new, h, context, rule, opts.newton
                )
                stats.newton_iterations += iters
                stats.linear_solves += iters
            except ConvergenceError:
                rejections += 1
                stats.rejected_steps += 1
                if rejections > opts.max_rejections:
                    raise AnalysisError(
                        f"transient analysis failed at t={t:.3e}s: Newton did not converge "
                        f"after {opts.max_rejections} step-size reductions"
                    )
                h *= 0.25
                if h < opts.min_step:
                    raise AnalysisError(
                        f"transient step size underflow at t={t:.3e}s while recovering from "
                        "a Newton failure"
                    )
                t_new = t + h
                continue

            if not opts.adaptive:
                break

            if x_prev_accepted is None or h_prev_accepted is None:
                # No history yet: accept the first step and start controlling
                # from the second one.
                h_after = h
                break

            # LTE estimate: compare the corrector with a linear (two-point)
            # extrapolation from the previous accepted states.  Only the
            # *differential* unknowns (those appearing in q, i.e. with a
            # non-zero capacitance column) are controlled — algebraic
            # unknowns follow the sources discontinuously and would otherwise
            # force the step to zero at every source corner.
            dynamic = np.any(mna.capacitance_matrix(x_new) != 0.0, axis=0)
            if not np.any(dynamic):
                h_after = h
                break
            predictor = x + (h / h_prev_accepted) * (x - x_prev_accepted)
            error = float(np.max(np.abs((x_new - predictor)[dynamic])))
            scale = opts.ltetol * max(1.0, float(np.max(np.abs(x_new[dynamic]))))
            if error <= scale or h <= opts.min_step * 4:
                # Accept and propose the next step size.
                if error > 0:
                    factor = 0.9 * (scale / error) ** 0.5
                    h_next = h * min(4.0, max(0.25, factor))
                else:
                    h_next = h * 2.0
                h_after = min(opts.max_step, h_next)
                break
            rejections += 1
            stats.rejected_steps += 1
            if rejections > opts.max_rejections:
                raise AnalysisError(
                    f"transient analysis failed at t={t:.3e}s: local truncation error "
                    "could not be controlled"
                )
            h *= 0.5
            t_new = t + h

        # Accept the step.
        stats.accepted_steps += 1
        q_new = mna.q(x_new)
        qdot_new = -(mna.f(x_new) + mna.source(t_new))
        context = StepContext(
            q_prev=q_new,
            qdot_prev=qdot_new,
            q_prev2=context.q_prev,
            h_prev=h,
        )
        x_prev_accepted = x
        h_prev_accepted = h
        x = x_new
        t = t_new
        store_counter += 1
        if store_counter % opts.store_every == 0 or t >= t_stop - 1e-15:
            times.append(t)
            states.append(x.copy())
        if opts.adaptive:
            h = h_after
        else:
            h = dt

    return TransientResult(
        times=np.asarray(times), states=np.asarray(states), mna=mna, stats=stats
    )
