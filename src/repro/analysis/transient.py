"""SPICE-style transient (time-stepping) analysis.

This is the "traditional time-stepping simulation" the paper compares
against: it integrates the circuit DAE step by step and therefore has to
resolve *every* carrier cycle, even when the interesting behaviour lives at a
difference frequency thousands of times slower.  It is also the workhorse
behind the shooting method's state-transition map.

Fixed-step and adaptive (local-truncation-error controlled) stepping are
provided, with backward Euler, trapezoidal or Gear-2 integration.

With ``TransientOptions(chord_newton=True)`` the implicit steps run *chord
Newton* against a cached LU factorisation of the step Jacobian
(:class:`ChordJacobianCache`): the factorisation is reused across iterations
and accepted steps and rebuilt only when the step size changes or convergence
degrades, with a transparent fall-back to full Newton (plus a cooldown that
keeps the cache dormant on hard-switching stretches).  The shooting method
shares the same cache across its inner integrations.  The mode is opt-in:
it wins when the factorisation dominates an iteration (large systems), while
for small MNA systems the extra linearly-converging iterations cost more
device sweeps than the saved factorisations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..circuits.mna import MNASystem
from ..linalg.newton import FactoredJacobian, newton_solve
from ..signals.waveform import Waveform
from ..utils.exceptions import AnalysisError, ConvergenceError, SingularMatrixError
from ..utils.logging import get_logger
from ..utils.options import NewtonOptions, TransientOptions
from .dc import dc_operating_point
from .integration import StepContext, make_integration_rule

__all__ = [
    "ChordJacobianCache",
    "TransientResult",
    "TransientStepStats",
    "run_transient",
    "solve_implicit_step",
]

_LOG = get_logger("analysis.transient")


@dataclass
class TransientStepStats:
    """Cost accounting for a transient run (used by the speed-up benchmarks)."""

    accepted_steps: int = 0
    rejected_steps: int = 0
    newton_iterations: int = 0
    linear_solves: int = 0
    #: LU factorisations of the step Jacobian (chord Newton keeps this far
    #: below ``newton_iterations``; the legacy path factors every iteration).
    jacobian_refactorisations: int = 0


class ChordJacobianCache:
    """Cached LU factorisation of the implicit-step Jacobian ``alpha*C + G``.

    Chord (modified) Newton reuses one factorisation across iterations *and*
    across accepted time steps: for smooth stretches of a waveform the
    Jacobian barely changes, so refactoring every Newton iteration — the
    dominant cost of the legacy path — is wasted work.  The cache refactors
    when the integration coefficient ``alpha`` changes (step-size or rule
    change) or when the caller observes degraded convergence; a failed chord
    solve falls back to full Newton in :func:`solve_implicit_step`, so
    robustness is unchanged.

    The factorisation is built from the sparse-assembled per-point Jacobians
    (``MNASystem.evaluate_sparse``), never from dense ``(n, n)`` stacks.
    """

    def __init__(
        self,
        mna: MNASystem,
        *,
        max_chord_iterations: int = 12,
        slow_iteration_threshold: int = 5,
        failure_cooldown: int = 8,
    ) -> None:
        self.mna = mna
        self.max_chord_iterations = int(max_chord_iterations)
        self.slow_iteration_threshold = int(slow_iteration_threshold)
        self.failure_cooldown = int(failure_cooldown)
        self._lu = None
        self._alpha: float | None = None
        self._cooldown = 0
        self._consecutive_slow = 0
        self.refactorisations = 0

    @property
    def is_usable(self) -> bool:
        """Whether a factorisation is available."""
        return self._lu is not None

    def step_allows_chord(self) -> bool:
        """Whether the next step should attempt the chord iteration at all.

        After a chord failure the circuit is typically in a fast-switching
        regime where the Jacobian changes too much per step for reuse to pay
        off; attempting (and abandoning) the chord iteration every step would
        burn its whole budget each time.  A short cooldown keeps the cache
        dormant for a few steps before re-engaging, which makes the scheme
        self-disabling on hard-switching stretches and self-enabling on
        smooth ones.
        """
        if self._cooldown > 0:
            self._cooldown -= 1
            return False
        return True

    def note_failure(self) -> None:
        """Record a chord failure: drop the factorisation, start the cooldown.

        The stale factorisation is discarded rather than refreshed — it would
        only sit unused through the cooldown and be stale again by the time
        the chord re-engages (which refactors from scratch).
        """
        self.invalidate()
        self._cooldown = self.failure_cooldown
        self._consecutive_slow = 0

    def note_step_iterations(self, iterations: int) -> bool:
        """Record a converged chord step's iteration count.

        Returns True when the factorisation should be refreshed (the step was
        slow).  Three slow steps in a row mean even refreshed factorisations
        go stale within one step — the waveform is switching faster than
        reuse can follow — so the cooldown kicks in as if the chord had
        failed (returning False: no refresh, the factorisation is dropped).
        """
        if iterations <= self.slow_iteration_threshold:
            self._consecutive_slow = 0
            return False
        self._consecutive_slow += 1
        if self._consecutive_slow >= 3:
            self.note_failure()
            return False
        return True

    def matches(self, alpha: float) -> bool:
        """Whether the cached factorisation was built for this ``alpha``."""
        return self._lu is not None and self._alpha == alpha

    def refactor(self, x: np.ndarray, alpha: float) -> bool:
        """Factor ``alpha*C(x) + G(x)``; returns False if the matrix is singular."""
        evaluation = self.mna.evaluate_sparse(np.asarray(x, dtype=float).reshape(1, -1))
        matrix = alpha * evaluation.capacitance_csr(0) + evaluation.conductance_csr(0)
        try:
            self._lu = spla.splu(sp.csc_matrix(matrix))
        except RuntimeError:
            self._lu = None
            self._alpha = None
            return False
        self._alpha = float(alpha)
        self.refactorisations += 1
        return True

    def invalidate(self) -> None:
        """Drop the cached factorisation (forces a refactor on next use)."""
        self._lu = None
        self._alpha = None

    def factored(self) -> FactoredJacobian:
        """The cached factorisation wrapped for :func:`newton_solve`."""
        if self._lu is None:
            raise AnalysisError("chord Jacobian cache has no factorisation")
        return FactoredJacobian(self._lu.solve)


@dataclass
class TransientResult:
    """Result of a transient analysis.

    Attributes
    ----------
    times:
        Accepted time points, shape ``(T,)``.
    states:
        Solution vectors at those times, shape ``(T, n)``.
    stats:
        Cost accounting (steps, Newton iterations).
    """

    times: np.ndarray
    states: np.ndarray
    mna: MNASystem
    stats: TransientStepStats = field(default_factory=TransientStepStats)

    def waveform(self, node: str) -> Waveform:
        """Node-voltage waveform at ``node``."""
        return Waveform(self.times, np.asarray(self.mna.voltage(self.states, node)), name=f"v({node})")

    def differential_waveform(self, node_pos: str, node_neg: str) -> Waveform:
        """Differential voltage waveform ``v(node_pos) - v(node_neg)``."""
        values = np.asarray(self.mna.differential_voltage(self.states, node_pos, node_neg))
        return Waveform(self.times, values, name=f"v({node_pos},{node_neg})")

    def final_state(self) -> np.ndarray:
        """Solution vector at the last accepted time point."""
        return self.states[-1].copy()


def solve_implicit_step(
    mna: MNASystem,
    x_guess: np.ndarray,
    t_new: float,
    h: float,
    context: StepContext,
    rule,
    newton_options: NewtonOptions,
    *,
    cache: ChordJacobianCache | None = None,
    b_new: np.ndarray | None = None,
) -> tuple[np.ndarray, int]:
    """Solve one implicit time step; returns the new state and Newton iterations.

    With a :class:`ChordJacobianCache` the step first runs a chord-Newton
    iteration against the cached LU factorisation (refactoring only when the
    integration coefficient changed); if the chord iteration does not meet the
    full convergence criteria within its budget — or the stale factorisation
    turns out singular — the step falls back to the legacy full-Newton path
    from the original guess, so the failure behaviour is identical to running
    without a cache.  ``b_new`` lets callers that already evaluated the
    excitation at ``t_new`` pass it in instead of paying a second device
    sweep.
    """
    alpha, r = rule.derivative_coefficients(h, context)
    if b_new is None:
        b_new = mna.source(t_new)

    def residual(x: np.ndarray) -> np.ndarray:
        return alpha * mna.q(x) + r + mna.f(x) + b_new

    def jacobian(x: np.ndarray) -> np.ndarray:
        evaluation = mna.evaluate(x.reshape(1, -1))
        return alpha * evaluation.capacitance[0] + evaluation.conductance[0]

    if cache is not None and cache.step_allows_chord():
        if not cache.matches(alpha):
            cache.refactor(x_guess, alpha)
        if cache.is_usable:
            chord_options = newton_options.with_(
                max_iterations=min(cache.max_chord_iterations, newton_options.max_iterations)
            )
            factored = cache.factored()
            try:
                result = newton_solve(
                    residual,
                    lambda _x: factored,
                    x_guess,
                    chord_options,
                    raise_on_failure=False,
                )
            except SingularMatrixError:
                # The stale factorisation produced non-finite updates; treat
                # it like any other chord failure and let full Newton (with a
                # fresh Jacobian) decide whether the step is actually solvable.
                result = None
            if result is not None and result.converged:
                if cache.note_step_iterations(result.iterations):
                    # Converged, but slowly: the factorisation has gone stale.
                    # Refresh it at the accepted state for the next step.
                    cache.refactor(result.x, alpha)
                return result.x, result.iterations
            cache.note_failure()
            chord_iterations = result.iterations if result is not None else 0
            full = newton_solve(residual, jacobian, x_guess, newton_options)
            return full.x, chord_iterations + full.iterations

    result = newton_solve(residual, jacobian, x_guess, newton_options)
    return result.x, result.iterations


def _initial_state(mna: MNASystem, x0: np.ndarray | None, use_dc: bool, t_start: float) -> np.ndarray:
    if x0 is not None:
        x0 = np.asarray(x0, dtype=float)
        if x0.shape != (mna.n_unknowns,):
            raise AnalysisError(
                f"initial state has shape {x0.shape}, expected ({mna.n_unknowns},)"
            )
        return x0.copy()
    if use_dc:
        return dc_operating_point(mna, time=t_start).x
    return mna.zero_state()


def run_transient(
    mna: MNASystem,
    t_stop: float,
    dt: float,
    *,
    t_start: float = 0.0,
    x0: np.ndarray | None = None,
    use_dc_initial: bool = True,
    options: TransientOptions | None = None,
) -> TransientResult:
    """Integrate the circuit DAE from ``t_start`` to ``t_stop``.

    Parameters
    ----------
    mna:
        Compiled circuit equations.
    t_stop:
        Final time in seconds.
    dt:
        Nominal (fixed mode) or initial (adaptive mode) step size.
    t_start:
        Starting time.
    x0:
        Initial state; when omitted the DC operating point at ``t_start`` is
        used (or zeros if ``use_dc_initial=False``).
    use_dc_initial:
        Whether to compute a DC operating point for the initial condition.
    options:
        :class:`~repro.utils.options.TransientOptions`.

    Notes
    -----
    Adaptive stepping estimates the local truncation error by comparing the
    implicit (corrector) solution with a linear extrapolation of the two
    previous accepted states and scales the step to keep the estimate below
    ``ltetol`` (with the usual safety factor and growth limits).  This is
    deliberately simple — the goal of the
    transient engine in this reproduction is to be a *correct and
    representative* baseline for the MPDE speed-up comparison, not a
    state-of-the-art variable-order integrator.
    """
    opts = options or TransientOptions()
    if t_stop <= t_start:
        raise AnalysisError("t_stop must be greater than t_start")
    if dt <= 0:
        raise AnalysisError("dt must be positive")

    rule = make_integration_rule(opts.method)
    stats = TransientStepStats()
    cache = (
        ChordJacobianCache(
            mna,
            max_chord_iterations=opts.chord_max_iterations,
            slow_iteration_threshold=opts.chord_slow_iterations,
        )
        if opts.chord_newton
        else None
    )

    x = _initial_state(mna, x0, use_dc_initial, t_start)
    t = t_start
    h = min(dt, t_stop - t_start)

    times = [t]
    states = [x.copy()]

    q_prev = mna.q(x)
    qdot_prev = -(mna.f(x) + mna.source(t))
    context = StepContext(q_prev=q_prev, qdot_prev=qdot_prev)

    # History for the local-truncation-error predictor (adaptive mode):
    # linear extrapolation from the previous two accepted points.
    x_prev_accepted: np.ndarray | None = None
    h_prev_accepted: float | None = None

    store_counter = 0
    while t < t_stop - 1e-15 * max(1.0, abs(t_stop)):
        h = min(h, t_stop - t)
        if h < opts.min_step:
            raise AnalysisError(
                f"transient step size underflow at t={t:.3e}s (h={h:.3e}s < min_step)"
            )
        t_new = t + h
        rejections = 0
        while True:
            try:
                x_new, iters = solve_implicit_step(
                    mna, x, t_new, h, context, rule, opts.newton, cache=cache
                )
                stats.newton_iterations += iters
                stats.linear_solves += iters
            except ConvergenceError:
                rejections += 1
                stats.rejected_steps += 1
                if rejections > opts.max_rejections:
                    raise AnalysisError(
                        f"transient analysis failed at t={t:.3e}s: Newton did not converge "
                        f"after {opts.max_rejections} step-size reductions"
                    )
                h *= 0.25
                if h < opts.min_step:
                    raise AnalysisError(
                        f"transient step size underflow at t={t:.3e}s while recovering from "
                        "a Newton failure"
                    )
                t_new = t + h
                continue

            if not opts.adaptive:
                break

            if x_prev_accepted is None or h_prev_accepted is None:
                # No history yet: accept the first step and start controlling
                # from the second one.
                h_after = h
                break

            # LTE estimate: compare the corrector with a linear (two-point)
            # extrapolation from the previous accepted states.  Only the
            # *differential* unknowns (those appearing in q, i.e. with a
            # capacitance column in the compiled stamp pattern) are
            # controlled — algebraic unknowns follow the sources
            # discontinuously and would otherwise force the step to zero at
            # every source corner.
            dynamic = mna.dynamic_unknowns_mask()
            if not np.any(dynamic):
                h_after = h
                break
            predictor = x + (h / h_prev_accepted) * (x - x_prev_accepted)
            error = float(np.max(np.abs((x_new - predictor)[dynamic])))
            scale = opts.ltetol * max(1.0, float(np.max(np.abs(x_new[dynamic]))))
            if error <= scale or h <= opts.min_step * 4:
                # Accept and propose the next step size.
                if error > 0:
                    factor = 0.9 * (scale / error) ** 0.5
                    h_next = h * min(4.0, max(0.25, factor))
                else:
                    h_next = h * 2.0
                h_after = min(opts.max_step, h_next)
                break
            rejections += 1
            stats.rejected_steps += 1
            if rejections > opts.max_rejections:
                raise AnalysisError(
                    f"transient analysis failed at t={t:.3e}s: local truncation error "
                    "could not be controlled"
                )
            h *= 0.5
            t_new = t + h

        # Accept the step.
        stats.accepted_steps += 1
        q_new = mna.q(x_new)
        qdot_new = -(mna.f(x_new) + mna.source(t_new))
        context = StepContext(
            q_prev=q_new,
            qdot_prev=qdot_new,
            q_prev2=context.q_prev,
            h_prev=h,
        )
        x_prev_accepted = x
        h_prev_accepted = h
        x = x_new
        t = t_new
        store_counter += 1
        if store_counter % opts.store_every == 0 or t >= t_stop - 1e-15:
            times.append(t)
            states.append(x.copy())
        if opts.adaptive:
            h = h_after
        else:
            h = dt

    if cache is not None:
        stats.jacobian_refactorisations = cache.refactorisations
    return TransientResult(
        times=np.asarray(times), states=np.asarray(states), mna=mna, stats=stats
    )
