"""The paper's core contribution: sheared difference-frequency multi-time MPDE."""

from .diagonal import (
    diagonal_samples_per_period,
    reconstruct_diagonal,
    reconstruct_fast_cycles,
)
from .envelope import carrier_ripple, envelope_swing, extract_envelope, fast_slice_at_phase
from .grid import MultiTimeGrid
from .mpde import MPDEProblem
from .multitone_hb import TwoToneHBResult, two_tone_harmonic_balance
from .solver import MPDEResult, MPDESolver, MPDEStats, solve_mpde
from .timescales import (
    ShearedTimeScales,
    TimescaleBandwidths,
    UnshearedTimeScales,
    recommend_grid,
    verify_diagonal_property,
)

__all__ = [
    "ShearedTimeScales",
    "UnshearedTimeScales",
    "TimescaleBandwidths",
    "recommend_grid",
    "verify_diagonal_property",
    "MultiTimeGrid",
    "MPDEProblem",
    "MPDESolver",
    "MPDEResult",
    "MPDEStats",
    "solve_mpde",
    "TwoToneHBResult",
    "two_tone_harmonic_balance",
    "extract_envelope",
    "fast_slice_at_phase",
    "carrier_ripple",
    "envelope_swing",
    "reconstruct_diagonal",
    "reconstruct_fast_cycles",
    "diagonal_samples_per_period",
]
