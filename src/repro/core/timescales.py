"""Artificial time scales and the difference-frequency shear map.

This module is the heart of the paper's contribution.  The multi-time (MPDE)
formulation replaces the single time ``t`` by two artificial times
``(t1, t2)``; a bivariate excitation ``b_hat(t1, t2)`` represents the true
excitation through the **diagonal property** ``b(t) = b_hat(t, t)``.

For *widely separated* tones, the natural choice makes ``t1`` carry the fast
tone (period ``T1 = 1/f1``) and ``t2`` the slow tone (period ``T2 = 1/f2``),
and both representations are compact.  For *closely spaced* tones
(``f1 ~ f2``) that choice remains valid but useless: the interesting
behaviour — the difference tone at ``fd = k*f1 - f2`` — appears only
implicitly (Fig. 1 of the paper).

The fix (Section 2 of the paper) is a **scale-and-shear** of the time axes:
keep ``t1`` on the fast (LO) scale, but let ``t2`` advance on the
*difference-frequency* scale ``Td = 1/fd``, and evaluate any component at
the carrier frequency ``k*f1 - fd`` with the sheared phase

    carrier_phase(t1, t2) = k * f1 * t1 - fd * t2          (in cycles)

On the diagonal ``t1 = t2 = t`` this reduces to ``(k*f1 - fd) * t = f2 * t``,
so the one-time excitation is unchanged, while the ``t2`` dependence now
directly exposes the difference-frequency (baseband) variation — this is the
representation plotted in Fig. 2, 3 and 5 of the paper.

Two classes implement the idea:

* :class:`ShearedTimeScales` — the difference-frequency (sheared) axes used
  by the method;
* :class:`UnshearedTimeScales` — the naive axes (``t1`` on ``1/f1``, ``t2``
  on ``1/f2``), kept for the Fig. 1 reproduction and the shear-choice
  ablation.

Both satisfy the small protocol (`fast_phase`, `carrier_phase`,
`slow_phase`, periods) that the stimuli in :mod:`repro.signals.stimuli` use
to build ``b_hat``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..signals.tones import TonePair
from ..utils.exceptions import ShearError
from ..utils.validation import check_positive

__all__ = [
    "ShearedTimeScales",
    "UnshearedTimeScales",
    "TimescaleBandwidths",
    "recommend_grid",
    "verify_diagonal_property",
]

#: Default collocation oversampling margin used by :func:`recommend_grid`.
#: The Nyquist minimum for resolving ``h`` harmonics on a periodic axis is
#: ``2*h + 1`` samples; the default margin of 2 doubles that so the sharp
#: device nonlinearities the paper emphasises (switching mixers, doublers) do
#: not alias their mixing products onto retained harmonics.
GRID_OVERSAMPLING = 2.0


@dataclass(frozen=True)
class ShearedTimeScales:
    """Difference-frequency (sheared) artificial time scales.

    Parameters
    ----------
    fast_frequency:
        The LO frequency ``f1`` carried by the first artificial time axis.
    difference_frequency:
        The baseband frequency ``fd = |k*f1 - f2|`` carried by the second
        axis.  Must be positive (exactly aligned tones have no difference
        time scale).
    lo_multiple:
        The integer ``k`` describing internal multiplication of the LO
        before mixing (1 for a plain mixer, 2 for the LO-doubling balanced
        mixer of the paper's Section 3).
    carrier_above_harmonic:
        Sign of ``f2 - k*f1``.  ``False`` (default) means the carrier sits
        *below* the LO harmonic (``f2 = k*f1 - fd``, the paper's setup);
        ``True`` means it sits above (``f2 = k*f1 + fd``).
    """

    fast_frequency: float
    difference_frequency: float
    lo_multiple: int = 1
    carrier_above_harmonic: bool = False

    def __post_init__(self) -> None:
        check_positive("fast_frequency", self.fast_frequency)
        check_positive("difference_frequency", self.difference_frequency)
        if self.lo_multiple < 1 or int(self.lo_multiple) != self.lo_multiple:
            raise ShearError(f"lo_multiple must be a positive integer, got {self.lo_multiple!r}")
        if self.difference_frequency >= self.lo_multiple * self.fast_frequency:
            raise ShearError(
                "difference frequency must be smaller than the mixed LO harmonic "
                f"({self.difference_frequency:g} Hz >= "
                f"{self.lo_multiple * self.fast_frequency:g} Hz); the tones are not closely spaced"
            )

    # -- derived quantities -------------------------------------------------
    @property
    def fast_period(self) -> float:
        """Period of the fast (LO) axis, ``T1 = 1/f1``."""
        return 1.0 / self.fast_frequency

    @property
    def difference_period(self) -> float:
        """Period of the slow (difference-frequency) axis, ``Td = 1/fd``."""
        return 1.0 / self.difference_frequency

    @property
    def signed_difference_frequency(self) -> float:
        """``k*f1 - f2`` with its sign (negative when the carrier is above the harmonic)."""
        return -self.difference_frequency if self.carrier_above_harmonic else self.difference_frequency

    @property
    def carrier_frequency(self) -> float:
        """The information-carrying (RF) frequency ``f2 = k*f1 -/+ fd``."""
        return self.lo_multiple * self.fast_frequency - self.signed_difference_frequency

    @property
    def disparity(self) -> float:
        """Ratio of the fast frequency to the difference frequency.

        The paper's speed-up over single-time shooting grows roughly linearly
        with this ratio (break-even around 200).
        """
        return self.fast_frequency / self.difference_frequency

    # -- phase maps (in cycles) ----------------------------------------------
    def fast_phase(self, t1: float | np.ndarray) -> float | np.ndarray:
        """Phase (in cycles) of the fast axis: ``f1 * t1``."""
        return self.fast_frequency * np.asarray(t1, dtype=float)

    def slow_phase(self, t2: float | np.ndarray) -> float | np.ndarray:
        """Phase (in cycles) of the slow axis: ``fd * t2``."""
        return self.difference_frequency * np.asarray(t2, dtype=float)

    def carrier_phase(
        self, t1: float | np.ndarray, t2: float | np.ndarray
    ) -> float | np.ndarray:
        """Sheared phase (in cycles) of the carrier: ``k*f1*t1 - fd*t2``.

        This is Eq. (11)/(13) of the paper.  It is periodic in ``t1`` with
        ``T1`` and in ``t2`` with ``Td``, and on the diagonal it equals
        ``f2 * t`` — the property that makes the sheared representation
        equivalent to the original one-time problem.
        """
        return (
            self.lo_multiple * self.fast_frequency * np.asarray(t1, dtype=float)
            - self.signed_difference_frequency * np.asarray(t2, dtype=float)
        )

    # -- constructors ----------------------------------------------------------
    @staticmethod
    def from_frequencies(
        lo_frequency: float, rf_frequency: float, lo_multiple: int = 1
    ) -> "ShearedTimeScales":
        """Build the sheared scales for an LO at ``lo_frequency`` mixed (after
        internal multiplication by ``lo_multiple``) with a carrier at
        ``rf_frequency``."""
        check_positive("lo_frequency", lo_frequency)
        check_positive("rf_frequency", rf_frequency)
        signed = lo_multiple * lo_frequency - rf_frequency
        if signed == 0.0:
            raise ShearError(
                "the carrier coincides exactly with the mixed LO harmonic; there is no "
                "difference-frequency time scale (use single-tone shooting instead)"
            )
        return ShearedTimeScales(
            fast_frequency=lo_frequency,
            difference_frequency=abs(signed),
            lo_multiple=lo_multiple,
            carrier_above_harmonic=signed < 0.0,
        )

    @staticmethod
    def from_tone_pair(pair: TonePair) -> "ShearedTimeScales":
        """Build the sheared scales from a :class:`~repro.signals.tones.TonePair`."""
        return ShearedTimeScales.from_frequencies(pair.f1, pair.f2, pair.lo_multiple)

    @staticmethod
    def paper_balanced_mixer() -> "ShearedTimeScales":
        """The scales of the paper's Section 3 example: 450 MHz LO doubled, 15 kHz baseband."""
        return ShearedTimeScales.from_tone_pair(TonePair.paper_balanced_mixer())


@dataclass(frozen=True)
class UnshearedTimeScales:
    """The naive multi-time axes: ``t1`` on ``1/f1``, ``t2`` on ``1/f2``.

    Valid for any tone spacing but, for closely spaced tones, it does *not*
    expose the difference-frequency variation (the point made by Fig. 1 of
    the paper).  Provided for the Fig. 1 reproduction, for the shear-choice
    ablation benchmark, and for widely-separated-tone problems where no
    shear is needed.

    The carrier is mapped onto the *second* axis, so ``carrier_phase`` only
    depends on ``t2`` and the "slow" axis period is the carrier period
    ``1/f2`` rather than the difference period.
    """

    fast_frequency: float
    carrier_frequency_value: float
    lo_multiple: int = 1

    def __post_init__(self) -> None:
        check_positive("fast_frequency", self.fast_frequency)
        check_positive("carrier_frequency_value", self.carrier_frequency_value)

    @property
    def fast_period(self) -> float:
        """Period of the first axis, ``1/f1``."""
        return 1.0 / self.fast_frequency

    @property
    def difference_period(self) -> float:
        """Period of the second axis — here the *carrier* period ``1/f2``."""
        return 1.0 / self.carrier_frequency_value

    @property
    def difference_frequency(self) -> float:
        """Frequency carried by the second axis (the carrier itself, unsheared)."""
        return self.carrier_frequency_value

    @property
    def carrier_frequency(self) -> float:
        """The information-carrying frequency ``f2``."""
        return self.carrier_frequency_value

    def fast_phase(self, t1: float | np.ndarray) -> float | np.ndarray:
        """Phase (in cycles) of the first axis: ``f1 * t1``."""
        return self.fast_frequency * np.asarray(t1, dtype=float)

    def slow_phase(self, t2: float | np.ndarray) -> float | np.ndarray:
        """Phase (in cycles) of the second axis: ``f2 * t2``."""
        return self.carrier_frequency_value * np.asarray(t2, dtype=float)

    def carrier_phase(
        self, t1: float | np.ndarray, t2: float | np.ndarray
    ) -> float | np.ndarray:
        """Carrier phase, living entirely on the second axis: ``f2 * t2``."""
        del t1
        return self.carrier_frequency_value * np.asarray(t2, dtype=float)

    @staticmethod
    def from_frequencies(f1: float, f2: float) -> "UnshearedTimeScales":
        """Build the unsheared axes for tones at ``f1`` and ``f2``."""
        return UnshearedTimeScales(fast_frequency=f1, carrier_frequency_value=f2)


@dataclass(frozen=True)
class TimescaleBandwidths:
    """Declared spectral content of a two-timescale excitation/circuit pair.

    ``fast_harmonics`` is the highest harmonic of the fast (LO) frequency the
    solution is expected to carry — a smooth behavioural multiplier needs 2-3,
    a hard-switched MOS mixer 8-10.  ``slow_harmonics`` is the highest
    harmonic of the difference frequency carried by the baseband envelope —
    for an ``n``-symbol stream over one difference period, ``2*n`` resolves
    the symbol transitions; for a pure-tone envelope, the tone's harmonic
    index plus headroom for its mixing products.

    The scenario registry (:mod:`repro.scenarios`) attaches one of these to
    every case it builds, and :func:`recommend_grid` converts it into an MPDE
    collocation grid — the "automatic fast/slow timescale + grid selection"
    that makes scenarios zero-config.
    """

    fast_harmonics: int
    slow_harmonics: int

    def __post_init__(self) -> None:
        if self.fast_harmonics < 1 or int(self.fast_harmonics) != self.fast_harmonics:
            raise ShearError(
                f"fast_harmonics must be a positive integer, got {self.fast_harmonics!r}"
            )
        if self.slow_harmonics < 1 or int(self.slow_harmonics) != self.slow_harmonics:
            raise ShearError(
                f"slow_harmonics must be a positive integer, got {self.slow_harmonics!r}"
            )

    @staticmethod
    def for_symbol_stream(
        n_symbols: int, *, fast_harmonics: int = 8
    ) -> "TimescaleBandwidths":
        """Bandwidths for an ``n_symbols``-per-period modulated drive.

        Two slow harmonics per symbol slot resolve the raised-cosine symbol
        transitions (the paper's own Fig. 3/4 grid uses ~7.5 slow points per
        bit, i.e. just under 2 harmonics per bit at 2x oversampling).
        """
        if n_symbols < 1:
            raise ShearError("n_symbols must be >= 1")
        return TimescaleBandwidths(
            fast_harmonics=fast_harmonics, slow_harmonics=2 * int(n_symbols)
        )


def recommend_grid(
    bandwidths: TimescaleBandwidths,
    *,
    oversampling: float = GRID_OVERSAMPLING,
    min_fast: int = 8,
    min_slow: int = 8,
) -> tuple[int, int]:
    """Choose an MPDE collocation grid ``(n_fast, n_slow)`` for the bandwidths.

    Each axis gets ``n = max(min_axis, 2 * ceil(oversampling * harmonics))``
    points: ``2*h`` samples is the Nyquist minimum for ``h`` harmonics of a
    periodic signal, and the ``oversampling`` factor (default
    :data:`GRID_OVERSAMPLING` = 2) is the documented margin on top of it, so
    the guarantee tested by ``tests/test_core_timescales.py`` is

        ``n_fast >= 2 * oversampling * fast_harmonics`` (and likewise slow).

    The result is always even (convenient for the FFT-based preconditioners)
    and never below the ``min_fast`` / ``min_slow`` floors, which keep
    degenerate declarations (e.g. a constant envelope with 1 slow harmonic)
    on grids where the Newton solver's finite differences remain well
    conditioned.
    """
    if oversampling < 1.0:
        raise ShearError(f"oversampling must be >= 1, got {oversampling!r}")
    if min_fast < 2 or min_slow < 2:
        raise ShearError("grid floors must be >= 2 points per axis")

    def axis(harmonics: int, floor: int) -> int:
        n = 2 * int(np.ceil(oversampling * harmonics))
        n = max(n, floor)
        return n + (n % 2)  # keep it even

    return axis(bandwidths.fast_harmonics, min_fast), axis(
        bandwidths.slow_harmonics, min_slow
    )


def verify_diagonal_property(
    stimulus,
    scales,
    times: np.ndarray,
    *,
    rtol: float = 1e-9,
    atol: float = 1e-12,
) -> float:
    """Return the maximum diagonal-property violation of a stimulus.

    Checks ``|stimulus.bivariate_value(t, t, scales) - stimulus.value(t)|``
    over the given times and returns the largest absolute deviation; raises
    :class:`ShearError` if it exceeds the tolerances.  Used by tests and by
    :class:`~repro.core.mpde.MPDEProblem` as a cheap sanity check before an
    expensive solve.
    """
    times = np.asarray(times, dtype=float)
    direct = np.asarray(stimulus.value(times), dtype=float)
    diagonal = np.asarray(stimulus.bivariate_value(times, times, scales), dtype=float)
    deviation = np.max(np.abs(direct - diagonal)) if times.size else 0.0
    scale = np.max(np.abs(direct)) if times.size else 0.0
    if deviation > atol + rtol * max(scale, 1.0):
        raise ShearError(
            f"stimulus violates the diagonal property b(t) == b_hat(t, t): max deviation "
            f"{deviation:.3e} over {times.size} samples"
        )
    return float(deviation)
