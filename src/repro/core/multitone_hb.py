"""Two-tone harmonic balance on top of the multi-time machinery.

Classical multi-tone harmonic balance expands every waveform in mixing
products ``m*f1 + k*fd`` of the driving tones.  The same solution is
obtained from the multi-time formulation by using the *spectral* (Fourier)
differentiation operators on both artificial time axes — the collocation
points then carry exactly the information of a box-truncated two-tone HB,
and the mixing-product coefficients are recovered from the solution grid by
a 2-D FFT.

This module packages that combination as a convenience API, mostly so the
library also covers the frequency-domain standard method the paper compares
itself against conceptually.  For the sharp switching waveforms the paper
targets, the finite-difference MPDE options (``bdf2``) remain the better
choice (see the MOT-HB benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..circuits.mna import MNASystem
from ..utils.exceptions import AnalysisError
from ..utils.options import MPDEOptions, RecoveryPolicy
from .solver import MPDEResult, solve_mpde
from .timescales import ShearedTimeScales

__all__ = ["TwoToneHBResult", "two_tone_harmonic_balance"]


@dataclass
class TwoToneHBResult:
    """Result of a two-tone harmonic-balance analysis.

    Attributes
    ----------
    mpde:
        The underlying multi-time solution (spectral collocation).
    n_harmonics_fast, n_harmonics_slow:
        Harmonic truncation per axis (``K1``, ``K2``).
    """

    mpde: MPDEResult
    n_harmonics_fast: int
    n_harmonics_slow: int

    @property
    def scales(self) -> ShearedTimeScales:
        """The time scales (tone frequencies) used."""
        return self.mpde.scales

    @property
    def stats(self):
        """Solver statistics of the underlying MPDE solve.

        Exposes the Newton/GMRES cost accounting (including the per-solve
        ``linear_iteration_history`` and ``preconditioner_builds``) so HB
        users can compare preconditioner modes without reaching into
        ``result.mpde``.
        """
        return self.mpde.stats

    def mixing_product(self, node: str, m: int, k: int, *, node_neg: str | None = None) -> complex:
        """Complex amplitude of the mixing product ``m*f1 + k*fd`` of a node voltage.

        ``m`` indexes harmonics of the fast (LO) tone and ``k`` harmonics of
        the difference frequency; ``(0, 1)`` is the baseband difference
        tone, ``(1, -1)`` the RF carrier (for ``lo_multiple = 1``).  Peak
        amplitude of the real signal is ``2 * abs(...)`` for any non-DC
        product.
        """
        if node_neg is None:
            surface = self.mpde.bivariate(node)
        else:
            surface = self.mpde.bivariate_differential(node, node_neg)
        values = surface.values
        n1, n2 = values.shape
        if abs(m) > self.n_harmonics_fast or abs(k) > self.n_harmonics_slow:
            raise AnalysisError(
                f"mixing product ({m}, {k}) exceeds the truncation "
                f"({self.n_harmonics_fast}, {self.n_harmonics_slow})"
            )
        spectrum = np.fft.fft2(values) / (n1 * n2)
        # With numpy's forward-transform sign convention, the coefficient of
        # exp(+2j*pi*(m*t1/T1 + k*t2/Td)) lands in bin [m % n1, k % n2].
        return complex(spectrum[m % n1, k % n2])

    def mixing_product_amplitude(self, node: str, m: int, k: int, *, node_neg: str | None = None) -> float:
        """Peak amplitude of the (m, k) mixing product (DC returns the absolute value)."""
        coefficient = self.mixing_product(node, m, k, node_neg=node_neg)
        if m == 0 and k == 0:
            return abs(coefficient)
        return 2.0 * abs(coefficient)


def two_tone_harmonic_balance(
    mna: MNASystem,
    scales: ShearedTimeScales,
    *,
    n_harmonics_fast: int = 7,
    n_harmonics_slow: int = 7,
    oversampling: int = 2,
    options: MPDEOptions | None = None,
    matrix_free: bool | None = None,
    preconditioner: str | None = None,
    parallel: bool | None = None,
    n_workers: int | None = None,
    factor_backend: str | None = None,
    deadline_s: float | None = None,
    recovery: RecoveryPolicy | None = None,
    resume_from=None,
    checkpoint_path: str | None = None,
) -> TwoToneHBResult:
    """Run two-tone (box-truncated) harmonic balance for a closely-spaced-tone circuit.

    Parameters
    ----------
    mna:
        Compiled circuit equations.
    scales:
        The sheared time scales describing the two tones.
    n_harmonics_fast, n_harmonics_slow:
        Harmonic truncation along the LO and difference-frequency axes.
    oversampling:
        Collocation points per retained harmonic (>= 2 to avoid aliasing of
        the quadratic nonlinearities).
    options:
        Base :class:`MPDEOptions`; the grid size and differentiation methods
        are overridden to the spectral settings implied by the truncation.
    matrix_free, preconditioner:
        Optional overrides of the corresponding :class:`MPDEOptions` fields.
        The spectral operators used here are exactly where the per-harmonic
        preconditioners shine, so large truncations are best run with
        ``matrix_free=True`` and ``preconditioner="block_circulant"`` — or
        ``"block_circulant_fast"`` (slow-axis partially-averaged) for
        strongly LO-switched circuits, where it cuts total GMRES iterations
        by a further >= 1.5x.
    parallel, n_workers, factor_backend:
        Optional overrides of the parallel execution layer knobs (see
        :class:`MPDEOptions` and ``docs/parallel.md``): sharded device
        evaluation over the collocation grid plus eager concurrent
        per-harmonic LU factorisation for ``"block_circulant_fast"`` —
        or, with ``factor_backend="resident"``, worker-resident factors
        whose batched back-substitutions parallelise the preconditioner
        applies themselves.  The resulting
        ``result.stats.parallel_fallback_reason`` records any degradation
        to the serial paths.
    deadline_s, recovery:
        Optional overrides of the resilience knobs (see ``docs/resilience.md``):
        a cooperative wall-clock budget for the underlying MPDE solve and the
        :class:`~repro.utils.options.RecoveryPolicy` driving its failure
        escalation ladder.
    resume_from, checkpoint_path:
        Crash-consistent checkpointing of the underlying MPDE solve (see
        :func:`~repro.core.solver.solve_mpde`): ``checkpoint_path``
        persists iteration-boundary
        :class:`~repro.resilience.checkpoint.SolveCheckpoint` snapshots,
        ``resume_from`` continues an interrupted run (fingerprint
        validated) — a deadline-split spectral HB solve resumes to the
        uninterrupted answer.
    """
    if n_harmonics_fast < 1 or n_harmonics_slow < 1:
        raise AnalysisError("harmonic truncations must be at least 1")
    if oversampling < 2:
        raise AnalysisError("oversampling must be at least 2")
    base = options or MPDEOptions()
    n_fast = max(4, oversampling * (2 * n_harmonics_fast + 1))
    n_slow = max(4, oversampling * (2 * n_harmonics_slow + 1))
    import dataclasses

    overrides: dict = {}
    if matrix_free is not None:
        overrides["matrix_free"] = bool(matrix_free)
    if preconditioner is not None:
        overrides["preconditioner"] = preconditioner
    if parallel is not None:
        overrides["parallel"] = bool(parallel)
    if n_workers is not None:
        overrides["n_workers"] = int(n_workers)
    if factor_backend is not None:
        overrides["factor_backend"] = factor_backend
    if deadline_s is not None:
        overrides["deadline_s"] = float(deadline_s)
    if recovery is not None:
        overrides["recovery"] = recovery
    spectral_options = dataclasses.replace(
        base,
        n_fast=n_fast,
        n_slow=n_slow,
        fast_method="fourier",
        slow_method="fourier",
        **overrides,
    )
    result = solve_mpde(
        mna,
        scales,
        spectral_options,
        resume_from=resume_from,
        checkpoint_path=checkpoint_path,
    )
    return TwoToneHBResult(
        mpde=result,
        n_harmonics_fast=n_harmonics_fast,
        n_harmonics_slow=n_harmonics_slow,
    )
