"""Envelope extraction along the difference-frequency time scale.

Once the MPDE solution ``x_hat(t1, t2)`` is available, the baseband
(difference-frequency) behaviour of any circuit variable is read directly
off the slow axis — no demodulation, filtering or Fourier analysis is
needed.  This module provides the standalone helpers used by
:meth:`repro.core.solver.MPDEResult.baseband_envelope` and by the Fig. 4
benchmark, plus a few quantities that are convenient for verifying a
solution (carrier ripple, envelope swing).
"""

from __future__ import annotations

import numpy as np

from ..signals.waveform import BivariateWaveform, Waveform
from ..utils.exceptions import MPDEError

__all__ = [
    "extract_envelope",
    "fast_slice_at_phase",
    "carrier_ripple",
    "envelope_swing",
]


def extract_envelope(surface: BivariateWaveform, mode: str = "mean") -> Waveform:
    """Collapse the fast (carrier) axis of a bivariate waveform.

    Parameters
    ----------
    surface:
        A multi-time solution surface (e.g. from
        :meth:`~repro.core.solver.MPDEResult.bivariate`).
    mode:
        ``"mean"`` — average over the carrier cycle (the down-converted
        baseband content, the quantity plotted in Fig. 4 of the paper);
        ``"max"`` / ``"min"`` — upper / lower envelope;
        ``"rms"`` — root-mean-square over the carrier cycle.
    """
    if mode == "mean":
        return surface.envelope_mean()
    if mode == "max":
        return surface.envelope_max()
    if mode == "min":
        return surface.envelope_min()
    if mode == "rms":
        values = np.sqrt(np.mean(surface.values**2, axis=0))
        times, values = surface._close_period(surface.axis2, values, surface.period2)
        return Waveform(times, values, name=surface.name)
    raise MPDEError(f"unknown envelope mode {mode!r}; use 'mean', 'max', 'min' or 'rms'")


def fast_slice_at_phase(surface: BivariateWaveform, phase: float) -> Waveform:
    """Waveform along the slow axis at a fixed phase of the carrier cycle.

    ``phase`` is a fraction of the fast-axis period in ``[0, 1)``.  Sampling
    the output at a fixed LO phase is how a sampling (track-and-hold style)
    receiver would observe the baseband waveform.
    """
    if not 0.0 <= phase < 1.0:
        raise MPDEError(f"phase must be in [0, 1), got {phase}")
    t1 = phase * surface.period1
    return surface.slice_slow(t1)


def carrier_ripple(surface: BivariateWaveform) -> Waveform:
    """Peak-to-peak variation over the carrier cycle, as a function of slow time.

    For a well down-converted output this is the residual carrier feedthrough
    riding on top of the baseband waveform.
    """
    ripple = surface.values.max(axis=0) - surface.values.min(axis=0)
    times, ripple = surface._close_period(surface.axis2, ripple, surface.period2)
    return Waveform(times, ripple, name=f"ripple[{surface.name}]")


def envelope_swing(surface: BivariateWaveform, mode: str = "mean") -> float:
    """Peak-to-peak swing of the baseband envelope.

    A single number summarising how much baseband signal the circuit
    produces; the conversion-gain metric divides this by the RF drive
    amplitude.
    """
    envelope = extract_envelope(surface, mode)
    return envelope.peak_to_peak()
