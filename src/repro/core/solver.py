"""Newton / continuation driver for the discretised MPDE.

The solver is a damped Newton-Raphson iteration on the global system
assembled by :class:`~repro.core.mpde.MPDEProblem`, with

* a sparse direct (LU) or ILU-preconditioned GMRES linear solver,
* a backtracking line search (the same safeguards as the rest of the
  library), and
* an optional source-stepping continuation fallback: when plain Newton fails
  from the available initial guess, the time-varying part of the excitation
  is ramped from zero (a DC-like problem) up to its full value — the
  strategy the paper reports as "using continuation reliably obtained
  solutions in 10-20m" for the hard starts.

The result object :class:`MPDEResult` exposes the post-processing the
paper's figures need: bivariate surfaces (Figs. 3 and 5), the baseband
envelope along the difference-frequency axis (Fig. 4) and the diagonal
reconstruction of the one-time waveform (Fig. 6), plus solver statistics
used by the speed-up benchmarks.
"""

from __future__ import annotations

import dataclasses
import os
import time
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..analysis.dc import dc_operating_point
from ..circuits.mna import MNASystem
from ..linalg.continuation import continuation_sweep
from ..linalg.krylov import CachedPreconditionedGMRES
from ..linalg.preconditioners import (
    AdaptiveRefreshPolicy,
    downgrade_preconditioner_kind,
)
from ..parallel.backends import resolve_execution
from ..parallel.factor_service import ResidentFactorPool
from ..parallel.pool import WorkerPool
from ..resilience.checkpoint import SolveCheckpoint, solve_fingerprint
from ..resilience.deadline import Deadline
from ..resilience.diagnostics import attach_diagnostics, build_failure_diagnostics
from ..resilience.faultinject import fault_site
from ..resilience.taxonomy import RecoveryAttempt, classify_failure
from ..signals.waveform import BivariateWaveform, Waveform
from ..utils.exceptions import (
    AnalysisError,
    ConvergenceError,
    DeadlineExceededError,
    MPDEError,
    SingularMatrixError,
)
from ..utils.logging import get_logger
from ..utils.options import MPDEOptions, NewtonOptions
from .mpde import MPDEProblem
from .timescales import ShearedTimeScales, UnshearedTimeScales

__all__ = ["MPDEStats", "MPDEResult", "MPDESolver", "solve_mpde"]

_LOG = get_logger("core.solver")

#: Marker distinguishing "rung never ran an attempt" from a real failure in
#: the multi-attempt rungs (downgrade chain, guess retry).
_sentinel_failure = object()


@dataclass
class MPDEStats:
    """Cost accounting and convergence diagnostics for an MPDE solve."""

    newton_iterations: int = 0
    linear_solves: int = 0
    #: Sparse LU factorisations of the full MPDE Jacobian (direct mode).
    #: Without chord Newton this equals ``linear_solves``; with it the
    #: adaptive reuse policy keeps it well below (0 for the GMRES modes,
    #: whose factorisation effort is ``preconditioner_builds``).
    jacobian_factorizations: int = 0
    #: Total inner Krylov iterations across all GMRES linear solves (0 for
    #: the direct solver).
    linear_iterations: int = 0
    #: Inner Krylov iterations of each GMRES solve in order — the per-solve
    #: trace the convergence test harness and the adaptive refresh policy
    #: assert on (empty for the direct solver).
    linear_iteration_history: list[int] = field(default_factory=list)
    #: Number of preconditioner factorisations performed (the reuse policy
    #: keeps this far below ``linear_solves``).
    preconditioner_builds: int = 0
    #: Lazy per-harmonic sparse LU factorisations performed by the
    #: partially-averaged ``"block_circulant_fast"`` preconditioner across
    #: the whole solve (all builds summed; conjugate symmetry keeps this at
    #: ``n_slow // 2 + 1`` per build).  Zero for every other mode.
    preconditioner_harmonic_builds: int = 0
    #: Preconditioner mode used for the GMRES solves ("" for the direct
    #: solver).
    preconditioner_kind: str = ""
    #: True when any preconditioner build degraded to a weaker fallback
    #: (e.g. an ILU factorisation failing over to Jacobi scaling).
    preconditioner_degraded: bool = False
    continuation_steps: int = 0
    used_continuation: bool = False
    converged: bool = False
    residual_norm: float = float("nan")
    wall_time_seconds: float = 0.0
    n_grid_points: int = 0
    n_total_unknowns: int = 0
    residual_history: list[float] = field(default_factory=list)
    # -- wall-time breakdown (PR 5) --------------------------------------
    # Populated by every solver mode; the four buckets cover the dominant
    # phases and sum to (at most) ``wall_time_seconds`` — the remainder is
    # Newton bookkeeping (norms, damping logic, result assembly).
    #: Device evaluation + residual assembly time: every
    #: ``evaluate`` / ``evaluate_sparse`` sweep the Newton loop and its
    #: line searches issue, including the sparse Jacobian assembly of the
    #: assembled-matrix modes (one fused evaluation call).  Non-zero in
    #: every mode.
    eval_time_s: float = 0.0
    #: Sparse direct-solver time: LU factorisations of the full MPDE
    #: Jacobian plus their back-substitutions (``linear_solver="direct"``
    #: only; 0.0 for the GMRES modes).
    factorization_time_s: float = 0.0
    #: Preconditioner construction time across all (re)builds, including
    #: eager per-harmonic batch factorisation when enabled (GMRES modes
    #: only).  In the *lazy* partially-averaged mode the per-harmonic LUs
    #: are factored inside the first GMRES apply instead, where they count
    #: toward ``gmres_time_s`` — comparing the two placements is exactly
    #: the eager-vs-lazy observable the bench reports.
    preconditioner_build_time_s: float = 0.0
    #: Time inside the GMRES solves (matvecs, preconditioner applies,
    #: orthogonalisation; GMRES modes only).
    gmres_time_s: float = 0.0
    #: Apply-dispatch overhead of the worker-resident factor service
    #: (``factor_backend="resident"``): packing spectra into shared memory,
    #: pipe commands, and gathering replies.  A *subdivision* of
    #: ``gmres_time_s``, not an additional top-level bucket; 0.0 for
    #: in-process applies.
    gmres_apply_dispatch_time_s: float = 0.0
    #: Per-harmonic back-substitution time inside the preconditioner
    #: applies — summed solver-call durations in-process, or the critical
    #: path (slowest worker shard) per apply on the resident service.  Also
    #: a subdivision of ``gmres_time_s``.
    gmres_backsub_time_s: float = 0.0
    #: Why a requested parallel execution fell back to (or degraded
    #: through) the serial path ("" when parallel was not requested or ran
    #: as requested): the environment constraint, ``n_workers=1``, a healed
    #: worker failure (``"degraded (healing): ..."``) or an exhausted
    #: restart budget (``"disabled (budget exhausted): ..."``).  Per-solve,
    #: *first-reason-wins* semantics: reset at the start of every solve,
    #: set to the chronologically first reason of that solve, frozen at its
    #: end (the live ``MNASystem.parallel_fallback_reason`` property has
    #: *last-request* semantics instead, and is cleared by later
    #: successes).
    parallel_fallback_reason: str = ""
    #: Every :class:`~repro.resilience.supervisor.SupervisorEvent` recorded
    #: by the pool supervisors (sharded evaluation pool and resident factor
    #: service) during this solve, merged chronologically.  Empty when no
    #: worker failed.
    supervisor_trace: list = field(default_factory=list)
    # -- recovery ladder (resilience subsystem) ---------------------------
    #: Every recovery attempt made by the escalation ladder, in order: the
    #: failed baseline attempt first, then one
    #: :class:`~repro.resilience.taxonomy.RecoveryAttempt` per rung tried
    #: or skipped.  Empty when the baseline Newton run converged.
    recovery_trace: list = field(default_factory=list)
    #: Name of the ladder rung that produced the returned solution ("" when
    #: the baseline attempt converged on its own).
    recovered_by: str = ""


@dataclass
class MPDEResult:
    """Solution of the sheared multi-time problem.

    Attributes
    ----------
    states:
        Solution on the grid, shape ``(n_fast, n_slow, n)``.
    problem:
        The discretised problem (grid, scales, operators).
    stats:
        Solver statistics.
    """

    states: np.ndarray
    problem: MPDEProblem
    stats: MPDEStats

    # -- bookkeeping -----------------------------------------------------------
    @property
    def mna(self) -> MNASystem:
        """The compiled circuit the solution belongs to."""
        return self.problem.mna

    @property
    def grid(self):
        """The multi-time grid."""
        return self.problem.grid

    @property
    def scales(self):
        """The sheared time scales used."""
        return self.problem.scales

    # -- accessors ----------------------------------------------------------------
    def bivariate(self, node: str) -> BivariateWaveform:
        """Bivariate (multi-time) waveform of a node voltage.

        This is the object plotted in Figs. 3 and 5 of the paper: the fast
        (LO) variation along the first axis and the difference-frequency
        (baseband) variation along the second.
        """
        values = np.asarray(self.mna.voltage(self.states, node), dtype=float)
        return BivariateWaveform(
            values=values,
            period1=self.grid.period_fast,
            period2=self.grid.period_slow,
            name=f"v({node})",
        )

    def bivariate_differential(self, node_pos: str, node_neg: str) -> BivariateWaveform:
        """Bivariate waveform of a differential voltage (e.g. the mixer output)."""
        values = np.asarray(
            self.mna.differential_voltage(self.states, node_pos, node_neg), dtype=float
        )
        return BivariateWaveform(
            values=values,
            period1=self.grid.period_fast,
            period2=self.grid.period_slow,
            name=f"v({node_pos},{node_neg})",
        )

    def baseband_envelope(
        self, node: str, *, node_neg: str | None = None, mode: str = "mean"
    ) -> Waveform:
        """Baseband waveform along the difference-frequency axis (Fig. 4).

        ``mode`` selects how the fast (LO) variation is collapsed:
        ``"mean"`` averages over the LO cycle (the down-converted baseband
        content), ``"max"`` / ``"min"`` return the upper / lower envelope.
        """
        if node_neg is None:
            surface = self.bivariate(node)
        else:
            surface = self.bivariate_differential(node, node_neg)
        if mode == "mean":
            return surface.envelope_mean()
        if mode == "max":
            return surface.envelope_max()
        if mode == "min":
            return surface.envelope_min()
        raise MPDEError(f"unknown envelope mode {mode!r}; use 'mean', 'max' or 'min'")

    def diagonal_waveform(
        self,
        node: str,
        *,
        node_neg: str | None = None,
        t_start: float = 0.0,
        t_stop: float | None = None,
        n_samples: int = 2001,
    ) -> Waveform:
        """One-time waveform ``x(t) = x_hat(t, t)`` reconstructed from the grid.

        This is how Fig. 6 of the paper (a few LO cycles of the actual
        waveform) is produced from the multi-time solution.  The default
        span is one difference-frequency period.
        """
        if t_stop is None:
            t_stop = t_start + self.grid.period_slow
        if t_stop <= t_start:
            raise MPDEError("t_stop must be greater than t_start")
        times = np.linspace(t_start, t_stop, n_samples)
        if node_neg is None:
            surface = self.bivariate(node)
        else:
            surface = self.bivariate_differential(node, node_neg)
        return surface.diagonal(times, name=surface.name)

    def state_grid(self) -> np.ndarray:
        """Raw solution array of shape ``(n_fast, n_slow, n_unknowns)``."""
        return self.states


class _ChordLU:
    """Cached sparse LU of the MPDE Jacobian for direct-mode chord Newton.

    The refresh discipline mirrors the GMRES preconditioner cache
    (:class:`~repro.linalg.krylov.CachedPreconditionedGMRES`): the first
    Newton step after a factorisation records its observed
    residual-reduction ratio as the
    :class:`~repro.linalg.preconditioners.AdaptiveRefreshPolicy` baseline;
    once the trend degrades past the policy threshold — or a line search
    fails outright against the stale factorisation — the next linear solve
    refactors at the current iterate.
    """

    #: Scale turning a residual-reduction ratio into the integer trend
    #: metric the refresh policy expects (three decimal digits).
    RATIO_SCALE = 1000.0
    #: Ratios at or above this mean the chord step made no progress; the
    #: recorded metric saturates here (the policy then flags a rebuild).
    RATIO_CAP = 2.0
    #: Absolute progress floor: a chord step that does not cut the residual
    #: at least 4x marks the factorisation stale regardless of the trend.
    #: The trend policy alone would accept an arbitrarily slow (but steady)
    #: linear crawl whenever the first post-rebuild step was itself slow;
    #: the floor bounds the extra chord iterations a stale factorisation can
    #: cost before the solver refactors.
    MAX_RATIO = 0.25

    def __init__(self, growth_factor: float, slack: int) -> None:
        self._policy = AdaptiveRefreshPolicy(growth_factor=growth_factor, slack=slack)
        self.factor = None
        #: Iterate the resident factorisation was produced at — part of a
        #: checkpoint's chord state, because refactoring the same matrix
        #: data is bitwise deterministic (that is what makes chord-mode
        #: resume land exactly on the uninterrupted trajectory).
        self.factored_at: np.ndarray | None = None
        self.just_built = False
        self._stale = False

    def needs_refresh(self) -> bool:
        return self.factor is None or self._stale or self._policy.should_rebuild()

    def store(self, factor) -> None:
        self.factor = factor
        self.just_built = True
        self._stale = False
        self._policy.note_build()

    def invalidate(self) -> None:
        self.factor = None

    def capture_state(self) -> dict | None:
        """Chord cache state for a :class:`SolveCheckpoint` (None when cold)."""
        if self.factor is None or self.factored_at is None:
            return None
        return {
            "factored_at": np.array(self.factored_at, copy=True),
            "baseline": self._policy.baseline,
            "last": self._policy.last,
            "just_built": self.just_built,
            "stale": self._stale,
        }

    def restore_state(self, state: dict, refactor) -> None:
        """Rebuild the cached factorisation exactly as a checkpoint recorded it.

        ``refactor`` is a callable refactoring at a given iterate (the
        solver's ``_chord_refactor``); the refresh-policy counters and
        staleness flags are then replayed on top of the fresh build.
        """
        refactor(np.asarray(state["factored_at"], dtype=float))
        if state.get("baseline") is not None:
            self._policy.record(int(state["baseline"]))
        if state.get("last") is not None:
            self._policy.record(int(state["last"]))
        self.just_built = bool(state.get("just_built", False))
        self._stale = bool(state.get("stale", False))

    def record_step(self, ratio: float) -> None:
        """Feed one accepted Newton step's residual-reduction ratio to the policy."""
        self._policy.record(int(min(ratio, self.RATIO_CAP) * self.RATIO_SCALE))
        if self.just_built:
            # The first step after a rebuild is the reference full-Newton
            # step; it sets the trend baseline but must not mark its own
            # (fresh) factorisation stale even when Newton itself is slow.
            self.just_built = False
        elif ratio > self.MAX_RATIO:
            self._stale = True


class MPDESolver:
    """Damped Newton (+ continuation) solver for an :class:`MPDEProblem`.

    Linear sub-solves come in three flavours, selected by the options:

    * ``linear_solver="direct"`` — sparse LU on the assembled CSC Jacobian;
    * ``linear_solver="gmres"`` — preconditioned GMRES on the assembled
      Jacobian, with the preconditioner cached across Newton iterations;
    * ``matrix_free=True`` — GMRES on the matrix-free Jacobian-vector-product
      operator, preconditioned from the grid-averaged
      (frequency-independent) Jacobian.

    The GMRES preconditioner mode — averaged-Jacobian ILU (the default), the
    per-harmonic block-circulant preconditioner for the spectral operators,
    Jacobi, or none — is selected by ``options.preconditioner`` and built
    through :meth:`MPDEProblem.build_preconditioner`.  A cached
    preconditioner is refreshed by an :class:`AdaptiveRefreshPolicy`: the
    per-solve GMRES iteration trend triggers a rebuild *before* the stale
    factorisation fails outright (an outright failure still rebuilds and
    retries once, as before).

    With ``options.parallel`` the solve runs on the parallel execution
    layer (:mod:`repro.parallel`): device evaluations use the sharded
    kernel backend and the partially-averaged preconditioner batch-factors
    its per-harmonic LUs eagerly on a worker pool owned by this solver
    instance (one pool per solver, reused across solves and continuation
    stages).  Every solve also populates the :class:`MPDEStats` wall-time
    breakdown (``eval_time_s``, ``factorization_time_s``,
    ``preconditioner_build_time_s``, ``gmres_time_s``) so benchmarks can
    see where the remaining time goes in any mode.
    """

    def __init__(self, problem: MPDEProblem, options: MPDEOptions | None = None) -> None:
        self.problem = problem
        self.options = options or problem.options
        # Parallel execution layer: resolve once per solver so the pool (and
        # its startup cost) is shared by every solve this instance runs.
        # The factor pool drives the eager per-harmonic batch factorisation
        # of the partially-averaged preconditioner; sharded device
        # evaluation is resolved independently inside the MNA layer.
        self._parallel_resolution = (
            resolve_execution("sharded", self.options.n_workers)
            if self.options.parallel
            else None
        )
        sharded = (
            self._parallel_resolution is not None and self._parallel_resolution.sharded
        )
        # factor_backend picks how the per-harmonic LU work is fanned out:
        # "threads" batch-factors eagerly on an in-process pool (applies
        # stay serial); "resident" forks workers that own harmonic slices
        # and serve the applies too (see parallel/factor_service.py).
        use_resident = sharded and self.options.factor_backend == "resident"
        self._factor_service = (
            ResidentFactorPool(
                self._parallel_resolution.n_workers,
                reply_timeout_s=self.options.worker_timeout_s,
                restart_policy=self.options.restart,
            )
            if use_resident
            else None
        )
        self._factor_pool = (
            WorkerPool(self._parallel_resolution.n_workers)
            if sharded and not use_resident
            else None
        )
        self._krylov = CachedPreconditionedGMRES(
            self._build_preconditioner,
            growth_factor=self.options.precond_refresh_growth,
            slack=self.options.precond_refresh_slack,
        )
        use_chord = (
            self.options.chord_newton
            and self.options.linear_solver == "direct"
            and not self.options.matrix_free
        )
        self._chord = (
            _ChordLU(
                growth_factor=self.options.precond_refresh_growth,
                slack=self.options.precond_refresh_slack,
            )
            if use_chord
            else None
        )
        self._chord_suspended = False
        # Resilience state: a no-op deadline until ``solve`` installs the
        # real one, the recovery ladder's preconditioner downgrade override,
        # and the last Newton iterate (for failure diagnostics).
        self._deadline = Deadline(None)
        self._preconditioner_override: str | None = None
        self._last_iterate: np.ndarray | None = None
        # Checkpoint state: the latest iteration-boundary snapshot (attached
        # to deadline / terminal failures), the fingerprint it is recorded
        # under, and a chord state waiting to be restored by ``_newton``
        # when resuming.
        self._checkpoint: SolveCheckpoint | None = None
        self._solve_fingerprint = ""
        self._pending_chord_state: dict | None = None

    def close(self) -> None:
        """Release the solver's parallel resources (idempotent).

        Stops the worker-resident factor service's processes and unlinks
        their shared-memory blocks.  A solver is safe to keep using after
        ``close()`` — a healthy service re-forks on the next build — but
        callers that are done with the instance should close it rather than
        rely on garbage collection (the solver participates in a reference
        cycle with its Krylov manager, so finalizers may run late).
        """
        if self._factor_service is not None:
            self._factor_service.close()

    @property
    def _matrix_free(self) -> bool:
        return bool(self.options.matrix_free)

    @property
    def _chord_active(self) -> bool:
        return self._chord is not None and not self._chord_suspended

    @property
    def _active_preconditioner(self) -> str:
        """Preconditioner mode in effect, honouring a ladder downgrade."""
        return self._preconditioner_override or self.options.preconditioner

    # -- residual/Jacobian evaluation -------------------------------------------
    def _evaluate(self, x: np.ndarray, source_grid: np.ndarray | None):
        """Residual plus whatever the linear solver needs at ``x``.

        Returns ``(residual, jacobian_like, data)`` where ``jacobian_like``
        is an assembled CSC matrix (direct / gmres modes) or a
        ``LinearOperator`` (matrix-free), and ``data`` carries the per-point
        Jacobian value arrays needed to build the averaged preconditioners in
        the GMRES modes (``None`` in direct mode, where no preconditioner is
        built).
        """
        if self._matrix_free:
            residual, c_data, g_data = self.problem.residual_and_values(
                x, source_grid=source_grid
            )
            operator = self.problem.jacobian_operator(c_data, g_data)
            return residual, operator, (c_data, g_data)
        if self.options.linear_solver == "gmres":
            residual, c_data, g_data = self.problem.residual_and_values(
                x, source_grid=source_grid
            )
            jacobian = self.problem.assemble_jacobian(c_data, g_data)
            return residual, jacobian, (c_data, g_data)
        if self._chord_active:
            # Chord Newton: residual-only sweep; the (cached) factorisation
            # is produced lazily inside the linear solve, at the iterate
            # carried through ``data``, only when the refresh policy asks.
            residual = self.problem.residual(x, source_grid=source_grid)
            return residual, None, x
        residual, jacobian = self.problem.residual_and_jacobian(x, source_grid=source_grid)
        return residual, jacobian, None

    # -- linear sub-solves -------------------------------------------------------
    def _build_preconditioner(self, context):
        """Build callback for the :class:`CachedPreconditionedGMRES` manager."""
        jacobian, data = context
        c_data, g_data = data if data is not None else (None, None)
        # ILU/Jacobi of the *assembled* Jacobian when one exists (it is a
        # strictly better target than the grid average); the matrix-free mode
        # has no assembled matrix, so those modes fall back to the averaged
        # Jacobian there.  The block-circulant mode always works from the
        # averaged blocks — that is its definition.
        matrix = jacobian if sp.issparse(jacobian) else None
        return self.problem.build_preconditioner(
            self._active_preconditioner,
            c_data=c_data,
            g_data=g_data,
            matrix=matrix,
            eager=self._factor_pool is not None,
            factor_pool=self._factor_pool,
            factor_service=self._factor_service,
        )

    def _chord_refactor(self, x: np.ndarray, stats: MPDEStats) -> None:
        start = time.perf_counter()
        jacobian = self.problem.jacobian(x)
        factor_start = time.perf_counter()
        stats.eval_time_s += factor_start - start
        try:
            factor = spla.splu(jacobian)
        except RuntimeError as exc:
            raise SingularMatrixError(f"sparse LU failed on the MPDE Jacobian: {exc}") from exc
        finally:
            stats.factorization_time_s += time.perf_counter() - factor_start
        stats.jacobian_factorizations += 1
        self._chord.store(factor)
        self._chord.factored_at = np.array(x, dtype=float, copy=True)

    def _chord_solve(self, rhs: np.ndarray, stats: MPDEStats, x: np.ndarray) -> np.ndarray:
        chord = self._chord
        if chord.needs_refresh():
            self._chord_refactor(x, stats)
        start = time.perf_counter()
        dx = chord.factor.solve(rhs)
        stats.factorization_time_s += time.perf_counter() - start
        if not np.all(np.isfinite(dx)):
            if chord.just_built:
                raise SingularMatrixError(
                    "sparse LU produced non-finite values (singular MPDE Jacobian; check for "
                    "floating nodes or an all-capacitive cutset)"
                )
            # A stale factorisation can go numerically bad even though a
            # fresh one would not; rebuild at the current iterate and retry
            # once before declaring the Jacobian singular.
            self._chord_refactor(x, stats)
            start = time.perf_counter()
            dx = chord.factor.solve(rhs)
            stats.factorization_time_s += time.perf_counter() - start
            if not np.all(np.isfinite(dx)):
                raise SingularMatrixError(
                    "sparse LU produced non-finite values (singular MPDE Jacobian; check for "
                    "floating nodes or an all-capacitive cutset)"
                )
        return dx

    def _solve_linear(
        self, jacobian, rhs: np.ndarray, stats: MPDEStats, data=None
    ) -> np.ndarray:
        stats.linear_solves += 1
        if self.options.linear_solver == "direct" and not self._matrix_free:
            if self._chord_active:
                return self._chord_solve(rhs, stats, data)
            stats.jacobian_factorizations += 1
            start = time.perf_counter()
            try:
                dx = spla.spsolve(jacobian, rhs)
            except RuntimeError as exc:
                raise SingularMatrixError(f"sparse LU failed on the MPDE Jacobian: {exc}") from exc
            finally:
                stats.factorization_time_s += time.perf_counter() - start
            if not np.all(np.isfinite(dx)):
                raise SingularMatrixError(
                    "sparse LU produced non-finite values (singular MPDE Jacobian; check for "
                    "floating nodes or an all-capacitive cutset)"
                )
            return dx

        fault_site("solver.gmres", preconditioner=self._active_preconditioner)
        builds_before = self._krylov.builds
        harmonic_before = self._krylov.harmonic_builds
        build_time_before = self._krylov.build_time_s
        solve_time_before = self._krylov.solve_time_s
        dispatch_before = self._krylov.apply_dispatch_time_s
        backsub_before = self._krylov.apply_backsub_time_s
        dx, reports = self._krylov.solve(
            jacobian,
            rhs,
            context=(jacobian, data),
            tol=self.options.gmres_tol,
            restart=self.options.gmres_restart,
            reuse=self.options.reuse_preconditioner,
            deadline=self._deadline,
        )
        stats.preconditioner_builds += self._krylov.builds - builds_before
        stats.preconditioner_harmonic_builds += (
            self._krylov.harmonic_builds - harmonic_before
        )
        stats.preconditioner_build_time_s += self._krylov.build_time_s - build_time_before
        stats.gmres_time_s += self._krylov.solve_time_s - solve_time_before
        stats.gmres_apply_dispatch_time_s += (
            self._krylov.apply_dispatch_time_s - dispatch_before
        )
        stats.gmres_backsub_time_s += self._krylov.apply_backsub_time_s - backsub_before
        stats.preconditioner_kind = self._active_preconditioner
        # Every build is used by the solve that follows it, so the per-report
        # degraded flags below cover all builds.
        for report in reports:
            stats.linear_iterations += report.iterations
            stats.linear_iteration_history.append(report.iterations)
            stats.preconditioner_degraded |= report.preconditioner_degraded
        return dx

    # -- timed evaluation wrappers -----------------------------------------------
    # The wall-time breakdown wants every device sweep accounted to
    # ``eval_time_s`` regardless of which linear mode runs; wrapping here
    # (rather than inside MPDEProblem) keeps the problem object free of
    # stats plumbing.
    def _timed_evaluate(self, x: np.ndarray, source_grid, stats: MPDEStats):
        start = time.perf_counter()
        try:
            return self._evaluate(x, source_grid)
        finally:
            stats.eval_time_s += time.perf_counter() - start

    def _timed_residual(
        self, x: np.ndarray, source_grid, stats: MPDEStats
    ) -> np.ndarray:
        start = time.perf_counter()
        try:
            return self.problem.residual(x, source_grid=source_grid)
        finally:
            stats.eval_time_s += time.perf_counter() - start

    # -- Newton loop -----------------------------------------------------------------
    def _newton(
        self,
        x0: np.ndarray,
        stats: MPDEStats,
        *,
        source_grid: np.ndarray | None = None,
        max_iterations: int | None = None,
        newton_options: NewtonOptions | None = None,
    ) -> tuple[np.ndarray, bool]:
        opts = newton_options if newton_options is not None else self.options.newton
        max_iter = max_iterations if max_iterations is not None else opts.max_iterations
        x = np.asarray(x0, dtype=float).copy()
        self._last_iterate = x

        if self._chord_active:
            if source_grid is None and self._pending_chord_state is not None:
                # Resuming from a checkpoint: rebuild the chord cache exactly
                # as the interrupted solve left it, so the resumed trajectory
                # is bitwise identical to the uninterrupted one.
                state = self._pending_chord_state
                self._pending_chord_state = None
                self._chord.restore_state(
                    state, lambda x_at: self._chord_refactor(x_at, stats)
                )
            else:
                # Every Newton run (the main solve, and each continuation
                # stage) starts from a fresh factorisation: a factor left
                # over from a different embedding is a poor chord matrix and
                # can burn a tight iteration budget before the refresh
                # policy notices.
                self._chord.invalidate()

        residual, jacobian, data = self._timed_evaluate(x, source_grid, stats)
        res_norm = float(np.max(np.abs(residual)))
        stats.residual_history.append(res_norm)
        if source_grid is None:
            # Iteration-boundary checkpoint (the continuation stages solve
            # embedded problems whose iterates are not resume points of the
            # real one, so only the un-embedded runs record).
            self._record_checkpoint(x, stats, res_norm)

        for _iteration in range(1, max_iter + 1):
            self._deadline.check("newton", partial_stats=stats)
            if res_norm <= opts.abstol:
                stats.residual_norm = res_norm
                return x, True
            fault_site("solver.linear_solve", iteration=_iteration - 1)
            dx = self._solve_linear(jacobian, -residual, stats, data)
            step_norm = float(np.max(np.abs(dx)))
            if np.isfinite(opts.max_step_norm) and step_norm > opts.max_step_norm:
                dx *= opts.max_step_norm / step_norm

            damping = opts.damping
            accepted = False
            while damping >= opts.min_damping:
                x_trial = x + damping * dx
                residual_trial = self._timed_residual(x_trial, source_grid, stats)
                trial_norm = float(np.max(np.abs(residual_trial)))
                if np.isfinite(trial_norm) and trial_norm < res_norm * (1.0 + 1e-12):
                    accepted = True
                    break
                damping *= 0.5
            if not accepted:
                x_trial = x + opts.min_damping * dx
                residual_trial = self._timed_residual(x_trial, source_grid, stats)
                trial_norm = float(np.max(np.abs(residual_trial)))

            if self._chord_active:
                if accepted and res_norm > 0.0:
                    self._chord.record_step(trial_norm / res_norm)
                elif not accepted:
                    # The stale factorisation failed to produce a descent
                    # direction; force a refactorisation for the next step.
                    self._chord.invalidate()

            update_norm = float(np.max(np.abs(x_trial - x)))
            x = x_trial
            self._last_iterate = x
            stats.newton_iterations += 1
            res_norm = trial_norm
            stats.residual_history.append(res_norm)
            if source_grid is None:
                self._record_checkpoint(x, stats, res_norm)
            _LOG.debug(
                "MPDE newton iter=%d residual=%.3e update=%.3e damping=%.3g",
                stats.newton_iterations,
                res_norm,
                update_norm,
                damping,
            )

            x_scale = float(np.max(np.abs(x))) if x.size else 0.0
            if res_norm <= opts.abstol and update_norm <= opts.reltol * x_scale + opts.abstol:
                stats.residual_norm = res_norm
                return x, True

            # Re-evaluate residual and Jacobian at the accepted iterate.  In
            # chord mode the line search already evaluated the residual at
            # the accepted iterate and no Jacobian data is needed up front.
            if self._chord_active:
                residual, jacobian, data = residual_trial, None, x
            else:
                residual, jacobian, data = self._timed_evaluate(x, source_grid, stats)
            res_norm = float(np.max(np.abs(residual)))

        stats.residual_norm = res_norm
        if res_norm <= opts.abstol:
            return x, True
        if self._chord_active:
            # Part of the iteration budget went to stale-factorisation chord
            # steps, which is not a fair convergence verdict.  Mirror the
            # transient layer's chord fallback: retry the run with a fresh
            # factorisation at every iterate before reporting failure, so
            # robustness matches ``chord_newton=False`` exactly.
            _LOG.debug(
                "chord Newton run stalled (residual %.3e); retrying with per-iterate "
                "factorisation",
                res_norm,
            )
            self._chord_suspended = True
            try:
                return self._newton(
                    x0,
                    stats,
                    source_grid=source_grid,
                    max_iterations=max_iterations,
                    newton_options=newton_options,
                )
            finally:
                self._chord_suspended = False
        return x, False

    # -- continuation fallback -----------------------------------------------------------
    class _SweepStage:
        """Adapter giving :func:`continuation_sweep` its per-stage protocol."""

        __slots__ = ("x", "converged", "iterations", "residual_norm")

        def __init__(self, x, converged, residual_norm):
            self.x = x
            self.converged = converged
            # Newton iterations are accumulated directly into the solver's
            # MPDEStats by ``_newton``; the sweep's own counter stays zero
            # so the cost is not double-booked.
            self.iterations = 0
            self.residual_norm = residual_norm

    def _continuation(self, x0: np.ndarray, stats: MPDEStats) -> np.ndarray:
        """Source-stepping continuation via the shared adaptive sweep driver."""
        stats.used_continuation = True

        def solve_at(lam: float, x_guess: np.ndarray) -> "MPDESolver._SweepStage":
            source_grid = self.problem.embedded_source_grid(lam)
            x_sol, converged = self._newton(x_guess, stats, source_grid=source_grid)
            return MPDESolver._SweepStage(x_sol, converged, stats.residual_norm)

        result = continuation_sweep(
            solve_at,
            np.asarray(x0, dtype=float).copy(),
            self.options.continuation,
            deadline=self._deadline,
        )
        stats.continuation_steps += result.steps
        return result.x

    # -- initial guess -----------------------------------------------------------------------
    def _initial_guess(self, mode: str | None = None) -> np.ndarray:
        mode = mode if mode is not None else self.options.initial_guess
        if mode == "zero":
            return self.problem.initial_guess_zero()
        if mode == "dc":
            x_dc = dc_operating_point(self.problem.mna).x
            return self.problem.initial_guess_from_state(x_dc)
        if mode == "transient":
            # A short settling transient (a few fast periods) often lands much
            # closer to the steady state than the DC point for switching
            # circuits; the final state is tiled over the grid.
            from ..analysis.transient import run_transient  # local import to avoid cycles

            period = self.problem.grid.period_fast
            result = run_transient(
                self.problem.mna,
                t_stop=5.0 * period,
                dt=period / max(20, self.options.n_fast),
            )
            return self.problem.initial_guess_from_state(result.final_state())
        raise MPDEError(f"unknown initial_guess mode {mode!r}")

    # -- checkpoint/resume -------------------------------------------------------------------
    def _fingerprint(self) -> str:
        """Identity hash of this solve (circuit, grid, discretisation, solver)."""
        opts = self.options
        grid = self.problem.grid
        return solve_fingerprint(
            "mpde",
            circuit=self.problem.mna.circuit.name,
            unknowns=list(self.problem.mna.unknown_names),
            n_fast=opts.n_fast,
            n_slow=opts.n_slow,
            period_fast=grid.period_fast,
            period_slow=grid.period_slow,
            fast_method=opts.fast_method,
            slow_method=opts.slow_method,
            linear_solver=opts.linear_solver,
            matrix_free=opts.matrix_free,
            preconditioner=opts.preconditioner,
            chord_newton=opts.chord_newton,
        )

    def _record_checkpoint(
        self, x: np.ndarray, stats: MPDEStats, residual_norm: float
    ) -> None:
        """Snapshot the accepted iterate (iteration-boundary consistency).

        Always kept in memory (attached to deadline / terminal failures);
        additionally persisted atomically when ``options.checkpoint_path``
        is set.
        """
        chord_state = self._chord.capture_state() if self._chord_active else None
        self._checkpoint = SolveCheckpoint(
            fingerprint=self._solve_fingerprint,
            stage="newton",
            iterate=np.array(x, copy=True),
            newton_iterations=stats.newton_iterations,
            residual_norm=float(residual_norm),
            chord_state=chord_state,
            recovery_trace=list(stats.recovery_trace),
            stats=dataclasses.asdict(stats),
        )
        if self.options.checkpoint_path:
            self._checkpoint.save(self.options.checkpoint_path)

    # -- public API -------------------------------------------------------------------------------
    def solve(
        self,
        x0: np.ndarray | None = None,
        *,
        resume_from: "SolveCheckpoint | str | os.PathLike | None" = None,
    ) -> MPDEResult:
        """Solve the MPDE and return an :class:`MPDEResult`.

        Parameters
        ----------
        x0:
            Optional flattened initial guess of length ``P * n`` (or a single
            circuit state of length ``n``, which is tiled over the grid).
            When omitted, the guess selected by ``options.initial_guess`` is
            used.
        resume_from:
            A :class:`~repro.resilience.checkpoint.SolveCheckpoint` (or the
            path of one persisted via ``options.checkpoint_path``) recorded
            by an interrupted solve of *this same problem*.  The checkpoint
            fingerprint is validated (:class:`CheckpointError` on mismatch),
            its iterate becomes the initial guess (unless an explicit ``x0``
            overrides it) and, in chord-Newton mode, the chord cache state
            is restored — so a deadline-split direct-mode solve converges
            bit-for-bit to the uninterrupted answer.
        """
        stats = MPDEStats(
            n_grid_points=self.problem.n_grid_points,
            n_total_unknowns=self.problem.n_total_unknowns,
        )
        if self._parallel_resolution is not None:
            # Parallel was requested; record up front why it resolved to
            # serial (if it did) — a supervised pool failure during the
            # solve overrides this after the solve (first reason wins).
            stats.parallel_fallback_reason = self._parallel_resolution.fallback_reason
        if self._chord is not None:
            self._chord.invalidate()
        self._deadline = Deadline(self.options.deadline_s)
        self._preconditioner_override = None
        self._last_iterate = None
        self._solve_fingerprint = self._fingerprint()
        self._checkpoint = None
        self._pending_chord_state = None
        if resume_from is not None:
            if isinstance(resume_from, (str, os.PathLike)):
                resume_from = SolveCheckpoint.load(resume_from)
            resume_from.validate(self._solve_fingerprint)
            if x0 is None:
                x0 = np.array(resume_from.iterate, copy=True)
            if resume_from.chord_state is not None and self._chord is not None:
                self._pending_chord_state = dict(resume_from.chord_state)
        # Per-solve supervisor episode: snapshot each pool supervisor's
        # trace length now, slice the new events off afterwards.
        supervisors = [self.problem.mna.supervisor]
        if self._factor_service is not None:
            supervisors.append(self._factor_service.supervisor)
        trace_marks = [len(sup.trace) for sup in supervisors]
        start = time.perf_counter()

        if x0 is None:
            x_start = self._initial_guess()
        else:
            x0 = np.asarray(x0, dtype=float)
            if x0.size == self.problem.n_circuit_unknowns:
                x_start = self.problem.initial_guess_from_state(x0)
            else:
                x_start = x0.ravel().copy()
                if x_start.size != self.problem.n_total_unknowns:
                    raise MPDEError(
                        f"initial guess has {x_start.size} entries, expected "
                        f"{self.problem.n_total_unknowns} (or {self.problem.n_circuit_unknowns})"
                    )

        try:
            if self.options.recovery.enabled:
                x = self._solve_with_recovery(x_start, stats)
            else:
                x = self._solve_legacy(x_start, stats)
        except DeadlineExceededError as exc:
            if exc.partial_stats is None:
                exc.partial_stats = stats
            if exc.checkpoint is None:
                exc.checkpoint = self._checkpoint
            raise
        except AnalysisError as exc:
            # Exhausted-ladder / terminal failures carry the latest
            # iteration-boundary checkpoint too, so even a failed solve's
            # progress can seed a retry — and the partial stats, so work
            # done (and pool heals absorbed) before the failure stays
            # visible to retry layers above.
            if exc.checkpoint is None:
                exc.checkpoint = self._checkpoint
            if getattr(exc, "partial_stats", None) is None:
                exc.partial_stats = stats
            raise
        finally:
            stats.wall_time_seconds = time.perf_counter() - start
            # Merge this solve's supervisor events chronologically and
            # derive the per-solve fallback reason: the *first* reason any
            # healing / disabling event implied wins; with no events, the
            # sticky pool states (a budget exhausted in an earlier solve)
            # override the upfront environment reason.
            events = []
            for sup, mark in zip(supervisors, trace_marks):
                events.extend(sup.trace[mark:])
            events.sort(key=lambda event: event.at_s)
            stats.supervisor_trace = events
            first_reason = next(
                (event.reason for event in events if event.reason), ""
            )
            if first_reason:
                stats.parallel_fallback_reason = first_reason
            else:
                if (
                    self._factor_service is not None
                    and self._factor_service.fallback_reason
                ):
                    stats.parallel_fallback_reason = self._factor_service.fallback_reason
                if self.options.parallel and self.problem.mna.sharding_disabled_reason:
                    stats.parallel_fallback_reason = (
                        self.problem.mna.sharding_disabled_reason
                    )

        stats.converged = True
        states = self.problem.reshape_states(x)
        gridded = self.problem.grid.reshape_to_grid(states)
        return MPDEResult(states=gridded, problem=self.problem, stats=stats)

    def _solve_legacy(self, x_start: np.ndarray, stats: MPDEStats) -> np.ndarray:
        """Pre-resilience solve path (``recovery.enabled=False``)."""
        x, converged = self._newton(x_start, stats)
        if not converged and self.options.use_continuation:
            _LOG.info(
                "plain Newton failed on the MPDE system (residual %.3e); falling back to "
                "source-stepping continuation",
                stats.residual_norm,
            )
            x = self._continuation(x_start, stats)
            converged = True
        if not converged:
            raise self._attach_terminal_diagnostics(
                ConvergenceError(
                    "MPDE Newton iteration did not converge and continuation is disabled "
                    f"(residual norm {stats.residual_norm:.3e})",
                    iterations=stats.newton_iterations,
                    residual_norm=stats.residual_norm,
                ),
                "divergence",
            )
        return x

    # -- recovery escalation ladder ----------------------------------------------------
    def _solve_with_recovery(self, x_start: np.ndarray, stats: MPDEStats) -> np.ndarray:
        """Baseline Newton attempt plus the configured escalation ladder.

        Every failed attempt is classified
        (:func:`~repro.resilience.taxonomy.classify_failure`) and the ladder
        rungs are tried in policy order, each recorded in
        ``stats.recovery_trace``.  A rung that does not apply to the current
        failure kind (or the solver configuration) is recorded as skipped.
        :class:`DeadlineExceededError` is terminal and never recovered.
        """
        policy = self.options.recovery
        x, failure = self._ladder_attempt(
            stats, "baseline", "", lambda: self._newton(x_start, stats)
        )
        if failure is None:
            return x
        attempts = 0
        for rung in policy.ladder:
            if failure is None:
                break
            if attempts >= policy.max_attempts:
                _LOG.info(
                    "recovery ladder stopping: max_attempts=%d reached", policy.max_attempts
                )
                break
            self._deadline.check("recovery", partial_stats=stats)
            kind = classify_failure(failure)
            applicable, why = self._rung_applicability(rung, kind)
            if not applicable:
                stats.recovery_trace.append(
                    RecoveryAttempt(rung=rung, trigger=kind, outcome="skipped", detail=why)
                )
                continue
            _LOG.info(
                "recovery ladder: %s failure (%s); escalating to rung %r",
                kind,
                failure,
                rung,
            )
            x, failure, attempts = self._execute_rung(
                rung, kind, x_start, stats, attempts, policy
            )
        if failure is not None:
            raise self._attach_terminal_diagnostics(failure, classify_failure(failure))
        return x

    def _ladder_attempt(self, stats, rung, trigger, runner, detail=""):
        """Run one solve attempt, recording it in the recovery trace.

        Returns ``(x, failure)``: on success ``failure`` is None and the
        attempt is recorded as ``recovered`` (baseline successes are not
        recorded — the trace documents failures and their handling); on
        failure ``x`` is None and ``failure`` is the classified exception (a
        non-raising non-converged Newton run is wrapped in a
        :class:`ConvergenceError` so every failure has one representation).
        """
        started = time.perf_counter()
        failure = None
        x = None
        try:
            x, converged = runner()
            if not converged:
                failure = ConvergenceError(
                    "MPDE Newton iteration did not converge "
                    f"(residual norm {stats.residual_norm:.3e})",
                    iterations=stats.newton_iterations,
                    residual_norm=stats.residual_norm,
                )
        except DeadlineExceededError:
            raise
        except AnalysisError as exc:
            failure = exc
        duration = time.perf_counter() - started
        if failure is not None:
            stats.recovery_trace.append(
                RecoveryAttempt(
                    rung=rung,
                    trigger=trigger,
                    outcome="failed",
                    detail=detail or str(failure),
                    duration_s=duration,
                )
            )
            return None, failure
        if rung != "baseline":
            stats.recovery_trace.append(
                RecoveryAttempt(
                    rung=rung,
                    trigger=trigger,
                    outcome="recovered",
                    detail=detail,
                    duration_s=duration,
                )
            )
            stats.recovered_by = rung
            _LOG.info("recovery ladder: rung %r recovered the solve", rung)
        return x, None

    def _rung_applicability(self, rung: str, kind: str) -> tuple[bool, str]:
        """Whether ``rung`` can address a failure of ``kind`` here."""
        gmres_mode = self.options.linear_solver == "gmres" or self._matrix_free
        if rung == "newton_refresh":
            if kind not in ("singular", "gmres_stagnation"):
                return False, f"not applicable to {kind} failures"
            if self._chord is None and not gmres_mode:
                return False, "no cached factorisation or preconditioner to refresh"
            return True, ""
        if rung == "damping":
            if kind in ("divergence", "singular", "gmres_stagnation", "non_finite"):
                return True, ""
            return False, f"not applicable to {kind} failures"
        if rung == "preconditioner_downgrade":
            if not gmres_mode:
                return False, "direct solver uses no preconditioner"
            if downgrade_preconditioner_kind(self._active_preconditioner) is None:
                return False, f"no downgrade below {self._active_preconditioner!r}"
            return True, ""
        if rung == "continuation":
            if not self.options.use_continuation:
                return False, "use_continuation=False"
            return True, ""
        if rung == "guess_retry":
            modes = [
                m for m in self.options.recovery.guess_modes
                if m != self.options.initial_guess
            ]
            if not modes:
                return False, "no alternative initial-guess modes configured"
            return True, ""
        return False, f"unknown rung {rung!r}"  # unreachable: policy validates

    def _execute_rung(self, rung, kind, x_start, stats, attempts, policy):
        """Run one ladder rung; returns ``(x, failure, attempts)``."""
        if rung == "newton_refresh":
            attempts += 1

            def run_refresh():
                # Drop every cached factorisation and solve with full Newton
                # (chord suspended → refactor at each iterate; GMRES cache
                # cleared → fresh preconditioner at the current iterate).
                if self._chord is not None:
                    self._chord.invalidate()
                self._krylov.cached = None
                suspended = self._chord_suspended
                self._chord_suspended = True
                try:
                    return self._newton(x_start, stats)
                finally:
                    self._chord_suspended = suspended

            return (
                *self._ladder_attempt(
                    stats,
                    rung,
                    kind,
                    run_refresh,
                    detail="caches dropped; full Newton refresh",
                ),
                attempts,
            )

        if rung == "damping":
            attempts += 1
            base = self.options.newton
            damping = base.damping * policy.damping_factor
            damped = base.with_(
                damping=damping,
                min_damping=min(base.min_damping, damping / 1024.0),
                max_iterations=base.max_iterations + policy.damping_extra_iterations,
            )
            return (
                *self._ladder_attempt(
                    stats,
                    rung,
                    kind,
                    lambda: self._newton(x_start, stats, newton_options=damped),
                    detail=(
                        f"damping {base.damping:g} -> {damping:g}, "
                        f"max_iterations {base.max_iterations} -> {damped.max_iterations}"
                    ),
                ),
                attempts,
            )

        if rung == "preconditioner_downgrade":
            # Walk the downgrade chain one step per attempt until the solve
            # recovers, the chain bottoms out, or the attempt budget is spent.
            x, failure = None, _sentinel_failure
            while attempts < policy.max_attempts:
                current = self._active_preconditioner
                weaker = downgrade_preconditioner_kind(current)
                if weaker is None:
                    break
                attempts += 1
                self._preconditioner_override = weaker
                self._krylov.cached = None
                x, failure = self._ladder_attempt(
                    stats,
                    rung,
                    kind,
                    lambda: self._newton(x_start, stats),
                    detail=f"preconditioner {current} -> {weaker}",
                )
                if failure is None:
                    return x, None, attempts
                kind = classify_failure(failure)
            if failure is _sentinel_failure:  # chain already exhausted
                return None, ConvergenceError("preconditioner downgrade chain exhausted"), attempts
            return x, failure, attempts

        if rung == "continuation":
            attempts += 1

            def run_continuation():
                return self._continuation(x_start, stats), True

            return (
                *self._ladder_attempt(
                    stats, rung, kind, run_continuation, detail="source-stepping continuation"
                ),
                attempts,
            )

        if rung == "guess_retry":
            modes = [
                m for m in self.options.recovery.guess_modes
                if m != self.options.initial_guess
            ]
            x, failure = None, _sentinel_failure
            for mode in modes:
                if attempts >= policy.max_attempts:
                    break
                attempts += 1
                try:
                    x_retry = self._initial_guess(mode)
                except AnalysisError as exc:
                    stats.recovery_trace.append(
                        RecoveryAttempt(
                            rung=rung,
                            trigger=kind,
                            outcome="failed",
                            detail=f"initial guess {mode!r} failed: {exc}",
                        )
                    )
                    failure = exc
                    continue
                x, failure = self._ladder_attempt(
                    stats,
                    rung,
                    kind,
                    lambda: self._newton(x_retry, stats),
                    detail=f"retry from {mode!r} initial guess",
                )
                if failure is None:
                    return x, None, attempts
                kind = classify_failure(failure)
            if failure is _sentinel_failure:
                return None, ConvergenceError("no alternative initial guesses left"), attempts
            return x, failure, attempts

        raise MPDEError(f"unknown recovery rung {rung!r}")  # pragma: no cover

    def _attach_terminal_diagnostics(self, exc, kind: str):
        """Best-effort failure localisation attached to the terminal error."""
        try:
            x_last = self._last_iterate
            residual = (
                self.problem.residual(x_last, source_grid=None)
                if x_last is not None
                else None
            )
            diagnostics = build_failure_diagnostics(
                self.problem.mna, x_last, residual, kind
            )
        except Exception:  # diagnostics must never mask the real failure
            diagnostics = None
        return attach_diagnostics(exc, diagnostics)


def solve_mpde(
    mna: MNASystem,
    scales: ShearedTimeScales | UnshearedTimeScales,
    options: MPDEOptions | None = None,
    *,
    x0: np.ndarray | None = None,
    resume_from: "SolveCheckpoint | str | os.PathLike | None" = None,
    checkpoint_path: str | os.PathLike | None = None,
) -> MPDEResult:
    """One-call driver: discretise the MPDE and solve it.

    This is the main entry point of the library::

        scales = ShearedTimeScales.from_frequencies(f_lo, f_rf, lo_multiple=2)
        result = solve_mpde(circuit.compile(), scales, MPDEOptions(n_fast=40, n_slow=30))
        baseband = result.baseband_envelope("outp", node_neg="outn")

    ``checkpoint_path`` persists iteration-boundary
    :class:`~repro.resilience.checkpoint.SolveCheckpoint` snapshots there
    (atomic rename; shorthand for ``MPDEOptions.checkpoint_path``);
    ``resume_from`` continues an interrupted solve from a checkpoint object
    or persisted file — see :meth:`MPDESolver.solve`.
    """
    if checkpoint_path is not None:
        options = dataclasses.replace(
            options if options is not None else MPDEOptions(),
            checkpoint_path=os.fspath(checkpoint_path),
        )
    problem = MPDEProblem(mna, scales, options)
    solver = MPDESolver(problem, options)
    try:
        return solver.solve(x0=x0, resume_from=resume_from)
    finally:
        # The one-call driver abandons the solver on return, so release its
        # worker-resident factor service deterministically instead of
        # waiting for the garbage collector to break the solver/krylov
        # reference cycle.
        solver.close()
