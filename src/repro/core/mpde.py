"""Discretisation of the multi-time partial differential equation (MPDE).

Starting from the circuit DAE ``d/dt q(x) + f(x) + b(t) = 0``, the MPDE
(Eq. (4) of the paper) reads

    d q(x_hat)/dt1 + d q(x_hat)/dt2 + f(x_hat) + b_hat(t1, t2) = 0

with periodic boundary conditions in both artificial times.  Any solution
``x_hat(t1, t2)`` yields a solution of the original equations through the
diagonal ``x(t) = x_hat(t, t)``.

:class:`MPDEProblem` assembles the discrete form of this equation on a
:class:`~repro.core.grid.MultiTimeGrid`:

* the unknown is the flattened array ``X`` of shape ``(P, n)`` (``P`` grid
  points, ``n`` circuit unknowns),
* the time derivatives are applied with sparse periodic differentiation
  matrices acting on the grid-point index,
* the excitation grid ``B_hat`` is built once from the circuit's stimuli via
  the sheared time-scale map (:mod:`repro.core.timescales`),
* the residual and the sparse Jacobian

      R(X) = D (q per point) + f per point + B_hat
      J(X) = (D  kron  I_n) . blockdiag(C_p) + blockdiag(G_p)

  are produced for the Newton solver in :mod:`repro.core.solver`.

The ``"fourier"`` differentiation option on both axes turns the very same
machinery into a two-tone harmonic-balance solver (spectral collocation in
both artificial times), which the benchmarks use for the HB comparison.

Performance architecture (symbolic-once assembly)
-------------------------------------------------
The Jacobian ``J = (D kron I_n) . blockdiag(C_p) + blockdiag(G_p)`` has a
structure fixed by the grid operator ``D`` and the circuit's compiled stamp
patterns; only the numeric values of the per-point blocks change between
Newton iterations.  At construction the problem therefore precomputes

* the merged CSC skeleton of ``J`` and the scatter map of every contribution
  onto it (:class:`~repro.linalg.sparse.CollocationJacobianAssembler`), and
* block-diagonal CSR index structures for ``blockdiag(C_p)`` /
  ``blockdiag(G_p)`` (:class:`~repro.linalg.sparse.BlockDiagStructure`).

Per Newton iteration, ``residual_and_jacobian`` runs one sparse device sweep
(``MNASystem.evaluate_sparse``) and one vectorised scatter — no dense
``(P, n, n)`` stacks, no ``kron`` products, no COO->CSR conversions.
Residual-only calls (line search, continuation ramping) use the
``need_jacobian=False`` device fast path.  ``jacobian_operator`` exposes the
same Jacobian *matrix-free* as ``v -> (D kron I)(C_blk v) + G_blk v`` for the
Krylov solver, with ``averaged_jacobian`` providing the frequency-independent
(grid-averaged) preconditioner matrix in the spirit of
Telichevesky/Kundert/White (DAC 1995).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..circuits.mna import MNASystem
from ..linalg.preconditioners import (
    PRECONDITIONER_KINDS,
    ILUPreconditioner,
    IdentityPreconditioner,
    JacobiPreconditioner,
    Preconditioner,
    averaged_dense_blocks,
    averaged_matrix,
    build_averaged_preconditioner,
    circulant_eigenvalues,
)
from ..linalg.sparse import (
    BlockDiagStructure,
    CollocationJacobianAssembler,
    block_diag_from_array,
    kron_identity,
)
from ..resilience.faultinject import fault_site
from ..utils.exceptions import MPDEError
from ..utils.logging import get_logger
from ..utils.options import MPDEOptions
from .grid import MultiTimeGrid
from .timescales import ShearedTimeScales, UnshearedTimeScales

__all__ = ["MPDEProblem"]

_LOG = get_logger("core.mpde")


@dataclass
class _DiscreteOperators:
    """Cached sparse operators and symbolic structures of the discretised MPDE."""

    derivative: sp.csr_matrix  # (P, P): D1 + D2 acting on grid-point index
    derivative_kron: sp.csr_matrix  # (P*n, P*n): (D1 + D2) kron I_n
    assembler: CollocationJacobianAssembler  # symbolic structure of the Jacobian
    c_blocks: BlockDiagStructure  # blockdiag(C_p) CSR skeleton
    g_blocks: BlockDiagStructure  # blockdiag(G_p) CSR skeleton


class MPDEProblem:
    """The discretised MPDE for one circuit, one shear map and one grid.

    Parameters
    ----------
    mna:
        Compiled circuit equations.
    scales:
        A :class:`~repro.core.timescales.ShearedTimeScales` (or
        :class:`UnshearedTimeScales`) describing the artificial time axes.
    options:
        Grid resolution and discretisation choices
        (:class:`~repro.utils.options.MPDEOptions`).
    """

    def __init__(
        self,
        mna: MNASystem,
        scales: ShearedTimeScales | UnshearedTimeScales,
        options: MPDEOptions | None = None,
    ) -> None:
        self.mna = mna
        self.scales = scales
        self.options = options or MPDEOptions()
        self.grid = MultiTimeGrid(
            period_fast=scales.fast_period,
            period_slow=scales.difference_period,
            n_fast=self.options.n_fast,
            n_slow=self.options.n_slow,
        )
        self._operators = self._build_operators()
        self._source_grid = self._build_source_grid()
        self._axis_eigenvalues: tuple[np.ndarray, np.ndarray] | None = None
        # Parallel execution layer (PR 5): with ``options.parallel`` every
        # device evaluation requests the sharded kernel backend; the MNA
        # layer resolves it against the environment and records any fallback
        # (``MNASystem.parallel_fallback_reason`` -> MPDEStats).
        self._eval_kwargs: dict = (
            {"kernel_backend": "sharded", "n_workers": self.options.n_workers}
            if self.options.parallel
            else {}
        )

    # -- assembly of constant pieces -------------------------------------------
    def _build_operators(self) -> _DiscreteOperators:
        derivative = self.grid.combined_derivative(
            fast_method=self.options.fast_method,
            slow_method=self.options.slow_method,
        )
        n = self.mna.n_unknowns
        derivative_kron = kron_identity(derivative, n)
        assembler = CollocationJacobianAssembler(
            derivative, self.mna.dynamic_pattern, self.mna.static_pattern, n
        )
        c_blocks = BlockDiagStructure(self.mna.dynamic_pattern, self.grid.n_points)
        g_blocks = BlockDiagStructure(self.mna.static_pattern, self.grid.n_points)
        return _DiscreteOperators(
            derivative=derivative,
            derivative_kron=derivative_kron,
            assembler=assembler,
            c_blocks=c_blocks,
            g_blocks=g_blocks,
        )

    def _build_source_grid(self) -> np.ndarray:
        t1, t2 = self.grid.mesh
        source = self.mna.source_bivariate(t1, t2, self.scales)
        if source.shape != (self.grid.n_points, self.mna.n_unknowns):
            raise MPDEError(
                f"bivariate source grid has shape {source.shape}, expected "
                f"({self.grid.n_points}, {self.mna.n_unknowns})"
            )
        if not np.all(np.isfinite(source)):
            raise MPDEError("bivariate excitation contains non-finite values")
        return source

    # -- sizes -------------------------------------------------------------------
    @property
    def n_circuit_unknowns(self) -> int:
        """Number of circuit unknowns ``n``."""
        return self.mna.n_unknowns

    @property
    def n_grid_points(self) -> int:
        """Number of multi-time grid points ``P``."""
        return self.grid.n_points

    @property
    def n_total_unknowns(self) -> int:
        """Size of the global nonlinear system ``P * n``."""
        return self.grid.n_points * self.mna.n_unknowns

    @property
    def source_grid(self) -> np.ndarray:
        """The excitation ``b_hat`` sampled on the grid, shape ``(P, n)``."""
        return self._source_grid

    # -- residual / Jacobian -------------------------------------------------------
    def reshape_states(self, x_flat: np.ndarray) -> np.ndarray:
        """View a flat unknown vector as a ``(P, n)`` array of per-point states."""
        x_flat = np.asarray(x_flat, dtype=float)
        if x_flat.size != self.n_total_unknowns:
            raise MPDEError(
                f"flat state vector has {x_flat.size} entries, expected {self.n_total_unknowns}"
            )
        return x_flat.reshape(self.grid.n_points, self.mna.n_unknowns)

    def residual(self, x_flat: np.ndarray, *, source_grid: np.ndarray | None = None) -> np.ndarray:
        """Residual of the discretised MPDE for the flattened state ``x_flat``.

        Uses the residual-only device fast path (no Jacobian storage), which
        is what makes line searches and continuation ramps cheap.
        """
        states = self.reshape_states(x_flat)
        evaluation = self.mna.evaluate(states, need_jacobian=False, **self._eval_kwargs)
        b_grid = self._source_grid if source_grid is None else source_grid
        dq = self._operators.derivative @ evaluation.q
        return (dq + evaluation.f + b_grid).ravel()

    def residual_and_values(
        self, x_flat: np.ndarray, *, source_grid: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Residual plus the per-point Jacobian data arrays, one device sweep.

        Returns ``(residual, c_data, g_data)`` where the data arrays are
        aligned with the circuit's compiled stamp patterns and feed either
        :meth:`assemble_jacobian` (explicit sparse matrix) or
        :meth:`jacobian_operator` (matrix-free).
        """
        states = self.reshape_states(x_flat)
        evaluation = self.mna.evaluate_sparse(states, **self._eval_kwargs)
        b_grid = self._source_grid if source_grid is None else source_grid
        dq = self._operators.derivative @ evaluation.q
        residual = (dq + evaluation.f + b_grid).ravel()
        return residual, evaluation.c_data, evaluation.g_data

    def assemble_jacobian(self, c_data: np.ndarray, g_data: np.ndarray) -> sp.csc_matrix:
        """Numeric-only CSC assembly of the Jacobian from per-point data."""
        return self._operators.assembler.assemble(c_data, g_data)

    def jacobian(self, x_flat: np.ndarray) -> sp.csc_matrix:
        """Sparse Jacobian of :meth:`residual` (independent of the source grid)."""
        states = self.reshape_states(x_flat)
        evaluation = self.mna.evaluate_sparse(states, **self._eval_kwargs)
        return self.assemble_jacobian(evaluation.c_data, evaluation.g_data)

    def jacobian_dense_reference(self, x_flat: np.ndarray) -> sp.csc_matrix:
        """The seed's dense-stack Jacobian path, kept as a validation reference.

        Builds dense ``(P, n, n)`` Jacobian stacks and converts them through
        ``block_diag_from_array`` + the ``kron`` product — the hot path this
        module used to run on every Newton iteration.  Property tests and the
        assembly benchmark compare :meth:`jacobian` against it.
        """
        states = self.reshape_states(x_flat)
        evaluation = self.mna.evaluate(states)
        c_block = block_diag_from_array(evaluation.capacitance)
        g_block = block_diag_from_array(evaluation.conductance)
        return (self._operators.derivative_kron @ c_block + g_block).tocsc()

    def residual_and_jacobian(
        self, x_flat: np.ndarray, *, source_grid: np.ndarray | None = None
    ) -> tuple[np.ndarray, sp.csc_matrix]:
        """Evaluate residual and Jacobian with a single device sweep."""
        residual, c_data, g_data = self.residual_and_values(x_flat, source_grid=source_grid)
        return residual, self.assemble_jacobian(c_data, g_data)

    # -- matrix-free Jacobian ---------------------------------------------------
    def jacobian_operator(self, c_data: np.ndarray, g_data: np.ndarray) -> spla.LinearOperator:
        """Matrix-free Jacobian ``v -> (D kron I_n)(C_blk v) + G_blk v``.

        The block-diagonal factors are rebuilt from the data arrays using
        precomputed CSR skeletons (pure data relabelling); the full Jacobian
        is never formed, which is the Krylov mode the paper's reference
        (Telichevesky/Kundert/White, DAC 1995) advocates for large problems.
        """
        c_blk = self._operators.c_blocks.matrix(c_data)
        g_blk = self._operators.g_blocks.matrix(g_data)
        d_kron = self._operators.derivative_kron
        size = self.n_total_unknowns

        def matvec(v: np.ndarray) -> np.ndarray:
            return d_kron @ (c_blk @ v) + g_blk @ v

        return spla.LinearOperator((size, size), matvec=matvec, dtype=float)

    def averaged_jacobian(self, c_data: np.ndarray, g_data: np.ndarray) -> sp.csc_matrix:
        """Frequency-independent preconditioner matrix from grid-averaged blocks.

        Replaces every per-point block by its grid average
        ``C_bar = mean_p C_p`` / ``G_bar = mean_p G_p`` and assembles
        ``(D kron I) blockdiag(C_bar) + blockdiag(G_bar)`` on the cached
        symbolic structure.  Because the averages drift slowly between Newton
        iterates, an ILU of this matrix can be reused across iterations.
        """
        return averaged_matrix(self.assemble_jacobian, c_data, g_data)

    # -- preconditioning ---------------------------------------------------------
    def averaged_dense_blocks(
        self, c_data: np.ndarray, g_data: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Grid-averaged device Jacobians as dense ``(n, n)`` blocks.

        ``(C_bar, G_bar)`` are the per-harmonic building blocks of the
        block-circulant preconditioner: in the Fourier basis the averaged
        Jacobian decouples into ``(lambda1_m + lambda2_k) C_bar + G_bar``
        per harmonic ``(m, k)``.
        """
        return averaged_dense_blocks(
            self.mna.dynamic_pattern, self.mna.static_pattern, c_data, g_data
        )

    def axis_eigenvalues(self) -> tuple[np.ndarray, np.ndarray]:
        """Circulant eigenvalues of the fast- and slow-axis derivative operators.

        Both 1-D periodic differentiation matrices are circulant on the
        uniform multi-time grid, so each is diagonalised by the DFT along its
        axis; the eigenvalue arrays (ordered as :func:`numpy.fft.fft` output)
        are cached after the first call.
        """
        if self._axis_eigenvalues is None:
            fast = circulant_eigenvalues(
                self.grid.axis_matrix("fast", self.options.fast_method)
            )
            slow = circulant_eigenvalues(
                self.grid.axis_matrix("slow", self.options.slow_method)
            )
            self._axis_eigenvalues = (fast, slow)
        return self._axis_eigenvalues

    def build_preconditioner(
        self,
        kind: str,
        *,
        c_data: np.ndarray | None = None,
        g_data: np.ndarray | None = None,
        matrix: sp.spmatrix | None = None,
        eager: bool = False,
        factor_pool=None,
        factor_service=None,
    ) -> Preconditioner:
        """Build a preconditioner of the requested ``kind`` for this problem.

        ``kind`` is one of ``"ilu"``, ``"block_circulant"``,
        ``"block_circulant_fast"``, ``"jacobi"`` or ``"none"`` (see
        :class:`~repro.utils.options.MPDEOptions`).  The ILU/Jacobi modes
        factor ``matrix`` when given (the assembled Jacobian in the
        non-matrix-free GMRES mode) and otherwise the grid-averaged Jacobian
        built from ``c_data``/``g_data``; the block-circulant mode always
        works from the averaged dense blocks plus the circulant eigenvalues
        of the two axis operators, and the partially-averaged
        ``block_circulant_fast`` mode from the slow-axis means of the
        per-point data plus the fast-axis differentiation matrix itself.
        ``eager`` / ``factor_pool`` select that mode's eager (optionally
        concurrent) batch factorisation of the per-slow-harmonic LUs, and
        ``factor_service`` hands it a worker-resident
        :class:`~repro.parallel.factor_service.ResidentFactorPool` that
        factors *and applies* the harmonics in forked workers
        (``factor_backend="resident"``); other kinds ignore them.
        """
        if kind not in PRECONDITIONER_KINDS:
            raise MPDEError(
                f"unknown preconditioner kind {kind!r}; use one of {PRECONDITIONER_KINDS}"
            )
        fault_site("preconditioner.build", kind=kind)
        if kind == "none":
            return IdentityPreconditioner(self.n_total_unknowns)
        if kind in ("ilu", "jacobi") and matrix is not None:
            return ILUPreconditioner(matrix) if kind == "ilu" else JacobiPreconditioner(matrix)
        if c_data is None or g_data is None:
            if kind in ("block_circulant", "block_circulant_fast"):
                raise MPDEError(
                    f"the {kind.replace('_', '-')} preconditioner needs the per-point "
                    "Jacobian data arrays (c_data/g_data)"
                )
            raise MPDEError(
                f"preconditioner kind {kind!r} needs either an assembled matrix or "
                "the per-point Jacobian data arrays"
            )
        lam_fast, lam_slow = self.axis_eigenvalues()
        return build_averaged_preconditioner(
            kind,
            size=self.n_total_unknowns,
            dynamic_pattern=self.mna.dynamic_pattern,
            static_pattern=self.mna.static_pattern,
            c_data=c_data,
            g_data=g_data,
            eigenvalues_fast=lam_fast,
            eigenvalues_slow=lam_slow,
            assemble=self.assemble_jacobian,
            fast_operator=self.grid.axis_matrix("fast", self.options.fast_method),
            grid_shape=(self.grid.n_fast, self.grid.n_slow),
            eager=eager,
            factor_pool=factor_pool,
            factor_service=factor_service,
        )

    # -- continuation embedding -----------------------------------------------------
    def embedded_source_grid(self, lam: float) -> np.ndarray:
        """Source grid with the time-varying part scaled by ``lam``.

        Used by the continuation fallback: at ``lam = 0`` the excitation is
        flattened to its grid average (essentially a DC problem, easy for
        Newton), at ``lam = 1`` it is the true multi-time excitation.  This
        is the source-stepping homotopy the paper's Section 3 alludes to
        ("using continuation reliably obtained solutions").
        """
        if not 0.0 <= lam <= 1.0:
            raise MPDEError(f"embedding parameter must be in [0, 1], got {lam}")
        mean = self._source_grid.mean(axis=0, keepdims=True)
        return mean + lam * (self._source_grid - mean)

    def residual_for_embedding(self, lam: float) -> Callable[[np.ndarray], np.ndarray]:
        """Return a residual callable for the embedded problem at ``lam``."""
        b_grid = self.embedded_source_grid(lam)

        def _residual(x_flat: np.ndarray) -> np.ndarray:
            return self.residual(x_flat, source_grid=b_grid)

        return _residual

    # -- initial guesses ---------------------------------------------------------------
    def initial_guess_from_state(self, x0: np.ndarray) -> np.ndarray:
        """Tile a single circuit state over the whole grid (flattened)."""
        x0 = np.asarray(x0, dtype=float)
        if x0.shape != (self.mna.n_unknowns,):
            raise MPDEError(
                f"initial state must have shape ({self.mna.n_unknowns},), got {x0.shape}"
            )
        return np.tile(x0, (self.grid.n_points, 1)).ravel()

    def initial_guess_zero(self) -> np.ndarray:
        """An all-zero initial guess."""
        return np.zeros(self.n_total_unknowns)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MPDEProblem({self.mna.circuit.name!r}, grid={self.grid.n_fast}x{self.grid.n_slow}, "
            f"unknowns={self.n_total_unknowns})"
        )
