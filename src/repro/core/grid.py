"""Two-dimensional periodic multi-time grids.

The MPDE is discretised on a uniform tensor grid over one period of each
artificial time axis:

* the fast axis covers ``[0, T1)`` with ``n_fast`` samples (the LO cycle),
* the slow axis covers ``[0, Td)`` with ``n_slow`` samples (the
  difference-frequency / baseband cycle),

both with periodic boundary conditions, so the wrap-around points are not
duplicated.  The paper's balanced-mixer example uses a 40 x 30 grid — 1200
grid points in place of the >= 300 000 time steps single-time shooting needs.

Grid points are flattened in row-major order: point ``p = i * n_slow + j``
corresponds to ``(t1_i, t2_j)``.  The differentiation matrices returned by
:meth:`MultiTimeGrid.fast_derivative` / :meth:`MultiTimeGrid.slow_derivative`
act on vectors of per-point samples in that ordering.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np
import scipy.sparse as sp

from ..linalg.sparse import (
    periodic_backward_difference,
    periodic_bdf2_difference,
    periodic_central_difference,
    periodic_fourier_differentiation,
)
from ..utils.exceptions import MPDEError
from ..utils.validation import check_positive

__all__ = ["MultiTimeGrid"]

_DIFFERENTIATION = {
    "backward-euler": periodic_backward_difference,
    "bdf2": periodic_bdf2_difference,
    "central": periodic_central_difference,
    "fourier": periodic_fourier_differentiation,
}


@dataclass(frozen=True)
class MultiTimeGrid:
    """A uniform periodic grid over the two artificial time axes.

    Attributes
    ----------
    period_fast, period_slow:
        Axis periods ``T1`` and ``Td`` in seconds.
    n_fast, n_slow:
        Number of samples per axis.
    """

    period_fast: float
    period_slow: float
    n_fast: int
    n_slow: int

    def __post_init__(self) -> None:
        check_positive("period_fast", self.period_fast)
        check_positive("period_slow", self.period_slow)
        if self.n_fast < 3 or self.n_slow < 3:
            raise MPDEError("multi-time grids need at least 3 samples per axis")

    # -- geometry -------------------------------------------------------------
    @property
    def n_points(self) -> int:
        """Total number of grid points ``n_fast * n_slow``."""
        return self.n_fast * self.n_slow

    @cached_property
    def fast_axis(self) -> np.ndarray:
        """Sample positions along the fast axis, ``[0, T1)``."""
        return np.arange(self.n_fast) * (self.period_fast / self.n_fast)

    @cached_property
    def slow_axis(self) -> np.ndarray:
        """Sample positions along the slow axis, ``[0, Td)``."""
        return np.arange(self.n_slow) * (self.period_slow / self.n_slow)

    @cached_property
    def mesh(self) -> tuple[np.ndarray, np.ndarray]:
        """Flattened coordinate arrays ``(T1, T2)`` of length ``n_points``.

        Ordering matches the flattening convention ``p = i * n_slow + j``.
        """
        t1, t2 = np.meshgrid(self.fast_axis, self.slow_axis, indexing="ij")
        return t1.ravel(), t2.ravel()

    def point_index(self, i: int, j: int) -> int:
        """Flattened index of grid point ``(i, j)``."""
        if not (0 <= i < self.n_fast and 0 <= j < self.n_slow):
            raise MPDEError(
                f"grid index ({i}, {j}) out of range for a {self.n_fast} x {self.n_slow} grid"
            )
        return i * self.n_slow + j

    def reshape_to_grid(self, flat: np.ndarray) -> np.ndarray:
        """Reshape per-point data ``(n_points, ...)`` to ``(n_fast, n_slow, ...)``."""
        flat = np.asarray(flat)
        if flat.shape[0] != self.n_points:
            raise MPDEError(
                f"expected {self.n_points} leading entries, got {flat.shape[0]}"
            )
        return flat.reshape(self.n_fast, self.n_slow, *flat.shape[1:])

    def flatten_from_grid(self, gridded: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`reshape_to_grid`."""
        gridded = np.asarray(gridded)
        if gridded.shape[:2] != (self.n_fast, self.n_slow):
            raise MPDEError(
                f"expected leading shape ({self.n_fast}, {self.n_slow}), got {gridded.shape[:2]}"
            )
        return gridded.reshape(self.n_points, *gridded.shape[2:])

    # -- differentiation operators ---------------------------------------------
    def _axis_matrix(self, axis: str, method: str) -> sp.csr_matrix:
        if method not in _DIFFERENTIATION:
            raise MPDEError(
                f"unknown differentiation method {method!r}; available: {sorted(_DIFFERENTIATION)}"
            )
        builder = _DIFFERENTIATION[method]
        if axis == "fast":
            return sp.csr_matrix(builder(self.n_fast, self.period_fast))
        if axis == "slow":
            return sp.csr_matrix(builder(self.n_slow, self.period_slow))
        raise MPDEError(f"axis must be 'fast' or 'slow', got {axis!r}")

    def axis_matrix(self, axis: str, method: str) -> sp.csr_matrix:
        """The 1-D periodic differentiation matrix of one axis.

        ``axis`` is ``"fast"`` (shape ``(n_fast, n_fast)``) or ``"slow"``
        (``(n_slow, n_slow)``).  On a uniform periodic grid every supported
        rule produces a *circulant* matrix — the structure the per-harmonic
        (block-circulant) preconditioner diagonalises by FFT.
        """
        return self._axis_matrix(axis, method)

    def fast_derivative(self, method: str = "backward-euler") -> sp.csr_matrix:
        """Sparse ``(n_points, n_points)`` operator for ``d/dt1`` on flattened data."""
        d_fast = self._axis_matrix("fast", method)
        return sp.kron(d_fast, sp.identity(self.n_slow, format="csr"), format="csr")

    def slow_derivative(self, method: str = "backward-euler") -> sp.csr_matrix:
        """Sparse ``(n_points, n_points)`` operator for ``d/dt2`` on flattened data."""
        d_slow = self._axis_matrix("slow", method)
        return sp.kron(sp.identity(self.n_fast, format="csr"), d_slow, format="csr")

    def combined_derivative(
        self, fast_method: str = "backward-euler", slow_method: str = "backward-euler"
    ) -> sp.csr_matrix:
        """The MPDE derivative operator ``d/dt1 + d/dt2`` on flattened data."""
        return (self.fast_derivative(fast_method) + self.slow_derivative(slow_method)).tocsr()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MultiTimeGrid(T1={self.period_fast:.3e}s x {self.n_fast}, "
            f"Td={self.period_slow:.3e}s x {self.n_slow})"
        )
