"""Diagonal reconstruction of one-time waveforms from multi-time solutions.

The multi-time solution ``x_hat(t1, t2)`` determines the solution of the
original circuit equations through the diagonal evaluation

    x(t) = x_hat(t mod T1, t mod Td)

(the bivariate surfaces are periodic, so the modular reduction is implicit
in the periodic interpolation).  Fig. 6 of the paper shows a few LO cycles
of such a reconstructed waveform at the differential-pair source node; these
helpers produce exactly that kind of view.
"""

from __future__ import annotations

import numpy as np

from ..signals.waveform import BivariateWaveform, Waveform
from ..utils.exceptions import MPDEError

__all__ = ["reconstruct_diagonal", "reconstruct_fast_cycles", "diagonal_samples_per_period"]


def reconstruct_diagonal(
    surface: BivariateWaveform,
    t_start: float,
    t_stop: float,
    n_samples: int = 2001,
) -> Waveform:
    """Evaluate ``x(t) = x_hat(t, t)`` on a uniform grid of times.

    Uses periodic bilinear interpolation of the grid samples, so the result
    is meaningful for any time span — including spans much longer than
    either axis period.
    """
    if t_stop <= t_start:
        raise MPDEError("t_stop must be greater than t_start")
    if n_samples < 2:
        raise MPDEError("n_samples must be at least 2")
    times = np.linspace(t_start, t_stop, n_samples)
    return surface.diagonal(times)


def reconstruct_fast_cycles(
    surface: BivariateWaveform,
    t_center: float,
    n_cycles: int = 5,
    samples_per_cycle: int = 64,
) -> Waveform:
    """Reconstruct ``n_cycles`` carrier cycles centred on ``t_center``.

    This mirrors Fig. 6 of the paper, which plots the voltage at the
    differential-pair sources over 5 LO periods around t = 2.22 us.
    """
    if n_cycles < 1:
        raise MPDEError("n_cycles must be at least 1")
    if samples_per_cycle < 4:
        raise MPDEError("samples_per_cycle must be at least 4")
    span = n_cycles * surface.period1
    t_start = t_center - 0.5 * span
    t_stop = t_center + 0.5 * span
    n_samples = n_cycles * samples_per_cycle + 1
    return reconstruct_diagonal(surface, t_start, t_stop, n_samples)


def diagonal_samples_per_period(surface: BivariateWaveform, *, oversampling: int = 4) -> int:
    """A reasonable number of diagonal samples to resolve one slow period.

    The diagonal waveform oscillates at the carrier rate, so resolving one
    slow (difference-frequency) period requires on the order of
    ``oversampling * Td / T1`` samples; this helper computes that number so
    callers do not under-sample the reconstruction by accident.
    """
    if oversampling < 1:
        raise MPDEError("oversampling must be at least 1")
    ratio = surface.period2 / surface.period1
    return int(np.ceil(oversampling * ratio)) + 1
