"""Preconditioners for the matrix-free MPDE / harmonic-balance Krylov solves.

The matrix-free Newton mode never assembles the MPDE Jacobian

    J = (D kron I_n) . blockdiag(C_p) + blockdiag(G_p)

so GMRES convergence is entirely determined by the preconditioner.  This
module collects the available choices behind one small :class:`Preconditioner`
protocol:

* :class:`ILUPreconditioner` — drop-tolerance incomplete LU of an assembled
  (typically grid-averaged) matrix; the general-purpose default.  When the
  factorisation fails it degrades to Jacobi, emits a warning and flags itself
  as ``degraded`` so callers can surface the weakened preconditioning.
* :class:`BlockCirculantPreconditioner` — the structure-exploiting choice for
  the periodic (circulant) differentiation operators.  Replacing every
  per-point device block by its grid average turns the Jacobian into

      J_avg = D kron C_bar + I_P kron G_bar

  and because every periodic differentiation matrix on a uniform grid is
  circulant, the multi-dimensional FFT diagonalises ``D`` exactly.  In the
  Fourier basis ``J_avg`` falls apart into one small complex ``(n, n)`` block

      B_{mk} = (lambda1_m + lambda2_k) C_bar + G_bar

  per harmonic (mixing product) ``(m, k)`` — the frequency-domain
  preconditioner classically used for harmonic balance.  Applying the
  preconditioner is two FFTs plus ``P`` tiny back-substitutions, and unlike
  an ILU it solves the averaged operator *exactly*, which is what makes it
  effective for the spectral (``fourier``) MPDE operators where the averaged
  matrix is dense-ish and drop-tolerance ILU degrades badly.
* :class:`BlockCirculantFastPreconditioner` — the *partially-averaged*
  refinement of the block-circulant mode.  Averaging over both grid axes is a
  poor model for strongly LO-switched circuits, where the device operating
  points (and hence the Jacobian blocks) swing hard within one fast (LO)
  cycle; the averaged-vs-true Jacobian distance, not preconditioner quality,
  then limits GMRES.  This mode averages the per-point blocks only along the
  *slow* axis, so the preconditioned operator

      J_pa = (D1 kron I_ns kron I_n) blkdiag(C_i) + (I_nf kron D2 kron I_n)
             blkdiag(C_i) + blkdiag(G_i)

  keeps one block ``(C_i, G_i)`` per fast point ``i``.  Only the slow axis is
  still constant-coefficient (circulant), so only the slow axis is
  FFT-diagonalised; per slow harmonic ``k`` that leaves one sparse complex
  system of size ``n_fast * n``

      B_k = (D1 kron I_n) blkdiag(C_i) + mu_k blkdiag(C_i) + blkdiag(G_i)

  which is LU-factored *lazily* on first use (and only for the first
  ``n_slow // 2 + 1`` harmonics — conjugate symmetry of real data supplies
  the rest for free).  The PR-5 *eager* mode batch-factors the same
  ``n_slow // 2 + 1`` independent systems at construction — optionally
  fanned out over a :class:`~repro.parallel.pool.WorkerPool`, since the
  factorisations share nothing — with applies and counts identical to the
  lazy path.  Like the fully-averaged mode it is rebuilt fresh at
  every Newton iterate: a build is a handful of sparse LUs (a few GMRES
  iterations' worth of back-substitutions), while iterating against a stale
  instance costs far more — precisely *because* the mode is tailored to the
  per-fast-point operating points, one Newton step can invalidate it
  entirely (measured on the 36x18 LO-switched balanced mixer: 2578 total
  GMRES iterations cached under the refresh policy vs 362 rebuilt fresh).
  The factorisation effort stays observable through
  :attr:`BlockCirculantFastPreconditioner.harmonic_factorizations` and
  ``MPDEStats.preconditioner_harmonic_builds``.
* :class:`JacobiPreconditioner` — diagonal scaling; the cheap fallback.
* :class:`IdentityPreconditioner` — no preconditioning (``"none"`` mode).

:class:`AdaptiveRefreshPolicy` implements the staleness heuristic used by the
MPDE solver to decide *when* to rebuild a cached preconditioner: instead of
waiting for an outright GMRES failure, it tracks the per-solve inner
iteration counts and requests a rebuild as soon as the trend degrades past a
threshold relative to the first solve after the last build.
"""

from __future__ import annotations

import time
from typing import Callable, Protocol, runtime_checkable

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..utils.logging import get_logger
from ..utils.options import PRECONDITIONER_KINDS
from .sparse import BlockDiagStructure, kron_identity

__all__ = [
    "PRECONDITIONER_KINDS",
    "PRECONDITIONER_DOWNGRADES",
    "downgrade_preconditioner_kind",
    "Preconditioner",
    "ILUPreconditioner",
    "JacobiPreconditioner",
    "BlockCirculantPreconditioner",
    "BlockCirculantFastPreconditioner",
    "IdentityPreconditioner",
    "AdaptiveRefreshPolicy",
    "averaged_dense_blocks",
    "averaged_matrix",
    "build_averaged_preconditioner",
    "circulant_eigenvalues",
    "factor_harmonic_system",
    "slow_averaged_data",
]

_LOG = get_logger("linalg.preconditioners")

#: The recovery ladder's preconditioner downgrade chain: each mode maps to
#: the *more robust but slower* mode the ``"preconditioner_downgrade"``
#: rung retries with.  The partially-averaged mode falls back to the fully
#: averaged one (less aggressive approximation), which falls back to ILU
#: (no structural assumptions at all).  Modes absent from the map have no
#: meaningful downgrade.
PRECONDITIONER_DOWNGRADES = {
    "block_circulant_fast": "block_circulant",
    "block_circulant": "ilu",
    "jacobi": "ilu",
}


def downgrade_preconditioner_kind(kind: str) -> str | None:
    """Next rung of the downgrade chain for ``kind``, or ``None`` at the end."""
    return PRECONDITIONER_DOWNGRADES.get(kind)


@runtime_checkable
class Preconditioner(Protocol):
    """What the Krylov layer expects from a preconditioner.

    A preconditioner approximates ``A^{-1}`` for the system matrix ``A``:
    :meth:`solve` applies that approximation to a vector.  ``degraded`` is
    True when a fallback weakened the approximation (e.g. an ILU that failed
    to factor and fell back to Jacobi), so solvers and tests can detect
    silently-degraded preconditioning through
    :attr:`~repro.linalg.krylov.GMRESReport.preconditioner_degraded`.
    """

    kind: str
    shape: tuple[int, int]
    degraded: bool
    cheap_rebuild: bool

    def solve(self, vector: np.ndarray) -> np.ndarray:
        """Apply the approximate inverse to ``vector``."""
        ...

    def as_operator(self) -> spla.LinearOperator:
        """The preconditioner as a SciPy ``LinearOperator`` (for ``gmres``)."""
        ...


class _PreconditionerBase:
    """Shared plumbing: shape bookkeeping and the ``LinearOperator`` view."""

    kind: str = "base"
    #: Whether rebuilding from fresh Jacobian data costs no more than a few
    #: operator applications.  Caching a preconditioner across Newton
    #: iterations trades accuracy (stale data) for factorisation time, so the
    #: solver only caches when the build is expensive (``False``, e.g. ILU);
    #: cheap preconditioners are rebuilt fresh at every Newton iterate.
    cheap_rebuild: bool = True

    def __init__(self, size: int) -> None:
        self.shape = (int(size), int(size))
        self.degraded = False

    def solve(self, vector: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    # ``matvec`` mirrors ``LinearOperator`` so existing call sites (and tests)
    # that treated the ILU preconditioner as an operator keep working.
    def matvec(self, vector: np.ndarray) -> np.ndarray:
        """Alias of :meth:`solve` (operator-style spelling)."""
        return self.solve(vector)

    def as_operator(self) -> spla.LinearOperator:
        # The explicit dtype matters: without it LinearOperator probes the
        # matvec with a full-size zero vector to infer one, i.e. a wasted
        # preconditioner application per GMRES solve.
        return spla.LinearOperator(self.shape, matvec=self.solve, dtype=float)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        flag = ", degraded" if self.degraded else ""
        return f"{type(self).__name__}(size={self.shape[0]}{flag})"


class JacobiPreconditioner(_PreconditionerBase):
    """Diagonal (Jacobi) scaling ``v -> v / diag(A)``.

    Zero (or denormal) diagonal entries are replaced by 1 so the
    preconditioner stays finite on structurally singular rows; those rows are
    then simply left unscaled.
    """

    kind = "jacobi"

    def __init__(self, matrix_or_diagonal: sp.spmatrix | np.ndarray) -> None:
        if sp.issparse(matrix_or_diagonal):
            diagonal = matrix_or_diagonal.diagonal()
        else:
            arr = np.asarray(matrix_or_diagonal, dtype=float)
            diagonal = np.diag(arr) if arr.ndim == 2 else arr
        super().__init__(diagonal.size)
        safe = np.where(np.abs(diagonal) > 1e-300, diagonal, 1.0)
        self._inverse_diagonal = 1.0 / safe

    def solve(self, vector: np.ndarray) -> np.ndarray:
        return self._inverse_diagonal * vector


class IdentityPreconditioner(_PreconditionerBase):
    """No preconditioning (the ``"none"`` mode); :meth:`solve` is a copy."""

    kind = "none"

    def solve(self, vector: np.ndarray) -> np.ndarray:
        return np.array(vector, copy=True)


class ILUPreconditioner(_PreconditionerBase):
    """Drop-tolerance incomplete LU of an assembled sparse matrix.

    When ``spilu`` fails (structurally singular or badly scaled matrix), the
    preconditioner degrades to Jacobi scaling of the same matrix: a warning
    is logged, :attr:`degraded` is set, and :attr:`fallback` names the
    replacement, so the weakened preconditioning is visible to callers (the
    Krylov layer copies the flag into its solve report).
    """

    kind = "ilu"
    cheap_rebuild = False

    def __init__(
        self,
        matrix: sp.spmatrix,
        *,
        drop_tol: float = 1e-5,
        fill_factor: float = 20.0,
    ) -> None:
        csc = sp.csc_matrix(matrix)
        super().__init__(csc.shape[0])
        self.fallback: str | None = None
        self._jacobi: JacobiPreconditioner | None = None
        try:
            self._ilu = spla.spilu(csc, drop_tol=drop_tol, fill_factor=fill_factor)
        except RuntimeError as exc:
            _LOG.warning(
                "ILU factorisation failed (%s); degrading to a Jacobi (diagonal) "
                "preconditioner — expect higher GMRES iteration counts",
                exc,
            )
            self._ilu = None
            self._jacobi = JacobiPreconditioner(csc)
            self.fallback = self._jacobi.kind
            self.degraded = True

    def solve(self, vector: np.ndarray) -> np.ndarray:
        if self._ilu is not None:
            return self._ilu.solve(vector)
        assert self._jacobi is not None
        return self._jacobi.solve(vector)


def averaged_dense_blocks(
    dynamic_pattern, static_pattern, c_data: np.ndarray, g_data: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Grid-averaged device Jacobians as dense ``(n, n)`` blocks.

    ``(C_bar, G_bar)`` are the per-harmonic building blocks of the
    block-circulant preconditioner; both collocation front ends (the 2-D MPDE
    grid and the 1-D periodic steady state) share this recipe so the averaged
    operator cannot silently diverge between them.  The patterns are the
    circuit's compiled :class:`~repro.linalg.sparse.StampPattern` objects and
    the data arrays come from ``MNASystem.evaluate_sparse``.
    """
    c_bar = dynamic_pattern.csr_from_data(
        np.asarray(c_data, dtype=float).mean(axis=0)
    ).toarray()
    g_bar = static_pattern.csr_from_data(
        np.asarray(g_data, dtype=float).mean(axis=0)
    ).toarray()
    return c_bar, g_bar


def slow_averaged_data(
    data: np.ndarray, n_fast: int, n_slow: int
) -> np.ndarray:
    """Average per-point Jacobian data along the slow axis only.

    ``data`` is a ``(P, nnz)`` array from ``MNASystem.evaluate_sparse``, with
    the grid flattened as ``p = i * n_slow + j`` (fast index outermost, the
    :class:`~repro.core.grid.MultiTimeGrid` convention).  The result is the
    ``(n_fast, nnz)`` slow-axis mean — one pattern-aligned data row per fast
    point, the building block of the partially-averaged preconditioner.  No
    dense ``(n, n)`` per-point blocks are ever formed.
    """
    data = np.asarray(data, dtype=float)
    if data.ndim != 2 or data.shape[0] != n_fast * n_slow:
        raise ValueError(
            f"per-point data must have shape ({n_fast * n_slow}, nnz), got {data.shape}"
        )
    return data.reshape(n_fast, n_slow, -1).mean(axis=1)


def averaged_matrix(assemble, c_data: np.ndarray, g_data: np.ndarray) -> sp.spmatrix:
    """Assemble the grid-averaged operator from per-point Jacobian data.

    Broadcasts the grid-mean device blocks back over every point and hands
    them to the front end's cached symbolic assembler (``assemble(c_mean,
    g_mean)``), producing ``D kron C_bar + I kron G_bar`` without any
    symbolic work.  This is the single definition of the averaged-operator
    recipe shared by :meth:`MPDEProblem.averaged_jacobian` and the
    ILU branch of :func:`build_averaged_preconditioner`.
    """
    c_data = np.asarray(c_data, dtype=float)
    g_data = np.asarray(g_data, dtype=float)
    c_mean = np.broadcast_to(c_data.mean(axis=0), c_data.shape)
    g_mean = np.broadcast_to(g_data.mean(axis=0), g_data.shape)
    return assemble(c_mean, g_mean)


def factor_harmonic_system(
    base: sp.spmatrix, c_blk: sp.spmatrix, lam: complex, *, harmonic: int = 0
) -> tuple[Callable[[np.ndarray], np.ndarray], bool]:
    """Factor one per-slow-harmonic system ``B_k = base + lam * c_blk``.

    Returns ``(solve, degraded)``: a callable back-substituting 1-D or 2-D
    (multi-column) right-hand sides, and whether the factorisation degraded
    to a dense pseudo-inverse (singular harmonic system).  This is the *one*
    definition of the factorisation recipe — the in-process
    :class:`BlockCirculantFastPreconditioner` path and the worker-resident
    factor service (:mod:`repro.parallel.factor_service`) both call it, so
    their factors (and therefore their applies) cannot drift apart: given
    bitwise-identical ``base`` / ``c_blk`` / ``lam`` inputs the SuperLU
    factorisation and its back-substitutions are deterministic, which is
    what makes resident applies bitwise equal to in-process ones.
    """
    matrix = (base + lam * c_blk).tocsc()
    try:
        return spla.splu(matrix).solve, False
    except RuntimeError:
        _LOG.warning(
            "block-circulant-fast preconditioner: slow harmonic %d is "
            "singular; using a dense pseudo-inverse (degraded "
            "preconditioning)",
            harmonic,
        )
        pinv = np.linalg.pinv(matrix.toarray())

        def solve_degraded(rhs: np.ndarray, _pinv=pinv) -> np.ndarray:
            # Column-wise on 2-D RHS so a batched apply stays bitwise
            # equal to per-column applies (dense GEMM picks different
            # kernels than GEMV; SuperLU back-substitution does not).
            if rhs.ndim == 1:
                return _pinv @ rhs
            out = np.empty((_pinv.shape[0], rhs.shape[1]), dtype=complex)
            for column in range(rhs.shape[1]):
                out[:, column] = _pinv @ rhs[:, column]
            return out

        return solve_degraded, True


def build_averaged_preconditioner(
    kind: str,
    *,
    size: int,
    dynamic_pattern,
    static_pattern,
    c_data: np.ndarray,
    g_data: np.ndarray,
    eigenvalues_fast: np.ndarray | None = None,
    eigenvalues_slow: np.ndarray | None = None,
    assemble=None,
    fast_operator=None,
    grid_shape: tuple[int, int] | None = None,
    eager: bool = False,
    factor_pool=None,
    factor_service=None,
) -> Preconditioner:
    """Kind dispatch over the grid-averaged-operator preconditioner family.

    Both collocation front ends (the 2-D MPDE solver and the 1-D periodic
    steady state) build their matrix-free preconditioners through this one
    factory so the construction recipes cannot drift apart:

    * ``"none"`` — :class:`IdentityPreconditioner` of ``size``.
    * ``"block_circulant"`` — per-harmonic blocks from the averaged dense
      device Jacobians and the supplied circulant axis ``eigenvalues_*``.
    * ``"block_circulant_fast"`` — slow-axis partially-averaged blocks from
      :func:`slow_averaged_data` (``grid_shape`` supplies the
      ``(n_fast, n_slow)`` split), the fast-axis differentiation matrix
      ``fast_operator`` and the slow-axis ``eigenvalues_slow``.
    * ``"jacobi"`` — the averaged operator's diagonal, computed in
      ``O(size)`` from the averaged blocks (a circulant operator has a
      constant diagonal, the mean of its eigenvalues) — no matrix assembly.
    * ``"ilu"`` — drop-tolerance ILU of the assembled averaged matrix,
      produced via :func:`averaged_matrix` and ``assemble`` (the front end's
      cached :class:`~repro.linalg.sparse.CollocationJacobianAssembler`).

    ``eager`` / ``factor_pool`` select the partially-averaged mode's eager
    batch factorisation (optionally fanned out over a
    :class:`~repro.parallel.pool.WorkerPool`); ``factor_service`` hands that
    mode a worker-resident factor service
    (:class:`~repro.parallel.factor_service.ResidentFactorPool`) that
    factors and applies the per-harmonic systems in forked workers instead.
    All three are ignored by every other kind.
    """
    if kind == "none":
        return IdentityPreconditioner(size)
    if kind == "block_circulant_fast":
        if fast_operator is None or grid_shape is None:
            raise ValueError(
                "preconditioner kind 'block_circulant_fast' needs the fast-axis "
                "differentiation matrix (fast_operator) and the (n_fast, n_slow) "
                "grid shape"
            )
        n_fast, n_slow = grid_shape
        # Catch an omitted / mismatched slow-eigenvalue array here, where the
        # grid split is known, instead of letting a wrong-size preconditioner
        # fail with an opaque reshape error on its first application.
        n_lam = 1 if eigenvalues_slow is None else np.asarray(eigenvalues_slow).size
        if n_lam != n_slow:
            raise ValueError(
                f"preconditioner kind 'block_circulant_fast' got {n_lam} slow-axis "
                f"eigenvalue(s) for a grid with n_slow = {n_slow}"
            )
        return BlockCirculantFastPreconditioner(
            slow_averaged_data(c_data, n_fast, n_slow),
            slow_averaged_data(g_data, n_fast, n_slow),
            dynamic_pattern,
            static_pattern,
            fast_operator,
            eigenvalues_slow,
            eager=eager,
            factor_pool=factor_pool,
            factor_service=factor_service,
        )
    if kind in ("block_circulant", "jacobi"):
        if eigenvalues_fast is None:
            raise ValueError(
                f"preconditioner kind {kind!r} needs the circulant eigenvalues "
                "of the (fast) axis differentiation operator"
            )
        c_bar, g_bar = averaged_dense_blocks(
            dynamic_pattern, static_pattern, c_data, g_data
        )
        if kind == "block_circulant":
            return BlockCirculantPreconditioner(
                c_bar, g_bar, eigenvalues_fast, eigenvalues_slow
            )
        # diag(D kron C_bar + I kron G_bar): every circulant factor of D has
        # the constant diagonal mean(eigenvalues), so the full diagonal is
        # one (n,) block tiled over the grid — no sparse assembly needed.
        d_diagonal = float(np.mean(eigenvalues_fast).real)
        if eigenvalues_slow is not None:
            d_diagonal += float(np.mean(eigenvalues_slow).real)
        block_diagonal = d_diagonal * np.diag(c_bar) + np.diag(g_bar)
        return JacobiPreconditioner(np.tile(block_diagonal, size // c_bar.shape[0]))
    if kind == "ilu":
        if assemble is None:
            raise ValueError(
                "preconditioner kind 'ilu' needs an `assemble` callable for the "
                "averaged matrix"
            )
        return ILUPreconditioner(averaged_matrix(assemble, c_data, g_data))
    raise ValueError(
        f"unknown preconditioner kind {kind!r}; use one of {PRECONDITIONER_KINDS}"
    )


def circulant_eigenvalues(
    matrix: sp.spmatrix | np.ndarray, *, check: bool = True, rtol: float = 1e-9
) -> np.ndarray:
    """Eigenvalues of a circulant matrix, ordered to match ``numpy.fft``.

    A circulant matrix ``A`` with first column ``c`` (``A[j, k] = c[(j - k)
    mod N]``) is diagonalised by the DFT: ``fft(A @ x) = fft(c) * fft(x)``.
    Every periodic differentiation operator in this library (backward Euler,
    BDF2, central, spectral Fourier) is circulant on a uniform grid, which is
    the structural fact the block-circulant preconditioner exploits.

    With ``check=True`` (the default) the matrix is verified to actually be
    circulant; a non-circulant operator (e.g. from a non-uniform grid) raises
    ``ValueError`` rather than silently producing a wrong preconditioner.
    """
    dense = matrix.toarray() if sp.issparse(matrix) else np.asarray(matrix, dtype=float)
    if dense.ndim != 2 or dense.shape[0] != dense.shape[1]:
        raise ValueError(f"circulant operator must be square, got shape {dense.shape}")
    n = dense.shape[0]
    first_column = dense[:, 0]
    if check:
        # Column k of a circulant matrix is the first column rolled down by k.
        indices = (np.arange(n)[:, None] - np.arange(n)[None, :]) % n
        reconstructed = first_column[indices]
        scale = max(np.abs(first_column).max(), 1e-300)
        if not np.allclose(dense, reconstructed, rtol=0.0, atol=rtol * scale):
            raise ValueError(
                "matrix is not circulant (non-uniform grid or non-periodic "
                "differentiation operator?)"
            )
    return np.fft.fft(first_column)


class BlockCirculantPreconditioner(_PreconditionerBase):
    """Per-harmonic (frequency-domain) preconditioner for circulant operators.

    Solves the grid-averaged operator

        J_avg = (D1 oplus D2) kron C_bar + I_P kron G_bar

    *exactly* by FFT-diagonalising the periodic axes: for each harmonic pair
    ``(m, k)`` the small complex block ``B_mk = (lambda1_m + lambda2_k) C_bar
    + G_bar`` is inverted once at construction, and every application is two
    FFTs plus a batched block multiply.

    Parameters
    ----------
    c_bar, g_bar:
        Grid-averaged dynamic / static device Jacobians, dense ``(n, n)``.
    eigenvalues_fast:
        Circulant eigenvalues of the fast-axis differentiation matrix
        (length ``n_fast``), ordered as :func:`numpy.fft.fft` output.
    eigenvalues_slow:
        Circulant eigenvalues of the slow-axis operator (length ``n_slow``).
        Pass the default (a single zero) for one-dimensional collocation
        problems (single-tone periodic steady state).

    Notes
    -----
    Harmonic blocks that are exactly singular (e.g. a singular ``G_bar`` at
    the DC harmonic) are replaced by their pseudo-inverse; the instance is
    then flagged ``degraded`` and a warning is logged.
    """

    kind = "block_circulant"

    def __init__(
        self,
        c_bar: np.ndarray,
        g_bar: np.ndarray,
        eigenvalues_fast: np.ndarray,
        eigenvalues_slow: np.ndarray | None = None,
    ) -> None:
        c_bar = np.asarray(c_bar, dtype=float)
        g_bar = np.asarray(g_bar, dtype=float)
        if c_bar.ndim != 2 or c_bar.shape[0] != c_bar.shape[1]:
            raise ValueError(f"c_bar must be square, got shape {c_bar.shape}")
        if g_bar.shape != c_bar.shape:
            raise ValueError(
                f"g_bar shape {g_bar.shape} does not match c_bar shape {c_bar.shape}"
            )
        lam_fast = np.asarray(eigenvalues_fast, dtype=complex).ravel()
        lam_slow = (
            np.zeros(1, dtype=complex)
            if eigenvalues_slow is None
            else np.asarray(eigenvalues_slow, dtype=complex).ravel()
        )
        if lam_fast.size == 0 or lam_slow.size == 0:
            raise ValueError("eigenvalue arrays must be non-empty")
        self.n_unknowns = c_bar.shape[0]
        self.n_fast = lam_fast.size
        self.n_slow = lam_slow.size
        super().__init__(self.n_fast * self.n_slow * self.n_unknowns)

        # One (n, n) complex block per harmonic (m, k).
        lam = lam_fast[:, None] + lam_slow[None, :]
        blocks = lam[:, :, None, None] * c_bar[None, None] + g_bar[None, None]
        try:
            self._inverse_blocks = np.linalg.inv(blocks)
        except np.linalg.LinAlgError:
            self._inverse_blocks = self._invert_with_fallback(blocks)

    @property
    def n_harmonics(self) -> int:
        """Number of per-harmonic blocks (``n_fast * n_slow``)."""
        return self.n_fast * self.n_slow

    def _invert_with_fallback(self, blocks: np.ndarray) -> np.ndarray:
        """Invert blocks one by one, pseudo-inverting the singular ones."""
        flat = blocks.reshape(-1, self.n_unknowns, self.n_unknowns)
        inverses = np.empty_like(flat)
        singular = 0
        for index, block in enumerate(flat):
            try:
                inverses[index] = np.linalg.inv(block)
            except np.linalg.LinAlgError:
                inverses[index] = np.linalg.pinv(block)
                singular += 1
        _LOG.warning(
            "block-circulant preconditioner: %d of %d harmonic blocks are singular; "
            "using pseudo-inverses (degraded preconditioning)",
            singular,
            flat.shape[0],
        )
        self.degraded = True
        return inverses.reshape(blocks.shape)

    def solve(self, vector: np.ndarray) -> np.ndarray:
        grid = np.asarray(vector).reshape(self.n_fast, self.n_slow, self.n_unknowns)
        spectrum = np.fft.fft2(grid, axes=(0, 1))
        solved = np.einsum("fsij,fsj->fsi", self._inverse_blocks, spectrum)
        result = np.fft.ifft2(solved, axes=(0, 1))
        return np.ascontiguousarray(result.real).reshape(np.shape(vector))


class BlockCirculantFastPreconditioner(_PreconditionerBase):
    """Slow-axis partially-averaged per-harmonic preconditioner.

    Solves the *partially-averaged* operator

        J_pa = (D1 kron I_ns kron I_n) blkdiag(C_i)
             + (I_nf kron D2 kron I_n) blkdiag(C_i) + blkdiag(G_i)

    exactly, where ``(C_i, G_i)`` are the slow-axis means of the per-point
    device Jacobians at fast point ``i`` — the fast-axis (LO-phase) variation
    of the circuit is kept, which is what makes this a close Jacobian model
    for strongly switched mixers.  Only the slow axis is constant-coefficient
    (circulant), so only the slow axis is FFT-diagonalised: per slow harmonic
    ``k`` one sparse complex system

        B_k = (D1 kron I_n + mu_k I) blkdiag(C_i) + blkdiag(G_i)

    of size ``n_fast * n`` remains, coupled along the fast axis by the
    differentiation matrix ``D1`` (block-banded for the finite-difference
    rules, block-dense for the spectral rule).

    Parameters
    ----------
    c_bar_fast, g_bar_fast:
        Slow-averaged dynamic / static Jacobian data, shape
        ``(n_fast, pattern.nnz)`` and aligned with the patterns (produced by
        :func:`slow_averaged_data` from ``evaluate_sparse`` output — no dense
        per-point blocks are formed).
    dynamic_pattern, static_pattern:
        The circuit's compiled :class:`~repro.linalg.sparse.StampPattern`
        objects.
    fast_operator:
        The fast-axis differentiation matrix ``D1``, shape
        ``(n_fast, n_fast)``.
    eigenvalues_slow:
        Circulant eigenvalues ``mu_k`` of the slow-axis operator (length
        ``n_slow``), ordered as :func:`numpy.fft.fft` output.  Omit (or pass
        a single zero) for one-dimensional collocation problems, where the
        single ``B_0`` equals the unaveraged Jacobian itself.
    eager:
        Batch-factor all distinct harmonics at construction instead of
        lazily on first touch (see Notes).
    factor_pool:
        Optional :class:`~repro.parallel.pool.WorkerPool` the eager batch
        factorisation fans out over.  The per-harmonic systems are
        independent, so the ``n_slow // 2 + 1`` sparse LUs can run
        concurrently; a *thread* pool is the right vehicle because SuperLU
        factor objects are process-local (they cannot be pickled back from
        a process pool).  Ignored in lazy mode.
    factor_service:
        Optional worker-resident factor service
        (:class:`~repro.parallel.factor_service.ResidentFactorPool`).  When
        given (and healthy) the per-harmonic systems are factored *inside
        forked worker processes* from shared-memory copies of the base
        matrices at construction, and every apply dispatches one batched
        back-substitution broadcast to the workers — FFT in the parent,
        per-harmonic solves in parallel in the workers, IFFT in the parent
        — bitwise equal to the in-process path (both sides factor through
        :func:`factor_harmonic_system`).  A worker failure or watchdog
        timeout disables the service *stickily* (reason recorded on the
        service) and the instance falls back to lazy in-process
        factorisation mid-flight.

    Notes
    -----
    Factorisations are *lazy* by default: ``B_k`` is LU-factored on the
    first solve that touches harmonic ``k``, and only the first
    ``n_slow // 2 + 1`` harmonics are ever factored — conjugate symmetry
    (``B_{n-k} = conj(B_k)``, real-input spectra obey ``v_{n-k} =
    conj(v_k)``) supplies the mirrored solutions by conjugation.  A complex
    vector splits into its real and imaginary parts, which share one FFT
    call and one sweep over the harmonic solvers (two-column RHS), bitwise
    equal to — and half the cost of — applying the preconditioner to each
    part separately.  The
    *eager* mode factors exactly the same ``n_slow // 2 + 1`` systems up
    front (conjugate symmetry preserved) through the same factorisation
    routine, so its applies — and its factorisation counts, since every
    apply touches every distinct harmonic anyway — are identical to the
    lazy path's; the only difference is *when* (and, given a pool, on how
    many threads) the factorisations run.
    :attr:`harmonic_factorizations` counts the sparse LU factorisations
    performed so far (surfaced as
    ``MPDEStats.preconditioner_harmonic_builds``).

    ``cheap_rebuild`` is True — the solver rebuilds this mode from fresh
    Jacobian data at every Newton iterate rather than caching it under the
    :class:`AdaptiveRefreshPolicy`.  That is a measured trade, not an
    oversight: a build is ~``n_slow // 2`` sparse LUs, i.e. a few GMRES
    iterations' worth of back-substitutions, while a stale instance is
    invalidated by a single Newton step precisely because it tracks the
    per-fast-point operating points (on the 36x18 LO-switched balanced mixer
    the cached discipline cost 2578 total GMRES iterations against 362 for
    fresh rebuilds — the first post-build Newton step left the policy's
    baseline at 1 iteration while the stale solve burned 1918).  Singular
    harmonic systems fall back to a dense pseudo-inverse and flag the
    instance ``degraded``.
    """

    kind = "block_circulant_fast"
    cheap_rebuild = True

    def __init__(
        self,
        c_bar_fast: np.ndarray,
        g_bar_fast: np.ndarray,
        dynamic_pattern,
        static_pattern,
        fast_operator: sp.spmatrix | np.ndarray,
        eigenvalues_slow: np.ndarray | None = None,
        *,
        eager: bool = False,
        factor_pool=None,
        factor_service=None,
    ) -> None:
        c_bar_fast = np.asarray(c_bar_fast, dtype=float)
        g_bar_fast = np.asarray(g_bar_fast, dtype=float)
        if c_bar_fast.ndim != 2 or g_bar_fast.ndim != 2:
            raise ValueError("slow-averaged data arrays must be 2-D (n_fast, nnz)")
        if c_bar_fast.shape[0] != g_bar_fast.shape[0]:
            raise ValueError(
                f"c/g slow-averaged data disagree on n_fast: "
                f"{c_bar_fast.shape[0]} vs {g_bar_fast.shape[0]}"
            )
        fast = sp.csr_matrix(fast_operator)
        if fast.shape != (c_bar_fast.shape[0],) * 2:
            raise ValueError(
                f"fast operator shape {fast.shape} does not match n_fast = "
                f"{c_bar_fast.shape[0]}"
            )
        lam_slow = (
            np.zeros(1, dtype=complex)
            if eigenvalues_slow is None
            else np.asarray(eigenvalues_slow, dtype=complex).ravel()
        )
        if lam_slow.size == 0:
            raise ValueError("eigenvalue arrays must be non-empty")
        self.n_unknowns = int(dynamic_pattern.n)
        self.n_fast = int(c_bar_fast.shape[0])
        self.n_slow = int(lam_slow.size)
        super().__init__(self.n_fast * self.n_slow * self.n_unknowns)

        c_blk = BlockDiagStructure(dynamic_pattern, self.n_fast).matrix(c_bar_fast)
        g_blk = BlockDiagStructure(static_pattern, self.n_fast).matrix(g_bar_fast)
        d_kron = kron_identity(fast, self.n_unknowns)
        # B_k = base + mu_k * C_blk; both factors are real, so the complex
        # per-harmonic systems are assembled by one scalar-times-sparse add.
        self._base = (d_kron @ c_blk + g_blk).tocsc()
        self._c_blk = c_blk.tocsc()
        self._lam_slow = lam_slow
        self._solvers: dict[int, Callable[[np.ndarray], np.ndarray]] = {}
        #: Sparse LU factorisations performed so far (conjugate-symmetric:
        #: at most ``n_slow // 2 + 1``, whether factored lazily or eagerly).
        self.harmonic_factorizations = 0
        #: Harmonic back-substitutions dispatched so far: one per distinct
        #: harmonic per :meth:`solve` call — a complex apply shares a single
        #: sweep (it does not double-count against a real apply).
        self.harmonic_applies = 0
        #: Wall time spent inside the per-harmonic back-substitutions of
        #: every apply: the solver calls themselves in-process, the
        #: workers' critical-path (slowest shard) solve time when resident.
        self.apply_backsub_time_s = 0.0
        #: Wall time the resident factor service spends *around* the
        #: back-substitutions of every apply — packing the spectrum into
        #: shared memory, the command broadcast / reply gather, unpacking —
        #: i.e. the dispatch overhead the parallel applies pay.  0.0 on the
        #: in-process path.
        self.apply_dispatch_time_s = 0.0
        self._service = None
        if factor_service is not None and factor_service.active:
            try:
                degraded = factor_service.configure(
                    self._base, self._c_blk, self._lam_slow
                )
            except Exception as exc:  # worker died/hung: service disabled itself
                _LOG.warning(
                    "resident factor service unavailable (%s); falling back "
                    "to in-process factorisation",
                    exc,
                )
            else:
                self._service = factor_service
                # The workers factored every distinct harmonic of their
                # ranges — the same ``n_slow // 2 + 1`` systems the lazy and
                # eager in-process paths factor, so the counts agree.
                self.harmonic_factorizations = self.n_slow // 2 + 1
                self.degraded |= degraded
        if eager and self._service is None:
            self.factor_eagerly(pool=factor_pool)

    @property
    def n_harmonics(self) -> int:
        """Number of slow harmonics (distinct per-harmonic systems)."""
        return self.n_slow

    def _factor_harmonic(
        self, k: int
    ) -> tuple[int, Callable[[np.ndarray], np.ndarray], bool]:
        """Factor harmonic ``k``: returns ``(k, solver, degraded)``.

        Pure function of the (immutable after construction) base matrices —
        safe to fan out over worker threads; all bookkeeping mutation stays
        with the caller.
        """
        solver, degraded = factor_harmonic_system(
            self._base, self._c_blk, self._lam_slow[k], harmonic=k
        )
        return k, solver, degraded

    def _store_factor(
        self, k: int, solver: Callable[[np.ndarray], np.ndarray], degraded: bool
    ) -> None:
        self._solvers[k] = solver
        self.harmonic_factorizations += 1
        self.degraded |= degraded

    def factor_eagerly(self, pool=None) -> None:
        """Batch-factor every distinct harmonic not yet factored.

        Only the first ``n_slow // 2 + 1`` harmonics are ever factored
        (conjugate symmetry supplies the rest — same as the lazy path), so
        the counts and the applies are identical to lazy factorisation.
        With a :class:`~repro.parallel.pool.WorkerPool` the independent
        factorisations fan out over its threads; without one they run
        sequentially, which still front-loads the build cost into a single
        measurable phase (``MPDEStats.preconditioner_build_time_s``).
        """
        pending = [
            k for k in range(self.n_slow // 2 + 1) if k not in self._solvers
        ]
        if not pending:
            return
        runner = pool.map if pool is not None else lambda fn, items: map(fn, items)
        for k, solver, degraded in runner(self._factor_harmonic, pending):
            self._store_factor(k, solver, degraded)

    def _harmonic_solver(self, k: int) -> Callable[[np.ndarray], np.ndarray]:
        """The (lazily factored) solver for slow harmonic ``k``."""
        solver = self._solvers.get(k)
        if solver is None:
            self._store_factor(*self._factor_harmonic(k))
            solver = self._solvers[k]
        return solver

    def solve(self, vector: np.ndarray) -> np.ndarray:
        values = np.asarray(vector)
        if np.iscomplexobj(values):
            # The apply is linear, so a complex vector splits exactly into
            # real and imaginary applies — but those share one FFT call and
            # one sweep over the harmonic solvers (two-column RHS; SuperLU
            # back-substitutes columns independently), so the result is
            # bitwise what the former two-pass
            # ``solve(real) + 1j * solve(imag)`` recursion produced at half
            # the FFT and solver-sweep cost.
            grids = np.stack([values.real, values.imag]).reshape(
                2, self.n_fast, self.n_slow, self.n_unknowns
            )
            solved = self._solve_real_grids(grids)
            return (solved[0] + 1j * solved[1]).reshape(np.shape(vector))
        grid = values.reshape(1, self.n_fast, self.n_slow, self.n_unknowns)
        return self._solve_real_grids(grid)[0].reshape(np.shape(vector))

    def _solve_real_grids(self, grids: np.ndarray) -> np.ndarray:
        """Apply the preconditioner to ``m`` stacked real grids at once.

        ``grids`` has shape ``(m, n_fast, n_slow, n_unknowns)``; the slow
        axis of every grid is FFT-transformed in one call and each distinct
        harmonic system is solved once with an ``m``-column RHS.
        """
        m = grids.shape[0]
        spectrum = np.fft.fft(grids, axis=2)
        solved = np.empty_like(spectrum)
        # Real input: the slow-axis spectrum is conjugate-symmetric and the
        # per-harmonic systems satisfy B_{n-k} = conj(B_k), so the upper half
        # of the harmonics is solved by conjugating the lower half.
        half = self.n_slow // 2
        size = self.n_fast * self.n_unknowns
        if not self._solve_harmonics_resident(spectrum, solved, m, half, size):
            for k in range(half + 1):
                solver = self._harmonic_solver(k)
                self.harmonic_applies += 1
                if m == 1:
                    rhs = np.ascontiguousarray(spectrum[0, :, k, :]).ravel()
                    start = time.perf_counter()
                    solution = solver(rhs)
                    self.apply_backsub_time_s += time.perf_counter() - start
                    solved[0, :, k, :] = solution.reshape(
                        self.n_fast, self.n_unknowns
                    )
                else:
                    rhs = np.ascontiguousarray(
                        spectrum[:, :, k, :].reshape(m, size).T
                    )
                    start = time.perf_counter()
                    solution = solver(rhs)
                    self.apply_backsub_time_s += time.perf_counter() - start
                    solved[:, :, k, :] = solution.T.reshape(
                        m, self.n_fast, self.n_unknowns
                    )
        for k in range(half + 1, self.n_slow):
            solved[:, :, k, :] = np.conj(solved[:, :, self.n_slow - k, :])
        return np.ascontiguousarray(np.fft.ifft(solved, axis=2).real)

    def _solve_harmonics_resident(self, spectrum, solved, m, half, size) -> bool:
        """Dispatch the distinct-harmonic solves to the resident service.

        Fills ``solved[:, :, :half + 1, :]`` and returns True on success;
        returns False when no (healthy) service is attached so the caller
        runs the in-process loop instead.  Worker failures are healed
        *inside* the service (supervised restart + parity probe, see
        :class:`~repro.resilience.supervisor.PoolSupervisor`), so a raise
        only reaches here once the restart budget is exhausted and the
        service has disabled itself with the reason recorded; this instance
        then detaches, and the apply — like every later one — completes on
        lazily-factored in-process solvers.
        """
        service = self._service
        if service is None or not service.active:
            return False
        start = time.perf_counter()
        # One (half + 1, m, size) block: row k carries the m spectrum
        # columns of harmonic k, exactly the values the in-process loop
        # hands its solver for that harmonic (worker-side transposition
        # restores the (size, m) column layout bitwise).
        packed = np.ascontiguousarray(
            np.moveaxis(spectrum[:, :, : half + 1, :], 2, 0).reshape(
                half + 1, m, size
            )
        )
        try:
            solutions, backsub_s = service.solve(packed)
        except Exception:  # service disabled itself with the reason recorded
            self._service = None
            return False
        self.harmonic_applies += half + 1
        solved[:, :, : half + 1, :] = np.moveaxis(
            solutions.reshape(half + 1, m, self.n_fast, self.n_unknowns), 0, 2
        )
        elapsed = time.perf_counter() - start
        self.apply_backsub_time_s += backsub_s
        self.apply_dispatch_time_s += max(0.0, elapsed - backsub_s)
        return True


class AdaptiveRefreshPolicy:
    """Iteration-trend staleness heuristic for cached preconditioners.

    The first GMRES solve after a (re)build establishes a baseline iteration
    count.  As the Newton iterate drifts, the cached preconditioner degrades
    and the per-solve iteration counts creep up; once a solve exceeds
    ``baseline * growth_factor + slack`` the policy reports the
    preconditioner as stale so the solver can rebuild *before* GMRES fails
    outright (the old rebuild-on-failure-only heuristic paid for a full
    failed solve — ``maxiter`` wasted iterations — before reacting).

    Usage::

        policy.note_build()            # after every (re)factorisation
        ...
        policy.record(report.iterations)   # after every GMRES solve
        if policy.should_rebuild():
            ...                        # rebuild before the *next* solve
    """

    def __init__(self, growth_factor: float = 1.6, slack: int = 8) -> None:
        if growth_factor <= 1.0:
            raise ValueError(f"growth_factor must be > 1.0, got {growth_factor}")
        if slack < 0:
            raise ValueError(f"slack must be non-negative, got {slack}")
        self.growth_factor = float(growth_factor)
        self.slack = int(slack)
        self._baseline: int | None = None
        self._last: int | None = None

    @property
    def baseline(self) -> int | None:
        """Iteration count of the first solve after the last build (or None)."""
        return self._baseline

    @property
    def last(self) -> int | None:
        """Iteration count of the most recent solve (or None)."""
        return self._last

    def note_build(self) -> None:
        """Reset the trend: the next recorded solve sets a fresh baseline."""
        self._baseline = None
        self._last = None

    def record(self, iterations: int) -> None:
        """Record the inner-iteration count of a completed GMRES solve."""
        iterations = int(iterations)
        if self._baseline is None:
            self._baseline = iterations
        self._last = iterations

    def should_rebuild(self) -> bool:
        """Whether the iteration trend has degraded past the threshold."""
        if self._baseline is None or self._last is None:
            return False
        return self._last > self._baseline * self.growth_factor + self.slack

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AdaptiveRefreshPolicy(growth_factor={self.growth_factor}, "
            f"slack={self.slack}, baseline={self._baseline}, last={self._last})"
        )
