"""Numerical building blocks: Newton, continuation, sparse assembly, Krylov."""

from .continuation import ContinuationResult, continuation_solve
from .krylov import (
    CachedPreconditionedGMRES,
    GMRESReport,
    gmres_solve,
    make_ilu_preconditioner,
)
from .newton import FactoredJacobian, NewtonResult, newton_solve, solve_linear_system
from .preconditioners import (
    AdaptiveRefreshPolicy,
    BlockCirculantFastPreconditioner,
    BlockCirculantPreconditioner,
    ILUPreconditioner,
    IdentityPreconditioner,
    JacobiPreconditioner,
    Preconditioner,
    circulant_eigenvalues,
    slow_averaged_data,
)
from .sparse import (
    BlockDiagStructure,
    COOBuilder,
    CollocationJacobianAssembler,
    StampPattern,
    block_diag_from_array,
    block_diagonal,
    identity_kron,
    kron_identity,
    periodic_backward_difference,
    periodic_bdf2_difference,
    periodic_central_difference,
    periodic_fourier_differentiation,
)

__all__ = [
    "FactoredJacobian",
    "NewtonResult",
    "newton_solve",
    "solve_linear_system",
    "ContinuationResult",
    "continuation_solve",
    "CachedPreconditionedGMRES",
    "GMRESReport",
    "gmres_solve",
    "make_ilu_preconditioner",
    "Preconditioner",
    "ILUPreconditioner",
    "JacobiPreconditioner",
    "BlockCirculantPreconditioner",
    "BlockCirculantFastPreconditioner",
    "IdentityPreconditioner",
    "AdaptiveRefreshPolicy",
    "circulant_eigenvalues",
    "slow_averaged_data",
    "COOBuilder",
    "StampPattern",
    "BlockDiagStructure",
    "CollocationJacobianAssembler",
    "block_diagonal",
    "block_diag_from_array",
    "kron_identity",
    "identity_kron",
    "periodic_backward_difference",
    "periodic_bdf2_difference",
    "periodic_central_difference",
    "periodic_fourier_differentiation",
]
