"""Homotopy / continuation driver.

The DAC-2002 paper notes that when Newton-Raphson on the MPDE system does not
converge from the available initial guess, *continuation* reliably obtains
solutions (Section 3, "Computational speedup": 10-20 minutes with
continuation versus ~1 minute for a converged plain Newton run).  The same
technique — classically "source stepping" — is also what SPICE-family DC
solvers fall back to.

:func:`continuation_sweep` implements the adaptive-step embedding sweep
itself: a family of problems ``F(x; lambda) = 0`` is solved for ``lambda``
moving from ``lambda_start`` to 1, each solve warm-started from the previous
solution.  The step in ``lambda`` grows after successes and shrinks after
failures.  It is the *one* continuation driver in the library — the
gmin/source-stepping fallbacks of :func:`repro.analysis.dc.dc_operating_point`
(via :func:`continuation_solve`) and the MPDE solver's source-stepping
recovery rung both run on it, so step control, failure classification and
deadline behaviour cannot drift apart between the two.

:func:`continuation_solve` is the dense-Newton front end: it adapts a
``(x, lam)`` residual/Jacobian pair onto the sweep via
:func:`~repro.linalg.newton.newton_solve`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

import numpy as np

from ..resilience.deadline import Deadline
from ..utils.exceptions import ConvergenceError
from ..utils.logging import get_logger
from ..utils.options import ContinuationOptions, NewtonOptions
from .newton import newton_solve

__all__ = ["ContinuationResult", "continuation_solve", "continuation_sweep"]

_LOG = get_logger("linalg.continuation")


@dataclass
class ContinuationResult:
    """Outcome of a continuation sweep.

    Attributes
    ----------
    x:
        Solution of the target problem (``lambda = 1``).
    lambdas:
        The accepted values of the embedding parameter, in order.
    newton_iterations:
        Total Newton iterations spent across every embedding step.
    steps:
        Number of accepted embedding steps.
    rejected_steps:
        Number of embedding steps that had to be retried with a smaller step.
    """

    x: np.ndarray
    lambdas: list[float] = field(default_factory=list)
    newton_iterations: int = 0
    steps: int = 0
    rejected_steps: int = 0


class SweepStep(Protocol):
    """What a :func:`continuation_sweep` per-lambda solve must return.

    :class:`~repro.linalg.newton.NewtonResult` satisfies it; so does the
    MPDE solver's internal Newton result.
    """

    x: np.ndarray
    converged: bool
    iterations: int
    residual_norm: float


def continuation_sweep(
    solve_at: Callable[[float, np.ndarray], SweepStep],
    x0: np.ndarray,
    continuation_options: ContinuationOptions | None = None,
    *,
    deadline: Deadline | None = None,
) -> ContinuationResult:
    """Sweep the embedding parameter from ``lambda_start`` to 1.

    This is the single continuation driver shared by the DC gmin/source
    stepping fallbacks and the MPDE solver's source-stepping recovery rung.

    Parameters
    ----------
    solve_at:
        ``solve_at(lam, x_guess)`` solves the embedded problem at ``lam``
        warm-started from ``x_guess`` and returns a :class:`SweepStep`
        (must *not* raise on plain non-convergence — return
        ``converged=False`` so the sweep can shrink the step; genuinely
        unrecoverable errors may propagate).
    x0:
        Initial guess for the first (easy) problem at ``lambda_start``.
    continuation_options:
        Step-control knobs.
    deadline:
        Optional started :class:`~repro.resilience.deadline.Deadline`,
        checked before every embedding step.

    Raises
    ------
    ConvergenceError
        If even the ``lambda_start`` problem fails ("initial problem"), the
        sweep cannot reach ``lambda = 1`` within ``max_steps``, or the step
        size under-runs ``min_step``.
    """
    copts = continuation_options or ContinuationOptions()

    lam = copts.lambda_start
    step = copts.initial_step
    x = np.array(x0, dtype=float).copy()

    result = ContinuationResult(x=x)

    # Solve the easy problem first so the sweep starts from a consistent point.
    start = solve_at(lam, x)
    if not start.converged:
        raise ConvergenceError(
            f"continuation could not solve the initial problem at lambda={lam}",
            iterations=start.iterations,
            residual_norm=start.residual_norm,
        )
    x = np.asarray(start.x, dtype=float)
    result.newton_iterations += start.iterations
    result.lambdas.append(lam)

    attempts = 0
    while lam < 1.0:
        if deadline is not None:
            deadline.check("continuation")
        attempts += 1
        if attempts > copts.max_steps:
            raise ConvergenceError(
                f"continuation exceeded max_steps={copts.max_steps} before reaching lambda=1"
            )
        lam_trial = min(1.0, lam + step)
        trial = solve_at(lam_trial, x)
        result.newton_iterations += trial.iterations
        if trial.converged:
            lam = lam_trial
            x = np.asarray(trial.x, dtype=float)
            result.lambdas.append(lam)
            result.steps += 1
            step = min(copts.max_step, step * copts.growth)
            _LOG.debug("continuation accepted lambda=%.4f (step=%.3g)", lam, step)
        else:
            result.rejected_steps += 1
            step *= copts.shrink
            _LOG.debug(
                "continuation rejected lambda=%.4f, shrinking step to %.3g", lam_trial, step
            )
            if step < copts.min_step:
                raise ConvergenceError(
                    "continuation step size underflow "
                    f"(step={step:.3e} < min_step={copts.min_step:.3e}) at lambda={lam:.4f}",
                    residual_norm=trial.residual_norm,
                )

    result.x = x
    return result


def continuation_solve(
    residual: Callable[[np.ndarray, float], np.ndarray],
    jacobian: Callable[[np.ndarray, float], object],
    x0: np.ndarray,
    newton_options: NewtonOptions | None = None,
    continuation_options: ContinuationOptions | None = None,
    *,
    deadline: Deadline | None = None,
) -> ContinuationResult:
    """Solve ``residual(x, 1.0) = 0`` by sweeping the embedding parameter.

    The dense-Newton front end of :func:`continuation_sweep`.

    Parameters
    ----------
    residual, jacobian:
        Callables taking ``(x, lam)``.  At ``lam = lambda_start`` the problem
        should be easy (typically linear: sources off, or a heavily
        gmin-loaded system); at ``lam = 1`` it is the original problem.
    x0:
        Initial guess for the first (easy) problem.
    newton_options, continuation_options:
        Iteration controls.
    deadline:
        Optional started :class:`~repro.resilience.deadline.Deadline`,
        checked before every embedding step.

    Raises
    ------
    ConvergenceError
        If the sweep cannot reach ``lambda = 1`` within ``max_steps`` or the
        step size under-runs ``min_step``.
    """
    nopts = newton_options or NewtonOptions()

    def solve_at(lam: float, x_guess: np.ndarray) -> SweepStep:
        return newton_solve(
            lambda v: residual(v, lam),
            lambda v: jacobian(v, lam),
            x_guess,
            nopts,
            raise_on_failure=False,
        )

    return continuation_sweep(
        solve_at, x0, continuation_options, deadline=deadline
    )
