"""Homotopy / continuation driver.

The DAC-2002 paper notes that when Newton-Raphson on the MPDE system does not
converge from the available initial guess, *continuation* reliably obtains
solutions (Section 3, "Computational speedup": 10-20 minutes with
continuation versus ~1 minute for a converged plain Newton run).  The same
technique — classically "source stepping" — is also what SPICE-family DC
solvers fall back to.

:func:`continuation_solve` implements an adaptive-step embedding sweep:
a family of problems ``F(x; lambda) = 0`` is solved for ``lambda`` moving from
``lambda_start`` to 1, each solve warm-started from the previous solution.
The step in ``lambda`` grows after successes and shrinks after failures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..utils.exceptions import ConvergenceError
from ..utils.logging import get_logger
from ..utils.options import ContinuationOptions, NewtonOptions
from .newton import NewtonResult, newton_solve

__all__ = ["ContinuationResult", "continuation_solve"]

_LOG = get_logger("linalg.continuation")


@dataclass
class ContinuationResult:
    """Outcome of a continuation sweep.

    Attributes
    ----------
    x:
        Solution of the target problem (``lambda = 1``).
    lambdas:
        The accepted values of the embedding parameter, in order.
    newton_iterations:
        Total Newton iterations spent across every embedding step.
    steps:
        Number of accepted embedding steps.
    rejected_steps:
        Number of embedding steps that had to be retried with a smaller step.
    """

    x: np.ndarray
    lambdas: list[float] = field(default_factory=list)
    newton_iterations: int = 0
    steps: int = 0
    rejected_steps: int = 0


def continuation_solve(
    residual: Callable[[np.ndarray, float], np.ndarray],
    jacobian: Callable[[np.ndarray, float], object],
    x0: np.ndarray,
    newton_options: NewtonOptions | None = None,
    continuation_options: ContinuationOptions | None = None,
) -> ContinuationResult:
    """Solve ``residual(x, 1.0) = 0`` by sweeping the embedding parameter.

    Parameters
    ----------
    residual, jacobian:
        Callables taking ``(x, lam)``.  At ``lam = lambda_start`` the problem
        should be easy (typically linear: sources off, or a heavily
        gmin-loaded system); at ``lam = 1`` it is the original problem.
    x0:
        Initial guess for the first (easy) problem.
    newton_options, continuation_options:
        Iteration controls.

    Raises
    ------
    ConvergenceError
        If the sweep cannot reach ``lambda = 1`` within ``max_steps`` or the
        step size under-runs ``min_step``.
    """
    nopts = newton_options or NewtonOptions()
    copts = continuation_options or ContinuationOptions()

    lam = copts.lambda_start
    step = copts.initial_step
    x = np.array(x0, dtype=float).copy()

    result = ContinuationResult(x=x)

    # Solve the easy problem first so the sweep starts from a consistent point.
    start = newton_solve(
        lambda v: residual(v, lam),
        lambda v: jacobian(v, lam),
        x,
        nopts,
        raise_on_failure=False,
    )
    if not start.converged:
        raise ConvergenceError(
            f"continuation could not solve the initial problem at lambda={lam}",
            iterations=start.iterations,
            residual_norm=start.residual_norm,
        )
    x = start.x
    result.newton_iterations += start.iterations
    result.lambdas.append(lam)

    attempts = 0
    while lam < 1.0:
        attempts += 1
        if attempts > copts.max_steps:
            raise ConvergenceError(
                f"continuation exceeded max_steps={copts.max_steps} before reaching lambda=1"
            )
        lam_trial = min(1.0, lam + step)
        trial: NewtonResult = newton_solve(
            lambda v: residual(v, lam_trial),
            lambda v: jacobian(v, lam_trial),
            x,
            nopts,
            raise_on_failure=False,
        )
        result.newton_iterations += trial.iterations
        if trial.converged:
            lam = lam_trial
            x = trial.x
            result.lambdas.append(lam)
            result.steps += 1
            step = min(copts.max_step, step * copts.growth)
            _LOG.debug("continuation accepted lambda=%.4f (step=%.3g)", lam, step)
        else:
            result.rejected_steps += 1
            step *= copts.shrink
            _LOG.debug(
                "continuation rejected lambda=%.4f, shrinking step to %.3g", lam_trial, step
            )
            if step < copts.min_step:
                raise ConvergenceError(
                    "continuation step size underflow "
                    f"(step={step:.3e} < min_step={copts.min_step:.3e}) at lambda={lam:.4f}",
                    residual_norm=trial.residual_norm,
                )

    result.x = x
    return result
