"""Krylov-subspace helpers (GMRES with pluggable preconditioning).

The MPDE Jacobian for the paper's 40 x 30 grid and a handful of circuit
unknowns is small enough for a direct sparse factorisation, but the paper
(and its reference [10], Telichevesky/Kundert/White DAC 1995) emphasises
matrix-free Krylov solution for larger problems.  This module wraps SciPy's
GMRES with an iteration counter and per-solve residual history so benchmarks
and the adaptive preconditioner-refresh policy can observe linear-solver
effort.  Preconditioners are supplied either as plain
:class:`scipy.sparse.linalg.LinearOperator` objects or as implementations of
the :class:`~repro.linalg.preconditioners.Preconditioner` protocol (whose
``degraded`` flag — e.g. an ILU that silently fell back to Jacobi — is
surfaced on the :class:`GMRESReport`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..resilience.deadline import Deadline
from ..resilience.faultinject import fault_site
from ..utils.exceptions import GMRESStagnationError, SingularMatrixError
from .preconditioners import AdaptiveRefreshPolicy, ILUPreconditioner, Preconditioner

__all__ = [
    "CachedPreconditionedGMRES",
    "GMRESReport",
    "gmres_solve",
    "make_ilu_preconditioner",
]


@dataclass
class GMRESReport:
    """Diagnostics from one preconditioned GMRES solve.

    Attributes
    ----------
    iterations:
        Total *inner* Krylov iterations across all restart cycles.
    restart_cycles:
        Number of restart cycles spanned by those iterations (derived from
        the restart length; a solve that converges inside the first cycle
        reports 1).
    converged:
        Whether GMRES reached the requested tolerance.
    residual_norm:
        On converged solves, the solver's own final (preconditioned,
        relative-scaled) residual norm estimate — no extra matvec is spent
        re-verifying a converged solve.  On failed solves, the true residual
        norm ``||b - A x||`` computed explicitly for diagnostics.
    residual_history:
        Preconditioned relative residual norm after every inner iteration —
        the per-solve convergence trace used by the solver-convergence test
        harness and the adaptive refresh policy.
    preconditioner_degraded:
        True when the preconditioner reported that a fallback weakened it
        (e.g. :func:`make_ilu_preconditioner` degrading to Jacobi after a
        failed ILU factorisation), so degraded preconditioning is detectable
        from the solve report instead of only from iteration counts.
    stagnated:
        True when a non-converged solve made essentially no progress over
        its last full restart cycle (relative residual improvement below
        the stagnation threshold) — a *stuck* solve, as opposed to one that
        was merely *slow* (ran out of ``maxiter`` while still converging).
        The recovery ladder treats the two differently: stagnation wants a
        preconditioner refresh/downgrade, slowness wants a larger budget.
    """

    iterations: int
    restart_cycles: int
    converged: bool
    residual_norm: float
    residual_history: list[float] = field(default_factory=list)
    preconditioner_degraded: bool = False
    stagnated: bool = False


def make_ilu_preconditioner(
    matrix: sp.spmatrix, *, drop_tol: float = 1e-5, fill_factor: float = 20.0
) -> ILUPreconditioner:
    """Build an incomplete-LU preconditioner for ``matrix``.

    Falls back to a Jacobi (diagonal) preconditioner if the ILU factorisation
    fails, which can happen for badly scaled or nearly singular systems.  The
    fallback is no longer silent: a warning is logged and the returned
    :class:`~repro.linalg.preconditioners.ILUPreconditioner` carries
    ``degraded=True`` (propagated into
    :attr:`GMRESReport.preconditioner_degraded` by :func:`gmres_solve`).
    """
    return ILUPreconditioner(matrix, drop_tol=drop_tol, fill_factor=fill_factor)


def _as_operator(
    preconditioner: Preconditioner | spla.LinearOperator | None,
) -> spla.LinearOperator | None:
    """Normalise a protocol implementation or raw operator for ``spla.gmres``."""
    if preconditioner is None:
        return None
    as_operator = getattr(preconditioner, "as_operator", None)
    if callable(as_operator):
        return as_operator()
    return preconditioner


def gmres_solve(
    matrix: sp.spmatrix | spla.LinearOperator,
    rhs: np.ndarray,
    *,
    preconditioner: Preconditioner | spla.LinearOperator | None = None,
    tol: float = 1e-9,
    restart: int = 80,
    maxiter: int = 2000,
    raise_on_failure: bool = True,
    stagnation_ratio: float = 0.99,
    deadline: Deadline | None = None,
) -> tuple[np.ndarray, GMRESReport]:
    """Solve ``matrix @ x = rhs`` with restarted, preconditioned GMRES.

    ``preconditioner`` may be ``None`` (a default ILU is built for sparse
    matrices), a raw :class:`~scipy.sparse.linalg.LinearOperator`, or any
    implementation of the :class:`~repro.linalg.preconditioners.Preconditioner`
    protocol.  Returns the solution and a :class:`GMRESReport`.  When
    ``raise_on_failure`` is True a non-converged solve raises
    :class:`SingularMatrixError` — or its subclass
    :class:`GMRESStagnationError` when the solve *stagnated*: the
    preconditioned residual improved by less than
    ``1 - stagnation_ratio`` over the last full restart cycle, so more
    iterations would not have helped.  ``deadline`` (a started
    :class:`~repro.resilience.deadline.Deadline`) is checked after every
    inner iteration and aborts the solve with
    :class:`~repro.utils.exceptions.DeadlineExceededError` on expiry.
    """
    fault_site("krylov.solve", raise_on_failure=raise_on_failure)
    counter = _IterationCounter(deadline=deadline)
    if preconditioner is None and sp.issparse(matrix):
        preconditioner = make_ilu_preconditioner(matrix)

    x, info = spla.gmres(
        matrix,
        rhs,
        M=_as_operator(preconditioner),
        rtol=tol,
        atol=0.0,
        restart=restart,
        maxiter=maxiter,
        callback=counter,
        callback_type="pr_norm",
    )
    converged = info == 0
    # Read the degraded flag *after* the solve: lazily-factoring
    # preconditioners (block_circulant_fast) may only discover a singular
    # harmonic system during their first application.
    degraded = bool(getattr(preconditioner, "degraded", False))
    if converged and counter.last_norm is not None:
        # GMRES's recurrence already carries the final (preconditioned,
        # relative) residual norm — reuse it instead of spending another full
        # matvec just to re-verify a converged solve.
        residual_norm = counter.last_norm * float(np.linalg.norm(rhs))
    else:
        residual = rhs - (
            matrix @ x if not callable(getattr(matrix, "matvec", None)) else matrix.matvec(x)
        )
        residual_norm = float(np.linalg.norm(residual))
    restart_cycles = -(-counter.count // max(1, int(restart))) if counter.count else 0
    stagnated = False
    if not converged:
        # No-progress detector: compare the preconditioned residual across
        # the last *full* restart cycle.  A solve that never completed a
        # cycle is "slow", not "stuck" — only a whole cycle of no progress
        # is evidence that more iterations would not help.
        cycle = max(1, int(restart))
        history = counter.history
        if len(history) > cycle:
            start_norm = history[-cycle - 1]
            end_norm = history[-1]
            stagnated = start_norm > 0.0 and end_norm > stagnation_ratio * start_norm
    report = GMRESReport(
        iterations=counter.count,
        restart_cycles=restart_cycles,
        converged=converged,
        residual_norm=residual_norm,
        residual_history=counter.history,
        preconditioner_degraded=degraded,
        stagnated=stagnated,
    )
    if not converged and raise_on_failure:
        detail = (
            f"(info={info}, residual={residual_norm:.3e}, "
            f"{report.iterations} inner iterations over {report.restart_cycles} restart cycles)"
        )
        if stagnated:
            raise GMRESStagnationError(
                f"GMRES stagnated: relative residual improved less than "
                f"{1.0 - stagnation_ratio:.2g} over the last restart cycle {detail}"
            )
        raise SingularMatrixError(f"GMRES did not converge {detail}")
    return x, report


class CachedPreconditionedGMRES:
    """The cached-preconditioner discipline shared by the Krylov front ends.

    Owns the one policy both the MPDE Newton solver and the matrix-free 1-D
    collocation solver follow for every linear solve:

    * preconditioners whose build costs no more than a few matvecs
      (``cheap_rebuild``) are rebuilt from fresh Jacobian data every solve;
      expensive factorisations (ILU) are cached across solves,
    * a cached factorisation is refreshed when the
      :class:`~repro.linalg.preconditioners.AdaptiveRefreshPolicy` flags the
      GMRES iteration trend as degraded — *before* the stale cache fails,
    * a solve that still fails against a cached factorisation rebuilds and
      retries once (a failure against a *fresh* build would only repeat
      itself, so it is reported or raised immediately).

    ``build(context)`` produces a fresh
    :class:`~repro.linalg.preconditioners.Preconditioner` from whatever
    per-iterate state the front end carries (the MPDE solver passes its
    Jacobian data arrays, the collocation solver its device evaluation).
    :meth:`solve` returns ``(solution, reports)`` — one
    :class:`GMRESReport` per GMRES attempt — so callers account iterations
    and degraded-preconditioner flags from the reports (every build is used
    by the solve that follows it, so the per-report flags cover all builds);
    the ``builds`` counter aggregates build effort.
    """

    def __init__(
        self,
        build,
        *,
        growth_factor: float = 1.6,
        slack: int = 8,
    ) -> None:
        self._build = build
        self._policy = AdaptiveRefreshPolicy(growth_factor=growth_factor, slack=slack)
        self.cached: Preconditioner | None = None
        self.builds = 0
        self._retired_harmonic_builds = 0
        self._retired_apply_dispatch_s = 0.0
        self._retired_apply_backsub_s = 0.0
        #: Cumulative wall time spent building preconditioners (including
        #: any eager per-harmonic factorisation inside the build callback).
        self.build_time_s = 0.0
        #: Cumulative wall time spent inside the GMRES solves themselves
        #: (matvecs + preconditioner applies + orthogonalisation).
        self.solve_time_s = 0.0

    @property
    def harmonic_builds(self) -> int:
        """Total lazy per-harmonic factorisations across all builds so far.

        Preconditioners that factor per-harmonic systems lazily
        (:class:`~repro.linalg.preconditioners.BlockCirculantFastPreconditioner`)
        expose a ``harmonic_factorizations`` counter; this property sums it
        over every instance this manager has owned, including replaced ones,
        so front ends can report the factorisation effort
        (``MPDEStats.preconditioner_harmonic_builds``).  Zero for modes
        without lazy per-harmonic factorisation.
        """
        current = getattr(self.cached, "harmonic_factorizations", 0)
        return self._retired_harmonic_builds + int(current)

    @property
    def apply_dispatch_time_s(self) -> float:
        """Cumulative apply-dispatch wall time across all owned instances.

        Preconditioners whose applies run on the worker-resident factor
        service (:class:`~repro.parallel.factor_service.ResidentFactorPool`)
        split each apply into back-substitution proper and everything else
        (packing, pipe commands, gathering) — this is the latter.  Zero for
        purely in-process applies.
        """
        current = getattr(self.cached, "apply_dispatch_time_s", 0.0)
        return self._retired_apply_dispatch_s + float(current)

    @property
    def apply_backsub_time_s(self) -> float:
        """Cumulative per-harmonic back-substitution wall time.

        Summed over every instance this manager has owned.  For in-process
        applies it is the summed solver-call durations; for resident-service
        applies it is the critical path (slowest worker shard) per apply.
        """
        current = getattr(self.cached, "apply_backsub_time_s", 0.0)
        return self._retired_apply_backsub_s + float(current)

    def _rebuild(self, context) -> Preconditioner:
        self._retired_harmonic_builds += int(
            getattr(self.cached, "harmonic_factorizations", 0)
        )
        self._retired_apply_dispatch_s += float(
            getattr(self.cached, "apply_dispatch_time_s", 0.0)
        )
        self._retired_apply_backsub_s += float(
            getattr(self.cached, "apply_backsub_time_s", 0.0)
        )
        start = time.perf_counter()
        self.cached = self._build(context)
        self.build_time_s += time.perf_counter() - start
        self.builds += 1
        self._policy.note_build()
        return self.cached

    def _timed_gmres(self, *args, **kwargs):
        start = time.perf_counter()
        try:
            return gmres_solve(*args, **kwargs)
        finally:
            self.solve_time_s += time.perf_counter() - start

    def solve(
        self,
        matrix: sp.spmatrix | spla.LinearOperator,
        rhs: np.ndarray,
        *,
        context,
        tol: float = 1e-9,
        restart: int = 80,
        reuse: bool = True,
        raise_on_failure: bool = True,
        deadline: Deadline | None = None,
    ) -> tuple[np.ndarray, list[GMRESReport]]:
        """One preconditioned linear solve under the caching discipline.

        With ``raise_on_failure=False`` a solve that stays non-converged even
        after the rebuild-and-retry step returns the best-effort iterate with
        ``reports[-1].converged`` False instead of raising, so outer Newton /
        continuation fallbacks can recover.  ``deadline`` is forwarded to
        every GMRES attempt (checked per inner iteration).
        """
        fresh = (
            self.cached is None
            or not reuse
            or self.cached.cheap_rebuild
            or self._policy.should_rebuild()
        )
        if fresh:
            self._rebuild(context)
        solution, report = self._timed_gmres(
            matrix,
            rhs,
            preconditioner=self.cached,
            tol=tol,
            restart=restart,
            raise_on_failure=raise_on_failure and fresh,
            deadline=deadline,
        )
        if report.converged:
            # A failed solve's (maxiter-capped) count must not seed the
            # refresh baseline — it would raise the staleness threshold past
            # anything a later solve can reach, disabling proactive refresh.
            self._policy.record(report.iterations)
        reports = [report]
        if not report.converged and not fresh:
            # The cached (stale) factorisation was not good enough even for
            # the refresh policy to catch in time: rebuild from the current
            # data and retry once before giving up.
            self._rebuild(context)
            solution, report = self._timed_gmres(
                matrix,
                rhs,
                preconditioner=self.cached,
                tol=tol,
                restart=restart,
                raise_on_failure=raise_on_failure,
                deadline=deadline,
            )
            if report.converged:
                self._policy.record(report.iterations)
            reports.append(report)
        return solution, reports


class _IterationCounter:
    """Counts GMRES inner iterations and records the residual-norm trace.

    With ``callback_type="pr_norm"`` SciPy invokes the callback once per
    *inner* Krylov iteration with the preconditioned relative residual norm,
    so the count is the total inner-iteration effort (restart cycles are
    derived from it by the caller), ``history`` is the full per-iteration
    convergence trace and ``last_norm`` is the solver's own final convergence
    measure.

    The callback is also where the cooperative per-solve deadline is
    enforced for GMRES: an expired :class:`Deadline` raises
    :class:`~repro.utils.exceptions.DeadlineExceededError` from inside the
    callback, which SciPy propagates out of ``spla.gmres`` — the iteration
    boundary is the only safe interruption point of a Krylov solve.
    """

    def __init__(self, deadline: Deadline | None = None) -> None:
        self.count = 0
        self.history: list[float] = []
        self.last_norm: float | None = None
        self._deadline = deadline

    def __call__(self, norm: float) -> None:
        self.count += 1
        norm = float(norm)
        self.history.append(norm)
        self.last_norm = norm
        if self._deadline is not None:
            self._deadline.check("gmres")
