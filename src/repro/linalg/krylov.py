"""Krylov-subspace helpers (GMRES with ILU preconditioning).

The MPDE Jacobian for the paper's 40 x 30 grid and a handful of circuit
unknowns is small enough for a direct sparse factorisation, but the paper
(and its reference [10], Telichevesky/Kundert/White DAC 1995) emphasises
matrix-free Krylov solution for larger problems.  This module wraps SciPy's
GMRES with a drop-tolerance ILU preconditioner and an iteration counter so
benchmarks can report linear-solver effort.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..utils.exceptions import SingularMatrixError

__all__ = ["GMRESReport", "gmres_solve", "make_ilu_preconditioner"]


@dataclass
class GMRESReport:
    """Diagnostics from one preconditioned GMRES solve.

    Attributes
    ----------
    iterations:
        Total *inner* Krylov iterations across all restart cycles.
    restart_cycles:
        Number of restart cycles spanned by those iterations (derived from
        the restart length; a solve that converges inside the first cycle
        reports 1).
    converged:
        Whether GMRES reached the requested tolerance.
    residual_norm:
        On converged solves, the solver's own final (preconditioned,
        relative-scaled) residual norm estimate — no extra matvec is spent
        re-verifying a converged solve.  On failed solves, the true residual
        norm ``||b - A x||`` computed explicitly for diagnostics.
    """

    iterations: int
    restart_cycles: int
    converged: bool
    residual_norm: float


def make_ilu_preconditioner(matrix: sp.spmatrix, *, drop_tol: float = 1e-5, fill_factor: float = 20.0) -> spla.LinearOperator:
    """Build an incomplete-LU preconditioner for ``matrix``.

    Falls back to a Jacobi (diagonal) preconditioner if the ILU factorisation
    fails, which can happen for badly scaled or nearly singular systems.
    """
    csc = sp.csc_matrix(matrix)
    try:
        ilu = spla.spilu(csc, drop_tol=drop_tol, fill_factor=fill_factor)
        return spla.LinearOperator(csc.shape, matvec=ilu.solve)
    except RuntimeError:
        diag = csc.diagonal()
        safe = np.where(np.abs(diag) > 1e-300, diag, 1.0)
        inv = 1.0 / safe

        def jacobi(v: np.ndarray) -> np.ndarray:
            return inv * v

        return spla.LinearOperator(csc.shape, matvec=jacobi)


def gmres_solve(
    matrix: sp.spmatrix | spla.LinearOperator,
    rhs: np.ndarray,
    *,
    preconditioner: spla.LinearOperator | None = None,
    tol: float = 1e-9,
    restart: int = 80,
    maxiter: int = 2000,
    raise_on_failure: bool = True,
) -> tuple[np.ndarray, GMRESReport]:
    """Solve ``matrix @ x = rhs`` with restarted, preconditioned GMRES.

    Returns the solution and a :class:`GMRESReport`.  When
    ``raise_on_failure`` is True a non-converged solve raises
    :class:`SingularMatrixError`.
    """
    counter = _IterationCounter()
    if preconditioner is None and sp.issparse(matrix):
        preconditioner = make_ilu_preconditioner(matrix)

    x, info = spla.gmres(
        matrix,
        rhs,
        M=preconditioner,
        rtol=tol,
        atol=0.0,
        restart=restart,
        maxiter=maxiter,
        callback=counter,
        callback_type="pr_norm",
    )
    converged = info == 0
    if converged and counter.last_norm is not None:
        # GMRES's recurrence already carries the final (preconditioned,
        # relative) residual norm — reuse it instead of spending another full
        # matvec just to re-verify a converged solve.
        residual_norm = counter.last_norm * float(np.linalg.norm(rhs))
    else:
        residual = rhs - (
            matrix @ x if not callable(getattr(matrix, "matvec", None)) else matrix.matvec(x)
        )
        residual_norm = float(np.linalg.norm(residual))
    restart_cycles = -(-counter.count // max(1, int(restart))) if counter.count else 0
    report = GMRESReport(
        iterations=counter.count,
        restart_cycles=restart_cycles,
        converged=converged,
        residual_norm=residual_norm,
    )
    if not converged and raise_on_failure:
        raise SingularMatrixError(
            f"GMRES did not converge (info={info}, residual={residual_norm:.3e}, "
            f"{report.iterations} inner iterations over {report.restart_cycles} restart cycles)"
        )
    return x, report


class _IterationCounter:
    """Counts GMRES inner iterations and remembers the last residual norm.

    With ``callback_type="pr_norm"`` SciPy invokes the callback once per
    *inner* Krylov iteration with the preconditioned relative residual norm,
    so the count is the total inner-iteration effort (restart cycles are
    derived from it by the caller) and ``last_norm`` is the solver's own
    final convergence measure.
    """

    def __init__(self) -> None:
        self.count = 0
        self.last_norm: float | None = None

    def __call__(self, norm: float) -> None:
        self.count += 1
        self.last_norm = float(norm)
