"""Generic damped Newton-Raphson solver.

Every nonlinear solve in the library — DC operating points, each implicit
time step of transient analysis, the shooting update, harmonic balance, and
the large coupled system produced by the discretised MPDE — funnels through
:func:`newton_solve`.  Centralising the iteration gives all analyses the same
damping/line-search behaviour, the same convergence criteria (SPICE-style
combined absolute/relative tests) and the same diagnostics.

The residual and Jacobian are supplied as callables.  The Jacobian may be a
dense :class:`numpy.ndarray`, any :mod:`scipy.sparse` matrix, or a
:class:`scipy.sparse.linalg.LinearOperator` (in which case a Krylov solver is
used for the linear sub-problems).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..resilience.faultinject import fault_site
from ..utils.exceptions import ConvergenceError, SingularMatrixError
from ..utils.logging import get_logger
from ..utils.options import NewtonOptions

__all__ = ["FactoredJacobian", "NewtonResult", "newton_solve", "solve_linear_system"]

_LOG = get_logger("linalg.newton")


class FactoredJacobian:
    """A pre-factorised Jacobian usable wherever :func:`newton_solve` expects one.

    Wraps a ``solve(rhs) -> dx`` callable (typically the ``solve`` method of a
    cached LU factorisation).  Returning the *same* instance from the
    ``jacobian`` callback on every iterate turns :func:`newton_solve` into a
    chord-Newton iteration — the trick the transient and shooting analyses use
    to reuse one factorisation across many implicit time steps.
    """

    __slots__ = ("_solve",)

    def __init__(self, solve: Callable[[np.ndarray], np.ndarray]) -> None:
        self._solve = solve

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Back-substitute ``rhs`` through the stored factorisation."""
        return self._solve(rhs)


@dataclass
class NewtonResult:
    """Outcome of a Newton-Raphson solve.

    Attributes
    ----------
    x:
        The converged iterate (or the best iterate when ``converged`` is
        False and the caller asked not to raise).
    converged:
        Whether both the residual and the update criteria were met.
    iterations:
        Number of Newton iterations performed.
    residual_norm:
        Infinity norm of the residual at the final iterate.
    update_norm:
        Infinity norm of the last Newton update.
    residual_history:
        Residual norms per iteration (useful to verify quadratic convergence
        in tests and to diagnose stagnation).
    """

    x: np.ndarray
    converged: bool
    iterations: int
    residual_norm: float
    update_norm: float
    residual_history: list[float] = field(default_factory=list)


def solve_linear_system(jacobian, rhs: np.ndarray, *, gmres_tol: float = 1e-10) -> np.ndarray:
    """Solve ``jacobian @ dx = rhs`` for dense, sparse or operator Jacobians.

    Raises
    ------
    SingularMatrixError
        If the factorisation fails or the solution contains non-finite
        entries (the usual symptom of a structurally singular MNA matrix).
    """
    if isinstance(jacobian, FactoredJacobian):
        dx = np.asarray(jacobian.solve(rhs), dtype=float).reshape(rhs.shape)
        if not np.all(np.isfinite(dx)):
            raise SingularMatrixError(
                "factored-Jacobian solve produced non-finite values (stale or singular "
                "factorisation)"
            )
        return dx

    if isinstance(jacobian, spla.LinearOperator) and not sp.issparse(jacobian):
        dx, info = spla.gmres(jacobian, rhs, rtol=gmres_tol, atol=0.0)
        if info != 0:
            raise SingularMatrixError(
                f"GMRES failed to solve the Newton linear system (info={info})"
            )
        return dx

    try:
        if sp.issparse(jacobian):
            dx = spla.spsolve(sp.csc_matrix(jacobian), rhs)
        else:
            dx = np.linalg.solve(np.asarray(jacobian, dtype=float), rhs)
    except (np.linalg.LinAlgError, RuntimeError) as exc:
        raise SingularMatrixError(f"linear solve failed: {exc}") from exc

    dx = np.asarray(dx, dtype=float).reshape(rhs.shape)
    if not np.all(np.isfinite(dx)):
        raise SingularMatrixError("linear solve produced non-finite values (singular Jacobian?)")
    return dx


def _norm(v: np.ndarray) -> float:
    if v.size == 0:
        return 0.0
    return float(np.max(np.abs(v)))


def newton_solve(
    residual: Callable[[np.ndarray], np.ndarray],
    jacobian: Callable[[np.ndarray], object],
    x0: Sequence[float] | np.ndarray,
    options: NewtonOptions | None = None,
    *,
    raise_on_failure: bool = True,
    callback: Callable[[int, np.ndarray, float], None] | None = None,
) -> NewtonResult:
    """Solve ``residual(x) = 0`` by damped Newton-Raphson.

    Parameters
    ----------
    residual:
        Maps an iterate ``x`` to the residual vector ``F(x)``.
    jacobian:
        Maps an iterate ``x`` to ``dF/dx`` (dense array, sparse matrix or
        ``LinearOperator``).
    x0:
        Initial guess.
    options:
        Iteration controls; defaults to :class:`NewtonOptions()`.
    raise_on_failure:
        When True (default) a :class:`ConvergenceError` is raised if the
        iteration budget is exhausted; when False the best iterate is
        returned with ``converged=False`` so continuation drivers can react.
    callback:
        Optional ``callback(iteration, x, residual_norm)`` hook, invoked after
        every accepted iterate.

    Notes
    -----
    Convergence requires *both*

    * ``||F(x)||_inf <= abstol`` and
    * ``||dx||_inf <= reltol * ||x||_inf + abstol``

    which mirrors the combined check used by SPICE-family simulators.  A
    simple backtracking line search halves the damping factor until the
    residual norm stops increasing (or ``min_damping`` is reached), which is
    what makes exponential device models (diodes, subthreshold MOSFETs)
    tractable from poor initial guesses.
    """
    opts = options or NewtonOptions()
    x = np.array(x0, dtype=float).copy()
    if x.ndim != 1:
        x = x.ravel()

    fx = np.asarray(residual(x), dtype=float)
    res_norm = _norm(fx)
    history = [res_norm]
    update_norm = np.inf

    if res_norm <= opts.abstol:
        return NewtonResult(
            x=x,
            converged=True,
            iterations=0,
            residual_norm=res_norm,
            update_norm=0.0,
            residual_history=history,
        )

    for iteration in range(1, opts.max_iterations + 1):
        jac = jacobian(x)
        fault_site("newton.linear_solve", iteration=iteration - 1)
        dx = solve_linear_system(jac, -fx)

        step_norm = _norm(dx)
        if np.isfinite(opts.max_step_norm) and step_norm > opts.max_step_norm:
            dx = dx * (opts.max_step_norm / step_norm)
            step_norm = opts.max_step_norm

        # Backtracking line search on the residual norm.
        damping = opts.damping
        accepted = False
        best_x, best_fx, best_norm = x, fx, res_norm
        while damping >= opts.min_damping:
            x_trial = x + damping * dx
            fx_trial = np.asarray(residual(x_trial), dtype=float)
            trial_norm = _norm(fx_trial)
            if np.isfinite(trial_norm) and trial_norm < res_norm * (1.0 + 1e-12):
                best_x, best_fx, best_norm = x_trial, fx_trial, trial_norm
                accepted = True
                break
            if np.isfinite(trial_norm) and trial_norm < best_norm:
                best_x, best_fx, best_norm = x_trial, fx_trial, trial_norm
            damping *= 0.5
        if not accepted:
            # Accept the best trial anyway; Newton sometimes needs to pass
            # through a residual increase (e.g. crossing a device corner).
            x_trial = best_x if best_x is not x else x + opts.min_damping * dx
            fx_trial = best_fx if best_x is not x else np.asarray(residual(x_trial), dtype=float)
            trial_norm = _norm(fx_trial)
            best_x, best_fx, best_norm = x_trial, fx_trial, trial_norm
            damping = opts.min_damping

        update_norm = _norm(best_x - x)
        x, fx, res_norm = best_x, best_fx, best_norm
        history.append(res_norm)

        if callback is not None:
            callback(iteration, x, res_norm)
        _LOG.debug(
            "newton iter=%d residual=%.3e update=%.3e damping=%.3g",
            iteration,
            res_norm,
            update_norm,
            damping,
        )

        x_scale = _norm(x)
        residual_ok = res_norm <= opts.abstol
        update_ok = update_norm <= opts.reltol * x_scale + opts.abstol
        if residual_ok and update_ok:
            return NewtonResult(
                x=x,
                converged=True,
                iterations=iteration,
                residual_norm=res_norm,
                update_norm=update_norm,
                residual_history=history,
            )

    if raise_on_failure:
        raise ConvergenceError(
            f"Newton-Raphson did not converge in {opts.max_iterations} iterations "
            f"(residual norm {res_norm:.3e})",
            iterations=opts.max_iterations,
            residual_norm=res_norm,
        )
    return NewtonResult(
        x=x,
        converged=False,
        iterations=opts.max_iterations,
        residual_norm=res_norm,
        update_norm=update_norm,
        residual_history=history,
    )
