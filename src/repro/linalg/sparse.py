"""Sparse-matrix assembly helpers.

MNA matrices and the block-structured MPDE Jacobian are assembled from many
small contributions ("stamps").  :class:`COOBuilder` accumulates triplets and
converts them to CSR/CSC once; :func:`block_diagonal` and
:func:`kron_identity` build the structured operators the MPDE discretisation
needs (per-grid-point device Jacobians combined with differentiation matrices
acting along the time axes).

The compiled-assembly fast path lives here too:

* :class:`StampPattern` — the symbolic side of stamped assembly: the raw
  (row, col) sequence a circuit's devices produce, deduplicated once into a
  CSR structure, with a vectorised numeric scatter (``dedup``) that turns
  per-point raw stamp values into CSR data arrays without touching symbolic
  work again.
* :class:`BlockDiagStructure` — precomputed CSR index arrays for
  ``blockdiag(A_0 .. A_{P-1})`` when all blocks share one pattern, so the
  block-diagonal matrix is a pure data-relabelling per Newton iteration.
* :class:`CollocationJacobianAssembler` — the symbolic structure of
  ``(D kron I_n) . blockdiag(C_p) + blockdiag(G_p)`` (the MPDE / collocation
  Jacobian), computed once per problem; per-iteration assembly is a single
  ``bincount`` scatter into a ready-made CSC skeleton.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np
import scipy.sparse as sp

__all__ = [
    "COOBuilder",
    "StampPattern",
    "BlockDiagStructure",
    "CollocationJacobianAssembler",
    "block_diagonal",
    "block_diag_from_array",
    "kron_identity",
    "identity_kron",
    "periodic_backward_difference",
    "periodic_bdf2_difference",
    "periodic_central_difference",
    "periodic_fourier_differentiation",
]


class COOBuilder:
    """Accumulates (row, col, value) triplets for a sparse matrix.

    Device stamps call :meth:`add` with possibly repeated (row, col) pairs;
    duplicate entries are summed when the matrix is materialised, exactly the
    semantics MNA stamping needs.  Entries addressed to the "ground row/col"
    (index < 0) are silently dropped, which lets device code stamp without
    special-casing the ground node.
    """

    def __init__(self, n_rows: int, n_cols: int | None = None) -> None:
        self.n_rows = int(n_rows)
        self.n_cols = int(n_cols if n_cols is not None else n_rows)
        self._rows: list[int] = []
        self._cols: list[int] = []
        self._vals: list[float] = []

    def add(self, row: int, col: int, value: float) -> None:
        """Add ``value`` at (row, col); ignored if either index is negative."""
        if row < 0 or col < 0 or value == 0.0:
            return
        self._rows.append(row)
        self._cols.append(col)
        self._vals.append(float(value))

    def add_block(self, rows: Sequence[int], cols: Sequence[int], block: np.ndarray) -> None:
        """Add a dense ``block`` at the (rows x cols) positions."""
        block = np.asarray(block, dtype=float)
        for i, r in enumerate(rows):
            if r < 0:
                continue
            for j, c in enumerate(cols):
                if c < 0:
                    continue
                v = block[i, j]
                if v != 0.0:
                    self._rows.append(r)
                    self._cols.append(c)
                    self._vals.append(float(v))

    def tocsr(self) -> sp.csr_matrix:
        """Materialise the accumulated triplets as a CSR matrix."""
        return sp.coo_matrix(
            (self._vals, (self._rows, self._cols)), shape=(self.n_rows, self.n_cols)
        ).tocsr()

    def tocsc(self) -> sp.csc_matrix:
        """Materialise the accumulated triplets as a CSC matrix."""
        return self.tocsr().tocsc()

    def __len__(self) -> int:
        return len(self._vals)


class StampPattern:
    """Compiled sparsity pattern of a stamped (MNA-style) matrix.

    ``raw_rows`` / ``raw_cols`` record every ``add`` call the devices make,
    in stamp order; ``slot`` maps each raw entry onto its deduplicated CSR
    slot.  The unique entries are kept in row-major (CSR) order so that
    ``(data, indices, indptr)`` can be handed to :class:`scipy.sparse.csr_matrix`
    without any per-call sorting or duplicate summation.

    ``dedup`` sums the raw per-point values into CSR data arrays with a
    single ``bincount``; the summation visits raw entries in stamp order, so
    the result is bit-for-bit identical to dense ``+=`` accumulation.
    """

    def __init__(self, raw_rows: Sequence[int], raw_cols: Sequence[int], n: int) -> None:
        self.n = int(n)
        self.raw_rows = np.asarray(raw_rows, dtype=np.int64)
        self.raw_cols = np.asarray(raw_cols, dtype=np.int64)
        if self.raw_rows.shape != self.raw_cols.shape or self.raw_rows.ndim != 1:
            raise ValueError("raw_rows and raw_cols must be 1-D arrays of equal length")
        if self.raw_rows.size and (
            self.raw_rows.min() < 0
            or self.raw_cols.min() < 0
            or self.raw_rows.max() >= n
            or self.raw_cols.max() >= n
        ):
            raise ValueError("stamp pattern indices out of range")
        keys = self.raw_rows * self.n + self.raw_cols
        unique_keys, slot = np.unique(keys, return_inverse=True)
        self.slot = slot.astype(np.int64)
        self.rows = (unique_keys // self.n).astype(np.int32)
        self.cols = (unique_keys % self.n).astype(np.int32)
        self.indices = self.cols.copy()
        counts = np.bincount(self.rows, minlength=self.n)
        self.indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int32)
        self._dedup_index_cache: dict[int, np.ndarray] = {}

    @property
    def nnz_raw(self) -> int:
        """Number of raw stamp contributions (before duplicate merging)."""
        return int(self.raw_rows.size)

    @property
    def nnz(self) -> int:
        """Number of structural nonzeros after duplicate merging."""
        return int(self.rows.size)

    def dedup(self, raw_values: np.ndarray) -> np.ndarray:
        """Sum raw per-point stamp values ``(P, nnz_raw)`` into ``(P, nnz)`` CSR data."""
        raw_values = np.asarray(raw_values, dtype=float)
        if raw_values.ndim != 2 or raw_values.shape[1] != self.nnz_raw:
            raise ValueError(
                f"raw values must have shape (P, {self.nnz_raw}), got {raw_values.shape}"
            )
        n_points = raw_values.shape[0]
        if self.nnz == 0:
            return np.zeros((n_points, 0))
        index = self._dedup_index_cache.get(n_points)
        if index is None:
            offsets = np.arange(n_points, dtype=np.int64) * self.nnz
            index = (offsets[:, None] + self.slot[None, :]).ravel()
            if len(self._dedup_index_cache) > 4:
                self._dedup_index_cache.clear()
            self._dedup_index_cache[n_points] = index
        summed = np.bincount(index, weights=raw_values.ravel(), minlength=n_points * self.nnz)
        return summed.reshape(n_points, self.nnz)

    def csr_from_data(self, data: np.ndarray) -> sp.csr_matrix:
        """CSR matrix for one point's deduplicated data row (shape ``(nnz,)``)."""
        data = np.asarray(data, dtype=float)
        if data.shape != (self.nnz,):
            raise ValueError(f"data must have shape ({self.nnz},), got {data.shape}")
        return sp.csr_matrix((data, self.indices, self.indptr), shape=(self.n, self.n))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StampPattern(n={self.n}, nnz={self.nnz}, raw={self.nnz_raw})"


class BlockDiagStructure:
    """Precomputed CSR structure of ``blockdiag(A_0 .. A_{P-1})`` with a shared pattern.

    All blocks share one :class:`StampPattern`; building the block-diagonal
    matrix for new numeric values is then a single :class:`scipy.sparse.csr_matrix`
    construction from precomputed index arrays (no COO conversion, no symbolic
    work per call).
    """

    def __init__(self, pattern: StampPattern, n_blocks: int) -> None:
        self.pattern = pattern
        self.n_blocks = int(n_blocks)
        n = pattern.n
        self.size = self.n_blocks * n
        nnz = pattern.nnz
        offsets = np.repeat(np.arange(self.n_blocks, dtype=np.int64) * n, nnz)
        self.indices = (np.tile(pattern.indices.astype(np.int64), self.n_blocks) + offsets).astype(
            np.int32
        )
        row_counts = np.tile(np.diff(pattern.indptr), self.n_blocks)
        self.indptr = np.concatenate([[0], np.cumsum(row_counts)]).astype(np.int64)

    def matrix(self, data: np.ndarray) -> sp.csr_matrix:
        """Block-diagonal CSR from deduplicated per-point data ``(P, nnz)``."""
        data = np.asarray(data, dtype=float)
        if data.shape != (self.n_blocks, self.pattern.nnz):
            raise ValueError(
                f"data must have shape ({self.n_blocks}, {self.pattern.nnz}), got {data.shape}"
            )
        return sp.csr_matrix(
            (data.ravel(), self.indices, self.indptr), shape=(self.size, self.size)
        )


class CollocationJacobianAssembler:
    """Symbolic-once / numeric-per-iteration assembly of the collocation Jacobian.

    The Jacobian of every collocation-in-time discretisation in the library
    (the 2-D MPDE grid and the 1-D periodic-steady-state solver alike) has
    the form::

        J = (D kron I_n) . blockdiag(C_0 .. C_{P-1}) + blockdiag(G_0 .. G_{P-1})

    with ``D`` a constant ``(P, P)`` differentiation operator and ``C_p`` /
    ``G_p`` the per-point device Jacobians.  Because ``D`` and the stamp
    patterns never change, the *structure* of ``J`` — the merged CSC index
    arrays and the mapping of every contribution onto its CSC slot — is
    computed once here.  :meth:`assemble` then reduces each Newton iteration
    to one broadcast multiply plus one ``bincount`` scatter.
    """

    def __init__(
        self,
        derivative: sp.spmatrix | np.ndarray,
        dynamic_pattern: StampPattern,
        static_pattern: StampPattern,
        n: int,
    ) -> None:
        coo = sp.coo_matrix(sp.csr_matrix(derivative))
        if coo.shape[0] != coo.shape[1]:
            raise ValueError("derivative operator must be square")
        self.n = int(n)
        self.n_points = int(coo.shape[0])
        self.size = self.n_points * self.n
        self.dynamic_pattern = dynamic_pattern
        self.static_pattern = static_pattern
        self._d_rows = coo.row.astype(np.int64)
        self._d_cols = coo.col.astype(np.int64)
        self._d_vals = coo.data.astype(float).copy()

        n64 = np.int64(self.n)
        size64 = np.int64(self.size)
        # (D kron I) . blockdiag(C): D entry (i, j) scales block C_j into
        # global block position (i, j).
        c_rows = (self._d_rows[:, None] * n64 + dynamic_pattern.rows[None, :]).ravel()
        c_cols = (self._d_cols[:, None] * n64 + dynamic_pattern.cols[None, :]).ravel()
        # blockdiag(G): block p sits at global block position (p, p).
        p_off = np.arange(self.n_points, dtype=np.int64) * n64
        g_rows = (p_off[:, None] + static_pattern.rows[None, :]).ravel()
        g_cols = (p_off[:, None] + static_pattern.cols[None, :]).ravel()
        # Column-major keys put the merged entries directly into CSC order.
        keys = np.concatenate([c_cols * size64 + c_rows, g_cols * size64 + g_rows])
        unique_keys, slot = np.unique(keys, return_inverse=True)
        self._slot = slot.astype(np.int64)
        self.nnz = int(unique_keys.size)
        self._csc_rows = (unique_keys % size64).astype(np.int32)
        col_of = (unique_keys // size64).astype(np.int64)
        counts = np.bincount(col_of, minlength=self.size)
        self._csc_indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)

    def assemble(self, c_data: np.ndarray, g_data: np.ndarray) -> sp.csc_matrix:
        """Numeric assembly of ``J`` from per-point CSR data arrays.

        ``c_data`` has shape ``(P, dynamic_pattern.nnz)`` and ``g_data``
        ``(P, static_pattern.nnz)``, both aligned with the patterns given at
        construction (the arrays produced by ``MNASystem.evaluate_sparse``).
        """
        c_data = np.asarray(c_data, dtype=float)
        g_data = np.asarray(g_data, dtype=float)
        expected_c = (self.n_points, self.dynamic_pattern.nnz)
        expected_g = (self.n_points, self.static_pattern.nnz)
        if c_data.shape != expected_c:
            raise ValueError(f"c_data must have shape {expected_c}, got {c_data.shape}")
        if g_data.shape != expected_g:
            raise ValueError(f"g_data must have shape {expected_g}, got {g_data.shape}")
        contrib_c = (self._d_vals[:, None] * c_data[self._d_cols, :]).ravel()
        contributions = np.concatenate([contrib_c, g_data.ravel()])
        data = np.bincount(self._slot, weights=contributions, minlength=self.nnz)
        return sp.csc_matrix(
            (data, self._csc_rows, self._csc_indptr), shape=(self.size, self.size)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CollocationJacobianAssembler(P={self.n_points}, n={self.n}, nnz={self.nnz})"
        )


def block_diagonal(blocks: Iterable[sp.spmatrix | np.ndarray]) -> sp.csr_matrix:
    """Stack ``blocks`` on the diagonal of one sparse matrix."""
    return sp.block_diag(list(blocks), format="csr")


def block_diag_from_array(blocks: np.ndarray) -> sp.csr_matrix:
    """Block-diagonal sparse matrix from a 3-D array of equal-size blocks.

    ``blocks`` has shape ``(P, n, n)``; block ``p`` occupies rows/columns
    ``p*n ... (p+1)*n - 1``.  This is the fast path used by the MPDE
    assembly, which needs a block-diagonal matrix of per-grid-point device
    Jacobians (1200 blocks for the paper's 40 x 30 grid) on every Newton
    iteration.
    """
    blocks = np.asarray(blocks, dtype=float)
    if blocks.ndim != 3 or blocks.shape[1] != blocks.shape[2]:
        raise ValueError(f"blocks must have shape (P, n, n), got {blocks.shape}")
    n_blocks, n, _ = blocks.shape
    local_rows, local_cols = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    offsets = (np.arange(n_blocks) * n)[:, None, None]
    rows = (offsets + local_rows[None, :, :]).ravel()
    cols = (offsets + local_cols[None, :, :]).ravel()
    values = blocks.ravel()
    size = n_blocks * n
    return sp.coo_matrix((values, (rows, cols)), shape=(size, size)).tocsr()


def kron_identity(matrix: sp.spmatrix | np.ndarray, n: int) -> sp.csr_matrix:
    """Return ``kron(matrix, I_n)`` in CSR format.

    Used to lift a differentiation matrix acting on grid points to one acting
    on grid points x circuit unknowns (unknowns are stored contiguously per
    grid point).
    """
    return sp.kron(sp.csr_matrix(matrix), sp.identity(n, format="csr"), format="csr")


def identity_kron(n: int, matrix: sp.spmatrix | np.ndarray) -> sp.csr_matrix:
    """Return ``kron(I_n, matrix)`` in CSR format."""
    return sp.kron(sp.identity(n, format="csr"), sp.csr_matrix(matrix), format="csr")


def periodic_backward_difference(n: int, period: float) -> sp.csr_matrix:
    """First-derivative matrix for a uniform periodic grid, backward Euler.

    For samples ``y_k = y(k * h)`` with ``h = period / n`` and periodic wrap
    ``y_{-1} = y_{n-1}``, row ``k`` approximates ``y'(k h) ~ (y_k - y_{k-1}) / h``.
    Backward differencing is unconditionally stable and damps the spurious
    oscillations that central differencing produces on the sharp switching
    waveforms the paper targets.
    """
    if n < 2:
        raise ValueError("periodic difference matrices need at least 2 points")
    h = period / n
    builder = COOBuilder(n, n)
    for k in range(n):
        builder.add(k, k, 1.0 / h)
        builder.add(k, (k - 1) % n, -1.0 / h)
    return builder.tocsr()


def periodic_bdf2_difference(n: int, period: float) -> sp.csr_matrix:
    """Second-order backward (BDF2) first-derivative matrix on a periodic grid.

    Row ``k`` approximates ``y'(k h) ~ (1.5 y_k - 2 y_{k-1} + 0.5 y_{k-2}) / h``
    with periodic wrap-around.  Like backward Euler it damps high-frequency
    error modes (important for the switching waveforms the MPDE method
    targets), but it is second-order accurate, which matters for extracting
    small difference-frequency components without excessive grid resolution.
    """
    if n < 3:
        raise ValueError("BDF2 differences need at least 3 points")
    h = period / n
    builder = COOBuilder(n, n)
    for k in range(n):
        builder.add(k, k, 1.5 / h)
        builder.add(k, (k - 1) % n, -2.0 / h)
        builder.add(k, (k - 2) % n, 0.5 / h)
    return builder.tocsr()


def periodic_central_difference(n: int, period: float) -> sp.csr_matrix:
    """Second-order central first-derivative matrix on a uniform periodic grid."""
    if n < 3:
        raise ValueError("central differences need at least 3 points")
    h = period / n
    builder = COOBuilder(n, n)
    for k in range(n):
        builder.add(k, (k + 1) % n, 0.5 / h)
        builder.add(k, (k - 1) % n, -0.5 / h)
    return builder.tocsr()


def periodic_fourier_differentiation(n: int, period: float) -> np.ndarray:
    """Spectral (Fourier) differentiation matrix on a uniform periodic grid.

    Dense (n x n); exact for trigonometric polynomials resolvable on the
    grid.  Offered for smooth problems and for cross-validating the
    finite-difference operators in tests; the time-domain methods of the
    paper deliberately avoid relying on it.
    """
    if n < 2:
        raise ValueError("Fourier differentiation needs at least 2 points")
    k = np.fft.fftfreq(n, d=period / n) * 2.0 * np.pi  # angular wavenumbers
    # Differentiate each unit basis vector via FFT; column j of the result is
    # D @ e_j, i.e. the j-th column of the differentiation matrix.
    eye = np.eye(n)
    spectra = np.fft.fft(eye, axis=0)
    derivative = np.real(np.fft.ifft(1j * k[:, None] * spectra, axis=0))
    return derivative
