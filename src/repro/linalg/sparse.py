"""Sparse-matrix assembly helpers.

MNA matrices and the block-structured MPDE Jacobian are assembled from many
small contributions ("stamps").  :class:`COOBuilder` accumulates triplets and
converts them to CSR/CSC once; :func:`block_diagonal` and
:func:`kron_identity` build the structured operators the MPDE discretisation
needs (per-grid-point device Jacobians combined with differentiation matrices
acting along the time axes).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np
import scipy.sparse as sp

__all__ = [
    "COOBuilder",
    "block_diagonal",
    "block_diag_from_array",
    "kron_identity",
    "identity_kron",
    "periodic_backward_difference",
    "periodic_bdf2_difference",
    "periodic_central_difference",
    "periodic_fourier_differentiation",
]


class COOBuilder:
    """Accumulates (row, col, value) triplets for a sparse matrix.

    Device stamps call :meth:`add` with possibly repeated (row, col) pairs;
    duplicate entries are summed when the matrix is materialised, exactly the
    semantics MNA stamping needs.  Entries addressed to the "ground row/col"
    (index < 0) are silently dropped, which lets device code stamp without
    special-casing the ground node.
    """

    def __init__(self, n_rows: int, n_cols: int | None = None) -> None:
        self.n_rows = int(n_rows)
        self.n_cols = int(n_cols if n_cols is not None else n_rows)
        self._rows: list[int] = []
        self._cols: list[int] = []
        self._vals: list[float] = []

    def add(self, row: int, col: int, value: float) -> None:
        """Add ``value`` at (row, col); ignored if either index is negative."""
        if row < 0 or col < 0 or value == 0.0:
            return
        self._rows.append(row)
        self._cols.append(col)
        self._vals.append(float(value))

    def add_block(self, rows: Sequence[int], cols: Sequence[int], block: np.ndarray) -> None:
        """Add a dense ``block`` at the (rows x cols) positions."""
        block = np.asarray(block, dtype=float)
        for i, r in enumerate(rows):
            if r < 0:
                continue
            for j, c in enumerate(cols):
                if c < 0:
                    continue
                v = block[i, j]
                if v != 0.0:
                    self._rows.append(r)
                    self._cols.append(c)
                    self._vals.append(float(v))

    def tocsr(self) -> sp.csr_matrix:
        """Materialise the accumulated triplets as a CSR matrix."""
        return sp.coo_matrix(
            (self._vals, (self._rows, self._cols)), shape=(self.n_rows, self.n_cols)
        ).tocsr()

    def tocsc(self) -> sp.csc_matrix:
        """Materialise the accumulated triplets as a CSC matrix."""
        return self.tocsr().tocsc()

    def __len__(self) -> int:
        return len(self._vals)


def block_diagonal(blocks: Iterable[sp.spmatrix | np.ndarray]) -> sp.csr_matrix:
    """Stack ``blocks`` on the diagonal of one sparse matrix."""
    return sp.block_diag(list(blocks), format="csr")


def block_diag_from_array(blocks: np.ndarray) -> sp.csr_matrix:
    """Block-diagonal sparse matrix from a 3-D array of equal-size blocks.

    ``blocks`` has shape ``(P, n, n)``; block ``p`` occupies rows/columns
    ``p*n ... (p+1)*n - 1``.  This is the fast path used by the MPDE
    assembly, which needs a block-diagonal matrix of per-grid-point device
    Jacobians (1200 blocks for the paper's 40 x 30 grid) on every Newton
    iteration.
    """
    blocks = np.asarray(blocks, dtype=float)
    if blocks.ndim != 3 or blocks.shape[1] != blocks.shape[2]:
        raise ValueError(f"blocks must have shape (P, n, n), got {blocks.shape}")
    n_blocks, n, _ = blocks.shape
    local_rows, local_cols = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    offsets = (np.arange(n_blocks) * n)[:, None, None]
    rows = (offsets + local_rows[None, :, :]).ravel()
    cols = (offsets + local_cols[None, :, :]).ravel()
    values = blocks.ravel()
    size = n_blocks * n
    return sp.coo_matrix((values, (rows, cols)), shape=(size, size)).tocsr()


def kron_identity(matrix: sp.spmatrix | np.ndarray, n: int) -> sp.csr_matrix:
    """Return ``kron(matrix, I_n)`` in CSR format.

    Used to lift a differentiation matrix acting on grid points to one acting
    on grid points x circuit unknowns (unknowns are stored contiguously per
    grid point).
    """
    return sp.kron(sp.csr_matrix(matrix), sp.identity(n, format="csr"), format="csr")


def identity_kron(n: int, matrix: sp.spmatrix | np.ndarray) -> sp.csr_matrix:
    """Return ``kron(I_n, matrix)`` in CSR format."""
    return sp.kron(sp.identity(n, format="csr"), sp.csr_matrix(matrix), format="csr")


def periodic_backward_difference(n: int, period: float) -> sp.csr_matrix:
    """First-derivative matrix for a uniform periodic grid, backward Euler.

    For samples ``y_k = y(k * h)`` with ``h = period / n`` and periodic wrap
    ``y_{-1} = y_{n-1}``, row ``k`` approximates ``y'(k h) ~ (y_k - y_{k-1}) / h``.
    Backward differencing is unconditionally stable and damps the spurious
    oscillations that central differencing produces on the sharp switching
    waveforms the paper targets.
    """
    if n < 2:
        raise ValueError("periodic difference matrices need at least 2 points")
    h = period / n
    builder = COOBuilder(n, n)
    for k in range(n):
        builder.add(k, k, 1.0 / h)
        builder.add(k, (k - 1) % n, -1.0 / h)
    return builder.tocsr()


def periodic_bdf2_difference(n: int, period: float) -> sp.csr_matrix:
    """Second-order backward (BDF2) first-derivative matrix on a periodic grid.

    Row ``k`` approximates ``y'(k h) ~ (1.5 y_k - 2 y_{k-1} + 0.5 y_{k-2}) / h``
    with periodic wrap-around.  Like backward Euler it damps high-frequency
    error modes (important for the switching waveforms the MPDE method
    targets), but it is second-order accurate, which matters for extracting
    small difference-frequency components without excessive grid resolution.
    """
    if n < 3:
        raise ValueError("BDF2 differences need at least 3 points")
    h = period / n
    builder = COOBuilder(n, n)
    for k in range(n):
        builder.add(k, k, 1.5 / h)
        builder.add(k, (k - 1) % n, -2.0 / h)
        builder.add(k, (k - 2) % n, 0.5 / h)
    return builder.tocsr()


def periodic_central_difference(n: int, period: float) -> sp.csr_matrix:
    """Second-order central first-derivative matrix on a uniform periodic grid."""
    if n < 3:
        raise ValueError("central differences need at least 3 points")
    h = period / n
    builder = COOBuilder(n, n)
    for k in range(n):
        builder.add(k, (k + 1) % n, 0.5 / h)
        builder.add(k, (k - 1) % n, -0.5 / h)
    return builder.tocsr()


def periodic_fourier_differentiation(n: int, period: float) -> np.ndarray:
    """Spectral (Fourier) differentiation matrix on a uniform periodic grid.

    Dense (n x n); exact for trigonometric polynomials resolvable on the
    grid.  Offered for smooth problems and for cross-validating the
    finite-difference operators in tests; the time-domain methods of the
    paper deliberately avoid relying on it.
    """
    if n < 2:
        raise ValueError("Fourier differentiation needs at least 2 points")
    k = np.fft.fftfreq(n, d=period / n) * 2.0 * np.pi  # angular wavenumbers
    # Differentiate each unit basis vector via FFT; column j of the result is
    # D @ e_j, i.e. the j-th column of the differentiation matrix.
    eye = np.eye(n)
    spectra = np.fft.fft(eye, axis=0)
    derivative = np.real(np.fft.ifft(1j * k[:, None] * spectra, axis=0))
    return derivative
