"""Execution-backend detection and resolution for the parallel layer.

The parallel execution layer has exactly two kernel backends:

* ``"serial"`` — every hot path runs in the calling process (the behaviour
  of every PR before this one).
* ``"sharded"`` — the batched evaluation engine's ``(n_group, P)`` blocks
  are sharded along the ``P`` (grid-point) axis across a pool of forked
  worker processes (:class:`~repro.parallel.pool.ShardedKernelPool`), and
  the partially-averaged preconditioner's independent per-slow-harmonic LU
  factorisations fan out over a thread pool
  (:class:`~repro.parallel.pool.WorkerPool`).

Whether sharding can *work* at all depends on the environment: process
sharding needs the ``fork`` start method (the engine's class kernels are
closures — deliberately, see ``circuits/engine.py`` — so they cannot be
pickled to ``spawn``-ed workers; forked workers inherit the compiled engine
for free), and it only *pays* with more than one CPU.  This module owns that
decision so every front end (``MNASystem``, the MPDE solver, the collocation
solver, the benchmarks) degrades in exactly the same way:

* capabilities are probed once (:func:`detect_capabilities`) and cached;
* :func:`resolve_execution` maps a requested ``(backend, n_workers)`` pair
  onto what will actually run, with a human-readable ``fallback_reason``
  whenever the request could not be honoured — the string surfaced as
  ``MPDEStats.parallel_fallback_reason``.

The auto/explicit split matters on constrained runners: with
``n_workers=None`` (auto) a single-CPU environment resolves to the serial
backend — sharding cannot beat the serial path without a second core — while
an *explicit* ``n_workers >= 2`` is honoured whenever ``fork`` exists, so
correctness tests (and the ``n_workers=2`` CI job) exercise the real worker
protocol even on one-core containers.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass

from ..utils.exceptions import ConfigurationError
from ..utils.options import KERNEL_BACKENDS

__all__ = [
    "KERNEL_BACKENDS",
    "Capabilities",
    "ResolvedExecution",
    "detect_capabilities",
    "resolve_execution",
]

#: Auto mode never starts more workers than this — beyond a handful of
#: shards the per-worker dispatch overhead dominates the kernel time for
#: the problem sizes this library targets (see ``docs/parallel.md``).
MAX_AUTO_WORKERS = 8


@dataclass(frozen=True)
class Capabilities:
    """What the current environment supports, probed once per process.

    Attributes
    ----------
    cpu_count:
        Usable CPUs — the scheduler affinity mask when the platform exposes
        one (a cgroup-limited container may report fewer CPUs there than
        ``os.cpu_count()``), otherwise ``os.cpu_count()``.
    fork_available:
        Whether the ``fork`` multiprocessing start method exists.  Process
        sharding is fork-only: the engine kernels are closures and forked
        workers inherit the compiled engine instead of unpickling it.
    serial_only_reason:
        ``None`` when auto-selected sharding is viable; otherwise the reason
        the environment auto-selects the serial backend.
    """

    cpu_count: int
    fork_available: bool
    serial_only_reason: str | None


_CAPABILITIES: Capabilities | None = None


def _probe_capabilities() -> Capabilities:
    try:
        cpu_count = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux platforms
        cpu_count = os.cpu_count() or 1
    fork_available = "fork" in multiprocessing.get_all_start_methods()
    if not fork_available:
        reason = (
            "the 'fork' multiprocessing start method is unavailable on this "
            "platform (the engine kernels are closures and cannot be pickled "
            "to spawn-ed workers)"
        )
    elif cpu_count <= 1:
        # The count comes from the scheduler affinity mask where available
        # (a cgroup-limited container may report 1 here while os.cpu_count()
        # still sees the host's cores) — say so, or the diagnostic sends
        # users to an API that will contradict it.
        reason = (
            f"only {cpu_count} usable CPU (scheduler affinity / cpu count): "
            "sharding cannot beat the serial path"
        )
    else:
        reason = None
    return Capabilities(
        cpu_count=cpu_count,
        fork_available=fork_available,
        serial_only_reason=reason,
    )


def detect_capabilities() -> Capabilities:
    """The (cached) environment capabilities of this process."""
    global _CAPABILITIES
    if _CAPABILITIES is None:
        _CAPABILITIES = _probe_capabilities()
    return _CAPABILITIES


@dataclass(frozen=True)
class ResolvedExecution:
    """What a ``(backend, n_workers)`` request actually resolves to.

    ``fallback_reason`` is non-empty exactly when sharding was *requested*
    but the serial backend was selected instead; explicit ``"serial"``
    requests resolve with an empty reason (choosing serial is not a
    fallback).
    """

    backend: str
    n_workers: int
    fallback_reason: str = ""

    @property
    def sharded(self) -> bool:
        """Whether the sharded backend will actually run."""
        return self.backend == "sharded"


def _validated_workers(n_workers: int | None) -> int | None:
    if n_workers is None:
        return None
    n_workers = int(n_workers)
    if n_workers < 1:
        raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
    return n_workers


def resolve_execution(
    backend: str, n_workers: int | None = None
) -> ResolvedExecution:
    """Resolve a requested execution mode against the environment.

    Parameters
    ----------
    backend:
        ``"serial"`` or ``"sharded"`` (anything else raises
        :class:`~repro.utils.exceptions.ConfigurationError`).
    n_workers:
        ``None`` requests auto sizing (usable CPUs, capped at
        :data:`MAX_AUTO_WORKERS`; resolves to serial on a single-CPU
        machine).  An explicit count is honoured verbatim whenever ``fork``
        is available — including on a single CPU, where the worker processes
        simply timeshare — because correctness tests and benchmarks must be
        able to exercise the real worker protocol anywhere.  ``n_workers=1``
        explicitly selects the serial path (one shard is the serial path,
        minus the dispatch overhead) and records that as the reason.
    """
    if backend not in KERNEL_BACKENDS:
        raise ConfigurationError(
            f"unknown kernel backend {backend!r}; use one of {KERNEL_BACKENDS}"
        )
    n_workers = _validated_workers(n_workers)
    if backend == "serial":
        return ResolvedExecution(backend="serial", n_workers=1)
    caps = detect_capabilities()
    if not caps.fork_available:
        return ResolvedExecution(
            backend="serial", n_workers=1, fallback_reason=caps.serial_only_reason
        )
    if n_workers == 1:
        return ResolvedExecution(
            backend="serial",
            n_workers=1,
            fallback_reason="n_workers=1 selects the serial path",
        )
    if n_workers is None:
        if caps.serial_only_reason is not None:
            return ResolvedExecution(
                backend="serial", n_workers=1, fallback_reason=caps.serial_only_reason
            )
        n_workers = min(caps.cpu_count, MAX_AUTO_WORKERS)
    return ResolvedExecution(backend="sharded", n_workers=n_workers)
